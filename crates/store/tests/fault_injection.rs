//! Fault-injection suite: every way a crash or a corrupted byte can
//! damage a store directory, recovery must either reconstruct an
//! *exact prefix* of the true history or refuse loudly — never return
//! a session that silently diverges, and never under-count spent
//! budget.
//!
//! The workload driver mirrors the serve loop's discipline (WAL
//! append before ingest, checkpoint on a row cadence, manifest before
//! artifact) under an injected [`FaultIo`] that kills the write stream
//! at a chosen cumulative byte. A dense sweep covers *every* kill
//! point of a small workload; proptests randomize the workload shape,
//! kill point, tear length, and flipped byte.

use dpsan_dp::BudgetEntry;
use dpsan_store::snapshot::list_generations;
use dpsan_store::store::wal_path;
use dpsan_store::wal::scan_segment;
use dpsan_store::{
    flip_byte, tear_tail, DiskIo, DurableStore, FaultIo, StoreConfig, StoreError, StoreIo,
};
use dpsan_stream::{IngestSession, StreamConfig};
use proptest::prelude::*;
use std::io::Cursor;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::{fs, process};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dpsan-fault-{tag}-{}", process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn cfg(dir: &Path) -> StoreConfig {
    StoreConfig { dir: dir.to_path_buf(), checkpoint_rows: 0 }
}

fn stream_cfg() -> StreamConfig {
    StreamConfig { shards: 3, chunk_rows: 8, sketch_capacity: 8, jobs: 1 }
}

/// Deterministic per-chunk TSV payload (4 valid rows each).
fn chunk(i: u64) -> Vec<u8> {
    (0..4)
        .map(|j| {
            format!(
                "user{:02}\tq{}\tsite{}.net\t{}\n",
                (i * 3 + j) % 7,
                j % 5,
                i % 4,
                1 + (i + j) % 3
            )
        })
        .collect::<String>()
        .into_bytes()
}

/// One-shot reference: the first `k` chunks through a fresh session.
fn reference(k: u64) -> IngestSession {
    let mut s = IngestSession::new(stream_cfg());
    for i in 0..k {
        s.ingest(Cursor::new(chunk(i))).unwrap();
    }
    s
}

fn spend(seq: u64) -> Vec<BudgetEntry> {
    vec![BudgetEntry { label: format!("release {seq}"), epsilon: 0.5, delta: 0.01 }]
}

/// What the doomed run managed before the injected crash.
#[derive(Debug, Default)]
struct Driven {
    /// Chunks whose WAL append fully succeeded (durably logged).
    logged: u64,
    /// `record_release` calls that returned `Ok`.
    released: u64,
    /// `(generation, chunks covered)` of every *attempted* checkpoint
    /// (a crash during pruning leaves a durable checkpoint behind an
    /// `Err` return).
    cover: Vec<(u64, u64)>,
}

/// Drive `n` chunks through a store under `io`, checkpointing after
/// every `checkpoint_every`-th chunk and releasing after every
/// `release_every`-th (0 = never), stopping at the first injected
/// failure. The artifact content of release `s` is `b"release s\n"`.
fn drive(
    io: Arc<dyn StoreIo>,
    dir: &Path,
    n: u64,
    checkpoint_every: u64,
    release_every: u64,
) -> Driven {
    let mut out = Driven::default();
    let Ok((mut store, recovered)) = DurableStore::open(io, cfg(dir)) else {
        return out;
    };
    let mut session = recovered.resume_session(stream_cfg()).unwrap();
    let mut offset = recovered.input_offset;
    for i in 0..n {
        let c = chunk(i);
        offset += c.len() as u64;
        if store.log_chunk(offset, &c).is_err() {
            return out;
        }
        out.logged += 1;
        session.ingest(Cursor::new(&c)).unwrap();
        if checkpoint_every > 0 && (i + 1) % checkpoint_every == 0 {
            // Record the candidate *before* the call: a crash during
            // post-checkpoint pruning returns Err with the checkpoint
            // itself already durable, and recovery may legally use it.
            out.cover.push((store.generation() + 1, i + 1));
            if store.checkpoint(&session.export_state(), offset).is_err() {
                return out;
            }
        }
        if release_every > 0 && (i + 1) % release_every == 0 {
            let seq = store.next_seq();
            let content = format!("release {seq}\n");
            if store.record_release(&spend(seq), session.rows(), content.as_bytes()).is_err() {
                return out;
            }
            out.released += 1;
        }
    }
    out
}

/// Recover `dir` with clean IO and assert the reconstructed session is
/// an exact prefix of the true chunk history: state, input offset, and
/// replay counts all line up. Returns the prefix length.
fn assert_exact_prefix(dir: &Path, driven: &Driven) -> u64 {
    let (_, rec) = DurableStore::open(Arc::new(DiskIo), cfg(dir))
        .unwrap_or_else(|e| panic!("crash artifacts must always recover: {e}"));
    let base_chunks = match rec.report.base_generation {
        None => 0,
        Some(g) => {
            driven
                .cover
                .iter()
                .find(|(gen, _)| *gen == g)
                .unwrap_or_else(|| panic!("recovered from unknown checkpoint generation {g}"))
                .1
        }
    };
    let j = base_chunks + rec.report.replayed_records as u64;
    assert!(j <= driven.logged, "recovery replayed chunks that were never durably logged");
    let session = rec.resume_session(stream_cfg()).unwrap();
    assert_eq!(
        session.export_state(),
        reference(j).export_state(),
        "recovered session is not the exact {j}-chunk prefix"
    );
    let want_offset: u64 = (0..j).map(|i| chunk(i).len() as u64).sum();
    assert_eq!(rec.input_offset, want_offset, "resume offset disagrees with the prefix");
    j
}

/// Recover and assert the budget-side invariants: every `Ok`-returned
/// release has a durable manifest (spends are never lost), at most one
/// extra manifest exists (the release that crashed mid-call), the
/// rebuilt ledger composes the recorded spends bit-exactly, and only
/// post-crash sequence numbers can be unpublished.
fn assert_budget_never_undercounts(dir: &Path, driven: &Driven) {
    let (_, rec) = DurableStore::open(Arc::new(DiskIo), cfg(dir)).unwrap();
    let manifests = rec.manifests.len() as u64;
    assert!(
        manifests >= driven.released,
        "a successful release lost its manifest: {manifests} < {}",
        driven.released
    );
    assert!(
        manifests <= driven.released + 1,
        "more manifests than release attempts: {manifests} > {} + 1",
        driven.released
    );
    let ledger = dpsan_store::rebuild_ledger(&rec.manifests, None);
    let want_eps = 0.5 * manifests as f64;
    let want_delta = 0.01 * manifests as f64;
    assert!((ledger.total_epsilon() - want_eps).abs() < 1e-12);
    assert!((ledger.total_delta() - want_delta).abs() < 1e-12);
    for seq in &rec.report.unpublished {
        assert!(
            *seq >= driven.released,
            "release {seq} returned Ok but its artifact does not verify"
        );
    }
}

/// Total bytes the uninterrupted workload writes (a `FaultIo` with an
/// unreachable kill point counts them without firing).
fn total_bytes(n: u64, checkpoint_every: u64, release_every: u64) -> u64 {
    let dir = tmpdir("measure");
    let io = Arc::new(FaultIo::new(u64::MAX));
    let driven = drive(io.clone(), &dir, n, checkpoint_every, release_every);
    assert_eq!(driven.logged, n, "measurement run must not crash");
    let written = io.written();
    fs::remove_dir_all(&dir).unwrap();
    written
}

#[test]
fn kill_at_every_byte_recovers_an_exact_prefix() {
    // Small workload — 3 chunks, a checkpoint after chunk 2, a release
    // after chunk 2 — swept with a kill at *every* cumulative byte the
    // run writes: WAL records, shard snapshots, checkpoint metadata,
    // manifest, artifact. No kill point may corrupt recovery.
    let (n, ckpt, rel) = (3, 2, 2);
    let total = total_bytes(n, ckpt, rel);
    assert!(total < 16_384, "sweep workload grew unexpectedly large ({total} bytes)");
    let parent = tmpdir("sweep");
    for kill in 0..=total {
        let dir = parent.join(format!("k{kill}"));
        let driven = drive(Arc::new(FaultIo::new(kill)), &dir, n, ckpt, rel);
        let j = assert_exact_prefix(&dir, &driven);
        assert_eq!(
            j, driven.logged,
            "kill at byte {kill}: every durably logged chunk must be recovered"
        );
        assert_budget_never_undercounts(&dir, &driven);
        fs::remove_dir_all(&dir).unwrap();
    }
    fs::remove_dir_all(&parent).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random workload shapes × random kill points: the recovered
    /// session is always the exact prefix of durably logged chunks and
    /// the ledger never under-counts.
    #[test]
    fn random_kill_points_recover_the_logged_prefix(
        n in 4u64..12,
        checkpoint_every in 0u64..4,
        release_every in 0u64..4,
        kill in 1u64..10_000,
        case in 0u32..u32::MAX,
    ) {
        let dir = tmpdir(&format!("kill-{case}"));
        let driven = drive(Arc::new(FaultIo::new(kill)), &dir, n, checkpoint_every, release_every);
        let j = assert_exact_prefix(&dir, &driven);
        prop_assert_eq!(j, driven.logged);
        assert_budget_never_undercounts(&dir, &driven);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// A torn live-WAL tail (bytes lost from the page cache) truncates
    /// cleanly: recovery lands on an exact prefix, the repaired
    /// segment rescans clean, and nothing covered by a checkpoint is
    /// lost.
    #[test]
    fn torn_live_tail_recovers_a_clean_prefix(
        n in 2u64..8,
        checkpoint_every in 0u64..4,
        tear in 1u64..600,
        case in 0u32..u32::MAX,
    ) {
        let dir = tmpdir(&format!("tear-{case}"));
        let driven = drive(Arc::new(DiskIo), &dir, n, checkpoint_every, 0);
        prop_assert_eq!(driven.logged, n);
        let live = wal_path(&dir, list_generations(&dir).unwrap().last().copied().unwrap_or(0));
        if live.exists() {
            tear_tail(&live, tear).unwrap();
        }
        let j = assert_exact_prefix(&dir, &driven);
        let covered = driven.cover.last().map_or(0, |&(_, c)| c);
        prop_assert!(j >= covered, "a tear must never lose checkpointed chunks");
        if live.exists() {
            let rescan = scan_segment(&live).unwrap();
            prop_assert_eq!(rescan.torn_bytes, 0, "repair must leave a clean segment");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Flip one byte anywhere in the store: recovery either returns an
    /// exact prefix (checkpoint fallback, WAL truncation, unpublished
    /// artifact) or refuses with a corruption error — never a wrong
    /// session and never a quietly shrunk ledger.
    #[test]
    fn flipped_byte_never_yields_a_wrong_session(
        n in 3u64..9,
        checkpoint_every in 0u64..4,
        release_every in 0u64..3,
        file_pick in 0usize..64,
        offset_pick in 0u64..100_000,
        case in 0u32..u32::MAX,
    ) {
        let dir = tmpdir(&format!("flip-{case}"));
        let driven = drive(Arc::new(DiskIo), &dir, n, checkpoint_every, release_every);
        prop_assert_eq!(driven.logged, n);

        let mut files: Vec<PathBuf> = walk_files(&dir);
        files.sort();
        prop_assert!(!files.is_empty());
        let target = &files[file_pick % files.len()];
        let len = fs::metadata(target).unwrap().len();
        prop_assume!(len > 0);
        flip_byte(target, offset_pick % len).unwrap();
        let flipped_artifact: Option<u64> = target
            .file_name()
            .and_then(|f| f.to_str())
            .filter(|f| f.starts_with("release-") && f.ends_with(".tsv"))
            .and_then(|f| f[8..16].parse().ok());

        match DurableStore::open(Arc::new(DiskIo), cfg(&dir)) {
            Ok((_, rec)) => {
                let j = assert_exact_prefix(&dir, &driven);
                prop_assert!(j <= n);
                // budget: a readable chain is the complete chain
                prop_assert_eq!(rec.manifests.len() as u64, driven.released);
                if let Some(seq) = flipped_artifact {
                    prop_assert!(
                        rec.report.unpublished.contains(&seq),
                        "flipped artifact {seq} must fail verification: {:?}",
                        rec.report.unpublished
                    );
                }
            }
            Err(StoreError::Corrupt(_)) => {} // refusing loudly is always legal
            Err(StoreError::Io(e)) => panic!("clean-io recovery raised an io error: {e}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}

fn walk_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in fs::read_dir(&d).unwrap() {
            let p = entry.unwrap().path();
            if p.is_dir() {
                stack.push(p);
            } else {
                out.push(p);
            }
        }
    }
    out
}
