//! Durable-store telemetry handles.
//!
//! | series | type | meaning |
//! |---|---|---|
//! | `dpsan_wal_fsync_seconds` | histogram | WAL append+fsync latency per logged chunk |
//! | `dpsan_checkpoint_seconds` | histogram | full checkpoint duration (write + WAL roll + prune) |
//! | `dpsan_recoveries_total{outcome=...}` | counter | store opens by recovery outcome: `checkpoint`, `wal_replay`, `fresh` |
//! | `dpsan_recovery_base_generation` | gauge | generation that seeded the last recovery (−1 = none) |
//! | `dpsan_recovery_replayed_records` | gauge | WAL records replayed by the last recovery |
//! | `dpsan_recovery_truncated_bytes` | gauge | torn bytes truncated off the live segment |
//! | `dpsan_recovery_manifests` | gauge | manifests in the verified chain at open |
//! | `dpsan_recovery_rejected_checkpoints` | gauge | checkpoints recovery rejected |
//! | `dpsan_recovery_unpublished` | gauge | manifests whose artifact is missing/corrupt |
//!
//! The recovery gauges describe the **last** `DurableStore::open` in
//! this process, which is exactly what the operator-facing `recovery:`
//! stderr line renders — both read the same snapshot, so they cannot
//! disagree.

use dpsan_obs::histogram::Histogram;
use dpsan_obs::{default_latency_bounds, global, Counter, Gauge};
use std::sync::{Arc, OnceLock};

/// WAL append+fsync latency per logged chunk.
pub fn wal_fsync_seconds() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| global().histogram("dpsan_wal_fsync_seconds", default_latency_bounds()))
}

/// Full checkpoint duration.
pub fn checkpoint_seconds() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| global().histogram("dpsan_checkpoint_seconds", default_latency_bounds()))
}

/// Store opens by recovery outcome.
pub fn recoveries_total(outcome: &str) -> Counter {
    global().counter_with("dpsan_recoveries_total", "outcome", outcome)
}

/// Generation that seeded the last recovery (−1 = rebuilt from scratch).
pub fn recovery_base_generation() -> &'static Gauge {
    static H: OnceLock<Gauge> = OnceLock::new();
    H.get_or_init(|| global().gauge("dpsan_recovery_base_generation"))
}

/// WAL records replayed by the last recovery.
pub fn recovery_replayed_records() -> &'static Gauge {
    static H: OnceLock<Gauge> = OnceLock::new();
    H.get_or_init(|| global().gauge("dpsan_recovery_replayed_records"))
}

/// Torn bytes truncated off the live segment by the last recovery.
pub fn recovery_truncated_bytes() -> &'static Gauge {
    static H: OnceLock<Gauge> = OnceLock::new();
    H.get_or_init(|| global().gauge("dpsan_recovery_truncated_bytes"))
}

/// Manifests in the verified chain at the last open.
pub fn recovery_manifests() -> &'static Gauge {
    static H: OnceLock<Gauge> = OnceLock::new();
    H.get_or_init(|| global().gauge("dpsan_recovery_manifests"))
}

/// Checkpoints the last recovery rejected.
pub fn recovery_rejected_checkpoints() -> &'static Gauge {
    static H: OnceLock<Gauge> = OnceLock::new();
    H.get_or_init(|| global().gauge("dpsan_recovery_rejected_checkpoints"))
}

/// Manifests whose release artifact is missing or corrupt.
pub fn recovery_unpublished() -> &'static Gauge {
    static H: OnceLock<Gauge> = OnceLock::new();
    H.get_or_init(|| global().gauge("dpsan_recovery_unpublished"))
}
