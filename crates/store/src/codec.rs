//! Flat little-endian binary encoding for the store's on-disk
//! payloads.
//!
//! Deliberately boring: fixed-width integers, length-prefixed byte
//! strings, no compression, no self-description. The framing layer
//! above ([`crate::wal`], [`crate::snapshot`], [`crate::manifest`])
//! adds magic numbers, format versions, and CRCs; this module only
//! turns state structs into bytes and back. Floats are stored as raw
//! IEEE-754 bit patterns so a recovered ledger reproduces spent
//! budgets *bit for bit* — re-parsing through decimal could round.
//!
//! Every decoder is total: corrupt input yields `Err`, never a panic
//! or an out-of-bounds read, because recovery feeds these functions
//! bytes that may have been torn mid-write.

use dpsan_stream::{ShardState, SketchState};
use std::fmt;

/// Decoding failure: the bytes do not form a valid payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

/// Append-only byte sink for encoding.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// A fresh, empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Append a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its raw bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Append a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

/// Cursor over bytes being decoded; all reads are bounds-checked.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Decode from `buf`, starting at the beginning.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fail unless every byte was consumed (trailing garbage is
    /// corruption, not padding).
    pub fn expect_end(&self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError(format!("{} trailing bytes after payload", self.remaining())))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError(format!(
                "truncated: wanted {n} bytes at offset {}, {} available",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an `f64` stored as a raw bit pattern.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a `u64` and narrow it to `usize`, rejecting overflow.
    #[allow(clippy::len_without_is_empty)] // a decode step, not a container length
    pub fn len(&mut self) -> Result<usize, CodecError> {
        let v = self.u64()?;
        // Reject lengths past what the buffer could possibly hold so a
        // corrupt prefix can't trigger a huge allocation.
        if v > self.remaining() as u64 {
            return Err(CodecError(format!(
                "length {v} exceeds the {} bytes remaining",
                self.remaining()
            )));
        }
        Ok(v as usize)
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let n = self.len()?;
        self.take(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, CodecError> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| CodecError("invalid utf-8 string".into()))
    }

    /// Read an element count for fixed-stride items, rejecting counts
    /// the remaining bytes cannot hold.
    pub fn count(&mut self, stride: usize) -> Result<usize, CodecError> {
        let v = self.u64()?;
        if v.checked_mul(stride as u64).is_none_or(|total| total > self.remaining() as u64) {
            return Err(CodecError(format!(
                "count {v} of {stride}-byte items exceeds the {} bytes remaining",
                self.remaining()
            )));
        }
        Ok(v as usize)
    }
}

/// Current on-disk format version, embedded in every framed file.
pub const FORMAT_VERSION: u32 = 1;

/// Frame a whole-file payload: magic, format version, payload length,
/// payload CRC-32, payload. Unlike WAL frames (a *stream* of records),
/// a framed file holds exactly one payload and rejects trailing bytes.
pub fn frame_file(magic: u32, payload: &[u8]) -> Vec<u8> {
    let mut e = Encoder::new();
    e.u32(magic);
    e.u32(FORMAT_VERSION);
    e.u32(payload.len() as u32);
    e.u32(crate::crc::crc32(payload));
    let mut out = e.finish();
    out.extend_from_slice(payload);
    out
}

/// Verify and strip a whole-file frame, returning the payload.
pub fn unframe_file(magic: u32, bytes: &[u8]) -> Result<&[u8], CodecError> {
    let mut d = Decoder::new(bytes);
    let got_magic = d.u32()?;
    if got_magic != magic {
        return Err(CodecError(format!("bad magic {got_magic:#010x}, wanted {magic:#010x}")));
    }
    let version = d.u32()?;
    if version != FORMAT_VERSION {
        return Err(CodecError(format!("unsupported format version {version}")));
    }
    let len = d.u32()? as usize;
    let crc = d.u32()?;
    if d.remaining() != len {
        return Err(CodecError(format!(
            "payload length {len} but {} bytes follow the header",
            d.remaining()
        )));
    }
    let payload = &bytes[bytes.len() - len..];
    if crate::crc::crc32(payload) != crc {
        return Err(CodecError("payload checksum mismatch".into()));
    }
    Ok(payload)
}

fn put_strings(e: &mut Encoder, v: &[String]) {
    e.u64(v.len() as u64);
    for s in v {
        e.str(s);
    }
}

fn get_strings(d: &mut Decoder<'_>) -> Result<Vec<String>, CodecError> {
    let n = d.count(8)?; // each string is at least its 8-byte length prefix
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(d.str()?);
    }
    Ok(out)
}

fn put_u64s(e: &mut Encoder, v: &[u64]) {
    e.u64(v.len() as u64);
    for &x in v {
        e.u64(x);
    }
}

fn get_u64s(d: &mut Decoder<'_>) -> Result<Vec<u64>, CodecError> {
    let n = d.count(8)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(d.u64()?);
    }
    Ok(out)
}

/// Encode one shard's intake state.
pub fn encode_shard(state: &ShardState) -> Vec<u8> {
    let mut e = Encoder::new();
    put_strings(&mut e, &state.users);
    put_strings(&mut e, &state.queries);
    put_strings(&mut e, &state.urls);
    put_u64s(&mut e, &state.user_first);
    put_u64s(&mut e, &state.query_first);
    put_u64s(&mut e, &state.url_first);
    e.u64(state.pair_keys.len() as u64);
    for &(q, u) in &state.pair_keys {
        e.u32(q);
        e.u32(u);
    }
    put_u64s(&mut e, &state.pair_first);
    e.u64(state.triplets.len() as u64);
    for &(p, u, c) in &state.triplets {
        e.u32(p);
        e.u32(u);
        e.u64(c);
    }
    e.u64(state.rows);
    e.u64(state.clicks);
    e.finish()
}

/// Decode one shard's intake state (structural validation is the
/// caller's job via `ShardIntake::from_state`).
pub fn decode_shard(d: &mut Decoder<'_>) -> Result<ShardState, CodecError> {
    let users = get_strings(d)?;
    let queries = get_strings(d)?;
    let urls = get_strings(d)?;
    let user_first = get_u64s(d)?;
    let query_first = get_u64s(d)?;
    let url_first = get_u64s(d)?;
    let n_pairs = d.count(8)?;
    let mut pair_keys = Vec::with_capacity(n_pairs);
    for _ in 0..n_pairs {
        let q = d.u32()?;
        let u = d.u32()?;
        pair_keys.push((q, u));
    }
    let pair_first = get_u64s(d)?;
    let n_triplets = d.count(16)?;
    let mut triplets = Vec::with_capacity(n_triplets);
    for _ in 0..n_triplets {
        let p = d.u32()?;
        let u = d.u32()?;
        let c = d.u64()?;
        triplets.push((p, u, c));
    }
    let rows = d.u64()?;
    let clicks = d.u64()?;
    Ok(ShardState {
        users,
        queries,
        urls,
        user_first,
        query_first,
        url_first,
        pair_keys,
        pair_first,
        triplets,
        rows,
        clicks,
    })
}

/// Encode one shard's heavy-hitter sketch state.
pub fn encode_sketch(state: &SketchState) -> Vec<u8> {
    let mut e = Encoder::new();
    e.u64(state.capacity as u64);
    e.u64(state.counters.len() as u64);
    for (key, w) in &state.counters {
        e.str(key);
        e.u64(*w);
    }
    e.u64(state.weight);
    e.u64(state.decrements);
    e.finish()
}

/// Decode one shard's sketch state.
pub fn decode_sketch(d: &mut Decoder<'_>) -> Result<SketchState, CodecError> {
    let capacity = d.u64()? as usize;
    let n = d.count(16)?; // length prefix + weight per counter
    let mut counters = Vec::with_capacity(n);
    for _ in 0..n {
        let key = d.str()?;
        let w = d.u64()?;
        counters.push((key, w));
    }
    let weight = d.u64()?;
    let decrements = d.u64()?;
    Ok(SketchState { capacity, counters, weight, decrements })
}

/// Encode the per-shard payload of one snapshot file: the shard state
/// plus its sketch (if sketching is enabled).
pub fn encode_shard_snapshot(shard: &ShardState, sketch: Option<&SketchState>) -> Vec<u8> {
    let mut e = Encoder::new();
    e.bytes(&encode_shard(shard));
    match sketch {
        Some(sk) => {
            e.u32(1);
            e.bytes(&encode_sketch(sk));
        }
        None => e.u32(0),
    }
    e.finish()
}

/// Decode one snapshot file's payload back into shard + sketch state.
pub fn decode_shard_snapshot(
    bytes: &[u8],
) -> Result<(ShardState, Option<SketchState>), CodecError> {
    let mut d = Decoder::new(bytes);
    let shard_bytes = d.bytes()?;
    let mut sd = Decoder::new(shard_bytes);
    let shard = decode_shard(&mut sd)?;
    sd.expect_end()?;
    let has_sketch = d.u32()?;
    let sketch = match has_sketch {
        0 => None,
        1 => {
            let sk_bytes = d.bytes()?;
            let mut kd = Decoder::new(sk_bytes);
            let sk = decode_sketch(&mut kd)?;
            kd.expect_end()?;
            Some(sk)
        }
        other => return Err(CodecError(format!("bad sketch flag {other}"))),
    };
    d.expect_end()?;
    Ok((shard, sketch))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_session() -> dpsan_stream::SessionState {
        use dpsan_stream::{IngestSession, StreamConfig};
        use std::io::Cursor;
        let mut tsv = String::new();
        for i in 0..40 {
            tsv.push_str(&format!(
                "user{:02}\tq{}\tsite{}.com\t{}\n",
                i % 9,
                i % 6,
                i % 4,
                1 + i % 3
            ));
        }
        let cfg = StreamConfig { shards: 3, chunk_rows: 8, sketch_capacity: 8, jobs: 1 };
        let mut s = IngestSession::new(cfg);
        s.ingest(Cursor::new(tsv)).unwrap();
        s.export_state()
    }

    #[test]
    fn shard_snapshot_roundtrip_is_exact() {
        let state = sample_session();
        for (i, shard) in state.shards.iter().enumerate() {
            let sketch = state.sketches.get(i);
            let bytes = encode_shard_snapshot(shard, sketch);
            let (shard2, sketch2) = decode_shard_snapshot(&bytes).unwrap();
            assert_eq!(&shard2, shard);
            assert_eq!(sketch2.as_ref(), sketch);
        }
    }

    #[test]
    fn sketchless_snapshot_roundtrip() {
        let shard = ShardState { rows: 0, ..Default::default() };
        let bytes = encode_shard_snapshot(&shard, None);
        let (shard2, sketch2) = decode_shard_snapshot(&bytes).unwrap();
        assert_eq!(shard2, shard);
        assert!(sketch2.is_none());
    }

    #[test]
    fn every_truncation_is_an_error_not_a_panic() {
        let state = sample_session();
        let bytes = encode_shard_snapshot(&state.shards[0], state.sketches.first());
        for cut in 0..bytes.len() {
            assert!(
                decode_shard_snapshot(&bytes[..cut]).is_err(),
                "truncation to {cut} bytes must fail to decode"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let state = sample_session();
        let mut bytes = encode_shard_snapshot(&state.shards[0], state.sketches.first());
        bytes.push(0xAB);
        assert!(decode_shard_snapshot(&bytes).is_err());
    }

    #[test]
    fn absurd_length_prefix_is_rejected_without_allocating() {
        let mut e = Encoder::new();
        e.u64(u64::MAX); // claims a vastly larger payload than exists
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert!(d.bytes().is_err());
        let mut d2 = Decoder::new(&bytes);
        assert!(d2.count(16).is_err());
    }

    #[test]
    fn f64_bits_roundtrip_exactly() {
        for v in [0.0, -0.0, 1.5, 0.1 + 0.2, f64::MIN_POSITIVE, 1e300] {
            let mut e = Encoder::new();
            e.f64(v);
            let bytes = e.finish();
            let got = Decoder::new(&bytes).f64().unwrap();
            assert_eq!(got.to_bits(), v.to_bits());
        }
    }
}
