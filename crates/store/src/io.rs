//! The store's write path behind an injectable seam.
//!
//! Everything the durable store puts on disk goes through [`StoreIo`],
//! so tests can substitute [`FaultIo`] — an implementation that kills
//! the process's write stream at a chosen byte, leaving exactly the
//! prefix a real crash would leave — and then drive recovery over the
//! damaged directory. Reads are *not* behind the seam: recovery reads
//! with plain `std::fs` because a crash has no way to damage the read
//! path, and keeping reads concrete means the fault tests exercise the
//! same recovery code production runs.
//!
//! [`DiskIo`] is the real implementation. Its two primitives encode
//! the store's crash-safety discipline:
//!
//! * [`append`](StoreIo::append) — append + `fsync`, used by the WAL.
//!   A crash mid-append leaves a prefix of the record, which the
//!   CRC framing detects and truncates on recovery.
//! * [`write_atomic`](StoreIo::write_atomic) — temp file + `fsync` +
//!   rename, used by snapshots, checkpoint metadata, and manifests. A
//!   crash leaves either the old file or the new one, never a tear —
//!   modulo filesystem bugs, which is what the per-file CRCs are for.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// The injectable write seam. `Send + Sync` so a store can be shared
/// with a drain thread.
pub trait StoreIo: Send + Sync {
    /// Append `bytes` to `path` (creating it if absent) and flush to
    /// stable storage before returning.
    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Replace `path` with `bytes` atomically: a reader (or a restart)
    /// sees the old content or the new content, never a mix.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Create a directory and its parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;

    /// Remove a file or directory tree that is no longer needed
    /// (generation pruning). Best-effort durability: pruning again
    /// after a crash is harmless.
    fn remove_all(&self, path: &Path) -> io::Result<()>;

    /// Truncate `path` to `len` bytes (torn-tail repair on recovery).
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;
}

/// Production implementation: real files, real fsync.
#[derive(Debug, Default, Clone, Copy)]
pub struct DiskIo;

impl StoreIo for DiskIo {
    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = OpenOptions::new().create(true).append(true).open(path)?;
        f.write_all(bytes)?;
        f.sync_data()
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let tmp = tmp_path(path);
        {
            let mut f = File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_data()?;
        }
        fs::rename(&tmp, path)?;
        // Make the rename itself durable.
        if let Some(dir) = path.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_data();
            }
        }
        Ok(())
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::create_dir_all(path)
    }

    fn remove_all(&self, path: &Path) -> io::Result<()> {
        if path.is_dir() {
            fs::remove_dir_all(path)
        } else {
            fs::remove_file(path)
        }
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let f = OpenOptions::new().write(true).open(path)?;
        f.set_len(len)?;
        f.sync_data()
    }
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Deterministic crash injection: behaves exactly like [`DiskIo`]
/// until the cumulative bytes written reach `kill_at`, then writes the
/// partial prefix a real crash would leave and fails that call and
/// every later one with [`io::ErrorKind::Other`] (`"injected crash"`).
///
/// The partial prefix goes to the *physical* write target: an append
/// tears the tail of the log file itself, while an atomic write tears
/// only the temp file — the destination keeps its old content, exactly
/// as a crash between `write` and `rename` would.
#[derive(Debug)]
pub struct FaultIo {
    /// Cumulative byte budget before the simulated crash.
    kill_at: u64,
    written: AtomicU64,
}

impl FaultIo {
    /// Crash after `kill_at` cumulative bytes have been written.
    pub fn new(kill_at: u64) -> Self {
        FaultIo { kill_at, written: AtomicU64::new(0) }
    }

    /// Bytes successfully written so far.
    pub fn written(&self) -> u64 {
        self.written.load(Ordering::SeqCst).min(self.kill_at)
    }

    /// Whether the injected crash has fired.
    pub fn crashed(&self) -> bool {
        self.written.load(Ordering::SeqCst) >= self.kill_at
    }

    /// Reserve up to `want` bytes of write budget; `Err` carries the
    /// number of bytes that still fit before the crash point.
    fn budget(&self, want: u64) -> Result<(), u64> {
        let before = self.written.fetch_add(want, Ordering::SeqCst);
        if before >= self.kill_at {
            Err(0)
        } else if before + want > self.kill_at {
            Err(self.kill_at - before)
        } else {
            Ok(())
        }
    }

    fn crash_err() -> io::Error {
        io::Error::other("injected crash")
    }
}

impl StoreIo for FaultIo {
    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.budget(bytes.len() as u64) {
            Ok(()) => DiskIo.append(path, bytes),
            Err(fit) => {
                // The torn write: a prefix lands, the call still fails.
                DiskIo.append(path, &bytes[..fit as usize])?;
                Err(Self::crash_err())
            }
        }
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.budget(bytes.len() as u64) {
            Ok(()) => DiskIo.write_atomic(path, bytes),
            Err(fit) => {
                // Crash before the rename: only the temp file tears,
                // the destination is untouched.
                let _ = DiskIo.append(&tmp_path(path), &bytes[..fit as usize]);
                Err(Self::crash_err())
            }
        }
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        if self.crashed() {
            return Err(Self::crash_err());
        }
        DiskIo.create_dir_all(path)
    }

    fn remove_all(&self, path: &Path) -> io::Result<()> {
        if self.crashed() {
            return Err(Self::crash_err());
        }
        DiskIo.remove_all(path)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        if self.crashed() {
            return Err(Self::crash_err());
        }
        DiskIo.truncate(path, len)
    }
}

/// Post-crash corruption helper: chop the last `n` bytes off a file
/// (simulates a tail lost in the page cache).
pub fn tear_tail(path: &Path, n: u64) -> io::Result<()> {
    let len = fs::metadata(path)?.len();
    let f = OpenOptions::new().write(true).open(path)?;
    f.set_len(len.saturating_sub(n))
}

/// Post-crash corruption helper: flip every bit of the byte at
/// `offset` (simulates media bit rot under a stale CRC).
pub fn flip_byte(path: &Path, offset: u64) -> io::Result<()> {
    use std::io::{Read, Seek, SeekFrom};
    let mut f = OpenOptions::new().read(true).write(true).open(path)?;
    f.seek(SeekFrom::Start(offset))?;
    let mut b = [0u8; 1];
    f.read_exact(&mut b)?;
    b[0] ^= 0xFF;
    f.seek(SeekFrom::Start(offset))?;
    f.write_all(&b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dpsan-store-io-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn disk_append_accumulates() {
        let dir = tmpdir("append");
        let p = dir.join("log");
        DiskIo.append(&p, b"abc").unwrap();
        DiskIo.append(&p, b"def").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"abcdef");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn atomic_write_replaces_whole_file() {
        let dir = tmpdir("atomic");
        let p = dir.join("meta");
        DiskIo.write_atomic(&p, b"version one").unwrap();
        DiskIo.write_atomic(&p, b"v2").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"v2");
        assert!(!tmp_path(&p).exists(), "temp file cleaned up by rename");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fault_append_leaves_exact_prefix_then_fails_forever() {
        let dir = tmpdir("fault-append");
        let p = dir.join("log");
        let io = FaultIo::new(5);
        io.append(&p, b"abc").unwrap();
        let err = io.append(&p, b"defg").unwrap_err();
        assert_eq!(err.to_string(), "injected crash");
        assert_eq!(fs::read(&p).unwrap(), b"abcde", "exactly kill_at bytes persisted");
        assert!(io.crashed());
        assert!(io.append(&p, b"x").is_err(), "dead after the crash");
        assert!(io.write_atomic(&p, b"x").is_err());
        assert_eq!(fs::read(&p).unwrap(), b"abcde", "no bytes leak after the crash");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fault_atomic_write_never_tears_the_destination() {
        let dir = tmpdir("fault-atomic");
        let p = dir.join("meta");
        DiskIo.write_atomic(&p, b"old content").unwrap();
        let io = FaultIo::new(3);
        assert!(io.write_atomic(&p, b"new content").is_err());
        assert_eq!(fs::read(&p).unwrap(), b"old content", "destination untouched");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn kill_at_every_byte_is_deterministic() {
        for kill in 0..10u64 {
            let dir = tmpdir(&format!("sweep-{kill}"));
            let p = dir.join("log");
            let io = FaultIo::new(kill);
            let _ = io.append(&p, b"0123456789");
            let got = fs::read(&p).unwrap_or_default();
            assert_eq!(got, &b"0123456789"[..kill as usize]);
            fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn tear_and_flip_helpers() {
        let dir = tmpdir("corrupt");
        let p = dir.join("f");
        fs::write(&p, b"0123456789").unwrap();
        tear_tail(&p, 4).unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"012345");
        flip_byte(&p, 0).unwrap();
        assert_eq!(fs::read(&p).unwrap()[0], b'0' ^ 0xFF);
        tear_tail(&p, 100).unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"", "over-tearing clamps to empty");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncate_repairs_tails() {
        let dir = tmpdir("trunc");
        let p = dir.join("log");
        fs::write(&p, b"0123456789").unwrap();
        DiskIo.truncate(&p, 4).unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"0123");
        fs::remove_dir_all(&dir).unwrap();
    }
}
