//! CRC-32 (IEEE 802.3, the zlib/gzip polynomial) over byte slices.
//!
//! Every on-disk record in this crate — WAL frames, shard snapshots,
//! checkpoint metadata, release manifests — carries a CRC-32 of its
//! payload so torn writes and bit rot are *detected*, never silently
//! ingested. CRC-32 is an integrity check against accidental
//! corruption, not an authenticity check; the store trusts its own
//! directory.

/// Reflected polynomial for CRC-32/ISO-HDLC (0x04C11DB7 reversed).
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `bytes` (init `!0`, final xor `!0` — the standard check
/// value of `"123456789"` is `0xCBF43926`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let a = b"the quick brown fox".to_vec();
        let mut b = a.clone();
        b[7] ^= 0x01;
        assert_ne!(crc32(&a), crc32(&b));
    }

    #[test]
    fn truncation_changes_crc() {
        let a = b"record payload bytes";
        assert_ne!(crc32(a), crc32(&a[..a.len() - 1]));
    }
}
