//! # dpsan-store
//!
//! Durable, crash-safe persistence for the always-on sanitization
//! service: checksummed shard snapshots, a WAL of consumed input
//! chunks, and a chained release-manifest ledger that makes lifetime
//! `(ε, δ)` budgets survive restarts.
//!
//! ```text
//! live loop            store-dir/                     recovery
//! ─────────            ──────────                     ────────
//! poll input ──▶ WAL append (fsync) ──▶ ingest        newest valid checkpoint
//!        every N rows ──▶ checkpoint-G/ (CRC'd)         ⊕ WAL replay (torn tail
//! release ──▶ manifest-N.bin (spend) ──▶ artifact        truncated) = the exact
//!                                                       session; ledger = Σ chain
//! ```
//!
//! Two invariants organize everything:
//!
//! 1. **Ingest state is recomputable, so corruption degrades.** A
//!    checksummed checkpoint that fails verification falls back to the
//!    previous generation plus WAL replay; a torn WAL tail truncates
//!    and the lost bytes are re-read from the still-on-disk input.
//!    Replay goes through the same deterministic ingest code as the
//!    live path, so a recovered session — and therefore its next
//!    release — is byte-identical to an uninterrupted run.
//! 2. **Spent budget is not recomputable, so corruption halts.** The
//!    manifest chain is the privacy ledger of record: manifests are
//!    written (fsynced, CRC-chained) *before* their release artifact
//!    is published, and a chain that fails verification is a hard
//!    startup error. Both rules bias the same direction — a restarted
//!    daemon may waste budget, but can never overspend it.
//!
//! Modules: [`crc`] (CRC-32), [`codec`] (flat binary payloads),
//! [`io`] (the injectable write seam + [`io::FaultIo`] crash
//! injection), [`wal`], [`snapshot`], [`manifest`], [`store`] (the
//! [`DurableStore`] orchestration).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod crc;
pub mod io;
pub mod manifest;
pub mod obs;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use io::{flip_byte, tear_tail, DiskIo, FaultIo, StoreIo};
pub use manifest::{rebuild_ledger, ReleaseManifest};
pub use snapshot::CheckpointMeta;
pub use store::{DurableStore, Recovered, RecoveryReport, StoreConfig, StoreError};
pub use wal::{WalRecord, WalScan};
