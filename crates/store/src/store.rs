//! The durable store: checkpoints + WAL + manifest chain, glued into
//! one crash-safe recovery story.
//!
//! ```text
//! store-dir/
//!   checkpoint-00000001/   full session snapshot (see crate::snapshot)
//!   checkpoint-00000002/
//!   wal-00000000.log       chunks consumed before the first checkpoint
//!   wal-00000001.log       chunks consumed after checkpoint 1
//!   wal-00000002.log       ... the live segment
//!   releases/              manifest chain + release artifacts
//! ```
//!
//! WAL segment `G` holds exactly the chunks consumed *after*
//! checkpoint `G` was taken (segment 0 precedes any checkpoint), so
//!
//! ```text
//! session state  =  checkpoint G  ⊕  replay(wal-G)
//!                =  checkpoint G-1 ⊕ replay(wal-(G-1)) ⊕ replay(wal-G)
//! ```
//!
//! — the second form is the fallback when checkpoint `G` fails its
//! checksums. Writing checkpoint `G+1` prunes generation `G-1` and
//! older, so the store always keeps two recovery roots on disk and
//! storage stays bounded at roughly two checkpoints + two WAL spans.
//!
//! Recovery is conservative in exactly one direction: ingest state may
//! be recomputed (the input file still has the bytes), but **spent
//! budget may never shrink**. Hence checkpoint corruption falls back
//! and WAL tails truncate, while manifest-chain corruption is a hard
//! error surfaced to the operator.

use crate::io::StoreIo;
use crate::manifest::{chain_crc, read_chain, releases_dir, write_manifest, ReleaseManifest};
use crate::snapshot::{checkpoint_dir, list_generations, read_checkpoint, write_checkpoint};
use crate::wal::{append_record, repair_segment, scan_segment, WalRecord, WalScan};
use dpsan_dp::BudgetEntry;
use dpsan_stream::{IngestSession, SessionState, StreamConfig};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Store failures.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure (includes injected crashes).
    Io(io::Error),
    /// On-disk state failed validation; the message says what and why.
    Corrupt(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store io error: {e}"),
            StoreError::Corrupt(msg) => write!(f, "store corrupt: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// What recovery found and did — surfaced to the operator via
/// `sanitize --stats` and asserted by the fault-injection suite.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryReport {
    /// Generation whose checkpoint seeded the session (`None` = the
    /// session was rebuilt from WAL alone / the store was fresh).
    pub base_generation: Option<u64>,
    /// Checkpoints that failed verification, with the reason each was
    /// rejected (newest first).
    pub rejected: Vec<(u64, String)>,
    /// WAL records replayed through the ingest engine.
    pub replayed_records: usize,
    /// Torn bytes truncated off the live WAL segment.
    pub truncated_bytes: u64,
    /// Manifests in the verified chain.
    pub manifests: usize,
    /// Manifest sequence numbers whose release artifact is missing or
    /// fails its checksum — budget spent, output not (re)published.
    /// Benign after a crash between manifest and artifact write.
    pub unpublished: Vec<u64>,
}

/// Everything `open` recovers from disk.
#[derive(Debug)]
pub struct Recovered {
    /// Checkpointed session state, if a valid checkpoint existed.
    pub state: Option<SessionState>,
    /// WAL records to replay on top of `state`, in order.
    pub replay: Vec<WalRecord>,
    /// The verified release-manifest chain.
    pub manifests: Vec<ReleaseManifest>,
    /// Input-file offset at which ingestion resumes.
    pub input_offset: u64,
    /// What happened.
    pub report: RecoveryReport,
}

impl Recovered {
    /// Rebuild a live [`IngestSession`] under `cfg`: restore the
    /// checkpoint state and replay the WAL chunks through the same
    /// deterministic ingest path the live loop uses — the result is
    /// exactly the session a one-shot ingest of the consumed prefix
    /// would have produced.
    pub fn resume_session(&self, cfg: StreamConfig) -> Result<IngestSession, StoreError> {
        let mut session = match &self.state {
            Some(state) => IngestSession::restore(cfg, state.clone())
                .map_err(|e| StoreError::Corrupt(format!("checkpoint state rejected: {e}")))?,
            None => IngestSession::new(cfg),
        };
        for (i, rec) in self.replay.iter().enumerate() {
            session.ingest(io::Cursor::new(&rec.chunk)).map_err(|e| {
                StoreError::Corrupt(format!("WAL replay failed at record {i}: {e}"))
            })?;
        }
        Ok(session)
    }
}

/// Size/trigger knobs for a durable store.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Root directory of the store.
    pub dir: PathBuf,
    /// Take a checkpoint every time this many rows have been ingested
    /// since the last one (0 = only on shutdown/explicit calls).
    pub checkpoint_rows: u64,
}

/// Handle to an open store. All writes go through the injected
/// [`StoreIo`]; reads use plain `std::fs` (see [`crate::io`]).
pub struct DurableStore {
    io: Arc<dyn StoreIo>,
    dir: PathBuf,
    /// Newest generation on disk = the live WAL segment number.
    generation: u64,
    /// Next release sequence number.
    next_seq: u64,
    /// Chain CRC of the newest manifest (0 when the chain is empty).
    prev_crc: u32,
    /// Rows ingested since the last checkpoint (caller-maintained via
    /// [`note_rows`](Self::note_rows)).
    rows_since_checkpoint: u64,
    checkpoint_rows: u64,
}

impl fmt::Debug for DurableStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DurableStore")
            .field("dir", &self.dir)
            .field("generation", &self.generation)
            .field("next_seq", &self.next_seq)
            .finish_non_exhaustive()
    }
}

/// Path of WAL segment `gen` under `dir`.
pub fn wal_path(dir: &Path, gen: u64) -> PathBuf {
    dir.join(format!("wal-{gen:08}.log"))
}

impl DurableStore {
    /// Open (creating if absent) the store at `cfg.dir` and recover
    /// whatever is on disk. See the module docs for the fallback
    /// ladder; manifest-chain problems are hard errors.
    pub fn open(
        io: Arc<dyn StoreIo>,
        cfg: StoreConfig,
    ) -> Result<(DurableStore, Recovered), StoreError> {
        io.create_dir_all(&cfg.dir)?;
        let manifests = read_chain(&cfg.dir).map_err(StoreError::Corrupt)?;
        let mut report = RecoveryReport { manifests: manifests.len(), ..Default::default() };
        report.unpublished = unpublished_artifacts(&cfg.dir, &manifests);

        let gens = list_generations(&cfg.dir)?;
        let newest = gens.last().copied().unwrap_or(0);

        // Fallback ladder: newest checkpoint, then its predecessor,
        // then (when the predecessor would be "before the first
        // checkpoint") the empty session. Anything deeper has been
        // pruned, so two strikes is genuinely the end.
        let mut base: Option<(Option<u64>, Option<SessionState>, u64)> = None;
        let mut candidates: Vec<Option<u64>> = Vec::new();
        let mut iter = gens.iter().rev();
        if let Some(&g) = iter.next() {
            candidates.push(Some(g));
            match iter.next() {
                Some(&p) => candidates.push(Some(p)),
                None => candidates.push(None),
            }
        } else {
            candidates.push(None);
        }
        for cand in candidates {
            match cand {
                Some(gen) => match read_checkpoint(&cfg.dir, gen) {
                    Ok((state, meta)) => {
                        base = Some((Some(gen), Some(state), meta.input_offset));
                        break;
                    }
                    Err(why) => report.rejected.push((gen, why)),
                },
                None => {
                    base = Some((None, None, 0));
                    break;
                }
            }
        }
        let Some((base_gen, state, base_offset)) = base else {
            return Err(StoreError::Corrupt(format!(
                "no usable recovery root: {}",
                report
                    .rejected
                    .iter()
                    .map(|(g, why)| format!("checkpoint {g}: {why}"))
                    .collect::<Vec<_>>()
                    .join("; ")
            )));
        };
        report.base_generation = base_gen;

        // Replay every WAL segment from the base to the live one. Only
        // the live segment can legally be torn (it was the one being
        // appended); truncate its tail. A torn *earlier* segment means
        // rows the rejected checkpoint had are unrecoverable — that is
        // corruption, not a crash artifact.
        let first_segment = base_gen.unwrap_or(0);
        let mut replay: Vec<WalRecord> = Vec::new();
        for seg in first_segment..=newest {
            let path = wal_path(&cfg.dir, seg);
            let scan: WalScan = if seg == newest {
                let scan = repair_segment(io.as_ref(), &path)?;
                report.truncated_bytes = scan.torn_bytes;
                scan
            } else {
                let scan = scan_segment(&path)?;
                if scan.torn_bytes > 0 {
                    return Err(StoreError::Corrupt(format!(
                        "WAL segment {seg} is torn mid-chain ({} bytes) — rows are \
                         unrecoverable; restore the segment or retire the store",
                        scan.torn_bytes
                    )));
                }
                scan
            };
            replay.extend(scan.records);
        }

        // Offsets must advance strictly; anything else means segments
        // from different histories got mixed.
        let mut prev = base_offset;
        for (i, rec) in replay.iter().enumerate() {
            if rec.offset_after <= prev && !(i == 0 && rec.offset_after == prev) {
                return Err(StoreError::Corrupt(format!(
                    "WAL offsets regress at record {i} ({} after {prev}) — segments from \
                     different histories",
                    rec.offset_after
                )));
            }
            prev = rec.offset_after;
        }

        report.replayed_records = replay.len();

        // Recovery telemetry: an outcome counter plus gauges holding
        // this open's report — the `recovery:` stderr line renders from
        // the same snapshot these feed.
        let outcome = if report.base_generation.is_some() {
            "checkpoint"
        } else if replay.is_empty() {
            "fresh"
        } else {
            "wal_replay"
        };
        crate::obs::recoveries_total(outcome).inc();
        crate::obs::recovery_base_generation()
            .set(report.base_generation.map_or(-1.0, |g| g as f64));
        crate::obs::recovery_replayed_records().set(report.replayed_records as f64);
        crate::obs::recovery_truncated_bytes().set(report.truncated_bytes as f64);
        crate::obs::recovery_manifests().set(report.manifests as f64);
        crate::obs::recovery_rejected_checkpoints().set(report.rejected.len() as f64);
        crate::obs::recovery_unpublished().set(report.unpublished.len() as f64);
        dpsan_obs::trace::event(
            dpsan_obs::trace::Level::Info,
            "store",
            "recovered",
            &[
                ("outcome", outcome.to_string()),
                ("replayed", report.replayed_records.to_string()),
                ("manifests", report.manifests.to_string()),
            ],
        );

        let input_offset = replay.last().map_or(base_offset, |r| r.offset_after);
        let prev_crc = manifests.last().map(chain_crc).unwrap_or(0);
        let store = DurableStore {
            io,
            dir: cfg.dir,
            generation: newest,
            next_seq: manifests.len() as u64,
            prev_crc,
            rows_since_checkpoint: 0,
            checkpoint_rows: cfg.checkpoint_rows,
        };
        let recovered = Recovered { state, replay, manifests, input_offset, report };
        Ok((store, recovered))
    }

    /// Durably log one consumed input chunk. Call **before** feeding
    /// the chunk to the ingest session — WAL first is the discipline
    /// that makes every ingested row recoverable.
    pub fn log_chunk(&mut self, offset_after: u64, chunk: &[u8]) -> Result<(), StoreError> {
        let record = WalRecord { offset_after, chunk: chunk.to_vec() };
        let start = std::time::Instant::now();
        append_record(self.io.as_ref(), &wal_path(&self.dir, self.generation), &record)?;
        crate::obs::wal_fsync_seconds().record_duration(start.elapsed());
        Ok(())
    }

    /// Tell the store how many rows the last chunk added; returns
    /// `true` when enough rows accumulated that the caller should
    /// checkpoint.
    pub fn note_rows(&mut self, rows: u64) -> bool {
        self.rows_since_checkpoint += rows;
        self.checkpoint_rows > 0 && self.rows_since_checkpoint >= self.checkpoint_rows
    }

    /// Take a checkpoint of `state` at input offset `input_offset`:
    /// write generation `G+1`, roll the WAL to segment `G+1`, prune
    /// generation `G-1` and older (keeping `G` as the fallback root).
    pub fn checkpoint(
        &mut self,
        state: &SessionState,
        input_offset: u64,
    ) -> Result<(), StoreError> {
        let start = std::time::Instant::now();
        let span = dpsan_obs::trace::span(dpsan_obs::trace::Level::Info, "store", "checkpoint");
        let gen = self.generation + 1;
        write_checkpoint(self.io.as_ref(), &self.dir, gen, state, input_offset)?;
        self.generation = gen;
        self.rows_since_checkpoint = 0;
        // Prune: keep generations G and G-1 (and their WAL spans).
        for old in list_generations(&self.dir)? {
            if old + 1 < gen {
                let _ = self.io.remove_all(&checkpoint_dir(&self.dir, old));
            }
        }
        for seg in 0..gen.saturating_sub(1) {
            let p = wal_path(&self.dir, seg);
            if p.exists() {
                let _ = self.io.remove_all(&p);
            }
        }
        drop(span);
        crate::obs::checkpoint_seconds().record_duration(start.elapsed());
        Ok(())
    }

    /// Durably record a release: manifest **first** (the budget spend
    /// becomes permanent), artifact second. Returns the manifest.
    /// A crash between the two steps loses the artifact but never the
    /// accounting — recovery reports it under
    /// [`RecoveryReport::unpublished`].
    pub fn record_release(
        &mut self,
        spent: &[BudgetEntry],
        rows: u64,
        content: &[u8],
    ) -> Result<ReleaseManifest, StoreError> {
        let seq = self.next_seq;
        let manifest = ReleaseManifest {
            seq,
            prev_crc: self.prev_crc,
            artifact: format!("release-{seq:08}.tsv"),
            artifact_len: content.len() as u64,
            artifact_crc: crate::crc::crc32(content),
            rows,
            spent: spent.to_vec(),
        };
        write_manifest(self.io.as_ref(), &self.dir, &manifest)?;
        // The manifest is durable; only now may the artifact appear.
        self.next_seq = seq + 1;
        self.prev_crc = chain_crc(&manifest);
        self.io.write_atomic(&releases_dir(&self.dir).join(&manifest.artifact), content)?;
        Ok(manifest)
    }

    /// Root directory of the store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Newest generation = the live WAL segment number.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Sequence number the next release will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }
}

/// Manifest sequence numbers whose artifact is absent or fails its
/// recorded checksum.
fn unpublished_artifacts(dir: &Path, manifests: &[ReleaseManifest]) -> Vec<u64> {
    let releases = releases_dir(dir);
    manifests
        .iter()
        .filter(|m| match std::fs::read(releases.join(&m.artifact)) {
            Ok(bytes) => {
                bytes.len() as u64 != m.artifact_len || crate::crc::crc32(&bytes) != m.artifact_crc
            }
            Err(_) => true,
        })
        .map(|m| m.seq)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{flip_byte, DiskIo, FaultIo};
    use std::fs;
    use std::io::Cursor;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dpsan-store-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn cfg(dir: &Path) -> StoreConfig {
        StoreConfig { dir: dir.to_path_buf(), checkpoint_rows: 0 }
    }

    fn stream_cfg() -> StreamConfig {
        StreamConfig { shards: 3, chunk_rows: 8, sketch_capacity: 8, jobs: 1 }
    }

    fn chunk(i: u64) -> Vec<u8> {
        (0..5)
            .map(|j| {
                format!("user{:02}\tq{}\tsite{}.com\t{}\n", (i * 5 + j) % 9, j % 4, i % 3, 1 + j)
            })
            .collect::<String>()
            .into_bytes()
    }

    /// Drive a store through `n` chunks with checkpoints at the given
    /// chunk indices; returns the uninterrupted session for reference.
    fn drive(
        io: Arc<dyn StoreIo>,
        dir: &Path,
        n: u64,
        checkpoints: &[u64],
    ) -> Result<(DurableStore, IngestSession), StoreError> {
        let (mut store, recovered) = DurableStore::open(io, cfg(dir))?;
        let mut session = recovered.resume_session(stream_cfg())?;
        let mut offset = recovered.input_offset;
        for i in 0..n {
            let c = chunk(i);
            offset += c.len() as u64;
            store.log_chunk(offset, &c)?;
            session.ingest(Cursor::new(&c)).unwrap();
            if checkpoints.contains(&i) {
                store.checkpoint(&session.export_state(), offset)?;
            }
        }
        Ok((store, session))
    }

    /// One-shot reference: the same chunks through a fresh session.
    fn reference(n: u64) -> IngestSession {
        let mut s = IngestSession::new(stream_cfg());
        for i in 0..n {
            s.ingest(Cursor::new(chunk(i))).unwrap();
        }
        s
    }

    #[test]
    fn fresh_store_opens_empty() {
        let dir = tmpdir("fresh");
        let (store, recovered) = DurableStore::open(Arc::new(DiskIo), cfg(&dir)).unwrap();
        assert!(recovered.state.is_none());
        assert!(recovered.replay.is_empty());
        assert_eq!(recovered.input_offset, 0);
        assert_eq!(store.generation(), 0);
        assert_eq!(store.next_seq(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_replays_wal_to_the_exact_session() {
        let dir = tmpdir("wal-only");
        drive(Arc::new(DiskIo), &dir, 4, &[]).unwrap();
        let (_, recovered) = DurableStore::open(Arc::new(DiskIo), cfg(&dir)).unwrap();
        assert_eq!(recovered.report.replayed_records, 4);
        assert!(recovered.report.base_generation.is_none());
        let session = recovered.resume_session(stream_cfg()).unwrap();
        assert_eq!(session.export_state(), reference(4).export_state());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_after_checkpoint_restores_and_replays() {
        let dir = tmpdir("ckpt");
        drive(Arc::new(DiskIo), &dir, 6, &[2]).unwrap();
        let (store, recovered) = DurableStore::open(Arc::new(DiskIo), cfg(&dir)).unwrap();
        assert_eq!(recovered.report.base_generation, Some(1));
        assert_eq!(recovered.report.replayed_records, 3, "chunks 3..6 in wal-1");
        assert_eq!(store.generation(), 1);
        let session = recovered.resume_session(stream_cfg()).unwrap();
        assert_eq!(session.export_state(), reference(6).export_state());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_newest_checkpoint_falls_back_one_generation() {
        let dir = tmpdir("fallback");
        drive(Arc::new(DiskIo), &dir, 8, &[2, 5]).unwrap();
        // Flip a byte in a shard of checkpoint 2.
        let shard = crate::snapshot::shard_file(&checkpoint_dir(&dir, 2), 1);
        let len = fs::metadata(&shard).unwrap().len();
        flip_byte(&shard, len / 2).unwrap();

        let (_, recovered) = DurableStore::open(Arc::new(DiskIo), cfg(&dir)).unwrap();
        assert_eq!(recovered.report.base_generation, Some(1));
        assert_eq!(recovered.report.rejected.len(), 1);
        assert_eq!(recovered.report.rejected[0].0, 2);
        // wal-1 (chunks 3..6) + wal-2 (chunks 6..8)
        assert_eq!(recovered.report.replayed_records, 5);
        let session = recovered.resume_session(stream_cfg()).unwrap();
        assert_eq!(session.export_state(), reference(8).export_state());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn first_checkpoint_corrupt_falls_back_to_wal_alone() {
        let dir = tmpdir("fallback-empty");
        drive(Arc::new(DiskIo), &dir, 5, &[2]).unwrap();
        let meta = checkpoint_dir(&dir, 1).join("meta.bin");
        let len = fs::metadata(&meta).unwrap().len();
        flip_byte(&meta, len - 1).unwrap();

        let (_, recovered) = DurableStore::open(Arc::new(DiskIo), cfg(&dir)).unwrap();
        assert!(recovered.report.base_generation.is_none());
        assert_eq!(recovered.report.rejected.len(), 1);
        assert_eq!(recovered.report.replayed_records, 5, "wal-0 + wal-1 in full");
        let session = recovered.resume_session(stream_cfg()).unwrap();
        assert_eq!(session.export_state(), reference(5).export_state());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn both_recovery_roots_corrupt_is_a_hard_error() {
        let dir = tmpdir("dead");
        drive(Arc::new(DiskIo), &dir, 8, &[2, 5]).unwrap();
        for gen in [1u64, 2] {
            let meta = checkpoint_dir(&dir, gen).join("meta.bin");
            let len = fs::metadata(&meta).unwrap().len();
            flip_byte(&meta, len - 1).unwrap();
        }
        let err = DurableStore::open(Arc::new(DiskIo), cfg(&dir)).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)), "got: {err}");
        assert!(err.to_string().contains("no usable recovery root"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_live_wal_tail_is_truncated_and_replay_stops_there() {
        let dir = tmpdir("torn");
        drive(Arc::new(DiskIo), &dir, 4, &[]).unwrap();
        crate::io::tear_tail(&wal_path(&dir, 0), 7).unwrap();
        let (_, recovered) = DurableStore::open(Arc::new(DiskIo), cfg(&dir)).unwrap();
        assert_eq!(recovered.report.replayed_records, 3);
        // The tear removed part of record 4: 3 records survive and the
        // partial prefix of record 4 was truncated off.
        assert!(recovered.report.truncated_bytes > 0);
        let rescan = scan_segment(&wal_path(&dir, 0)).unwrap();
        assert_eq!(rescan.torn_bytes, 0, "repair left a clean segment");
        let session = recovered.resume_session(stream_cfg()).unwrap();
        assert_eq!(session.export_state(), reference(3).export_state());
        // Resume point: end of chunk 3, so re-reading the input file
        // from `input_offset` re-consumes exactly chunk 4.
        let want: u64 = (0..3).map(|i| chunk(i).len() as u64).sum();
        assert_eq!(recovered.input_offset, want);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_mid_chain_wal_is_a_hard_error() {
        let dir = tmpdir("torn-mid");
        drive(Arc::new(DiskIo), &dir, 8, &[2, 5]).unwrap();
        // Corrupt checkpoint 2 (forcing a fallback that needs wal-1)
        // AND tear wal-1: rows are genuinely unrecoverable.
        let shard = crate::snapshot::shard_file(&checkpoint_dir(&dir, 2), 0);
        flip_byte(&shard, 20).unwrap();
        crate::io::tear_tail(&wal_path(&dir, 1), 3).unwrap();
        let err = DurableStore::open(Arc::new(DiskIo), cfg(&dir)).unwrap_err();
        assert!(err.to_string().contains("torn mid-chain"), "got: {err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoints_prune_old_generations() {
        let dir = tmpdir("prune");
        drive(Arc::new(DiskIo), &dir, 9, &[1, 3, 5, 7]).unwrap();
        let gens = list_generations(&dir).unwrap();
        assert_eq!(gens, vec![3, 4], "only the two newest generations survive");
        assert!(!wal_path(&dir, 0).exists());
        assert!(!wal_path(&dir, 2).exists());
        assert!(wal_path(&dir, 3).exists());
        assert!(wal_path(&dir, 4).exists());
        // And the pruned store still recovers exactly.
        let (_, recovered) = DurableStore::open(Arc::new(DiskIo), cfg(&dir)).unwrap();
        let session = recovered.resume_session(stream_cfg()).unwrap();
        assert_eq!(session.export_state(), reference(9).export_state());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn releases_record_manifest_before_artifact() {
        let dir = tmpdir("release");
        let (mut store, _) = DurableStore::open(Arc::new(DiskIo), cfg(&dir)).unwrap();
        let spent = vec![BudgetEntry { label: "release 0".into(), epsilon: 0.7, delta: 0.05 }];
        let m = store.record_release(&spent, 42, b"sanitized output\n").unwrap();
        assert_eq!(m.seq, 0);
        let on_disk = fs::read(releases_dir(&dir).join(&m.artifact)).unwrap();
        assert_eq!(on_disk, b"sanitized output\n");
        // Reopen: chain has the release, artifact verifies.
        let (store2, recovered) = DurableStore::open(Arc::new(DiskIo), cfg(&dir)).unwrap();
        assert_eq!(recovered.manifests.len(), 1);
        assert!(recovered.report.unpublished.is_empty());
        assert_eq!(store2.next_seq(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_between_manifest_and_artifact_spends_but_never_publishes() {
        let dir = tmpdir("crash-gap");
        {
            let (mut store, _) = DurableStore::open(Arc::new(DiskIo), cfg(&dir)).unwrap();
            store
                .record_release(
                    &[BudgetEntry { label: "r0".into(), epsilon: 0.3, delta: 0.0 }],
                    10,
                    b"first\n",
                )
                .unwrap();
        }
        // Now a store whose io dies right after the manifest write:
        // measure the manifest size, then kill at just past it.
        let manifest_len = fs::metadata(crate::manifest::manifest_path(&dir, 0)).unwrap().len();
        let io = Arc::new(FaultIo::new(manifest_len + 2));
        let (mut store, _) = DurableStore::open(io, cfg(&dir)).unwrap();
        let err = store
            .record_release(
                &[BudgetEntry { label: "r1".into(), epsilon: 0.3, delta: 0.0 }],
                20,
                b"second\n",
            )
            .unwrap_err();
        assert!(matches!(err, StoreError::Io(_)), "got: {err}");

        // Recovery: two manifests (the spend is permanent), artifact 1
        // missing → unpublished, and the ledger can never under-count.
        let (store3, recovered) = DurableStore::open(Arc::new(DiskIo), cfg(&dir)).unwrap();
        assert_eq!(recovered.manifests.len(), 2);
        assert_eq!(recovered.report.unpublished, vec![1]);
        let ledger = crate::manifest::rebuild_ledger(&recovered.manifests, None);
        assert!((ledger.total_epsilon() - 0.6).abs() < 1e-12);
        assert_eq!(store3.next_seq(), 2, "the lost artifact's seq is not reused");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_during_manifest_write_spends_nothing() {
        let dir = tmpdir("crash-manifest");
        let io = Arc::new(FaultIo::new(4)); // dies 4 bytes into the manifest temp file
        let (mut store, _) = DurableStore::open(io, cfg(&dir)).unwrap();
        let err = store
            .record_release(
                &[BudgetEntry { label: "r0".into(), epsilon: 0.3, delta: 0.0 }],
                10,
                b"out\n",
            )
            .unwrap_err();
        assert!(matches!(err, StoreError::Io(_)));
        let (store2, recovered) = DurableStore::open(Arc::new(DiskIo), cfg(&dir)).unwrap();
        assert!(recovered.manifests.is_empty(), "no manifest, no spend, no artifact");
        assert_eq!(store2.next_seq(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn note_rows_triggers_at_the_threshold() {
        let dir = tmpdir("note");
        let (mut store, _) = DurableStore::open(
            Arc::new(DiskIo),
            StoreConfig { dir: dir.clone(), checkpoint_rows: 10 },
        )
        .unwrap();
        assert!(!store.note_rows(4));
        assert!(!store.note_rows(5));
        assert!(store.note_rows(1), "10 rows reached");
        fs::remove_dir_all(&dir).unwrap();
    }
}
