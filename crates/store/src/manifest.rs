//! Versioned release manifests: the durable privacy ledger.
//!
//! Every sanitized release the daemon publishes is recorded as a
//! manifest file under `releases/`:
//!
//! ```text
//! releases/
//!   manifest-00000000.bin
//!   manifest-00000001.bin
//!   ...
//!   release-00000001.tsv     the checksummed artifact itself
//! ```
//!
//! A manifest names the release artifact, its length and CRC-32, and
//! — the part that makes budgets survive restarts — the exact
//! [`BudgetEntry`] list the release spent, with ε and δ stored as raw
//! IEEE-754 bits. Manifests are **chained**: each embeds the CRC-32 of
//! the previous manifest's file bytes, so a deleted or substituted
//! middle manifest breaks every later link.
//!
//! The write ordering is *manifest first*: the manifest is durable on
//! disk **before** the release artifact is published. A crash between
//! the two wastes that release's budget (the ledger remembers a spend
//! whose output never shipped) — the conservative direction. The
//! reverse order could publish sanitized output that a restarted
//! daemon doesn't account for, silently overspending the lifetime
//! (ε, δ); that must be impossible.
//!
//! Accordingly, chain corruption is a **hard startup error**, not a
//! fallback: dropping an undecodable manifest would under-count spent
//! budget. The operator must restore the file or retire the store
//! directory; the daemon refuses to guess.

use crate::codec::{frame_file, unframe_file, CodecError, Decoder, Encoder};
use crate::crc::crc32;
use crate::io::StoreIo;
use dpsan_dp::BudgetEntry;
use std::io;
use std::path::{Path, PathBuf};

/// Magic for manifest files: `"DMAN"`.
pub const MANIFEST_MAGIC: u32 = u32::from_le_bytes(*b"DMAN");

/// The releases subdirectory of a store.
pub fn releases_dir(store_dir: &Path) -> PathBuf {
    store_dir.join("releases")
}

/// Path of the manifest with sequence number `seq`.
pub fn manifest_path(store_dir: &Path, seq: u64) -> PathBuf {
    releases_dir(store_dir).join(format!("manifest-{seq:08}.bin"))
}

/// Parse a sequence number back out of a `manifest-NNNNNNNN.bin` name.
pub fn parse_manifest_name(name: &str) -> Option<u64> {
    name.strip_prefix("manifest-")?.strip_suffix(".bin")?.parse().ok()
}

/// One release's durable record.
#[derive(Debug, Clone, PartialEq)]
pub struct ReleaseManifest {
    /// Release sequence number, 0-based, contiguous.
    pub seq: u64,
    /// CRC-32 of the previous manifest's file bytes (0 for seq 0).
    pub prev_crc: u32,
    /// File name of the release artifact (relative to `releases/`).
    pub artifact: String,
    /// Byte length of the artifact.
    pub artifact_len: u64,
    /// CRC-32 of the artifact bytes.
    pub artifact_crc: u32,
    /// Input rows the release covered (the window bound).
    pub rows: u64,
    /// The exact budget entries this release spent.
    pub spent: Vec<BudgetEntry>,
}

fn encode_manifest(m: &ReleaseManifest) -> Vec<u8> {
    let mut e = Encoder::new();
    e.u64(m.seq);
    e.u32(m.prev_crc);
    e.str(&m.artifact);
    e.u64(m.artifact_len);
    e.u32(m.artifact_crc);
    e.u64(m.rows);
    e.u64(m.spent.len() as u64);
    for entry in &m.spent {
        e.str(&entry.label);
        e.f64(entry.epsilon);
        e.f64(entry.delta);
    }
    e.finish()
}

fn decode_manifest(payload: &[u8]) -> Result<ReleaseManifest, CodecError> {
    let mut d = Decoder::new(payload);
    let seq = d.u64()?;
    let prev_crc = d.u32()?;
    let artifact = d.str()?;
    let artifact_len = d.u64()?;
    let artifact_crc = d.u32()?;
    let rows = d.u64()?;
    let n = d.count(24)?; // label prefix + two f64s per entry
    let mut spent = Vec::with_capacity(n);
    for _ in 0..n {
        let label = d.str()?;
        let epsilon = d.f64()?;
        let delta = d.f64()?;
        spent.push(BudgetEntry { label, epsilon, delta });
    }
    d.expect_end()?;
    Ok(ReleaseManifest { seq, prev_crc, artifact, artifact_len, artifact_crc, rows, spent })
}

/// Durably append `manifest` to the chain. The caller is responsible
/// for setting `prev_crc` via [`chain_crc`] and for writing the
/// artifact only *after* this returns.
pub fn write_manifest(
    io: &dyn StoreIo,
    store_dir: &Path,
    manifest: &ReleaseManifest,
) -> io::Result<()> {
    io.create_dir_all(&releases_dir(store_dir))?;
    let bytes = frame_file(MANIFEST_MAGIC, &encode_manifest(manifest));
    io.write_atomic(&manifest_path(store_dir, manifest.seq), &bytes)
}

/// CRC-32 of a manifest's file bytes — the value the *next* manifest
/// must embed as `prev_crc`.
pub fn chain_crc(manifest: &ReleaseManifest) -> u32 {
    crc32(&frame_file(MANIFEST_MAGIC, &encode_manifest(manifest)))
}

/// Read and verify the whole manifest chain. Returns the manifests in
/// sequence order. Errors are hard: a gap, an undecodable file, or a
/// broken chain link all mean the spent-budget record is incomplete,
/// and proceeding could overspend the lifetime (ε, δ).
pub fn read_chain(store_dir: &Path) -> Result<Vec<ReleaseManifest>, String> {
    let dir = releases_dir(store_dir);
    let mut seqs = Vec::new();
    match std::fs::read_dir(&dir) {
        Ok(entries) => {
            for entry in entries {
                let entry = entry.map_err(|e| format!("releases dir unreadable: {e}"))?;
                if let Some(name) = entry.file_name().to_str() {
                    if let Some(seq) = parse_manifest_name(name) {
                        seqs.push(seq);
                    }
                }
            }
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("releases dir unreadable: {e}")),
    }
    seqs.sort_unstable();
    let mut chain = Vec::with_capacity(seqs.len());
    let mut prev_crc = 0u32;
    for (i, &seq) in seqs.iter().enumerate() {
        if seq != i as u64 {
            return Err(format!(
                "manifest chain has a gap: expected manifest {i}, found {seq} — refusing to \
                 under-count spent budget"
            ));
        }
        let path = manifest_path(store_dir, seq);
        let bytes = std::fs::read(&path).map_err(|e| format!("manifest {seq} unreadable: {e}"))?;
        let payload = unframe_file(MANIFEST_MAGIC, &bytes)
            .map_err(|e| format!("manifest {seq} corrupt: {e}"))?;
        let m = decode_manifest(payload).map_err(|e| format!("manifest {seq} corrupt: {e}"))?;
        if m.seq != seq {
            return Err(format!("manifest {seq} claims sequence {} (renamed file?)", m.seq));
        }
        if m.prev_crc != prev_crc {
            return Err(format!(
                "manifest {seq} chain link broken: embeds prev_crc {:#010x}, predecessor hashes \
                 to {prev_crc:#010x} — a manifest was altered or substituted",
                m.prev_crc
            ));
        }
        prev_crc = crc32(&bytes);
        chain.push(m);
    }
    Ok(chain)
}

/// Rebuild a [`dpsan_dp::BudgetLedger`] from a verified chain: every
/// recorded spend is replayed bit-for-bit, then the lifetime cap (if
/// any) governs *future* spends. Replayed history may already exceed a
/// newly lowered cap — the ledger records facts; `try_spend` will
/// refuse everything further, which is the safe behavior.
pub fn rebuild_ledger(
    chain: &[ReleaseManifest],
    lifetime: Option<(f64, f64)>,
) -> dpsan_dp::BudgetLedger {
    let mut ledger = match lifetime {
        Some((e, d)) => dpsan_dp::BudgetLedger::with_lifetime(e, d),
        None => dpsan_dp::BudgetLedger::new(),
    };
    for m in chain {
        for entry in &m.spent {
            ledger.spend(entry.label.clone(), entry.epsilon, entry.delta);
        }
    }
    ledger
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{flip_byte, DiskIo};
    use std::fs;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dpsan-store-man-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_manifest(seq: u64, prev_crc: u32) -> ReleaseManifest {
        ReleaseManifest {
            seq,
            prev_crc,
            artifact: format!("release-{seq:08}.tsv"),
            artifact_len: 100 + seq,
            artifact_crc: 0xABCD + seq as u32,
            rows: 10 * (seq + 1),
            spent: vec![
                BudgetEntry { label: format!("release {seq}"), epsilon: 0.5, delta: 0.01 },
                BudgetEntry { label: "laplace".into(), epsilon: 0.1, delta: 0.0 },
            ],
        }
    }

    fn write_chain(dir: &Path, n: u64) -> Vec<ReleaseManifest> {
        let mut prev = 0u32;
        let mut out = Vec::new();
        for seq in 0..n {
            let m = sample_manifest(seq, prev);
            write_manifest(&DiskIo, dir, &m).unwrap();
            prev = chain_crc(&m);
            out.push(m);
        }
        out
    }

    #[test]
    fn chain_roundtrips() {
        let dir = tmpdir("roundtrip");
        let written = write_chain(&dir, 4);
        let read = read_chain(&dir).unwrap();
        assert_eq!(read, written);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_store_has_empty_chain() {
        let dir = tmpdir("empty");
        assert_eq!(read_chain(&dir).unwrap(), Vec::new());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gap_in_chain_is_a_hard_error() {
        let dir = tmpdir("gap");
        write_chain(&dir, 3);
        fs::remove_file(manifest_path(&dir, 1)).unwrap();
        let err = read_chain(&dir).unwrap_err();
        assert!(err.contains("gap"), "got: {err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flipped_manifest_byte_is_a_hard_error() {
        let dir = tmpdir("flip");
        write_chain(&dir, 3);
        let p = manifest_path(&dir, 1);
        let len = fs::metadata(&p).unwrap().len();
        flip_byte(&p, len / 2).unwrap();
        let err = read_chain(&dir).unwrap_err();
        assert!(err.contains("corrupt"), "got: {err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn substituted_manifest_breaks_the_chain_link() {
        // Replace manifest 1 with a perfectly well-formed manifest that
        // simply spends less — the CRC chain catches it.
        let dir = tmpdir("subst");
        let chain = write_chain(&dir, 3);
        let mut fake = sample_manifest(1, chain[1].prev_crc);
        fake.spent.truncate(1);
        write_manifest(&DiskIo, &dir, &fake).unwrap();
        let err = read_chain(&dir).unwrap_err();
        assert!(err.contains("chain link broken"), "got: {err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rebuilt_ledger_matches_sequential_composition_exactly() {
        let dir = tmpdir("ledger");
        let written = write_chain(&dir, 5);
        let chain = read_chain(&dir).unwrap();
        let ledger = rebuild_ledger(&chain, None);
        let want_entries: Vec<&BudgetEntry> = written.iter().flat_map(|m| m.spent.iter()).collect();
        assert_eq!(ledger.entries().len(), want_entries.len());
        for (got, want) in ledger.entries().iter().zip(want_entries) {
            assert_eq!(got, want);
            // bit-exact, not merely approximately equal
            assert_eq!(got.epsilon.to_bits(), want.epsilon.to_bits());
            assert_eq!(got.delta.to_bits(), want.delta.to_bits());
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rebuilt_capped_ledger_enforces_the_remaining_budget() {
        let dir = tmpdir("capped");
        write_chain(&dir, 2); // spends 2 × (0.6, 0.01)
        let chain = read_chain(&dir).unwrap();
        let mut ledger = rebuild_ledger(&chain, Some((1.5, 0.1)));
        assert!((ledger.total_epsilon() - 1.2).abs() < 1e-12);
        ledger.try_spend("r", 0.3, 0.0).unwrap();
        assert!(ledger.try_spend("r", 0.1, 0.0).is_err(), "cap survives the restart");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn history_past_a_lowered_cap_refuses_all_future_spends() {
        let dir = tmpdir("lowered");
        write_chain(&dir, 3); // 1.8 total ε
        let chain = read_chain(&dir).unwrap();
        let mut ledger = rebuild_ledger(&chain, Some((1.0, 0.1)));
        assert!(ledger.total_epsilon() > 1.0, "history preserved even past the cap");
        assert!(ledger.try_spend("r", 1e-9, 0.0).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
