//! The write-ahead log: an append-only record stream of consumed
//! input chunks.
//!
//! Each record frames one TSV chunk exactly as it was handed to the
//! ingest session, plus the input-file offset *after* consuming it:
//!
//! ```text
//! ┌──────────┬──────────┬──────────┬───────────────────────────────┐
//! │ magic u32│ len  u32 │ crc  u32 │ payload (len bytes)           │
//! ├──────────┴──────────┴──────────┼───────────────────────────────┤
//! │ "DWAL" · payload length · CRC32│ offset_after u64 · chunk bytes│
//! └────────────────────────────────┴───────────────────────────────┘
//! ```
//!
//! The append discipline is *WAL first*: a chunk is framed, appended,
//! and fsynced **before** the in-memory session ingests it, so every
//! row the session has ever seen is either inside a checkpoint or
//! replayable from the log. Replay goes through the very same
//! `IngestSession::ingest` the live path uses, which is deterministic
//! — so checkpoint + replay is *exactly* one-shot ingestion of the
//! consumed prefix, and everything downstream stays byte-identical.
//!
//! A crash mid-append leaves a prefix of the final record. The reader
//! stops at the first frame whose magic, length, or CRC does not hold
//! and reports the byte offset where valid data ends; recovery
//! truncates the file there and resumes reading the *input* from the
//! last good `offset_after` — torn tails lose no data because the
//! tailed input file still holds those bytes.

use crate::codec::{Decoder, Encoder};
use crate::crc::crc32;
use crate::io::StoreIo;
use std::io;
use std::path::Path;

/// Frame magic: `"DWAL"` little-endian.
pub const WAL_MAGIC: u32 = u32::from_le_bytes(*b"DWAL");

/// Frame header size: magic + payload length + payload CRC.
pub const WAL_HEADER: usize = 12;

/// One replayable ingest step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Input-file offset after this chunk was consumed.
    pub offset_after: u64,
    /// The raw TSV chunk bytes, complete lines only.
    pub chunk: Vec<u8>,
}

/// Frame one record for appending.
pub fn encode_record(record: &WalRecord) -> Vec<u8> {
    let mut payload = Encoder::new();
    payload.u64(record.offset_after);
    let mut payload = payload.finish();
    payload.extend_from_slice(&record.chunk);

    let mut frame = Encoder::new();
    frame.u32(WAL_MAGIC);
    frame.u32(payload.len() as u32);
    frame.u32(crc32(&payload));
    let mut frame = frame.finish();
    frame.extend_from_slice(&payload);
    frame
}

/// Append one record to the segment at `path` through `io`.
pub fn append_record(io: &dyn StoreIo, path: &Path, record: &WalRecord) -> io::Result<()> {
    io.append(path, &encode_record(record))
}

/// Everything a segment scan learns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalScan {
    /// The valid records, in append order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix (where truncation repair cuts).
    pub valid_len: u64,
    /// Bytes of torn/corrupt tail beyond the valid prefix (0 = clean).
    pub torn_bytes: u64,
}

impl WalScan {
    /// Input offset after the last valid record, if any.
    pub fn last_offset(&self) -> Option<u64> {
        self.records.last().map(|r| r.offset_after)
    }
}

/// Scan a segment's bytes, stopping at the first frame that does not
/// verify. A missing file is an empty, clean log (the segment is
/// created lazily by the first append).
pub fn scan_segment(path: &Path) -> io::Result<WalScan> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    Ok(scan_bytes(&bytes))
}

/// Scan in-memory segment bytes (the testable core of
/// [`scan_segment`]).
pub fn scan_bytes(bytes: &[u8]) -> WalScan {
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        let rest = &bytes[pos..];
        if rest.is_empty() {
            break;
        }
        if rest.len() < WAL_HEADER {
            break; // torn mid-header
        }
        let mut d = Decoder::new(&rest[..WAL_HEADER]);
        let magic = d.u32().expect("header slice is 12 bytes");
        let len = d.u32().expect("header slice is 12 bytes") as usize;
        let crc = d.u32().expect("header slice is 12 bytes");
        if magic != WAL_MAGIC {
            break; // torn or overwritten frame boundary
        }
        let Some(payload) = rest.get(WAL_HEADER..WAL_HEADER + len) else {
            break; // torn mid-payload
        };
        if crc32(payload) != crc {
            break; // corrupt payload
        }
        if payload.len() < 8 {
            break; // payload too short to hold the offset
        }
        let mut pd = Decoder::new(payload);
        let offset_after = pd.u64().expect("length checked above");
        records.push(WalRecord { offset_after, chunk: payload[8..].to_vec() });
        pos += WAL_HEADER + len;
    }
    WalScan { records, valid_len: pos as u64, torn_bytes: (bytes.len() - pos) as u64 }
}

/// Repair a segment in place: truncate any torn tail found by a scan.
/// Returns the scan (post-repair the file ends at `valid_len`).
pub fn repair_segment(io: &dyn StoreIo, path: &Path) -> io::Result<WalScan> {
    let scan = scan_segment(path)?;
    if scan.torn_bytes > 0 {
        io.truncate(path, scan.valid_len)?;
    }
    Ok(scan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{flip_byte, tear_tail, DiskIo, FaultIo};
    use std::fs;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dpsan-store-wal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_records() -> Vec<WalRecord> {
        (1..=4u64)
            .map(|i| WalRecord {
                offset_after: i * 100,
                chunk: format!("user{i}\tq{i}\tsite.com\t{i}\n").into_bytes(),
            })
            .collect()
    }

    #[test]
    fn append_then_scan_roundtrips() {
        let dir = tmpdir("roundtrip");
        let p = dir.join("wal-0000.log");
        let records = sample_records();
        for r in &records {
            append_record(&DiskIo, &p, r).unwrap();
        }
        let scan = scan_segment(&p).unwrap();
        assert_eq!(scan.records, records);
        assert_eq!(scan.torn_bytes, 0);
        assert_eq!(scan.last_offset(), Some(400));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_segment_is_empty_and_clean() {
        let dir = tmpdir("missing");
        let scan = scan_segment(&dir.join("wal-0000.log")).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.valid_len, 0);
        assert_eq!(scan.torn_bytes, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// The core torn-write property: for EVERY possible crash point in
    /// the byte stream, the scan returns exactly the records whose
    /// frames completed, and never panics or mis-parses.
    #[test]
    fn every_crash_point_yields_the_completed_prefix() {
        let records = sample_records();
        let mut full = Vec::new();
        let mut boundaries = vec![0usize];
        for r in &records {
            full.extend_from_slice(&encode_record(r));
            boundaries.push(full.len());
        }
        for cut in 0..=full.len() {
            let scan = scan_bytes(&full[..cut]);
            let complete = boundaries.iter().filter(|&&b| b <= cut && b > 0).count();
            assert_eq!(scan.records.len(), complete, "cut at byte {cut}");
            assert_eq!(scan.records[..], records[..complete], "cut at byte {cut}");
            assert_eq!(scan.valid_len as usize, boundaries[complete], "cut at byte {cut}");
        }
    }

    #[test]
    fn fault_injected_append_tears_exactly_one_record() {
        let records = sample_records();
        let frame_len = encode_record(&records[0]).len() as u64;
        // Crash 5 bytes into the third record's frame.
        let two_frames: u64 = records[..2].iter().map(|r| encode_record(r).len() as u64).sum();
        let io = FaultIo::new(two_frames + 5);
        let dir = tmpdir("fault");
        let p = dir.join("wal-0000.log");
        append_record(&io, &p, &records[0]).unwrap();
        append_record(&io, &p, &records[1]).unwrap();
        assert!(append_record(&io, &p, &records[2]).is_err());
        let scan = scan_segment(&p).unwrap();
        assert_eq!(scan.records, records[..2]);
        assert_eq!(scan.torn_bytes, 5);
        // Repair truncates the tail; a rescan is clean.
        repair_segment(&DiskIo, &p).unwrap();
        let rescan = scan_segment(&p).unwrap();
        assert_eq!(rescan.records, records[..2]);
        assert_eq!(rescan.torn_bytes, 0);
        assert!(frame_len > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flipped_payload_byte_stops_the_scan_there() {
        let dir = tmpdir("flip");
        let p = dir.join("wal-0000.log");
        let records = sample_records();
        for r in &records {
            append_record(&DiskIo, &p, r).unwrap();
        }
        // Flip a byte inside the second record's payload.
        let first_len = encode_record(&records[0]).len() as u64;
        flip_byte(&p, first_len + WAL_HEADER as u64 + 3).unwrap();
        let scan = scan_segment(&p).unwrap();
        assert_eq!(scan.records, records[..1], "scan stops at the corrupt frame");
        assert!(scan.torn_bytes > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_header_is_detected() {
        let dir = tmpdir("torn-header");
        let p = dir.join("wal-0000.log");
        let records = sample_records();
        append_record(&DiskIo, &p, &records[0]).unwrap();
        append_record(&DiskIo, &p, &records[1]).unwrap();
        let len = fs::metadata(&p).unwrap().len();
        let second = encode_record(&records[1]).len() as u64;
        tear_tail(&p, second - 6).unwrap(); // leave 6 bytes of record 2
        assert!(fs::metadata(&p).unwrap().len() < len);
        let scan = scan_segment(&p).unwrap();
        assert_eq!(scan.records, records[..1]);
        assert_eq!(scan.torn_bytes, 6);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_chunk_records_are_legal() {
        let r = WalRecord { offset_after: 42, chunk: Vec::new() };
        let scan = scan_bytes(&encode_record(&r));
        assert_eq!(scan.records, vec![r]);
    }
}
