//! Checkpoints: checksummed snapshots of the whole ingest session.
//!
//! A checkpoint is a directory
//!
//! ```text
//! checkpoint-GGGGGGGG/
//!   shard-0000.snap      framed shard state (+ sketch) per shard
//!   shard-0001.snap
//!   ...
//!   meta.bin             framed metadata — written LAST, atomically
//! ```
//!
//! `meta.bin` records the generation, the input-file offset at
//! checkpoint time, the session counters, and the CRC-32 of every
//! shard payload. Because it is written last with temp-file + rename,
//! its presence *is* checkpoint validity: a crash mid-checkpoint
//! leaves a directory without a decodable `meta.bin`, which recovery
//! skips as if it never existed. A checkpoint whose meta decodes but
//! whose shard files don't match their recorded CRCs is rejected the
//! same way — recovery then falls back to the previous generation and
//! replays both WAL segments (see [`crate::store`]).

use crate::codec::{
    decode_shard_snapshot, encode_shard_snapshot, frame_file, unframe_file, CodecError, Decoder,
    Encoder,
};
use crate::crc::crc32;
use crate::io::StoreIo;
use dpsan_stream::SessionState;
use std::io;
use std::path::{Path, PathBuf};

/// Magic for shard snapshot files: `"DSNP"`.
pub const SNAP_MAGIC: u32 = u32::from_le_bytes(*b"DSNP");

/// Magic for checkpoint metadata files: `"DMET"`.
pub const META_MAGIC: u32 = u32::from_le_bytes(*b"DMET");

/// Directory name of generation `gen`.
pub fn checkpoint_dir(store_dir: &Path, gen: u64) -> PathBuf {
    store_dir.join(format!("checkpoint-{gen:08}"))
}

/// File name of shard `idx` inside a checkpoint directory.
pub fn shard_file(dir: &Path, idx: usize) -> PathBuf {
    dir.join(format!("shard-{idx:04}.snap"))
}

/// Parse a generation number back out of a `checkpoint-GGGGGGGG` name.
pub fn parse_checkpoint_dir(name: &str) -> Option<u64> {
    name.strip_prefix("checkpoint-")?.parse().ok()
}

/// Decoded checkpoint metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointMeta {
    /// Generation number (monotone per store).
    pub generation: u64,
    /// Input-file offset at checkpoint time: replay of the paired WAL
    /// segment continues from here.
    pub input_offset: u64,
    /// Session row counter at checkpoint time.
    pub rows: u64,
    /// Session line counter at checkpoint time.
    pub lines: u64,
    /// Session peak chunk buffer at checkpoint time.
    pub peak_chunk_rows: u64,
    /// Whether per-shard sketches are included.
    pub has_sketches: bool,
    /// CRC-32 of each shard file's *payload*, indexed by shard.
    pub shard_crcs: Vec<u32>,
}

fn encode_meta(meta: &CheckpointMeta) -> Vec<u8> {
    let mut e = Encoder::new();
    e.u64(meta.generation);
    e.u64(meta.input_offset);
    e.u64(meta.rows);
    e.u64(meta.lines);
    e.u64(meta.peak_chunk_rows);
    e.u32(meta.has_sketches as u32);
    e.u64(meta.shard_crcs.len() as u64);
    for &crc in &meta.shard_crcs {
        e.u32(crc);
    }
    e.finish()
}

fn decode_meta(payload: &[u8]) -> Result<CheckpointMeta, CodecError> {
    let mut d = Decoder::new(payload);
    let generation = d.u64()?;
    let input_offset = d.u64()?;
    let rows = d.u64()?;
    let lines = d.u64()?;
    let peak_chunk_rows = d.u64()?;
    let has_sketches = match d.u32()? {
        0 => false,
        1 => true,
        other => return Err(CodecError(format!("bad sketch flag {other}"))),
    };
    let n = d.count(4)?;
    let mut shard_crcs = Vec::with_capacity(n);
    for _ in 0..n {
        shard_crcs.push(d.u32()?);
    }
    d.expect_end()?;
    Ok(CheckpointMeta {
        generation,
        input_offset,
        rows,
        lines,
        peak_chunk_rows,
        has_sketches,
        shard_crcs,
    })
}

/// Write a whole checkpoint for `state` at `gen`. Shard files first,
/// `meta.bin` last — the commit point.
pub fn write_checkpoint(
    io: &dyn StoreIo,
    store_dir: &Path,
    gen: u64,
    state: &SessionState,
    input_offset: u64,
) -> io::Result<()> {
    let dir = checkpoint_dir(store_dir, gen);
    io.create_dir_all(&dir)?;
    let mut shard_crcs = Vec::with_capacity(state.shards.len());
    for (i, shard) in state.shards.iter().enumerate() {
        let payload = encode_shard_snapshot(shard, state.sketches.get(i));
        shard_crcs.push(crc32(&payload));
        io.write_atomic(&shard_file(&dir, i), &frame_file(SNAP_MAGIC, &payload))?;
    }
    let meta = CheckpointMeta {
        generation: gen,
        input_offset,
        rows: state.rows,
        lines: state.lines,
        peak_chunk_rows: state.peak_chunk_rows as u64,
        has_sketches: !state.sketches.is_empty(),
        shard_crcs,
    };
    io.write_atomic(&dir.join("meta.bin"), &frame_file(META_MAGIC, &encode_meta(&meta)))
}

/// Read and fully verify the checkpoint at `gen`, reconstructing the
/// session state. Any failure — missing or undecodable meta, missing
/// shard file, CRC mismatch against the meta's record, undecodable
/// shard payload — is reported as a `String` so the caller can fall
/// back to an older generation.
pub fn read_checkpoint(
    store_dir: &Path,
    gen: u64,
) -> Result<(SessionState, CheckpointMeta), String> {
    let dir = checkpoint_dir(store_dir, gen);
    let meta_bytes = std::fs::read(dir.join("meta.bin"))
        .map_err(|e| format!("checkpoint {gen}: meta.bin unreadable: {e}"))?;
    let meta_payload = unframe_file(META_MAGIC, &meta_bytes)
        .map_err(|e| format!("checkpoint {gen}: meta.bin: {e}"))?;
    let meta = decode_meta(meta_payload).map_err(|e| format!("checkpoint {gen}: meta.bin: {e}"))?;
    if meta.generation != gen {
        return Err(format!(
            "checkpoint {gen}: meta claims generation {} (misplaced directory?)",
            meta.generation
        ));
    }
    let mut shards = Vec::with_capacity(meta.shard_crcs.len());
    let mut sketches = Vec::new();
    for (i, &want_crc) in meta.shard_crcs.iter().enumerate() {
        let path = shard_file(&dir, i);
        let bytes = std::fs::read(&path)
            .map_err(|e| format!("checkpoint {gen}: shard {i} unreadable: {e}"))?;
        let payload = unframe_file(SNAP_MAGIC, &bytes)
            .map_err(|e| format!("checkpoint {gen}: shard {i}: {e}"))?;
        if crc32(payload) != want_crc {
            return Err(format!(
                "checkpoint {gen}: shard {i} checksum does not match the meta record"
            ));
        }
        let (shard, sketch) = decode_shard_snapshot(payload)
            .map_err(|e| format!("checkpoint {gen}: shard {i}: {e}"))?;
        if meta.has_sketches != sketch.is_some() {
            return Err(format!("checkpoint {gen}: shard {i} sketch presence disagrees with meta"));
        }
        shards.push(shard);
        if let Some(sk) = sketch {
            sketches.push(sk);
        }
    }
    let state = SessionState {
        shards,
        sketches,
        rows: meta.rows,
        lines: meta.lines,
        peak_chunk_rows: meta.peak_chunk_rows as usize,
    };
    Ok((state, meta))
}

/// List the generations that have a checkpoint directory under
/// `store_dir`, ascending. Directories are listed by *name only* —
/// validity is decided by [`read_checkpoint`].
pub fn list_generations(store_dir: &Path) -> io::Result<Vec<u64>> {
    let mut gens = Vec::new();
    let entries = match std::fs::read_dir(store_dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(gens),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        if let Some(name) = entry.file_name().to_str() {
            if let Some(gen) = parse_checkpoint_dir(name) {
                gens.push(gen);
            }
        }
    }
    gens.sort_unstable();
    Ok(gens)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{flip_byte, DiskIo};
    use dpsan_stream::{IngestSession, StreamConfig};
    use std::fs;
    use std::io::Cursor;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dpsan-store-snap-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_state(sketch_capacity: usize) -> (StreamConfig, SessionState) {
        let mut tsv = String::new();
        for i in 0..50 {
            tsv.push_str(&format!("u{:02}\tq{}\ts{}.com\t{}\n", i % 11, i % 7, i % 3, 1 + i % 4));
        }
        let cfg = StreamConfig { shards: 4, chunk_rows: 8, sketch_capacity, jobs: 1 };
        let mut s = IngestSession::new(cfg.clone());
        s.ingest(Cursor::new(tsv)).unwrap();
        (cfg, s.export_state())
    }

    #[test]
    fn checkpoint_roundtrip_is_exact() {
        for cap in [0usize, 8] {
            let dir = tmpdir(&format!("roundtrip-{cap}"));
            let (cfg, state) = sample_state(cap);
            write_checkpoint(&DiskIo, &dir, 3, &state, 12345).unwrap();
            let (got, meta) = read_checkpoint(&dir, 3).unwrap();
            assert_eq!(got, state);
            assert_eq!(meta.input_offset, 12345);
            assert_eq!(meta.generation, 3);
            // and the state actually restores into a working session
            IngestSession::restore(cfg, got).unwrap();
            fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn missing_meta_invalidates_the_checkpoint() {
        let dir = tmpdir("no-meta");
        let (_, state) = sample_state(8);
        write_checkpoint(&DiskIo, &dir, 0, &state, 0).unwrap();
        fs::remove_file(checkpoint_dir(&dir, 0).join("meta.bin")).unwrap();
        let err = read_checkpoint(&dir, 0).unwrap_err();
        assert!(err.contains("meta.bin unreadable"), "got: {err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flipped_shard_byte_is_rejected() {
        let dir = tmpdir("flip-shard");
        let (_, state) = sample_state(8);
        write_checkpoint(&DiskIo, &dir, 0, &state, 0).unwrap();
        let shard0 = shard_file(&checkpoint_dir(&dir, 0), 0);
        let len = fs::metadata(&shard0).unwrap().len();
        flip_byte(&shard0, len / 2).unwrap();
        let err = read_checkpoint(&dir, 0).unwrap_err();
        assert!(err.contains("shard 0"), "got: {err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flipped_meta_byte_is_rejected() {
        let dir = tmpdir("flip-meta");
        let (_, state) = sample_state(0);
        write_checkpoint(&DiskIo, &dir, 0, &state, 0).unwrap();
        let meta = checkpoint_dir(&dir, 0).join("meta.bin");
        let len = fs::metadata(&meta).unwrap().len();
        flip_byte(&meta, len - 1).unwrap();
        assert!(read_checkpoint(&dir, 0).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn swapped_shard_files_are_rejected() {
        // Same format, valid frames — but the meta's per-shard CRCs
        // pin each file to its slot.
        let dir = tmpdir("swap");
        let (_, state) = sample_state(8);
        write_checkpoint(&DiskIo, &dir, 0, &state, 0).unwrap();
        let cp = checkpoint_dir(&dir, 0);
        let a = fs::read(shard_file(&cp, 0)).unwrap();
        let b = fs::read(shard_file(&cp, 1)).unwrap();
        assert_ne!(a, b, "test needs distinct shards");
        fs::write(shard_file(&cp, 0), &b).unwrap();
        fs::write(shard_file(&cp, 1), &a).unwrap();
        let err = read_checkpoint(&dir, 0).unwrap_err();
        assert!(err.contains("checksum"), "got: {err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn generations_list_sorted() {
        let dir = tmpdir("gens");
        let (_, state) = sample_state(0);
        for gen in [7u64, 2, 4] {
            write_checkpoint(&DiskIo, &dir, gen, &state, 0).unwrap();
        }
        assert_eq!(list_generations(&dir).unwrap(), vec![2, 4, 7]);
        assert_eq!(list_generations(&dir.join("nope")).unwrap(), Vec::<u64>::new());
        fs::remove_dir_all(&dir).unwrap();
    }
}
