//! A mergeable Misra–Gries heavy-hitters sketch over query–url pairs.
//!
//! The classic frequent-items summary (Misra & Gries 1982), in its
//! weighted form: at most `k` counters are kept; offering weight `w`
//! to a missing key when all slots are full decrements every counter
//! (and the incoming weight) by the same amount, freeing a slot iff
//! the incoming weight exceeded the current minimum. Counters only
//! ever *under*estimate, and the total decremented weight — the
//! per-key error bound — is at most `N/(k+1)` for total offered
//! weight `N`.
//!
//! Sketches are **mergeable** (Agarwal et al., *Mergeable Summaries*,
//! PODS 2012): summing two sketches' counters and subtracting the
//! `(k+1)`-th largest value restores the size bound while keeping the
//! combined error within `(N₁+N₂)/(k+1)`. That is what makes the
//! sketch fit the sharded ingestion engine: each user-hash shard
//! sketches its own substream, and the drain merges them in shard
//! order into one bounded summary of the whole log.
//!
//! Frequent-pair mining uses the sketch as a *candidate generator*:
//! every pair whose true count clears the support threshold is
//! guaranteed to survive (estimate + error ≥ true count), and the
//! candidates are then exactified against the materialized log — so
//! the mined set equals the exact [`frequent_pairs`] result while the
//! sketch pass itself stays bounded-memory.
//!
//! [`frequent_pairs`]: dpsan_searchlog::frequent_pairs

use std::collections::HashMap;

use dpsan_searchlog::{frequent_pairs, FrequentPair, QueryId, SearchLog, UrlId};

/// A bounded-size weighted Misra–Gries summary keyed by
/// `query \t url` (the native TSV separator, so it cannot appear
/// inside either field).
#[derive(Debug, Clone)]
pub struct PairSketch {
    capacity: usize,
    counters: HashMap<Box<str>, u64>,
    weight: u64,
    decrements: u64,
    scratch: String,
}

/// A plain-data image of a [`PairSketch`] — what the durable store
/// persists inside an ingestion snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SketchState {
    /// The counter bound `k`.
    pub capacity: usize,
    /// Live `(key, estimate)` counters, sorted by key (`key` is the
    /// native `query \t url` form).
    pub counters: Vec<(String, u64)>,
    /// Total offered weight `N`.
    pub weight: u64,
    /// Total decremented weight (the per-key error bound).
    pub decrements: u64,
}

/// One surviving sketch entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SketchEntry {
    /// The query string.
    pub query: String,
    /// The url string.
    pub url: String,
    /// The (under)estimated count: `true − error_bound ≤ estimate ≤
    /// true`.
    pub estimate: u64,
}

impl PairSketch {
    /// An empty sketch with room for `capacity` counters (must be at
    /// least 1).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "sketch capacity must be at least 1");
        PairSketch {
            capacity,
            counters: HashMap::with_capacity(capacity + 1),
            weight: 0,
            decrements: 0,
            scratch: String::new(),
        }
    }

    /// The counter bound `k`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of live counters (`≤ capacity`).
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether no counter is live.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Total weight offered so far (`N`), including merged-in weight.
    pub fn total_weight(&self) -> u64 {
        self.weight
    }

    /// The uniform per-key error bound: for every key,
    /// `estimate ≤ true ≤ estimate + error_bound()`, and
    /// `error_bound() ≤ total_weight() / (capacity + 1)`.
    pub fn error_bound(&self) -> u64 {
        self.decrements
    }

    /// Offer `count` observations of `(query, url)`.
    pub fn offer(&mut self, query: &str, url: &str, count: u64) {
        debug_assert!(count > 0, "counts are strictly positive in a valid log");
        self.weight += count;
        self.scratch.clear();
        self.scratch.push_str(query);
        self.scratch.push('\t');
        self.scratch.push_str(url);
        if let Some(c) = self.counters.get_mut(self.scratch.as_str()) {
            *c += count;
            return;
        }
        if self.counters.len() < self.capacity {
            self.counters.insert(self.scratch.as_str().into(), count);
            return;
        }
        // all slots full: decrement everything (and the incoming
        // weight) by min(count, current minimum); the remainder, if
        // any, takes a freed slot
        let m = *self.counters.values().min().expect("capacity >= 1 and map is full");
        let d = m.min(count);
        self.decrements += d;
        crate::obs::sketch_evictions_total().inc();
        self.counters.retain(|_, c| {
            *c -= d;
            *c > 0
        });
        if count > d {
            self.counters.insert(self.scratch.as_str().into(), count - d);
        }
    }

    /// Merge `other` into `self` (capacities must match): counters are
    /// summed and, if more than `capacity` survive, the `(k+1)`-th
    /// largest value is subtracted from all of them. Error bounds add.
    pub fn merge(&mut self, other: &PairSketch) {
        assert_eq!(self.capacity, other.capacity, "can only merge sketches of equal capacity");
        self.weight += other.weight;
        self.decrements += other.decrements;
        for (k, &v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        if self.counters.len() > self.capacity {
            let mut vals: Vec<u64> = self.counters.values().copied().collect();
            vals.sort_unstable_by(|a, b| b.cmp(a));
            let s = vals[self.capacity];
            self.decrements += s;
            crate::obs::sketch_evictions_total().inc();
            self.counters.retain(|_, c| {
                if *c > s {
                    *c -= s;
                    true
                } else {
                    false
                }
            });
        }
    }

    /// The estimate for one pair, if it survived (`None` means the
    /// true count is at most [`PairSketch::error_bound`]).
    pub fn estimate(&self, query: &str, url: &str) -> Option<u64> {
        let key = format!("{query}\t{url}");
        self.counters.get(key.as_str()).copied()
    }

    /// All surviving entries, sorted by descending estimate, then
    /// query, then url — a deterministic order independent of hash
    /// iteration.
    pub fn entries(&self) -> Vec<SketchEntry> {
        let mut out: Vec<SketchEntry> = self
            .counters
            .iter()
            .map(|(k, &estimate)| {
                let (query, url) = k.split_once('\t').expect("keys are query\\turl");
                SketchEntry { query: query.to_string(), url: url.to_string(), estimate }
            })
            .collect();
        out.sort_unstable_by(|a, b| {
            b.estimate
                .cmp(&a.estimate)
                .then_with(|| a.query.cmp(&b.query))
                .then_with(|| a.url.cmp(&b.url))
        });
        out
    }

    /// Export the live counters as plain data (see [`SketchState`]),
    /// sorted by key so equal sketches export equal states.
    pub fn export_state(&self) -> SketchState {
        let mut counters: Vec<(String, u64)> =
            self.counters.iter().map(|(k, &v)| (k.to_string(), v)).collect();
        counters.sort_unstable();
        SketchState {
            capacity: self.capacity,
            counters,
            weight: self.weight,
            decrements: self.decrements,
        }
    }

    /// Rebuild a sketch from exported state. Rejects states that could
    /// never have come from a valid sketch (zero capacity, over-full
    /// counter set, zero or duplicate counters) rather than panicking
    /// later.
    pub fn from_state(state: SketchState) -> Result<Self, String> {
        if state.capacity == 0 {
            return Err("sketch capacity must be at least 1".into());
        }
        if state.counters.len() > state.capacity {
            return Err(format!(
                "{} counters exceed capacity {}",
                state.counters.len(),
                state.capacity
            ));
        }
        let mut counters = HashMap::with_capacity(state.capacity + 1);
        for (k, v) in &state.counters {
            if *v == 0 {
                return Err("zero-valued sketch counter".into());
            }
            if counters.insert(k.as_str().into(), *v).is_some() {
                return Err("duplicate sketch key".into());
            }
        }
        Ok(PairSketch {
            capacity: state.capacity,
            counters,
            weight: state.weight,
            decrements: state.decrements,
            scratch: String::new(),
        })
    }

    /// Candidate pairs whose true count may reach `threshold`: every
    /// key with `estimate + error_bound ≥ threshold`. Whenever the
    /// threshold exceeds `error_bound` this is complete — a pair with
    /// true count at least `threshold` is always returned (its
    /// estimate stays positive, so it survived) — and pairs below
    /// `threshold − error_bound` never are. At or below the error
    /// bound the sketch cannot certify completeness: a key that small
    /// may have been evicted outright.
    pub fn candidates_at_least(&self, threshold: f64) -> Vec<SketchEntry> {
        let mut out = self.entries();
        out.retain(|e| (e.estimate + self.decrements) as f64 >= threshold);
        out
    }
}

/// Mine the frequent pairs of a (typically preprocessed) log through a
/// sketch of the *raw* stream: sketch candidates at the absolute count
/// threshold `min_support · |log|`, then exactify each against the
/// log's pair totals.
///
/// Returns exactly [`frequent_pairs`]`(log, min_support)` — same
/// pairs, same counts, same order — whenever the sketch saw every
/// record of the stream `log` was built from. Completeness holds
/// because preprocessing only drops whole pairs (surviving pairs keep
/// their full raw count), so a pair frequent in `log` clears the same
/// absolute threshold in the raw stream and must appear among the
/// sketch candidates — *provided* the threshold exceeds the sketch's
/// error bound. An under-capacity sketch whose error bound swallows
/// the threshold cannot certify completeness, so that case falls back
/// to the exact scan (the log is materialized by then anyway); the
/// result is identical either way, only the mining cost differs.
pub fn sketch_frequent_pairs(
    log: &SearchLog,
    sketch: &PairSketch,
    min_support: f64,
) -> Vec<FrequentPair> {
    assert!(min_support > 0.0 && min_support <= 1.0, "support must be in (0, 1]");
    if log.size() == 0 {
        return Vec::new();
    }
    let size = log.size() as f64;
    let threshold = min_support * size;
    if threshold <= sketch.error_bound() as f64 {
        return frequent_pairs(log, min_support);
    }
    let mut out: Vec<FrequentPair> = sketch
        .candidates_at_least(threshold)
        .into_iter()
        .filter_map(|e| {
            let q = QueryId(log.queries().get(&e.query)?);
            let u = UrlId(log.urls().get(&e.url)?);
            let pair = log.pair_id(q, u)?;
            let count = log.pair_total(pair);
            let support = count as f64 / size;
            (support >= min_support).then_some(FrequentPair { pair, count, support })
        })
        .collect();
    out.sort_unstable_by(|a, b| b.count.cmp(&a.count).then(a.pair.cmp(&b.pair)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsan_searchlog::SearchLogBuilder;

    #[test]
    fn exact_when_under_capacity() {
        let mut sk = PairSketch::new(8);
        sk.offer("a", "x", 5);
        sk.offer("b", "y", 3);
        sk.offer("a", "x", 2);
        assert_eq!(sk.estimate("a", "x"), Some(7));
        assert_eq!(sk.estimate("b", "y"), Some(3));
        assert_eq!(sk.error_bound(), 0);
        assert_eq!(sk.total_weight(), 10);
    }

    #[test]
    fn eviction_underestimates_within_bound() {
        let mut sk = PairSketch::new(2);
        sk.offer("a", "x", 10);
        sk.offer("b", "y", 4);
        sk.offer("c", "z", 6); // evicts: decrement all by 4
        assert!(sk.len() <= 2);
        let err = sk.error_bound();
        assert!(err <= sk.total_weight() / 3, "MG bound N/(k+1)");
        // heavy key survives with estimate in [true - err, true]
        let est = sk.estimate("a", "x").expect("heavy key survives");
        assert!(est <= 10 && est + err >= 10);
    }

    #[test]
    fn absorbed_light_key_still_bounded() {
        let mut sk = PairSketch::new(1);
        sk.offer("a", "x", 5);
        sk.offer("b", "y", 2); // absorbed entirely (2 <= min 5)
        assert_eq!(sk.estimate("b", "y"), None);
        assert!(sk.error_bound() >= 2, "absorbed weight counts toward the bound");
        let est = sk.estimate("a", "x").unwrap();
        assert!(est + sk.error_bound() >= 5);
    }

    #[test]
    fn merge_matches_single_stream_guarantees() {
        let stream: Vec<(&str, u64)> =
            vec![("a", 9), ("b", 2), ("c", 7), ("a", 4), ("d", 1), ("c", 3), ("e", 2), ("a", 5)];
        let mut whole = PairSketch::new(3);
        let mut left = PairSketch::new(3);
        let mut right = PairSketch::new(3);
        for (i, &(q, w)) in stream.iter().enumerate() {
            whole.offer(q, "u", w);
            if i % 2 == 0 {
                left.offer(q, "u", w);
            } else {
                right.offer(q, "u", w);
            }
        }
        left.merge(&right);
        assert_eq!(left.total_weight(), whole.total_weight());
        assert!(left.len() <= 3);
        assert!(left.error_bound() <= left.total_weight() / 4, "merged bound N/(k+1)");
        // per-key guarantee on the merged sketch
        let true_a: u64 = stream.iter().filter(|&&(q, _)| q == "a").map(|&(_, w)| w).sum();
        let est_a = left.estimate("a", "u").unwrap_or(0);
        assert!(est_a <= true_a && est_a + left.error_bound() >= true_a);
    }

    #[test]
    #[should_panic(expected = "equal capacity")]
    fn merge_requires_equal_capacity() {
        let a = PairSketch::new(2);
        let mut b = PairSketch::new(3);
        b.merge(&a);
    }

    #[test]
    fn entries_are_deterministically_sorted() {
        let mut sk = PairSketch::new(8);
        sk.offer("b", "y", 3);
        sk.offer("a", "x", 3);
        sk.offer("c", "z", 9);
        let e = sk.entries();
        assert_eq!(e[0].query, "c");
        assert_eq!(e[1].query, "a", "ties break by query string");
        assert_eq!(e[2].query, "b");
    }

    #[test]
    fn candidates_are_complete_above_threshold() {
        // tight capacity so real evictions happen
        let mut sk = PairSketch::new(3);
        let counts: &[(&str, u64)] =
            &[("hot", 40), ("warm", 20), ("a", 3), ("b", 2), ("c", 3), ("d", 1), ("hot", 10)];
        for &(q, w) in counts {
            sk.offer(q, "u", w);
        }
        let cands = sk.candidates_at_least(20.0);
        assert!(cands.iter().any(|e| e.query == "hot"));
        assert!(cands.iter().any(|e| e.query == "warm"));
    }

    #[test]
    fn sketch_mining_equals_exact_mining() {
        let mut b = SearchLogBuilder::new();
        let mut sk = PairSketch::new(4);
        let tuples: &[(&str, &str, &str, u64)] = &[
            ("u1", "google", "google.com", 9),
            ("u2", "google", "google.com", 8),
            ("u1", "weather", "weather.com", 4),
            ("u3", "weather", "weather.com", 3),
            ("u2", "cars", "kbb.com", 1),
            ("u3", "cars", "kbb.com", 1),
            ("u1", "news", "cnn.com", 2),
            ("u2", "news", "cnn.com", 1),
            ("u3", "maps", "maps.com", 1),
            ("u1", "maps", "maps.com", 1),
        ];
        for &(user, q, u, c) in tuples {
            b.add(user, q, u, c).unwrap();
            sk.offer(q, u, c);
        }
        let log = b.build();
        for s in [0.05, 0.1, 0.25, 0.5] {
            let exact = frequent_pairs(&log, s);
            let mined = sketch_frequent_pairs(&log, &sk, s);
            assert_eq!(mined, exact, "support {s}");
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_rejected() {
        let _ = PairSketch::new(0);
    }

    #[test]
    fn state_roundtrip_preserves_behavior() {
        let mut sk = PairSketch::new(3);
        for &(q, w) in &[("a", 9u64), ("b", 2), ("c", 7), ("d", 1), ("a", 4)] {
            sk.offer(q, "u", w);
        }
        let state = sk.export_state();
        let mut restored = PairSketch::from_state(state.clone()).unwrap();
        assert_eq!(restored.export_state(), state);
        // identical future behavior, including eviction arithmetic
        sk.offer("e", "u", 6);
        restored.offer("e", "u", 6);
        assert_eq!(restored.export_state(), sk.export_state());
        assert_eq!(restored.error_bound(), sk.error_bound());
    }

    #[test]
    fn corrupt_sketch_state_is_rejected() {
        let mut sk = PairSketch::new(2);
        sk.offer("a", "u", 3);
        let mut bad = sk.export_state();
        bad.capacity = 0;
        assert!(PairSketch::from_state(bad).is_err());
        let mut bad = sk.export_state();
        bad.counters.push(("b\tu".into(), 1));
        bad.counters.push(("c\tu".into(), 1));
        assert!(PairSketch::from_state(bad).unwrap_err().contains("exceed capacity"));
        let mut bad = sk.export_state();
        bad.counters[0].1 = 0;
        assert!(PairSketch::from_state(bad).unwrap_err().contains("zero-valued"));
    }
}
