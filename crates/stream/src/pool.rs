//! A scoped worker pool for data-defined shards.
//!
//! Callers split their work into *data-defined* shards (fixed-size
//! chunks of a sorted budget list, one user-hash shard of a log
//! intake, one δ-curve …) and run them here. Shard composition never
//! depends on the worker count, and each shard is processed
//! sequentially by exactly one worker, so per-shard state (warm-start
//! chains, shard interners) lives entirely inside a shard and the
//! results — returned in shard order — are byte-identical for every
//! `jobs` value. `jobs` only controls how many shards are in flight at
//! once.
//!
//! This module started life as `dpsan_eval::pool` (which still
//! re-exports it); it moved here so the ingestion engine can drain
//! shards through the same scaffolding without the evaluation harness
//! depending on ingestion or vice versa.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Run `work` over every shard on up to `jobs` worker threads and
/// return the results in shard order.
///
/// `jobs == 1` (or a single shard) runs inline on the caller's thread.
/// Panics in `work` propagate to the caller.
pub fn run_sharded<T, R, F>(shards: Vec<T>, jobs: usize, work: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = shards.len();
    if n == 0 {
        return Vec::new();
    }
    if jobs <= 1 || n == 1 {
        return shards.into_iter().map(work).collect();
    }

    let queue: Vec<Mutex<Option<T>>> = shards.into_iter().map(|s| Mutex::new(Some(s))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = jobs.min(n);

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let shard = queue[i]
                        .lock()
                        .expect("shard queue poisoned")
                        .take()
                        .expect("each shard index is claimed once");
                    let r = work(shard);
                    *slots[i].lock().expect("result slot poisoned") = Some(r);
                })
            })
            .collect();
        for h in handles {
            if let Err(e) = h.join() {
                std::panic::resume_unwind(e);
            }
        }
    });

    slots
        .into_iter()
        .map(|s| s.into_inner().expect("slot lock free").expect("every shard produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_shard_order() {
        for jobs in [1, 2, 4, 9] {
            let shards: Vec<usize> = (0..17).collect();
            let out = run_sharded(shards, jobs, |i| i * 10);
            assert_eq!(out, (0..17).map(|i| i * 10).collect::<Vec<_>>(), "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_single() {
        assert!(run_sharded(Vec::<u8>::new(), 4, |x| x).is_empty());
        assert_eq!(run_sharded(vec![7], 4, |x| x + 1), vec![8]);
    }

    #[test]
    fn results_independent_of_jobs() {
        // each shard simulates stateful per-shard work: a running sum
        let shards: Vec<Vec<u64>> = (0..8).map(|s| (0..5).map(|i| s * 5 + i).collect()).collect();
        let run = |jobs| {
            run_sharded(shards.clone(), jobs, |shard| {
                shard.iter().fold(0u64, |acc, &v| acc * 31 + v)
            })
        };
        let reference = run(1);
        for jobs in [2, 3, 8] {
            assert_eq!(run(jobs), reference);
        }
    }
}
