//! # dpsan-stream
//!
//! Bounded-memory, sharded search-log ingestion for the `dpsan`
//! workspace: the layer that feeds the sanitization pipeline from disk
//! without ever materializing the raw stream.
//!
//! ```text
//! TSV file ──chunked reader──▶ user-hash shards ──parallel drain──▶
//!     deterministic merge ──▶ SearchLog (≡ in-memory build) + sketch
//! ```
//!
//! * [`engine`] — the driver: chunked intake through
//!   [`dpsan_searchlog::TsvStream`], per-shard aggregation, parallel
//!   drain, and a first-occurrence merge that reproduces the one-shot
//!   in-memory [`read_tsv`](dpsan_searchlog::io::read_tsv) build *bit
//!   for bit* (same interners, same ids) for any shard count and any
//!   `jobs` value,
//! * [`shard`] — user-hash shards with per-shard interning and
//!   mergeable statistics,
//! * [`sketch`] — a mergeable weighted Misra–Gries heavy-hitters
//!   sketch over query–url pairs with the standard `N/(k+1)` error
//!   bound, plus exactified frequent-pair mining,
//! * [`pool`] — the scoped worker pool (shared with `dpsan-eval`,
//!   which re-exports it),
//! * [`obs`] — the layer's metric handles (rows/chunks ingested, peak
//!   shard size, sketch evictions), recorded off the per-record path.
//!
//! ## Privacy invariant: shards are user-complete
//!
//! The differential-privacy unit of the paper is the **user**: the
//! mechanism's guarantee (Definition 2) is over the presence of one
//! user log `A_k`, and every privacy constraint row in `dpsan-core` /
//! `dpsan-dp` is a per-user row. Ingestion shards partition *users* —
//! `shard_of(user)` hashes the user id, so all of a user's records
//! land in exactly one shard and every shard holds only complete user
//! logs. The merged log therefore contains exactly the same per-user
//! logs as a one-shot build (in fact the identical `SearchLog`), and
//! the privacy accounting downstream is untouched: sharding is an
//! ingestion-layout choice, not a change to the mechanism. Splitting a
//! user *across* shards would be equally safe here only because the
//! merge re-aggregates before anything privacy-relevant happens — but
//! user-completeness is what would let a future out-of-core pipeline
//! build per-user constraint rows shard-locally, so it is the
//! invariant this crate commits to and tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod obs;
pub mod pool;
pub mod shard;
pub mod sketch;

pub use engine::{
    ingest_path, ingest_tsv, IngestReport, IngestResult, IngestSession, SessionState, StreamConfig,
    StreamStats,
};
pub use shard::{shard_of, user_hash, ShardIntake, ShardState, ShardStats};
pub use sketch::{sketch_frequent_pairs, PairSketch, SketchEntry, SketchState};
