//! User-hash shards: per-shard interning and aggregation.
//!
//! The intake routes every record to `shard_of(user) = fnv1a(user) mod
//! n_shards`, so a shard holds *complete* user logs — the invariant
//! that keeps sharding privacy-neutral (see the crate docs). Each
//! shard interns its own vocabulary and aggregates its own triplets,
//! remembering the **global row index of every first occurrence**
//! (user, query, url, and pair). Those first-row tables are what lets
//! the merger rebuild the exact interning order a sequential one-shot
//! build would have produced, making the streamed log bit-compatible
//! with the in-memory path for any shard count.

use std::collections::HashMap;

use dpsan_searchlog::{Interner, RawRecord};

/// FNV-1a over the user string: a stable, seedless hash so shard
/// assignment is identical across runs, platforms and processes (the
/// std `DefaultHasher` promises none of that).
#[inline]
pub fn user_hash(user: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in user.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The shard index of a user.
#[inline]
pub fn shard_of(user: &str, n_shards: usize) -> usize {
    assert!(n_shards >= 1, "need at least one shard");
    (user_hash(user) % n_shards as u64) as usize
}

/// Additive per-shard statistics. Because shards are user-complete,
/// `users` and `triplets` are disjoint across shards and every field
/// sums exactly; distinct query/url/pair counts are *not* additive
/// (vocabularies overlap) and live on the merged
/// [`StreamStats`](crate::StreamStats) instead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Raw records routed to this shard.
    pub rows: u64,
    /// Click volume `Σ count` of those records.
    pub clicks: u64,
    /// Distinct users (each user appears in exactly one shard).
    pub users: usize,
    /// Distinct `(pair, user)` triplets after aggregation.
    pub triplets: usize,
}

impl ShardStats {
    /// Sum another shard's statistics into this one.
    pub fn merge(&mut self, other: &ShardStats) {
        self.rows += other.rows;
        self.clicks += other.clicks;
        self.users += other.users;
        self.triplets += other.triplets;
    }
}

/// One shard mid-intake: local interners, aggregation map, first-row
/// tables. Memory is proportional to the shard's *aggregated* content,
/// never to the raw stream length. `Clone` supports the incremental
/// engine's non-destructive [`snapshot`](ShardIntake::snapshot).
#[derive(Debug, Default, Clone)]
pub struct ShardIntake {
    users: Interner,
    queries: Interner,
    urls: Interner,
    user_first: Vec<u64>,
    query_first: Vec<u64>,
    url_first: Vec<u64>,
    pair_index: HashMap<(u32, u32), u32>,
    pair_keys: Vec<(u32, u32)>,
    pair_first: Vec<u64>,
    triplets: HashMap<(u32, u32), u64>,
    rows: u64,
    clicks: u64,
}

impl ShardIntake {
    /// An empty shard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingest one record that `row` (the global 0-based record index)
    /// introduced. The caller is responsible for routing: every record
    /// of one user must reach the same shard.
    pub fn add(&mut self, row: u64, r: &RawRecord) {
        debug_assert!(r.count > 0, "zero counts are rejected by the reader");
        self.rows += 1;
        self.clicks += r.count;
        let u = intern_tracked(&mut self.users, &mut self.user_first, &r.user, row);
        let q = intern_tracked(&mut self.queries, &mut self.query_first, &r.query, row);
        let l = intern_tracked(&mut self.urls, &mut self.url_first, &r.url, row);
        let next = u32::try_from(self.pair_keys.len()).expect("pair id overflow");
        let pair = *self.pair_index.entry((q, l)).or_insert_with(|| {
            self.pair_keys.push((q, l));
            self.pair_first.push(row);
            next
        });
        *self.triplets.entry((pair, u)).or_insert(0) += r.count;
    }

    /// Number of distinct `(pair, user)` triplets staged so far — the
    /// quantity that actually occupies memory (raw rows are never
    /// retained).
    pub fn staged_triplets(&self) -> usize {
        self.triplets.len()
    }

    /// Non-destructive [`drain`](ShardIntake::drain): clone the staged
    /// state and finalize the copy, leaving this shard live for further
    /// intake. The incremental engine re-releases from snapshots while
    /// the stream keeps appending.
    pub fn snapshot(&self) -> DrainedShard {
        self.clone().drain()
    }

    /// Finalize into an immutable, deterministically-ordered
    /// [`DrainedShard`].
    pub fn drain(self) -> DrainedShard {
        let stats = ShardStats {
            rows: self.rows,
            clicks: self.clicks,
            users: self.users.len(),
            triplets: self.triplets.len(),
        };
        let mut records: Vec<(u32, u32, u64)> =
            self.triplets.into_iter().map(|((p, u), c)| (p, u, c)).collect();
        records.sort_unstable_by_key(|&(p, u, _)| (p, u));
        DrainedShard {
            users: self.users,
            queries: self.queries,
            urls: self.urls,
            user_first: self.user_first,
            query_first: self.query_first,
            url_first: self.url_first,
            pair_keys: self.pair_keys,
            pair_first: self.pair_first,
            records,
            stats,
        }
    }
}

/// A plain-data image of one [`ShardIntake`] mid-intake — what the
/// durable store (`dpsan-store`) persists in a shard snapshot. Every
/// derived index (interner hash maps, the pair index) is rebuilt on
/// restore, so the state is exactly the information content of the
/// shard and nothing layout-dependent. `triplets` is sorted by
/// `(pair, user)` id so exporting the same shard twice yields the same
/// bytes once encoded.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardState {
    /// User strings in shard-local id order.
    pub users: Vec<String>,
    /// Query strings in shard-local id order.
    pub queries: Vec<String>,
    /// Url strings in shard-local id order.
    pub urls: Vec<String>,
    /// Global first-occurrence row per local user id.
    pub user_first: Vec<u64>,
    /// Global first-occurrence row per local query id.
    pub query_first: Vec<u64>,
    /// Global first-occurrence row per local url id.
    pub url_first: Vec<u64>,
    /// Local `(query, url)` ids per local pair id.
    pub pair_keys: Vec<(u32, u32)>,
    /// Global first-occurrence row per local pair id.
    pub pair_first: Vec<u64>,
    /// Aggregated `(local pair, local user, count)`, sorted by ids.
    pub triplets: Vec<(u32, u32, u64)>,
    /// Raw records routed to this shard so far.
    pub rows: u64,
    /// Click volume of those records.
    pub clicks: u64,
}

impl ShardState {
    /// Structural sanity of a decoded state: side tables aligned with
    /// their interners, ids in range. Returns a description of the
    /// first violation, if any — a corrupt-but-checksum-valid snapshot
    /// must never panic deep inside intake.
    pub fn validate(&self) -> Result<(), String> {
        let align = |name: &str, strings: usize, first: usize| -> Result<(), String> {
            if strings != first {
                return Err(format!("{name}: {strings} strings vs {first} first-row entries"));
            }
            Ok(())
        };
        align("users", self.users.len(), self.user_first.len())?;
        align("queries", self.queries.len(), self.query_first.len())?;
        align("urls", self.urls.len(), self.url_first.len())?;
        align("pairs", self.pair_keys.len(), self.pair_first.len())?;
        for &(q, l) in &self.pair_keys {
            if q as usize >= self.queries.len() || l as usize >= self.urls.len() {
                return Err(format!("pair key ({q}, {l}) out of vocabulary range"));
            }
        }
        for &(p, u, c) in &self.triplets {
            if p as usize >= self.pair_keys.len() || u as usize >= self.users.len() {
                return Err(format!("triplet ({p}, {u}) out of range"));
            }
            if c == 0 {
                return Err("zero-count triplet".into());
            }
        }
        Ok(())
    }
}

impl ShardIntake {
    /// Export the live state as plain data (see [`ShardState`]).
    pub fn export_state(&self) -> ShardState {
        let strings = |i: &Interner| i.iter().map(|(_, s)| s.to_string()).collect();
        let mut triplets: Vec<(u32, u32, u64)> =
            self.triplets.iter().map(|(&(p, u), &c)| (p, u, c)).collect();
        triplets.sort_unstable_by_key(|&(p, u, _)| (p, u));
        ShardState {
            users: strings(&self.users),
            queries: strings(&self.queries),
            urls: strings(&self.urls),
            user_first: self.user_first.clone(),
            query_first: self.query_first.clone(),
            url_first: self.url_first.clone(),
            pair_keys: self.pair_keys.clone(),
            pair_first: self.pair_first.clone(),
            triplets,
            rows: self.rows,
            clicks: self.clicks,
        }
    }

    /// Rebuild a live shard from exported state, reconstructing every
    /// derived index. `state` must satisfy [`ShardState::validate`];
    /// the restored shard is indistinguishable from one that ingested
    /// the original stream.
    pub fn from_state(state: ShardState) -> Result<Self, String> {
        state.validate()?;
        let build = |strings: &[String]| {
            let mut i = Interner::with_capacity(strings.len());
            for s in strings {
                i.intern(s);
            }
            if i.len() != strings.len() {
                return Err("duplicate string in interned vocabulary".to_string());
            }
            Ok(i)
        };
        let mut pair_index = HashMap::with_capacity(state.pair_keys.len());
        for (id, &key) in state.pair_keys.iter().enumerate() {
            if pair_index.insert(key, id as u32).is_some() {
                return Err("duplicate pair key".into());
            }
        }
        let triplets: HashMap<(u32, u32), u64> =
            state.triplets.iter().map(|&(p, u, c)| ((p, u), c)).collect();
        if triplets.len() != state.triplets.len() {
            return Err("duplicate triplet key".into());
        }
        Ok(ShardIntake {
            users: build(&state.users)?,
            queries: build(&state.queries)?,
            urls: build(&state.urls)?,
            user_first: state.user_first,
            query_first: state.query_first,
            url_first: state.url_first,
            pair_index,
            pair_keys: state.pair_keys,
            pair_first: state.pair_first,
            triplets,
            rows: state.rows,
            clicks: state.clicks,
        })
    }
}

/// A finalized shard: everything the merger needs, in deterministic
/// order (records sorted by local `(pair, user)` id).
#[derive(Debug)]
pub struct DrainedShard {
    /// Shard-local user interner.
    pub users: Interner,
    /// Shard-local query interner.
    pub queries: Interner,
    /// Shard-local url interner.
    pub urls: Interner,
    /// Global row of each local user's first occurrence.
    pub user_first: Vec<u64>,
    /// Global row of each local query's first occurrence.
    pub query_first: Vec<u64>,
    /// Global row of each local url's first occurrence.
    pub url_first: Vec<u64>,
    /// Local `(query, url)` id pair of each local pair id.
    pub pair_keys: Vec<(u32, u32)>,
    /// Global row of each local pair's first occurrence.
    pub pair_first: Vec<u64>,
    /// Aggregated `(local pair, local user, count)`, sorted by ids.
    pub records: Vec<(u32, u32, u64)>,
    /// Additive shard statistics.
    pub stats: ShardStats,
}

fn intern_tracked(interner: &mut Interner, first: &mut Vec<u64>, s: &str, row: u64) -> u32 {
    let before = interner.len();
    let id = interner.intern(s);
    if interner.len() > before {
        debug_assert_eq!(id as usize, first.len());
        first.push(row);
    }
    id
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(user: &str, query: &str, url: &str, count: u64) -> RawRecord {
        RawRecord { user: user.to_string(), query: query.to_string(), url: url.to_string(), count }
    }

    #[test]
    fn hash_is_stable() {
        // pinned values: shard routing must never drift between builds
        assert_eq!(user_hash(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(user_hash("081"), user_hash("081"));
        assert_ne!(user_hash("081"), user_hash("082"));
    }

    #[test]
    fn shard_of_covers_range() {
        for n in [1usize, 2, 7, 16] {
            for u in 0..100 {
                let s = shard_of(&format!("user{u}"), n);
                assert!(s < n);
            }
        }
    }

    #[test]
    fn first_rows_track_first_occurrence() {
        let mut s = ShardIntake::new();
        s.add(0, &rec("a", "q1", "l1", 2));
        s.add(3, &rec("b", "q1", "l2", 1));
        s.add(7, &rec("a", "q1", "l1", 4));
        let d = s.drain();
        assert_eq!(d.user_first, vec![0, 3]);
        assert_eq!(d.query_first, vec![0]);
        assert_eq!(d.url_first, vec![0, 3]);
        assert_eq!(d.pair_first, vec![0, 3]);
        assert_eq!(d.records, vec![(0, 0, 6), (1, 1, 1)], "duplicates aggregate");
        assert_eq!(d.stats, ShardStats { rows: 3, clicks: 7, users: 2, triplets: 2 });
    }

    #[test]
    fn staged_triplets_counts_aggregates_not_rows() {
        let mut s = ShardIntake::new();
        for row in 0..50 {
            s.add(row, &rec("a", "q", "l", 1));
        }
        assert_eq!(s.staged_triplets(), 1, "memory tracks aggregation, not stream length");
    }

    #[test]
    fn state_roundtrip_is_exact() {
        let mut s = ShardIntake::new();
        s.add(0, &rec("a", "q1", "l1", 2));
        s.add(3, &rec("b", "q1", "l2", 1));
        s.add(7, &rec("a", "q2", "l1", 4));
        let state = s.export_state();
        let restored = ShardIntake::from_state(state.clone()).unwrap();
        assert_eq!(restored.export_state(), state, "export∘restore is the identity");
        // the restored shard keeps ingesting identically
        let mut a = s.clone();
        let mut b = restored;
        a.add(9, &rec("c", "q1", "l1", 5));
        b.add(9, &rec("c", "q1", "l1", 5));
        let (da, db) = (a.drain(), b.drain());
        assert_eq!(da.records, db.records);
        assert_eq!(da.stats, db.stats);
        assert_eq!(da.pair_keys, db.pair_keys);
    }

    #[test]
    fn corrupt_state_is_rejected_not_panicked() {
        let mut s = ShardIntake::new();
        s.add(0, &rec("a", "q", "l", 2));
        let mut bad = s.export_state();
        bad.pair_keys[0] = (7, 0); // query id out of range
        assert!(ShardIntake::from_state(bad).unwrap_err().contains("out of vocabulary"));
        let mut bad = s.export_state();
        bad.user_first.push(9);
        assert!(ShardIntake::from_state(bad).unwrap_err().contains("users"));
        let mut bad = s.export_state();
        bad.triplets[0].2 = 0;
        assert!(ShardIntake::from_state(bad).unwrap_err().contains("zero-count"));
    }

    #[test]
    fn stats_merge_is_additive() {
        let mut a = ShardStats { rows: 3, clicks: 10, users: 2, triplets: 3 };
        let b = ShardStats { rows: 1, clicks: 4, users: 1, triplets: 1 };
        a.merge(&b);
        assert_eq!(a, ShardStats { rows: 4, clicks: 14, users: 3, triplets: 4 });
    }
}
