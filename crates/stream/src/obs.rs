//! Ingest-layer telemetry handles.
//!
//! | series | type | meaning |
//! |---|---|---|
//! | `dpsan_ingest_rows_total` | counter | records ingested across all sessions |
//! | `dpsan_ingest_chunks_total` | counter | bounded chunks consumed |
//! | `dpsan_ingest_shard_triplets_max` | gauge | peak staged triplets in any shard |
//! | `dpsan_sketch_evictions_total` | counter | Misra–Gries eviction rounds (offer + merge) |
//!
//! Recording is observational only and off the per-record path: row
//! and chunk counts add once per `ingest` call, the shard gauge is a
//! running maximum, and the eviction counter ticks only when a full
//! sketch actually evicts.

use dpsan_obs::{global, Counter, Gauge};
use std::sync::OnceLock;

/// Records ingested across all sessions.
pub fn rows_total() -> &'static Counter {
    static H: OnceLock<Counter> = OnceLock::new();
    H.get_or_init(|| global().counter("dpsan_ingest_rows_total"))
}

/// Bounded chunks consumed.
pub fn chunks_total() -> &'static Counter {
    static H: OnceLock<Counter> = OnceLock::new();
    H.get_or_init(|| global().counter("dpsan_ingest_chunks_total"))
}

/// Peak staged triplets in any shard (running maximum).
pub fn shard_triplets_max() -> &'static Gauge {
    static H: OnceLock<Gauge> = OnceLock::new();
    H.get_or_init(|| global().gauge("dpsan_ingest_shard_triplets_max"))
}

/// Misra–Gries eviction rounds, over both `offer` and `merge`.
pub fn sketch_evictions_total() -> &'static Counter {
    static H: OnceLock<Counter> = OnceLock::new();
    H.get_or_init(|| global().counter("dpsan_sketch_evictions_total"))
}
