//! The ingestion engine: chunked intake → user-hash shards → parallel
//! drain → deterministic merge.
//!
//! The merge is the load-bearing step. Shards intern independently, so
//! their local ids are meaningless globally; what each shard *does*
//! keep is the global row index of every first occurrence. Sorting the
//! union of those tables by first row (unique per category — one row
//! introduces at most one new user/query/url/pair) reconstructs
//! exactly the interning order a sequential [`read_tsv`] build would
//! have produced, and replaying the aggregated records in pair-first
//! order through [`SearchLogBuilder::with_vocabulary`] reproduces the
//! pair-id assignment too. The result: the streamed [`SearchLog`] is
//! structurally identical to the one-shot in-memory build — same
//! interners, same ids, same CSR arrays — for **any** shard count and
//! any drain parallelism, so everything downstream (constraints, LP,
//! sampling) is byte-identical.
//!
//! [`read_tsv`]: dpsan_searchlog::io::read_tsv

use std::collections::HashMap;
use std::io::BufRead;

use dpsan_searchlog::{
    Interner, LogError, LogRecord, QueryId, SearchLog, SearchLogBuilder, TsvStream, UrlId, UserId,
};

use crate::pool::run_sharded;
use crate::shard::{shard_of, DrainedShard, ShardIntake, ShardState, ShardStats};
use crate::sketch::{PairSketch, SketchState};

/// Ingestion knobs.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Number of user-hash shards (≥ 1). Shard assignment depends only
    /// on the user string, never on this machine or run.
    pub shards: usize,
    /// Maximum raw records resident at once (the chunk buffer bound).
    pub chunk_rows: usize,
    /// Heavy-hitters sketch capacity per shard; `0` disables sketching.
    pub sketch_capacity: usize,
    /// Worker threads for the shard drain (results are identical for
    /// every value; see [`crate::pool`]).
    pub jobs: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig { shards: 16, chunk_rows: 8 * 1024, sketch_capacity: 1024, jobs: 1 }
    }
}

impl StreamConfig {
    /// Panic on nonsense values (the config is programmer input).
    pub fn validate(&self) {
        assert!(self.shards >= 1, "need at least one shard");
        assert!(self.chunk_rows >= 1, "need a positive chunk size");
        assert!(self.jobs >= 1, "need at least one worker");
    }
}

/// Whole-stream statistics assembled during the merge: the additive
/// shard part plus the exact distinct counts from the union tables.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Summed per-shard statistics (rows, clicks, users, triplets —
    /// all exactly additive under user-complete sharding).
    pub shard: ShardStats,
    /// Distinct queries across all shards.
    pub queries: usize,
    /// Distinct urls across all shards.
    pub urls: usize,
    /// Distinct query–url pairs across all shards.
    pub pairs: usize,
}

/// Bounded-memory accounting of one ingestion run. The bounds are
/// *counters*, not RSS guesses: tests assert them directly.
#[derive(Debug, Clone, Copy, Default)]
pub struct IngestReport {
    /// Records ingested.
    pub rows: u64,
    /// Physical lines consumed (including comments/blanks).
    pub lines: u64,
    /// Largest number of raw records resident at once — never exceeds
    /// the configured `chunk_rows`.
    pub peak_chunk_rows: usize,
    /// Largest per-shard aggregated triplet count at end of intake —
    /// the per-shard memory footprint.
    pub max_shard_triplets: usize,
    /// Live counters in the merged sketch (≤ configured capacity), 0
    /// when sketching is disabled.
    pub sketch_entries: usize,
}

/// Everything one ingestion run produces.
#[derive(Debug)]
pub struct IngestResult {
    /// The merged log — identical to the one-shot in-memory build.
    pub log: SearchLog,
    /// The merged heavy-hitters sketch over the whole stream (`None`
    /// when `sketch_capacity` is 0).
    pub sketch: Option<PairSketch>,
    /// Merged whole-stream statistics.
    pub stats: StreamStats,
    /// Memory-bound counters.
    pub report: IngestReport,
}

/// An incremental ingestion session: the always-on counterpart of
/// [`ingest_tsv`].
///
/// The one-shot engine ingests once and exits; a serving pipeline
/// instead receives appended TSV chunks over time and must re-release
/// between them. `IngestSession` keeps the per-shard interners,
/// first-row tables, and heavy-hitter sketches **live across
/// [`ingest`](IngestSession::ingest) calls**, with one global row
/// counter carried over — so at every point in time the session's
/// state is exactly what one-shot ingestion of the concatenated input
/// would have produced.
///
/// [`snapshot`](IngestSession::snapshot) materializes the merged
/// [`SearchLog`] *without* consuming the session (shards are cloned
/// and drained in parallel; intake continues afterwards), and
/// [`finish`](IngestSession::finish) is the consuming variant the
/// one-shot path uses. Because the merge reconstructs the sequential
/// interning order from global first-occurrence rows, every snapshot
/// is structurally identical to a one-shot build of the prefix
/// ingested so far — the invariant that makes windowed re-releases
/// byte-identical to one-shot `sanitize` runs over the same window.
///
/// An `ingest` call that fails (parse error) applies all complete
/// chunks read before the error and discards the partial one; the
/// session stays usable and the error's line number is global across
/// every ingest call (continuation lines keep counting up).
#[derive(Debug)]
pub struct IngestSession {
    cfg: StreamConfig,
    shards: Vec<ShardIntake>,
    sketches: Vec<PairSketch>,
    report: IngestReport,
}

impl IngestSession {
    /// A fresh session with no ingested rows.
    pub fn new(cfg: StreamConfig) -> Self {
        cfg.validate();
        let sketches = if cfg.sketch_capacity > 0 {
            (0..cfg.shards).map(|_| PairSketch::new(cfg.sketch_capacity)).collect()
        } else {
            Vec::new()
        };
        let shards = (0..cfg.shards).map(|_| ShardIntake::new()).collect();
        IngestSession { cfg, shards, sketches, report: IngestReport::default() }
    }

    /// The configuration in use.
    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }

    /// Ingest one appended TSV chunk (any `BufRead` over *complete*
    /// lines). Returns the number of records added by this call.
    ///
    /// Line numbers in errors are global: a parse error on the first
    /// line of the third appended chunk reports the stream-wide line
    /// number, not `1`.
    pub fn ingest<R: BufRead>(&mut self, reader: R) -> Result<u64, LogError> {
        let lines_before = self.report.lines;
        let mut stream = TsvStream::new(reader);
        let mut buf = Vec::with_capacity(self.cfg.chunk_rows.min(64 * 1024));
        let mut added: u64 = 0;
        let mut chunks: u64 = 0;
        let result = loop {
            match stream.read_chunk(&mut buf, self.cfg.chunk_rows) {
                Ok(0) => break Ok(added),
                Ok(n) => {
                    chunks += 1;
                    self.report.peak_chunk_rows = self.report.peak_chunk_rows.max(n);
                    for rec in &buf {
                        let s = shard_of(&rec.user, self.cfg.shards);
                        self.shards[s].add(self.report.rows, rec);
                        if let Some(sk) = self.sketches.get_mut(s) {
                            sk.offer(&rec.query, &rec.url, rec.count);
                        }
                        self.report.rows += 1;
                        added += 1;
                    }
                }
                Err(e) => break Err(offset_error_lines(e, lines_before)),
            }
        };
        self.report.lines = lines_before + stream.lines_read() as u64;
        // Observational telemetry, once per call: the applied rows and
        // chunks (complete chunks land even when a later chunk errors)
        // and the peak staged shard size.
        crate::obs::rows_total().add(added);
        crate::obs::chunks_total().add(chunks);
        let peak = self.shards.iter().map(ShardIntake::staged_triplets).max().unwrap_or(0);
        crate::obs::shard_triplets_max().max(peak as f64);
        result
    }

    /// Records ingested so far (across every `ingest` call).
    pub fn rows(&self) -> u64 {
        self.report.rows
    }

    /// The memory-bound counters so far. `max_shard_triplets` and
    /// `sketch_entries` reflect the *current* staged state.
    pub fn report(&self) -> IngestReport {
        let mut r = self.report;
        r.max_shard_triplets =
            self.shards.iter().map(ShardIntake::staged_triplets).max().unwrap_or(0);
        r.sketch_entries = merge_sketch_refs(&self.sketches).as_ref().map_or(0, PairSketch::len);
        r
    }

    /// Merge the current state into an [`IngestResult`] without
    /// consuming the session: shards are snapshot-drained in parallel
    /// and intake can continue afterwards. The returned log is
    /// structurally identical to a one-shot build of everything
    /// ingested so far.
    pub fn snapshot(&self) -> IngestResult {
        let views: Vec<&ShardIntake> = self.shards.iter().collect();
        let drained: Vec<DrainedShard> = run_sharded(views, self.cfg.jobs, ShardIntake::snapshot);
        let (log, stats) = merge_shards(&drained);
        let sketch = merge_sketch_refs(&self.sketches);
        let mut report = self.report;
        report.max_shard_triplets =
            self.shards.iter().map(ShardIntake::staged_triplets).max().unwrap_or(0);
        report.sketch_entries = sketch.as_ref().map_or(0, PairSketch::len);
        IngestResult { log, sketch, stats, report }
    }

    /// Merge and consume the session (the one-shot path; avoids the
    /// snapshot clone).
    pub fn finish(self) -> IngestResult {
        let mut report = self.report;
        report.max_shard_triplets =
            self.shards.iter().map(ShardIntake::staged_triplets).max().unwrap_or(0);
        let drained: Vec<DrainedShard> =
            run_sharded(self.shards, self.cfg.jobs, ShardIntake::drain);
        let (log, stats) = merge_shards(&drained);
        let sketch = merge_sketches(self.sketches);
        report.sketch_entries = sketch.as_ref().map_or(0, PairSketch::len);
        IngestResult { log, sketch, stats, report }
    }
}

/// A plain-data image of a whole [`IngestSession`] mid-stream — the
/// unit the durable store (`dpsan-store`) checkpoints. Restoring it
/// through [`IngestSession::restore`] yields a session
/// indistinguishable from one that ingested the original stream:
/// same shards, same sketches, same global row/line counters.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SessionState {
    /// Per-shard intake state, indexed by shard number.
    pub shards: Vec<ShardState>,
    /// Per-shard sketch state (empty when sketching is disabled).
    pub sketches: Vec<SketchState>,
    /// Records ingested so far (the global row counter).
    pub rows: u64,
    /// Physical lines consumed so far.
    pub lines: u64,
    /// Largest chunk buffer observed (carried so a restored session's
    /// report stays monotone).
    pub peak_chunk_rows: usize,
}

impl IngestSession {
    /// Export the full session state as plain data.
    pub fn export_state(&self) -> SessionState {
        SessionState {
            shards: self.shards.iter().map(ShardIntake::export_state).collect(),
            sketches: self.sketches.iter().map(PairSketch::export_state).collect(),
            rows: self.report.rows,
            lines: self.report.lines,
            peak_chunk_rows: self.report.peak_chunk_rows,
        }
    }

    /// Rebuild a session from exported state under `cfg`. The state
    /// must have been exported under a *compatible* configuration:
    /// same shard count and same sketch capacity — the shard routing
    /// function and sketch error bounds are baked into the persisted
    /// data, so restoring under different values would silently break
    /// the user-complete invariant. Violations (and structurally
    /// corrupt state) are reported, never panicked on.
    pub fn restore(cfg: StreamConfig, state: SessionState) -> Result<Self, String> {
        cfg.validate();
        if state.shards.len() != cfg.shards {
            return Err(format!(
                "state has {} shards but config wants {} — resharding a persisted store is not \
                 supported (it would re-route users mid-stream)",
                state.shards.len(),
                cfg.shards
            ));
        }
        let want_sketches = if cfg.sketch_capacity > 0 { cfg.shards } else { 0 };
        if state.sketches.len() != want_sketches {
            return Err(format!(
                "state has {} sketches but config wants {want_sketches}",
                state.sketches.len()
            ));
        }
        for sk in &state.sketches {
            if sk.capacity != cfg.sketch_capacity {
                return Err(format!(
                    "sketch capacity {} in state but {} in config",
                    sk.capacity, cfg.sketch_capacity
                ));
            }
        }
        let shard_rows: u64 = state.shards.iter().map(|s| s.rows).sum();
        if shard_rows != state.rows {
            return Err(format!(
                "shard rows sum to {shard_rows} but the session counter says {}",
                state.rows
            ));
        }
        let shards = state
            .shards
            .into_iter()
            .enumerate()
            .map(|(i, s)| ShardIntake::from_state(s).map_err(|e| format!("shard {i}: {e}")))
            .collect::<Result<Vec<_>, _>>()?;
        let sketches = state
            .sketches
            .into_iter()
            .enumerate()
            .map(|(i, s)| PairSketch::from_state(s).map_err(|e| format!("sketch {i}: {e}")))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(IngestSession {
            cfg,
            shards,
            sketches,
            report: IngestReport {
                rows: state.rows,
                lines: state.lines,
                peak_chunk_rows: state.peak_chunk_rows,
                max_shard_triplets: 0,
                sketch_entries: 0,
            },
        })
    }
}

/// Shift an error's line number by the lines already consumed in
/// earlier `ingest` calls, so multi-chunk sessions report global
/// positions.
fn offset_error_lines(e: LogError, lines_before: u64) -> LogError {
    let off = lines_before as usize;
    match e {
        LogError::Parse { line, message } => LogError::Parse { line: line + off, message },
        LogError::ZeroCount { line } => LogError::ZeroCount { line: line + off },
        other => other,
    }
}

/// Ingest a native-TSV stream through the sharded engine.
pub fn ingest_tsv<R: BufRead>(reader: R, cfg: &StreamConfig) -> Result<IngestResult, LogError> {
    let mut session = IngestSession::new(cfg.clone());
    session.ingest(reader)?;
    Ok(session.finish())
}

/// Ingest a native-TSV file from disk.
pub fn ingest_path(
    path: impl AsRef<std::path::Path>,
    cfg: &StreamConfig,
) -> Result<IngestResult, LogError> {
    let file = std::fs::File::open(path)?;
    ingest_tsv(std::io::BufReader::new(file), cfg)
}

fn merge_sketches(mut sketches: Vec<PairSketch>) -> Option<PairSketch> {
    let mut merged = if sketches.is_empty() { None } else { Some(sketches.remove(0)) };
    if let Some(m) = merged.as_mut() {
        for sk in &sketches {
            m.merge(sk);
        }
    }
    merged
}

/// Non-consuming sketch merge for session snapshots.
fn merge_sketch_refs(sketches: &[PairSketch]) -> Option<PairSketch> {
    let (head, rest) = sketches.split_first()?;
    let mut merged = head.clone();
    for sk in rest {
        merged.merge(sk);
    }
    Some(merged)
}

/// Rebuild the global log from drained shards (see module docs for why
/// this reproduces the sequential build exactly).
fn merge_shards(shards: &[DrainedShard]) -> (SearchLog, StreamStats) {
    // 1. global interners in first-occurrence order. Users are disjoint
    //    across shards; queries/urls take the min first row per string.
    let users = merge_disjoint_vocab(shards, |s| (&s.users, &s.user_first));
    let queries = merge_overlapping_vocab(shards, |s| (&s.queries, &s.query_first));
    let urls = merge_overlapping_vocab(shards, |s| (&s.urls, &s.url_first));

    // 2. global pair order: min first row per (global query, global url)
    let mut pair_min: HashMap<(u32, u32), u64> = HashMap::new();
    for s in shards {
        for (i, &(lq, lu)) in s.pair_keys.iter().enumerate() {
            let gq = queries.get(s.queries.resolve(lq)).expect("merged vocabulary is complete");
            let gu = urls.get(s.urls.resolve(lu)).expect("merged vocabulary is complete");
            let e = pair_min.entry((gq, gu)).or_insert(u64::MAX);
            *e = (*e).min(s.pair_first[i]);
        }
    }

    // 3. records with global ids, ordered by (pair first row, user id):
    //    pair ids get assigned in pair-first-occurrence order, which is
    //    exactly the sequential assignment
    let mut records: Vec<(u64, LogRecord)> = Vec::new();
    for s in shards {
        for &(lp, lu, count) in &s.records {
            let (lq, lurl) = s.pair_keys[lp as usize];
            let gq = queries.get(s.queries.resolve(lq)).expect("merged vocabulary is complete");
            let gu = urls.get(s.urls.resolve(lurl)).expect("merged vocabulary is complete");
            let guser = users.get(s.users.resolve(lu)).expect("merged vocabulary is complete");
            let first = pair_min[&(gq, gu)];
            records.push((
                first,
                LogRecord { user: UserId(guser), query: QueryId(gq), url: UrlId(gu), count },
            ));
        }
    }
    records.sort_unstable_by_key(|&(first, r)| (first, r.user.0));

    let stats = StreamStats {
        shard: shards.iter().fold(ShardStats::default(), |mut acc, s| {
            acc.merge(&s.stats);
            acc
        }),
        queries: queries.len(),
        urls: urls.len(),
        pairs: pair_min.len(),
    };

    let mut builder = SearchLogBuilder::with_vocabulary(users, queries, urls);
    for (_, r) in records {
        builder.add_record(r).expect("counts validated at intake");
    }
    (builder.build(), stats)
}

/// Union of shard vocabularies whose strings are disjoint (users).
fn merge_disjoint_vocab<'a>(
    shards: &'a [DrainedShard],
    view: impl Fn(&'a DrainedShard) -> (&'a Interner, &'a Vec<u64>),
) -> Interner {
    let mut entries: Vec<(u64, &str)> = Vec::new();
    for s in shards {
        let (interner, first) = view(s);
        for (id, string) in interner.iter() {
            entries.push((first[id as usize], string));
        }
    }
    build_ordered(entries)
}

/// Union of shard vocabularies that may overlap (queries, urls): the
/// global first row of a string is the min over shards.
fn merge_overlapping_vocab<'a>(
    shards: &'a [DrainedShard],
    view: impl Fn(&'a DrainedShard) -> (&'a Interner, &'a Vec<u64>),
) -> Interner {
    let mut min_first: HashMap<&str, u64> = HashMap::new();
    for s in shards {
        let (interner, first) = view(s);
        for (id, string) in interner.iter() {
            let e = min_first.entry(string).or_insert(u64::MAX);
            *e = (*e).min(first[id as usize]);
        }
    }
    build_ordered(min_first.into_iter().map(|(s, f)| (f, s)).collect())
}

/// Interner from `(first_row, string)` entries, ordered by first row.
/// First rows are unique within one category (a row introduces at most
/// one new string per category), so the order is total and
/// deterministic regardless of hash-map iteration.
fn build_ordered(mut entries: Vec<(u64, &str)>) -> Interner {
    entries.sort_unstable_by_key(|&(first, _)| first);
    let mut interner = Interner::with_capacity(entries.len());
    for (_, s) in entries {
        interner.intern(s);
    }
    interner
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsan_searchlog::io::read_tsv;
    use std::io::Cursor;

    fn sample_tsv() -> String {
        let mut s = String::new();
        // interleaved users so shard-local and global first-occurrence
        // orders genuinely differ
        for i in 0..30 {
            let user = format!("user{:02}", i % 7);
            let q = format!("q{}", i % 5);
            let url = format!("site{}.com", (i * 3) % 4);
            s.push_str(&format!("{user}\t{q}\t{url}\t{}\n", 1 + i % 3));
        }
        s
    }

    /// Structural equality: interners (content *and* order), ids,
    /// triplets. This is the property that makes everything downstream
    /// byte-identical.
    fn assert_logs_identical(a: &SearchLog, b: &SearchLog) {
        let vocab = |i: &Interner| i.iter().map(|(_, s)| s.to_string()).collect::<Vec<_>>();
        assert_eq!(vocab(a.users()), vocab(b.users()), "user interner order");
        assert_eq!(vocab(a.queries()), vocab(b.queries()), "query interner order");
        assert_eq!(vocab(a.urls()), vocab(b.urls()), "url interner order");
        let recs = |l: &SearchLog| l.records().collect::<Vec<_>>();
        assert_eq!(recs(a), recs(b), "pair-major records incl. all ids");
        assert_eq!(a.size(), b.size());
    }

    #[test]
    fn streamed_log_equals_one_shot_build() {
        let text = sample_tsv();
        let reference = read_tsv(Cursor::new(text.as_str())).unwrap();
        for shards in [1usize, 2, 3, 8] {
            for jobs in [1usize, 4] {
                let cfg = StreamConfig { shards, chunk_rows: 4, jobs, ..Default::default() };
                let got = ingest_tsv(Cursor::new(text.as_str()), &cfg).unwrap();
                assert_logs_identical(&got.log, &reference);
            }
        }
    }

    #[test]
    fn report_respects_configured_bounds() {
        let text = sample_tsv();
        let cfg = StreamConfig { shards: 4, chunk_rows: 5, sketch_capacity: 8, jobs: 2 };
        let got = ingest_tsv(Cursor::new(text.as_str()), &cfg).unwrap();
        assert_eq!(got.report.rows, 30);
        assert!(got.report.peak_chunk_rows <= 5, "chunk buffer bound");
        assert!(got.report.sketch_entries <= 8, "sketch capacity bound");
        assert!(got.report.max_shard_triplets <= got.log.n_triplets());
    }

    #[test]
    fn merged_stats_match_whole_log() {
        let text = sample_tsv();
        let cfg = StreamConfig { shards: 5, ..Default::default() };
        let got = ingest_tsv(Cursor::new(text.as_str()), &cfg).unwrap();
        let stats = dpsan_searchlog::LogStats::of(&got.log);
        assert_eq!(got.stats.shard.clicks, stats.total_tuples);
        assert_eq!(got.stats.shard.users, stats.user_logs);
        assert_eq!(got.stats.shard.triplets, got.log.n_triplets());
        assert_eq!(got.stats.queries, stats.distinct_queries);
        assert_eq!(got.stats.urls, stats.distinct_urls);
        assert_eq!(got.stats.pairs, stats.pairs);
    }

    #[test]
    fn sketch_sees_the_whole_stream() {
        let text = sample_tsv();
        let cfg = StreamConfig { shards: 3, sketch_capacity: 64, ..Default::default() };
        let got = ingest_tsv(Cursor::new(text.as_str()), &cfg).unwrap();
        let sk = got.sketch.expect("sketching enabled");
        assert_eq!(sk.total_weight(), got.log.size());
        assert_eq!(sk.error_bound(), 0, "capacity 64 >> distinct pairs: sketch is exact");
    }

    #[test]
    fn sketching_can_be_disabled() {
        let cfg = StreamConfig { sketch_capacity: 0, ..Default::default() };
        let got = ingest_tsv(Cursor::new("u1\tq\tl\t1\nu2\tq\tl\t2\n"), &cfg).unwrap();
        assert!(got.sketch.is_none());
        assert_eq!(got.report.sketch_entries, 0);
    }

    #[test]
    fn parse_errors_propagate() {
        let cfg = StreamConfig::default();
        let err = ingest_tsv(Cursor::new("u1\tq\tl\tnope\n"), &cfg).unwrap_err();
        assert!(err.to_string().contains("bad count"));
    }

    #[test]
    fn empty_input_yields_empty_log() {
        let got = ingest_tsv(Cursor::new(""), &StreamConfig::default()).unwrap();
        assert_eq!(got.log.size(), 0);
        assert_eq!(got.report.rows, 0);
        assert_eq!(got.stats, StreamStats::default());
    }

    /// The session invariant: after any split of the stream into
    /// appended chunks, a snapshot is structurally identical to the
    /// one-shot build of the concatenated prefix.
    #[test]
    fn incremental_snapshots_equal_one_shot_prefix_builds() {
        let text = sample_tsv();
        let lines: Vec<&str> = text.lines().collect();
        for split in [1usize, 7, 15, 29] {
            let (head, tail) = lines.split_at(split);
            let head_tsv = head.join("\n") + "\n";
            let tail_tsv = tail.join("\n") + "\n";
            let cfg = StreamConfig { shards: 3, chunk_rows: 4, jobs: 2, ..Default::default() };

            let mut session = IngestSession::new(cfg.clone());
            let added = session.ingest(Cursor::new(head_tsv.as_str())).unwrap();
            assert_eq!(added as usize, split);

            // mid-stream snapshot == one-shot build of the prefix
            let snap = session.snapshot();
            let prefix = ingest_tsv(Cursor::new(head_tsv.as_str()), &cfg).unwrap();
            assert_logs_identical(&snap.log, &prefix.log);

            // ...and intake continues: the final state == full build
            session.ingest(Cursor::new(tail_tsv.as_str())).unwrap();
            let full = ingest_tsv(Cursor::new(text.as_str()), &cfg).unwrap();
            let final_snap = session.snapshot();
            assert_logs_identical(&final_snap.log, &full.log);
            assert_eq!(final_snap.stats, full.stats);
            let finished = session.finish();
            assert_logs_identical(&finished.log, &full.log);
            assert_eq!(finished.report.rows, full.report.rows);
        }
    }

    #[test]
    fn session_sketch_merges_across_chunks() {
        let text = sample_tsv();
        let lines: Vec<&str> = text.lines().collect();
        let cfg = StreamConfig { shards: 3, sketch_capacity: 64, ..Default::default() };
        let mut session = IngestSession::new(cfg.clone());
        for chunk in lines.chunks(10) {
            session.ingest(Cursor::new(chunk.join("\n") + "\n")).unwrap();
        }
        let one_shot = ingest_tsv(Cursor::new(text.as_str()), &cfg).unwrap();
        let snap = session.snapshot();
        let sk = snap.sketch.expect("sketching enabled");
        assert_eq!(sk.total_weight(), one_shot.sketch.unwrap().total_weight());
        assert_eq!(sk.total_weight(), snap.log.size());
    }

    #[test]
    fn session_error_lines_are_global_and_session_survives() {
        let cfg = StreamConfig { chunk_rows: 2, ..Default::default() };
        let mut session = IngestSession::new(cfg);
        session.ingest(Cursor::new("u1\tq\tl\t1\nu2\tq\tl\t2\n")).unwrap();
        // line 2 of this chunk = global line 4
        let err =
            session.ingest(Cursor::new("u3\tq\tl\t3\nbroken line\nu4\tq\tl\t4\n")).unwrap_err();
        assert!(err.to_string().contains("line 4"), "global line number, got: {err}");
        // complete chunks before the error were applied; the partial
        // chunk holding the bad line was not
        assert_eq!(session.rows(), 2, "chunk_rows=2: the failing chunk was discarded whole");
        // the session is still usable
        session.ingest(Cursor::new("u5\tq\tl\t5\n")).unwrap();
        assert_eq!(session.rows(), 3);
        assert_eq!(session.snapshot().log.size(), 1 + 2 + 5);
    }

    /// The durability contract: a session restored from exported
    /// state mid-stream, then fed the rest of the input, ends up
    /// structurally identical to an uninterrupted session — and the
    /// exported state itself round-trips exactly.
    #[test]
    fn restored_session_continues_identically() {
        let text = sample_tsv();
        let lines: Vec<&str> = text.lines().collect();
        for split in [1usize, 7, 15, 29] {
            let (head, tail) = lines.split_at(split);
            let head_tsv = head.join("\n") + "\n";
            let tail_tsv = tail.join("\n") + "\n";
            let cfg = StreamConfig { shards: 3, chunk_rows: 4, sketch_capacity: 8, jobs: 2 };

            let mut original = IngestSession::new(cfg.clone());
            original.ingest(Cursor::new(head_tsv.as_str())).unwrap();
            let state = original.export_state();

            let mut restored = IngestSession::restore(cfg.clone(), state.clone()).unwrap();
            assert_eq!(restored.export_state(), state, "export∘restore is the identity");
            assert_eq!(restored.rows(), original.rows());

            original.ingest(Cursor::new(tail_tsv.as_str())).unwrap();
            restored.ingest(Cursor::new(tail_tsv.as_str())).unwrap();
            assert_eq!(restored.export_state(), original.export_state());

            let full = ingest_tsv(Cursor::new(text.as_str()), &cfg).unwrap();
            let snap = restored.snapshot();
            assert_logs_identical(&snap.log, &full.log);
            assert_eq!(snap.stats, full.stats);
            assert_eq!(snap.sketch.unwrap().total_weight(), full.sketch.unwrap().total_weight());
        }
    }

    #[test]
    fn restore_rejects_mismatched_config() {
        let cfg = StreamConfig { shards: 3, chunk_rows: 4, sketch_capacity: 8, jobs: 1 };
        let mut session = IngestSession::new(cfg.clone());
        session.ingest(Cursor::new(sample_tsv().as_str())).unwrap();
        let state = session.export_state();

        let resharded = StreamConfig { shards: 5, ..cfg.clone() };
        assert!(IngestSession::restore(resharded, state.clone()).unwrap_err().contains("shards"));

        let resized = StreamConfig { sketch_capacity: 16, ..cfg.clone() };
        assert!(IngestSession::restore(resized, state.clone()).unwrap_err().contains("capacity"));

        let mut lied = state.clone();
        lied.rows += 1;
        assert!(IngestSession::restore(cfg.clone(), lied).unwrap_err().contains("counter"));

        let mut corrupt = state;
        corrupt.shards[0].user_first.pop();
        assert!(IngestSession::restore(cfg, corrupt).unwrap_err().contains("shard 0"));
    }

    #[test]
    fn snapshot_of_empty_session_is_empty() {
        let session = IngestSession::new(StreamConfig::default());
        let snap = session.snapshot();
        assert_eq!(snap.log.size(), 0);
        assert_eq!(snap.report.rows, 0);
    }
}
