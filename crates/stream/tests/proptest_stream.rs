//! Property tests of the streaming ingestion engine: the streamed log
//! is the in-memory log, merged stats are whole-log stats, and sketch
//! mining agrees with the exact frequent-pair scan — with the
//! guaranteed-completeness band (`min_support · |D| > N/k` slack)
//! checked against the sketch *alone*, before any exactification.

use std::io::Cursor;

use dpsan_searchlog::io::read_tsv;
use dpsan_searchlog::{frequent_pairs, LogStats};
use dpsan_stream::{ingest_tsv, sketch_frequent_pairs, PairSketch, StreamConfig};
use proptest::prelude::*;

/// Random raw tuples over small id spaces (duplicates intended).
fn arb_tuples() -> impl Strategy<Value = Vec<(u8, u8, u8, u8)>> {
    prop::collection::vec((0u8..12, 0u8..8, 0u8..4, 1u8..6), 1..60)
}

fn to_tsv(tuples: &[(u8, u8, u8, u8)]) -> String {
    tuples.iter().map(|&(u, q, l, c)| format!("user{u}\tq{q}\tl{l}\t{c}\n")).collect()
}

proptest! {
    #[test]
    fn streamed_log_is_the_in_memory_log(
        tuples in arb_tuples(),
        shards in 1usize..7,
        jobs in 1usize..4,
        chunk in 1usize..9,
    ) {
        let text = to_tsv(&tuples);
        let reference = read_tsv(Cursor::new(text.as_str())).unwrap();
        let cfg = StreamConfig { shards, chunk_rows: chunk, jobs, ..Default::default() };
        let got = ingest_tsv(Cursor::new(text.as_str()), &cfg).unwrap();
        // structural identity: same interner orders, same ids, same counts
        let vocab = |i: &dpsan_searchlog::Interner| {
            i.iter().map(|(_, s)| s.to_string()).collect::<Vec<_>>()
        };
        prop_assert_eq!(vocab(got.log.users()), vocab(reference.users()));
        prop_assert_eq!(vocab(got.log.queries()), vocab(reference.queries()));
        prop_assert_eq!(vocab(got.log.urls()), vocab(reference.urls()));
        let recs = |l: &dpsan_searchlog::SearchLog| l.records().collect::<Vec<_>>();
        prop_assert_eq!(recs(&got.log), recs(&reference));
        // and the memory counters respect their bounds
        prop_assert!(got.report.peak_chunk_rows <= chunk);
        prop_assert_eq!(got.report.rows, tuples.len() as u64);
    }

    #[test]
    fn merged_stats_equal_whole_log_stats(
        tuples in arb_tuples(),
        shards in 1usize..7,
    ) {
        let text = to_tsv(&tuples);
        let cfg = StreamConfig { shards, ..Default::default() };
        let got = ingest_tsv(Cursor::new(text.as_str()), &cfg).unwrap();
        let stats = LogStats::of(&got.log);
        prop_assert_eq!(got.stats.shard.clicks, stats.total_tuples);
        prop_assert_eq!(got.stats.shard.users, stats.user_logs);
        prop_assert_eq!(got.stats.shard.triplets, got.log.n_triplets());
        prop_assert_eq!(got.stats.shard.rows, tuples.len() as u64);
        prop_assert_eq!(got.stats.queries, stats.distinct_queries);
        prop_assert_eq!(got.stats.urls, stats.distinct_urls);
        prop_assert_eq!(got.stats.pairs, stats.pairs);
    }

    #[test]
    fn sketch_mining_agrees_with_exact_scan(
        tuples in arb_tuples(),
        shards in 1usize..7,
        capacity in 2usize..12,
        support_pct in 1u64..40,
    ) {
        let text = to_tsv(&tuples);
        let cfg = StreamConfig { shards, sketch_capacity: capacity, ..Default::default() };
        let got = ingest_tsv(Cursor::new(text.as_str()), &cfg).unwrap();
        let sketch = got.sketch.unwrap();
        let min_support = support_pct as f64 / 100.0;

        // (a) end-to-end mining (sketch candidates + exactification,
        // with the documented fallback below the error bound) equals
        // the exact scan for EVERY support level and shard count
        let exact = frequent_pairs(&got.log, min_support);
        let mined = sketch_frequent_pairs(&got.log, &sketch, min_support);
        prop_assert_eq!(mined, exact.clone());

        // (b) the sketch *alone* is complete above the slack band: a
        // pair whose count clears min_support·|D| + N/k must survive
        // with its estimate within error_bound of the truth
        let n = sketch.total_weight();
        let k = sketch.capacity() as u64;
        prop_assert!(sketch.error_bound() <= n / (k + 1), "MG bound violated");
        let slack_threshold = min_support * n as f64 + (n / k) as f64;
        for f in &exact {
            if (f.count as f64) < slack_threshold {
                continue;
            }
            let (q, u) = got.log.pair_key(f.pair);
            let est = sketch
                .estimate(got.log.queries().resolve(q.0), got.log.urls().resolve(u.0))
                .expect("pair above the slack band survives in the sketch");
            prop_assert!(est <= f.count);
            prop_assert!(est + sketch.error_bound() >= f.count);
        }
    }

    #[test]
    fn sketch_merge_equals_single_stream_for_ample_capacity(
        tuples in arb_tuples(),
        shards in 2usize..6,
    ) {
        // with capacity >= distinct pairs, both the sharded-and-merged
        // sketch and a single-stream sketch are exact: same entries
        let text = to_tsv(&tuples);
        let cfg = StreamConfig { shards, sketch_capacity: 64, ..Default::default() };
        let got = ingest_tsv(Cursor::new(text.as_str()), &cfg).unwrap();
        let merged = got.sketch.unwrap();
        let mut single = PairSketch::new(64);
        for &(_, q, l, c) in &tuples {
            single.offer(&format!("q{q}"), &format!("l{l}"), c as u64);
        }
        prop_assert_eq!(merged.error_bound(), 0);
        prop_assert_eq!(merged.entries(), single.entries());
    }
}
