//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro all                      # every experiment at the default scale
//! repro table4 fig3a --scale tiny
//! repro fig5 --scale medium
//! ```

use std::io::Write;
use std::process::ExitCode;

use dpsan_eval::{run_experiment, Ctx, Scale, EXPERIMENTS};

fn usage() -> String {
    let ids: Vec<&str> = EXPERIMENTS.iter().map(|(id, _)| *id).collect();
    format!(
        "usage: repro <experiment>... [--scale tiny|small|medium|paper]\n\
         experiments: all, {}",
        ids.join(", ")
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Small;
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let Some(v) = it.next() else {
                    eprintln!("--scale needs a value\n{}", usage());
                    return ExitCode::FAILURE;
                };
                let Some(s) = Scale::parse(v) else {
                    eprintln!("unknown scale {v:?}\n{}", usage());
                    return ExitCode::FAILURE;
                };
                scale = s;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }
    if wanted.iter().any(|w| w == "all") {
        wanted = EXPERIMENTS.iter().map(|(id, _)| id.to_string()).collect();
    }

    eprintln!("generating {scale:?}-scale dataset ...");
    let ctx = Ctx::new(scale);
    let stdout = std::io::stdout();
    for name in &wanted {
        let mut out = stdout.lock();
        eprintln!("running {name} ...");
        if let Err(e) = run_experiment(name, &ctx, &mut out) {
            eprintln!("{name} failed: {e}");
            return ExitCode::FAILURE;
        }
        let _ = writeln!(out);
    }
    ExitCode::SUCCESS
}
