//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro all                      # every experiment at the default scale
//! repro table4 fig3a --scale tiny
//! repro fig5 --scale medium
//! repro all --scale small --jobs 4
//! ```
//!
//! `--jobs N` sets how many worker threads the grid prefetches may use
//! (default: the machine's available parallelism). Output is
//! byte-identical for every `N`; jobs only trades wall-clock for CPU.
//!
//! `--stats` prints, after each experiment, the aggregate LP-solver
//! counters (dual reoptimizations vs warm/cold primal solves, simplex
//! iterations, refactorizations) to **stderr**, so the golden-gated
//! stdout stays untouched. `--metrics-json <path>` dumps the full
//! telemetry registry (the same counters plus histograms with exact
//! p50/p99) as JSON at exit — also observational only.

use std::process::ExitCode;

use dpsan_eval::{run_experiments_opts, Ctx, RunOptions, Scale, EXPERIMENTS};

fn usage() -> String {
    let ids: Vec<&str> = EXPERIMENTS.iter().map(|(id, _)| *id).collect();
    format!(
        "usage: repro <experiment>... [--scale tiny|small|medium|paper] [--jobs N] [--stats] \
         [--metrics-json <path>]\n\
         experiments: all, {}",
        ids.join(", ")
    )
}

fn default_jobs() -> usize {
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Small;
    let mut jobs = default_jobs();
    let mut stats = false;
    let mut metrics_json: Option<String> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let Some(v) = it.next() else {
                    eprintln!("--scale needs a value\n{}", usage());
                    return ExitCode::FAILURE;
                };
                let Some(s) = Scale::parse(v) else {
                    eprintln!("unknown scale {v:?}\n{}", usage());
                    return ExitCode::FAILURE;
                };
                scale = s;
            }
            "--jobs" => {
                let Some(v) = it.next() else {
                    eprintln!("--jobs needs a value\n{}", usage());
                    return ExitCode::FAILURE;
                };
                let Ok(n) = v.parse::<usize>() else {
                    eprintln!("--jobs needs a positive integer, got {v:?}\n{}", usage());
                    return ExitCode::FAILURE;
                };
                if n == 0 {
                    eprintln!("--jobs must be at least 1\n{}", usage());
                    return ExitCode::FAILURE;
                }
                jobs = n;
            }
            "--stats" => stats = true,
            "--metrics-json" => {
                let Some(v) = it.next() else {
                    eprintln!("--metrics-json needs a value\n{}", usage());
                    return ExitCode::FAILURE;
                };
                metrics_json = Some(v.clone());
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }
    if wanted.iter().any(|w| w == "all") {
        wanted = EXPERIMENTS.iter().map(|(id, _)| id.to_string()).collect();
    }

    eprintln!("generating {scale:?}-scale dataset ({jobs} jobs) ...");
    let ctx = Ctx::new(scale).with_jobs(jobs);
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let opts = RunOptions { progress: true, solver_stats: stats };
    if let Err(e) = run_experiments_opts(&wanted, &ctx, &mut out, &opts) {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    // Telemetry export at exit (observational only: the golden-gated
    // stdout above never sees it).
    if let Some(path) = &metrics_json {
        let snap = dpsan_obs::global().snapshot();
        if let Err(e) = dpsan_obs::export::write_json(std::path::Path::new(path), &snap) {
            eprintln!("repro: writing --metrics-json {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
