//! `sanitize` — the production entrypoint: read a search-log file, run
//! a differentially private sanitization mechanism, write the output.
//!
//! ```text
//! sanitize access.tsv --out sanitized.tsv
//! sanitize access.tsv --mechanism fump --min-support 0.02 --e-epsilon 1.7
//! sanitize access.tsv --mechanism zealous --zealous-cap 8
//! sanitize access.tsv --ingest in-memory --out reference.tsv   # cross-check
//! ```
//!
//! Unlike `repro` (which regenerates the paper's tables on synthetic
//! data), `sanitize` is a file-in/file-out tool. `--mechanism` selects
//! any [`Sanitizer`] impl — the paper's three UMP objectives, the
//! ZEALOUS noisy-threshold baseline, or local randomized response; all
//! emit the same 4-column TSV schema as the input (the paper's headline
//! property).
//!
//! The default ingestion path is the `dpsan-stream` sharded engine:
//! chunked intake, user-hash shards (user-complete, so the privacy
//! accounting of every mechanism is untouched), a mergeable
//! heavy-hitters sketch that mines candidate pairs for fump/zealous in
//! the same bounded-memory pass, and a deterministic merge. `--ingest
//! in-memory` runs the one-shot `read_tsv` build instead; **both paths
//! produce byte-identical output** for every `--jobs`/`--shards` value
//! (CI diffs them).

use std::io::Write;
use std::process::ExitCode;

use dpsan_core::mechanism::{
    LdpOptions, LdpSanitizer, Sanitizer, UmpSanitizer, UtilityObjective, ZealousOptions,
    ZealousSanitizer,
};
use dpsan_core::ump::diversity::DumpSolver;
use dpsan_core::ump::output_size::{solve_oump, OumpOptions};
use dpsan_dp::params::PrivacyParams;
use dpsan_searchlog::{frequent_pairs, io::read_tsv, preprocess, FrequentPair, SearchLog};
use dpsan_stream::{ingest_path, sketch_frequent_pairs, StreamConfig};

const USAGE: &str = "usage: sanitize <input.tsv> [options]
  --out <path>             write the sanitized log here (default: stdout)
  --mechanism <m>          oump | fump | dump | zealous | ldp-rr (default: oump)
  --e-epsilon <v>          privacy parameter e^eps, > 1      (default: 2.0)
  --delta <v>              privacy parameter delta, in (0,1) (default: 0.5)
  --min-support <v>        fump support threshold, in (0,1]  (default: 0.05)
  --output-size <n|auto>   fump output size |O|      (default: auto = lambda/2)
  --zealous-cap <n>        zealous per-user contribution cap (default: 8)
  --zealous-coarse <n>     zealous coarse cutoff tau'        (default: 2)
  --ldp-cap <n>            ldp-rr per-user pair cap          (default: 4)
  --lp-budget <n>          oump only: cap the LP at n simplex iterations and
                           release the best feasible iterate found (anytime
                           mode). Feasibility — and hence privacy — holds at
                           every iterate; only utility is traded. This is the
                           knob that bounds wall-clock at 10^5+ users.
  --seed <n>               sampling / noise seed     (default: fixed)
  --ingest <mode>          streaming | in-memory     (default: streaming)
  --shards <n>             user-hash shards          (default: 16)
  --chunk-rows <n>         max raw rows in memory    (default: 8192)
  --sketch-capacity <n>    heavy-hitter counters (default: 4096 for fump and
                           zealous, 0 = off otherwise)
  --jobs <n>               shard-drain workers       (default: available cores)
  --stats                  ingestion + run + solver report to stderr
  --metrics-file <path>    write a Prometheus-text telemetry snapshot here at
                           exit (atomic temp+rename); observational only —
                           output stays byte-identical with it on or off

follow mode (always-on service; requires --out-dir):
  --follow                 tail <input.tsv> for appended chunks and re-release
  --out-dir <dir>          directory for release-NNNN.tsv outputs
  --trigger-rows <n>       re-release after n new rows    (default: 4096)
  --poll-ms <n>            poll interval for appends      (default: 200)
  --idle-exit-ms <n>       flush + exit after n ms without new data
  --max-releases <n>       stop after n successful releases
  --lifetime-epsilon <v>   enforced lifetime epsilon across all releases
  --lifetime-delta <v>     enforced lifetime delta (with --lifetime-epsilon)
  --store-dir <dir>        durable crash-safe store: WAL-log every consumed
                           chunk, checkpoint shards, chain release manifests;
                           a restart recovers the exact session and ledger
  --checkpoint-rows <n>    checkpoint after n rows since the last checkpoint
                           (default: 65536; 0 = only on clean exit)
  --metrics-interval-ms <n>  while following, also re-export the --metrics-file
                           snapshot every n ms (default: final flush only)

  Every release covers the full stream ingested so far and is
  byte-identical to a one-shot run over the same prefix with the same
  seed. Releases compose: with a lifetime budget set, a release that
  would exceed it is refused and the service stops cleanly, state
  intact. fump needs an explicit --output-size here (auto would peek at
  the growing data); zealous ignores the sketch (exact totals only).";

/// The default RNG seed — the repository-wide determinism convention.
const DEFAULT_SEED: u64 = 0xd95a_11ce;

struct Args {
    input: String,
    out: Option<String>,
    mechanism: String,
    e_epsilon: f64,
    delta: f64,
    min_support: f64,
    output_size: Option<u64>,
    zealous_cap: u64,
    zealous_coarse: u64,
    ldp_cap: u64,
    lp_budget: Option<usize>,
    seed: u64,
    ingest: String,
    shards: usize,
    chunk_rows: usize,
    sketch_capacity: Option<usize>,
    jobs: usize,
    stats: bool,
    follow: bool,
    out_dir: Option<String>,
    trigger_rows: u64,
    poll_ms: u64,
    idle_exit_ms: Option<u64>,
    max_releases: Option<u64>,
    lifetime_epsilon: Option<f64>,
    lifetime_delta: Option<f64>,
    store_dir: Option<String>,
    checkpoint_rows: u64,
    metrics_file: Option<String>,
    metrics_interval_ms: Option<u64>,
}

impl Args {
    /// Per-shard sketch capacity: an explicit `--sketch-capacity`
    /// wins; otherwise sketching runs only for the mechanisms that
    /// consume mined candidates (fump, zealous) and stays off the
    /// oump/dump/ldp-rr hot path.
    fn effective_sketch_capacity(&self) -> usize {
        self.sketch_capacity.unwrap_or(if matches!(self.mechanism.as_str(), "fump" | "zealous") {
            4096
        } else {
            0
        })
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        input: String::new(),
        out: None,
        mechanism: "oump".into(),
        e_epsilon: 2.0,
        delta: 0.5,
        min_support: 0.05,
        output_size: None,
        zealous_cap: 8,
        zealous_coarse: 2,
        ldp_cap: 4,
        lp_budget: None,
        seed: DEFAULT_SEED,
        ingest: "streaming".into(),
        shards: 16,
        chunk_rows: 8192,
        sketch_capacity: None,
        jobs: std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1),
        stats: false,
        follow: false,
        out_dir: None,
        trigger_rows: 4096,
        poll_ms: 200,
        idle_exit_ms: None,
        max_releases: None,
        lifetime_epsilon: None,
        lifetime_delta: None,
        store_dir: None,
        checkpoint_rows: 65536,
        metrics_file: None,
        metrics_interval_ms: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    let value = |flag: &str, it: &mut std::slice::Iter<String>| -> Result<String, String> {
        it.next().cloned().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--out" => args.out = Some(value("--out", &mut it)?),
            "--mechanism" => args.mechanism = value("--mechanism", &mut it)?,
            "--e-epsilon" => {
                args.e_epsilon = parse_num(&value("--e-epsilon", &mut it)?, "--e-epsilon")?
            }
            "--delta" => args.delta = parse_num(&value("--delta", &mut it)?, "--delta")?,
            "--min-support" => {
                args.min_support = parse_num(&value("--min-support", &mut it)?, "--min-support")?
            }
            "--output-size" => {
                let v = value("--output-size", &mut it)?;
                args.output_size = if v == "auto" {
                    None
                } else {
                    Some(v.parse().map_err(|e| format!("bad --output-size {v:?}: {e}"))?)
                };
            }
            "--zealous-cap" => {
                args.zealous_cap =
                    parse_count64(&value("--zealous-cap", &mut it)?, "--zealous-cap")?
            }
            "--zealous-coarse" => {
                args.zealous_coarse =
                    parse_count64(&value("--zealous-coarse", &mut it)?, "--zealous-coarse")?
            }
            "--ldp-cap" => {
                args.ldp_cap = parse_count64(&value("--ldp-cap", &mut it)?, "--ldp-cap")?
            }
            "--lp-budget" => {
                args.lp_budget = Some(parse_count(&value("--lp-budget", &mut it)?, "--lp-budget")?)
            }
            "--seed" => {
                args.seed =
                    value("--seed", &mut it)?.parse().map_err(|e| format!("bad --seed: {e}"))?
            }
            "--ingest" => args.ingest = value("--ingest", &mut it)?,
            "--shards" => args.shards = parse_count(&value("--shards", &mut it)?, "--shards")?,
            "--chunk-rows" => {
                args.chunk_rows = parse_count(&value("--chunk-rows", &mut it)?, "--chunk-rows")?
            }
            "--sketch-capacity" => {
                args.sketch_capacity = Some(
                    value("--sketch-capacity", &mut it)?
                        .parse()
                        .map_err(|e| format!("bad --sketch-capacity: {e}"))?,
                )
            }
            "--jobs" => args.jobs = parse_count(&value("--jobs", &mut it)?, "--jobs")?,
            "--stats" => args.stats = true,
            "--follow" => args.follow = true,
            "--out-dir" => args.out_dir = Some(value("--out-dir", &mut it)?),
            "--trigger-rows" => {
                args.trigger_rows =
                    parse_count64(&value("--trigger-rows", &mut it)?, "--trigger-rows")?
            }
            "--poll-ms" => {
                args.poll_ms = value("--poll-ms", &mut it)?
                    .parse()
                    .map_err(|e| format!("bad --poll-ms: {e}"))?
            }
            "--idle-exit-ms" => {
                args.idle_exit_ms = Some(
                    value("--idle-exit-ms", &mut it)?
                        .parse()
                        .map_err(|e| format!("bad --idle-exit-ms: {e}"))?,
                )
            }
            "--max-releases" => {
                args.max_releases =
                    Some(parse_count64(&value("--max-releases", &mut it)?, "--max-releases")?)
            }
            "--lifetime-epsilon" => {
                args.lifetime_epsilon =
                    Some(parse_num(&value("--lifetime-epsilon", &mut it)?, "--lifetime-epsilon")?)
            }
            "--lifetime-delta" => {
                args.lifetime_delta =
                    Some(parse_num(&value("--lifetime-delta", &mut it)?, "--lifetime-delta")?)
            }
            "--store-dir" => args.store_dir = Some(value("--store-dir", &mut it)?),
            "--metrics-file" => args.metrics_file = Some(value("--metrics-file", &mut it)?),
            "--metrics-interval-ms" => {
                args.metrics_interval_ms = Some(
                    value("--metrics-interval-ms", &mut it)?
                        .parse()
                        .map_err(|e| format!("bad --metrics-interval-ms: {e}"))?,
                )
            }
            "--checkpoint-rows" => {
                // 0 is legal here (checkpoint only on clean exit)
                args.checkpoint_rows = value("--checkpoint-rows", &mut it)?
                    .parse()
                    .map_err(|e| format!("bad --checkpoint-rows: {e}"))?
            }
            other if other.starts_with('-') => return Err(format!("unknown option {other:?}")),
            other => {
                if !args.input.is_empty() {
                    return Err(format!("unexpected extra input {other:?}"));
                }
                args.input = other.to_string();
            }
        }
    }
    if args.input.is_empty() {
        return Err("missing input file".into());
    }
    if !matches!(args.mechanism.as_str(), "oump" | "fump" | "dump" | "zealous" | "ldp-rr") {
        return Err(format!("unknown mechanism {:?}", args.mechanism));
    }
    if !matches!(args.ingest.as_str(), "streaming" | "in-memory") {
        return Err(format!("unknown ingest mode {:?}", args.ingest));
    }
    if args.lp_budget.is_some() && args.mechanism != "oump" {
        return Err("--lp-budget only applies to --mechanism oump".into());
    }
    if args.lp_budget == Some(0) {
        return Err("--lp-budget must be at least 1".into());
    }
    // numeric domains, mirrored from the library asserts so a typo
    // gets the usage path, not a panic + backtrace
    if !(args.e_epsilon.is_finite() && args.e_epsilon > 1.0) {
        return Err(format!("--e-epsilon must be > 1, got {}", args.e_epsilon));
    }
    if !(args.delta.is_finite() && args.delta > 0.0 && args.delta < 1.0) {
        return Err(format!("--delta must be in (0, 1), got {}", args.delta));
    }
    if !(args.min_support.is_finite() && args.min_support > 0.0 && args.min_support <= 1.0) {
        return Err(format!("--min-support must be in (0, 1], got {}", args.min_support));
    }
    if args.output_size == Some(0) {
        return Err("--output-size must be at least 1 (or auto)".into());
    }
    if args.follow {
        if args.out_dir.is_none() {
            return Err("--follow needs --out-dir".into());
        }
        if args.ingest != "streaming" {
            return Err("--follow is a streaming mode; drop --ingest in-memory".into());
        }
        if args.mechanism == "fump" && args.output_size.is_none() {
            return Err(
                "--follow with fump needs an explicit --output-size (auto would peek at the \
                 growing data)"
                    .into(),
            );
        }
        match (args.lifetime_epsilon, args.lifetime_delta) {
            (None, None) | (Some(_), Some(_)) => {}
            _ => return Err("--lifetime-epsilon and --lifetime-delta go together".into()),
        }
        if let Some(e) = args.lifetime_epsilon {
            if !(e.is_finite() && e >= 0.0) {
                return Err(format!("--lifetime-epsilon must be finite and >= 0, got {e}"));
            }
        }
        if let Some(d) = args.lifetime_delta {
            if !(d.is_finite() && (0.0..1.0).contains(&d)) {
                return Err(format!("--lifetime-delta must be in [0, 1), got {d}"));
            }
        }
    } else if args.out_dir.is_some() {
        return Err("--out-dir only makes sense with --follow".into());
    } else if args.store_dir.is_some() {
        return Err("--store-dir only makes sense with --follow".into());
    }
    if args.metrics_interval_ms.is_some() {
        if !args.follow {
            return Err("--metrics-interval-ms only makes sense with --follow".into());
        }
        if args.metrics_file.is_none() {
            return Err("--metrics-interval-ms needs --metrics-file".into());
        }
    }
    Ok(args)
}

fn parse_num(v: &str, flag: &str) -> Result<f64, String> {
    v.parse().map_err(|e| format!("bad {flag} {v:?}: {e}"))
}

fn parse_count(v: &str, flag: &str) -> Result<usize, String> {
    let n: usize = v.parse().map_err(|e| format!("bad {flag} {v:?}: {e}"))?;
    if n == 0 {
        return Err(format!("{flag} must be at least 1"));
    }
    Ok(n)
}

fn parse_count64(v: &str, flag: &str) -> Result<u64, String> {
    parse_count(v, flag).map(|n| n as u64)
}

/// Build the selected mechanism. `sketch`-mined candidates feed the
/// fump LP and the zealous coarse phase; both re-filter exactly against
/// the preprocessed log, so the sketch path stays byte-identical to the
/// exact scan.
fn build_mechanism(
    args: &Args,
    pre: &SearchLog,
    params: PrivacyParams,
    sketch: Option<&dpsan_stream::PairSketch>,
) -> Result<Box<dyn Sanitizer>, Box<dyn std::error::Error>> {
    Ok(match args.mechanism.as_str() {
        "oump" => {
            let mut s = UmpSanitizer::new(UtilityObjective::OutputSize);
            if let Some(budget) = args.lp_budget {
                s = s.with_lp_iteration_budget(budget);
            }
            Box::new(s)
        }
        "dump" => {
            Box::new(UmpSanitizer::new(UtilityObjective::Diversity { solver: DumpSolver::Spe }))
        }
        "fump" => {
            let output_size = match args.output_size {
                Some(o) => o,
                None => {
                    let lambda = solve_oump(pre, params, &OumpOptions::default())?.lambda;
                    (lambda / 2).max(1)
                }
            };
            let frequent: Vec<FrequentPair> = match sketch {
                Some(sk) => sketch_frequent_pairs(pre, sk, args.min_support),
                None => frequent_pairs(pre, args.min_support),
            };
            if args.stats {
                eprintln!(
                    "fump: frequent_pairs={} output_size={output_size} mined_via={}",
                    frequent.len(),
                    if sketch.is_some() { "sketch" } else { "exact-scan" },
                );
            }
            Box::new(UmpSanitizer::new(UtilityObjective::SketchedFrequentPairs {
                frequent,
                min_support: args.min_support,
                output_size,
            }))
        }
        "zealous" => {
            // streamed runs mine the coarse-phase candidates from the
            // sketch at support tau'/|D| — a (division is monotone)
            // exact match of `total >= tau'`, and zealous re-filters
            // against exact totals anyway, so both paths draw the
            // identical noise stream
            let candidates = match sketch {
                Some(sk) if pre.size() > 0 => {
                    let support = (args.zealous_coarse as f64 / pre.size() as f64)
                        .clamp(f64::MIN_POSITIVE, 1.0);
                    let mined = sketch_frequent_pairs(pre, sk, support);
                    if args.stats {
                        eprintln!("zealous: candidates={} mined_via=sketch", mined.len());
                    }
                    Some(mined)
                }
                _ => None,
            };
            Box::new(ZealousSanitizer::with_options(ZealousOptions {
                contribution_cap: args.zealous_cap,
                coarse_threshold: args.zealous_coarse,
                candidates,
            }))
        }
        "ldp-rr" => {
            Box::new(LdpSanitizer::with_options(LdpOptions { max_pairs_per_user: args.ldp_cap }))
        }
        _ => unreachable!("validated in parse_args"),
    })
}

/// The mechanisms a follow session can host: everything whose
/// configuration is fixed up front. fump mines its frequent set from
/// the current window on every release ([`UtilityObjective::FrequentPairs`]);
/// zealous runs without sketch-mined candidates — the exact-totals path
/// the sketch path is byte-identical to anyway.
fn build_follow_mechanism(args: &Args) -> Box<dyn Sanitizer> {
    match args.mechanism.as_str() {
        "oump" => {
            let mut s = UmpSanitizer::new(UtilityObjective::OutputSize);
            if let Some(budget) = args.lp_budget {
                s = s.with_lp_iteration_budget(budget);
            }
            Box::new(s)
        }
        "dump" => {
            Box::new(UmpSanitizer::new(UtilityObjective::Diversity { solver: DumpSolver::Spe }))
        }
        "fump" => Box::new(UmpSanitizer::new(UtilityObjective::FrequentPairs {
            min_support: args.min_support,
            output_size: args.output_size.expect("validated in parse_args"),
        })),
        "zealous" => Box::new(ZealousSanitizer::with_options(ZealousOptions {
            contribution_cap: args.zealous_cap,
            coarse_threshold: args.zealous_coarse,
            candidates: None,
        })),
        "ldp-rr" => {
            Box::new(LdpSanitizer::with_options(LdpOptions { max_pairs_per_user: args.ldp_cap }))
        }
        _ => unreachable!("validated in parse_args"),
    }
}

/// The always-on service: tail the input for appended chunks,
/// re-release on the event-count trigger, debit one lifetime ledger.
fn run_follow(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let params = PrivacyParams::from_e_epsilon(args.e_epsilon, args.delta);
    let opts = dpsan_serve::ServeOptions {
        stream: StreamConfig {
            shards: args.shards,
            chunk_rows: args.chunk_rows,
            sketch_capacity: 0, // no consumer in follow mode (see above)
            jobs: args.jobs,
        },
        params,
        seed: args.seed,
        trigger_rows: args.trigger_rows,
        poll: std::time::Duration::from_millis(args.poll_ms),
        idle_exit: args.idle_exit_ms.map(std::time::Duration::from_millis),
        max_releases: args.max_releases,
        lifetime: args.lifetime_epsilon.zip(args.lifetime_delta),
        out_dir: args.out_dir.as_deref().expect("validated in parse_args").into(),
        store: args.store_dir.as_deref().map(|dir| dpsan_serve::StoreOptions {
            dir: dir.into(),
            checkpoint_rows: args.checkpoint_rows,
        }),
        metrics_file: args.metrics_file.as_deref().map(Into::into),
        metrics_interval: args.metrics_interval_ms.map(std::time::Duration::from_millis),
    };
    let mechanism = build_follow_mechanism(args);
    let report = dpsan_serve::serve(mechanism, std::path::Path::new(&args.input), &opts)?;

    if args.stats {
        if let Some(rec) = &report.recovery {
            // the summary line renders from the registry's recovery
            // gauges — the same series a --metrics-file export carries
            eprintln!("{}", dpsan_eval::stats_text::recovery_line(&dpsan_obs::global().snapshot()));
            for (generation, why) in &rec.rejected {
                eprintln!("recovery: rejected checkpoint {generation}: {why}");
            }
            for seq in &rec.unpublished {
                eprintln!(
                    "recovery: manifest {seq} has no published artifact (budget spent, \
                     output never escaped)"
                );
            }
        }
        eprintln!(
            "serve: releases={} rows={} mechanism={}",
            report.releases.len(),
            report.ingest.rows,
            args.mechanism,
        );
        for (rec, path) in report.releases.iter().zip(&report.paths) {
            eprintln!(
                "{}",
                dpsan_eval::stats_text::release_line(
                    rec.index,
                    rec.rows,
                    rec.latency,
                    &dpsan_eval::stats_text::SolverCounters::from(&rec.solver),
                    rec.epsilon_total,
                    rec.delta_total,
                    path,
                )
            );
        }
        eprintln!("ledger: {}", report.ledger);
    }
    if let Some(msg) = report.budget_refusal {
        // a refusal is the ledger doing its job: report + clean exit
        eprintln!("sanitize: lifetime budget exhausted, stopping: {msg}");
    }
    Ok(())
}

fn run(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let params = PrivacyParams::from_e_epsilon(args.e_epsilon, args.delta);

    // 1. ingestion: streamed sharded engine or one-shot in-memory —
    //    both yield the identical SearchLog (tested + CI-diffed)
    let (raw, sketch): (SearchLog, Option<dpsan_stream::PairSketch>) = if args.ingest == "streaming"
    {
        let cfg = StreamConfig {
            shards: args.shards,
            chunk_rows: args.chunk_rows,
            sketch_capacity: args.effective_sketch_capacity(),
            jobs: args.jobs,
        };
        let r = ingest_path(&args.input, &cfg)?;
        if args.stats {
            eprintln!(
                "ingest[streaming]: rows={} shards={} peak_chunk_rows={} \
                     max_shard_triplets={} sketch_entries={}",
                r.report.rows,
                args.shards,
                r.report.peak_chunk_rows,
                r.report.max_shard_triplets,
                r.report.sketch_entries,
            );
        }
        (r.log, r.sketch)
    } else {
        let file = std::fs::File::open(&args.input)?;
        let log = read_tsv(std::io::BufReader::new(file))?;
        if args.stats {
            eprintln!("ingest[in-memory]: triplets={}", log.n_triplets());
        }
        (log, None)
    };

    // 2. preprocess once here: the fump frequent set and the zealous
    //    candidate mining refer to the preprocessed log, and
    //    preprocessing is idempotent + id-stable, so the mechanism's
    //    internal pass is a no-op on `pre`
    let (pre, report) = preprocess(&raw);
    if args.stats {
        eprintln!(
            "preprocess: removed_pairs={} removed_clicks={} kept_pairs={} kept_size={}",
            report.removed_pairs,
            report.removed_count,
            pre.n_pairs(),
            pre.size()
        );
    }

    let mechanism = build_mechanism(args, &pre, params, sketch.as_ref())?;
    let release = mechanism.sanitize(&pre, params, args.seed)?;
    if args.stats {
        let info = mechanism.info();
        eprintln!(
            "sanitize: mechanism={} ({}) output_size={} output_pairs={} epsilon={:.6} delta={}",
            info.id,
            info.privacy,
            release.output.size(),
            release.output.n_pairs(),
            params.epsilon(),
            params.delta()
        );
        // always printed — all-zero for non-LP mechanisms, so scripted
        // consumers see one stable line per run instead of a missing one
        eprintln!(
            "{}",
            dpsan_eval::stats_text::solver_line(&dpsan_eval::stats_text::SolverCounters::from(
                &release.solver
            ))
        );
    }

    // 3. release: same schema as the input
    match &args.out {
        Some(path) => {
            let file = std::fs::File::create(path)?;
            let mut w = std::io::BufWriter::new(file);
            dpsan_searchlog::io::write_tsv(&release.output, &mut w)?;
            w.flush()?;
        }
        None => {
            let stdout = std::io::stdout();
            let mut w = stdout.lock();
            dpsan_searchlog::io::write_tsv(&release.output, &mut w)?;
            w.flush()?;
        }
    }

    // 4. telemetry export, after the release is on disk: purely
    //    observational, the output above is byte-identical with or
    //    without it (CI diffs this)
    if let Some(path) = &args.metrics_file {
        dpsan_obs::export::write_prometheus(
            std::path::Path::new(path),
            &dpsan_obs::global().snapshot(),
        )?;
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("{msg}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = if args.follow { run_follow(&args) } else { run(&args) };
    if let Err(e) = outcome {
        eprintln!("sanitize: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
