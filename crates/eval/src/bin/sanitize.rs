//! `sanitize` — the production entrypoint: read a search-log file, run
//! `(ε, δ)`-private sanitization, write the sanitized log.
//!
//! ```text
//! sanitize access.tsv --out sanitized.tsv
//! sanitize access.tsv --objective fump --min-support 0.02 --e-epsilon 1.7
//! sanitize access.tsv --ingest in-memory --out reference.tsv   # cross-check
//! ```
//!
//! Unlike `repro` (which regenerates the paper's tables on synthetic
//! data), `sanitize` is a file-in/file-out tool. The default ingestion
//! path is the `dpsan-stream` sharded engine: chunked intake, user-hash
//! shards (user-complete, so the privacy accounting is untouched), a
//! mergeable heavy-hitters sketch that mines F-UMP frequent-pair
//! candidates in the same bounded-memory pass, and a deterministic
//! merge. `--ingest in-memory` runs the one-shot `read_tsv` build
//! instead; **both paths produce byte-identical output** for every
//! `--jobs`/`--shards` value (CI diffs them).
//!
//! Output is the sanitized log in the same 4-column TSV schema as the
//! input — the paper's headline property.

use std::io::Write;
use std::process::ExitCode;

use dpsan_core::sanitizer::{Sanitizer, SanitizerConfig, UtilityObjective};
use dpsan_core::ump::diversity::DumpSolver;
use dpsan_core::ump::output_size::{solve_oump, OumpOptions};
use dpsan_dp::params::PrivacyParams;
use dpsan_searchlog::{frequent_pairs, io::read_tsv, preprocess, FrequentPair, SearchLog};
use dpsan_stream::{ingest_path, sketch_frequent_pairs, StreamConfig};

const USAGE: &str = "usage: sanitize <input.tsv> [options]
  --out <path>             write the sanitized log here (default: stdout)
  --objective <obj>        oump | fump | dump        (default: oump)
  --e-epsilon <v>          privacy parameter e^eps, > 1      (default: 2.0)
  --delta <v>              privacy parameter delta, in (0,1) (default: 0.5)
  --min-support <v>        F-UMP support threshold, in (0,1] (default: 0.05)
  --output-size <n|auto>   F-UMP output size |O|     (default: auto = lambda/2)
  --seed <n>               sampling seed             (default: fixed)
  --ingest <mode>          streaming | in-memory     (default: streaming)
  --shards <n>             user-hash shards          (default: 16)
  --chunk-rows <n>         max raw rows in memory    (default: 8192)
  --sketch-capacity <n>    heavy-hitter counters (default: 4096 for fump,
                           0 = off otherwise; only fump reads the sketch)
  --jobs <n>               shard-drain workers       (default: available cores)
  --stats                  ingestion + run report to stderr";

struct Args {
    input: String,
    out: Option<String>,
    objective: String,
    e_epsilon: f64,
    delta: f64,
    min_support: f64,
    output_size: Option<u64>,
    seed: Option<u64>,
    ingest: String,
    shards: usize,
    chunk_rows: usize,
    sketch_capacity: Option<usize>,
    jobs: usize,
    stats: bool,
}

impl Args {
    /// Per-shard sketch capacity: an explicit `--sketch-capacity`
    /// wins; otherwise sketching runs only for the objective that
    /// consumes it (fump) and stays off the oump/dump hot path.
    fn effective_sketch_capacity(&self) -> usize {
        self.sketch_capacity.unwrap_or(if self.objective == "fump" { 4096 } else { 0 })
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        input: String::new(),
        out: None,
        objective: "oump".into(),
        e_epsilon: 2.0,
        delta: 0.5,
        min_support: 0.05,
        output_size: None,
        seed: None,
        ingest: "streaming".into(),
        shards: 16,
        chunk_rows: 8192,
        sketch_capacity: None,
        jobs: std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1),
        stats: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    let value = |flag: &str, it: &mut std::slice::Iter<String>| -> Result<String, String> {
        it.next().cloned().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--out" => args.out = Some(value("--out", &mut it)?),
            "--objective" => args.objective = value("--objective", &mut it)?,
            "--e-epsilon" => {
                args.e_epsilon = parse_num(&value("--e-epsilon", &mut it)?, "--e-epsilon")?
            }
            "--delta" => args.delta = parse_num(&value("--delta", &mut it)?, "--delta")?,
            "--min-support" => {
                args.min_support = parse_num(&value("--min-support", &mut it)?, "--min-support")?
            }
            "--output-size" => {
                let v = value("--output-size", &mut it)?;
                args.output_size = if v == "auto" {
                    None
                } else {
                    Some(v.parse().map_err(|e| format!("bad --output-size {v:?}: {e}"))?)
                };
            }
            "--seed" => {
                args.seed = Some(
                    value("--seed", &mut it)?.parse().map_err(|e| format!("bad --seed: {e}"))?,
                )
            }
            "--ingest" => args.ingest = value("--ingest", &mut it)?,
            "--shards" => args.shards = parse_count(&value("--shards", &mut it)?, "--shards")?,
            "--chunk-rows" => {
                args.chunk_rows = parse_count(&value("--chunk-rows", &mut it)?, "--chunk-rows")?
            }
            "--sketch-capacity" => {
                args.sketch_capacity = Some(
                    value("--sketch-capacity", &mut it)?
                        .parse()
                        .map_err(|e| format!("bad --sketch-capacity: {e}"))?,
                )
            }
            "--jobs" => args.jobs = parse_count(&value("--jobs", &mut it)?, "--jobs")?,
            "--stats" => args.stats = true,
            other if other.starts_with('-') => return Err(format!("unknown option {other:?}")),
            other => {
                if !args.input.is_empty() {
                    return Err(format!("unexpected extra input {other:?}"));
                }
                args.input = other.to_string();
            }
        }
    }
    if args.input.is_empty() {
        return Err("missing input file".into());
    }
    if !matches!(args.objective.as_str(), "oump" | "fump" | "dump") {
        return Err(format!("unknown objective {:?}", args.objective));
    }
    if !matches!(args.ingest.as_str(), "streaming" | "in-memory") {
        return Err(format!("unknown ingest mode {:?}", args.ingest));
    }
    // numeric domains, mirrored from the library asserts so a typo
    // gets the usage path, not a panic + backtrace
    if !(args.e_epsilon.is_finite() && args.e_epsilon > 1.0) {
        return Err(format!("--e-epsilon must be > 1, got {}", args.e_epsilon));
    }
    if !(args.delta.is_finite() && args.delta > 0.0 && args.delta < 1.0) {
        return Err(format!("--delta must be in (0, 1), got {}", args.delta));
    }
    if !(args.min_support.is_finite() && args.min_support > 0.0 && args.min_support <= 1.0) {
        return Err(format!("--min-support must be in (0, 1], got {}", args.min_support));
    }
    if args.output_size == Some(0) {
        return Err("--output-size must be at least 1 (or auto)".into());
    }
    Ok(args)
}

fn parse_num(v: &str, flag: &str) -> Result<f64, String> {
    v.parse().map_err(|e| format!("bad {flag} {v:?}: {e}"))
}

fn parse_count(v: &str, flag: &str) -> Result<usize, String> {
    let n: usize = v.parse().map_err(|e| format!("bad {flag} {v:?}: {e}"))?;
    if n == 0 {
        return Err(format!("{flag} must be at least 1"));
    }
    Ok(n)
}

fn run(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let params = PrivacyParams::from_e_epsilon(args.e_epsilon, args.delta);

    // 1. ingestion: streamed sharded engine or one-shot in-memory —
    //    both yield the identical SearchLog (tested + CI-diffed)
    let (raw, sketch): (SearchLog, Option<dpsan_stream::PairSketch>) = if args.ingest == "streaming"
    {
        let cfg = StreamConfig {
            shards: args.shards,
            chunk_rows: args.chunk_rows,
            sketch_capacity: args.effective_sketch_capacity(),
            jobs: args.jobs,
        };
        let r = ingest_path(&args.input, &cfg)?;
        if args.stats {
            eprintln!(
                "ingest[streaming]: rows={} shards={} peak_chunk_rows={} \
                     max_shard_triplets={} sketch_entries={}",
                r.report.rows,
                args.shards,
                r.report.peak_chunk_rows,
                r.report.max_shard_triplets,
                r.report.sketch_entries,
            );
        }
        (r.log, r.sketch)
    } else {
        let file = std::fs::File::open(&args.input)?;
        let log = read_tsv(std::io::BufReader::new(file))?;
        if args.stats {
            eprintln!("ingest[in-memory]: triplets={}", log.n_triplets());
        }
        (log, None)
    };

    // 2. preprocess once here: the F-UMP frequent set and the auto
    //    output size refer to the preprocessed log, and preprocessing
    //    is idempotent + id-stable, so the sanitizer's internal pass
    //    is a no-op on `pre`
    let (pre, report) = preprocess(&raw);
    if args.stats {
        eprintln!(
            "preprocess: removed_pairs={} removed_clicks={} kept_pairs={} kept_size={}",
            report.removed_pairs,
            report.removed_count,
            pre.n_pairs(),
            pre.size()
        );
    }

    let objective = match args.objective.as_str() {
        "oump" => UtilityObjective::OutputSize,
        "dump" => UtilityObjective::Diversity { solver: DumpSolver::Spe },
        "fump" => {
            let output_size = match args.output_size {
                Some(o) => o,
                None => {
                    let lambda = solve_oump(&pre, params, &OumpOptions::default())?.lambda;
                    (lambda / 2).max(1)
                }
            };
            // sketch-mined candidates, exactified against the log;
            // identical to the exact scan (the in-memory path) by the
            // sketch's completeness guarantee
            let frequent: Vec<FrequentPair> = match &sketch {
                Some(sk) => sketch_frequent_pairs(&pre, sk, args.min_support),
                None => frequent_pairs(&pre, args.min_support),
            };
            if args.stats {
                eprintln!(
                    "fump: frequent_pairs={} output_size={output_size} mined_via={}",
                    frequent.len(),
                    if sketch.is_some() { "sketch" } else { "exact-scan" },
                );
            }
            UtilityObjective::SketchedFrequentPairs {
                frequent,
                min_support: args.min_support,
                output_size,
            }
        }
        _ => unreachable!("validated in parse_args"),
    };

    let mut cfg = SanitizerConfig::new(params, objective);
    if let Some(seed) = args.seed {
        cfg.seed = seed;
    }
    let result = Sanitizer::new(cfg).sanitize(&pre)?;
    if args.stats {
        eprintln!(
            "sanitize: output_size={} output_pairs={} epsilon={:.6} delta={}",
            result.output.size(),
            result.output.n_pairs(),
            params.epsilon(),
            params.delta()
        );
    }

    // 3. release: same schema as the input
    match &args.out {
        Some(path) => {
            let file = std::fs::File::create(path)?;
            let mut w = std::io::BufWriter::new(file);
            dpsan_searchlog::io::write_tsv(&result.output, &mut w)?;
            w.flush()?;
        }
        None => {
            let stdout = std::io::stdout();
            let mut w = stdout.lock();
            dpsan_searchlog::io::write_tsv(&result.output, &mut w)?;
            w.flush()?;
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("{msg}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = run(&args) {
        eprintln!("sanitize: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
