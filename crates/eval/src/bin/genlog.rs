//! `genlog` — spool a synthetic AOL-like log to a TSV file.
//!
//! ```text
//! genlog --scale tiny --out /tmp/log.tsv
//! genlog --scale small --seed 7 --out small.tsv
//! ```
//!
//! The streaming companion of the `sanitize` CLI: it writes through
//! `dpsan_datagen::write_log_file` (one user's aggregation in memory
//! at a time), and reading the file back reproduces the in-memory
//! `generate` build exactly — so CI can exercise the whole
//! file-in/file-out pipeline without fixtures.

use std::process::ExitCode;

use dpsan_datagen::write_log_file;
use dpsan_eval::Scale;

const USAGE: &str = "usage: genlog --out <path> [--scale tiny|small|medium|paper] [--seed N] \
[--users N]
  --users N   override the preset's user count; the query vocabulary is
              scaled by the same factor so the log keeps the preset's
              sharing shape (used by the 10^5-user scale-smoke gate)";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Tiny;
    let mut seed: Option<u64> = None;
    let mut users: Option<usize> = None;
    let mut out: Option<String> = None;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--scale" => {
                let Some(v) = it.next() else {
                    eprintln!("--scale needs a value\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                let Some(s) = Scale::parse(v) else {
                    eprintln!("unknown scale {v:?}\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                scale = s;
            }
            "--seed" => {
                let Some(v) = it.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--seed needs an integer\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                seed = Some(v);
            }
            "--users" => {
                let Some(v) = it.next().and_then(|v| v.parse().ok()).filter(|&v: &usize| v >= 1)
                else {
                    eprintln!("--users needs a positive integer\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                users = Some(v);
            }
            "--out" => {
                let Some(v) = it.next() else {
                    eprintln!("--out needs a path\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                out = Some(v.clone());
            }
            other => {
                eprintln!("unknown argument {other:?}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(out) = out else {
        eprintln!("missing --out\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let mut cfg = scale.config();
    if let Some(users) = users {
        // scale the vocabulary with the population so pair-sharing
        // frequencies keep the preset's Table-3-like shape
        let ratio = users as f64 / cfg.n_users as f64;
        cfg.n_queries = ((cfg.n_queries as f64 * ratio).ceil() as usize).max(1);
        cfg.n_users = users;
    }
    if let Some(seed) = seed {
        cfg.seed = seed;
    }
    if let Err(e) = write_log_file(&cfg, &out) {
        eprintln!("genlog: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {scale:?}-scale log to {out}");
    ExitCode::SUCCESS
}
