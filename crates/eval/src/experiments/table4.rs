//! Table 4: maximum output size λ on the `(e^ε, δ)` grid.

use std::error::Error;
use std::io::Write;

use dpsan_dp::params::PrivacyParams;

use crate::context::Ctx;
use crate::grids::{DELTA_GRID, E_EPS_GRID};
use crate::table::Table;

/// Regenerate Table 4. Cells with identical budgets share one cached LP
/// solve, which also surfaces the paper's plateau structure directly;
/// the distinct budgets are prefetched as parallel warm-start chains.
pub fn run(ctx: &Ctx, out: &mut dyn Write) -> Result<(), Box<dyn Error>> {
    let grid: Vec<PrivacyParams> = E_EPS_GRID
        .iter()
        .flat_map(|&e| DELTA_GRID.iter().map(move |&d| PrivacyParams::from_e_epsilon(e, d)))
        .collect();
    ctx.prefetch_oump(&grid)?;

    let size = ctx.pre.size();
    writeln!(out, "Table 4: maximum output size λ on e^ε and δ (|D| = {size})")?;
    writeln!(out)?;
    writeln!(out, "cells: ⌊λ⌋ (LP optimum) — the integer release floors the LP solution")?;
    writeln!(out)?;
    let mut headers = vec!["e^ε \\ δ".to_string()];
    headers.extend(DELTA_GRID.iter().map(|d| format!("{d}")));
    let mut t = Table::new(headers);
    for &e_eps in &E_EPS_GRID {
        let mut row = vec![format!("{e_eps}")];
        for &delta in &DELTA_GRID {
            let sol = ctx.oump(PrivacyParams::from_e_epsilon(e_eps, delta))?;
            row.push(format!("{} ({:.1})", sol.lambda, sol.lp_value));
        }
        t.row(row);
    }
    writeln!(out, "{t}")?;
    let lo = ctx.lambda(PrivacyParams::from_e_epsilon(E_EPS_GRID[0], DELTA_GRID[0]))?;
    let hi = ctx.lambda(PrivacyParams::from_e_epsilon(
        E_EPS_GRID[E_EPS_GRID.len() - 1],
        DELTA_GRID[DELTA_GRID.len() - 1],
    ))?;
    writeln!(
        out,
        "λ ranges {:.2}%-{:.2}% of |D|; plateaus appear once min{{ε, ln 1/(1-δ)}} stops moving",
        100.0 * lo as f64 / size as f64,
        100.0 * hi as f64 / size as f64
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn grid_is_monotone_and_plateaued() {
        let ctx = Ctx::new(Scale::Tiny);
        // λ grows along both axes
        let mut grid = vec![];
        for &e in &E_EPS_GRID {
            let mut row = vec![];
            for &d in &DELTA_GRID {
                row.push(ctx.lambda(PrivacyParams::from_e_epsilon(e, d)).unwrap());
            }
            grid.push(row);
        }
        for row in &grid {
            for c in 1..row.len() {
                assert!(row[c] >= row[c - 1], "monotone in δ");
            }
        }
        for c in 0..DELTA_GRID.len() {
            for r in 1..grid.len() {
                assert!(grid[r][c] >= grid[r - 1][c], "monotone in ε");
            }
        }
        // the ε = ln 1.001 row saturates from the δ = 1e-3 column on
        for c in 2..DELTA_GRID.len() {
            assert_eq!(grid[0][c], grid[0][1], "row plateau once ε binds");
        }
        // the δ = 1e-4 column is constant (δ always binds there)
        for r in 1..grid.len() {
            assert_eq!(grid[r][0], grid[0][0], "column plateau once δ binds");
        }
    }

    #[test]
    fn renders() {
        let ctx = Ctx::new(Scale::Tiny);
        let mut buf = Vec::new();
        run(&ctx, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("Table 4"));
        assert!(s.lines().count() > 9);
    }
}
