//! Figure 4: maximum retained query–url pair diversity (D-UMP, SPE).

use std::error::Error;
use std::io::Write;

use dpsan_core::ump::diversity::{solve_dump_with, DumpOptions, DumpSolver};
use dpsan_dp::params::PrivacyParams;

use crate::context::Ctx;
use crate::grids::{DELTA_CURVES, E_EPS_SWEEP};
use crate::table::{pct, Table};

/// Regenerate Figure 4: retained-diversity percentage vs `e^ε` for the
/// δ curves, using the SPE heuristic (Algorithm 2).
pub fn run(ctx: &Ctx, out: &mut dyn Write) -> Result<(), Box<dyn Error>> {
    writeln!(
        out,
        "Figure 4: maximum retained query-url pair diversity (%) via SPE \
         (violated-rows reading of Algorithm 2; the literal global-max rule \
         over-removes — see EXPERIMENTS.md), n_pairs = {}",
        ctx.pre.n_pairs()
    )?;
    writeln!(out)?;
    let mut headers = vec!["e^ε".to_string()];
    headers.extend(DELTA_CURVES.iter().map(|d| format!("δ={d}")));
    let mut t = Table::new(headers);
    for &e_eps in &E_EPS_SWEEP {
        let mut row = vec![format!("{e_eps}")];
        for &delta in &DELTA_CURVES {
            let params = PrivacyParams::from_e_epsilon(e_eps, delta);
            let constraints = ctx.constraints(params)?;
            let sol = solve_dump_with(
                &constraints,
                &DumpOptions { solver: DumpSolver::SpeViolated, lp: ctx.lp.clone() },
            )?;
            row.push(pct(sol.retained as f64 / ctx.pre.n_pairs() as f64));
        }
        t.row(row);
    }
    writeln!(out, "{t}")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    /// At the Tiny seed the loose cell retains 7+ of ~150 pairs; the
    /// bar sits below that but well above the ~1-pair floor a broken
    /// SPE would produce. Data-dependent by necessity — the exact share
    /// moves with the generator preset, the trend does not.
    const MIN_RETAINED_SHARE_LOOSE: f64 = 0.04;

    #[test]
    fn diversity_rises_with_budget_and_is_substantial() {
        let ctx = Ctx::new(Scale::Tiny);
        let retained = |e: f64, d: f64| {
            let params = PrivacyParams::from_e_epsilon(e, d);
            let c = ctx.constraints(params).unwrap();
            solve_dump_with(&c, &DumpOptions::default()).unwrap().retained
        };
        let lo = retained(1.01, 0.01);
        let hi = retained(2.3, 0.8);
        assert!(hi >= lo, "diversity grows with the budget");
        assert!(
            hi as f64 / ctx.pre.n_pairs() as f64 > MIN_RETAINED_SHARE_LOOSE,
            "a loose budget retains a visible share ({hi} of {})",
            ctx.pre.n_pairs()
        );
    }

    #[test]
    fn renders() {
        let ctx = Ctx::new(Scale::Tiny);
        let mut buf = Vec::new();
        run(&ctx, &mut buf).unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("Figure 4"));
    }
}
