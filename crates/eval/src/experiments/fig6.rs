//! Figure 6: the `DiffRatio` histogram of input/output query–url–user
//! triplets under F-UMP sanitization, averaged over 10 sampled outputs.

use std::error::Error;
use std::io::Write;

use dpsan_core::metrics::{diff_ratio_histogram, DiffRatioHistogram};
use dpsan_core::sampling::sample_output;
use dpsan_dp::multinomial::MultinomialStrategy;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::context::Ctx;
use crate::experiments::fump_cell;
use crate::grids::{reference_params, scaled_support, FIG3_SUPPORT, FIG6_OUTPUT_FRACTIONS};
use crate::table::{pct, Table};

const RUNS: usize = 10;
const BINS: usize = 10;

/// Compute the averaged histogram for one output-size fraction.
pub fn histogram_for_fraction(
    ctx: &Ctx,
    fraction: f64,
    seed: u64,
) -> Result<Option<(u64, DiffRatioHistogram)>, Box<dyn Error>> {
    let params = reference_params();
    let lambda = ctx.lambda(params)?;
    let target = ((lambda as f64 * fraction).round() as u64).max(1);
    let s_eff = scaled_support(&ctx.pre, FIG3_SUPPORT);
    let Some((sol, used_o)) = fump_cell(ctx, params, s_eff, target)? else {
        return Ok(None);
    };
    let mut merged: Option<DiffRatioHistogram> = None;
    for run in 0..RUNS {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(run as u64));
        let output = sample_output(&mut rng, &ctx.pre, &sol.counts, MultinomialStrategy::Auto);
        let hist = diff_ratio_histogram(&ctx.pre, &output, 0.1, BINS);
        match &mut merged {
            Some(m) => m.merge(&hist),
            None => merged = Some(hist),
        }
    }
    Ok(Some((used_o, merged.expect("RUNS > 0"))))
}

/// Regenerate Figure 6 for both output sizes.
pub fn run(ctx: &Ctx, out: &mut dyn Write) -> Result<(), Box<dyn Error>> {
    writeln!(
        out,
        "Figure 6: DiffRatio(x*_ijk, c_ijk) of input/output triplet histograms \
         (F-UMP, e^ε = 2, δ = 0.5, s = {FIG3_SUPPORT:.4}, averaged over {RUNS} outputs)"
    )?;
    writeln!(out)?;
    for (i, &fraction) in FIG6_OUTPUT_FRACTIONS.iter().enumerate() {
        let Some((used_o, hist)) = histogram_for_fraction(ctx, fraction, 0xf16_000 + i as u64)?
        else {
            writeln!(out, "fraction {fraction}: infeasible at this scale")?;
            continue;
        };
        writeln!(out, "({}) |O| = {used_o}:", (b'a' + i as u8) as char)?;
        let mut t = Table::new(vec!["DiffRatio bin", "avg # of triplets", "share"]);
        for (b, &count) in hist.bins.iter().enumerate() {
            let label = if b < BINS {
                format!("{}-{}%", b * 10, (b + 1) * 10)
            } else {
                ">=100%".to_string()
            };
            let avg = count as f64 / RUNS as f64;
            t.row(vec![label, format!("{avg:.1}"), pct(count as f64 / hist.total as f64)]);
        }
        writeln!(out, "{t}")?;
        writeln!(out, "fraction of triplets below 40%: {}", pct(hist.fraction_below(0.4)))?;
        writeln!(out)?;
    }
    writeln!(
        out,
        "(the paper reports ~75% of triplets below 40% at the smaller |O| and ~90% at the larger)"
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn larger_output_tracks_input_histogram_better() {
        // Figure 6's point: with |O| = 6000 more triplets sit in low
        // DiffRatio bins than with |O| = 4000
        let ctx = Ctx::new(Scale::Tiny);
        let small = histogram_for_fraction(&ctx, FIG6_OUTPUT_FRACTIONS[0], 1).unwrap();
        let large = histogram_for_fraction(&ctx, FIG6_OUTPUT_FRACTIONS[1], 1).unwrap();
        if let (Some((_, hs)), Some((_, hl))) = (small, large) {
            // compare mass below 60%: larger |O| should not be worse by
            // more than sampling noise
            assert!(
                hl.fraction_below(0.6) >= hs.fraction_below(0.6) - 0.1,
                "larger |O|: {} vs smaller: {}",
                hl.fraction_below(0.6),
                hs.fraction_below(0.6)
            );
        }
    }

    #[test]
    fn histogram_covers_all_triplets() {
        let ctx = Ctx::new(Scale::Tiny);
        if let Some((_, h)) = histogram_for_fraction(&ctx, 0.46, 2).unwrap() {
            assert_eq!(h.total as usize, ctx.pre.n_triplets() * RUNS);
        }
    }

    #[test]
    fn renders() {
        let ctx = Ctx::new(Scale::Tiny);
        let mut buf = Vec::new();
        run(&ctx, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("Figure 6"));
        assert!(s.contains("below 40%"));
    }
}
