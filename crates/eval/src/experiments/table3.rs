//! Table 3: characteristics of the data sets.

use std::error::Error;
use std::io::Write;

use crate::context::Ctx;
use crate::table::Table;

/// Regenerate Table 3 for the context's dataset.
pub fn run(ctx: &Ctx, out: &mut dyn Write) -> Result<(), Box<dyn Error>> {
    let (raw, pre) = ctx.stats();
    writeln!(out, "Table 3: characteristics of the data sets ({:?} scale)", ctx.scale)?;
    writeln!(out, "(synthetic AOL-like data; see DESIGN.md for the substitution)")?;
    writeln!(out)?;
    let mut t = Table::new(vec!["", "Exp. Dataset", "Preprocessed (no unique pairs)"]);
    let row = |label: &str, a: u64, b: u64| vec![label.to_string(), a.to_string(), b.to_string()];
    t.row(row("# of total tuples (size)", raw.total_tuples, pre.total_tuples));
    t.row(row("# of user logs", raw.user_logs as u64, pre.user_logs as u64));
    t.row(row("# of distinct queries", raw.distinct_queries as u64, pre.distinct_queries as u64));
    t.row(row("# of distinct urls", raw.distinct_urls as u64, pre.distinct_urls as u64));
    t.row(row("# of query-url pairs", raw.pairs as u64, pre.pairs as u64));
    writeln!(out, "{t}")?;
    writeln!(
        out,
        "preprocessing removed {} unique pairs ({} clicks); {} user logs emptied",
        ctx.report.removed_pairs, ctx.report.removed_count, ctx.report.emptied_users
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn renders_five_rows() {
        let ctx = Ctx::new(Scale::Tiny);
        let mut buf = Vec::new();
        run(&ctx, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("# of query-url pairs"));
        assert!(s.contains("# of user logs"));
        assert!(s.contains("preprocessing removed"));
    }

    #[test]
    fn preprocessed_counts_are_smaller() {
        let ctx = Ctx::new(Scale::Tiny);
        let (raw, pre) = ctx.stats();
        assert!(pre.total_tuples < raw.total_tuples);
        assert!(pre.pairs < raw.pairs);
        assert!(pre.user_logs <= raw.user_logs);
    }
}
