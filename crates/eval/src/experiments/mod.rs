//! One module per table/figure of Section 6.

pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod table3;
pub mod table4;
pub mod table56;
pub mod table7;

use dpsan_core::ump::frequent::{solve_fump_with, FumpOptions, FumpSolution};
use dpsan_core::CoreError;
use dpsan_dp::params::PrivacyParams;

use crate::context::Ctx;

/// An F-UMP cell solve with the experiment harness conventions:
/// the requested output size is clamped to the privacy-feasible
/// `0.9 λ(cell)` (the paper picks `|O| < λ_min` up front; at small
/// scales the low-budget cells cannot host a fixed global `|O|`, so the
/// clamp is per cell and recorded by the caller). Returns `None` when
/// the cell's λ rounds to zero.
pub fn fump_cell(
    ctx: &Ctx,
    params: PrivacyParams,
    min_support: f64,
    target_output: u64,
) -> Result<Option<(FumpSolution, u64)>, CoreError> {
    let lambda = ctx.lambda(params)?;
    if lambda == 0 {
        return Ok(None);
    }
    let output_size = target_output.min((lambda as f64 * 0.9).floor() as u64).max(1);
    let constraints = ctx.constraints(params)?;
    let sol = solve_fump_with(
        &ctx.pre,
        &constraints,
        &FumpOptions { lp: ctx.lp.clone(), ..FumpOptions::new(min_support, output_size) },
    )?;
    Ok(Some((sol, output_size)))
}
