//! One module per table/figure of Section 6, plus the cross-mechanism
//! comparison suite ([`compare`]).

pub mod compare;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod table3;
pub mod table4;
pub mod table56;
pub mod table7;

use std::sync::Arc;

use dpsan_core::ump::frequent::FumpSolution;
use dpsan_core::CoreError;
use dpsan_dp::params::PrivacyParams;

use crate::context::{Ctx, FumpCell};
use crate::grids::{reference_params, scaled_support, OUTPUT_FRACTIONS, SUPPORT_GRID};

/// The per-cell output-size clamp of the experiment harness: the
/// requested output size is limited to the privacy-feasible `0.9 λ` of
/// the cell (the paper picks `|O| < λ_min` up front; at small scales
/// the low-budget cells cannot host a fixed global `|O|`).
pub fn clamped_output(lambda: u64, target_output: u64) -> u64 {
    target_output.min((lambda as f64 * 0.9).floor() as u64).max(1)
}

/// An F-UMP cell solve with the harness conventions (see
/// [`clamped_output`]). Returns `None` when the cell's λ rounds to
/// zero. Solves are cached on the context, so re-rendering the same
/// grid (Figure 3(a) and 3(b) share every cell) is free.
pub fn fump_cell(
    ctx: &Ctx,
    params: PrivacyParams,
    min_support: f64,
    target_output: u64,
) -> Result<Option<(Arc<FumpSolution>, u64)>, CoreError> {
    let lambda = ctx.lambda(params)?;
    if lambda == 0 {
        return Ok(None);
    }
    let output_size = clamped_output(lambda, target_output);
    let sol = ctx.fump(FumpCell { params, min_support, output_size })?;
    Ok(Some((sol, output_size)))
}

/// λ and the [`OUTPUT_FRACTIONS`]-derived output sizes at the
/// reference cell — the column axis of the `(|O|, s)` grid that
/// Tables 5/6 and Figure 3(c) share.
pub fn reference_outputs(ctx: &Ctx) -> Result<(u64, Vec<u64>), CoreError> {
    let lambda = ctx.lambda(reference_params())?;
    let outs =
        OUTPUT_FRACTIONS.iter().map(|f| ((lambda as f64 * f).round() as u64).max(1)).collect();
    Ok((lambda, outs))
}

/// Prefetch the shared `(|O|, s)` reference grid: one warm-start chain
/// per support row, |O| ascending. Tables 5/6 and Figure 3(c) must all
/// go through this single definition — if their chain layouts ever
/// diverged, the shared cache cells would depend on which experiment
/// ran first and per-experiment output would drift from `repro all`.
pub fn prefetch_reference_grid(ctx: &Ctx, outs: &[u64]) -> Result<(), CoreError> {
    let params = reference_params();
    let rows: Vec<(f64, Vec<(PrivacyParams, u64)>)> = SUPPORT_GRID
        .iter()
        .map(|&paper_s| {
            let s = scaled_support(&ctx.pre, paper_s);
            (s, outs.iter().map(|&o| (params, o)).collect())
        })
        .collect();
    prefetch_fump_rows(ctx, &rows)
}

/// Prefetch an F-UMP grid: one warm-start chain (shard) per row of
/// `rows`, where a row is `(support, cells)` and each cell is
/// `(params, target |O|)`. Rows should follow the axis that keeps the
/// LP shape fixed — a δ-curve with ascending ε, or a support row with
/// ascending `|O|` — so the chain's basis snapshots stay reusable.
pub fn prefetch_fump_rows(
    ctx: &Ctx,
    rows: &[(f64, Vec<(PrivacyParams, u64)>)],
) -> Result<(), CoreError> {
    let mut shards = Vec::with_capacity(rows.len());
    for (min_support, row) in rows {
        let mut shard = Vec::with_capacity(row.len());
        for &(params, target) in row {
            let lambda = ctx.lambda(params)?;
            if lambda == 0 {
                continue;
            }
            shard.push(FumpCell {
                params,
                min_support: *min_support,
                output_size: clamped_output(lambda, target),
            });
        }
        if !shard.is_empty() {
            shards.push(shard);
        }
    }
    ctx.prefetch_fump(shards)
}
