//! Mechanism comparison: every [`Sanitizer`] impl scored on shared
//! utility metrics across the `(ε, δ)` grid.
//!
//! Not a table of the paper — the paper compares against ZEALOUS only
//! qualitatively (Section 7) — but the experiment its mechanism API
//! makes possible: O-UMP and F-UMP sampling, ZEALOUS noisy-threshold
//! release, and local randomized response all produce released counts
//! in the same preprocessed pair space, so frequent-pair
//! precision/recall, retained volume, and query-frequency KL are
//! directly comparable ([`dpsan_core::metrics::mechanism_score`]).
//!
//! The sweep runs serially: each mechanism release is deterministic in
//! `(log, params, seed)` and the O-UMP sanitizer chains warm starts
//! across the ascending-budget cells, so output is byte-identical for
//! every `--jobs` value. Per-release solver counters are merged into
//! the context aggregate — `repro compare --stats` reports LP activity
//! for the UMP rows and true zeros for the non-LP mechanisms.

use std::error::Error;
use std::io::Write;

use dpsan_core::mechanism::{
    LdpSanitizer, Sanitizer, UmpSanitizer, UtilityObjective, ZealousSanitizer,
};
use dpsan_core::metrics::{mechanism_score, MechanismScore};
use dpsan_dp::params::PrivacyParams;

use crate::context::Ctx;
use crate::experiments::clamped_output;
use crate::grids::{scaled_support, E_EPS_SWEEP, FIG3_OUTPUT_FRACTION, FIG3_SUPPORT};
use crate::table::Table;

/// The δ columns of the comparison grid (a subset of
/// [`crate::grids::DELTA_CURVES`]: one δ-bound regime, one ε-bound).
const COMPARE_DELTAS: [f64; 2] = [0.1, 0.5];

/// Base RNG seed; each grid cell perturbs it by its index so the
/// mechanisms' noise draws are independent across cells yet fully
/// deterministic.
const SEED: u64 = 0xd95a_11ce;

/// Regenerate the mechanism-comparison table.
pub fn run(ctx: &Ctx, out: &mut dyn Write) -> Result<(), Box<dyn Error>> {
    let grid: Vec<PrivacyParams> = COMPARE_DELTAS
        .iter()
        .flat_map(|&d| E_EPS_SWEEP.iter().map(move |&e| PrivacyParams::from_e_epsilon(e, d)))
        .collect();
    ctx.prefetch_oump(&grid)?; // λ for the F-UMP output sizes

    let s = scaled_support(&ctx.pre, FIG3_SUPPORT);
    writeln!(out, "Comparison: sanitization mechanisms on shared utility metrics")?;
    writeln!(out)?;
    writeln!(
        out,
        "mechanisms: oump/fump (this paper), zealous (Götz et al.), ldp-rr (local model)"
    )?;
    writeln!(
        out,
        "metrics at support s = {s:.5}: frequent-pair recall/precision, \
         released volume Σx/|D|, query-frequency KL(input ‖ release)"
    )?;
    writeln!(out)?;

    let mut t = Table::new(
        ["mechanism", "e^ε", "δ", "recall", "precision", "volume", "query-KL"]
            .map(str::to_string)
            .to_vec(),
    );
    // one persistent O-UMP sanitizer: consecutive releases warm-start
    // from the previous cell's basis exactly like a grid prefetch chain
    let oump = UmpSanitizer::new(UtilityObjective::OutputSize);
    let mut cell = 0u64;
    for &delta in &COMPARE_DELTAS {
        for &e_eps in &E_EPS_SWEEP {
            let params = PrivacyParams::from_e_epsilon(e_eps, delta);
            let lambda = ctx.lambda(params)?;
            let target = ((lambda as f64 * FIG3_OUTPUT_FRACTION).round() as u64).max(1);
            let fump = UmpSanitizer::new(UtilityObjective::FrequentPairs {
                min_support: s,
                output_size: clamped_output(lambda.max(1), target),
            });
            let zealous = ZealousSanitizer::new();
            let ldp = LdpSanitizer::new();
            let mechanisms: [&dyn Sanitizer; 4] = [&oump, &fump, &zealous, &ldp];
            for mech in mechanisms {
                if mech.info().uses_lp && lambda == 0 {
                    // the cell's budget cannot host any LP output
                    t.row(infeasible_row(mech.info().id, e_eps, delta));
                    continue;
                }
                let release = mech.sanitize(&ctx.raw, params, SEED ^ cell)?;
                ctx.record_solve_stats(&release.solver);
                let score = mechanism_score(&release.reference, &release.counts, s);
                t.row(score_row(mech.info().id, e_eps, delta, &score));
            }
            cell += 1;
        }
    }
    writeln!(out, "{t}")?;
    writeln!(
        out,
        "volume > 1 marks additive-noise releases (counts are noisy, not subsampled); \
         ldp-rr floors at the randomized-response noise plateau"
    )?;
    Ok(())
}

fn score_row(id: &str, e_eps: f64, delta: f64, score: &MechanismScore) -> Vec<String> {
    vec![
        id.to_string(),
        format!("{e_eps}"),
        format!("{delta}"),
        format!("{:.3}", score.recall),
        format!("{:.3}", score.precision),
        format!("{:.3}", score.retained_volume),
        format!("{:.3}", score.query_kl),
    ]
}

fn infeasible_row(id: &str, e_eps: f64, delta: f64) -> Vec<String> {
    let mut row = vec![id.to_string(), format!("{e_eps}"), format!("{delta}")];
    row.extend(["-", "-", "-", "-"].map(str::to_string));
    row
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;
    use crate::runner::run_experiment;

    #[test]
    fn renders_all_mechanisms() {
        let ctx = Ctx::new(Scale::Tiny);
        let mut buf = Vec::new();
        run(&ctx, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        for id in ["oump", "fump", "zealous", "ldp-rr"] {
            assert!(s.contains(id), "{id} row missing:\n{s}");
        }
    }

    #[test]
    fn deterministic_across_runs_and_contexts() {
        let render = || {
            let ctx = Ctx::new(Scale::Tiny).with_jobs(2);
            let mut buf = Vec::new();
            run_experiment("compare", &ctx, &mut buf).unwrap();
            buf
        };
        assert_eq!(render(), render());
    }

    #[test]
    fn solver_stats_flow_into_context() {
        let ctx = Ctx::new(Scale::Tiny);
        ctx.take_solve_stats();
        let mut buf = Vec::new();
        run(&ctx, &mut buf).unwrap();
        let stats = ctx.solve_stats();
        assert!(stats.solves > 0, "UMP rows must feed the aggregate");
    }
}
