//! Table 7: retained diversity utility of different BIP solvers.
//!
//! The paper compares SPE against Matlab `bintprog` and the NEOS
//! solvers `qsopt_ex`, `scip`, `feaspump`; here the comparator suite is
//! the in-repo solver set (see DESIGN.md for the mapping).

use std::error::Error;
use std::io::Write;

use dpsan_core::ump::diversity::{solve_dump_with, DumpOptions, DumpSolver};
use dpsan_dp::params::PrivacyParams;

use crate::context::{Ctx, Scale};
use crate::table::{pct, Table};

/// The solver suite with display names.
pub fn solver_suite(scale: Scale) -> Vec<(&'static str, DumpSolver)> {
    // keep exact search bounded at the bigger scales (each node is a
    // fresh LP solve; the incumbent is still reported at the limit)
    let nodes = match scale {
        Scale::Tiny => 20_000,
        Scale::Small => 60,
        _ => 25,
    };
    vec![
        ("SPE (Heuristic)", DumpSolver::Spe),
        ("SPE (violated-only)", DumpSolver::SpeViolated),
        ("LP-round", DumpSolver::LpRound),
        ("Pump", DumpSolver::Pump { restarts: 12, seed: 0x5eed }),
        ("Branch&Bound", DumpSolver::BranchBound { max_nodes: nodes }),
    ]
}

fn retained_pct(
    ctx: &Ctx,
    params: PrivacyParams,
    solver: &DumpSolver,
) -> Result<f64, Box<dyn Error>> {
    let constraints = ctx.constraints(params)?;
    let sol =
        solve_dump_with(&constraints, &DumpOptions { solver: solver.clone(), lp: ctx.lp.clone() })?;
    Ok(sol.retained as f64 / ctx.pre.n_pairs() as f64)
}

/// Regenerate Table 7(a) (δ sweep at `e^ε = 2`) and 7(b)
/// (`e^ε` sweep at δ = 0.1).
pub fn run(ctx: &Ctx, out: &mut dyn Write) -> Result<(), Box<dyn Error>> {
    let suite = solver_suite(ctx.scale);

    writeln!(out, "Table 7(a): retained diversity of BIP solvers (e^ε = 2)")?;
    writeln!(out)?;
    let deltas = [1e-3, 1e-2, 1e-1, 0.2, 0.5, 0.8];
    let mut headers = vec!["solver".to_string()];
    headers.extend(deltas.iter().map(|d| format!("δ={d}")));
    let mut t = Table::new(headers);
    for (name, solver) in &suite {
        let mut row = vec![name.to_string()];
        for &d in &deltas {
            row.push(pct(retained_pct(ctx, PrivacyParams::from_e_epsilon(2.0, d), solver)?));
        }
        t.row(row);
    }
    writeln!(out, "{t}")?;

    writeln!(out, "Table 7(b): retained diversity of BIP solvers (δ = 0.1)")?;
    writeln!(out)?;
    let e_epss = [1.01, 1.1, 1.4, 1.7, 2.0, 2.3];
    let mut headers = vec!["solver".to_string()];
    headers.extend(e_epss.iter().map(|e| format!("e^ε={e}")));
    let mut t = Table::new(headers);
    for (name, solver) in &suite {
        let mut row = vec![name.to_string()];
        for &e in &e_epss {
            row.push(pct(retained_pct(ctx, PrivacyParams::from_e_epsilon(e, 0.1), solver)?));
        }
        t.row(row);
    }
    writeln!(out, "{t}")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_solvers_feasible_and_ordered() {
        let ctx = Ctx::new(Scale::Tiny);
        let params = PrivacyParams::from_e_epsilon(2.0, 0.5);
        let mut results = vec![];
        for (name, solver) in solver_suite(Scale::Tiny) {
            let r = retained_pct(&ctx, params, &solver).unwrap();
            assert!((0.0..=1.0).contains(&r), "{name}: {r}");
            results.push((name, r));
        }
        // provable orderings: the violated-only SPE never retains less
        // than the paper-literal global SPE, and exact branch & bound
        // (feasible at tiny scale) dominates every heuristic
        let spe = results[0].1;
        let spe_v = results[1].1;
        let bb = results[4].1;
        assert!(spe_v >= spe, "violated-only SPE {spe_v} >= global SPE {spe}");
        for &(name, r) in &results[..4] {
            // retained percentages are integer counts over one shared
            // denominator, and f64 division by a common divisor is
            // order-preserving — the dominance comparison is exact, no
            // float tolerance needed
            assert!(bb >= r, "B&B {bb} should dominate {name} {r}");
        }
    }

    #[test]
    fn renders_both_tables() {
        let ctx = Ctx::new(Scale::Tiny);
        let mut buf = Vec::new();
        run(&ctx, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("Table 7(a)"));
        assert!(s.contains("Table 7(b)"));
        assert!(s.contains("SPE (Heuristic)"));
    }
}
