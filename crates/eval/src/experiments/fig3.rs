//! Figure 3: F-UMP performance.
//!
//! * (a) Recall vs `e^ε` for four δ curves,
//! * (b) sum of frequent-pair support distances vs `e^ε`,
//! * (c) average support distance vs minimum support for several `|O|`.

use std::error::Error;
use std::io::Write;

use dpsan_core::metrics::{precision_recall_f, support_distance_avg_f, support_distance_sum_f};
use dpsan_dp::params::PrivacyParams;

use crate::context::Ctx;
use crate::experiments::{
    fump_cell, prefetch_fump_rows, prefetch_reference_grid, reference_outputs,
};
use crate::grids::{
    reference_params, scaled_support, DELTA_CURVES, E_EPS_SWEEP, FIG3_OUTPUT_FRACTION,
    FIG3_SUPPORT, SUPPORT_GRID,
};
use crate::table::{f4, Table};

fn fig3_target_output(ctx: &Ctx) -> Result<u64, Box<dyn Error>> {
    let lambda_ref = ctx.lambda(reference_params())?;
    Ok(((lambda_ref as f64 * FIG3_OUTPUT_FRACTION).round() as u64).max(1))
}

/// Prefetch the Figure 3(a)/(b) sweep: one warm-start chain per
/// δ-curve, ε ascending (budget-only moves within a chain).
fn prefetch_sweep(ctx: &Ctx, s_eff: f64, target: u64) -> Result<(), Box<dyn Error>> {
    let grid: Vec<PrivacyParams> = DELTA_CURVES
        .iter()
        .flat_map(|&d| E_EPS_SWEEP.iter().map(move |&e| PrivacyParams::from_e_epsilon(e, d)))
        .collect();
    ctx.prefetch_oump(&grid)?;
    let rows: Vec<(f64, Vec<(PrivacyParams, u64)>)> = DELTA_CURVES
        .iter()
        .map(|&d| {
            let cells = E_EPS_SWEEP
                .iter()
                .map(|&e| (PrivacyParams::from_e_epsilon(e, d), target))
                .collect();
            (s_eff, cells)
        })
        .collect();
    prefetch_fump_rows(ctx, &rows)?;
    Ok(())
}

/// Figure 3(a): Recall on `(ε, δ)`.
pub fn run_a(ctx: &Ctx, out: &mut dyn Write) -> Result<(), Box<dyn Error>> {
    let target = fig3_target_output(ctx)?;
    let s_eff = scaled_support(&ctx.pre, FIG3_SUPPORT);
    prefetch_sweep(ctx, s_eff, target)?;
    writeln!(
        out,
        "Figure 3(a): F-UMP Recall vs e^ε (target |O| = {target}, paper s = 1/500 \
         rescaled to {s_eff:.5}; |O| clamped to 0.9λ per cell)"
    )?;
    writeln!(out)?;
    let mut headers = vec!["e^ε".to_string()];
    headers.extend(DELTA_CURVES.iter().map(|d| format!("δ={d}")));
    let mut t = Table::new(headers);
    for &e_eps in &E_EPS_SWEEP {
        let mut row = vec![format!("{e_eps}")];
        for &delta in &DELTA_CURVES {
            let params = PrivacyParams::from_e_epsilon(e_eps, delta);
            match fump_cell(ctx, params, s_eff, target)? {
                Some((sol, _)) => {
                    let pr = precision_recall_f(&ctx.pre, &sol.lp_counts, s_eff);
                    row.push(f4(pr.recall));
                }
                None => row.push("-".into()),
            }
        }
        t.row(row);
    }
    writeln!(out, "{t}")?;
    Ok(())
}

/// Figure 3(b): sum of support distances on `(ε, δ)`.
pub fn run_b(ctx: &Ctx, out: &mut dyn Write) -> Result<(), Box<dyn Error>> {
    let target = fig3_target_output(ctx)?;
    let s_eff = scaled_support(&ctx.pre, FIG3_SUPPORT);
    prefetch_sweep(ctx, s_eff, target)?;
    writeln!(
        out,
        "Figure 3(b): F-UMP sum of support distances vs e^ε (target |O| = {target}, s = {s_eff:.5})"
    )?;
    writeln!(out)?;
    let mut headers = vec!["e^ε".to_string()];
    headers.extend(DELTA_CURVES.iter().map(|d| format!("δ={d}")));
    let mut t = Table::new(headers);
    for &e_eps in &E_EPS_SWEEP {
        let mut row = vec![format!("{e_eps}")];
        for &delta in &DELTA_CURVES {
            let params = PrivacyParams::from_e_epsilon(e_eps, delta);
            match fump_cell(ctx, params, s_eff, target)? {
                Some((sol, used_o)) => {
                    let d = support_distance_sum_f(&ctx.pre, &sol.lp_counts, s_eff, used_o as f64);
                    row.push(f4(d));
                }
                None => row.push("-".into()),
            }
        }
        t.row(row);
    }
    writeln!(out, "{t}")?;
    Ok(())
}

/// Figure 3(c): average support distance vs minimum support (log-scale
/// x in the paper) for several output sizes at the reference cell.
pub fn run_c(ctx: &Ctx, out: &mut dyn Write) -> Result<(), Box<dyn Error>> {
    let params = reference_params();
    let (lambda, outputs) = reference_outputs(ctx)?;
    writeln!(
        out,
        "Figure 3(c): average support distance vs minimum support (e^ε = 2, δ = 0.5, λ = {lambda})"
    )?;
    writeln!(out)?;
    // shared with Tables 5/6: same cells, same warm-start chain layout
    prefetch_reference_grid(ctx, &outputs)?;
    let mut headers = vec!["s".to_string()];
    headers.extend(outputs.iter().map(|o| format!("|O|={o}")));
    let mut t = Table::new(headers);
    for &paper_s in &SUPPORT_GRID {
        let s = scaled_support(&ctx.pre, paper_s);
        let mut row = vec![format!("1/{:.0} -> {s:.5}", 1.0 / paper_s)];
        for &o in &outputs {
            match fump_cell(ctx, params, s, o)? {
                Some((sol, used_o)) => {
                    row.push(f4(support_distance_avg_f(&ctx.pre, &sol.lp_counts, s, used_o as f64)))
                }
                None => row.push("-".into()),
            }
        }
        t.row(row);
    }
    writeln!(out, "{t}")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    /// Recall at Tiny scale is quantized in steps of `1/|F|` for a
    /// handful of frequent pairs, and the LP may land on an alternate
    /// optimal vertex between adjacent ε cells — so "rises with ε" is
    /// asserted up to one such quantum (|F| ≥ 20 would make this 0.05),
    /// not strictly.
    const RECALL_QUANTUM_SLACK: f64 = 0.05;

    /// The paper reports Precision = 1 in all F-UMP experiments; at
    /// Tiny scale precision is quantized in steps of
    /// `1/output_frequent`, so the floor is the weaker of "one released
    /// frequent pair suffices" and this absolute bar.
    const PRECISION_FLOOR: f64 = 0.3;

    #[test]
    fn recall_rises_with_epsilon_at_fixed_output_size() {
        // the clean monotonicity claim needs a FIXED |O| feasible in
        // every compared cell, so size it to the tightest budget
        let ctx = Ctx::new(Scale::Tiny);
        let s_eff = scaled_support(&ctx.pre, FIG3_SUPPORT);
        let lambda_tight = ctx.lambda(PrivacyParams::from_e_epsilon(1.1, 0.8)).unwrap();
        if lambda_tight == 0 {
            return; // no room at this scale; covered at larger scales
        }
        let target = (lambda_tight * 4 / 5).max(1);
        let mut prev = -1.0;
        for &e_eps in &[1.1, 1.7, 2.3] {
            let params = PrivacyParams::from_e_epsilon(e_eps, 0.8);
            if let Some((sol, _)) = fump_cell(&ctx, params, s_eff, target).unwrap() {
                let r = precision_recall_f(&ctx.pre, &sol.lp_counts, s_eff).recall;
                assert!(
                    r >= prev - RECALL_QUANTUM_SLACK,
                    "recall roughly rises with ε: {r} after {prev}"
                );
                prev = r;
            }
        }
        assert!(prev > 0.0, "recall is positive at the loosest cell");
    }

    #[test]
    fn precision_high_at_comfortable_output_sizes() {
        // "in all our F-UMP experiments, Precision is always equal to 1"
        // — exactly 1 requires the paper's regime where the budget does
        // not force mass onto infrequent pairs; test at |O| = λ/2 where
        // that holds, rather than at the near-λ sweep of the rendering
        let ctx = Ctx::new(Scale::Tiny);
        let s_eff = scaled_support(&ctx.pre, FIG3_SUPPORT);
        for &(e, d) in &[(2.0, 0.5), (2.3, 0.8)] {
            let params = PrivacyParams::from_e_epsilon(e, d);
            let lambda = ctx.lambda(params).unwrap();
            if lambda < 4 {
                continue;
            }
            if let Some((sol, _)) = fump_cell(&ctx, params, s_eff, lambda / 2).unwrap() {
                let pr = precision_recall_f(&ctx.pre, &sol.lp_counts, s_eff);
                let bar = (1.0 / pr.output_frequent.max(1) as f64).min(PRECISION_FLOOR);
                assert!(
                    pr.precision >= bar,
                    "precision stays high (got {} >= {bar} at ({e}, {d}))",
                    pr.precision
                );
            }
        }
    }

    #[test]
    fn all_three_render() {
        let ctx = Ctx::new(Scale::Tiny);
        for f in [run_a, run_b, run_c] {
            let mut buf = Vec::new();
            f(&ctx, &mut buf).unwrap();
            assert!(String::from_utf8(buf).unwrap().contains("Figure 3"));
        }
    }
}
