//! Tables 5 and 6: F-UMP recall and support-distance sums on the
//! `(|O|, s)` grid at the reference cell `e^ε = 2, δ = 0.5`.

use std::error::Error;
use std::io::Write;

use dpsan_core::metrics::{precision_recall_f, support_distance_sum_f};

use crate::context::Ctx;
use crate::experiments::{fump_cell, prefetch_reference_grid, reference_outputs};
use crate::grids::{reference_params, scaled_support, SUPPORT_GRID};
use crate::table::{f4, Table};

fn outputs(ctx: &Ctx) -> Result<(u64, Vec<u64>), Box<dyn Error>> {
    Ok(reference_outputs(ctx)?)
}

/// Table 5: Recall on output size and minimum support.
pub fn run_table5(ctx: &Ctx, out: &mut dyn Write) -> Result<(), Box<dyn Error>> {
    let (lambda, outs) = outputs(ctx)?;
    prefetch_reference_grid(ctx, &outs)?;
    writeln!(out, "Table 5: Recall on |O| and s (e^ε = 2, δ = 0.5, λ = {lambda})")?;
    writeln!(out)?;
    let mut headers = vec!["s \\ |O|".to_string()];
    headers.extend(outs.iter().map(|o| o.to_string()));
    let mut t = Table::new(headers);
    for &paper_s in &SUPPORT_GRID {
        let s = scaled_support(&ctx.pre, paper_s);
        let mut row = vec![format!("1/{:.0} -> {s:.5}", 1.0 / paper_s)];
        for &o in &outs {
            match fump_cell(ctx, reference_params(), s, o)? {
                Some((sol, _)) => {
                    row.push(f4(precision_recall_f(&ctx.pre, &sol.lp_counts, s).recall));
                }
                None => row.push("-".into()),
            }
        }
        t.row(row);
    }
    writeln!(out, "{t}")?;
    Ok(())
}

/// Table 6: sum of frequent-pair support distances on the same grid.
pub fn run_table6(ctx: &Ctx, out: &mut dyn Write) -> Result<(), Box<dyn Error>> {
    let (lambda, outs) = outputs(ctx)?;
    prefetch_reference_grid(ctx, &outs)?;
    writeln!(
        out,
        "Table 6: sum of frequent query-url pair support distances on |O| and s \
         (e^ε = 2, δ = 0.5, λ = {lambda})"
    )?;
    writeln!(out)?;
    let mut headers = vec!["s \\ |O|".to_string()];
    headers.extend(outs.iter().map(|o| o.to_string()));
    let mut t = Table::new(headers);
    for &paper_s in &SUPPORT_GRID {
        let s = scaled_support(&ctx.pre, paper_s);
        let mut row = vec![format!("1/{:.0} -> {s:.5}", 1.0 / paper_s)];
        for &o in &outs {
            match fump_cell(ctx, reference_params(), s, o)? {
                Some((sol, used_o)) => {
                    row.push(f4(support_distance_sum_f(
                        &ctx.pre,
                        &sol.lp_counts,
                        s,
                        used_o as f64,
                    )));
                }
                None => row.push("-".into()),
            }
        }
        t.row(row);
    }
    writeln!(out, "{t}")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    /// The distance sums being compared are short sums of `f64` ratios;
    /// the only admissible "decrease" is accumulated rounding noise,
    /// orders of magnitude below any real trend reversal.
    const SUMMATION_NOISE_TOL: f64 = 1e-9;

    #[test]
    fn distance_sum_grows_with_output_size_at_fixed_support() {
        // Table 6's trend: fixing s, the sum grows as |O| grows
        let ctx = Ctx::new(Scale::Tiny);
        let (_, outs) = outputs(&ctx).unwrap();
        let s = scaled_support(&ctx.pre, SUPPORT_GRID[0]);
        let mut values = vec![];
        for &o in &outs {
            if let Some((sol, used_o)) = fump_cell(&ctx, reference_params(), s, o).unwrap() {
                values.push(support_distance_sum_f(&ctx.pre, &sol.lp_counts, s, used_o as f64));
            }
        }
        assert!(values.len() >= 3, "need several feasible cells");
        assert!(
            values[values.len() - 1] >= values[0] - SUMMATION_NOISE_TOL,
            "distance sum grows with |O|: {values:?}"
        );
    }

    #[test]
    fn both_tables_render_full_grids() {
        let ctx = Ctx::new(Scale::Tiny);
        let mut buf = Vec::new();
        run_table5(&ctx, &mut buf).unwrap();
        run_table6(&ctx, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("Table 5"));
        assert!(s.contains("Table 6"));
        // 5 support rows per table
        assert!(s.matches("0.00").count() >= 2);
    }
}
