//! Figure 5: computational performance of the BIP solvers at
//! `e^ε = 1.7, δ = 1e-3` (log-scale runtime in the paper).

use std::error::Error;
use std::io::Write;
use std::time::Instant;

use dpsan_core::ump::diversity::{solve_dump_with, DumpOptions};

use crate::context::Ctx;
use crate::experiments::table7::solver_suite;
use crate::grids::fig5_params;
use crate::table::Table;

/// Regenerate Figure 5: wall-clock runtime per solver on the same
/// D-UMP instance.
pub fn run(ctx: &Ctx, out: &mut dyn Write) -> Result<(), Box<dyn Error>> {
    let params = fig5_params();
    let constraints = ctx.constraints(params)?;
    writeln!(
        out,
        "Figure 5: D-UMP solver runtimes (e^ε = 1.7, δ = 1e-3, {} vars × {} rows)",
        constraints.n_pairs(),
        constraints.n_rows()
    )?;
    writeln!(out)?;
    let mut t = Table::new(vec!["solver", "runtime", "retained"]);
    for (name, solver) in solver_suite(ctx.scale) {
        let t0 = Instant::now();
        let sol = solve_dump_with(&constraints, &DumpOptions { solver, lp: ctx.lp.clone() })?;
        let dt = t0.elapsed();
        t.row(vec![name.to_string(), format!("{dt:.2?}"), sol.retained.to_string()]);
    }
    writeln!(out, "{t}")?;
    writeln!(out, "(the paper reports SPE fastest by orders of magnitude on a log scale)")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;
    use dpsan_core::ump::diversity::DumpSolver;
    use std::time::Instant;

    #[test]
    fn spe_is_fastest_solver() {
        let ctx = Ctx::new(Scale::Tiny);
        let constraints = ctx.constraints(fig5_params()).unwrap();
        let time_of = |solver: DumpSolver| {
            let t0 = Instant::now();
            let _ =
                solve_dump_with(&constraints, &DumpOptions { solver, lp: ctx.lp.clone() }).unwrap();
            t0.elapsed()
        };
        // warm up then measure
        let _ = time_of(DumpSolver::Spe);
        let spe = time_of(DumpSolver::Spe);
        let lp_round = time_of(DumpSolver::LpRound);
        let bb = time_of(DumpSolver::BranchBound { max_nodes: 5_000 });
        assert!(spe <= lp_round, "SPE {spe:?} should beat LP rounding {lp_round:?}");
        assert!(spe <= bb, "SPE {spe:?} should beat branch & bound {bb:?}");
    }

    #[test]
    fn renders() {
        let ctx = Ctx::new(Scale::Tiny);
        let mut buf = Vec::new();
        run(&ctx, &mut buf).unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("Figure 5"));
    }
}
