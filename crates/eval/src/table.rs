//! Minimal aligned text-table rendering for experiment output.

use std::fmt;

/// A simple right-aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append a row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>w$}", w = w)?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Format a float with 4 decimal places (the paper's typical precision).
pub fn f4(v: f64) -> String {
    format!("{v:.4}")
}

/// Format a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", 100.0 * v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["1", "2"]);
        t.row(vec!["300", "4"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long-header"));
        assert!(lines[1].starts_with('-'));
        // all rows same width
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1", "2"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f4(0.123456), "0.1235");
        assert_eq!(pct(0.256), "25.6%");
    }
}
