//! The parameter grids of Section 6.

use dpsan_dp::params::PrivacyParams;

/// `e^ε` grid of Table 4 (and Figs. 3–4 minus the degenerate 1.001).
pub const E_EPS_GRID: [f64; 7] = [1.001, 1.01, 1.1, 1.4, 1.7, 2.0, 2.3];

/// δ grid of Table 4.
pub const DELTA_GRID: [f64; 7] = [1e-4, 1e-3, 1e-2, 1e-1, 0.2, 0.5, 0.8];

/// `e^ε` sweep of Figures 3(a)/(b) and 4.
pub const E_EPS_SWEEP: [f64; 6] = [1.01, 1.1, 1.4, 1.7, 2.0, 2.3];

/// δ curves of Figures 3(a)/(b) and 4.
pub const DELTA_CURVES: [f64; 4] = [0.01, 0.1, 0.5, 0.8];

/// Minimum-support grid of Tables 5–6 / Figure 3(c).
pub const SUPPORT_GRID: [f64; 5] =
    [1.0 / 1000.0, 1.0 / 750.0, 1.0 / 500.0, 1.0 / 250.0, 1.0 / 100.0];

/// The paper's reference cell for Tables 5–6 and Figure 6.
pub fn reference_params() -> PrivacyParams {
    PrivacyParams::from_e_epsilon(2.0, 0.5)
}

/// Output-size fractions of λ used by Tables 5–6. The paper swept
/// `|O| ∈ {3000..8000}` over `λ = 13088` (23–61 %); at laptop scales the
/// privacy budget only binds near λ, so the sweep is shifted upward to
/// keep the distance-vs-|O| trend visible (see EXPERIMENTS.md).
pub const OUTPUT_FRACTIONS: [f64; 6] = [0.3, 0.45, 0.6, 0.75, 0.9, 0.98];

/// The Figure 3(a)/(b) fixed output size as a fraction of λ at the
/// reference cell (the paper used `3000 / 13088 ≈ 0.23`; see
/// [`OUTPUT_FRACTIONS`] for why this sits higher here).
pub const FIG3_OUTPUT_FRACTION: f64 = 0.6;

/// The Figure 3 fixed minimum support (the paper's `1/500`).
pub const FIG3_SUPPORT: f64 = 1.0 / 500.0;

/// Figure 6 output-size fractions (the paper compared a smaller and a
/// larger output, 4000 vs 6000 of 13088).
pub const FIG6_OUTPUT_FRACTIONS: [f64; 2] = [0.45, 0.9];

/// Figure 5 / Table 7 reference cells.
pub fn fig5_params() -> PrivacyParams {
    PrivacyParams::from_e_epsilon(1.7, 1e-3)
}

/// Map a paper support threshold to this dataset.
///
/// On the paper's preprocessed AOL subset the grid values marked a
/// specific *fraction of pairs* frequent (s = 1/100 → 15 of 6043 pairs,
/// …, 1/1000 → 127). Reusing the raw thresholds at other dataset sizes
/// marks wildly different fractions (at a 1k-click log, s = 1/1000
/// marks nearly everything frequent), so experiments translate each
/// paper `s` into the support of the pair at the equivalent frequency
/// rank of *this* dataset.
pub fn scaled_support(pre: &dpsan_searchlog::SearchLog, paper_s: f64) -> f64 {
    // anchors: (paper s, fraction of the 6043 pairs that were frequent)
    const ANCHORS: [(f64, f64); 5] = [
        (1.0 / 1000.0, 127.0 / 6043.0),
        (1.0 / 750.0, 105.0 / 6043.0),
        (1.0 / 500.0, 70.0 / 6043.0),
        (1.0 / 250.0, 34.0 / 6043.0),
        (1.0 / 100.0, 15.0 / 6043.0),
    ];
    // piecewise-linear interpolation of the fraction in 1/s space
    let inv = 1.0 / paper_s;
    let frac = if inv >= 1.0 / ANCHORS[0].0 {
        ANCHORS[0].1
    } else if inv <= 1.0 / ANCHORS[4].0 {
        ANCHORS[4].1
    } else {
        let mut f = ANCHORS[0].1;
        for w in ANCHORS.windows(2) {
            let (s0, f0) = w[0];
            let (s1, f1) = w[1];
            let (i0, i1) = (1.0 / s0, 1.0 / s1);
            if inv <= i0 && inv >= i1 {
                let t = (inv - i1) / (i0 - i1);
                f = f1 + t * (f0 - f1);
                break;
            }
        }
        f
    };

    let n = pre.n_pairs();
    if n == 0 || pre.size() == 0 {
        return paper_s;
    }
    let k = ((frac * n as f64).round() as usize).clamp(1, n);
    let mut counts: Vec<u64> = pre.pairs().map(|pe| pe.total).collect();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    counts[k - 1] as f64 / pre.size() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_are_sorted_ascending() {
        assert!(E_EPS_GRID.windows(2).all(|w| w[0] < w[1]));
        assert!(DELTA_GRID.windows(2).all(|w| w[0] < w[1]));
        assert!(SUPPORT_GRID.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn reference_cell_matches_paper() {
        let p = reference_params();
        assert!((p.e_epsilon() - 2.0).abs() < 1e-12);
        assert!((p.delta() - 0.5).abs() < 1e-12);
    }
}
