//! Normalization for golden-output comparisons.
//!
//! `repro` output is deterministic except for the wall-clock runtimes
//! Figure 5 prints. [`normalize`] rewrites every duration token (the
//! `Debug`/`{:.2?}` rendering of [`std::time::Duration`]: `12ns`,
//! `3.17µs`, `1.20ms`, `2.05s`) to `<time>` and collapses runs of
//! spaces — column widths depend on the duration strings, so the
//! padding must be normalized away with them. The checked-in fixtures
//! under `tests/golden/` are stored in normalized form.

/// Duration unit suffixes `Duration`'s `Debug` impl can emit, longest
/// first so `ns`/`µs`/`ms` win over a bare `s`.
const UNITS: [&str; 5] = ["ns", "µs", "us", "ms", "s"];

/// Whether the chars at `rest` start with a duration unit followed by a
/// non-alphanumeric boundary; returns the unit length in chars.
fn unit_len(rest: &[char]) -> Option<usize> {
    UNITS.iter().find_map(|u| {
        let ulen = u.chars().count();
        if rest.len() < ulen || !u.chars().zip(rest).all(|(a, &b)| a == b) {
            return None;
        }
        rest.get(ulen).is_none_or(|c| !c.is_alphanumeric()).then_some(ulen)
    })
}

/// Replace duration tokens with `<time>`, collapse space runs, and trim
/// trailing whitespace per line.
pub fn normalize(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for line in s.lines() {
        let chars: Vec<char> = line.chars().collect();
        let mut t = String::with_capacity(line.len());
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c.is_ascii_digit() && (i == 0 || !chars[i - 1].is_alphanumeric()) {
                // scan a number: digits, optionally one dot + digits
                let mut j = i + 1;
                while j < chars.len() && chars[j].is_ascii_digit() {
                    j += 1;
                }
                if j < chars.len() && chars[j] == '.' {
                    let mut k = j + 1;
                    while k < chars.len() && chars[k].is_ascii_digit() {
                        k += 1;
                    }
                    if k > j + 1 {
                        j = k;
                    }
                }
                if let Some(ul) = unit_len(&chars[j..]) {
                    t.push_str("<time>");
                    i = j + ul;
                    continue;
                }
                t.extend(&chars[i..j]);
                i = j;
                continue;
            }
            t.push(c);
            i += 1;
        }
        // collapse space runs and long dash runs (table padding and
        // separator rules are sized to the duration strings)
        let mut prev_space = false;
        let mut dashes = 0usize;
        let collapsed: String = t
            .chars()
            .filter(|&c| {
                if c == '-' {
                    dashes += 1;
                } else {
                    dashes = 0;
                }
                let keep = !(c == ' ' && prev_space) && dashes <= 4;
                prev_space = c == ' ';
                keep
            })
            .collect();
        out.push_str(collapsed.trim_end());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_are_masked() {
        assert_eq!(normalize("took 1.23ms total"), "took <time> total\n");
        assert_eq!(normalize("took 456.78µs"), "took <time>\n");
        assert_eq!(normalize("took 12ns and 2.05s"), "took <time> and <time>\n");
        assert_eq!(normalize("took 3us"), "took <time>\n");
    }

    #[test]
    fn plain_numbers_survive() {
        assert_eq!(normalize("0 (0.3)"), "0 (0.3)\n");
        assert_eq!(normalize("1/500 -> 0.00123"), "1/500 -> 0.00123\n");
        assert_eq!(normalize("e^ε = 2, δ = 0.5"), "e^ε = 2, δ = 0.5\n");
        assert_eq!(normalize("λ ranges 0.00%-1.51% of |D|"), "λ ranges 0.00%-1.51% of |D|\n");
    }

    #[test]
    fn identifiers_with_digit_suffixes_survive() {
        // "u1" ends in a digit; "x100s" has a letter boundary before the
        // digits, so its digit run is not a fresh number token
        assert_eq!(normalize("user u1 kept x100s"), "user u1 kept x100s\n");
    }

    #[test]
    fn space_runs_collapse_and_trailing_space_drops() {
        assert_eq!(normalize("a    b   \n"), "a b\n");
    }

    #[test]
    fn duration_inside_table_cell() {
        let row = "SPE        12.34µs     17";
        assert_eq!(normalize(row), "SPE <time> 17\n");
    }

    #[test]
    fn unicode_survives_untouched() {
        assert_eq!(normalize("e^ε \\ δ   0.0001"), "e^ε \\ δ 0.0001\n");
    }

    #[test]
    fn separator_rules_clamp_to_four_dashes() {
        assert_eq!(normalize("----------------"), "----\n");
        assert_eq!(normalize("a - b -> c"), "a - b -> c\n");
    }
}
