//! Shared experiment context: dataset, preprocessing, and cached
//! solves.
//!
//! Two `(ε, δ)` pairs with the same collapsed budget
//! `B = min{ε, ln 1/(1−δ)}` induce identical optimization problems, so
//! λ solves are cached by the budget's bit pattern — Table 4's 49 cells
//! need at most 13 LP solves. F-UMP cells are cached by
//! `(budget, support, |O|)`, which also de-duplicates Figure 3(a)/(b)
//! (both sweep the same cells).
//!
//! The caches are behind mutexes so grid sweeps can be *prefetched* in
//! parallel (see [`crate::pool`]): the grid is split into data-defined
//! shards, each shard chains a [`SolveSession`] over its cells, and the
//! shard layout never depends on the worker count — so output is
//! byte-identical for every `--jobs` value. Within a chain the grid
//! steps are rhs-only perturbations (O-UMP budget moves are declared as
//! such; F-UMP steps are fingerprint-detected), so consecutive cells
//! reoptimize with the dual simplex from the previous optimal basis
//! rather than re-running the primal phases. Every session's
//! [`SessionStats`] are merged into a context-wide aggregate
//! ([`Ctx::solve_stats`]) so sweeps can show which path handled their
//! cells (`repro --stats`).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use dpsan_core::constraints::PrivacyConstraints;
use dpsan_core::session::{SessionStats, SolveSession, Strategy};
use dpsan_core::ump::frequent::{FumpOptions, FumpSolution};
use dpsan_core::ump::output_size::{OumpOptions, OumpSolution};
use dpsan_core::CoreError;
use dpsan_datagen::{generate, presets, AolLikeConfig};
use dpsan_dp::params::PrivacyParams;
use dpsan_lp::simplex::SimplexOptions;
use dpsan_searchlog::{preprocess, LogStats, PreprocessReport, SearchLog};

use crate::pool::run_sharded;

/// Budgets per warm-start chain when prefetching an O-UMP grid. The
/// chunking is over the *sorted distinct budget list*, so it is a
/// property of the requested grid, not of the worker count — a
/// determinism requirement (see module docs). 4 balances chain reuse
/// (longer chains amortize more cold solves) against parallelism
/// (shorter chains make more shards).
const OUMP_SHARD_LEN: usize = 4;

/// Dataset scale of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// ~60 users; seconds for the full suite.
    Tiny,
    /// ~400 users; the default.
    Small,
    /// ~1,000 users; minutes.
    Medium,
    /// 2,500 users as in the paper; expect long runtimes.
    Paper,
}

impl Scale {
    /// The generator preset of this scale.
    pub fn config(self) -> AolLikeConfig {
        match self {
            Scale::Tiny => presets::aol_tiny(),
            Scale::Small => presets::aol_small(),
            Scale::Medium => presets::aol_medium(),
            Scale::Paper => presets::aol_paper(),
        }
    }

    /// Parse from a CLI string.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }
}

/// One F-UMP grid cell: parameters, support threshold, output size.
#[derive(Debug, Clone, Copy)]
pub struct FumpCell {
    /// Privacy parameters of the cell.
    pub params: PrivacyParams,
    /// Minimum support `s` defining the frequent pairs.
    pub min_support: f64,
    /// Output size `|O|` (already clamped by the caller).
    pub output_size: u64,
}

type FumpKey = (u64, u64, u64);

fn fump_key(cell: &FumpCell) -> FumpKey {
    (cell.params.budget().value().to_bits(), cell.min_support.to_bits(), cell.output_size)
}

/// Shared state for one experiment run.
pub struct Ctx {
    /// The raw generated log.
    pub raw: SearchLog,
    /// The preprocessed log `D` every experiment works on.
    pub pre: SearchLog,
    /// What preprocessing removed.
    pub report: PreprocessReport,
    /// The scale used.
    pub scale: Scale,
    /// LP options shared by all solves.
    pub lp: SimplexOptions,
    jobs: usize,
    oump_cache: Mutex<HashMap<u64, Arc<OumpSolution>>>,
    constraints_cache: Mutex<HashMap<u64, Arc<PrivacyConstraints>>>,
    fump_cache: Mutex<HashMap<FumpKey, Arc<FumpSolution>>>,
    /// Aggregate solver counters across every session this context ran
    /// (prefetch chains and on-demand cache misses). Sums are
    /// independent of `jobs` because shard composition is.
    solve_stats: Mutex<SessionStats>,
}

impl Ctx {
    /// Generate the dataset of a scale and preprocess it (single
    /// worker; see [`Ctx::with_jobs`]).
    pub fn new(scale: Scale) -> Ctx {
        let raw = generate(&scale.config());
        let (pre, report) = preprocess(&raw);
        Ctx {
            raw,
            pre,
            report,
            scale,
            lp: SimplexOptions::default(),
            jobs: 1,
            oump_cache: Mutex::new(HashMap::new()),
            constraints_cache: Mutex::new(HashMap::new()),
            fump_cache: Mutex::new(HashMap::new()),
            solve_stats: Mutex::new(SessionStats::default()),
        }
    }

    /// Set the worker count used by grid prefetches. Results are
    /// byte-identical for every value; `jobs` only trades wall-clock
    /// for CPU.
    pub fn with_jobs(mut self, jobs: usize) -> Ctx {
        self.jobs = jobs.max(1);
        self
    }

    /// The prefetch worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Table-3 style statistics of the raw / preprocessed logs.
    pub fn stats(&self) -> (LogStats, LogStats) {
        (LogStats::of(&self.raw), LogStats::of(&self.pre))
    }

    /// Aggregate LP-solver counters accumulated so far (dual
    /// reoptimizations vs warm/cold primal solves, iterations,
    /// refactorizations). Independent of [`Ctx::jobs`].
    pub fn solve_stats(&self) -> SessionStats {
        *self.solve_stats.lock().expect("stats poisoned")
    }

    /// Read and reset the aggregate solver counters — lets a runner
    /// report per-experiment deltas.
    pub fn take_solve_stats(&self) -> SessionStats {
        std::mem::take(&mut *self.solve_stats.lock().expect("stats poisoned"))
    }

    /// Merge solver counters from a session run outside the context's
    /// own caches (e.g. a [`dpsan_core::mechanism::Release`] produced
    /// by the comparison suite) into the aggregate.
    pub fn record_solve_stats(&self, stats: &SessionStats) {
        self.solve_stats.lock().expect("stats poisoned").merge(stats);
    }

    /// The constraint system at the given parameters (cached by budget).
    pub fn constraints(&self, params: PrivacyParams) -> Result<Arc<PrivacyConstraints>, CoreError> {
        let key = params.budget().value().to_bits();
        if let Some(c) = self.constraints_cache.lock().expect("cache poisoned").get(&key) {
            return Ok(Arc::clone(c));
        }
        let c = Arc::new(PrivacyConstraints::build(&self.pre, params)?);
        self.constraints_cache
            .lock()
            .expect("cache poisoned")
            .entry(key)
            .or_insert_with(|| Arc::clone(&c));
        Ok(c)
    }

    /// The O-UMP solution at the given parameters (cached by budget;
    /// cache misses solve cold — sweeps should [`Ctx::prefetch_oump`]
    /// first).
    pub fn oump(&self, params: PrivacyParams) -> Result<Arc<OumpSolution>, CoreError> {
        let key = params.budget().value().to_bits();
        if let Some(s) = self.oump_cache.lock().expect("cache poisoned").get(&key) {
            return Ok(Arc::clone(s));
        }
        let constraints = self.constraints(params)?;
        // a one-shot session: solves cold exactly like a plain solve
        // would, but feeds the shared stats aggregate; PrimalOnly skips
        // populating a reopt cache that is dropped right away
        let mut session = SolveSession::new(self.lp.clone()).with_strategy(Strategy::PrimalOnly);
        let sol = Arc::new(session.solve_oump(
            &constraints,
            &OumpOptions { lp: self.lp.clone(), ..Default::default() },
        )?);
        self.record_solve_stats(&session.stats());
        self.insert_oump(key, &sol);
        Ok(sol)
    }

    fn insert_oump(&self, key: u64, sol: &Arc<OumpSolution>) {
        self.oump_cache
            .lock()
            .expect("cache poisoned")
            .entry(key)
            .or_insert_with(|| Arc::clone(sol));
    }

    /// Solve the O-UMP for every distinct budget in `grid` that is not
    /// cached yet, sharding the sorted budget list into fixed-size
    /// warm-start chains run on up to [`Ctx::jobs`] workers.
    pub fn prefetch_oump(&self, grid: &[PrivacyParams]) -> Result<(), CoreError> {
        let mut todo: Vec<PrivacyParams> = Vec::new();
        {
            let cache = self.oump_cache.lock().expect("cache poisoned");
            let mut seen: Vec<u64> = Vec::new();
            for &p in grid {
                let key = p.budget().value().to_bits();
                if !cache.contains_key(&key) && !seen.contains(&key) {
                    seen.push(key);
                    todo.push(p);
                }
            }
        }
        if todo.is_empty() {
            return Ok(());
        }
        // ascending budgets: adjacent chain steps move the rhs least
        todo.sort_by(|a, b| {
            a.budget().value().partial_cmp(&b.budget().value()).expect("budgets are finite")
        });
        let shards: Vec<Vec<PrivacyParams>> =
            todo.chunks(OUMP_SHARD_LEN).map(<[PrivacyParams]>::to_vec).collect();

        let results = run_sharded(shards, self.jobs, |shard| {
            let mut session = SolveSession::new(self.lp.clone());
            let opts = OumpOptions { lp: self.lp.clone(), ..Default::default() };
            let out = shard
                .into_iter()
                .map(|params| {
                    let constraints = self.constraints(params)?;
                    let sol = session.solve_oump(&constraints, &opts)?;
                    Ok((params.budget().value().to_bits(), Arc::new(sol)))
                })
                .collect::<Result<Vec<_>, CoreError>>();
            self.record_solve_stats(&session.stats());
            out
        });
        for shard in results {
            for (key, sol) in shard? {
                self.insert_oump(key, &sol);
            }
        }
        Ok(())
    }

    /// The maximum output size λ at the given parameters.
    pub fn lambda(&self, params: PrivacyParams) -> Result<u64, CoreError> {
        Ok(self.oump(params)?.lambda)
    }

    /// The F-UMP solution of one cell (cached; cache misses solve cold
    /// — sweeps should [`Ctx::prefetch_fump`] first).
    pub fn fump(&self, cell: FumpCell) -> Result<Arc<FumpSolution>, CoreError> {
        let key = fump_key(&cell);
        if let Some(s) = self.fump_cache.lock().expect("cache poisoned").get(&key) {
            return Ok(Arc::clone(s));
        }
        let constraints = self.constraints(cell.params)?;
        // one-shot (see the O-UMP cache-miss path above)
        let mut session = SolveSession::new(self.lp.clone()).with_strategy(Strategy::PrimalOnly);
        let sol = Arc::new(session.solve_fump(
            &self.pre,
            &constraints,
            &FumpOptions {
                lp: self.lp.clone(),
                ..FumpOptions::new(cell.min_support, cell.output_size)
            },
        )?);
        self.record_solve_stats(&session.stats());
        self.insert_fump(key, &sol);
        Ok(sol)
    }

    fn insert_fump(&self, key: FumpKey, sol: &Arc<FumpSolution>) {
        self.fump_cache
            .lock()
            .expect("cache poisoned")
            .entry(key)
            .or_insert_with(|| Arc::clone(sol));
    }

    /// Solve the F-UMP cells of a grid, one warm-start chain per given
    /// shard (callers pick shards along the axis that keeps the LP
    /// shape fixed — e.g. one δ-curve, or one support row). Cached
    /// cells are skipped.
    pub fn prefetch_fump(&self, shards: Vec<Vec<FumpCell>>) -> Result<(), CoreError> {
        let shards: Vec<Vec<FumpCell>> = {
            let cache = self.fump_cache.lock().expect("cache poisoned");
            shards
                .into_iter()
                .map(|shard| {
                    shard.into_iter().filter(|c| !cache.contains_key(&fump_key(c))).collect()
                })
                .filter(|shard: &Vec<FumpCell>| !shard.is_empty())
                .collect()
        };
        if shards.is_empty() {
            return Ok(());
        }
        // warm the constraints cache serially first: shards often share
        // one budget (e.g. every support row of Tables 5/6 uses the
        // reference cell), and concurrent cache misses would each
        // rebuild the same system just to discard all but one
        for cell in shards.iter().flatten() {
            self.constraints(cell.params)?;
        }
        let results = run_sharded(shards, self.jobs, |shard| {
            let mut session = SolveSession::new(self.lp.clone());
            let out = shard
                .into_iter()
                .map(|cell| {
                    let constraints = self.constraints(cell.params)?;
                    let sol = session.solve_fump(
                        &self.pre,
                        &constraints,
                        &FumpOptions {
                            lp: self.lp.clone(),
                            ..FumpOptions::new(cell.min_support, cell.output_size)
                        },
                    )?;
                    Ok((fump_key(&cell), Arc::new(sol)))
                })
                .collect::<Result<Vec<_>, CoreError>>();
            self.record_solve_stats(&session.stats());
            out
        });
        for shard in results {
            for (key, sol) in shard? {
                self.insert_fump(key, &sol);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_context_builds_and_caches() {
        let ctx = Ctx::new(Scale::Tiny);
        let (raw, pre) = ctx.stats();
        assert!(pre.pairs < raw.pairs);

        let a = PrivacyParams::from_e_epsilon(1.4, 0.5); // ε binds: B = ln 1.4
        let b = PrivacyParams::from_e_epsilon(1.4, 0.8); // same budget
        let la = ctx.lambda(a).unwrap();
        let lb = ctx.lambda(b).unwrap();
        assert_eq!(la, lb);
        assert_eq!(ctx.oump_cache.lock().unwrap().len(), 1, "one solve for equal budgets");
    }

    #[test]
    fn scale_parse() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn prefetch_matches_on_demand_lambdas() {
        let grid: Vec<PrivacyParams> = [1.01, 1.4, 1.7, 2.0, 2.3]
            .iter()
            .flat_map(|&e| [0.1, 0.5].map(|d| PrivacyParams::from_e_epsilon(e, d)))
            .collect();

        let cold = Ctx::new(Scale::Tiny);
        let lambdas_cold: Vec<u64> = grid.iter().map(|&p| cold.lambda(p).unwrap()).collect();

        for jobs in [1, 3] {
            let ctx = Ctx::new(Scale::Tiny).with_jobs(jobs);
            ctx.prefetch_oump(&grid).unwrap();
            let lambdas: Vec<u64> = grid.iter().map(|&p| ctx.lambda(p).unwrap()).collect();
            assert_eq!(lambdas, lambdas_cold, "jobs={jobs}");
        }
    }

    #[test]
    fn prefetch_is_idempotent() {
        let ctx = Ctx::new(Scale::Tiny).with_jobs(2);
        let grid = [PrivacyParams::from_e_epsilon(2.0, 0.5)];
        ctx.prefetch_oump(&grid).unwrap();
        let first = ctx.oump(grid[0]).unwrap();
        ctx.prefetch_oump(&grid).unwrap();
        let second = ctx.oump(grid[0]).unwrap();
        assert!(Arc::ptr_eq(&first, &second), "second prefetch is a cache no-op");
    }
}
