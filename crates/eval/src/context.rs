//! Shared experiment context: dataset, preprocessing, and cached O-UMP
//! solves.
//!
//! Two `(ε, δ)` pairs with the same collapsed budget
//! `B = min{ε, ln 1/(1−δ)}` induce identical optimization problems, so
//! λ solves are cached by the budget's bit pattern — Table 4's 49 cells
//! need at most 13 LP solves.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use dpsan_core::constraints::PrivacyConstraints;
use dpsan_core::ump::output_size::{solve_oump_with, OumpOptions, OumpSolution};
use dpsan_core::CoreError;
use dpsan_datagen::{generate, presets, AolLikeConfig};
use dpsan_dp::params::PrivacyParams;
use dpsan_lp::simplex::SimplexOptions;
use dpsan_searchlog::{preprocess, LogStats, PreprocessReport, SearchLog};

/// Dataset scale of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// ~60 users; seconds for the full suite.
    Tiny,
    /// ~400 users; the default.
    Small,
    /// ~1,000 users; minutes.
    Medium,
    /// 2,500 users as in the paper; expect long runtimes.
    Paper,
}

impl Scale {
    /// The generator preset of this scale.
    pub fn config(self) -> AolLikeConfig {
        match self {
            Scale::Tiny => presets::aol_tiny(),
            Scale::Small => presets::aol_small(),
            Scale::Medium => presets::aol_medium(),
            Scale::Paper => presets::aol_paper(),
        }
    }

    /// Parse from a CLI string.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }
}

/// Shared state for one experiment run.
pub struct Ctx {
    /// The raw generated log.
    pub raw: SearchLog,
    /// The preprocessed log `D` every experiment works on.
    pub pre: SearchLog,
    /// What preprocessing removed.
    pub report: PreprocessReport,
    /// The scale used.
    pub scale: Scale,
    /// LP options shared by all solves.
    pub lp: SimplexOptions,
    oump_cache: RefCell<HashMap<u64, Rc<OumpSolution>>>,
    constraints_cache: RefCell<HashMap<u64, Rc<PrivacyConstraints>>>,
}

impl Ctx {
    /// Generate the dataset of a scale and preprocess it.
    pub fn new(scale: Scale) -> Ctx {
        let raw = generate(&scale.config());
        let (pre, report) = preprocess(&raw);
        Ctx {
            raw,
            pre,
            report,
            scale,
            lp: SimplexOptions::default(),
            oump_cache: RefCell::new(HashMap::new()),
            constraints_cache: RefCell::new(HashMap::new()),
        }
    }

    /// Table-3 style statistics of the raw / preprocessed logs.
    pub fn stats(&self) -> (LogStats, LogStats) {
        (LogStats::of(&self.raw), LogStats::of(&self.pre))
    }

    /// The constraint system at the given parameters (cached by budget).
    pub fn constraints(&self, params: PrivacyParams) -> Result<Rc<PrivacyConstraints>, CoreError> {
        let key = params.budget().value().to_bits();
        if let Some(c) = self.constraints_cache.borrow().get(&key) {
            return Ok(Rc::clone(c));
        }
        let c = Rc::new(PrivacyConstraints::build(&self.pre, params)?);
        self.constraints_cache.borrow_mut().insert(key, Rc::clone(&c));
        Ok(c)
    }

    /// The O-UMP solution at the given parameters (cached by budget).
    pub fn oump(&self, params: PrivacyParams) -> Result<Rc<OumpSolution>, CoreError> {
        let key = params.budget().value().to_bits();
        if let Some(s) = self.oump_cache.borrow().get(&key) {
            return Ok(Rc::clone(s));
        }
        let constraints = self.constraints(params)?;
        let sol = Rc::new(solve_oump_with(
            &constraints,
            &OumpOptions { lp: self.lp.clone(), ..Default::default() },
        )?);
        self.oump_cache.borrow_mut().insert(key, Rc::clone(&sol));
        Ok(sol)
    }

    /// The maximum output size λ at the given parameters.
    pub fn lambda(&self, params: PrivacyParams) -> Result<u64, CoreError> {
        Ok(self.oump(params)?.lambda)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_context_builds_and_caches() {
        let ctx = Ctx::new(Scale::Tiny);
        let (raw, pre) = ctx.stats();
        assert!(pre.pairs < raw.pairs);

        let a = PrivacyParams::from_e_epsilon(1.4, 0.5); // ε binds: B = ln 1.4
        let b = PrivacyParams::from_e_epsilon(1.4, 0.8); // same budget
        let la = ctx.lambda(a).unwrap();
        let lb = ctx.lambda(b).unwrap();
        assert_eq!(la, lb);
        assert_eq!(ctx.oump_cache.borrow().len(), 1, "one solve for equal budgets");
    }

    #[test]
    fn scale_parse() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("huge"), None);
    }
}
