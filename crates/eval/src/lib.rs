//! # dpsan-eval
//!
//! Experiment harness regenerating every table and figure of the
//! paper's Section 6 on synthetic AOL-like data:
//!
//! | id | what |
//! |----|------|
//! | `table3` | dataset characteristics |
//! | `table4` | maximum output size λ on the `(e^ε, δ)` grid |
//! | `fig3a`/`fig3b` | F-UMP recall / support-distance sums vs `e^ε` |
//! | `fig3c` | average support distance vs minimum support |
//! | `table5`/`table6` | recall / distance sums on the `(|O|, s)` grid |
//! | `fig4` | D-UMP retained diversity vs `(e^ε, δ)` (SPE) |
//! | `table7` | D-UMP solver comparison |
//! | `fig5` | D-UMP solver runtimes |
//! | `fig6` | `DiffRatio` triplet histograms |
//!
//! Run via the `repro` binary: `repro all --scale small`.
//!
//! Output sizes and support grids are parameterized *relative to the
//! computed λ* rather than copied verbatim from the paper, because the
//! paper's absolute λ values are not derivable from its own constraint
//! system (summing the per-user rows proves `λ ≤ (#user logs) · B`;
//! see `EXPERIMENTS.md`). All qualitative shapes are preserved.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod experiments;
pub mod golden;
pub mod grids;
pub mod pool;
pub mod runner;
pub mod stats_text;
pub mod table;

pub use context::{Ctx, FumpCell, Scale};
pub use runner::{run_experiment, run_experiments, run_experiments_opts, RunOptions, EXPERIMENTS};
pub use table::Table;
