//! Experiment dispatch.

use std::error::Error;
use std::io::Write;

use crate::context::Ctx;
use crate::experiments;

/// Signature of an experiment regeneration function.
pub type ExperimentFn = fn(&Ctx, &mut dyn Write) -> Result<(), Box<dyn Error>>;

/// The experiment registry: id → regeneration function.
pub const EXPERIMENTS: &[(&str, ExperimentFn)] = &[
    ("table3", experiments::table3::run),
    ("table4", experiments::table4::run),
    ("fig3a", experiments::fig3::run_a),
    ("fig3b", experiments::fig3::run_b),
    ("fig3c", experiments::fig3::run_c),
    ("table5", experiments::table56::run_table5),
    ("table6", experiments::table56::run_table6),
    ("fig4", experiments::fig4::run),
    ("table7", experiments::table7::run),
    ("fig5", experiments::fig5::run),
    ("fig6", experiments::fig6::run),
];

/// Run one experiment by id; `Err` for unknown ids.
pub fn run_experiment(name: &str, ctx: &Ctx, out: &mut dyn Write) -> Result<(), Box<dyn Error>> {
    let Some((_, f)) = EXPERIMENTS.iter().find(|(id, _)| *id == name) else {
        return Err(format!(
            "unknown experiment {name:?}; known: {}",
            EXPERIMENTS.iter().map(|(id, _)| *id).collect::<Vec<_>>().join(", ")
        )
        .into());
    };
    f(ctx, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn registry_covers_every_section6_artifact() {
        let ids: Vec<&str> = EXPERIMENTS.iter().map(|(id, _)| *id).collect();
        for required in [
            "table3", "table4", "fig3a", "fig3b", "fig3c", "table5", "table6", "fig4", "table7",
            "fig5", "fig6",
        ] {
            assert!(ids.contains(&required), "{required} missing");
        }
    }

    #[test]
    fn unknown_experiment_errors() {
        let ctx = Ctx::new(Scale::Tiny);
        let mut buf = Vec::new();
        assert!(run_experiment("table99", &ctx, &mut buf).is_err());
    }

    #[test]
    fn table3_runs_by_name() {
        let ctx = Ctx::new(Scale::Tiny);
        let mut buf = Vec::new();
        run_experiment("table3", &ctx, &mut buf).unwrap();
        assert!(!buf.is_empty());
    }
}
