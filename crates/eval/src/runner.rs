//! Experiment dispatch and the parallel evaluation pipeline.
//!
//! Experiments execute *serially* in the requested order — the shared
//! [`Ctx`] caches are filled in a deterministic sequence, which keeps
//! `repro` output byte-identical across runs and `--jobs` values — but
//! each experiment renders into its own buffer and parallelizes its
//! parameter grid internally through [`crate::pool`] (worker per grid
//! shard, warm-start chain per shard).

use std::error::Error;
use std::io::Write;

use crate::context::Ctx;
use crate::experiments;

/// Signature of an experiment regeneration function.
pub type ExperimentFn = fn(&Ctx, &mut dyn Write) -> Result<(), Box<dyn Error>>;

/// The experiment registry: id → regeneration function.
pub const EXPERIMENTS: &[(&str, ExperimentFn)] = &[
    ("table3", experiments::table3::run),
    ("table4", experiments::table4::run),
    ("fig3a", experiments::fig3::run_a),
    ("fig3b", experiments::fig3::run_b),
    ("fig3c", experiments::fig3::run_c),
    ("table5", experiments::table56::run_table5),
    ("table6", experiments::table56::run_table6),
    ("fig4", experiments::fig4::run),
    ("table7", experiments::table7::run),
    ("fig5", experiments::fig5::run),
    ("fig6", experiments::fig6::run),
    // not a Section 6 artifact: the cross-mechanism comparison suite.
    // Registered last so adding it kept the golden fixture diff
    // append-only.
    ("compare", experiments::compare::run),
];

/// Run one experiment by id; `Err` for unknown ids.
pub fn run_experiment(name: &str, ctx: &Ctx, out: &mut dyn Write) -> Result<(), Box<dyn Error>> {
    let Some((_, f)) = EXPERIMENTS.iter().find(|(id, _)| *id == name) else {
        return Err(format!(
            "unknown experiment {name:?}; known: {}",
            EXPERIMENTS.iter().map(|(id, _)| *id).collect::<Vec<_>>().join(", ")
        )
        .into());
    };
    f(ctx, out)
}

/// Run several experiments and write their outputs (each followed by a
/// blank line) to `out` in the requested order.
///
/// Each experiment renders into a private buffer that is flushed to
/// `out` only when the experiment succeeds, so a mid-experiment failure
/// never leaves a half-written table. `progress` echoes a `running …`
/// line to stderr per experiment (what the `repro` binary shows).
pub fn run_experiments(
    names: &[String],
    ctx: &Ctx,
    out: &mut dyn Write,
    progress: bool,
) -> Result<(), Box<dyn Error>> {
    run_experiments_opts(names, ctx, out, &RunOptions { progress, solver_stats: false })
}

/// Knobs of [`run_experiments_opts`].
#[derive(Debug, Clone, Copy, Default)]
pub struct RunOptions {
    /// Echo a `running …` line to stderr per experiment.
    pub progress: bool,
    /// After each experiment, print the solver-counter delta (read
    /// from the telemetry registry, rendered by
    /// [`crate::stats_text`]) to **stderr** — kept off stdout so the
    /// golden-gated output never sees it.
    pub solver_stats: bool,
}

/// [`run_experiments`] with explicit options (`repro --stats` uses the
/// stderr solver-stats report).
pub fn run_experiments_opts(
    names: &[String],
    ctx: &Ctx,
    out: &mut dyn Write,
    opts: &RunOptions,
) -> Result<(), Box<dyn Error>> {
    if opts.solver_stats {
        ctx.take_solve_stats(); // start each run from a clean slate
    }
    // Per-experiment stats are registry snapshot deltas: experiments
    // run serially in this process, so the delta across one experiment
    // is exactly its solver work — the same numbers `--metrics-json`
    // exports, rendered by the shared `stats_text` line. Cached cells
    // solve zero LPs, so later experiments sharing a grid legitimately
    // report `solves=0`.
    let run_start = dpsan_obs::global().snapshot();
    let mut before = run_start.clone();
    for name in names {
        if opts.progress {
            eprintln!("running {name} ...");
        }
        let mut buf = Vec::new();
        run_experiment(name, ctx, &mut buf).map_err(|e| format!("{name} failed: {e}"))?;
        out.write_all(&buf)?;
        writeln!(out)?;
        if opts.solver_stats {
            let after = dpsan_obs::global().snapshot();
            let c = crate::stats_text::SolverCounters::from_snapshot(&after.delta(&before));
            eprintln!("{}", crate::stats_text::solver_stats_line(name, &c));
            before = after;
        }
    }
    if opts.solver_stats && names.len() > 1 {
        let whole = dpsan_obs::global().snapshot().delta(&run_start);
        let c = crate::stats_text::SolverCounters::from_snapshot(&whole);
        eprintln!("{}", crate::stats_text::solver_stats_line("total", &c));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn registry_covers_every_section6_artifact() {
        let ids: Vec<&str> = EXPERIMENTS.iter().map(|(id, _)| *id).collect();
        for required in [
            "table3", "table4", "fig3a", "fig3b", "fig3c", "table5", "table6", "fig4", "table7",
            "fig5", "fig6", "compare",
        ] {
            assert!(ids.contains(&required), "{required} missing");
        }
    }

    #[test]
    fn unknown_experiment_errors() {
        let ctx = Ctx::new(Scale::Tiny);
        let mut buf = Vec::new();
        assert!(run_experiment("table99", &ctx, &mut buf).is_err());
    }

    #[test]
    fn table3_runs_by_name() {
        let ctx = Ctx::new(Scale::Tiny);
        let mut buf = Vec::new();
        run_experiment("table3", &ctx, &mut buf).unwrap();
        assert!(!buf.is_empty());
    }

    #[test]
    fn batch_runner_matches_individual_runs() {
        let ctx = Ctx::new(Scale::Tiny);
        let names = vec!["table3".to_string(), "table4".to_string()];
        let mut batch = Vec::new();
        run_experiments(&names, &ctx, &mut batch, false).unwrap();

        let mut individual = Vec::new();
        for n in &names {
            run_experiment(n, &ctx, &mut individual).unwrap();
            writeln!(&mut individual).unwrap();
        }
        assert_eq!(batch, individual);
    }

    #[test]
    fn batch_runner_fails_atomically_on_unknown_name() {
        let ctx = Ctx::new(Scale::Tiny);
        let names = vec!["table3".to_string(), "nope".to_string()];
        let mut out = Vec::new();
        let err = run_experiments(&names, &ctx, &mut out, false).unwrap_err();
        assert!(err.to_string().contains("nope"));
        // table3 flushed, the failing experiment wrote nothing
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("Table 3"));
    }
}
