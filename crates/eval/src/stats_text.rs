//! One renderer for every operator-facing stderr stat line.
//!
//! Before this module, `repro --stats`, the serve per-release report,
//! and the `recovery:` startup line each formatted their own ad-hoc
//! string — three places to drift apart. Now all three render here,
//! from the same data the metrics exporters publish:
//!
//! * [`SolverCounters`] is the shared solver vocabulary. It converts
//!   from a per-scope [`SessionStats`] *and* from a registry
//!   [`Snapshot`] delta — and because `SolveSession` mirrors every
//!   increment into the registry, the two sources agree by
//!   construction, so a stderr line and a Prometheus scrape can never
//!   tell different stories.
//! * [`recovery_line`] reads the `dpsan_recovery_*` gauges straight
//!   from a snapshot — the identical series a `--metrics-file` export
//!   contains.
//!
//! The rendered shapes are load-bearing: CI's crash-smoke job parses
//! `recovery: ... manifests=N` and `release[N]: ... eps-total=X` with
//! awk. Change a key here only together with `.github/workflows`.

use dpsan_core::session::SessionStats;
use dpsan_obs::Snapshot;

/// The solver counters every stat line renders from.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverCounters {
    /// Total solves.
    pub solves: u64,
    /// Solves finished by the dual simplex from a restored basis.
    pub dual_reopts: u64,
    /// Warm primal starts (seeded, but not finished dual).
    pub warm_primal: u64,
    /// Cold two-phase primal solves.
    pub cold_starts: u64,
    /// Dual attempts that fell back to the primal path.
    pub dual_fallbacks: u64,
    /// Simplex iterations over all solves.
    pub iterations: u64,
    /// Basis (re)factorizations over all solves.
    pub refactorizations: u64,
}

impl From<&SessionStats> for SolverCounters {
    fn from(s: &SessionStats) -> Self {
        SolverCounters {
            solves: s.solves as u64,
            dual_reopts: s.dual_reopts as u64,
            warm_primal: s.warm_primal() as u64,
            cold_starts: s.cold_starts as u64,
            dual_fallbacks: s.dual_fallbacks as u64,
            iterations: s.iterations as u64,
            refactorizations: s.refactorizations as u64,
        }
    }
}

impl SolverCounters {
    /// Read the solver series out of a registry snapshot (usually a
    /// [`Snapshot::delta`], to scope the counters to one experiment or
    /// release).
    pub fn from_snapshot(s: &Snapshot) -> Self {
        let dual = s.counter("dpsan_solves_total{path=\"dual_reopt\"}");
        let warm = s.counter("dpsan_solves_total{path=\"warm_primal\"}");
        let cold = s.counter("dpsan_solves_total{path=\"cold_primal\"}");
        SolverCounters {
            solves: dual + warm + cold,
            dual_reopts: dual,
            warm_primal: warm,
            cold_starts: cold,
            dual_fallbacks: s.counter("dpsan_solve_dual_fallbacks_total"),
            iterations: s.counter("dpsan_solve_iterations_total"),
            refactorizations: s.counter("dpsan_solve_refactorizations_total"),
        }
    }

    /// The shared `key=value` payload of the full-width solver lines.
    fn full_kv(&self) -> String {
        format!(
            "solves={} dual-reopt={} warm-primal={} cold={} dual-fallbacks={} iterations={} \
             refactorizations={}",
            self.solves,
            self.dual_reopts,
            self.warm_primal,
            self.cold_starts,
            self.dual_fallbacks,
            self.iterations,
            self.refactorizations,
        )
    }
}

/// The `repro --stats` per-experiment line: `stats[scope]: solves=…`.
pub fn solver_stats_line(scope: &str, c: &SolverCounters) -> String {
    format!("stats[{scope}]: {}", c.full_kv())
}

/// The one-shot `sanitize --stats` line: `solver: solves=…`.
pub fn solver_line(c: &SolverCounters) -> String {
    format!("solver: {}", c.full_kv())
}

/// The serve per-release line: `release[N]: rows=… eps-total=…`.
/// (CI's crash-smoke awk depends on the `eps-total=` key.)
pub fn release_line(
    index: u64,
    rows: u64,
    latency: std::time::Duration,
    c: &SolverCounters,
    epsilon_total: f64,
    delta_total: f64,
    out: &std::path::Path,
) -> String {
    format!(
        "release[{index}]: rows={rows} latency_ms={:.1} dual-reopt={} warm-primal={} cold={} \
         dual-fallbacks={} eps-total={epsilon_total:.6} delta-total={delta_total:.6} out={}",
        latency.as_secs_f64() * 1e3,
        c.dual_reopts,
        c.warm_primal,
        c.cold_starts,
        c.dual_fallbacks,
        out.display(),
    )
}

/// The store startup line, rendered from the `dpsan_recovery_*` gauges
/// of a registry snapshot (the same series a `--metrics-file` export
/// carries). CI's crash-smoke awk depends on the `manifests=` key.
pub fn recovery_line(s: &Snapshot) -> String {
    let int = |name: &str| s.gauge(name) as i64;
    // −1 (and "series never set") both mean: no checkpoint seeded this
    // recovery
    let base = match s.values.get("dpsan_recovery_base_generation") {
        Some(dpsan_obs::SnapValue::Gauge(g)) if *g >= 0.0 => (*g as u64).to_string(),
        _ => "none".into(),
    };
    format!(
        "recovery: base-checkpoint={base} replayed-records={} truncated-bytes={} manifests={} \
         rejected={} unpublished={}",
        int("dpsan_recovery_replayed_records"),
        int("dpsan_recovery_truncated_bytes"),
        int("dpsan_recovery_manifests"),
        int("dpsan_recovery_rejected_checkpoints"),
        int("dpsan_recovery_unpublished"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_stats_and_snapshot_agree_on_the_same_history() {
        // the struct-sourced and registry-sourced counters must render
        // identically for the same underlying history
        let stats = SessionStats {
            solves: 5,
            warm_starts: 4,
            dual_reopts: 3,
            cold_starts: 1,
            dual_fallbacks: 1,
            degenerate_fallbacks: 0,
            iterations: 42,
            refactorizations: 7,
        };
        let from_stats = SolverCounters::from(&stats);
        assert_eq!(from_stats.warm_primal, 1);
        assert_eq!(
            solver_stats_line("t", &from_stats),
            "stats[t]: solves=5 dual-reopt=3 warm-primal=1 cold=1 dual-fallbacks=1 iterations=42 \
             refactorizations=7"
        );
    }

    #[test]
    fn recovery_line_renders_missing_gauges_as_fresh() {
        let empty = Snapshot::default();
        assert_eq!(
            recovery_line(&empty),
            "recovery: base-checkpoint=none replayed-records=0 truncated-bytes=0 manifests=0 \
             rejected=0 unpublished=0"
        );
    }

    #[test]
    fn release_line_keeps_the_awk_parsed_keys() {
        let line = release_line(
            2,
            100,
            std::time::Duration::from_millis(12),
            &SolverCounters::default(),
            1.5,
            0.25,
            std::path::Path::new("out/release-0002.tsv"),
        );
        assert!(line.starts_with("release[2]: rows=100 latency_ms=12.0 "));
        assert!(line.contains(" eps-total=1.500000 "));
        assert!(line.ends_with(" out=out/release-0002.tsv"));
    }
}
