//! A scoped worker pool for grid shards.
//!
//! Experiments split their parameter grids into *data-defined* shards
//! (fixed-size chunks of a sorted budget list, one δ-curve, one support
//! row …) and run them here. Shard composition never depends on the
//! worker count, and each shard is processed sequentially by exactly
//! one worker, so warm-start chains live entirely inside a shard and
//! the results — hence the rendered tables — are byte-identical for
//! every `--jobs` value. `jobs` only controls how many shards are in
//! flight at once.
//!
//! The implementation lives in [`dpsan_stream::pool`] since the
//! streaming ingestion engine drains its user-hash shards through the
//! same scaffolding; this module re-exports it so existing
//! `dpsan_eval::pool` callers are unaffected.

pub use dpsan_stream::pool::run_sharded;
