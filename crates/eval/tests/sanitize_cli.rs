//! Black-box CLI tests for the `sanitize` binary: malformed-input
//! fixtures must produce a line-numbered parse error and a nonzero
//! exit, on both the streaming and in-memory ingest paths.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dpsan-cli-{}-{name}", std::process::id()));
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn run_sanitize(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_sanitize")).args(args).output().expect("spawn sanitize")
}

#[test]
fn malformed_count_reports_line_number_and_fails() {
    let dir = scratch("badcount");
    let input = dir.join("bad.tsv");
    let out = dir.join("out.tsv");
    fs::write(&input, "u1\tq\tl\t1\nu2\tq\tl\tnotanumber\n").unwrap();

    for ingest in ["streaming", "in-memory"] {
        let o = run_sanitize(&[
            input.to_str().unwrap(),
            "--ingest",
            ingest,
            "--out",
            out.to_str().unwrap(),
        ]);
        assert!(!o.status.success(), "{ingest}: malformed count must exit nonzero");
        let stderr = String::from_utf8_lossy(&o.stderr);
        assert!(
            stderr.contains("line 2"),
            "{ingest}: stderr should name the offending line, got: {stderr}"
        );
        assert!(
            stderr.contains("notanumber"),
            "{ingest}: stderr should quote the bad field, got: {stderr}"
        );
        assert!(!out.exists(), "{ingest}: no output written on parse error");
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn short_record_and_zero_count_fail_with_line_numbers() {
    let dir = scratch("shortrec");
    let out = dir.join("out.tsv");

    let short = dir.join("short.tsv");
    fs::write(&short, "u1\tq\tl\t1\nu2\tq-only\n").unwrap();
    let o = run_sanitize(&[short.to_str().unwrap(), "--out", out.to_str().unwrap()]);
    assert!(!o.status.success());
    let stderr = String::from_utf8_lossy(&o.stderr);
    assert!(stderr.contains("line 2"), "got: {stderr}");

    let zero = dir.join("zero.tsv");
    fs::write(&zero, "u1\tq\tl\t0\n").unwrap();
    let o = run_sanitize(&[zero.to_str().unwrap(), "--out", out.to_str().unwrap()]);
    assert!(!o.status.success());
    let stderr = String::from_utf8_lossy(&o.stderr);
    assert!(stderr.contains("line 1"), "got: {stderr}");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn well_formed_input_sanitizes_cleanly() {
    let dir = scratch("good");
    let input = dir.join("good.tsv");
    let out = dir.join("out.tsv");
    let mut body = String::new();
    for u in 0..8 {
        body.push_str(&format!("u{u}\trust lang\trust-lang.org\t3\n"));
        body.push_str(&format!("u{u}\tweather\tweather.com\t2\n"));
    }
    fs::write(&input, body).unwrap();

    let o = run_sanitize(&[
        input.to_str().unwrap(),
        "--out",
        out.to_str().unwrap(),
        "--e-epsilon",
        "2.0",
        "--delta",
        "0.5",
    ]);
    assert!(o.status.success(), "stderr: {}", String::from_utf8_lossy(&o.stderr));
    let released = fs::read_to_string(&out).unwrap();
    for line in released.lines() {
        let fields: Vec<&str> = line.split('\t').collect();
        assert_eq!(fields.len(), 4, "output keeps the input schema: {line}");
        assert!(fields[3].parse::<u64>().unwrap() >= 1);
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn follow_mode_flag_validation() {
    // --follow without --out-dir is a usage error, not a hang.
    let o = run_sanitize(&["/nonexistent.tsv", "--follow"]);
    assert!(!o.status.success());
    let stderr = String::from_utf8_lossy(&o.stderr);
    assert!(stderr.contains("--out-dir"), "got: {stderr}");

    // --out-dir without --follow is rejected too.
    let o = run_sanitize(&["/nonexistent.tsv", "--out-dir", "/tmp/x", "--out", "/tmp/y"]);
    assert!(!o.status.success());
    let stderr = String::from_utf8_lossy(&o.stderr);
    assert!(stderr.contains("--follow"), "got: {stderr}");
}
