//! The Laplace mechanism.
//!
//! Section 4.2 of the paper makes the *count-computation* step
//! differentially private by adding `Lap(d/ε′)` noise to each optimal
//! count, after bounding the leave-one-out sensitivity of every pair's
//! optimal count by `d`. This module provides the noise primitive and
//! the vectorized mechanism.

use rand::{Rng, RngExt};

/// A Laplace distribution centred at 0 with scale `b` (density
/// `exp(-|x|/b) / 2b`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaplaceNoise {
    scale: f64,
}

impl LaplaceNoise {
    /// Create noise with the given scale `b > 0`.
    pub fn with_scale(scale: f64) -> Self {
        assert!(scale.is_finite() && scale > 0.0, "scale must be finite and > 0");
        LaplaceNoise { scale }
    }

    /// Create the mechanism noise for sensitivity `d` and privacy `ε′`:
    /// scale `d/ε′`.
    pub fn for_sensitivity(d: f64, epsilon: f64) -> Self {
        assert!(d.is_finite() && d > 0.0, "sensitivity must be finite and > 0");
        assert!(epsilon.is_finite() && epsilon > 0.0, "epsilon must be finite and > 0");
        Self::with_scale(d / epsilon)
    }

    /// The scale parameter `b`.
    pub fn scale(self) -> f64 {
        self.scale
    }

    /// Draw one sample by inverse-CDF: for `u ~ U(-1/2, 1/2)`,
    /// `x = -b·sgn(u)·ln(1 − 2|u|)`.
    pub fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        // u in (-0.5, 0.5]; ln_1p for numerical stability near 0.
        let u: f64 = rng.random::<f64>() - 0.5;
        -self.scale * u.signum() * (-2.0 * u.abs()).ln_1p()
    }
}

/// Draw one `Lap(scale)` sample (convenience wrapper).
pub fn sample_laplace<R: Rng>(rng: &mut R, scale: f64) -> f64 {
    LaplaceNoise::with_scale(scale).sample(rng)
}

/// Apply the Laplace mechanism to a slice of values: returns
/// `v + Lap(d/ε′)` element-wise.
pub fn laplace_mechanism<R: Rng>(
    rng: &mut R,
    values: &[f64],
    sensitivity: f64,
    epsilon: f64,
) -> Vec<f64> {
    let noise = LaplaceNoise::for_sensitivity(sensitivity, epsilon);
    values.iter().map(|&v| v + noise.sample(rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_mean_and_variance_match() {
        let mut rng = StdRng::seed_from_u64(7);
        let noise = LaplaceNoise::with_scale(2.0);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| noise.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        // E = 0, Var = 2 b^2 = 8
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 8.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn samples_are_symmetric() {
        let mut rng = StdRng::seed_from_u64(11);
        let noise = LaplaceNoise::with_scale(1.0);
        let n = 100_000;
        let pos = (0..n).filter(|_| noise.sample(&mut rng) > 0.0).count();
        let frac = pos as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "positive fraction {frac}");
    }

    #[test]
    fn for_sensitivity_sets_scale() {
        let noise = LaplaceNoise::for_sensitivity(4.0, 2.0);
        assert!((noise.scale() - 2.0).abs() < 1e-15);
    }

    #[test]
    fn mechanism_preserves_length_and_recenters() {
        let mut rng = StdRng::seed_from_u64(3);
        let values = vec![100.0; 10_000];
        let noised = laplace_mechanism(&mut rng, &values, 1.0, 1.0);
        assert_eq!(noised.len(), values.len());
        let mean = noised.iter().sum::<f64>() / noised.len() as f64;
        assert!((mean - 100.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn tail_decays_like_exponential() {
        // P(|X| > t) = exp(-t/b); check at t = 3b within MC error.
        let mut rng = StdRng::seed_from_u64(23);
        let noise = LaplaceNoise::with_scale(1.5);
        let n = 400_000;
        let t = 4.5;
        let tail = (0..n).filter(|_| noise.sample(&mut rng).abs() > t).count() as f64 / n as f64;
        let expect = (-3.0f64).exp();
        assert!((tail - expect).abs() < 0.005, "tail {tail} vs {expect}");
    }

    #[test]
    #[should_panic(expected = "scale must be finite and > 0")]
    fn rejects_bad_scale() {
        let _ = LaplaceNoise::with_scale(0.0);
    }

    #[test]
    #[should_panic(expected = "sensitivity must be finite and > 0")]
    fn rejects_bad_sensitivity() {
        let _ = LaplaceNoise::for_sensitivity(-1.0, 1.0);
    }
}
