//! Randomized response — the local-model primitive behind the LDP
//! mechanism (Ding et al.'s linear reduction applies it bit-wise to a
//! bounded-weight presence vector).
//!
//! A single bit is reported truthfully with probability
//! `p = e^ε′ / (1 + e^ε′)` and flipped otherwise, which satisfies
//! ε′-LDP for that bit. Two presence vectors with at most `d` ones each
//! differ in at most `2d` positions, so randomizing every bit at
//! `ε′ = ε / (2d)` makes the whole report ε-LDP at the user level —
//! the *linear reduction* from a user record to independent bits.

use rand::{Rng, RngExt};

/// A calibrated one-bit randomized-response channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomizedResponse {
    keep: f64,
}

impl RandomizedResponse {
    /// Channel that is ε′-LDP per bit: keep probability
    /// `e^ε′ / (1 + e^ε′)`.
    pub fn with_epsilon(epsilon: f64) -> Self {
        assert!(epsilon.is_finite() && epsilon > 0.0, "epsilon must be finite and > 0");
        let e = epsilon.exp();
        RandomizedResponse { keep: e / (1.0 + e) }
    }

    /// Channel for a user-level ε guarantee over a presence vector with
    /// at most `cap` ones: per-bit budget `ε′ = ε / (2·cap)` (linear
    /// reduction — neighboring capped records differ in ≤ 2·cap bits).
    pub fn per_item(epsilon_user: f64, cap: u64) -> Self {
        assert!(cap > 0, "item cap must be at least 1");
        Self::with_epsilon(epsilon_user / (2.0 * cap as f64))
    }

    /// Probability of reporting the true bit.
    pub fn keep_probability(self) -> f64 {
        self.keep
    }

    /// Probability of reporting the flipped bit.
    pub fn flip_probability(self) -> f64 {
        1.0 - self.keep
    }

    /// Randomize one bit: truthful with probability `keep`, flipped
    /// otherwise. Consumes exactly one `f64` draw from the RNG.
    pub fn randomize<R: Rng>(self, rng: &mut R, bit: bool) -> bool {
        let truthful = rng.random::<f64>() < self.keep;
        bit == truthful
    }

    /// Unbiased estimate of the true number of ones from `observed`
    /// reported ones among `total` bits:
    /// `(observed − total·(1−p)) / (2p − 1)`.
    pub fn debias(self, observed: u64, total: u64) -> f64 {
        let p = self.keep;
        (observed as f64 - total as f64 * (1.0 - p)) / (2.0 * p - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn keep_probability_formula() {
        let rr = RandomizedResponse::with_epsilon(2.0f64.ln());
        assert!((rr.keep_probability() - 2.0 / 3.0).abs() < 1e-12);
        assert!((rr.flip_probability() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn per_item_uses_linear_reduction() {
        let direct = RandomizedResponse::with_epsilon(0.25);
        let reduced = RandomizedResponse::per_item(2.0, 4); // 2 / (2·4)
        assert!((direct.keep_probability() - reduced.keep_probability()).abs() < 1e-12);
    }

    #[test]
    fn per_bit_ratio_is_bounded_by_e_epsilon() {
        let eps = 0.7;
        let rr = RandomizedResponse::with_epsilon(eps);
        let ratio = rr.keep_probability() / rr.flip_probability();
        assert!((ratio - eps.exp()).abs() < 1e-9);
    }

    #[test]
    fn randomize_is_deterministic_given_seed() {
        let rr = RandomizedResponse::with_epsilon(0.5);
        let run = |seed: u64| -> Vec<bool> {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..64).map(|i| rr.randomize(&mut rng, i % 3 == 0)).collect()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds randomize differently");
    }

    #[test]
    fn debias_recovers_expectation() {
        let rr = RandomizedResponse::with_epsilon(1.0);
        let p = rr.keep_probability();
        let (ones, total) = (30u64, 100u64);
        // expected observed ones = ones·p + (total−ones)·(1−p)
        let expected = ones as f64 * p + (total - ones) as f64 * (1.0 - p);
        let est = rr.debias(expected.round() as u64, total);
        assert!((est - ones as f64).abs() < 1.0, "{est}");
    }

    #[test]
    fn empirical_keep_rate_matches() {
        let rr = RandomizedResponse::with_epsilon(1.5);
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let kept = (0..n).filter(|_| rr.randomize(&mut rng, true)).count();
        let rate = kept as f64 / n as f64;
        assert!((rate - rr.keep_probability()).abs() < 0.02, "{rate}");
    }
}
