//! `(ε, δ)`-probabilistic differential-privacy parameters.
//!
//! Definition 2 of the paper splits the output space into a
//! δ-bounded exceptional part Ω₁ and an ε-bounded part Ω₂. Theorem 1
//! turns both bounds into one *linear* right-hand side per user log:
//!
//! ```text
//! Σ x_ij · ln t_ijk  ≤  min{ ε, ln 1/(1−δ) }  =  B
//! ```
//!
//! because Condition 2 requires `Σ x ln t ≤ ε` and Condition 3 requires
//! `1 − Π (1/t)^x ≤ δ ⇔ Σ x ln t ≤ ln 1/(1−δ)`.

use std::fmt;

/// Validated `(ε, δ)` pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrivacyParams {
    epsilon: f64,
    delta: f64,
}

/// The collapsed per-user-log budget `B = min{ε, ln 1/(1−δ)}`.
///
/// Every privacy constraint of the sanitization is `Σ x ln t ≤ B`, so
/// two parameter pairs with equal `B` induce *identical* optimization
/// problems — the saturation plateaus of Table 4 follow directly.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct PrivacyBudget(f64);

impl PrivacyParams {
    /// Construct from `ε > 0` and `δ ∈ (0, 1)`.
    ///
    /// # Panics
    /// Panics when parameters are out of range or non-finite; privacy
    /// parameters are programmer-provided configuration, not data.
    pub fn new(epsilon: f64, delta: f64) -> Self {
        assert!(epsilon.is_finite() && epsilon > 0.0, "epsilon must be finite and > 0");
        assert!(delta.is_finite() && delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
        PrivacyParams { epsilon, delta }
    }

    /// Construct from `e^ε` (the paper reports `e^ε` grids) and `δ`.
    pub fn from_e_epsilon(e_epsilon: f64, delta: f64) -> Self {
        assert!(e_epsilon.is_finite() && e_epsilon > 1.0, "e^epsilon must be > 1");
        Self::new(e_epsilon.ln(), delta)
    }

    /// The ε parameter.
    pub fn epsilon(self) -> f64 {
        self.epsilon
    }

    /// `e^ε`.
    pub fn e_epsilon(self) -> f64 {
        self.epsilon.exp()
    }

    /// The δ parameter.
    pub fn delta(self) -> f64 {
        self.delta
    }

    /// `ln 1/(1−δ)`, the Condition-3 side of the budget.
    pub fn delta_log_bound(self) -> f64 {
        // ln(1/(1-δ)) = -ln(1-δ) = -ln_1p(-δ), computed stably.
        -(-self.delta).ln_1p()
    }

    /// The collapsed budget `B = min{ε, ln 1/(1−δ)}` of Equation (4).
    pub fn budget(self) -> PrivacyBudget {
        PrivacyBudget(self.epsilon.min(self.delta_log_bound()))
    }

    /// Which side of the `min` binds: `true` when ε is the binding
    /// (smaller or equal) term. Useful for explaining Table 4 plateaus.
    pub fn epsilon_binds(self) -> bool {
        self.epsilon <= self.delta_log_bound()
    }
}

impl fmt::Display for PrivacyParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(ε={:.6}, δ={:.6})", self.epsilon, self.delta)
    }
}

impl PrivacyBudget {
    /// Construct a raw budget (mainly for tests and scaling laws).
    pub fn from_raw(b: f64) -> Self {
        assert!(b.is_finite() && b > 0.0, "budget must be finite and > 0");
        PrivacyBudget(b)
    }

    /// The budget value `B`.
    pub fn value(self) -> f64 {
        self.0
    }
}

impl fmt::Display for PrivacyBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_is_min_of_both_sides() {
        // ε = ln 2 ≈ 0.693; δ = 0.1 -> ln(1/0.9) ≈ 0.105 -> δ binds
        let p = PrivacyParams::from_e_epsilon(2.0, 0.1);
        assert!((p.budget().value() - (1.0f64 / 0.9).ln()).abs() < 1e-12);
        assert!(!p.epsilon_binds());

        // δ = 0.8 -> ln 5 ≈ 1.609 -> ε binds
        let p = PrivacyParams::from_e_epsilon(2.0, 0.8);
        assert!((p.budget().value() - 2.0f64.ln()).abs() < 1e-12);
        assert!(p.epsilon_binds());
    }

    #[test]
    fn equal_budgets_for_saturated_cells() {
        // Table 4 plateau: for e^ε = 1.4 the cells δ = 0.5 and δ = 0.8
        // are both ε-bound and thus identical problems.
        let a = PrivacyParams::from_e_epsilon(1.4, 0.5);
        let b = PrivacyParams::from_e_epsilon(1.4, 0.8);
        assert_eq!(a.budget(), b.budget());
    }

    #[test]
    fn delta_log_bound_is_stable_for_tiny_delta() {
        let p = PrivacyParams::new(1.0, 1e-12);
        // ln(1/(1-δ)) ≈ δ for tiny δ
        assert!((p.delta_log_bound() - 1e-12).abs() < 1e-24);
    }

    #[test]
    fn e_epsilon_roundtrip() {
        let p = PrivacyParams::from_e_epsilon(1.7, 0.2);
        assert!((p.e_epsilon() - 1.7).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "epsilon must be finite and > 0")]
    fn rejects_nonpositive_epsilon() {
        let _ = PrivacyParams::new(0.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "delta must be in (0, 1)")]
    fn rejects_delta_one() {
        let _ = PrivacyParams::new(1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "e^epsilon must be > 1")]
    fn rejects_e_epsilon_below_one() {
        let _ = PrivacyParams::from_e_epsilon(0.9, 0.5);
    }

    #[test]
    fn display_formats() {
        let p = PrivacyParams::new(0.5, 0.25);
        assert!(p.to_string().contains("ε=0.5"));
        assert!(p.budget().to_string().starts_with("0.28"));
    }
}
