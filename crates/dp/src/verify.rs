//! Checking Definition 2 on concrete output distributions.
//!
//! For tiny inputs the output space of the multinomial sanitizer can be
//! enumerated and its pmf computed in closed form (Eq. 1). This module
//! provides the *generic* half of that validation: given the two output
//! distributions of a mechanism on neighboring inputs `D`, `D′` and a
//! split predicate for the exceptional set Ω₁, it measures
//!
//! * `delta_mass = Pr[R(D) ∈ Ω₁]` (must be ≤ δ), and
//! * `max_log_ratio = max_{O ∈ Ω₂} |ln Pr[R(D)=O] − ln Pr[R(D′)=O]|`
//!   (must be ≤ ε),
//!
//! plus Monte-Carlo estimation of a mechanism's output distribution and
//! exact multinomial pmfs used to build the distributions.

use std::collections::HashMap;
use std::hash::Hash;

use rand::Rng;

/// Result of a probabilistic-DP check on explicit distributions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DpCheck {
    /// `Pr[R(D) ∈ Ω₁]`.
    pub delta_mass: f64,
    /// `max_{O ∈ Ω₂} |ln ratio|`; `f64::INFINITY` if some Ω₂ output has
    /// positive probability under exactly one input.
    pub max_log_ratio: f64,
}

impl DpCheck {
    /// Whether the check certifies `(ε, δ)`-probabilistic DP (with a
    /// small numerical slack).
    pub fn satisfies(&self, epsilon: f64, delta: f64) -> bool {
        self.delta_mass <= delta + 1e-9 && self.max_log_ratio <= epsilon + 1e-9
    }
}

/// Verify Definition 2 given both output distributions and the Ω₁
/// predicate. Outputs missing from a map are treated as probability 0.
pub fn check_probabilistic_dp<O, F>(
    dist_d: &HashMap<O, f64>,
    dist_d_prime: &HashMap<O, f64>,
    mut in_omega1: F,
) -> DpCheck
where
    O: Eq + Hash + Clone,
    F: FnMut(&O) -> bool,
{
    let mut delta_mass = 0.0;
    let mut max_log_ratio: f64 = 0.0;

    let mut keys: Vec<&O> = dist_d.keys().collect();
    for k in dist_d_prime.keys() {
        if !dist_d.contains_key(k) {
            keys.push(k);
        }
    }

    for o in keys {
        let p = dist_d.get(o).copied().unwrap_or(0.0);
        let q = dist_d_prime.get(o).copied().unwrap_or(0.0);
        if in_omega1(o) {
            delta_mass += p;
            continue;
        }
        match (p > 0.0, q > 0.0) {
            (true, true) => {
                let r = (p.ln() - q.ln()).abs();
                max_log_ratio = max_log_ratio.max(r);
            }
            (false, false) => {}
            // An Ω₂ output reachable from one input only: the ratio is
            // unbounded and ε-DP fails outright on this split.
            _ => max_log_ratio = f64::INFINITY,
        }
    }

    DpCheck { delta_mass, max_log_ratio }
}

/// Check Proposition 1 (indistinguishability DP): for every event
/// `Ô ⊆ Ω` formed from the union of single outputs... exactness over all
/// 2^|Ω| events is infeasible, but the worst event for
/// `Pr[R(D) ∈ Ô] ≤ e^ε Pr[R(D′) ∈ Ô] + δ` is the set of outputs where
/// `p > e^ε q`, so it suffices to sum the excess mass.
pub fn check_indistinguishability<O>(
    dist_d: &HashMap<O, f64>,
    dist_d_prime: &HashMap<O, f64>,
    epsilon: f64,
) -> f64
where
    O: Eq + Hash + Clone,
{
    let mut excess = 0.0;
    let e_eps = epsilon.exp();
    let mut keys: Vec<&O> = dist_d.keys().collect();
    for k in dist_d_prime.keys() {
        if !dist_d.contains_key(k) {
            keys.push(k);
        }
    }
    for o in keys {
        let p = dist_d.get(o).copied().unwrap_or(0.0);
        let q = dist_d_prime.get(o).copied().unwrap_or(0.0);
        excess += (p - e_eps * q).max(0.0);
    }
    excess
}

/// Estimate a mechanism's output distribution by `runs` Monte-Carlo
/// executions.
pub fn empirical_distribution<O, R, F>(
    rng: &mut R,
    runs: usize,
    mut mechanism: F,
) -> HashMap<O, f64>
where
    O: Eq + Hash,
    R: Rng,
    F: FnMut(&mut R) -> O,
{
    assert!(runs > 0, "need at least one run");
    let mut hist: HashMap<O, usize> = HashMap::new();
    for _ in 0..runs {
        *hist.entry(mechanism(rng)).or_insert(0) += 1;
    }
    hist.into_iter().map(|(o, c)| (o, c as f64 / runs as f64)).collect()
}

/// `ln n!` computed by direct summation (exact enough for the tiny
/// trial counts used in verification).
pub fn ln_factorial(n: u64) -> f64 {
    (2..=n).map(|k| (k as f64).ln()).sum()
}

/// Exact multinomial pmf: probability of the count vector `counts` after
/// `Σ counts` trials with category probabilities `weights / Σ weights`.
///
/// Categories with zero weight must have zero count (else the pmf is 0).
pub fn multinomial_pmf(weights: &[u64], counts: &[u64]) -> f64 {
    assert_eq!(weights.len(), counts.len(), "weights/counts length mismatch");
    let total_w: u64 = weights.iter().sum();
    assert!(total_w > 0, "weights must not sum to zero");
    let n: u64 = counts.iter().sum();
    let mut ln_p = ln_factorial(n);
    for (&w, &c) in weights.iter().zip(counts) {
        if w == 0 {
            if c > 0 {
                return 0.0;
            }
            continue;
        }
        ln_p += c as f64 * ((w as f64 / total_w as f64).ln());
        ln_p -= ln_factorial(c);
    }
    ln_p.exp()
}

/// Enumerate all count vectors of length `k` summing to `trials`
/// (the full output space of one pair's multinomial sampling).
pub fn enumerate_compositions(trials: u64, k: usize) -> Vec<Vec<u64>> {
    assert!(k > 0, "need at least one category");
    let mut out = Vec::new();
    let mut current = vec![0u64; k];
    fn rec(remaining: u64, idx: usize, current: &mut Vec<u64>, out: &mut Vec<Vec<u64>>) {
        if idx == current.len() - 1 {
            current[idx] = remaining;
            out.push(current.clone());
            return;
        }
        for v in 0..=remaining {
            current[idx] = v;
            rec(remaining - v, idx + 1, current, out);
        }
    }
    rec(trials, 0, &mut current, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn ln_factorial_small_values() {
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
        assert!((ln_factorial(5) - 120f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn multinomial_pmf_sums_to_one() {
        let weights = [2u64, 3, 5];
        for trials in 0..5u64 {
            let total: f64 = enumerate_compositions(trials, 3)
                .iter()
                .map(|c| multinomial_pmf(&weights, c))
                .sum();
            assert!((total - 1.0).abs() < 1e-12, "trials {trials}: total {total}");
        }
    }

    #[test]
    fn multinomial_pmf_binomial_case() {
        // n = 2, p = 0.5: P(1,1) = 0.5
        assert!((multinomial_pmf(&[1, 1], &[1, 1]) - 0.5).abs() < 1e-12);
        // P(2,0) = 0.25
        assert!((multinomial_pmf(&[1, 1], &[2, 0]) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_weight_category_forces_zero_count() {
        assert_eq!(multinomial_pmf(&[1, 0], &[0, 1]), 0.0);
        assert!((multinomial_pmf(&[1, 0], &[3, 0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn enumerate_compositions_counts() {
        // C(trials + k - 1, k - 1) compositions
        assert_eq!(enumerate_compositions(3, 2).len(), 4);
        assert_eq!(enumerate_compositions(2, 3).len(), 6);
        for c in enumerate_compositions(4, 3) {
            assert_eq!(c.iter().sum::<u64>(), 4);
        }
    }

    #[test]
    fn check_flags_unbounded_ratio() {
        let mut d: HashMap<u8, f64> = HashMap::new();
        d.insert(0, 0.5);
        d.insert(1, 0.5);
        let mut dp: HashMap<u8, f64> = HashMap::new();
        dp.insert(0, 1.0);
        // output 1 reachable only from D and not exceptional -> infinite
        let check = check_probabilistic_dp(&d, &dp, |_| false);
        assert!(check.max_log_ratio.is_infinite());
        // but if output 1 is in Ω₁ the mechanism is (0, 0.5)-probabilistic DP
        let check = check_probabilistic_dp(&d, &dp, |&o| o == 1);
        assert!((check.delta_mass - 0.5).abs() < 1e-12);
        assert!((check.max_log_ratio - (0.5f64.ln() - 1.0f64.ln()).abs()).abs() < 1e-12);
        assert!(check.satisfies(0.7, 0.5));
        assert!(!check.satisfies(0.6, 0.5));
    }

    #[test]
    fn indistinguishability_excess_zero_when_identical() {
        let mut d: HashMap<u8, f64> = HashMap::new();
        d.insert(0, 0.3);
        d.insert(1, 0.7);
        assert_eq!(check_indistinguishability(&d, &d, 0.0), 0.0);
    }

    #[test]
    fn indistinguishability_excess_positive_when_violated() {
        let mut d: HashMap<u8, f64> = HashMap::new();
        d.insert(0, 1.0);
        let mut dp: HashMap<u8, f64> = HashMap::new();
        dp.insert(1, 1.0);
        // with ε = 0 the worst event Ô = {0} has excess 1
        assert!((check_indistinguishability(&d, &dp, 0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empirical_distribution_matches_exact() {
        let mut rng = StdRng::seed_from_u64(99);
        let dist = empirical_distribution(&mut rng, 200_000, |r| r.random_range(0..4u8));
        for v in 0..4u8 {
            let p = dist.get(&v).copied().unwrap_or(0.0);
            assert!((p - 0.25).abs() < 0.01, "p({v}) = {p}");
        }
    }
}
