//! Budget-ledger telemetry handles.
//!
//! Only a ledger marked [`observed`](crate::composition::BudgetLedger::observed)
//! reports here — the *authoritative* cross-release ledger a planner or
//! service owns. Per-release view ledgers (the copy inside a
//! `Release`) and scratch ledgers in tests stay silent, so the global
//! spend series counts each expenditure exactly once.
//!
//! | series | type | meaning |
//! |---|---|---|
//! | `dpsan_budget_spends_total` | counter | entries appended to an observed ledger |
//! | `dpsan_budget_refusals_total` | counter | spends refused by the lifetime cap |
//! | `dpsan_budget_epsilon_spent` | gauge | composed ε of the observed ledger |
//! | `dpsan_budget_delta_spent` | gauge | composed δ of the observed ledger |
//! | `dpsan_budget_epsilon_remaining` | gauge | lifetime ε still available (capped ledgers) |
//! | `dpsan_budget_delta_remaining` | gauge | lifetime δ still available (capped ledgers) |

use dpsan_obs::{global, Counter, Gauge};
use std::sync::OnceLock;

/// Entries appended to an observed ledger.
pub fn spends_total() -> &'static Counter {
    static H: OnceLock<Counter> = OnceLock::new();
    H.get_or_init(|| global().counter("dpsan_budget_spends_total"))
}

/// Spends refused by the lifetime cap.
pub fn refusals_total() -> &'static Counter {
    static H: OnceLock<Counter> = OnceLock::new();
    H.get_or_init(|| global().counter("dpsan_budget_refusals_total"))
}

/// Composed ε spent on the observed ledger.
pub fn epsilon_spent() -> &'static Gauge {
    static H: OnceLock<Gauge> = OnceLock::new();
    H.get_or_init(|| global().gauge("dpsan_budget_epsilon_spent"))
}

/// Composed δ spent on the observed ledger.
pub fn delta_spent() -> &'static Gauge {
    static H: OnceLock<Gauge> = OnceLock::new();
    H.get_or_init(|| global().gauge("dpsan_budget_delta_spent"))
}

/// Lifetime ε still available on the observed capped ledger.
pub fn epsilon_remaining() -> &'static Gauge {
    static H: OnceLock<Gauge> = OnceLock::new();
    H.get_or_init(|| global().gauge("dpsan_budget_epsilon_remaining"))
}

/// Lifetime δ still available on the observed capped ledger.
pub fn delta_remaining() -> &'static Gauge {
    static H: OnceLock<Gauge> = OnceLock::new();
    H.get_or_init(|| global().gauge("dpsan_budget_delta_remaining"))
}
