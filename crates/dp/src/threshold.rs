//! Noisy-threshold calibration for ZEALOUS-style heavy-hitter release
//! (Götz, Machanavajjhala, Wang, Xiao, Gehrke — *Publishing Search
//! Logs: A Comparative Study of Privacy Guarantees*).
//!
//! ZEALOUS releases an item's (capped) count only when the count plus
//! Laplace noise clears a threshold. With a per-user contribution cap
//! `d`, the capped histogram has user-level sensitivity `d`, and the
//! conservative two-sided calibration uses noise scale `b = 2d/ε`.
//! The release threshold is raised above the coarse candidate cutoff
//! `τ′` by the Laplace tail margin `b·ln(1/(2δ))`, so an item that the
//! coarse phase would have suppressed passes the noisy test with
//! probability at most `δ` — the failure mass of the `(ε, δ)`
//! guarantee.
//!
//! The same tail bound, read in the other direction, is the paper's
//! *reliability* statement: an item whose capped count exceeds the
//! threshold by `b·ln(1/(2β))` is released with probability at least
//! `1 − β`.

use crate::laplace::LaplaceNoise;

/// Laplace noise scale of the ZEALOUS histogram: `b = 2d/ε` for
/// per-user contribution cap `d` (the conservative two-sided
/// calibration of the original analysis).
pub fn noise_scale(contribution_cap: u64, epsilon: f64) -> f64 {
    assert!(contribution_cap > 0, "contribution cap must be at least 1");
    assert!(epsilon.is_finite() && epsilon > 0.0, "epsilon must be finite and > 0");
    2.0 * contribution_cap as f64 / epsilon
}

/// The release threshold `τ = τ′ + max(0, b·ln(1/(2δ)))`.
///
/// The margin is clamped at zero: for δ ≥ 1/2 the tail bound is vacuous
/// and the coarse cutoff itself is already the binding test.
pub fn release_threshold(coarse_threshold: u64, scale: f64, delta: f64) -> f64 {
    assert!(scale.is_finite() && scale > 0.0, "scale must be finite and > 0");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
    coarse_threshold as f64 + tail_margin(scale, delta)
}

/// The Laplace tail margin `max(0, b·ln(1/(2p)))`: a `Lap(b)` draw
/// exceeds this margin with probability at most `p` (exactly
/// `½·e^(−t/b)` for margin `t ≥ 0`).
pub fn tail_margin(scale: f64, p: f64) -> f64 {
    assert!(scale.is_finite() && scale > 0.0, "scale must be finite and > 0");
    assert!(p > 0.0 && p < 1.0, "tail probability must be in (0, 1)");
    (scale * (1.0 / (2.0 * p)).ln()).max(0.0)
}

/// Probability that a capped count `h` survives the noisy test
/// `h + Lap(b) ≥ τ`, in closed form from the Laplace CDF.
pub fn release_probability(count: f64, threshold: f64, scale: f64) -> f64 {
    assert!(scale.is_finite() && scale > 0.0, "scale must be finite and > 0");
    let t = threshold - count;
    if t >= 0.0 {
        0.5 * (-t / scale).exp()
    } else {
        1.0 - 0.5 * (t / scale).exp()
    }
}

/// The calibrated noise distribution: `Lap(2d/ε)`.
pub fn noise(contribution_cap: u64, epsilon: f64) -> LaplaceNoise {
    LaplaceNoise::with_scale(noise_scale(contribution_cap, epsilon))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_is_2d_over_epsilon() {
        assert!((noise_scale(4, 0.5) - 16.0).abs() < 1e-12);
        assert!((noise(4, 0.5).scale() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn threshold_adds_tail_margin_for_small_delta() {
        let b = noise_scale(2, 1.0); // 4
        let tau = release_threshold(10, b, 0.01);
        assert!((tau - (10.0 + 4.0 * (1.0 / 0.02f64).ln())).abs() < 1e-9);
    }

    #[test]
    fn threshold_clamps_at_coarse_cutoff_for_large_delta() {
        let b = noise_scale(2, 1.0);
        assert!((release_threshold(10, b, 0.8) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn tail_margin_matches_release_probability() {
        // a count sitting exactly margin(β) above τ is released w.p. 1−β
        let b = 3.0;
        for beta in [0.01, 0.1, 0.3] {
            let m = tail_margin(b, beta);
            let p = release_probability(m, 0.0, b);
            assert!((p - (1.0 - beta)).abs() < 1e-9, "beta={beta}: {p}");
        }
    }

    #[test]
    fn suppressed_items_pass_with_probability_at_most_delta() {
        // a count at the coarse cutoff passes τ w.p. ≤ δ
        let b = noise_scale(8, 0.5);
        for delta in [0.001, 0.05, 0.2] {
            let tau = release_threshold(5, b, delta);
            let p = release_probability(5.0, tau, b);
            assert!(p <= delta + 1e-12, "delta={delta}: {p}");
        }
    }

    #[test]
    fn release_probability_is_monotone_in_count() {
        let b = 2.0;
        let ps: Vec<f64> = (0..20).map(|h| release_probability(h as f64, 10.0, b)).collect();
        assert!(ps.windows(2).all(|w| w[0] <= w[1]));
        assert!((release_probability(10.0, 10.0, b) - 0.5).abs() < 1e-12);
    }
}
