//! Walker/Vose alias method for O(1) categorical sampling.
//!
//! The multinomial sampler draws `x*_ij` user-IDs per pair; frequent
//! pairs can take thousands of trials over dozens of holders, where the
//! alias table's O(1) draw beats a linear CDF scan.

use rand::{Rng, RngExt};

/// A prebuilt alias table over `n` categories.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Build from non-negative weights (need not be normalized).
    ///
    /// # Panics
    /// Panics when `weights` is empty, contains a negative or non-finite
    /// weight, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one category");
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(w.is_finite() && w >= 0.0, "weights must be finite and non-negative");
                w
            })
            .sum();
        assert!(total > 0.0, "weights must not sum to zero");

        let n = weights.len();
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut alias: Vec<u32> = (0..n as u32).collect();

        // Vose's algorithm: split indices into under- and over-full.
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            // Donate mass from l to fill s's bucket.
            alias[s as usize] = l;
            prob[l as usize] = (prob[l as usize] + prob[s as usize]) - 1.0;
            if prob[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Remaining buckets are (numerically) full.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }

        AliasTable { prob, alias }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw one category index.
    #[inline]
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let i = rng.random_range(0..self.prob.len());
        if rng.random::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn empirical(weights: &[f64], draws: usize, seed: u64) -> Vec<f64> {
        let table = AliasTable::new(weights);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..draws {
            counts[table.sample(&mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn matches_weights_within_mc_error() {
        let weights = [2.0, 0.0, 5.0, 1.0, 2.0];
        let total: f64 = weights.iter().sum();
        let freqs = empirical(&weights, 400_000, 17);
        for (f, w) in freqs.iter().zip(&weights) {
            assert!((f - w / total).abs() < 0.004, "freq {f} vs {}", w / total);
        }
    }

    #[test]
    fn zero_weight_category_never_drawn() {
        let freqs = empirical(&[1.0, 0.0, 1.0], 100_000, 3);
        assert_eq!(freqs[1], 0.0);
    }

    #[test]
    fn single_category_always_drawn() {
        let freqs = empirical(&[42.0], 1000, 5);
        assert_eq!(freqs[0], 1.0);
    }

    #[test]
    fn uniform_weights_are_uniform() {
        let freqs = empirical(&[1.0; 8], 400_000, 9);
        for f in freqs {
            assert!((f - 0.125).abs() < 0.004, "freq {f}");
        }
    }

    #[test]
    fn unnormalized_weights_ok() {
        let a = empirical(&[1.0, 3.0], 200_000, 21);
        let b = empirical(&[100.0, 300.0], 200_000, 21);
        assert!((a[0] - b[0]).abs() < 1e-12, "same seed, same normalized weights");
    }

    #[test]
    #[should_panic(expected = "at least one category")]
    fn empty_rejected() {
        let _ = AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "must not sum to zero")]
    fn all_zero_rejected() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_rejected() {
        let _ = AliasTable::new(&[1.0, -0.5]);
    }
}
