//! Multinomial sampling (Algorithm 1, step 2).
//!
//! For every query–url pair with optimal output count `x*_ij`, the
//! sanitizer runs `x*_ij` independent trials; each trial samples user
//! `s_k` with probability `c_ijk / c_ij` (Eq. 1 is the induced pmf).
//! This module draws the resulting count vector `{x_ijk}`.

use rand::{Rng, RngExt};

use crate::alias::AliasTable;

/// How the per-trial categorical draw is implemented.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MultinomialStrategy {
    /// Pick automatically: alias table when `trials * categories` is
    /// large enough to amortize table construction, CDF scan otherwise.
    #[default]
    Auto,
    /// Always use a Walker/Vose alias table (O(1) per trial).
    Alias,
    /// Always scan the cumulative weights (O(categories) per trial,
    /// zero setup).
    CdfScan,
}

/// Draw a multinomial sample: `trials` independent categorical draws
/// over `weights` (non-negative, not all zero), returning per-category
/// counts that sum to `trials`.
///
/// With `trials == 0` returns all zeros without touching the RNG.
pub fn sample_multinomial<R: Rng>(
    rng: &mut R,
    weights: &[u64],
    trials: u64,
    strategy: MultinomialStrategy,
) -> Vec<u64> {
    assert!(!weights.is_empty(), "multinomial needs at least one category");
    let total: u64 = weights.iter().sum();
    assert!(total > 0, "weights must not sum to zero");

    let mut counts = vec![0u64; weights.len()];
    if trials == 0 {
        return counts;
    }

    let use_alias = match strategy {
        MultinomialStrategy::Alias => true,
        MultinomialStrategy::CdfScan => false,
        // Table construction is O(k); a scan is O(k) per trial. The
        // alias table pays off once there are more trials than a small
        // multiple of the category count.
        MultinomialStrategy::Auto => trials as usize >= weights.len().max(8),
    };

    if use_alias {
        let f64_weights: Vec<f64> = weights.iter().map(|&w| w as f64).collect();
        let table = AliasTable::new(&f64_weights);
        for _ in 0..trials {
            counts[table.sample(rng)] += 1;
        }
    } else {
        for _ in 0..trials {
            let mut draw = rng.random_range(0..total);
            for (i, &w) in weights.iter().enumerate() {
                if draw < w {
                    counts[i] += 1;
                    break;
                }
                draw -= w;
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn counts_sum_to_trials() {
        let mut rng = StdRng::seed_from_u64(1);
        for &strategy in
            &[MultinomialStrategy::Auto, MultinomialStrategy::Alias, MultinomialStrategy::CdfScan]
        {
            let counts = sample_multinomial(&mut rng, &[3, 1, 4, 1, 5], 1000, strategy);
            assert_eq!(counts.iter().sum::<u64>(), 1000);
        }
    }

    #[test]
    fn zero_trials_touch_nothing() {
        let mut rng = StdRng::seed_from_u64(2);
        let counts = sample_multinomial(&mut rng, &[1, 2], 0, MultinomialStrategy::Auto);
        assert_eq!(counts, vec![0, 0]);
    }

    #[test]
    fn zero_weight_category_gets_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        for &strategy in &[MultinomialStrategy::Alias, MultinomialStrategy::CdfScan] {
            let counts = sample_multinomial(&mut rng, &[5, 0, 5], 10_000, strategy);
            assert_eq!(counts[1], 0);
        }
    }

    #[test]
    fn expectation_matches_paper_property() {
        // E[x_ijk] = x_ij * c_ijk / c_ij (Section 3.2, property 2).
        let weights = [15u64, 7, 17]; // the "google, google.com" histogram
        let c_ij: u64 = weights.iter().sum();
        let x_ij = 20u64;
        let reps = 20_000;
        let mut rng = StdRng::seed_from_u64(4);
        let mut sums = [0u64; 3];
        for _ in 0..reps {
            let counts = sample_multinomial(&mut rng, &weights, x_ij, MultinomialStrategy::Auto);
            for (s, c) in sums.iter_mut().zip(&counts) {
                *s += c;
            }
        }
        for (k, &s) in sums.iter().enumerate() {
            let mean = s as f64 / reps as f64;
            let expect = x_ij as f64 * weights[k] as f64 / c_ij as f64;
            assert!((mean - expect).abs() < 0.05, "category {k}: mean {mean} vs {expect}");
        }
    }

    #[test]
    fn strategies_agree_in_distribution() {
        // Compare empirical marginals of the two strategies.
        let weights = [2u64, 8, 5];
        let total: u64 = weights.iter().sum();
        let trials = 50_000u64;
        let mut rng_a = StdRng::seed_from_u64(5);
        let mut rng_b = StdRng::seed_from_u64(6);
        let a = sample_multinomial(&mut rng_a, &weights, trials, MultinomialStrategy::Alias);
        let b = sample_multinomial(&mut rng_b, &weights, trials, MultinomialStrategy::CdfScan);
        for k in 0..3 {
            let fa = a[k] as f64 / trials as f64;
            let fb = b[k] as f64 / trials as f64;
            let p = weights[k] as f64 / total as f64;
            assert!((fa - p).abs() < 0.01, "alias marginal {fa} vs {p}");
            assert!((fb - p).abs() < 0.01, "scan marginal {fb} vs {p}");
        }
    }

    #[test]
    fn variance_matches_binomial_marginal() {
        // Var[x_ijk] = n p (1 - p) for the marginal.
        let weights = [1u64, 3];
        let n = 40u64;
        let p = 0.25f64;
        let reps = 30_000;
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..reps {
            let c = sample_multinomial(&mut rng, &weights, n, MultinomialStrategy::Auto)[0] as f64;
            sum += c;
            sumsq += c * c;
        }
        let mean = sum / reps as f64;
        let var = sumsq / reps as f64 - mean * mean;
        let expect = n as f64 * p * (1.0 - p);
        assert!((var - expect).abs() < 0.3, "var {var} vs {expect}");
    }

    #[test]
    #[should_panic(expected = "at least one category")]
    fn empty_weights_rejected() {
        let mut rng = StdRng::seed_from_u64(8);
        let _ = sample_multinomial(&mut rng, &[], 1, MultinomialStrategy::Auto);
    }

    #[test]
    #[should_panic(expected = "must not sum to zero")]
    fn zero_weights_rejected() {
        let mut rng = StdRng::seed_from_u64(9);
        let _ = sample_multinomial(&mut rng, &[0, 0], 1, MultinomialStrategy::Auto);
    }
}
