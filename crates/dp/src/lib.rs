//! # dpsan-dp
//!
//! Differential-privacy substrate for the `dpsan` workspace.
//!
//! Implements the probabilistic-differential-privacy machinery the paper
//! builds on:
//!
//! * [`params`] — validated `(ε, δ)` parameters and the collapsed budget
//!   `B = min{ε, ln 1/(1−δ)}` of Equation (4),
//! * [`laplace`] — the Laplace mechanism used for the optional
//!   end-to-end privacy of the count-computation step (Section 4.2),
//! * [`alias`] — Walker/Vose alias tables for O(1) categorical draws,
//! * [`multinomial`] — the multinomial user-ID sampler of Algorithm 1
//!   step 2, with both alias and CDF-scan strategies,
//! * [`composition`] — sequential composition bookkeeping for pipelines
//!   that consume several `(ε, δ)` budgets,
//! * [`obs`] — the ledger's metric handles (spend/refusal counters,
//!   spent/remaining gauges) for ledgers marked
//!   [`observed`](composition::BudgetLedger::set_observed),
//! * [`threshold`] — ZEALOUS-style noisy-threshold calibration (noise
//!   scale, release threshold, Laplace tail / reliability margins),
//! * [`response`] — one-bit randomized response with the linear
//!   reduction to user-level ε-LDP,
//! * [`verify`] — Monte-Carlo and exhaustive estimators of the
//!   probability ratios of Definition 2, used to validate mechanisms on
//!   tiny inputs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alias;
pub mod composition;
pub mod laplace;
pub mod multinomial;
pub mod obs;
pub mod params;
pub mod response;
pub mod threshold;
pub mod verify;

pub use alias::AliasTable;
pub use composition::{BudgetEntry, BudgetError, BudgetLedger};
pub use laplace::{laplace_mechanism, sample_laplace, LaplaceNoise};
pub use multinomial::{sample_multinomial, MultinomialStrategy};
pub use params::{PrivacyBudget, PrivacyParams};
pub use response::RandomizedResponse;
