//! Sequential composition bookkeeping and enforcement.
//!
//! The paper's full pipeline can spend privacy budget in two places: the
//! multinomial sanitization itself (`(ε, δ)`-probabilistic DP, Theorem 1)
//! and the optional Laplace step on the optimal counts (`ε′`-DP,
//! Section 4.2). [`BudgetLedger`] tracks the standard sequential
//! composition `(Σ ε_i, Σ δ_i)` so callers can assert a total budget.
//!
//! A ledger can additionally be given a **lifetime budget** with
//! [`BudgetLedger::with_lifetime`]. A capped ledger *enforces* sequential
//! composition: [`try_spend`](BudgetLedger::try_spend) and
//! [`try_spend_all`](BudgetLedger::try_spend_all) refuse (return
//! [`BudgetError`] and record nothing) any expenditure whose composed
//! total would exceed the cap. This is what keeps repeated publication
//! from silently eroding the guarantee — a re-release past the lifetime
//! `(ε, δ)` is an error, not a bigger number in a report.

use std::error::Error;
use std::fmt;

/// One recorded expenditure.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetEntry {
    /// What the budget was spent on (free-form label).
    pub label: String,
    /// ε spent.
    pub epsilon: f64,
    /// δ spent (0 for pure-ε mechanisms such as Laplace).
    pub delta: f64,
}

/// A refused expenditure: composing it onto the ledger would exceed the
/// configured lifetime budget. The ledger is unchanged.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetError {
    /// Label of the refused expenditure (first offending entry for a
    /// batch refusal).
    pub label: String,
    /// Composed ε the refused spend would have reached.
    pub would_epsilon: f64,
    /// Composed δ the refused spend would have reached.
    pub would_delta: f64,
    /// Lifetime ε cap.
    pub cap_epsilon: f64,
    /// Lifetime δ cap.
    pub cap_delta: f64,
}

impl fmt::Display for BudgetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "budget exhausted: \"{}\" would compose to (ε={:.6}, δ={:.6}) past the lifetime cap (ε={:.6}, δ={:.6})",
            self.label, self.would_epsilon, self.would_delta, self.cap_epsilon, self.cap_delta
        )
    }
}

impl Error for BudgetError {}

/// An append-only ledger of `(ε, δ)` expenditures with sequential
/// composition totals and an optional enforced lifetime cap.
#[derive(Debug, Default, Clone)]
pub struct BudgetLedger {
    entries: Vec<BudgetEntry>,
    /// Lifetime `(ε, δ)` cap enforced by the fallible spend paths;
    /// `None` means record-only (the seed behavior).
    lifetime: Option<(f64, f64)>,
    /// Whether this ledger reports into the process-wide metrics
    /// registry ([`crate::obs`]). Off by default so per-release view
    /// ledgers and scratch ledgers never double-count; the planner
    /// layer marks its one authoritative ledger observed.
    observed: bool,
}

impl BudgetLedger {
    /// New empty ledger with no lifetime cap (record-only).
    pub fn new() -> Self {
        Self::default()
    }

    /// New empty ledger that enforces the lifetime budget `(ε, δ)`:
    /// fallible spends past the cap are refused.
    pub fn with_lifetime(epsilon: f64, delta: f64) -> Self {
        assert!(epsilon.is_finite() && epsilon >= 0.0, "lifetime epsilon must be finite and >= 0");
        assert!(
            delta.is_finite() && (0.0..1.0).contains(&delta),
            "lifetime delta must be in [0, 1)"
        );
        BudgetLedger { entries: Vec::new(), lifetime: Some((epsilon, delta)), observed: false }
    }

    /// The lifetime `(ε, δ)` cap, if one is enforced.
    pub fn lifetime(&self) -> Option<(f64, f64)> {
        self.lifetime
    }

    /// Mark this ledger as the process's authoritative one: every spend
    /// and refusal from here on reports into the metrics registry, and
    /// the absolute spent/remaining gauges are synced to the ledger's
    /// current totals immediately (so a ledger restored from durable
    /// history re-establishes the gauges without re-counting the
    /// replayed entries as fresh spend events).
    ///
    /// Telemetry is observational only — an observed ledger composes
    /// and refuses exactly like an unobserved one. At most one ledger
    /// per process should be observed; the spent/remaining gauges
    /// describe a single ledger, not a sum over ledgers.
    pub fn set_observed(&mut self, observed: bool) {
        self.observed = observed;
        if observed {
            self.sync_gauges();
        }
    }

    /// Builder-style [`set_observed`](Self::set_observed).
    pub fn observed(mut self) -> Self {
        self.set_observed(true);
        self
    }

    /// Whether this ledger reports into the metrics registry.
    pub fn is_observed(&self) -> bool {
        self.observed
    }

    fn sync_gauges(&self) {
        crate::obs::epsilon_spent().set(self.total_epsilon());
        crate::obs::delta_spent().set(self.total_delta());
        if let Some((re, rd)) = self.remaining() {
            crate::obs::epsilon_remaining().set(re);
            crate::obs::delta_remaining().set(rd);
        }
    }

    /// Record an expenditure unconditionally (one-shot paths).
    ///
    /// Panics on out-of-domain values; never refuses. On a capped ledger
    /// prefer [`try_spend`](Self::try_spend), which enforces the cap.
    pub fn spend(&mut self, label: impl Into<String>, epsilon: f64, delta: f64) {
        Self::check_domain(epsilon, delta);
        self.entries.push(BudgetEntry { label: label.into(), epsilon, delta });
        if self.observed {
            crate::obs::spends_total().inc();
            self.sync_gauges();
        }
    }

    /// Record an expenditure, refusing it (ledger unchanged) if the
    /// composed total would exceed the lifetime cap.
    pub fn try_spend(
        &mut self,
        label: impl Into<String>,
        epsilon: f64,
        delta: f64,
    ) -> Result<(), BudgetError> {
        self.try_spend_all(&[BudgetEntry { label: label.into(), epsilon, delta }])
    }

    /// Record a batch of expenditures **atomically**: either every entry
    /// fits under the lifetime cap and all are appended, or none are and
    /// the composed overflow is reported. A release that spends twice
    /// (sampling + Laplace) charges both entries through one call so a
    /// refusal can never leave a half-charged ledger.
    pub fn try_spend_all(&mut self, batch: &[BudgetEntry]) -> Result<(), BudgetError> {
        for e in batch {
            Self::check_domain(e.epsilon, e.delta);
        }
        if let Some((cap_e, cap_d)) = self.lifetime {
            let mut eps = self.total_epsilon();
            let mut del = self.total_delta();
            for e in batch {
                eps += e.epsilon;
                del += e.delta;
                if eps > cap_e + 1e-12 || del > cap_d + 1e-12 {
                    if self.observed {
                        crate::obs::refusals_total().inc();
                    }
                    return Err(BudgetError {
                        label: e.label.clone(),
                        would_epsilon: eps,
                        would_delta: del,
                        cap_epsilon: cap_e,
                        cap_delta: cap_d,
                    });
                }
            }
        }
        self.entries.extend_from_slice(batch);
        if self.observed {
            crate::obs::spends_total().add(batch.len() as u64);
            self.sync_gauges();
        }
        Ok(())
    }

    /// Remaining `(ε, δ)` under the lifetime cap, or `None` if the
    /// ledger is uncapped.
    pub fn remaining(&self) -> Option<(f64, f64)> {
        self.lifetime
            .map(|(e, d)| ((e - self.total_epsilon()).max(0.0), (d - self.total_delta()).max(0.0)))
    }

    fn check_domain(epsilon: f64, delta: f64) {
        assert!(epsilon.is_finite() && epsilon >= 0.0, "epsilon must be finite and >= 0");
        assert!(delta.is_finite() && (0.0..1.0).contains(&delta), "delta must be in [0, 1)");
    }

    /// Total ε under sequential composition.
    pub fn total_epsilon(&self) -> f64 {
        self.entries.iter().map(|e| e.epsilon).sum()
    }

    /// Total δ under sequential composition.
    pub fn total_delta(&self) -> f64 {
        self.entries.iter().map(|e| e.delta).sum()
    }

    /// Whether the composed totals fit within `(ε, δ)`.
    pub fn within(&self, epsilon: f64, delta: f64) -> bool {
        self.total_epsilon() <= epsilon + 1e-12 && self.total_delta() <= delta + 1e-12
    }

    /// The recorded entries in order.
    pub fn entries(&self) -> &[BudgetEntry] {
        &self.entries
    }
}

impl fmt::Display for BudgetLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.lifetime {
            Some((e, d)) => writeln!(
                f,
                "privacy ledger (ε={:.4}, δ={:.4}; lifetime ε={:.4}, δ={:.4}):",
                self.total_epsilon(),
                self.total_delta(),
                e,
                d
            )?,
            None => writeln!(
                f,
                "privacy ledger (ε={:.4}, δ={:.4}):",
                self.total_epsilon(),
                self.total_delta()
            )?,
        }
        for e in &self.entries {
            writeln!(f, "  {:<32} ε={:.4} δ={:.4}", e.label, e.epsilon, e.delta)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_compose_sequentially() {
        let mut l = BudgetLedger::new();
        l.spend("sampling", 0.5, 0.1);
        l.spend("laplace counts", 0.2, 0.0);
        assert!((l.total_epsilon() - 0.7).abs() < 1e-12);
        assert!((l.total_delta() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn within_checks_both_coordinates() {
        let mut l = BudgetLedger::new();
        l.spend("a", 0.5, 0.05);
        assert!(l.within(0.5, 0.05));
        assert!(!l.within(0.4, 0.05));
        assert!(!l.within(0.5, 0.04));
    }

    #[test]
    fn empty_ledger_is_free() {
        let l = BudgetLedger::new();
        assert_eq!(l.total_epsilon(), 0.0);
        assert!(l.within(0.0, 0.0));
        assert!(l.entries().is_empty());
        assert_eq!(l.lifetime(), None);
        assert_eq!(l.remaining(), None);
    }

    #[test]
    fn display_lists_entries() {
        let mut l = BudgetLedger::new();
        l.spend("sampling", 0.5, 0.1);
        let s = l.to_string();
        assert!(s.contains("sampling"));
        assert!(s.contains("ε=0.5"));
    }

    #[test]
    #[should_panic(expected = "delta must be in [0, 1)")]
    fn rejects_delta_one() {
        let mut l = BudgetLedger::new();
        l.spend("bad", 0.1, 1.0);
    }

    #[test]
    fn uncapped_try_spend_never_refuses() {
        let mut l = BudgetLedger::new();
        for _ in 0..100 {
            l.try_spend("r", 10.0, 0.009).unwrap();
        }
        assert_eq!(l.entries().len(), 100);
    }

    #[test]
    fn capped_try_spend_refuses_past_lifetime() {
        let mut l = BudgetLedger::with_lifetime(1.0, 0.2);
        l.try_spend("r1", 0.6, 0.1).unwrap();
        let err = l.try_spend("r2", 0.6, 0.05).unwrap_err();
        assert_eq!(err.label, "r2");
        assert!(err.would_epsilon > 1.0);
        assert_eq!(l.entries().len(), 1, "refused spend records nothing");
        // A smaller spend that fits still goes through afterwards.
        l.try_spend("r3", 0.4, 0.1).unwrap();
        assert!(l.within(1.0, 0.2));
    }

    #[test]
    fn capped_try_spend_refuses_on_delta_alone() {
        let mut l = BudgetLedger::with_lifetime(10.0, 0.1);
        l.try_spend("r1", 0.1, 0.08).unwrap();
        assert!(l.try_spend("r2", 0.1, 0.08).is_err());
    }

    #[test]
    fn try_spend_all_is_atomic() {
        let mut l = BudgetLedger::with_lifetime(1.0, 0.5);
        let batch = vec![
            BudgetEntry { label: "sampling".into(), epsilon: 0.7, delta: 0.1 },
            BudgetEntry { label: "laplace".into(), epsilon: 0.7, delta: 0.0 },
        ];
        let err = l.try_spend_all(&batch).unwrap_err();
        assert_eq!(err.label, "laplace", "second entry is the one that overflows");
        assert!(l.entries().is_empty(), "no partial charge on batch refusal");
        // The same batch fits on a bigger ledger.
        let mut big = BudgetLedger::with_lifetime(2.0, 0.5);
        big.try_spend_all(&batch).unwrap();
        assert_eq!(big.entries().len(), 2);
    }

    #[test]
    fn exact_cap_is_allowed() {
        let mut l = BudgetLedger::with_lifetime(1.0, 0.1);
        l.try_spend("a", 0.5, 0.05).unwrap();
        l.try_spend("b", 0.5, 0.05).unwrap();
        assert!(l.try_spend("c", 1e-9, 0.0).is_err());
    }

    #[test]
    fn remaining_tracks_cap() {
        let mut l = BudgetLedger::with_lifetime(1.0, 0.2);
        l.try_spend("a", 0.25, 0.05).unwrap();
        let (re, rd) = l.remaining().unwrap();
        assert!((re - 0.75).abs() < 1e-12);
        assert!((rd - 0.15).abs() < 1e-12);
    }

    #[test]
    fn display_shows_lifetime_cap() {
        let l = BudgetLedger::with_lifetime(1.0, 0.25);
        assert!(l.to_string().contains("lifetime"));
    }

    /// One test owns every assertion about the global budget series:
    /// the registry is process-wide, so splitting this across tests
    /// would race under the parallel test runner.
    #[test]
    fn observed_ledger_reports_spends_refusals_and_gauges() {
        let spends0 = crate::obs::spends_total().get();
        let refusals0 = crate::obs::refusals_total().get();

        // Unobserved ledgers are silent.
        let mut quiet = BudgetLedger::new();
        quiet.spend("view entry", 0.3, 0.01);
        assert_eq!(crate::obs::spends_total().get(), spends0);

        // Marking observed syncs the absolute gauges to the restored
        // history without counting it as fresh spends.
        let mut l = BudgetLedger::with_lifetime(1.0, 0.2);
        l.spend("replayed release", 0.25, 0.05);
        l.set_observed(true);
        assert!(l.is_observed());
        assert_eq!(crate::obs::spends_total().get(), spends0);
        assert!((crate::obs::epsilon_spent().get() - 0.25).abs() < 1e-12);
        assert!((crate::obs::epsilon_remaining().get() - 0.75).abs() < 1e-12);

        // Live spends count and move the gauges.
        l.try_spend("release 2", 0.25, 0.05).unwrap();
        assert_eq!(crate::obs::spends_total().get(), spends0 + 1);
        assert!((crate::obs::epsilon_spent().get() - 0.5).abs() < 1e-12);
        assert!((crate::obs::delta_remaining().get() - 0.1).abs() < 1e-12);

        // A refusal counts once and leaves the spend gauges alone.
        assert!(l.try_spend("too big", 0.9, 0.0).is_err());
        assert_eq!(crate::obs::refusals_total().get(), refusals0 + 1);
        assert!((crate::obs::epsilon_spent().get() - 0.5).abs() < 1e-12);

        // Observation survives clone-through (the builder form).
        let observed = BudgetLedger::new().observed();
        assert!(observed.is_observed());
    }
}
