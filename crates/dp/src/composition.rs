//! Sequential composition bookkeeping.
//!
//! The paper's full pipeline can spend privacy budget in two places: the
//! multinomial sanitization itself (`(ε, δ)`-probabilistic DP, Theorem 1)
//! and the optional Laplace step on the optimal counts (`ε′`-DP,
//! Section 4.2). [`BudgetLedger`] tracks the standard sequential
//! composition `(Σ ε_i, Σ δ_i)` so callers can assert a total budget.

use std::fmt;

/// One recorded expenditure.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetEntry {
    /// What the budget was spent on (free-form label).
    pub label: String,
    /// ε spent.
    pub epsilon: f64,
    /// δ spent (0 for pure-ε mechanisms such as Laplace).
    pub delta: f64,
}

/// An append-only ledger of `(ε, δ)` expenditures with sequential
/// composition totals.
#[derive(Debug, Default, Clone)]
pub struct BudgetLedger {
    entries: Vec<BudgetEntry>,
}

impl BudgetLedger {
    /// New empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an expenditure.
    pub fn spend(&mut self, label: impl Into<String>, epsilon: f64, delta: f64) {
        assert!(epsilon.is_finite() && epsilon >= 0.0, "epsilon must be finite and >= 0");
        assert!(delta.is_finite() && (0.0..1.0).contains(&delta), "delta must be in [0, 1)");
        self.entries.push(BudgetEntry { label: label.into(), epsilon, delta });
    }

    /// Total ε under sequential composition.
    pub fn total_epsilon(&self) -> f64 {
        self.entries.iter().map(|e| e.epsilon).sum()
    }

    /// Total δ under sequential composition.
    pub fn total_delta(&self) -> f64 {
        self.entries.iter().map(|e| e.delta).sum()
    }

    /// Whether the composed totals fit within `(ε, δ)`.
    pub fn within(&self, epsilon: f64, delta: f64) -> bool {
        self.total_epsilon() <= epsilon + 1e-12 && self.total_delta() <= delta + 1e-12
    }

    /// The recorded entries in order.
    pub fn entries(&self) -> &[BudgetEntry] {
        &self.entries
    }
}

impl fmt::Display for BudgetLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "privacy ledger (ε={:.4}, δ={:.4}):",
            self.total_epsilon(),
            self.total_delta()
        )?;
        for e in &self.entries {
            writeln!(f, "  {:<32} ε={:.4} δ={:.4}", e.label, e.epsilon, e.delta)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_compose_sequentially() {
        let mut l = BudgetLedger::new();
        l.spend("sampling", 0.5, 0.1);
        l.spend("laplace counts", 0.2, 0.0);
        assert!((l.total_epsilon() - 0.7).abs() < 1e-12);
        assert!((l.total_delta() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn within_checks_both_coordinates() {
        let mut l = BudgetLedger::new();
        l.spend("a", 0.5, 0.05);
        assert!(l.within(0.5, 0.05));
        assert!(!l.within(0.4, 0.05));
        assert!(!l.within(0.5, 0.04));
    }

    #[test]
    fn empty_ledger_is_free() {
        let l = BudgetLedger::new();
        assert_eq!(l.total_epsilon(), 0.0);
        assert!(l.within(0.0, 0.0));
        assert!(l.entries().is_empty());
    }

    #[test]
    fn display_lists_entries() {
        let mut l = BudgetLedger::new();
        l.spend("sampling", 0.5, 0.1);
        let s = l.to_string();
        assert!(s.contains("sampling"));
        assert!(s.contains("ε=0.5"));
    }

    #[test]
    #[should_panic(expected = "delta must be in [0, 1)")]
    fn rejects_delta_one() {
        let mut l = BudgetLedger::new();
        l.spend("bad", 0.1, 1.0);
    }
}
