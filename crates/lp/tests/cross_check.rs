//! Cross-checks between the revised simplex and the independent dense
//! reference implementation, plus property tests on random models.

use dpsan_lp::dense_simplex::solve_dense;
use dpsan_lp::mip::{solve_mip, BbOptions};
use dpsan_lp::presolve::presolve;
use dpsan_lp::problem::{Problem, RowBounds, Sense, VarBounds};
use dpsan_lp::simplex::{solve, SimplexOptions, SolveStatus};
use proptest::prelude::*;

/// A random bounded LP: maximize over non-negative variables with
/// `≤` rows whose coefficients are non-negative and whose diagonal-ish
/// structure guarantees bounded optima.
fn random_packing_lp(n: usize, m: usize, coefs: Vec<f64>, rhs: Vec<f64>) -> Problem {
    let mut p = Problem::new(Sense::Maximize);
    for _ in 0..n {
        p.add_col(1.0, VarBounds::non_negative()).unwrap();
    }
    let mut it = coefs.into_iter();
    for (i, &rhs_i) in rhs.iter().enumerate().take(m) {
        let entries: Vec<(usize, f64)> =
            (0..n).filter_map(|j| it.next().map(|v| (j, v))).filter(|&(_, v)| v > 0.01).collect();
        let entries = if entries.is_empty() { vec![(i % n, 0.5)] } else { entries };
        p.add_row(RowBounds::at_most(rhs_i), &entries).unwrap();
    }
    // cover all columns to keep the LP bounded
    let cover: Vec<(usize, f64)> = (0..n).map(|j| (j, 0.1)).collect();
    p.add_row(RowBounds::at_most(20.0), &cover).unwrap();
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn revised_matches_dense_on_random_packing(
        n in 2usize..8,
        m in 1usize..6,
        coefs in prop::collection::vec(0.0f64..2.0, 48),
        rhs in prop::collection::vec(0.5f64..4.0, 6),
    ) {
        let p = random_packing_lp(n, m, coefs, rhs);
        let fast = solve(&p, &SimplexOptions::default()).unwrap();
        let slow = solve_dense(&p);
        prop_assert_eq!(fast.status, SolveStatus::Optimal);
        prop_assert_eq!(slow.status, SolveStatus::Optimal);
        prop_assert!((fast.objective - slow.objective).abs() < 1e-5,
            "revised {} vs dense {}", fast.objective, slow.objective);
        prop_assert!(p.max_violation(&fast.x) < 1e-6);
    }

    #[test]
    fn scaling_does_not_change_optimum(
        n in 2usize..6,
        m in 1usize..5,
        coefs in prop::collection::vec(0.0f64..2.0, 30),
        rhs in prop::collection::vec(0.5f64..4.0, 5),
    ) {
        let p = random_packing_lp(n, m, coefs, rhs);
        let with = solve(&p, &SimplexOptions { scaling: true, ..Default::default() }).unwrap();
        let without = solve(&p, &SimplexOptions { scaling: false, ..Default::default() }).unwrap();
        prop_assert!((with.objective - without.objective).abs() < 1e-5,
            "scaled {} vs unscaled {}", with.objective, without.objective);
    }

    #[test]
    fn presolve_preserves_optimum(
        n in 2usize..6,
        m in 1usize..5,
        coefs in prop::collection::vec(0.0f64..2.0, 30),
        rhs in prop::collection::vec(0.5f64..4.0, 5),
    ) {
        let p = random_packing_lp(n, m, coefs, rhs);
        let direct = solve(&p, &SimplexOptions::default()).unwrap();
        let pre = presolve(&p);
        prop_assert!(pre.verdict.is_none());
        let sub = solve(&pre.reduced, &SimplexOptions::default()).unwrap();
        let lifted = pre.postsolve(&sub.x);
        prop_assert!((p.objective_value(&lifted) - direct.objective).abs() < 1e-5);
        prop_assert!(p.max_violation(&lifted) < 1e-6);
    }

    #[test]
    fn bb_beats_or_matches_rounding_and_is_feasible(
        n in 2usize..7,
        m in 1usize..5,
        coefs in prop::collection::vec(0.0f64..1.5, 35),
        rhs in prop::collection::vec(0.6f64..2.5, 5),
    ) {
        let mut p = random_packing_lp(n, m, coefs, rhs);
        for j in 0..n {
            p.set_bounds(j, VarBounds::unit()).unwrap();
            p.set_integer(j).unwrap();
        }
        let s = solve_mip(&p, &BbOptions::default());
        prop_assert_eq!(s.status, dpsan_lp::mip::MipStatus::Optimal);
        prop_assert!(p.max_violation(&s.x) < 1e-6);
        prop_assert!(p.is_integral(&s.x, 1e-6));
        // exact optimum dominates any heuristic point
        if let Some(hx) = dpsan_lp::mip::lp_round_packing(&p, &SimplexOptions::default()) {
            prop_assert!(s.objective >= p.objective_value(&hx) - 1e-6);
        }
    }

    #[test]
    fn lp_relaxation_bounds_the_integer_optimum(
        n in 2usize..7,
        m in 1usize..5,
        coefs in prop::collection::vec(0.0f64..1.5, 35),
        rhs in prop::collection::vec(0.6f64..2.5, 5),
    ) {
        let mut p = random_packing_lp(n, m, coefs, rhs);
        for j in 0..n {
            p.set_bounds(j, VarBounds::unit()).unwrap();
            p.set_integer(j).unwrap();
        }
        let relax = solve(&p, &SimplexOptions::default()).unwrap();
        let exact = solve_mip(&p, &BbOptions::default());
        prop_assert!(relax.objective >= exact.objective - 1e-6,
            "LP {} < IP {}", relax.objective, exact.objective);
    }
}

#[test]
fn moderate_lp_solves_quickly_and_feasibly() {
    // a 200-var, 80-row packing LP in the O-UMP shape
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    let mut rng = StdRng::seed_from_u64(7);
    let n = 200;
    let m = 80;
    let mut p = Problem::new(Sense::Maximize);
    for _ in 0..n {
        p.add_col(1.0, VarBounds::non_negative()).unwrap();
    }
    for _ in 0..m {
        let k = rng.random_range(3..12);
        let entries: Vec<(usize, f64)> =
            (0..k).map(|_| (rng.random_range(0..n), rng.random::<f64>() * 0.5 + 0.001)).collect();
        p.add_row(RowBounds::at_most(0.7), &entries).unwrap();
    }
    let cover: Vec<(usize, f64)> = (0..n).map(|j| (j, 0.01)).collect();
    p.add_row(RowBounds::at_most(30.0), &cover).unwrap();
    let s = solve(&p, &SimplexOptions::default()).unwrap();
    assert_eq!(s.status, SolveStatus::Optimal);
    assert!(p.max_violation(&s.x) < 1e-6, "violation {}", p.max_violation(&s.x));
    assert!(s.objective > 0.0);
}

/// The F-UMP shape (packing rows + equality + abs-split ≥ rows) at a
/// given budget rhs; shared by the dense- and sparse-route sweeps.
fn fump_sweep_problem(budget: f64) -> Problem {
    let n = 4;
    let total = 6.0;
    let targets = [0.4, 0.3, 0.2, 0.1];
    let mut p = Problem::new(Sense::Minimize);
    let xs: Vec<usize> =
        (0..n).map(|_| p.add_col(0.0, VarBounds { lower: 0.0, upper: 9.0 }).unwrap()).collect();
    let ys: Vec<usize> =
        (0..n).map(|_| p.add_col(1.0, VarBounds::non_negative()).unwrap()).collect();
    p.add_row(RowBounds::at_most(budget), &[(xs[0], 0.8), (xs[1], 0.4)]).unwrap();
    p.add_row(RowBounds::at_most(budget), &[(xs[2], 0.5), (xs[3], 0.3)]).unwrap();
    let all: Vec<(usize, f64)> = xs.iter().map(|&j| (j, 1.0)).collect();
    p.add_row(RowBounds::equal(total), &all).unwrap();
    for f in 0..n {
        p.add_row(RowBounds::at_least(-targets[f]), &[(ys[f], 1.0), (xs[f], -1.0 / total)])
            .unwrap();
        p.add_row(RowBounds::at_least(targets[f]), &[(ys[f], 1.0), (xs[f], 1.0 / total)]).unwrap();
    }
    p
}

#[test]
fn dual_reopt_matches_dense_on_fump_shaped_rhs_sweep() {
    // swept over its budget rhs: dual reoptimization from the previous
    // basis must track the independent dense solver at every step
    use dpsan_lp::simplex::{solve_parametric_cached, ReoptCache, StepHint};
    let build = fump_sweep_problem;
    let opts = SimplexOptions::default();
    let mut cache = ReoptCache::new();
    let first =
        solve_parametric_cached(&build(4.0), &opts, None, StepHint::Fresh, &mut cache).unwrap();
    assert_eq!(first.solution.status, SolveStatus::Optimal);
    let mut basis = first.basis;
    for budget in [3.0, 2.2, 2.8, 1.9, 3.5] {
        let p = build(budget);
        let fast =
            solve_parametric_cached(&p, &opts, basis.as_ref(), StepHint::RhsOnly, &mut cache)
                .unwrap();
        let slow = solve_dense(&p);
        assert_eq!(fast.solution.status, SolveStatus::Optimal, "budget {budget}");
        assert_eq!(slow.status, SolveStatus::Optimal, "budget {budget}");
        // the equality row's fixed slack must not scare the dual path
        // off (its reduced cost is an equality dual — any sign is fine)
        assert_eq!(
            fast.stats.algorithm,
            dpsan_lp::simplex::Algorithm::DualReopt,
            "budget {budget}: rhs-only F-UMP steps ride the dual path: {:?}",
            fast.stats
        );
        assert!(
            (fast.solution.objective - slow.objective).abs() < 1e-9,
            "budget {budget}: dual {} vs dense {}",
            fast.solution.objective,
            slow.objective
        );
        assert!(p.max_violation(&fast.solution.x) < 1e-7, "budget {budget}");
        basis = fast.basis;
    }
}

#[test]
fn fump_shaped_lp_with_equality_and_abs_split() {
    // minimize sum |x_f/T - target_f| with a fixed total T and packing
    // rows — the F-UMP shape — cross-checked against the dense solver.
    let n = 5;
    let total = 10.0;
    let targets = [0.35, 0.25, 0.2, 0.15, 0.05];
    let mut p = Problem::new(Sense::Minimize);
    let xs: Vec<usize> =
        (0..n).map(|_| p.add_col(0.0, VarBounds::non_negative()).unwrap()).collect();
    let ys: Vec<usize> =
        (0..n).map(|_| p.add_col(1.0, VarBounds::non_negative()).unwrap()).collect();
    // budget rows
    p.add_row(RowBounds::at_most(6.0), &[(xs[0], 0.9), (xs[1], 0.3)]).unwrap();
    p.add_row(RowBounds::at_most(6.0), &[(xs[2], 0.4), (xs[3], 0.6), (xs[4], 0.2)]).unwrap();
    // total
    let all: Vec<(usize, f64)> = xs.iter().map(|&j| (j, 1.0)).collect();
    p.add_row(RowBounds::equal(total), &all).unwrap();
    // |x/T - t| split
    for f in 0..n {
        p.add_row(RowBounds::at_least(-targets[f]), &[(ys[f], 1.0), (xs[f], -1.0 / total)])
            .unwrap();
        p.add_row(RowBounds::at_least(targets[f]), &[(ys[f], 1.0), (xs[f], 1.0 / total)]).unwrap();
    }
    let fast = solve(&p, &SimplexOptions::default()).unwrap();
    let slow = solve_dense(&p);
    assert_eq!(fast.status, SolveStatus::Optimal);
    assert_eq!(slow.status, SolveStatus::Optimal);
    assert!(
        (fast.objective - slow.objective).abs() < 1e-6,
        "revised {} vs dense {}",
        fast.objective,
        slow.objective
    );
    assert!(p.max_violation(&fast.x) < 1e-6);
}

// ---------------------------------------------------------------------
// sparse route vs dense route (the dense route is the 1e-9 oracle)
// ---------------------------------------------------------------------

const ROUTE_TOL: f64 = 1e-9;

fn force_sparse() -> SimplexOptions {
    SimplexOptions { sparse: Some(true), ..Default::default() }
}

fn force_dense() -> SimplexOptions {
    SimplexOptions { sparse: Some(false), ..Default::default() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sparse_route_matches_dense_route_on_random_packing(
        n in 2usize..8,
        m in 1usize..6,
        coefs in prop::collection::vec(0.0f64..2.0, 48),
        rhs in prop::collection::vec(0.5f64..4.0, 6),
    ) {
        let p = random_packing_lp(n, m, coefs, rhs);
        let sp = solve(&p, &force_sparse()).unwrap();
        let de = solve(&p, &force_dense()).unwrap();
        prop_assert_eq!(sp.status, SolveStatus::Optimal);
        prop_assert_eq!(de.status, SolveStatus::Optimal);
        prop_assert!((sp.objective - de.objective).abs() < ROUTE_TOL,
            "sparse {} vs dense {}", sp.objective, de.objective);
        prop_assert!(p.max_violation(&sp.x) < 1e-7);
    }
}

#[test]
fn sparse_route_matches_dense_on_fump_and_moderate_shapes() {
    // the real tiny F-UMP shape across its budget sweep, plus a
    // moderate random packing LP: forced-sparse and forced-dense
    // routes must land on the same objective to 1e-9
    for budget in [4.0, 3.0, 2.2, 1.9] {
        let p = fump_sweep_problem(budget);
        let sp = solve(&p, &force_sparse()).unwrap();
        let de = solve(&p, &force_dense()).unwrap();
        assert_eq!(sp.status, SolveStatus::Optimal, "budget {budget}");
        assert!(
            (sp.objective - de.objective).abs() < ROUTE_TOL,
            "budget {budget}: sparse {} vs dense {}",
            sp.objective,
            de.objective
        );
        assert!(p.max_violation(&sp.x) < 1e-7, "budget {budget}");
    }

    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    let mut rng = StdRng::seed_from_u64(11);
    let n = 300;
    let m = 120;
    let mut p = Problem::new(Sense::Maximize);
    for _ in 0..n {
        p.add_col(1.0, VarBounds::non_negative()).unwrap();
    }
    for _ in 0..m {
        let k = rng.random_range(3..10);
        let entries: Vec<(usize, f64)> =
            (0..k).map(|_| (rng.random_range(0..n), rng.random::<f64>() * 0.5 + 0.001)).collect();
        p.add_row(RowBounds::at_most(0.7), &entries).unwrap();
    }
    let cover: Vec<(usize, f64)> = (0..n).map(|j| (j, 0.01)).collect();
    p.add_row(RowBounds::at_most(30.0), &cover).unwrap();
    let sp = solve(&p, &force_sparse()).unwrap();
    let de = solve(&p, &force_dense()).unwrap();
    assert_eq!(sp.status, SolveStatus::Optimal);
    assert!(
        (sp.objective - de.objective).abs() < ROUTE_TOL * sp.objective.abs().max(1.0),
        "sparse {} vs dense {}",
        sp.objective,
        de.objective
    );
    assert!(p.max_violation(&sp.x) < 1e-7);
}

#[test]
fn auto_routing_selects_sparse_at_scale_and_matches_dense() {
    // an O-UMP-shaped block LP with ≥ 512 rows routes sparse by
    // default; the answer must still match the forced-dense oracle
    use dpsan_lp::simplex::solve_with_basis;
    let blocks = 280; // 280 users x 2 rows/user = 560 rows ≥ 512
    let mut p = Problem::new(Sense::Maximize);
    let mut cols = Vec::new();
    for _ in 0..blocks {
        for _ in 0..3 {
            cols.push(p.add_col(1.0, VarBounds { lower: 0.0, upper: 2.0 }).unwrap());
        }
    }
    for b in 0..blocks {
        let base = 3 * b;
        let w = 0.3 + 0.4 * ((b % 7) as f64) / 7.0;
        p.add_row(
            RowBounds::at_most(1.5),
            &[(cols[base], w), (cols[base + 1], 0.9 - w), (cols[base + 2], 0.5)],
        )
        .unwrap();
        p.add_row(RowBounds::at_most(1.0), &[(cols[base + 1], 0.6), (cols[base + 2], 0.2)])
            .unwrap();
    }
    let auto = solve_with_basis(&p, &SimplexOptions::default(), None).unwrap();
    assert!(auto.stats.sparse, "560-row LP must route sparse by default");
    assert_eq!(auto.solution.status, SolveStatus::Optimal);
    let de = solve(&p, &force_dense()).unwrap();
    assert!(
        (auto.solution.objective - de.objective).abs() < ROUTE_TOL * de.objective.abs().max(1.0),
        "sparse {} vs dense {}",
        auto.solution.objective,
        de.objective
    );
}

#[test]
fn dual_reopt_sparse_route_matches_dense_oracle_on_rhs_sweep() {
    // the same F-UMP rhs sweep as the dense-route test, but forced onto
    // the sparse dual path: must stay on DualReopt and track the
    // independent dense solver to 1e-9 at every step
    use dpsan_lp::simplex::{solve_parametric_cached, ReoptCache, StepHint};
    let opts = force_sparse();
    let mut cache = ReoptCache::new();
    let first =
        solve_parametric_cached(&fump_sweep_problem(4.0), &opts, None, StepHint::Fresh, &mut cache)
            .unwrap();
    assert_eq!(first.solution.status, SolveStatus::Optimal);
    assert!(first.stats.sparse, "forced sparse");
    let mut basis = first.basis;
    for budget in [3.0, 2.2, 2.8, 1.9, 3.5] {
        let p = fump_sweep_problem(budget);
        let fast =
            solve_parametric_cached(&p, &opts, basis.as_ref(), StepHint::RhsOnly, &mut cache)
                .unwrap();
        let slow = solve_dense(&p);
        assert_eq!(fast.solution.status, SolveStatus::Optimal, "budget {budget}");
        assert_eq!(
            fast.stats.algorithm,
            dpsan_lp::simplex::Algorithm::DualReopt,
            "budget {budget}: rhs-only steps ride the dual path even when sparse: {:?}",
            fast.stats
        );
        assert!(
            (fast.solution.objective - slow.objective).abs() < ROUTE_TOL,
            "budget {budget}: sparse dual {} vs dense {}",
            fast.solution.objective,
            slow.objective
        );
        assert!(p.max_violation(&fast.solution.x) < 1e-7, "budget {budget}");
        basis = fast.basis;
    }
}

#[test]
fn long_eta_chain_matches_refactorization() {
    // drive a long pivot chain through the product-form update and
    // check the updated factorization still solves exactly like a
    // from-scratch refactorization of the final basis (1e-9)
    use dpsan_lp::factor::lu::LuScratch;
    use dpsan_lp::factor::BasisFactor;
    use dpsan_lp::sparse::{CscMatrix, SparseVec};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    let mut rng = StdRng::seed_from_u64(23);
    let m = 60;
    let extra = 120;
    // columns: an identity block (starting basis) plus random sparse
    // candidates with a strong diagonal-ish anchor
    let mut trips: Vec<(usize, usize, f64)> = Vec::new();
    for i in 0..m {
        trips.push((i, i, 1.0));
    }
    for j in 0..extra {
        let col = m + j;
        let anchor = j % m;
        trips.push((anchor, col, 2.0 + rng.random::<f64>()));
        for _ in 0..3 {
            let r = rng.random_range(0..m);
            if r != anchor {
                trips.push((r, col, rng.random::<f64>() - 0.5));
            }
        }
    }
    let a = CscMatrix::from_triplets(m, m + extra, &trips);
    let mut basis: Vec<usize> = (0..m).collect();
    let mut f = BasisFactor::factor(&a, &basis).unwrap();
    let mut ws = LuScratch::new(m);

    let mut chain = 0usize;
    let mut attempt = 0usize;
    while chain < 40 {
        attempt += 1;
        assert!(attempt < 4000, "could not build a 40-pivot chain");
        let q = m + rng.random_range(0..extra);
        if basis.contains(&q) {
            continue;
        }
        // w = B^-1 A_q through the updated factors
        let mut w = SparseVec::new(m);
        let (rows, vals) = a.col(q);
        for (&r, &v) in rows.iter().zip(vals) {
            w.add(r, v);
        }
        f.ftran_sparse(&mut w, &mut ws);
        w.sort_pattern();
        // pivot on the largest entry to keep the chain well-conditioned
        let Some(&r) = w
            .pattern
            .iter()
            .max_by(|&&x, &&y| w.values[x].abs().partial_cmp(&w.values[y].abs()).unwrap())
        else {
            continue;
        };
        if w.values[r].abs() < 0.5 {
            continue;
        }
        if f.update_sparse(r, &mut w).is_err() {
            continue;
        }
        basis[r] = q;
        chain += 1;
    }
    assert!(f.n_updates() >= 40);

    let fresh = BasisFactor::factor(&a, &basis).unwrap();
    for trial in 0..8 {
        let rhs: Vec<f64> = (0..m).map(|_| rng.random::<f64>() * 2.0 - 1.0).collect();
        let mut through_etas = rhs.clone();
        f.ftran(&mut through_etas);
        let mut refreshed = rhs.clone();
        fresh.ftran(&mut refreshed);
        for i in 0..m {
            assert!(
                (through_etas[i] - refreshed[i]).abs() < 1e-9,
                "ftran trial {trial} row {i}: {} vs {}",
                through_etas[i],
                refreshed[i]
            );
        }
        let mut through_etas = rhs.clone();
        f.btran(&mut through_etas);
        let mut refreshed = rhs;
        fresh.btran(&mut refreshed);
        for i in 0..m {
            assert!(
                (through_etas[i] - refreshed[i]).abs() < 1e-9,
                "btran trial {trial} row {i}: {} vs {}",
                through_etas[i],
                refreshed[i]
            );
        }
    }
}
