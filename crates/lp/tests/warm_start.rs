//! Warm-start correctness: a solve seeded with the previous optimal
//! basis must reach the same optimum as a cold solve, across randomized
//! perturbations of the right-hand side, objective, and bounds.

use dpsan_lp::dense_simplex::solve_dense;
use dpsan_lp::problem::{Problem, RowBounds, Sense, VarBounds};
use dpsan_lp::simplex::{
    solve, solve_parametric, solve_parametric_cached, solve_with_basis, ReoptCache, SimplexOptions,
    SolveStatus, StepHint,
};
use proptest::prelude::*;

/// Objective agreement tolerance between a cold and a warm solve of the
/// same LP. Both land on an *optimal* vertex, so the objectives agree
/// to solver precision even when the vertices differ (degenerate
/// alternate optima); 1e-9 matches the solver's dual tolerance.
const WARM_COLD_TOL: f64 = 1e-9;

/// A bounded packing LP in the O-UMP shape: `max Σ x`, non-negative
/// rows `a'x ≤ rhs_i`, column caps keeping every optimum finite.
fn capped_packing_lp(n: usize, m: usize, coefs: &[f64], rhs: &[f64]) -> Problem {
    let mut p = Problem::new(Sense::Maximize);
    for _ in 0..n {
        p.add_col(1.0, VarBounds { lower: 0.0, upper: 8.0 }).unwrap();
    }
    let mut it = coefs.iter().copied();
    for (i, &rhs_i) in rhs.iter().enumerate().take(m) {
        let entries: Vec<(usize, f64)> =
            (0..n).filter_map(|j| it.next().map(|v| (j, v))).filter(|&(_, v)| v > 0.05).collect();
        let entries = if entries.is_empty() { vec![(i % n, 0.5)] } else { entries };
        p.add_row(RowBounds::at_most(rhs_i), &entries).unwrap();
    }
    p
}

/// Rebuild the LP with every row's rhs scaled by `t` (the budget-sweep
/// perturbation: same matrix, moved polytope).
fn scale_rhs(p: &Problem, t: f64) -> Problem {
    let mut q = Problem::new(Sense::Maximize);
    for (j, b) in p.col_bounds().iter().enumerate() {
        q.add_col(p.objective()[j], *b).unwrap();
    }
    for (i, rb) in p.row_bounds().iter().enumerate() {
        let entries: Vec<(usize, f64)> =
            p.triplets().iter().filter(|&&(r, _, _)| r == i).map(|&(_, c, v)| (c, v)).collect();
        q.add_row(RowBounds::at_most(rb.upper * t), &entries).unwrap();
    }
    q
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn warm_matches_cold_on_rhs_sweeps(
        n in 2usize..8,
        m in 1usize..6,
        coefs in prop::collection::vec(0.0f64..2.0, 48),
        rhs in prop::collection::vec(0.5f64..4.0, 6),
        t in 0.3f64..3.0,
    ) {
        let p0 = capped_packing_lp(n, m, &coefs, &rhs);
        let opts = SimplexOptions::default();
        let first = solve_with_basis(&p0, &opts, None).unwrap();
        prop_assert_eq!(first.solution.status, SolveStatus::Optimal);

        let p1 = scale_rhs(&p0, t);
        let cold = solve(&p1, &opts).unwrap();
        let warm = solve_with_basis(&p1, &opts, first.basis.as_ref()).unwrap();
        prop_assert_eq!(cold.status, SolveStatus::Optimal);
        prop_assert_eq!(warm.solution.status, SolveStatus::Optimal);
        prop_assert!(
            (warm.solution.objective - cold.objective).abs() <= WARM_COLD_TOL,
            "warm {} vs cold {} (warm_used={})",
            warm.solution.objective, cold.objective, warm.warm_used
        );
        prop_assert!(p1.max_violation(&warm.solution.x) < 1e-6);
    }

    #[test]
    fn warm_matches_cold_on_objective_perturbations(
        n in 2usize..8,
        m in 1usize..6,
        coefs in prop::collection::vec(0.0f64..2.0, 48),
        rhs in prop::collection::vec(0.5f64..4.0, 6),
        weights in prop::collection::vec(0.5f64..2.0, 8),
    ) {
        let p0 = capped_packing_lp(n, m, &coefs, &rhs);
        let opts = SimplexOptions::default();
        let first = solve_with_basis(&p0, &opts, None).unwrap();

        // same polytope, different objective: the old vertex stays
        // feasible, so the warm start must always engage here
        let mut p1 = Problem::new(Sense::Maximize);
        for (j, b) in p0.col_bounds().iter().enumerate() {
            p1.add_col(weights[j % weights.len()], *b).unwrap();
        }
        for (i, rb) in p0.row_bounds().iter().enumerate() {
            let entries: Vec<(usize, f64)> = p0
                .triplets().iter().filter(|&&(r, _, _)| r == i).map(|&(_, c, v)| (c, v)).collect();
            p1.add_row(*rb, &entries).unwrap();
        }
        let cold = solve(&p1, &opts).unwrap();
        let warm = solve_with_basis(&p1, &opts, first.basis.as_ref()).unwrap();
        prop_assert!(warm.warm_used, "feasible vertex must seed the solve");
        prop_assert!(
            (warm.solution.objective - cold.objective).abs() <= WARM_COLD_TOL,
            "warm {} vs cold {}", warm.solution.objective, cold.objective
        );
    }

    #[test]
    fn mismatched_snapshot_falls_back_to_cold(
        n in 2usize..6,
        m in 1usize..5,
        coefs in prop::collection::vec(0.0f64..2.0, 30),
        rhs in prop::collection::vec(0.5f64..4.0, 5),
    ) {
        let p0 = capped_packing_lp(n, m, &coefs, &rhs);
        let opts = SimplexOptions::default();
        let first = solve_with_basis(&p0, &opts, None).unwrap();

        // a problem with one extra row can never fit the snapshot
        let mut p1 = p0.clone();
        p1.add_row(RowBounds::at_most(100.0), &[(0, 1.0)]).unwrap();
        let warm = solve_with_basis(&p1, &opts, first.basis.as_ref()).unwrap();
        let cold = solve(&p1, &opts).unwrap();
        prop_assert!(!warm.warm_used);
        prop_assert_eq!(warm.solution.status, cold.status);
        prop_assert!((warm.solution.objective - cold.objective).abs() <= WARM_COLD_TOL);
    }
}

/// Rebuild the LP with rhs scaled by `t` and every column cap scaled by
/// `s` — the full rhs/bounds-only perturbation class the dual
/// reoptimizer must handle.
fn perturb_rhs_and_caps(p: &Problem, t: f64, s: f64) -> Problem {
    let mut q = Problem::new(Sense::Maximize);
    for (j, b) in p.col_bounds().iter().enumerate() {
        q.add_col(p.objective()[j], VarBounds { lower: b.lower, upper: b.upper * s }).unwrap();
    }
    for (i, rb) in p.row_bounds().iter().enumerate() {
        let entries: Vec<(usize, f64)> =
            p.triplets().iter().filter(|&&(r, _, _)| r == i).map(|&(_, c, v)| (c, v)).collect();
        q.add_row(RowBounds::at_most(rb.upper * t), &entries).unwrap();
    }
    q
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Four independent paths onto the same optimum: dual
    /// reoptimization from the old basis, warm primal from the old
    /// basis, cold two-phase primal, and the dense tableau reference.
    /// The three revised-simplex paths must agree to solver precision;
    /// the dense implementation shares no code with them, so it anchors
    /// the value itself.
    #[test]
    fn dual_warm_cold_and_dense_agree_on_rhs_and_bound_moves(
        n in 2usize..8,
        m in 1usize..6,
        coefs in prop::collection::vec(0.0f64..2.0, 48),
        rhs in prop::collection::vec(0.5f64..4.0, 6),
        t in 0.2f64..3.0,
        s in 0.3f64..2.0,
    ) {
        let p0 = capped_packing_lp(n, m, &coefs, &rhs);
        let opts = SimplexOptions::default();
        let first = solve_with_basis(&p0, &opts, None).unwrap();
        prop_assert_eq!(first.solution.status, SolveStatus::Optimal);
        let basis = first.basis;

        let p1 = perturb_rhs_and_caps(&p0, t, s);
        let dual = solve_parametric(&p1, &opts, basis.as_ref(), StepHint::RhsOnly).unwrap();
        let warm = solve_with_basis(&p1, &opts, basis.as_ref()).unwrap();
        let cold = solve(&p1, &opts).unwrap();
        let dense = solve_dense(&p1);

        prop_assert_eq!(dual.solution.status, SolveStatus::Optimal);
        prop_assert_eq!(warm.solution.status, SolveStatus::Optimal);
        prop_assert_eq!(cold.status, SolveStatus::Optimal);
        prop_assert_eq!(dense.status, SolveStatus::Optimal);

        let d = dual.solution.objective;
        prop_assert!((d - cold.objective).abs() <= WARM_COLD_TOL,
            "dual {d} vs cold {}", cold.objective);
        prop_assert!((d - warm.solution.objective).abs() <= WARM_COLD_TOL,
            "dual {d} vs warm {}", warm.solution.objective);
        prop_assert!((d - dense.objective).abs() <= WARM_COLD_TOL,
            "dual {d} vs dense {}", dense.objective);
        prop_assert!(p1.max_violation(&dual.solution.x) < 1e-6,
            "dual vertex feasible: {}", p1.max_violation(&dual.solution.x));
    }

    /// A chained sweep (each step re-seeded from the previous optimum,
    /// like a real budget grid shard) stays glued to the cold and dense
    /// answers at every step. The chain carries a [`ReoptCache`], so
    /// this exercises the production fast path: cached scale factors,
    /// cached standard form, and the reused LU+eta factorization.
    #[test]
    fn chained_dual_sweep_tracks_cold_and_dense(
        n in 2usize..7,
        m in 1usize..5,
        coefs in prop::collection::vec(0.0f64..2.0, 35),
        rhs in prop::collection::vec(0.5f64..4.0, 5),
        steps in prop::collection::vec((0.3f64..3.0, 0.4f64..1.8), 1..5),
    ) {
        let p0 = capped_packing_lp(n, m, &coefs, &rhs);
        let opts = SimplexOptions::default();
        let mut cache = ReoptCache::new();
        let mut basis =
            solve_parametric_cached(&p0, &opts, None, StepHint::Fresh, &mut cache).unwrap().basis;
        for (k, &(t, s)) in steps.iter().enumerate() {
            let p1 = perturb_rhs_and_caps(&p0, t, s);
            let dual =
                solve_parametric_cached(&p1, &opts, basis.as_ref(), StepHint::RhsOnly, &mut cache)
                    .unwrap();
            let cold = solve(&p1, &opts).unwrap();
            let dense = solve_dense(&p1);
            prop_assert_eq!(dual.solution.status, SolveStatus::Optimal, "step {}", k);
            prop_assert!((dual.solution.objective - cold.objective).abs() <= WARM_COLD_TOL,
                "step {k}: dual {} vs cold {}", dual.solution.objective, cold.objective);
            prop_assert!((dual.solution.objective - dense.objective).abs() <= WARM_COLD_TOL,
                "step {k}: dual {} vs dense {}", dual.solution.objective, dense.objective);
            prop_assert!(p1.max_violation(&dual.solution.x) < 1e-6, "step {k}");
            basis = dual.basis;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The whole warm/dual/cold path family again, but forced onto the
    /// sparse route: every path must still land on the dense tableau
    /// reference to 1e-9. This is the route-equivalence guarantee the
    /// large-instance auto-routing relies on.
    #[test]
    fn sparse_route_dual_warm_cold_track_dense(
        n in 2usize..8,
        m in 1usize..6,
        coefs in prop::collection::vec(0.0f64..2.0, 48),
        rhs in prop::collection::vec(0.5f64..4.0, 6),
        t in 0.2f64..3.0,
        s in 0.3f64..2.0,
    ) {
        let p0 = capped_packing_lp(n, m, &coefs, &rhs);
        let opts = SimplexOptions { sparse: Some(true), ..Default::default() };
        let first = solve_with_basis(&p0, &opts, None).unwrap();
        prop_assert_eq!(first.solution.status, SolveStatus::Optimal);
        let basis = first.basis;

        let p1 = perturb_rhs_and_caps(&p0, t, s);
        let dual = solve_parametric(&p1, &opts, basis.as_ref(), StepHint::RhsOnly).unwrap();
        let warm = solve_with_basis(&p1, &opts, basis.as_ref()).unwrap();
        let cold = solve(&p1, &opts).unwrap();
        let dense = solve_dense(&p1);

        prop_assert_eq!(dual.solution.status, SolveStatus::Optimal);
        prop_assert_eq!(warm.solution.status, SolveStatus::Optimal);
        prop_assert_eq!(cold.status, SolveStatus::Optimal);
        prop_assert_eq!(dense.status, SolveStatus::Optimal);
        prop_assert!(dual.stats.sparse, "forced sparse must be honored");

        let d = dual.solution.objective;
        prop_assert!((d - cold.objective).abs() <= WARM_COLD_TOL,
            "sparse dual {d} vs sparse cold {}", cold.objective);
        prop_assert!((d - warm.solution.objective).abs() <= WARM_COLD_TOL,
            "sparse dual {d} vs sparse warm {}", warm.solution.objective);
        prop_assert!((d - dense.objective).abs() <= WARM_COLD_TOL,
            "sparse dual {d} vs dense {}", dense.objective);
        prop_assert!(p1.max_violation(&dual.solution.x) < 1e-6);
    }
}

#[test]
fn rhs_sweep_reuses_basis_and_saves_iterations() {
    // deterministic sweep in the Table-4 shape: same matrix, growing
    // budget; after the first solve every step should warm-start and
    // re-optimize in (far) fewer iterations than the cold solve took
    let coefs: Vec<f64> = (0..60).map(|i| 0.1 + 0.03 * (i % 17) as f64).collect();
    let rhs = vec![1.0, 1.5, 2.0, 1.2, 0.8];
    let mut base = capped_packing_lp(10, 5, &coefs, &rhs);
    for j in 0..10 {
        // caps far above any reachable value, so scaling the rhs scales
        // the optimal vertex without ever rejecting the warm basis
        base.set_bounds(j, VarBounds { lower: 0.0, upper: 500.0 }).unwrap();
    }
    let opts = SimplexOptions::default();

    let cold0 = solve_with_basis(&base, &opts, None).unwrap();
    let mut basis = cold0.basis.clone();
    assert!(basis.is_some(), "optimal solve yields a snapshot");
    for step in 1..6 {
        let t = 1.0 + 0.2 * step as f64;
        let p = scale_rhs(&base, t);
        let warm = solve_with_basis(&p, &opts, basis.as_ref()).unwrap();
        let cold = solve(&p, &opts).unwrap();
        assert!(warm.warm_used, "pure rhs scaling keeps the vertex basis-feasible");
        assert!(
            (warm.solution.objective - cold.objective).abs() <= WARM_COLD_TOL,
            "step {step}: warm {} vs cold {}",
            warm.solution.objective,
            cold.objective
        );
        assert!(
            warm.solution.iterations <= cold.iterations,
            "step {step}: warm used {} iterations, cold {}",
            warm.solution.iterations,
            cold.iterations
        );
        basis = warm.basis.clone();
    }
}

#[test]
fn removed_bound_rejects_snapshot_instead_of_going_infeasible() {
    // min x0 + 2 x1 s.t. x0 + x1 >= 3 with x0 in [1, 2]: the optimum
    // parks x0 nonbasic at its upper bound (x0 = 2, x1 = 1).
    // Re-solving with x0's upper bound removed must NOT park x0 at 0
    // (outside its surviving lower bound of 1) — the snapshot is
    // rejected and the cold path must still deliver a feasible
    // optimum (x0 = 3, x1 = 0).
    let build = |upper: f64| {
        let mut p = Problem::new(Sense::Minimize);
        let x0 = p.add_col(1.0, VarBounds { lower: 1.0, upper }).unwrap();
        let x1 = p.add_col(2.0, VarBounds::non_negative()).unwrap();
        p.add_row(RowBounds::at_least(3.0), &[(x0, 1.0), (x1, 1.0)]).unwrap();
        p
    };
    let opts = SimplexOptions::default();
    let first = solve_with_basis(&build(2.0), &opts, None).unwrap();
    assert_eq!(first.solution.status, SolveStatus::Optimal);
    assert!((first.solution.objective - 4.0).abs() < 1e-9, "x0 at its cap, x1 basic");

    let relaxed = build(f64::INFINITY);
    let warm = solve_with_basis(&relaxed, &opts, first.basis.as_ref()).unwrap();
    let cold = solve(&relaxed, &opts).unwrap();
    assert_eq!(warm.solution.status, SolveStatus::Optimal);
    assert!(
        relaxed.max_violation(&warm.solution.x) < 1e-9,
        "warm result must stay feasible: {:?}",
        warm.solution.x
    );
    assert!((warm.solution.objective - cold.objective).abs() <= WARM_COLD_TOL);
}

#[test]
fn snapshot_round_trips_through_identical_problem() {
    let coefs: Vec<f64> = (0..40).map(|i| 0.2 + 0.05 * (i % 7) as f64).collect();
    let p = capped_packing_lp(8, 4, &coefs, &[1.0, 2.0, 1.5, 0.9]);
    let opts = SimplexOptions::default();
    let first = solve_with_basis(&p, &opts, None).unwrap();
    let again = solve_with_basis(&p, &opts, first.basis.as_ref()).unwrap();
    assert!(again.warm_used);
    assert_eq!(again.solution.iterations, 0, "optimal basis re-verifies in zero pivots");
    assert!((again.solution.objective - first.solution.objective).abs() <= WARM_COLD_TOL);
}
