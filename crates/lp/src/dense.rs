//! Dense linear-algebra kernels.
//!
//! Used by the dense reference simplex and by tests that cross-check the
//! sparse LU. Matrices are row-major `Vec<Vec<f64>>` — clarity over
//! speed; nothing here sits on the solver hot path.

/// Dense LU factorization with partial pivoting, `P A = L U`.
#[derive(Debug, Clone)]
pub struct DenseLu {
    n: usize,
    /// Combined `L\U` storage, row-major; `L` has an implicit unit
    /// diagonal.
    lu: Vec<Vec<f64>>,
    /// `perm[k]` = original row index that acts as the k-th pivot row.
    perm: Vec<usize>,
}

impl DenseLu {
    /// Factor a square matrix. Returns `None` when (numerically)
    /// singular.
    pub fn factor(a: &[Vec<f64>]) -> Option<DenseLu> {
        let n = a.len();
        let mut lu: Vec<Vec<f64>> = a.to_vec();
        for row in &lu {
            assert_eq!(row.len(), n, "matrix must be square");
        }
        let mut perm: Vec<usize> = (0..n).collect();

        for k in 0..n {
            // partial pivoting on column k
            let (mut best, mut best_val) = (k, lu[perm[k]][k].abs());
            for (i, &p) in perm.iter().enumerate().skip(k + 1) {
                let v = lu[p][k].abs();
                if v > best_val {
                    best = i;
                    best_val = v;
                }
            }
            if best_val < 1e-12 {
                return None;
            }
            perm.swap(k, best);
            let pk = perm[k];
            let pivot = lu[pk][k];
            // take the pivot row out so eliminated rows can borrow it
            let pivot_row = std::mem::take(&mut lu[pk]);
            for &pi in perm.iter().skip(k + 1) {
                let factor = lu[pi][k] / pivot;
                if factor != 0.0 {
                    for (dst, &src) in lu[pi][k + 1..].iter_mut().zip(&pivot_row[k + 1..]) {
                        *dst -= factor * src;
                    }
                }
                lu[pi][k] = factor;
            }
            lu[pk] = pivot_row;
        }
        Some(DenseLu { n, lu, perm })
    }

    /// Solve `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n, "dimension mismatch");
        // forward: L y = P b
        let mut y = vec![0.0; self.n];
        for k in 0..self.n {
            let row = &self.lu[self.perm[k]];
            let s: f64 = row[..k].iter().zip(&y[..k]).map(|(&l, &yj)| l * yj).sum();
            y[k] = b[self.perm[k]] - s;
        }
        // backward: U x = y
        let mut x = vec![0.0; self.n];
        for k in (0..self.n).rev() {
            let row = &self.lu[self.perm[k]];
            let s: f64 = row[k + 1..].iter().zip(&x[k + 1..]).map(|(&u, &xj)| u * xj).sum();
            x[k] = (y[k] - s) / row[k];
        }
        x
    }

    /// Solve `A' x = b`.
    pub fn solve_transpose(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n, "dimension mismatch");
        // A' = U' L' P: first U' y = b (forward), then L' z = y
        // (backward), then x = P' z.
        let mut y = vec![0.0; self.n];
        for k in 0..self.n {
            let s: f64 = self.perm.iter().zip(&y[..k]).map(|(&pj, &yj)| self.lu[pj][k] * yj).sum();
            y[k] = (b[k] - s) / self.lu[self.perm[k]][k];
        }
        let mut z = vec![0.0; self.n];
        for k in (0..self.n).rev() {
            let s: f64 =
                self.perm.iter().zip(&z).skip(k + 1).map(|(&pj, &zj)| self.lu[pj][k] * zj).sum();
            z[k] = y[k] - s;
        }
        let mut x = vec![0.0; self.n];
        for k in 0..self.n {
            x[self.perm[k]] = z[k];
        }
        x
    }
}

/// Dense matrix–vector product.
pub fn matvec(a: &[Vec<f64>], x: &[f64]) -> Vec<f64> {
    a.iter()
        .map(|row| {
            assert_eq!(row.len(), x.len(), "dimension mismatch");
            row.iter().zip(x).map(|(&r, &v)| r * v).sum()
        })
        .collect()
}

/// Infinity norm of a residual `A x − b`.
pub fn residual_inf_norm(a: &[Vec<f64>], x: &[f64], b: &[f64]) -> f64 {
    matvec(a, x).iter().zip(b).map(|(ax, &bi)| (ax - bi).abs()).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Vec<f64>> {
        vec![vec![2.0, 1.0, 1.0], vec![4.0, -6.0, 0.0], vec![-2.0, 7.0, 2.0]]
    }

    #[test]
    fn solve_recovers_solution() {
        let a = sample();
        let x_true = vec![1.0, -2.0, 3.0];
        let b = matvec(&a, &x_true);
        let lu = DenseLu::factor(&a).unwrap();
        let x = lu.solve(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10, "{x:?}");
        }
    }

    #[test]
    fn solve_transpose_recovers_solution() {
        let a = sample();
        let x_true = vec![0.5, 2.0, -1.0];
        // b = A' x
        let at: Vec<Vec<f64>> = (0..3).map(|i| (0..3).map(|j| a[j][i]).collect()).collect();
        let b = matvec(&at, &x_true);
        let lu = DenseLu::factor(&a).unwrap();
        let x = lu.solve_transpose(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10, "{x:?}");
        }
    }

    #[test]
    fn singular_returns_none() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(DenseLu::factor(&a).is_none());
    }

    #[test]
    fn identity_solves_trivially() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let lu = DenseLu::factor(&a).unwrap();
        assert_eq!(lu.solve(&[3.0, 4.0]), vec![3.0, 4.0]);
        assert_eq!(lu.solve_transpose(&[3.0, 4.0]), vec![3.0, 4.0]);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let lu = DenseLu::factor(&a).unwrap();
        let x = lu.solve(&[5.0, 7.0]);
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn residual_norm_zero_for_exact() {
        let a = sample();
        let x = vec![1.0, 1.0, 1.0];
        let b = matvec(&a, &x);
        assert_eq!(residual_inf_norm(&a, &x, &b), 0.0);
    }
}
