//! Bounded-variable ratio test.
//!
//! The entering variable `q` moves by `t ≥ 0` in direction `dir`; every
//! basic variable changes by `−dir·t·w_i` and blocks at whichever of its
//! bounds it approaches. The entering variable itself blocks at its
//! opposite bound (a *bound flip*, no basis change). Ties prefer the
//! largest `|w_i|` pivot for numerical stability.

use super::{Core, Direction};

/// Outcome of the ratio test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum RatioOutcome {
    /// No bound blocks the move: the LP is unbounded.
    Unbounded,
    /// The entering variable reaches its own opposite bound first.
    BoundFlip {
        /// Step length.
        t: f64,
    },
    /// A basic variable blocks at a bound and leaves the basis.
    Pivot {
        /// Step length (possibly 0 under degeneracy).
        t: f64,
        /// Row position of the leaving variable.
        leaving_pos: usize,
        /// Whether the leaving variable exits at its upper bound.
        to_upper: bool,
    },
}

pub(crate) fn ratio_test(core: &Core, q: usize, dir: Direction, w: &[f64]) -> RatioOutcome {
    let tol_pivot = core.tol_pivot();
    const TIE_TOL: f64 = 1e-9;

    let (q_lo, q_hi) = core.bounds_of(q);
    let own_limit = q_hi - q_lo; // may be inf

    let mut best_t = own_limit;
    let mut best: Option<(usize, bool, f64)> = None; // (pos, to_upper, |pivot|)

    for (i, &wi) in w.iter().enumerate() {
        if wi.abs() <= tol_pivot {
            continue;
        }
        let delta = dir.sign() * wi; // basic value changes by -delta * t
        let col = core.basis_col(i);
        let (lo, hi) = core.bounds_of(col);
        let xb = core.value_of(col);
        let (ratio, to_upper) = if delta > 0.0 {
            // basic decreases toward its lower bound
            if lo.is_finite() {
                (((xb - lo) / delta).max(0.0), false)
            } else {
                continue;
            }
        } else {
            // basic increases toward its upper bound
            if hi.is_finite() {
                (((hi - xb) / -delta).max(0.0), true)
            } else {
                continue;
            }
        };

        if ratio < best_t - TIE_TOL {
            best_t = ratio;
            best = Some((i, to_upper, wi.abs()));
        } else if ratio <= best_t + TIE_TOL {
            // tie: prefer the larger pivot magnitude
            if let Some((_, _, mag)) = best {
                if wi.abs() > mag {
                    best_t = best_t.min(ratio);
                    best = Some((i, to_upper, wi.abs()));
                }
            } else if ratio <= own_limit {
                best_t = ratio.min(best_t);
                best = Some((i, to_upper, wi.abs()));
            }
        }
    }

    match best {
        Some((pos, to_upper, _)) if best_t < own_limit - TIE_TOL || own_limit.is_infinite() => {
            RatioOutcome::Pivot { t: best_t, leaving_pos: pos, to_upper }
        }
        Some((pos, to_upper, _)) => {
            // tie between a basic block and the own bound: pivoting is
            // also valid and keeps the basis square
            let _ = (pos, to_upper);
            RatioOutcome::Pivot { t: best_t, leaving_pos: pos, to_upper }
        }
        None if own_limit.is_finite() => RatioOutcome::BoundFlip { t: own_limit },
        None => RatioOutcome::Unbounded,
    }
}
