//! Bounded-variable ratio test.
//!
//! The entering variable `q` moves by `t ≥ 0` in direction `dir`; every
//! basic variable changes by `−dir·t·w_i` and blocks at whichever of its
//! bounds it approaches. The entering variable itself blocks at its
//! opposite bound (a *bound flip*, no basis change).
//!
//! The test runs in two passes (Harris-style): pass 1 finds the minimum
//! blocking step with each candidate's bound relaxed by `tol_pivot`
//! *scaled by its own rate of approach* `|w_i|`; pass 2 picks, among
//! every candidate whose exact ratio fits under that relaxed step, the
//! one with the largest pivot magnitude `|w_i|`. Under degeneracy many
//! candidates tie at (near-)zero step; preferring the biggest pivot
//! keeps the basis factorization well-conditioned instead of letting
//! whichever tiny pivot appears first poison the eta file.

use super::{Core, Direction};
use crate::sparse::SparseVec;

/// Outcome of the ratio test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum RatioOutcome {
    /// No bound blocks the move: the LP is unbounded.
    Unbounded,
    /// The entering variable reaches its own opposite bound first.
    BoundFlip {
        /// Step length.
        t: f64,
    },
    /// A basic variable blocks at a bound and leaves the basis.
    Pivot {
        /// Step length (possibly 0 under degeneracy).
        t: f64,
        /// Row position of the leaving variable.
        leaving_pos: usize,
        /// Whether the leaving variable exits at its upper bound.
        to_upper: bool,
    },
}

/// Exact and relaxed blocking ratios of basic position `i` against the
/// bound it approaches, or `None` when that bound is infinite.
#[inline]
fn blocking_ratio(core: &Core, i: usize, delta: f64, tol: f64) -> Option<(f64, f64, bool)> {
    let col = core.basis_col(i);
    let (lo, hi) = core.bounds_of(col);
    let xb = core.value_of(col);
    if delta > 0.0 {
        // basic decreases toward its lower bound
        lo.is_finite()
            .then(|| (((xb - lo) / delta).max(0.0), ((xb - lo + tol) / delta).max(0.0), false))
    } else {
        // basic increases toward its upper bound
        hi.is_finite()
            .then(|| (((hi - xb) / -delta).max(0.0), ((hi - xb + tol) / -delta).max(0.0), true))
    }
}

/// Shared two-pass logic over any enumeration of `(row position, w_i)`
/// entries. The dense wrapper enumerates every row; the sparse wrapper
/// walks the pattern in ascending row order — identical iteration order
/// over the nonzero entries, so the first-seen tie-break picks the same
/// leaving row on both routes.
fn ratio_test_inner<I>(core: &Core, q: usize, dir: Direction, entries: I) -> RatioOutcome
where
    I: Iterator<Item = (usize, f64)> + Clone,
{
    let tol_pivot = core.tol_pivot();

    let (q_lo, q_hi) = core.bounds_of(q);
    let own_limit = q_hi - q_lo; // may be inf

    // pass 1: the relaxed minimum blocking step, each candidate's bound
    // softened by tol_pivot (so its relaxation in step space is
    // tol_pivot / |w_i| — tighter for fast-moving candidates)
    let mut t_relaxed = f64::INFINITY;
    for (i, wi) in entries.clone() {
        if wi.abs() <= tol_pivot {
            continue;
        }
        let delta = dir.sign() * wi; // basic value changes by -delta * t
        if let Some((_, relaxed, _)) = blocking_ratio(core, i, delta, tol_pivot) {
            t_relaxed = t_relaxed.min(relaxed);
        }
    }

    // the entering variable's own bound participates in the same relaxed
    // comparison: candidates beyond it cannot block
    let cap = t_relaxed.min(own_limit + tol_pivot);

    // pass 2: among candidates whose exact ratio fits under the cap,
    // prefer the largest pivot magnitude
    let mut best: Option<(usize, bool, f64, f64)> = None; // (pos, to_upper, |pivot|, ratio)
    for (i, wi) in entries {
        if wi.abs() <= tol_pivot {
            continue;
        }
        let delta = dir.sign() * wi;
        let Some((exact, _, to_upper)) = blocking_ratio(core, i, delta, tol_pivot) else {
            continue;
        };
        if exact <= cap {
            let mag = wi.abs();
            if best.is_none_or(|(_, _, m, _)| mag > m) {
                best = Some((i, to_upper, mag, exact));
            }
        }
    }

    match best {
        Some((pos, to_upper, _, ratio)) => {
            // a tie between a basic block and the own bound still pivots
            // (keeps the basis square); the step never exceeds the
            // entering variable's own range
            RatioOutcome::Pivot { t: ratio.min(own_limit), leaving_pos: pos, to_upper }
        }
        None if own_limit.is_finite() => RatioOutcome::BoundFlip { t: own_limit },
        None => RatioOutcome::Unbounded,
    }
}

pub(crate) fn ratio_test(core: &Core, q: usize, dir: Direction, w: &[f64]) -> RatioOutcome {
    ratio_test_inner(core, q, dir, w.iter().copied().enumerate())
}

/// Ratio test over a sparse direction: only the pattern's rows are
/// inspected. `w.pattern` must be sorted ascending so tie-breaking
/// matches the dense test exactly.
pub(crate) fn ratio_test_sparse(
    core: &Core,
    q: usize,
    dir: Direction,
    w: &SparseVec,
) -> RatioOutcome {
    debug_assert!(w.pattern.windows(2).all(|p| p[0] < p[1]), "pattern must be sorted");
    ratio_test_inner(core, q, dir, w.pattern.iter().map(|&i| (i, w.values[i])))
}
