//! Unit tests for the revised simplex on hand-checkable models.

use super::*;
use crate::problem::{RowBounds, VarBounds};

fn opts() -> SimplexOptions {
    SimplexOptions::default()
}

fn assert_close(a: f64, b: f64, tol: f64, what: &str) {
    assert!((a - b).abs() <= tol, "{what}: {a} vs {b}");
}

#[test]
fn textbook_max_lp() {
    // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> x=2, y=6, z=36
    let mut p = Problem::new(Sense::Maximize);
    let x = p.add_col(3.0, VarBounds::non_negative()).unwrap();
    let y = p.add_col(5.0, VarBounds::non_negative()).unwrap();
    p.add_row(RowBounds::at_most(4.0), &[(x, 1.0)]).unwrap();
    p.add_row(RowBounds::at_most(12.0), &[(y, 2.0)]).unwrap();
    p.add_row(RowBounds::at_most(18.0), &[(x, 3.0), (y, 2.0)]).unwrap();
    let s = solve(&p, &opts()).unwrap();
    assert_eq!(s.status, SolveStatus::Optimal);
    assert_close(s.objective, 36.0, 1e-7, "objective");
    assert_close(s.x[0], 2.0, 1e-7, "x");
    assert_close(s.x[1], 6.0, 1e-7, "y");
}

#[test]
fn min_with_equality_needs_phase1() {
    // min x + 2y s.t. x + y = 10, x <= 6 -> x=6, y=4, z=14
    let mut p = Problem::new(Sense::Minimize);
    let x = p.add_col(1.0, VarBounds::non_negative()).unwrap();
    let y = p.add_col(2.0, VarBounds::non_negative()).unwrap();
    p.add_row(RowBounds::equal(10.0), &[(x, 1.0), (y, 1.0)]).unwrap();
    p.add_row(RowBounds::at_most(6.0), &[(x, 1.0)]).unwrap();
    let s = solve(&p, &opts()).unwrap();
    assert_eq!(s.status, SolveStatus::Optimal);
    assert_close(s.objective, 14.0, 1e-7, "objective");
    assert_close(s.x[0], 6.0, 1e-7, "x");
    assert_close(s.x[1], 4.0, 1e-7, "y");
}

#[test]
fn geq_rows_with_positive_rhs() {
    // min 2x + 3y s.t. x + y >= 4, x + 3y >= 6 -> x=3, y=1, z=9
    let mut p = Problem::new(Sense::Minimize);
    let x = p.add_col(2.0, VarBounds::non_negative()).unwrap();
    let y = p.add_col(3.0, VarBounds::non_negative()).unwrap();
    p.add_row(RowBounds::at_least(4.0), &[(x, 1.0), (y, 1.0)]).unwrap();
    p.add_row(RowBounds::at_least(6.0), &[(x, 1.0), (y, 3.0)]).unwrap();
    let s = solve(&p, &opts()).unwrap();
    assert_eq!(s.status, SolveStatus::Optimal);
    assert_close(s.objective, 9.0, 1e-7, "objective");
}

#[test]
fn infeasible_detected() {
    // x <= 1 and x >= 3
    let mut p = Problem::new(Sense::Minimize);
    let x = p.add_col(1.0, VarBounds::non_negative()).unwrap();
    p.add_row(RowBounds::at_most(1.0), &[(x, 1.0)]).unwrap();
    p.add_row(RowBounds::at_least(3.0), &[(x, 1.0)]).unwrap();
    let s = solve(&p, &opts()).unwrap();
    assert_eq!(s.status, SolveStatus::Infeasible);
}

#[test]
fn unbounded_detected() {
    // max x with x >= 0 and one irrelevant row
    let mut p = Problem::new(Sense::Maximize);
    let _x = p.add_col(1.0, VarBounds::non_negative()).unwrap();
    let y = p.add_col(0.0, VarBounds::non_negative()).unwrap();
    p.add_row(RowBounds::at_most(5.0), &[(y, 1.0)]).unwrap();
    let s = solve(&p, &opts()).unwrap();
    assert_eq!(s.status, SolveStatus::Unbounded);
}

#[test]
fn upper_bounded_variables_flip() {
    // max x + y with x,y in [0,1] and x + y <= 1.5 -> 1.5
    let mut p = Problem::new(Sense::Maximize);
    let x = p.add_col(1.0, VarBounds::unit()).unwrap();
    let y = p.add_col(1.0, VarBounds::unit()).unwrap();
    p.add_row(RowBounds::at_most(1.5), &[(x, 1.0), (y, 1.0)]).unwrap();
    let s = solve(&p, &opts()).unwrap();
    assert_eq!(s.status, SolveStatus::Optimal);
    assert_close(s.objective, 1.5, 1e-7, "objective");
    assert!(p.max_violation(&s.x) < 1e-7);
}

#[test]
fn free_variable_equality() {
    // min |style| problem: min y s.t. y free, y = 7 - x, x in [0, 3]
    // -> x=3, y=4
    let mut p = Problem::new(Sense::Minimize);
    let x = p.add_col(0.0, VarBounds { lower: 0.0, upper: 3.0 }).unwrap();
    let y = p.add_col(1.0, VarBounds::free()).unwrap();
    p.add_row(RowBounds::equal(7.0), &[(x, 1.0), (y, 1.0)]).unwrap();
    let s = solve(&p, &opts()).unwrap();
    assert_eq!(s.status, SolveStatus::Optimal);
    assert_close(s.objective, 4.0, 1e-7, "objective");
    assert_close(s.x[1], 4.0, 1e-7, "y");
}

#[test]
fn negative_rhs_geq_feasible_at_origin() {
    // y >= -c is satisfied by the origin: no phase 1 needed
    let mut p = Problem::new(Sense::Minimize);
    let y = p.add_col(1.0, VarBounds::non_negative()).unwrap();
    p.add_row(RowBounds::at_least(-2.0), &[(y, 1.0)]).unwrap();
    let s = solve(&p, &opts()).unwrap();
    assert_eq!(s.status, SolveStatus::Optimal);
    assert_close(s.objective, 0.0, 1e-9, "objective");
}

#[test]
fn range_row_respected() {
    // max x s.t. 2 <= x <= 5 via a range row on activity
    let mut p = Problem::new(Sense::Maximize);
    let x = p.add_col(1.0, VarBounds::non_negative()).unwrap();
    p.add_row(RowBounds { lower: 2.0, upper: 5.0 }, &[(x, 1.0)]).unwrap();
    let s = solve(&p, &opts()).unwrap();
    assert_eq!(s.status, SolveStatus::Optimal);
    assert_close(s.objective, 5.0, 1e-7, "objective");
}

#[test]
fn fixed_variable_is_respected() {
    let mut p = Problem::new(Sense::Maximize);
    let x = p.add_col(10.0, VarBounds::fixed(2.0)).unwrap();
    let y = p.add_col(1.0, VarBounds::non_negative()).unwrap();
    p.add_row(RowBounds::at_most(6.0), &[(x, 1.0), (y, 1.0)]).unwrap();
    let s = solve(&p, &opts()).unwrap();
    assert_eq!(s.status, SolveStatus::Optimal);
    assert_close(s.x[0], 2.0, 1e-9, "fixed x");
    assert_close(s.objective, 24.0, 1e-7, "objective");
}

#[test]
fn no_rows_goes_to_best_bounds() {
    let mut p = Problem::new(Sense::Maximize);
    p.add_col(1.0, VarBounds::unit()).unwrap();
    p.add_col(-1.0, VarBounds::unit()).unwrap();
    let s = solve(&p, &opts()).unwrap();
    assert_eq!(s.status, SolveStatus::Optimal);
    assert_eq!(s.x, vec![1.0, 0.0]);
}

#[test]
fn no_rows_unbounded() {
    let mut p = Problem::new(Sense::Maximize);
    p.add_col(1.0, VarBounds::non_negative()).unwrap();
    let s = solve(&p, &opts()).unwrap();
    assert_eq!(s.status, SolveStatus::Unbounded);
}

#[test]
fn degenerate_lp_terminates() {
    // classic degeneracy: several redundant rows through the optimum
    let mut p = Problem::new(Sense::Maximize);
    let x = p.add_col(1.0, VarBounds::non_negative()).unwrap();
    let y = p.add_col(1.0, VarBounds::non_negative()).unwrap();
    for _ in 0..6 {
        p.add_row(RowBounds::at_most(1.0), &[(x, 1.0), (y, 1.0)]).unwrap();
    }
    p.add_row(RowBounds::at_most(1.0), &[(x, 1.0)]).unwrap();
    p.add_row(RowBounds::at_most(1.0), &[(y, 1.0)]).unwrap();
    let s = solve(&p, &opts()).unwrap();
    assert_eq!(s.status, SolveStatus::Optimal);
    assert_close(s.objective, 1.0, 1e-7, "objective");
}

#[test]
fn packing_lp_like_oump() {
    // max sum x s.t. per-"user" budget rows with positive coefficients
    // (the O-UMP shape): 0.1 x0 + 0.5 x1 <= 1; 0.2 x1 + 0.3 x2 <= 1
    let mut p = Problem::new(Sense::Maximize);
    let x0 = p.add_col(1.0, VarBounds::non_negative()).unwrap();
    let x1 = p.add_col(1.0, VarBounds::non_negative()).unwrap();
    let x2 = p.add_col(1.0, VarBounds::non_negative()).unwrap();
    p.add_row(RowBounds::at_most(1.0), &[(x0, 0.1), (x1, 0.5)]).unwrap();
    p.add_row(RowBounds::at_most(1.0), &[(x1, 0.2), (x2, 0.3)]).unwrap();
    let s = solve(&p, &opts()).unwrap();
    assert_eq!(s.status, SolveStatus::Optimal);
    // optimum: x1 = 0 (expensive in both rows), x0 = 10, x2 = 10/3
    assert_close(s.objective, 10.0 + 10.0 / 3.0, 1e-6, "objective");
    assert!(p.max_violation(&s.x) < 1e-7);
}

#[test]
fn budget_scaling_linearity() {
    // for Mx <= B·1, x >= 0 the optimum scales linearly in B
    let build = |b: f64| {
        let mut p = Problem::new(Sense::Maximize);
        let x0 = p.add_col(1.0, VarBounds::non_negative()).unwrap();
        let x1 = p.add_col(1.0, VarBounds::non_negative()).unwrap();
        p.add_row(RowBounds::at_most(b), &[(x0, 0.3), (x1, 0.7)]).unwrap();
        p.add_row(RowBounds::at_most(b), &[(x0, 0.6), (x1, 0.1)]).unwrap();
        p
    };
    let s1 = solve(&build(1.0), &opts()).unwrap();
    let s3 = solve(&build(3.0), &opts()).unwrap();
    assert_close(s3.objective, 3.0 * s1.objective, 1e-6, "linearity in B");
}

#[test]
fn duals_satisfy_strong_duality_on_max_lp() {
    let mut p = Problem::new(Sense::Maximize);
    let x = p.add_col(3.0, VarBounds::non_negative()).unwrap();
    let y = p.add_col(5.0, VarBounds::non_negative()).unwrap();
    p.add_row(RowBounds::at_most(4.0), &[(x, 1.0)]).unwrap();
    p.add_row(RowBounds::at_most(12.0), &[(y, 2.0)]).unwrap();
    p.add_row(RowBounds::at_most(18.0), &[(x, 3.0), (y, 2.0)]).unwrap();
    let s = solve(&p, &opts()).unwrap();
    // strong duality: b' y == objective
    let b_dot_y: f64 = [4.0, 12.0, 18.0].iter().zip(&s.duals).map(|(&b, &d)| b * d).sum();
    assert_close(b_dot_y, s.objective, 1e-6, "strong duality");
}

#[test]
fn solution_feasible_within_tolerance_on_random_packing() {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    let mut rng = StdRng::seed_from_u64(2024);
    for trial in 0..10 {
        let n = 30;
        let m = 12;
        let mut p = Problem::new(Sense::Maximize);
        for _ in 0..n {
            p.add_col(1.0, VarBounds::non_negative()).unwrap();
        }
        for _ in 0..m {
            let k = rng.random_range(2..6);
            let entries: Vec<(usize, f64)> = (0..k)
                .map(|_| (rng.random_range(0..n), rng.random::<f64>() * 2.0 + 0.01))
                .collect();
            p.add_row(RowBounds::at_most(1.0 + rng.random::<f64>()), &entries).unwrap();
        }
        // cover every column so the maximization stays bounded
        let cover: Vec<(usize, f64)> = (0..n).map(|j| (j, 0.05)).collect();
        p.add_row(RowBounds::at_most(50.0), &cover).unwrap();
        let s = solve(&p, &opts()).unwrap();
        assert_eq!(s.status, SolveStatus::Optimal, "trial {trial}");
        assert!(p.max_violation(&s.x) < 1e-6, "trial {trial}: viol {}", p.max_violation(&s.x));
    }
}

#[test]
fn scaling_off_still_solves() {
    let mut p = Problem::new(Sense::Maximize);
    let x = p.add_col(1.0, VarBounds::non_negative()).unwrap();
    p.add_row(RowBounds::at_most(2.0), &[(x, 1e-4)]).unwrap();
    let mut o = opts();
    o.scaling = false;
    let s = solve(&p, &o).unwrap();
    assert_eq!(s.status, SolveStatus::Optimal);
    assert_close(s.objective, 2e4, 1e-3, "objective");
}

#[test]
fn iteration_limit_reported() {
    let mut p = Problem::new(Sense::Maximize);
    let x = p.add_col(3.0, VarBounds::non_negative()).unwrap();
    let y = p.add_col(5.0, VarBounds::non_negative()).unwrap();
    p.add_row(RowBounds::at_most(4.0), &[(x, 1.0)]).unwrap();
    p.add_row(RowBounds::at_most(12.0), &[(y, 2.0)]).unwrap();
    let mut o = opts();
    o.max_iter = 0;
    let s = solve(&p, &o).unwrap();
    assert_eq!(s.status, SolveStatus::IterationLimit);
}

#[test]
fn equality_chain_solved() {
    // x0 = 1; x_{i} - x_{i-1} = 1 -> x_i = i + 1; min sum
    let mut p = Problem::new(Sense::Minimize);
    let n = 10;
    let cols: Vec<usize> = (0..n).map(|_| p.add_col(1.0, VarBounds::free()).unwrap()).collect();
    p.add_row(RowBounds::equal(1.0), &[(cols[0], 1.0)]).unwrap();
    for i in 1..n {
        p.add_row(RowBounds::equal(1.0), &[(cols[i], 1.0), (cols[i - 1], -1.0)]).unwrap();
    }
    let s = solve(&p, &opts()).unwrap();
    assert_eq!(s.status, SolveStatus::Optimal);
    for (i, &xi) in s.x.iter().enumerate() {
        assert_close(xi, (i + 1) as f64, 1e-6, "x_i");
    }
}

// --- dual reoptimization (solve_parametric with StepHint::RhsOnly) ---

/// `max x0 + x1` s.t. `x0 + x1 ≤ rhs0`, `0.9 x0 + 0.2 x1 ≤ rhs1`,
/// `x ∈ [0, 10]` — a miniature O-UMP cell.
fn budget_lp(rhs0: f64, rhs1: f64) -> Problem {
    let mut p = Problem::new(Sense::Maximize);
    let a = p.add_col(1.0, VarBounds { lower: 0.0, upper: 10.0 }).unwrap();
    let b = p.add_col(1.0, VarBounds { lower: 0.0, upper: 10.0 }).unwrap();
    p.add_row(RowBounds::at_most(rhs0), &[(a, 1.0), (b, 1.0)]).unwrap();
    p.add_row(RowBounds::at_most(rhs1), &[(a, 0.9), (b, 0.2)]).unwrap();
    p
}

#[test]
fn dual_reopt_matches_cold_on_shrinking_rhs() {
    // shrinking the budget kicks the old vertex out of the polytope —
    // the warm primal path would cold-start, the dual path re-optimizes
    let o = opts();
    let first = solve_parametric(&budget_lp(8.0, 4.0), &o, None, StepHint::Fresh).unwrap();
    assert_eq!(first.solution.status, SolveStatus::Optimal);
    let basis = first.basis.clone().expect("optimal solve snapshots");

    for (rhs0, rhs1) in [(5.0, 3.0), (2.0, 1.0), (6.0, 0.5), (0.5, 0.25)] {
        let p = budget_lp(rhs0, rhs1);
        let dual = solve_parametric(&p, &o, Some(&basis), StepHint::RhsOnly).unwrap();
        let cold = solve(&p, &o).unwrap();
        assert_eq!(dual.solution.status, SolveStatus::Optimal, "({rhs0},{rhs1})");
        assert!(
            (dual.solution.objective - cold.objective).abs() < 1e-9,
            "({rhs0},{rhs1}): dual {} vs cold {}",
            dual.solution.objective,
            cold.objective
        );
        assert!(p.max_violation(&dual.solution.x) < 1e-7);
        assert_eq!(dual.stats.algorithm, Algorithm::DualReopt, "({rhs0},{rhs1})");
        assert!(!dual.stats.dual_fallback);
    }
}

#[test]
fn dual_reopt_handles_bound_moves() {
    // tightening a column cap is a bounds-only move: still dual-legal
    let o = opts();
    let first = solve_parametric(&budget_lp(8.0, 4.0), &o, None, StepHint::Fresh).unwrap();
    let basis = first.basis.clone().unwrap();

    let mut p = budget_lp(8.0, 4.0);
    p.set_bounds(1, VarBounds { lower: 0.0, upper: 1.5 }).unwrap();
    let dual = solve_parametric(&p, &o, Some(&basis), StepHint::RhsOnly).unwrap();
    let cold = solve(&p, &o).unwrap();
    assert_eq!(dual.solution.status, SolveStatus::Optimal);
    assert!((dual.solution.objective - cold.objective).abs() < 1e-9);
    assert!(p.max_violation(&dual.solution.x) < 1e-7);
}

#[test]
fn wrong_rhs_only_hint_still_solves_correctly() {
    // the "rhs-only" claim is false here: the objective now rewards `a`
    // five-fold, making the restored basis dual infeasible. Every
    // column of this problem is boxed (or implied-boxable through its
    // row), so the dual path repairs the wrong-sign reduced costs by
    // bound flips and must still land exactly on the cold answer — a
    // wrong hint may cost time, never correctness.
    let o = opts();
    let first = solve_parametric(&budget_lp(8.0, 4.0), &o, None, StepHint::Fresh).unwrap();
    let basis = first.basis.clone().unwrap();

    let mut p = Problem::new(Sense::Maximize);
    let a = p.add_col(5.0, VarBounds { lower: 0.0, upper: 10.0 }).unwrap();
    let b = p.add_col(-1.0, VarBounds { lower: 0.0, upper: 10.0 }).unwrap();
    p.add_row(RowBounds::at_most(5.0), &[(a, 1.0), (b, 1.0)]).unwrap();
    p.add_row(RowBounds::at_most(3.0), &[(a, 0.9), (b, 0.2)]).unwrap();
    let out = solve_parametric(&p, &o, Some(&basis), StepHint::RhsOnly).unwrap();
    let cold = solve(&p, &o).unwrap();
    assert_eq!(out.solution.status, SolveStatus::Optimal);
    assert!((out.solution.objective - cold.objective).abs() < 1e-9);
    assert!(p.max_violation(&out.solution.x) < 1e-7);
}

#[test]
fn unrepairable_dual_start_falls_back_not_corrupts() {
    // `z` has no upper bound and sits in TWO rows, so no flip and no
    // single-row implied bound can repair its wrong-sign reduced cost:
    // the dual path must bow out and the primal path takes over with a
    // correct answer
    let o = opts();
    let build = |c_z: f64| {
        let mut p = Problem::new(Sense::Maximize);
        let a = p.add_col(1.0, VarBounds { lower: 0.0, upper: 10.0 }).unwrap();
        let z = p.add_col(c_z, VarBounds { lower: 0.0, upper: f64::INFINITY }).unwrap();
        p.add_row(RowBounds::at_most(8.0), &[(a, 1.0), (z, 1.0)]).unwrap();
        p.add_row(RowBounds::at_most(6.0), &[(a, 0.5), (z, 1.0)]).unwrap();
        p
    };
    // worthless `z` stays parked at its lower bound in the optimum
    let first = solve_parametric(&build(0.0), &o, None, StepHint::Fresh).unwrap();
    let basis = first.basis.clone().unwrap();

    // now `z` is rewarded: the restored basis is dual infeasible at an
    // unparkable, un-boundable column
    let p = build(5.0);
    let out = solve_parametric(&p, &o, Some(&basis), StepHint::RhsOnly).unwrap();
    let cold = solve(&p, &o).unwrap();
    assert_eq!(out.solution.status, SolveStatus::Optimal);
    assert!((out.solution.objective - cold.objective).abs() < 1e-9);
    assert!(p.max_violation(&out.solution.x) < 1e-7);
    assert!(out.stats.dual_fallback, "must have bowed out: {:?}", out.stats);
    assert_ne!(out.stats.algorithm, Algorithm::DualReopt);
}

#[test]
fn dual_reopt_grid_sweep_uses_few_iterations() {
    // an ascending-then-descending budget sweep: every step re-uses the
    // previous optimal basis through the dual path
    let o = opts();
    let mut basis =
        solve_parametric(&budget_lp(1.0, 0.5), &o, None, StepHint::Fresh).unwrap().basis;
    for step in [2.0, 3.0, 4.5, 6.0, 4.0, 2.5, 1.5] {
        let p = budget_lp(step, step / 2.0);
        let out = solve_parametric(&p, &o, basis.as_ref(), StepHint::RhsOnly).unwrap();
        let cold = solve(&p, &o).unwrap();
        assert_eq!(out.solution.status, SolveStatus::Optimal);
        assert!((out.solution.objective - cold.objective).abs() < 1e-9, "step {step}");
        assert!(
            out.solution.iterations <= cold.iterations,
            "step {step}: dual used {} iters, cold {}",
            out.solution.iterations,
            cold.iterations
        );
        basis = out.basis;
    }
}

#[test]
fn dual_reopt_detects_infeasible_bounds_via_fallback() {
    // moving a bound so the polytope empties: the dual path sees an
    // unbounded dual ray, the primal phase 1 confirms infeasibility
    let o = opts();
    let mut p0 = Problem::new(Sense::Maximize);
    let a = p0.add_col(1.0, VarBounds { lower: 0.0, upper: 10.0 }).unwrap();
    p0.add_row(RowBounds { lower: 2.0, upper: 8.0 }, &[(a, 1.0)]).unwrap();
    let first = solve_parametric(&p0, &o, None, StepHint::Fresh).unwrap();
    let basis = first.basis.clone().unwrap();

    let mut p1 = Problem::new(Sense::Maximize);
    let a = p1.add_col(1.0, VarBounds { lower: 0.0, upper: 1.0 }).unwrap();
    p1.add_row(RowBounds { lower: 2.0, upper: 8.0 }, &[(a, 1.0)]).unwrap();
    let out = solve_parametric(&p1, &o, Some(&basis), StepHint::RhsOnly).unwrap();
    assert_eq!(out.solution.status, SolveStatus::Infeasible);
}

#[test]
fn ratio_test_tie_prefers_large_pivot() {
    // two rows block at the same (degenerate, zero) step; the tiny
    // 1e-3 pivot appears first, the 1.0 pivot second. The tie-break
    // must take the large pivot so the eta update stays conditioned.
    let mut p = Problem::new(Sense::Maximize);
    let x = p.add_col(1.0, VarBounds { lower: 0.0, upper: 5.0 }).unwrap();
    p.add_row(RowBounds::at_most(0.0), &[(x, 1e-3)]).unwrap();
    p.add_row(RowBounds::at_most(0.0), &[(x, 1.0)]).unwrap();
    let mut o = opts();
    o.scaling = false; // keep the raw pivot magnitudes
    let s = solve(&p, &o).unwrap();
    assert_eq!(s.status, SolveStatus::Optimal);
    assert_close(s.objective, 0.0, 1e-12, "objective");

    // and directly: fabricate the blocked step and inspect the choice
    let sf = StandardForm::from_problem(&p);
    let core = Core::new(sf, o.clone());
    // moving x up changes slack0 by -1e-3 t, slack1 by -1.0 t; both
    // slacks sit at 0 with lower bound 0 -> both ratios are exactly 0
    let w = vec![1e-3, 1.0];
    match ratio_test(&core, 0, Direction::Up, &w) {
        RatioOutcome::Pivot { t, leaving_pos, .. } => {
            assert_eq!(leaving_pos, 1, "the 1.0-magnitude pivot must win the tie");
            assert_close(t, 0.0, 1e-12, "degenerate step");
        }
        other => panic!("expected a pivot, got {other:?}"),
    }
}

#[test]
fn near_tie_within_pivot_window_prefers_large_pivot() {
    // ratios 0 (pivot 1e-3) and 5e-10 (pivot 1.0): farther than the old
    // blunt 1e-9 ratio tolerance would reliably see, but well inside
    // the tol_pivot-adjusted window (1e-9 / 1e-3 = 1e-6), so the large
    // pivot must still win.
    let mut p = Problem::new(Sense::Maximize);
    let x = p.add_col(1.0, VarBounds { lower: 0.0, upper: 5.0 }).unwrap();
    p.add_row(RowBounds::at_most(0.0), &[(x, 1e-3)]).unwrap();
    p.add_row(RowBounds::at_most(5e-10), &[(x, 1.0)]).unwrap();
    let mut o = opts();
    o.scaling = false;
    let sf = StandardForm::from_problem(&p);
    let core = Core::new(sf, o);
    let w = vec![1e-3, 1.0];
    match ratio_test(&core, 0, Direction::Up, &w) {
        RatioOutcome::Pivot { leaving_pos, .. } => {
            assert_eq!(leaving_pos, 1, "near-tie in the adjusted window takes the big pivot");
        }
        other => panic!("expected a pivot, got {other:?}"),
    }
}
