//! Unit tests for the revised simplex on hand-checkable models.

use super::*;
use crate::problem::{RowBounds, VarBounds};

fn opts() -> SimplexOptions {
    SimplexOptions::default()
}

fn assert_close(a: f64, b: f64, tol: f64, what: &str) {
    assert!((a - b).abs() <= tol, "{what}: {a} vs {b}");
}

#[test]
fn textbook_max_lp() {
    // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> x=2, y=6, z=36
    let mut p = Problem::new(Sense::Maximize);
    let x = p.add_col(3.0, VarBounds::non_negative()).unwrap();
    let y = p.add_col(5.0, VarBounds::non_negative()).unwrap();
    p.add_row(RowBounds::at_most(4.0), &[(x, 1.0)]).unwrap();
    p.add_row(RowBounds::at_most(12.0), &[(y, 2.0)]).unwrap();
    p.add_row(RowBounds::at_most(18.0), &[(x, 3.0), (y, 2.0)]).unwrap();
    let s = solve(&p, &opts()).unwrap();
    assert_eq!(s.status, SolveStatus::Optimal);
    assert_close(s.objective, 36.0, 1e-7, "objective");
    assert_close(s.x[0], 2.0, 1e-7, "x");
    assert_close(s.x[1], 6.0, 1e-7, "y");
}

#[test]
fn min_with_equality_needs_phase1() {
    // min x + 2y s.t. x + y = 10, x <= 6 -> x=6, y=4, z=14
    let mut p = Problem::new(Sense::Minimize);
    let x = p.add_col(1.0, VarBounds::non_negative()).unwrap();
    let y = p.add_col(2.0, VarBounds::non_negative()).unwrap();
    p.add_row(RowBounds::equal(10.0), &[(x, 1.0), (y, 1.0)]).unwrap();
    p.add_row(RowBounds::at_most(6.0), &[(x, 1.0)]).unwrap();
    let s = solve(&p, &opts()).unwrap();
    assert_eq!(s.status, SolveStatus::Optimal);
    assert_close(s.objective, 14.0, 1e-7, "objective");
    assert_close(s.x[0], 6.0, 1e-7, "x");
    assert_close(s.x[1], 4.0, 1e-7, "y");
}

#[test]
fn geq_rows_with_positive_rhs() {
    // min 2x + 3y s.t. x + y >= 4, x + 3y >= 6 -> x=3, y=1, z=9
    let mut p = Problem::new(Sense::Minimize);
    let x = p.add_col(2.0, VarBounds::non_negative()).unwrap();
    let y = p.add_col(3.0, VarBounds::non_negative()).unwrap();
    p.add_row(RowBounds::at_least(4.0), &[(x, 1.0), (y, 1.0)]).unwrap();
    p.add_row(RowBounds::at_least(6.0), &[(x, 1.0), (y, 3.0)]).unwrap();
    let s = solve(&p, &opts()).unwrap();
    assert_eq!(s.status, SolveStatus::Optimal);
    assert_close(s.objective, 9.0, 1e-7, "objective");
}

#[test]
fn infeasible_detected() {
    // x <= 1 and x >= 3
    let mut p = Problem::new(Sense::Minimize);
    let x = p.add_col(1.0, VarBounds::non_negative()).unwrap();
    p.add_row(RowBounds::at_most(1.0), &[(x, 1.0)]).unwrap();
    p.add_row(RowBounds::at_least(3.0), &[(x, 1.0)]).unwrap();
    let s = solve(&p, &opts()).unwrap();
    assert_eq!(s.status, SolveStatus::Infeasible);
}

#[test]
fn unbounded_detected() {
    // max x with x >= 0 and one irrelevant row
    let mut p = Problem::new(Sense::Maximize);
    let _x = p.add_col(1.0, VarBounds::non_negative()).unwrap();
    let y = p.add_col(0.0, VarBounds::non_negative()).unwrap();
    p.add_row(RowBounds::at_most(5.0), &[(y, 1.0)]).unwrap();
    let s = solve(&p, &opts()).unwrap();
    assert_eq!(s.status, SolveStatus::Unbounded);
}

#[test]
fn upper_bounded_variables_flip() {
    // max x + y with x,y in [0,1] and x + y <= 1.5 -> 1.5
    let mut p = Problem::new(Sense::Maximize);
    let x = p.add_col(1.0, VarBounds::unit()).unwrap();
    let y = p.add_col(1.0, VarBounds::unit()).unwrap();
    p.add_row(RowBounds::at_most(1.5), &[(x, 1.0), (y, 1.0)]).unwrap();
    let s = solve(&p, &opts()).unwrap();
    assert_eq!(s.status, SolveStatus::Optimal);
    assert_close(s.objective, 1.5, 1e-7, "objective");
    assert!(p.max_violation(&s.x) < 1e-7);
}

#[test]
fn free_variable_equality() {
    // min |style| problem: min y s.t. y free, y = 7 - x, x in [0, 3]
    // -> x=3, y=4
    let mut p = Problem::new(Sense::Minimize);
    let x = p.add_col(0.0, VarBounds { lower: 0.0, upper: 3.0 }).unwrap();
    let y = p.add_col(1.0, VarBounds::free()).unwrap();
    p.add_row(RowBounds::equal(7.0), &[(x, 1.0), (y, 1.0)]).unwrap();
    let s = solve(&p, &opts()).unwrap();
    assert_eq!(s.status, SolveStatus::Optimal);
    assert_close(s.objective, 4.0, 1e-7, "objective");
    assert_close(s.x[1], 4.0, 1e-7, "y");
}

#[test]
fn negative_rhs_geq_feasible_at_origin() {
    // y >= -c is satisfied by the origin: no phase 1 needed
    let mut p = Problem::new(Sense::Minimize);
    let y = p.add_col(1.0, VarBounds::non_negative()).unwrap();
    p.add_row(RowBounds::at_least(-2.0), &[(y, 1.0)]).unwrap();
    let s = solve(&p, &opts()).unwrap();
    assert_eq!(s.status, SolveStatus::Optimal);
    assert_close(s.objective, 0.0, 1e-9, "objective");
}

#[test]
fn range_row_respected() {
    // max x s.t. 2 <= x <= 5 via a range row on activity
    let mut p = Problem::new(Sense::Maximize);
    let x = p.add_col(1.0, VarBounds::non_negative()).unwrap();
    p.add_row(RowBounds { lower: 2.0, upper: 5.0 }, &[(x, 1.0)]).unwrap();
    let s = solve(&p, &opts()).unwrap();
    assert_eq!(s.status, SolveStatus::Optimal);
    assert_close(s.objective, 5.0, 1e-7, "objective");
}

#[test]
fn fixed_variable_is_respected() {
    let mut p = Problem::new(Sense::Maximize);
    let x = p.add_col(10.0, VarBounds::fixed(2.0)).unwrap();
    let y = p.add_col(1.0, VarBounds::non_negative()).unwrap();
    p.add_row(RowBounds::at_most(6.0), &[(x, 1.0), (y, 1.0)]).unwrap();
    let s = solve(&p, &opts()).unwrap();
    assert_eq!(s.status, SolveStatus::Optimal);
    assert_close(s.x[0], 2.0, 1e-9, "fixed x");
    assert_close(s.objective, 24.0, 1e-7, "objective");
}

#[test]
fn no_rows_goes_to_best_bounds() {
    let mut p = Problem::new(Sense::Maximize);
    p.add_col(1.0, VarBounds::unit()).unwrap();
    p.add_col(-1.0, VarBounds::unit()).unwrap();
    let s = solve(&p, &opts()).unwrap();
    assert_eq!(s.status, SolveStatus::Optimal);
    assert_eq!(s.x, vec![1.0, 0.0]);
}

#[test]
fn no_rows_unbounded() {
    let mut p = Problem::new(Sense::Maximize);
    p.add_col(1.0, VarBounds::non_negative()).unwrap();
    let s = solve(&p, &opts()).unwrap();
    assert_eq!(s.status, SolveStatus::Unbounded);
}

#[test]
fn degenerate_lp_terminates() {
    // classic degeneracy: several redundant rows through the optimum
    let mut p = Problem::new(Sense::Maximize);
    let x = p.add_col(1.0, VarBounds::non_negative()).unwrap();
    let y = p.add_col(1.0, VarBounds::non_negative()).unwrap();
    for _ in 0..6 {
        p.add_row(RowBounds::at_most(1.0), &[(x, 1.0), (y, 1.0)]).unwrap();
    }
    p.add_row(RowBounds::at_most(1.0), &[(x, 1.0)]).unwrap();
    p.add_row(RowBounds::at_most(1.0), &[(y, 1.0)]).unwrap();
    let s = solve(&p, &opts()).unwrap();
    assert_eq!(s.status, SolveStatus::Optimal);
    assert_close(s.objective, 1.0, 1e-7, "objective");
}

#[test]
fn packing_lp_like_oump() {
    // max sum x s.t. per-"user" budget rows with positive coefficients
    // (the O-UMP shape): 0.1 x0 + 0.5 x1 <= 1; 0.2 x1 + 0.3 x2 <= 1
    let mut p = Problem::new(Sense::Maximize);
    let x0 = p.add_col(1.0, VarBounds::non_negative()).unwrap();
    let x1 = p.add_col(1.0, VarBounds::non_negative()).unwrap();
    let x2 = p.add_col(1.0, VarBounds::non_negative()).unwrap();
    p.add_row(RowBounds::at_most(1.0), &[(x0, 0.1), (x1, 0.5)]).unwrap();
    p.add_row(RowBounds::at_most(1.0), &[(x1, 0.2), (x2, 0.3)]).unwrap();
    let s = solve(&p, &opts()).unwrap();
    assert_eq!(s.status, SolveStatus::Optimal);
    // optimum: x1 = 0 (expensive in both rows), x0 = 10, x2 = 10/3
    assert_close(s.objective, 10.0 + 10.0 / 3.0, 1e-6, "objective");
    assert!(p.max_violation(&s.x) < 1e-7);
}

#[test]
fn budget_scaling_linearity() {
    // for Mx <= B·1, x >= 0 the optimum scales linearly in B
    let build = |b: f64| {
        let mut p = Problem::new(Sense::Maximize);
        let x0 = p.add_col(1.0, VarBounds::non_negative()).unwrap();
        let x1 = p.add_col(1.0, VarBounds::non_negative()).unwrap();
        p.add_row(RowBounds::at_most(b), &[(x0, 0.3), (x1, 0.7)]).unwrap();
        p.add_row(RowBounds::at_most(b), &[(x0, 0.6), (x1, 0.1)]).unwrap();
        p
    };
    let s1 = solve(&build(1.0), &opts()).unwrap();
    let s3 = solve(&build(3.0), &opts()).unwrap();
    assert_close(s3.objective, 3.0 * s1.objective, 1e-6, "linearity in B");
}

#[test]
fn duals_satisfy_strong_duality_on_max_lp() {
    let mut p = Problem::new(Sense::Maximize);
    let x = p.add_col(3.0, VarBounds::non_negative()).unwrap();
    let y = p.add_col(5.0, VarBounds::non_negative()).unwrap();
    p.add_row(RowBounds::at_most(4.0), &[(x, 1.0)]).unwrap();
    p.add_row(RowBounds::at_most(12.0), &[(y, 2.0)]).unwrap();
    p.add_row(RowBounds::at_most(18.0), &[(x, 3.0), (y, 2.0)]).unwrap();
    let s = solve(&p, &opts()).unwrap();
    // strong duality: b' y == objective
    let b_dot_y: f64 = [4.0, 12.0, 18.0].iter().zip(&s.duals).map(|(&b, &d)| b * d).sum();
    assert_close(b_dot_y, s.objective, 1e-6, "strong duality");
}

#[test]
fn solution_feasible_within_tolerance_on_random_packing() {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    let mut rng = StdRng::seed_from_u64(2024);
    for trial in 0..10 {
        let n = 30;
        let m = 12;
        let mut p = Problem::new(Sense::Maximize);
        for _ in 0..n {
            p.add_col(1.0, VarBounds::non_negative()).unwrap();
        }
        for _ in 0..m {
            let k = rng.random_range(2..6);
            let entries: Vec<(usize, f64)> = (0..k)
                .map(|_| (rng.random_range(0..n), rng.random::<f64>() * 2.0 + 0.01))
                .collect();
            p.add_row(RowBounds::at_most(1.0 + rng.random::<f64>()), &entries).unwrap();
        }
        // cover every column so the maximization stays bounded
        let cover: Vec<(usize, f64)> = (0..n).map(|j| (j, 0.05)).collect();
        p.add_row(RowBounds::at_most(50.0), &cover).unwrap();
        let s = solve(&p, &opts()).unwrap();
        assert_eq!(s.status, SolveStatus::Optimal, "trial {trial}");
        assert!(p.max_violation(&s.x) < 1e-6, "trial {trial}: viol {}", p.max_violation(&s.x));
    }
}

#[test]
fn scaling_off_still_solves() {
    let mut p = Problem::new(Sense::Maximize);
    let x = p.add_col(1.0, VarBounds::non_negative()).unwrap();
    p.add_row(RowBounds::at_most(2.0), &[(x, 1e-4)]).unwrap();
    let mut o = opts();
    o.scaling = false;
    let s = solve(&p, &o).unwrap();
    assert_eq!(s.status, SolveStatus::Optimal);
    assert_close(s.objective, 2e4, 1e-3, "objective");
}

#[test]
fn iteration_limit_reported() {
    let mut p = Problem::new(Sense::Maximize);
    let x = p.add_col(3.0, VarBounds::non_negative()).unwrap();
    let y = p.add_col(5.0, VarBounds::non_negative()).unwrap();
    p.add_row(RowBounds::at_most(4.0), &[(x, 1.0)]).unwrap();
    p.add_row(RowBounds::at_most(12.0), &[(y, 2.0)]).unwrap();
    let mut o = opts();
    o.max_iter = 0;
    let s = solve(&p, &o).unwrap();
    assert_eq!(s.status, SolveStatus::IterationLimit);
}

#[test]
fn equality_chain_solved() {
    // x0 = 1; x_{i} - x_{i-1} = 1 -> x_i = i + 1; min sum
    let mut p = Problem::new(Sense::Minimize);
    let n = 10;
    let cols: Vec<usize> = (0..n).map(|_| p.add_col(1.0, VarBounds::free()).unwrap()).collect();
    p.add_row(RowBounds::equal(1.0), &[(cols[0], 1.0)]).unwrap();
    for i in 1..n {
        p.add_row(RowBounds::equal(1.0), &[(cols[i], 1.0), (cols[i - 1], -1.0)]).unwrap();
    }
    let s = solve(&p, &opts()).unwrap();
    assert_eq!(s.status, SolveStatus::Optimal);
    for (i, &xi) in s.x.iter().enumerate() {
        assert_close(xi, (i + 1) as f64, 1e-6, "x_i");
    }
}
