//! Entering-variable selection (pricing).
//!
//! Dantzig pricing picks the most-violated reduced cost; Bland's rule
//! picks the eligible column with the smallest index and guarantees
//! finiteness under degeneracy. The driver switches from the former to
//! the latter after a stall.

use super::{Core, VarStatus};

/// Which way the entering variable moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Direction {
    /// Increase from its lower bound (or from zero for free variables).
    Up,
    /// Decrease from its upper bound.
    Down,
}

impl Direction {
    /// `+1.0` for [`Direction::Up`], `-1.0` for [`Direction::Down`].
    pub(crate) fn sign(self) -> f64 {
        match self {
            Direction::Up => 1.0,
            Direction::Down => -1.0,
        }
    }
}

/// Eligibility of column `j` given its reduced cost `d` (minimization).
fn eligible(core: &Core, j: usize, d: f64) -> Option<Direction> {
    let (lo, hi) = core.bounds_of(j);
    if hi - lo <= 0.0 {
        return None; // fixed variable can never move
    }
    let tol = core.tol_dual();
    match core.status_of(j) {
        VarStatus::Basic(_) => None,
        VarStatus::AtLower => (d < -tol).then_some(Direction::Up),
        VarStatus::AtUpper => (d > tol).then_some(Direction::Down),
        VarStatus::Free => {
            if d < -tol {
                Some(Direction::Up)
            } else if d > tol {
                Some(Direction::Down)
            } else {
                None
            }
        }
    }
}

/// Reduced cost of column `j`: `d_j = c_j − y' A_j`.
#[inline]
fn reduced_cost(core: &Core, cost: &[f64], y: &[f64], j: usize) -> f64 {
    cost[j] - core.matrix().col_dot(j, y)
}

/// Dantzig rule: eligible column with the largest `|d_j|`.
pub(crate) fn price_dantzig(core: &Core, cost: &[f64], y: &[f64]) -> Option<(usize, Direction)> {
    let mut best: Option<(usize, Direction, f64)> = None;
    for j in 0..core.n_total() {
        if matches!(core.status_of(j), VarStatus::Basic(_)) {
            continue;
        }
        let d = reduced_cost(core, cost, y, j);
        if let Some(dir) = eligible(core, j, d) {
            let mag = d.abs();
            if best.is_none_or(|(_, _, m)| mag > m) {
                best = Some((j, dir, mag));
            }
        }
    }
    best.map(|(j, dir, _)| (j, dir))
}

/// Bland rule: eligible column with the smallest index.
pub(crate) fn price_bland(core: &Core, cost: &[f64], y: &[f64]) -> Option<(usize, Direction)> {
    for j in 0..core.n_total() {
        if matches!(core.status_of(j), VarStatus::Basic(_)) {
            continue;
        }
        let d = reduced_cost(core, cost, y, j);
        if let Some(dir) = eligible(core, j, d) {
            return Some((j, dir));
        }
    }
    None
}
