//! Entering-variable selection (pricing).
//!
//! The workhorse is **devex pricing** (Forrest–Goldfarb): each column
//! carries a reference weight approximating `‖B⁻¹ A_j‖²` over the
//! current reference framework, and the entering column maximizes
//! `d_j² / w_j` — steepest-edge-like behaviour at a fraction of the
//! cost. A small candidate list amortizes the full pricing scan across
//! iterations. Bland's rule (smallest eligible index) remains as the
//! anti-cycling fallback the driver switches to after a stall.

use super::{Core, VarStatus};
use crate::sparse::SparseVec;

/// Which way the entering variable moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Direction {
    /// Increase from its lower bound (or from zero for free variables).
    Up,
    /// Decrease from its upper bound.
    Down,
}

impl Direction {
    /// `+1.0` for [`Direction::Up`], `-1.0` for [`Direction::Down`].
    pub(crate) fn sign(self) -> f64 {
        match self {
            Direction::Up => 1.0,
            Direction::Down => -1.0,
        }
    }
}

/// Eligibility of column `j` given its reduced cost `d` (minimization).
fn eligible(core: &Core, j: usize, d: f64) -> Option<Direction> {
    let (lo, hi) = core.bounds_of(j);
    if hi - lo <= 0.0 {
        return None; // fixed variable can never move
    }
    let tol = core.tol_dual();
    match core.status_of(j) {
        VarStatus::Basic(_) => None,
        VarStatus::AtLower => (d < -tol).then_some(Direction::Up),
        VarStatus::AtUpper => (d > tol).then_some(Direction::Down),
        VarStatus::Free => {
            if d < -tol {
                Some(Direction::Up)
            } else if d > tol {
                Some(Direction::Down)
            } else {
                None
            }
        }
    }
}

/// Reduced cost of column `j`: `d_j = c_j − y' A_j`.
#[inline]
fn reduced_cost(core: &Core, cost: &[f64], y: &[f64], j: usize) -> f64 {
    cost[j] - core.matrix().col_dot(j, y)
}

/// Bland rule: eligible column with the smallest index.
pub(crate) fn price_bland(core: &Core, cost: &[f64], y: &[f64]) -> Option<(usize, Direction)> {
    for j in 0..core.n_total() {
        if matches!(core.status_of(j), VarStatus::Basic(_)) {
            continue;
        }
        let d = reduced_cost(core, cost, y, j);
        if let Some(dir) = eligible(core, j, d) {
            return Some((j, dir));
        }
    }
    None
}

/// Shortlist size kept after a full pricing scan. Big enough that grid
/// LPs (hundreds to low thousands of columns) rarely exhaust it between
/// refreshes, small enough that partial scans stay cheap.
const CANDIDATE_LIST_LEN: usize = 32;

/// Partial-pricing scans allowed before the next mandatory full scan.
/// Bounds how stale the shortlist's *selection pool* can get (reduced
/// costs themselves are recomputed fresh every call).
const PARTIAL_SCANS: usize = 12;

/// Weight magnitude that triggers a reference-framework reset. Devex
/// weights only ever grow between resets; past this they stop
/// discriminating and risk overflow-ish scores.
const WEIGHT_RESET: f64 = 1e8;

/// Columns priced per sector on the sparse route's partial scan. One
/// sector of reduced costs is a few thousand sparse dot products —
/// cheap — while a full scan over 10⁵⁺ columns per iteration is what
/// makes dense pricing quadratic overall.
const SECTOR_LEN: usize = 1024;

/// Devex pricing state: reference weights plus a candidate shortlist.
///
/// Weights approximate steepest-edge norms relative to the reference
/// framework (the nonbasic set at the last reset, where all weights are
/// 1). Selection maximizes `d_j²/w_j`; ties break toward the smallest
/// column index so pricing is deterministic.
pub(crate) struct Devex {
    weights: Vec<f64>,
    candidates: Vec<usize>,
    partial_scans_left: usize,
    /// Rotating start of the next sector scan (sparse route only).
    cursor: usize,
    /// Running maximum weight since the last reset (sparse route only;
    /// the dense update recomputes its maximum on every scan).
    max_weight: f64,
}

impl Devex {
    pub(crate) fn new(n_total: usize) -> Devex {
        Devex {
            weights: vec![1.0; n_total],
            candidates: Vec::new(),
            partial_scans_left: 0,
            cursor: 0,
            max_weight: 1.0,
        }
    }

    /// Pick the entering column: scan the candidate shortlist while it
    /// stays fresh, falling back to (and refreshing from) a full scan.
    /// `None` is only ever returned after a full scan found no eligible
    /// column, so it is a sound optimality certificate.
    pub(crate) fn price(
        &mut self,
        core: &Core,
        cost: &[f64],
        y: &[f64],
    ) -> Option<(usize, Direction)> {
        if self.partial_scans_left > 0 {
            let mut best: Option<(usize, Direction, f64)> = None;
            for &j in &self.candidates {
                if matches!(core.status_of(j), VarStatus::Basic(_)) {
                    continue;
                }
                let d = reduced_cost(core, cost, y, j);
                if let Some(dir) = eligible(core, j, d) {
                    let score = d * d / self.weights[j];
                    if best.is_none_or(|(_, _, s)| score > s) {
                        best = Some((j, dir, score));
                    }
                }
            }
            if let Some((j, dir, _)) = best {
                self.partial_scans_left -= 1;
                return Some((j, dir));
            }
            // shortlist exhausted: only a full scan may declare optimality
        }

        let mut scored: Vec<(usize, Direction, f64)> = Vec::new();
        for j in 0..core.n_total() {
            if matches!(core.status_of(j), VarStatus::Basic(_)) {
                continue;
            }
            let d = reduced_cost(core, cost, y, j);
            if let Some(dir) = eligible(core, j, d) {
                scored.push((j, dir, d * d / self.weights[j]));
            }
        }
        // descending score, ascending index on ties (deterministic)
        scored.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
        scored.truncate(CANDIDATE_LIST_LEN);
        self.candidates = scored.iter().map(|&(j, _, _)| j).collect();
        self.partial_scans_left = PARTIAL_SCANS;
        scored.first().map(|&(j, dir, _)| (j, dir))
    }

    /// Update reference weights after a pivot that enters `q` in basis
    /// row `leaving_pos`. `w_col` is `B⁻¹ A_q` (the FTRAN'd entering
    /// column) and `rho` is `B⁻ᵀ e_r` — both against the *pre-pivot*
    /// basis — so `rho · A_j` is the pivot-row entry `α_j`.
    pub(crate) fn update(
        &mut self,
        core: &Core,
        q: usize,
        leaving_pos: usize,
        w_col: &[f64],
        rho: &[f64],
    ) {
        let alpha_q = w_col[leaving_pos];
        if alpha_q.abs() < 1e-12 {
            return; // degenerate pivot row: keep the old weights
        }
        let gamma_q = self.weights[q].max(1.0);
        let ratio2 = gamma_q / (alpha_q * alpha_q);
        let mut max_weight = 0.0f64;
        for j in 0..core.n_total() {
            if j == q || matches!(core.status_of(j), VarStatus::Basic(_)) {
                continue;
            }
            let alpha_j = core.matrix().col_dot(j, rho);
            if alpha_j != 0.0 {
                let cand = alpha_j * alpha_j * ratio2;
                if cand > self.weights[j] {
                    self.weights[j] = cand;
                }
            }
            max_weight = max_weight.max(self.weights[j]);
        }
        // the leaving variable joins the nonbasic set with the weight
        // the entering edge had, scaled by the pivot
        let leaving = core.basis_col(leaving_pos);
        self.weights[leaving] = ratio2.max(1.0);
        if max_weight.max(self.weights[leaving]) > WEIGHT_RESET {
            self.weights.fill(1.0);
        }
    }

    /// Sparse-route pricing: consume the candidate shortlist while it
    /// stays fresh, then refresh it by scanning rotating sectors of
    /// `SECTOR_LEN` columns starting at the cursor, stopping at the
    /// first sector that yields any eligible column. Also returns the
    /// selected column's reduced cost (the caller's incremental dual
    /// update needs it). `None` is returned only after a *full* wrap
    /// of every sector found nothing eligible — a sound optimality
    /// signal against the duals `y` that were passed in (the caller
    /// still re-confirms against freshly computed duals).
    pub(crate) fn price_sparse(
        &mut self,
        core: &Core,
        cost: &[f64],
        y: &[f64],
    ) -> Option<(usize, Direction, f64)> {
        if self.partial_scans_left > 0 {
            let mut best: Option<(usize, Direction, f64, f64)> = None; // (j, dir, d, score)
            for &j in &self.candidates {
                if matches!(core.status_of(j), VarStatus::Basic(_)) {
                    continue;
                }
                let d = reduced_cost(core, cost, y, j);
                if let Some(dir) = eligible(core, j, d) {
                    let score = d * d / self.weights[j];
                    if best.is_none_or(|(_, _, _, s)| score > s) {
                        best = Some((j, dir, d, score));
                    }
                }
            }
            if let Some((j, dir, d, _)) = best {
                self.partial_scans_left -= 1;
                return Some((j, dir, d));
            }
            // shortlist exhausted: fall through to the sector scan
        }

        let n = core.n_total();
        let mut scored: Vec<(usize, Direction, f64, f64)> = Vec::new();
        let mut scanned = 0usize;
        while scanned < n {
            let sector = SECTOR_LEN.min(n - scanned);
            for off in 0..sector {
                let j = (self.cursor + off) % n;
                if matches!(core.status_of(j), VarStatus::Basic(_)) {
                    continue;
                }
                let d = reduced_cost(core, cost, y, j);
                if let Some(dir) = eligible(core, j, d) {
                    scored.push((j, dir, d, d * d / self.weights[j]));
                }
            }
            self.cursor = (self.cursor + sector) % n;
            scanned += sector;
            if !scored.is_empty() {
                break;
            }
        }
        if scored.is_empty() {
            return None; // full wrap, nothing eligible
        }
        // descending score; Vec order within a sector is ascending from
        // the cursor, so ties stay deterministic
        scored.sort_by(|a, b| b.3.partial_cmp(&a.3).unwrap_or(std::cmp::Ordering::Equal));
        scored.truncate(CANDIDATE_LIST_LEN);
        self.candidates = scored.iter().map(|&(j, _, _, _)| j).collect();
        self.partial_scans_left = PARTIAL_SCANS;
        scored.first().map(|&(j, dir, d, _)| (j, dir, d))
    }

    /// Sparse-route weight update. Equivalent to [`Devex::update`] but
    /// the pivot-row entries `α_j = ρ' A_j` are accumulated through the
    /// CSR mirror over `rho`'s nonzero rows only: any column that does
    /// not intersect the pivot row's pattern has `α_j = 0` exactly and
    /// keeps its weight untouched. `acc` is a caller-owned scratch of
    /// length `n_total`, cleared on exit.
    pub(crate) fn update_sparse(
        &mut self,
        core: &Core,
        q: usize,
        leaving_pos: usize,
        alpha_q: f64,
        rho: &SparseVec,
        acc: &mut SparseVec,
    ) {
        if alpha_q.abs() < 1e-12 {
            return; // degenerate pivot row: keep the old weights
        }
        let gamma_q = self.weights[q].max(1.0);
        let ratio2 = gamma_q / (alpha_q * alpha_q);
        // Weight refinement pays rho-nnz × CSR-row-length per pivot.
        // Past this density the refinement costs more than the pricing
        // quality it buys (weights are heuristic only — staleness never
        // affects correctness), so keep the old weights and just reseed
        // the leaving variable's below.
        if rho.pattern.len() <= (core.n_rows_m() / 8).max(64) {
            let csr = core.csr().expect("sparse route built the CSR mirror before pivoting");
            for &i in &rho.pattern {
                let ri = rho.values[i];
                if ri == 0.0 {
                    continue;
                }
                let (cols, vals) = csr.row(i);
                for (&j, &v) in cols.iter().zip(vals) {
                    acc.add(j, v * ri);
                }
            }
            for &j in &acc.pattern {
                if j == q || matches!(core.status_of(j), VarStatus::Basic(_)) {
                    continue;
                }
                let alpha_j = acc.values[j];
                if alpha_j != 0.0 {
                    let cand = alpha_j * alpha_j * ratio2;
                    if cand > self.weights[j] {
                        self.weights[j] = cand;
                        self.max_weight = self.max_weight.max(cand);
                    }
                }
            }
            acc.clear();
        }
        let leaving = core.basis_col(leaving_pos);
        self.weights[leaving] = ratio2.max(1.0);
        self.max_weight = self.max_weight.max(self.weights[leaving]);
        if self.max_weight > WEIGHT_RESET {
            self.weights.fill(1.0);
            self.max_weight = 1.0;
        }
    }
}
