//! Basis snapshots for warm-started solves.
//!
//! A [`Basis`] records, for every standard-form column (structural and
//! slack), whether it was basic or parked at a bound when a solve
//! reached optimality. Re-solving a *related* problem — same rows and
//! columns, different right-hand side, bounds, or objective, as happens
//! across a privacy-budget grid — can restore the snapshot, refactorize
//! once, and skip phase 1 entirely when the old basis is still primal
//! feasible. When it is not (or the basis went singular under the new
//! data), the caller falls back to a cold start, so warm starting never
//! affects correctness, only speed.

use crate::standard::StandardForm;

/// Nonbasic/basic role of one standard-form column in a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SnapStatus {
    /// Basic (its row position is recorded in [`Basis::rows`]).
    Basic,
    /// Nonbasic at its lower bound.
    AtLower,
    /// Nonbasic at its upper bound.
    AtUpper,
    /// Nonbasic free column parked at zero.
    Free,
}

/// Snapshot of a simplex basis at optimality, reusable to warm-start a
/// solve of a problem with the same row/column shape.
///
/// Obtain one from [`crate::simplex::solve_with_basis`] and feed it to
/// the next call. Snapshots are shape-checked on restore; a mismatching
/// or numerically unusable snapshot silently degrades to a cold start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Basis {
    /// Row count of the snapshot's standard form.
    pub(crate) m: usize,
    /// Standard-form column count (structural + one slack per row).
    pub(crate) n: usize,
    /// Structural column count.
    pub(crate) n_structural: usize,
    /// Status per standard-form column.
    pub(crate) statuses: Vec<SnapStatus>,
    /// `rows[i]` = the column basic in row position `i`.
    pub(crate) rows: Vec<usize>,
}

impl Basis {
    /// Number of constraint rows the snapshot was taken over.
    pub fn n_rows(&self) -> usize {
        self.m
    }

    /// Number of structural (user) columns the snapshot was taken over.
    pub fn n_structural(&self) -> usize {
        self.n_structural
    }

    /// Whether the snapshot is shape-compatible with a standard form.
    pub(crate) fn fits(&self, sf: &StandardForm) -> bool {
        self.m == sf.m && self.n == sf.n && self.n_structural == sf.n_structural
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_accessors_and_fit() {
        let b = Basis {
            m: 2,
            n: 5,
            n_structural: 3,
            statuses: vec![SnapStatus::AtLower; 5],
            rows: vec![3, 4],
        };
        assert_eq!(b.n_rows(), 2);
        assert_eq!(b.n_structural(), 3);

        use crate::problem::{Problem, RowBounds, Sense, VarBounds};
        let mut p = Problem::new(Sense::Minimize);
        for _ in 0..3 {
            p.add_col(1.0, VarBounds::non_negative()).unwrap();
        }
        p.add_row(RowBounds::at_most(1.0), &[(0, 1.0)]).unwrap();
        p.add_row(RowBounds::at_most(1.0), &[(1, 1.0)]).unwrap();
        let sf = StandardForm::from_problem(&p);
        assert!(b.fits(&sf));
        let mut p2 = p.clone();
        p2.add_row(RowBounds::at_most(1.0), &[(2, 1.0)]).unwrap();
        assert!(!b.fits(&StandardForm::from_problem(&p2)));
    }
}
