//! Bounded-variable dual simplex for parametric reoptimization.
//!
//! Starting point: a basis restored from a previous optimal solve of a
//! problem with the *same matrix, objective, and sense* — only the
//! right-hand side and/or variable bounds moved (a privacy-budget grid
//! step). Such a basis is still **dual feasible** (reduced costs are
//! functions of `A`, `c`, and the basis only), while the recomputed
//! basic values may violate the moved bounds. Each iteration picks the
//! most-violated basic variable to *leave* at its violated bound, prices
//! the pivot row via BTRAN, and runs a **bound-flipping dual ratio
//! test** (Maros/Koberstein style): breakpoints whose boxed nonbasic
//! variable would turn dual infeasible are flipped to their opposite
//! bound as long as the dual objective's slope stays positive, and the
//! breakpoint that exhausts the slope enters the basis. On the grid
//! workload this restores primal feasibility in a handful of pivots —
//! no phase 1, no re-pricing of the whole polytope.
//!
//! The restored basis is *verified*, not trusted: when the step also
//! drifted matrix coefficients (an appended-counts re-release moves
//! every `ln t_ijk` it touches), reduced costs move with them. A
//! **boxed** nonbasic column whose reduced cost crossed zero is
//! repaired by flipping it to its opposite bound — the opposite bound
//! accepts the new sign by definition, so dual feasibility is restored
//! exactly, and the primal damage the flips introduce is precisely what
//! the dual iteration then removes. Only a wrong-sign reduced cost on a
//! column with no opposite bound to flip to (a slack or free column)
//! voids the premise and falls back.
//!
//! The driver ([`super::solve_parametric`]) treats every non-`Optimal`
//! outcome as a cue to fall back to the warm/cold primal path, so this
//! module can afford to be strict about numerical trouble.

use crate::error::LpError;
use crate::factor::lu::LuScratch;
use crate::sparse::SparseVec;

use super::{Core, VarStatus, SPARSE_REFACTOR_MIN};

/// Dual-infeasibility tolerance on the restored basis. Looser than
/// `tol_dual` because the reduced costs come from one fresh BTRAN
/// against re-scaled data rather than from a converged solve; genuine
/// objective or matrix changes blow well past it.
const DUAL_RESTORE_TOL: f64 = 1e-7;

/// Minimum remaining dual-objective slope for a bound flip to be taken
/// during the ratio test; at or below it the breakpoint column enters
/// instead (guards against flipping into dual degeneracy).
const SLOPE_EPS: f64 = 1e-12;

/// Terminal state of a dual reoptimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DualOutcome {
    /// Primal feasibility restored at a dual-feasible basis: optimal.
    Optimal,
    /// The dual is unbounded, i.e. the primal is infeasible. The caller
    /// re-proves this through the primal phase 1 before reporting it.
    PrimalInfeasible,
    /// The iteration cap was hit.
    IterationLimit,
    /// The restored basis was not dual feasible (the step was not the
    /// rhs/bounds-only perturbation the caller claimed, or scaling
    /// drift won): the primal path must take over.
    LostDualFeasibility,
    /// No infeasibility progress for `stall_limit` iterations — hand
    /// over to the primal path and its Bland safeguard.
    Stalled,
}

/// Derive a valid finite bound on each given column's open side from
/// its row's equation and every other column's bounds, tighten the
/// core's working bound to it, and return the columns for flipping.
///
/// Only singleton columns (one row entry — inequality slacks) qualify:
/// their row reads `a·x_j + Σ_k a_rk x_k = b_r`, so
/// `x_j = (b_r − Σ_k a_rk x_k)/a` and the box of the other columns
/// bounds `x_j` from both sides. The tightened bound cuts no feasible
/// point, so the optimum is untouched; it merely gives the dual repair
/// an opposite bound to park the column at. `None` when any column is
/// not a singleton or its implied bound comes out infinite (an
/// unbounded column elsewhere in the row) or crosses the existing
/// bound — the caller falls back to the primal path.
fn implied_opposite_bounds(core: &mut Core, cols: &[usize]) -> Option<Vec<usize>> {
    // target rows, each owned by exactly one repaired column
    let mut targets: Vec<(usize, usize, f64)> = Vec::with_capacity(cols.len()); // (col, row, coef)
    for &j in cols {
        let (rows, vals) = core.a.col(j);
        if rows.len() != 1 || vals[0] == 0.0 {
            return None;
        }
        if targets.iter().any(|&(_, r, _)| r == rows[0]) {
            return None; // two open columns in one row: box is open
        }
        targets.push((j, rows[0], vals[0]));
    }

    // one pass over all columns: activity extrema of each target row,
    // excluding the target column itself
    let mut min_act = vec![0.0f64; targets.len()];
    let mut max_act = vec![0.0f64; targets.len()];
    for k in 0..core.n_total {
        let (rows, vals) = core.a.col(k);
        for (&r, &v) in rows.iter().zip(vals) {
            if v == 0.0 {
                continue;
            }
            for (t, &(j, row, _)) in targets.iter().enumerate() {
                if row == r && k != j {
                    let (lo, hi) = (core.lower[k], core.upper[k]);
                    let (cmin, cmax) = if v > 0.0 { (v * lo, v * hi) } else { (v * hi, v * lo) };
                    min_act[t] += cmin;
                    max_act[t] += cmax;
                }
            }
        }
    }

    for (t, &(j, row, a)) in targets.iter().enumerate() {
        let b = core.sf.b[row];
        match core.status[j] {
            VarStatus::AtLower => {
                // open above: implied upper = max feasible x_j
                let implied = if a > 0.0 { (b - min_act[t]) / a } else { (b - max_act[t]) / a };
                if !implied.is_finite() || implied < core.lower[j] - 1e-9 {
                    return None;
                }
                core.upper[j] = implied.max(core.lower[j]);
            }
            VarStatus::AtUpper => {
                // open below: implied lower = min feasible x_j
                let implied = if a > 0.0 { (b - max_act[t]) / a } else { (b - min_act[t]) / a };
                if !implied.is_finite() || implied > core.upper[j] + 1e-9 {
                    return None;
                }
                core.lower[j] = implied.min(core.upper[j]);
            }
            _ => return None,
        }
    }
    Some(targets.iter().map(|&(j, _, _)| j).collect())
}

/// One admissible breakpoint of the dual ratio test.
struct Breakpoint {
    /// Entering candidate column.
    col: usize,
    /// `d_j / (σ α_j)` — the dual step at which `d_j` changes sign.
    ratio: f64,
    /// `|α_j|` — this column's contribution to the slope.
    alpha_abs: f64,
    /// `u_j − l_j` when both bounds are finite (flippable), else `None`.
    range: Option<f64>,
}

/// Admissibility test and breakpoint construction for one column with
/// pivot-row entry `alpha`; shared by the dense scan (which computes
/// `alpha` per column) and the sparse scan (which accumulates the whole
/// pivot row through the CSR mirror first).
#[allow(clippy::too_many_arguments)]
fn consider_breakpoint(
    core: &Core,
    cost: &[f64],
    y: &[f64],
    sigma: f64,
    tol_pivot: f64,
    j: usize,
    alpha: f64,
    out: &mut Vec<Breakpoint>,
) {
    let status = core.status[j];
    if matches!(status, VarStatus::Basic(_)) {
        return;
    }
    let (lo, hi) = (core.lower[j], core.upper[j]);
    if hi - lo <= 0.0 {
        return; // fixed: can neither enter nor flip
    }
    let sa = sigma * alpha;
    let admissible = match status {
        VarStatus::AtLower => sa > tol_pivot,
        VarStatus::AtUpper => sa < -tol_pivot,
        VarStatus::Free => sa.abs() > tol_pivot,
        VarStatus::Basic(_) => false,
    };
    if !admissible {
        return;
    }
    let ratio = match status {
        // d_j (computed only for the admissible few) and sa share a
        // sign by dual feasibility; noise can leave the quotient
        // barely negative
        VarStatus::AtLower | VarStatus::AtUpper => {
            let dj = cost[j] - core.a.col_dot(j, y);
            (dj / sa).max(0.0)
        }
        _ => 0.0, // free: d_j ~ 0, enters at once
    };
    let range =
        (lo.is_finite() && hi.is_finite() && !matches!(status, VarStatus::Free)).then_some(hi - lo);
    out.push(Breakpoint { col: j, ratio, alpha_abs: alpha.abs(), range });
}

/// Reoptimize a restored (dual-feasible, possibly primal-infeasible)
/// basis in place. On [`DualOutcome::Optimal`] the core's vertex and
/// basis describe the new optimum exactly as a finished primal solve
/// would.
pub(crate) fn reoptimize(core: &mut Core) -> Result<DualOutcome, LpError> {
    debug_assert_eq!(core.n_artificial, 0, "dual reopt runs on restored bases only");
    let m = core.sf.m;
    let n = core.n_total;
    // cloned so the borrow does not pin `core` across refactorizations
    let cost = core.sf.c.clone();
    let tol_p = core.opts.tol_primal;
    let tol_pivot = core.opts.tol_pivot;

    let mut stall = 0usize;
    let mut best_infeasibility = f64::INFINITY;
    let mut first_iteration = true;

    // sparse-route state: CSR mirror for pivot-row pricing, sparse
    // solve workspaces, and a deeper refactorization cadence (eta
    // solves stay pattern-driven, so a longer eta file still beats a
    // large refactorization)
    if core.sparse {
        core.ensure_csr();
    }
    let refactor_every = if core.sparse {
        core.opts.refactor_every.max(SPARSE_REFACTOR_MIN)
    } else {
        core.opts.refactor_every
    };
    let mut rho_sp = SparseVec::new(m);
    let mut w_sp = SparseVec::new(m);
    let mut acc = SparseVec::new(n);
    let mut ws = LuScratch::new(m);

    loop {
        if core.iterations >= core.opts.max_iter {
            return Ok(DualOutcome::IterationLimit);
        }
        if core.sparse_refactor_due(refactor_every) {
            core.refactorize()?;
        }

        // duals y = B^-T c_B; reduced costs are computed lazily — the
        // breakpoint loop needs `d_j` only for the few columns passing
        // its pivot-sign test, so a full O(nnz) `d` pass per iteration
        // would double the dominant cost of a dual pivot
        let mut y = vec![0.0; m];
        for (i, &bcol) in core.basis.iter().enumerate() {
            y[i] = cost[bcol];
        }
        core.factor.btran(&mut y);

        if first_iteration {
            // the restored basis must be dual feasible, or the premise
            // of dual reoptimization is void (full scan, once); a boxed
            // column whose reduced cost drifted past zero is repaired
            // by flipping it to its opposite bound, which accepts the
            // new sign by definition
            let mut repair_flips: Vec<usize> = Vec::new();
            let mut unbounded_side: Vec<usize> = Vec::new();
            for (j, &cj) in cost.iter().enumerate().take(n) {
                let status = core.status[j];
                if matches!(status, VarStatus::Basic(_)) {
                    continue;
                }
                if core.upper[j] - core.lower[j] <= 0.0 {
                    // a fixed column (equality-row slack) can never
                    // move, so its reduced cost may take any sign —
                    // exactly like an equality constraint's dual
                    continue;
                }
                let dj = cj - core.a.col_dot(j, &y);
                let ok = match status {
                    VarStatus::AtLower => dj >= -DUAL_RESTORE_TOL,
                    VarStatus::AtUpper => dj <= DUAL_RESTORE_TOL,
                    VarStatus::Free => dj.abs() <= DUAL_RESTORE_TOL,
                    VarStatus::Basic(_) => unreachable!("basic columns are skipped above"),
                };
                if !ok {
                    let boxed = core.lower[j].is_finite()
                        && core.upper[j].is_finite()
                        && !matches!(status, VarStatus::Free);
                    if boxed {
                        repair_flips.push(j);
                    } else if matches!(status, VarStatus::Free) {
                        // a free column cannot be parked anywhere: the
                        // step was not the perturbation claimed
                        return Ok(DualOutcome::LostDualFeasibility);
                    } else {
                        unbounded_side.push(j);
                    }
                }
            }
            if !unbounded_side.is_empty() {
                // a wrong-sign column with no opposite bound (an
                // inequality slack, typically) gets a second chance:
                // derive a valid implied bound from its row's equation
                // and the other columns' bounds, tighten to it, and
                // flip there. The implied bound cuts no feasible point,
                // so the optimum is unchanged.
                match implied_opposite_bounds(core, &unbounded_side) {
                    Some(tightened) => repair_flips.extend(tightened),
                    None => return Ok(DualOutcome::LostDualFeasibility),
                }
            }
            if !repair_flips.is_empty() {
                // park every offender at its opposite bound with one
                // combined FTRAN; the primal infeasibility this creates
                // is the dual iteration's normal workload
                let mut delta_b = vec![0.0; m];
                for &j in &repair_flips {
                    let range = core.upper[j] - core.lower[j];
                    let (new_status, step) = match core.status[j] {
                        VarStatus::AtLower => (VarStatus::AtUpper, range),
                        VarStatus::AtUpper => (VarStatus::AtLower, -range),
                        _ => unreachable!("only bound-parked columns are repairable"),
                    };
                    core.a.col_axpy(j, step, &mut delta_b);
                    core.x_val[j] += step;
                    core.status[j] = new_status;
                }
                core.factor.ftran(&mut delta_b);
                for (i, &db) in delta_b.iter().enumerate() {
                    if db != 0.0 {
                        let col = core.basis[i];
                        core.x_val[col] -= db;
                    }
                }
            }
            first_iteration = false;
        }

        // leaving row: the most-violated basic variable (ties break on
        // the lowest row position — deterministic)
        let mut leaving: Option<(usize, f64)> = None; // (pos, signed violation)
        let mut total_infeasibility = 0.0;
        for (i, &col) in core.basis.iter().enumerate() {
            let v = core.x_val[col];
            let viol = if v < core.lower[col] - tol_p {
                v - core.lower[col] // negative: below lower
            } else if v > core.upper[col] + tol_p {
                v - core.upper[col] // positive: above upper
            } else {
                continue;
            };
            total_infeasibility += viol.abs();
            if leaving.is_none_or(|(_, best)| viol.abs() > best.abs()) {
                leaving = Some((i, viol));
            }
        }
        let Some((r, delta)) = leaving else {
            return Ok(DualOutcome::Optimal);
        };

        // stall detection on the total infeasibility
        if total_infeasibility < best_infeasibility - 1e-10 {
            best_infeasibility = total_infeasibility;
            stall = 0;
        } else {
            stall += 1;
            if stall >= core.opts.stall_limit {
                return Ok(DualOutcome::Stalled);
            }
        }

        // pivot row: rho = B^-T e_r, alpha_j = rho · A_j, then the
        // admissible breakpoints — entering candidates whose reduced
        // cost hits zero as the dual step grows
        let sigma = if delta > 0.0 { 1.0 } else { -1.0 };
        let mut breakpoints: Vec<Breakpoint> = Vec::new();
        if core.sparse {
            // pattern-driven BTRAN, then accumulate the whole pivot row
            // α = ρ'A through the CSR mirror over ρ's nonzero rows only:
            // columns not meeting ρ's pattern have α_j = 0 exactly and
            // can never be admissible
            rho_sp.clear();
            rho_sp.set(r, 1.0);
            core.factor.btran_sparse(&mut rho_sp, &mut ws);
            rho_sp.sort_pattern();
            let csr = core.csr().expect("ensured above");
            for &i in &rho_sp.pattern {
                let ri = rho_sp.values[i];
                if ri == 0.0 {
                    continue;
                }
                let (cols, vals) = csr.row(i);
                for (&j, &v) in cols.iter().zip(vals) {
                    acc.add(j, v * ri);
                }
            }
            acc.sort_pattern();
            for &j in &acc.pattern {
                let alpha = acc.values[j];
                if alpha != 0.0 {
                    consider_breakpoint(
                        core,
                        &cost,
                        &y,
                        sigma,
                        tol_pivot,
                        j,
                        alpha,
                        &mut breakpoints,
                    );
                }
            }
            acc.clear();
        } else {
            let mut rho = vec![0.0; m];
            rho[r] = 1.0;
            core.factor.btran(&mut rho);
            for j in 0..n {
                if matches!(core.status[j], VarStatus::Basic(_))
                    || core.upper[j] - core.lower[j] <= 0.0
                {
                    continue;
                }
                let alpha = core.a.col_dot(j, &rho);
                consider_breakpoint(core, &cost, &y, sigma, tol_pivot, j, alpha, &mut breakpoints);
            }
        }
        if breakpoints.is_empty() {
            return Ok(DualOutcome::PrimalInfeasible);
        }

        // bound-flipping ratio test: walk breakpoints in dual-step
        // order, flipping boxed columns while the slope stays positive
        breakpoints.sort_by(|a, b| {
            a.ratio
                .partial_cmp(&b.ratio)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.col.cmp(&b.col))
        });
        let mut slope = delta.abs();
        let mut entering: Option<&Breakpoint> = None;
        let mut flips: Vec<&Breakpoint> = Vec::new();
        for bp in &breakpoints {
            if let Some(range) = bp.range {
                if slope - range * bp.alpha_abs > SLOPE_EPS {
                    slope -= range * bp.alpha_abs;
                    flips.push(bp);
                    continue;
                }
            }
            entering = Some(bp);
            break;
        }
        let Some(enter) = entering else {
            // every breakpoint flips and the row stays infeasible: the
            // dual objective improves without bound
            return Ok(DualOutcome::PrimalInfeasible);
        };
        let q = enter.col;

        // apply the flips: nonbasic values jump to their opposite
        // bound, and one combined FTRAN updates the basic values
        if !flips.is_empty() {
            let mut delta_b = vec![0.0; m];
            for bp in &flips {
                let j = bp.col;
                let range = core.upper[j] - core.lower[j];
                let (new_status, step) = match core.status[j] {
                    VarStatus::AtLower => (VarStatus::AtUpper, range),
                    VarStatus::AtUpper => (VarStatus::AtLower, -range),
                    _ => unreachable!("only bound-parked columns are flippable"),
                };
                core.a.col_axpy(j, step, &mut delta_b);
                core.x_val[j] += step;
                core.status[j] = new_status;
            }
            core.factor.ftran(&mut delta_b);
            for (i, &db) in delta_b.iter().enumerate() {
                if db != 0.0 {
                    let col = core.basis[i];
                    core.x_val[col] -= db;
                }
            }
        }

        // pivot: q enters in row r, the leaving variable exits at the
        // bound it violated
        if core.sparse {
            w_sp.clear();
            let (rows, vals) = core.a.col(q);
            for (&row, &v) in rows.iter().zip(vals) {
                w_sp.add(row, v);
            }
            core.factor.ftran_sparse(&mut w_sp, &mut ws);
            w_sp.sort_pattern();
            let pivot = w_sp.values[r];
            if pivot.abs() <= tol_pivot {
                // the FTRAN'd pivot disagrees with the priced row:
                // numerical drift — let the primal path take over
                return Ok(DualOutcome::Stalled);
            }

            let r_col = core.basis[r];
            let bound_r = if sigma > 0.0 { core.upper[r_col] } else { core.lower[r_col] };
            let mut t = (core.x_val[r_col] - bound_r) / pivot;
            t = match core.status[q] {
                VarStatus::AtLower => t.max(0.0),
                VarStatus::AtUpper => t.min(0.0),
                _ => t,
            };
            core.x_val[q] += t;
            for &i in &w_sp.pattern {
                let wi = w_sp.values[i];
                if wi != 0.0 {
                    let col = core.basis[i];
                    core.x_val[col] -= t * wi;
                }
            }
            core.x_val[r_col] = bound_r; // snap exactly onto the bound
            core.status[r_col] = if sigma > 0.0 { VarStatus::AtUpper } else { VarStatus::AtLower };
            core.basis[r] = q;
            core.status[q] = VarStatus::Basic(r);
            if core.factor.update_sparse(r, &mut w_sp).is_err() {
                core.refactorize()?;
            }
        } else {
            let mut w = vec![0.0; m];
            {
                let (rows, vals) = core.a.col(q);
                for (&row, &v) in rows.iter().zip(vals) {
                    w[row] += v;
                }
            }
            core.factor.ftran(&mut w);
            let pivot = w[r];
            if pivot.abs() <= tol_pivot {
                // the FTRAN'd pivot disagrees with the priced row: numerical
                // drift — let the primal path take over
                return Ok(DualOutcome::Stalled);
            }

            let r_col = core.basis[r];
            let bound_r = if sigma > 0.0 { core.upper[r_col] } else { core.lower[r_col] };
            let mut t = (core.x_val[r_col] - bound_r) / pivot;
            // the entering variable must move off its bound into its range;
            // clamp away sign noise from dual-degenerate steps
            t = match core.status[q] {
                VarStatus::AtLower => t.max(0.0),
                VarStatus::AtUpper => t.min(0.0),
                _ => t,
            };
            core.x_val[q] += t;
            for (i, &wi) in w.iter().enumerate() {
                if wi != 0.0 {
                    let col = core.basis[i];
                    core.x_val[col] -= t * wi;
                }
            }
            core.x_val[r_col] = bound_r; // snap exactly onto the bound
            core.status[r_col] = if sigma > 0.0 { VarStatus::AtUpper } else { VarStatus::AtLower };
            core.basis[r] = q;
            core.status[q] = VarStatus::Basic(r);
            if core.factor.update(r, &w).is_err() {
                core.refactorize()?;
            }
        }
        core.iterations += 1;
    }
}
