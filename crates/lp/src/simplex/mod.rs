//! Two-phase bounded-variable revised simplex, with a dual simplex for
//! parametric reoptimization.
//!
//! The solver works on the [`StandardForm`] `min c'x, Ax = b, l ≤ x ≤ u`
//! (one slack per row). A starting basis is built from slacks; rows
//! whose slack cannot absorb the residual receive an artificial column,
//! and phase 1 minimizes the sum of artificials. Pricing is devex
//! (reference weights plus a candidate list) with an automatic switch
//! to Bland's rule after a stall (anti-cycling); the basis inverse is
//! maintained as sparse LU + eta file with periodic refactorization.
//!
//! For *parametric* re-solves — the same constraint matrix and
//! objective with only `b`/`l`/`u` moved, as happens across a privacy
//! budget grid — [`solve_parametric`] with [`StepHint::RhsOnly`]
//! restores the previous optimal basis (still dual feasible by
//! construction) and runs a bounded-variable **dual simplex** (the
//! `dual` submodule), which typically restores primal feasibility in a
//! handful of pivots instead of re-running both primal phases.

mod basis;
mod dual;
mod pricing;
mod ratio;

use crate::error::LpError;
use crate::factor::lu::LuScratch;
use crate::factor::BasisFactor;
use crate::problem::{Problem, Sense};
use crate::scaling::{self, ScaleFactors};
use crate::sparse::{CscMatrix, CsrMatrix, SparseVec};
use crate::standard::StandardForm;
pub use basis::Basis;
use basis::SnapStatus;
use dual::DualOutcome;
pub(crate) use pricing::{price_bland, Devex, Direction};
pub(crate) use ratio::{ratio_test, ratio_test_sparse, RatioOutcome};

/// Bound-violation tolerance under which a restored basis still counts
/// as primal feasible. Looser than `tol_primal` because the restored
/// basic values come from a single FTRAN against freshly scaled data
/// rather than from a converged solve; violations beyond it mean the
/// old vertex genuinely left the new polytope, and the solver falls
/// back to a cold start.
const WARM_FEASIBILITY_TOL: f64 = 1e-7;

/// Row count at and above which solves take the sparse kernel route
/// (pattern-driven FTRAN/BTRAN, sector partial pricing, incremental
/// duals) unless [`SimplexOptions::sparse`] overrides the choice. Below
/// it the legacy dense-vector route runs — it is faster on small
/// instances and doubles as the cross-check oracle for the sparse path.
const SPARSE_MIN_ROWS: usize = 512;

/// Floor on the refactorization cadence for the sparse route. Sparse
/// solves recompute the dense dual vector and the incremental objective
/// only at refactorizations, so an aggressively small
/// `refactor_every` would erase the route's advantage; 128 keeps the
/// eta file short while amortizing the dense recomputations.
///
/// The cadence is only half the trigger: every BTRAN gathers over every
/// stored eta nonzero, so once spikes densify (large instances couple
/// users through shared pairs) a fixed update count lets per-iteration
/// cost grow without bound. [`Core::sparse_refactor_due`] therefore also
/// refactors when the eta fill outgrows the LU fill.
pub(crate) const SPARSE_REFACTOR_MIN: usize = 128;

/// Solver tuning knobs.
#[derive(Debug, Clone)]
pub struct SimplexOptions {
    /// Hard iteration cap across both phases.
    pub max_iter: usize,
    /// Primal feasibility tolerance.
    pub tol_primal: f64,
    /// Dual (reduced-cost) tolerance.
    pub tol_dual: f64,
    /// Minimum pivot magnitude considered in the ratio test.
    pub tol_pivot: f64,
    /// Refactorize the basis after this many eta updates.
    pub refactor_every: usize,
    /// Apply geometric-mean scaling before solving.
    pub scaling: bool,
    /// Iterations without objective improvement before switching to
    /// Bland's anti-cycling rule.
    pub stall_limit: usize,
    /// Kernel route override: `Some(true)` forces the sparse route,
    /// `Some(false)` forces the dense route, `None` (the default)
    /// selects by problem size — sparse at `SPARSE_MIN_ROWS` rows and
    /// above, dense below.
    pub sparse: Option<bool>,
    /// Skip the alternate-optima certificate on an optimal finish and
    /// report [`Solution::alternate_optima`] as `false` unexamined.
    ///
    /// The certificate ratio-tests every near-zero-reduced-cost
    /// nonbasic column (one FTRAN each), which on massively degenerate
    /// LPs rivals the solve itself. Callers whose answer will be kept
    /// regardless of uniqueness — e.g. a determinism guard's canonical
    /// cold re-solve, whose *triggering* solve already certified the
    /// optimum non-unique — can skip paying for it a second time.
    pub skip_optima_certificate: bool,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        SimplexOptions {
            max_iter: 200_000,
            tol_primal: 1e-8,
            tol_dual: 1e-9,
            tol_pivot: 1e-9,
            refactor_every: 64,
            scaling: true,
            stall_limit: 2_000,
            sparse: None,
            skip_optima_certificate: false,
        }
    }
}

/// Which solve path produced a result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Dual simplex reoptimization from a restored (still dual
    /// feasible) basis — the parametric fast path.
    DualReopt,
    /// Primal simplex warm-started from a restored, primal-feasible
    /// basis (phase 1 skipped).
    WarmPrimal,
    /// Full two-phase primal simplex from the slack/artificial basis.
    ColdPrimal,
}

/// Per-solve counters describing how a solve went. All counts include
/// any failed dual-reoptimization attempt that preceded the primal
/// fallback, so they reflect the true work done.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveStats {
    /// The path that produced the returned solution.
    pub algorithm: Algorithm,
    /// Simplex iterations across all phases and attempts.
    pub iterations: usize,
    /// Basis (re)factorizations, including the initial one per attempt.
    pub refactorizations: usize,
    /// A dual reoptimization was attempted but fell back to the primal
    /// path (lost dual feasibility, stall, or unusable snapshot).
    pub dual_fallback: bool,
    /// The solve ran on the sparse kernel route (pattern-driven solves,
    /// partial pricing) rather than the dense-vector route.
    pub sparse: bool,
}

impl SolveStats {
    fn cold_trivial() -> SolveStats {
        SolveStats {
            algorithm: Algorithm::ColdPrimal,
            iterations: 0,
            refactorizations: 0,
            dual_fallback: false,
            sparse: false,
        }
    }
}

/// What the caller knows about how a problem relates to the previous
/// one solved with the basis snapshot being passed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StepHint {
    /// No structural relationship is claimed: warm-start the primal
    /// simplex when the snapshot fits, else solve cold.
    #[default]
    Fresh,
    /// Only `b` (row bounds) and/or `l`/`u` (column bounds) moved since
    /// the snapshot's solve; the matrix, objective, and sense are
    /// unchanged. The previous optimal basis is then still dual
    /// feasible and the dual simplex reoptimizes from it. A wrong hint
    /// never corrupts the result — the dual path verifies dual
    /// feasibility on the *new* data and falls back to the primal path
    /// when the claim does not hold.
    RhsOnly,
}

/// Carry-over state between parametric solves: the scaled standard
/// form, the optimal basis, and — crucially — the live LU+eta
/// [`BasisFactor`], so an rhs/bounds-only re-solve skips rescaling,
/// standard-form construction, *and* refactorization entirely.
///
/// Opaque to callers: feed the same cache to consecutive
/// [`solve_parametric_cached`] calls and it validates itself against
/// each new problem (sense, objective, and matrix must be unchanged —
/// verified, not trusted), degrading to the ordinary paths and
/// repopulating whenever the problem genuinely changed shape.
#[derive(Debug, Default)]
pub struct ReoptCache {
    state: Option<CacheState>,
}

impl ReoptCache {
    /// Fresh, empty cache.
    pub fn new() -> ReoptCache {
        ReoptCache::default()
    }

    /// Drop any carried state (the next solve rebuilds from scratch).
    pub fn clear(&mut self) {
        self.state = None;
    }
}

/// The invariants a cached solve verifies before reusing carried state.
#[derive(Debug, Clone)]
struct CacheChecks {
    sense: Sense,
    objective: Vec<f64>,
    triplets: Vec<(usize, usize, f64)>,
}

impl CacheChecks {
    fn of(p: &Problem) -> CacheChecks {
        CacheChecks {
            sense: p.sense(),
            objective: p.objective().to_vec(),
            triplets: p.triplets().to_vec(),
        }
    }

    fn matches(&self, p: &Problem) -> bool {
        self.sense == p.sense() && self.objective == p.objective() && self.triplets == p.triplets()
    }
}

#[derive(Debug)]
struct CacheState {
    checks: CacheChecks,
    factors: ScaleFactors,
    sf: StandardForm,
    factor: BasisFactor,
    basis: Vec<usize>,
    status: Vec<VarStatus>,
}

/// Terminal status of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveStatus {
    /// An optimal basic solution was found.
    Optimal,
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// The iteration cap was hit before termination.
    IterationLimit,
}

/// Result of a solve.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Terminal status.
    pub status: SolveStatus,
    /// Objective value in the user's sense (meaningful for `Optimal`).
    pub objective: f64,
    /// Structural variable values (meaningful for `Optimal`).
    pub x: Vec<f64>,
    /// Row duals in the user's sense (meaningful for `Optimal`).
    pub duals: Vec<f64>,
    /// Simplex iterations used across both phases.
    pub iterations: usize,
    /// The optimum is (possibly) not unique: some nonbasic column with
    /// room to move prices out to a near-zero reduced cost, so an edge
    /// of the optimal face leaves this vertex without changing the
    /// objective. Different solve paths (cold, warm, dual reopt) may
    /// then legitimately return *different* optimal vertices — callers
    /// that need path-independent answers (e.g. deterministic release
    /// pipelines) should treat a flagged warm result as "re-solve cold".
    /// Conservative: `true` can be a false alarm (a degenerate zero-
    /// length edge), `false` guarantees a unique optimal vertex.
    pub alternate_optima: bool,
}

/// Variable status in the simplex.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum VarStatus {
    /// Basic in the given row position.
    Basic(usize),
    /// Nonbasic at its lower bound.
    AtLower,
    /// Nonbasic at its upper bound.
    AtUpper,
    /// Nonbasic free variable parked at zero.
    Free,
}

/// Solve an LP (ignores integrality marks; see [`crate::mip`] for those).
pub fn solve(problem: &Problem, opts: &SimplexOptions) -> Result<Solution, LpError> {
    Ok(solve_with_basis(problem, opts, None)?.solution)
}

/// Result of a warm-startable solve: the solution, a basis snapshot to
/// seed the next related solve, and whether the provided snapshot was
/// actually usable this time.
#[derive(Debug, Clone)]
pub struct WarmOutcome {
    /// The solution, identical in meaning to what [`solve`] returns.
    pub solution: Solution,
    /// Snapshot of the optimal basis (`None` unless the solve ended
    /// [`SolveStatus::Optimal`] with a snapshotable basis).
    pub basis: Option<Basis>,
    /// Whether carried state seeded this solve — a [`Basis`] snapshot
    /// (dual reoptimization or warm primal) or a [`ReoptCache`] hit
    /// (which can seed a dual reoptimization even when no snapshot was
    /// passed). `false` means a cold start ran: nothing to seed from,
    /// shape mismatch, singular restored basis, or the old vertex left
    /// the new polytope. [`SolveStats::algorithm`] has the precise
    /// path.
    pub warm_used: bool,
    /// How the solve went: path chosen, iterations, refactorizations.
    pub stats: SolveStats,
}

/// Solve an LP, optionally warm-starting from a [`Basis`] snapshot of a
/// previous solve over the same row/column shape.
///
/// Warm starting is strictly best-effort: whenever the snapshot cannot
/// be reused *exactly* (shape mismatch, singular basis under the new
/// coefficients, or primal infeasibility at the restored vertex beyond
/// `WARM_FEASIBILITY_TOL`), the solve silently falls back to the cold
/// two-phase path, so the result is always as trustworthy as [`solve`].
///
/// Equivalent to [`solve_parametric`] with [`StepHint::Fresh`]; pass
/// [`StepHint::RhsOnly`] there to unlock dual reoptimization on
/// rhs/bounds-only sweeps.
pub fn solve_with_basis(
    problem: &Problem,
    opts: &SimplexOptions,
    warm: Option<&Basis>,
) -> Result<WarmOutcome, LpError> {
    solve_parametric(problem, opts, warm, StepHint::Fresh)
}

/// Solve an LP with full algorithm selection: dual reoptimization for
/// declared rhs/bounds-only steps, warm primal when the snapshot's
/// vertex is still feasible, cold two-phase primal otherwise.
///
/// The hint is advisory. [`StepHint::RhsOnly`] with a fitting snapshot
/// tries the dual simplex first; any failure (dual infeasibility on the
/// new data, stall, iteration cap, shape mismatch) falls back to the
/// primal path and is recorded in [`SolveStats::dual_fallback`], so a
/// wrong hint costs time, never correctness.
///
/// Stateless convenience over [`solve_parametric_cached`]: without a
/// carried [`ReoptCache`] every dual reoptimization pays one rescale +
/// refactorization to restore the snapshot. Sweep drivers should hold a
/// cache and call the cached variant.
pub fn solve_parametric(
    problem: &Problem,
    opts: &SimplexOptions,
    warm: Option<&Basis>,
    hint: StepHint,
) -> Result<WarmOutcome, LpError> {
    solve_parametric_inner(problem, opts, warm, hint, None)
}

/// [`solve_parametric`] with carried state: consecutive rhs/bounds-only
/// solves reuse the cached scale factors, standard form, **and** LU+eta
/// factorization, so a grid step costs one verification scan of the
/// matrix/objective (they must be unchanged — checked, not trusted),
/// an `O(m+n)` bound refresh, one FTRAN for the basic values, and the
/// few dual pivots the step actually needs.
///
/// The cache is self-validating: on any mismatch (changed matrix,
/// objective, sense, or shape) or dual setback the solve transparently
/// degrades to the snapshot/warm/cold paths and repopulates the cache
/// from the finished solve, so callers may feed *any* problem sequence
/// through one cache without correctness risk.
pub fn solve_parametric_cached(
    problem: &Problem,
    opts: &SimplexOptions,
    warm: Option<&Basis>,
    hint: StepHint,
    cache: &mut ReoptCache,
) -> Result<WarmOutcome, LpError> {
    solve_parametric_inner(problem, opts, warm, hint, Some(cache))
}

fn solve_parametric_inner(
    problem: &Problem,
    opts: &SimplexOptions,
    warm: Option<&Basis>,
    hint: StepHint,
    mut cache: Option<&mut ReoptCache>,
) -> Result<WarmOutcome, LpError> {
    // trivial case: no rows — every variable goes to its objective-best bound
    if problem.n_rows() == 0 {
        let solution = solve_unconstrained(problem)?;
        return Ok(WarmOutcome {
            solution,
            basis: None,
            warm_used: false,
            stats: SolveStats::cold_trivial(),
        });
    }

    let mut dual_fallback = false;
    let mut spent_iterations = 0;
    let mut spent_refactorizations = 0;

    // fastest path: rhs-only step with carried state — no rescale, no
    // standard-form rebuild, no refactorization
    if hint == StepHint::RhsOnly {
        if let Some(state) = cache.as_deref_mut().and_then(|c| c.state.take()) {
            if state.checks.matches(problem)
                && state.sf.m == problem.n_rows()
                && state.sf.n_structural == problem.n_cols()
            {
                // a rejected cache restore (`Err`, e.g. a parked bound
                // vanished) is NOT a dual fallback: the snapshot path
                // below can re-park such columns and still run the
                // dual simplex
                if let Ok((mut core, factors, checks)) =
                    Core::from_cache(state, opts.clone(), problem)
                {
                    match dual::reoptimize(&mut core)? {
                        DualOutcome::Optimal => {
                            let (solution, basis) =
                                finish(&core, SolveStatus::Optimal, problem, &factors);
                            let stats = SolveStats {
                                algorithm: Algorithm::DualReopt,
                                iterations: core.iterations,
                                refactorizations: core.refactor_count,
                                dual_fallback: false,
                                sparse: core.sparse,
                            };
                            if let Some(c) = cache.as_deref_mut() {
                                c.state = core.into_cache_state(factors, checks);
                            }
                            return Ok(WarmOutcome { solution, basis, warm_used: true, stats });
                        }
                        DualOutcome::PrimalInfeasible
                        | DualOutcome::IterationLimit
                        | DualOutcome::LostDualFeasibility
                        | DualOutcome::Stalled => {
                            dual_fallback = true;
                            spent_iterations = core.iterations;
                            spent_refactorizations = core.refactor_count;
                        }
                    }
                }
            }
            // on any miss the carried state is dropped; the slow path
            // below repopulates it
        }
    }

    let (scaled, factors) = if opts.scaling {
        let f = scaling::geometric_scaling(problem, 2);
        (scaling::apply(problem, &f), f)
    } else {
        (problem.clone(), ScaleFactors::identity(problem.n_rows(), problem.n_cols()))
    };

    let mut sf = StandardForm::from_problem(&scaled);

    // snapshot-seeded dual path (no carried state, e.g. the first
    // rhs-only step after a cache miss elsewhere in the sweep)
    if hint == StepHint::RhsOnly && !dual_fallback {
        if let Some(b) = warm {
            // scaling factors depend only on the matrix, so an honest
            // rhs-only step scales the costs identically and the old
            // basis stays dual feasible in scaled space too
            match Core::from_basis(sf, opts.clone(), b, RestoreMode::Dual) {
                Ok(mut core) => match dual::reoptimize(&mut core)? {
                    DualOutcome::Optimal => {
                        let (solution, basis) =
                            finish(&core, SolveStatus::Optimal, problem, &factors);
                        let stats = SolveStats {
                            algorithm: Algorithm::DualReopt,
                            iterations: core.iterations,
                            refactorizations: core.refactor_count,
                            dual_fallback: false,
                            sparse: core.sparse,
                        };
                        if let Some(c) = cache.as_deref_mut() {
                            c.state = core.into_cache_state(factors, CacheChecks::of(problem));
                        }
                        return Ok(WarmOutcome { solution, basis, warm_used: true, stats });
                    }
                    // `PrimalInfeasible` (dual unbounded) proves
                    // infeasibility in exact arithmetic, but the primal
                    // phase 1 is the arbiter here: fall through so a
                    // numerically marginal ray cannot misreport a
                    // feasible problem.
                    DualOutcome::PrimalInfeasible
                    | DualOutcome::IterationLimit
                    | DualOutcome::LostDualFeasibility
                    | DualOutcome::Stalled => {
                        dual_fallback = true;
                        spent_iterations += core.iterations;
                        spent_refactorizations += core.refactor_count;
                        sf = core.into_standard_form();
                    }
                },
                Err(returned) => {
                    dual_fallback = true;
                    sf = returned;
                }
            }
        }
    }

    let (mut core, warm_used) = match warm {
        Some(b) => match Core::from_basis(sf, opts.clone(), b, RestoreMode::Primal) {
            Ok(core) => (core, true),
            Err(sf) => (Core::new(sf, opts.clone()), false),
        },
        None => (Core::new(sf, opts.clone()), false),
    };
    let status = core.run()?;
    let (solution, basis) = finish(&core, status, problem, &factors);
    let stats = SolveStats {
        algorithm: if warm_used { Algorithm::WarmPrimal } else { Algorithm::ColdPrimal },
        iterations: solution.iterations + spent_iterations,
        refactorizations: core.refactor_count + spent_refactorizations,
        dual_fallback,
        sparse: core.sparse,
    };
    if status == SolveStatus::Optimal {
        // only a caller-carried cache is worth populating; one-shot
        // solves would clone the matrix fingerprint just to drop it
        if let Some(c) = cache {
            c.state = core.into_cache_state(factors, CacheChecks::of(problem));
        }
    }
    Ok(WarmOutcome { solution, basis, warm_used, stats })
}

/// Unscale, clamp, and package a finished core into user-space terms.
fn finish(
    core: &Core,
    status: SolveStatus,
    problem: &Problem,
    factors: &ScaleFactors,
) -> (Solution, Option<Basis>) {
    let mut x = factors.unscale_x(&core.structural_x());
    let mut duals = factors.unscale_duals(&core.row_duals());
    if problem.sense() == Sense::Maximize {
        for d in &mut duals {
            *d = -*d;
        }
    }
    // clean tiny negative noise on bounded variables
    for (xj, b) in x.iter_mut().zip(problem.col_bounds()) {
        if xj.is_finite() {
            *xj = xj.clamp(b.lower, b.upper);
        }
    }
    let objective = problem.objective_value(&x);

    let basis = if status == SolveStatus::Optimal { core.snapshot() } else { None };
    let alternate_optima = status == SolveStatus::Optimal
        && !core.opts.skip_optima_certificate
        && core.objective_degenerate();
    let solution =
        Solution { status, objective, x, duals, iterations: core.iterations, alternate_optima };
    (solution, basis)
}

fn solve_unconstrained(problem: &Problem) -> Result<Solution, LpError> {
    let maximize = problem.sense() == Sense::Maximize;
    let mut x = Vec::with_capacity(problem.n_cols());
    for (j, b) in problem.col_bounds().iter().enumerate() {
        let c = problem.objective()[j] * if maximize { -1.0 } else { 1.0 };
        let v = if c > 0.0 {
            b.lower
        } else if c < 0.0 {
            b.upper
        } else if b.lower.is_finite() {
            b.lower
        } else if b.upper.is_finite() {
            b.upper
        } else {
            0.0
        };
        if !v.is_finite() {
            return Ok(Solution {
                status: SolveStatus::Unbounded,
                objective: if maximize { f64::INFINITY } else { f64::NEG_INFINITY },
                x: vec![],
                duals: vec![],
                iterations: 0,
                alternate_optima: false,
            });
        }
        x.push(v);
    }
    let objective = problem.objective_value(&x);
    // with no rows, a zero-cost column with any slack in its box walks
    // freely between optima
    let alternate_optima = problem
        .objective()
        .iter()
        .zip(problem.col_bounds())
        .any(|(&c, b)| c == 0.0 && b.upper > b.lower);
    Ok(Solution {
        status: SolveStatus::Optimal,
        objective,
        x,
        duals: vec![],
        iterations: 0,
        alternate_optima,
    })
}

/// How a snapshot restore treats the recomputed basic values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RestoreMode {
    /// Reject the snapshot when the restored vertex violates a bound
    /// beyond `WARM_FEASIBILITY_TOL` (the warm-primal contract: phase 2
    /// requires a primal-feasible start).
    Primal,
    /// Keep the restored vertex even when it is primal infeasible —
    /// the dual simplex's whole job is to repair that.
    Dual,
}

/// Internal solver state over the standard form plus artificials.
pub(crate) struct Core {
    sf: StandardForm,
    opts: SimplexOptions,
    /// Working matrix: standard-form columns plus artificial columns.
    a: CscMatrix,
    /// Total working columns (n + artificials).
    n_total: usize,
    /// Phase-1 cost (1 on artificials).
    phase1_cost: Vec<f64>,
    /// Bounds over working columns.
    lower: Vec<f64>,
    upper: Vec<f64>,
    status: Vec<VarStatus>,
    x_val: Vec<f64>,
    basis: Vec<usize>,
    factor: BasisFactor,
    pub(crate) iterations: usize,
    /// Basis factorizations performed (initial factor + refactors).
    pub(crate) refactor_count: usize,
    n_artificial: usize,
    /// Whether this core runs on the sparse kernel route.
    pub(crate) sparse: bool,
    /// CSR mirror of `a`, built lazily on the sparse route for the
    /// row-oriented passes (devex updates, dual breakpoint pricing).
    csr: Option<CsrMatrix>,
}

enum PhaseOutcome {
    Optimal,
    Unbounded,
    IterationLimit,
}

impl Core {
    fn new(sf: StandardForm, opts: SimplexOptions) -> Core {
        let m = sf.m;
        let n = sf.n;

        let mut lower = sf.lower.clone();
        let mut upper = sf.upper.clone();
        let mut status = Vec::with_capacity(n);
        let mut x_val = Vec::with_capacity(n);
        for j in 0..n {
            let v = sf.nonbasic_start(j);
            x_val.push(v);
            status.push(if sf.lower[j].is_finite() && v == sf.lower[j] {
                VarStatus::AtLower
            } else if sf.upper[j].is_finite() && v == sf.upper[j] {
                VarStatus::AtUpper
            } else {
                VarStatus::Free
            });
        }

        // residual r = b - A x_N over all standard-form columns
        let mut residual = sf.b.clone();
        for (j, &xv) in x_val.iter().enumerate().take(n) {
            if xv != 0.0 {
                sf.a.col_axpy(j, -xv, &mut residual);
            }
        }

        // choose initial basis per row: the row's slack if it can absorb
        // the residual, otherwise an artificial column
        let mut basis = Vec::with_capacity(m);
        let mut art_cols: Vec<Vec<(usize, f64)>> = Vec::new();
        let mut phase1_cost = vec![0.0; n];
        for (i, &res) in residual.iter().enumerate() {
            let slack = sf.n_structural + i;
            let target = x_val[slack] + res;
            if target >= sf.lower[slack] - 1e-12 && target <= sf.upper[slack] + 1e-12 {
                // slack absorbs the residual: make it basic
                x_val[slack] = target;
                status[slack] = VarStatus::Basic(i);
                basis.push(slack);
            } else {
                // park the slack at its nearest bound, add artificial
                let clamped = target.clamp(sf.lower[slack], sf.upper[slack]);
                let remaining = target - clamped; // what the artificial must carry
                x_val[slack] = clamped;
                status[slack] = if clamped == sf.lower[slack] {
                    VarStatus::AtLower
                } else {
                    VarStatus::AtUpper
                };
                let sign = if remaining >= 0.0 { 1.0 } else { -1.0 };
                let art = n + art_cols.len();
                art_cols.push(vec![(i, sign)]);
                basis.push(art);
                lower.push(0.0);
                upper.push(f64::INFINITY);
                status.push(VarStatus::Basic(i));
                x_val.push(remaining.abs());
                phase1_cost.push(1.0);
            }
        }
        let n_artificial = art_cols.len();
        let a = sf.a.with_extra_cols(&art_cols);
        let n_total = n + n_artificial;

        let sparse = opts.sparse.unwrap_or(m >= SPARSE_MIN_ROWS);
        let t0 = std::time::Instant::now();
        let factor = BasisFactor::factor(&a, &basis)
            .expect("initial slack/artificial basis is triangular and nonsingular");
        if sparse {
            crate::obs::record_factorization(t0.elapsed().as_secs_f64(), factor.lu_nnz());
        }

        Core {
            sf,
            opts,
            a,
            n_total,
            phase1_cost,
            lower,
            upper,
            status,
            x_val,
            basis,
            factor,
            iterations: 0,
            refactor_count: 1,
            n_artificial,
            sparse,
            csr: None,
        }
    }

    /// Restore a snapshotted basis over a (possibly re-scaled) standard
    /// form. Returns the standard form back when the snapshot cannot be
    /// used, so the caller can cold-start without recomputing it.
    ///
    /// A restored core has no artificial columns. In
    /// [`RestoreMode::Primal`] the restored vertex must be (near)
    /// feasible: phase 1 is skipped and phase 2 re-optimizes from the
    /// old vertex. In [`RestoreMode::Dual`] a primal-infeasible vertex
    /// is accepted as the dual simplex's starting point.
    // the Err variant intentionally hands the (large) standard form
    // back so the cold-start fallback does not rebuild it
    #[allow(clippy::result_large_err)]
    fn from_basis(
        sf: StandardForm,
        opts: SimplexOptions,
        snap: &Basis,
        mode: RestoreMode,
    ) -> Result<Core, StandardForm> {
        if !snap.fits(&sf) {
            return Err(sf);
        }
        let (m, n) = (sf.m, sf.n);
        if snap.statuses.iter().filter(|s| matches!(s, SnapStatus::Basic)).count() != m {
            return Err(sf); // every basic column must appear in exactly one row
        }

        let mut status = Vec::with_capacity(n);
        let mut x_val = Vec::with_capacity(n);
        for j in 0..n {
            let (st, v) = match snap.statuses[j] {
                SnapStatus::Basic => (VarStatus::Basic(0), 0.0), // row fixed below
                SnapStatus::AtLower if sf.lower[j].is_finite() => (VarStatus::AtLower, sf.lower[j]),
                SnapStatus::AtUpper if sf.upper[j].is_finite() => (VarStatus::AtUpper, sf.upper[j]),
                SnapStatus::Free if sf.lower[j] <= 0.0 && 0.0 <= sf.upper[j] => {
                    (VarStatus::Free, 0.0)
                }
                // a formerly-free column gained bounds: park it on one
                // like a fresh nonbasic start
                SnapStatus::Free if sf.lower[j].is_finite() => (VarStatus::AtLower, sf.lower[j]),
                SnapStatus::Free if sf.upper[j].is_finite() => (VarStatus::AtUpper, sf.upper[j]),
                // a bound the snapshot parked this column on no longer
                // exists; any fallback value could sit outside the new
                // bounds and the feasibility check below only covers
                // basic columns — reject rather than risk an infeasible
                // "optimal"
                _ => return Err(sf),
            };
            status.push(st);
            x_val.push(v);
        }
        let mut seen = vec![false; n];
        for (i, &col) in snap.rows.iter().enumerate() {
            if col >= n || seen[col] || !matches!(snap.statuses[col], SnapStatus::Basic) {
                return Err(sf);
            }
            seen[col] = true;
            status[col] = VarStatus::Basic(i);
        }

        let basis = snap.rows.clone();
        let a = sf.a.clone();
        let sparse = opts.sparse.unwrap_or(m >= SPARSE_MIN_ROWS);
        let t0 = std::time::Instant::now();
        let Ok(factor) = BasisFactor::factor(&a, &basis) else {
            return Err(sf); // basis went singular under the new coefficients
        };
        if sparse {
            crate::obs::record_factorization(t0.elapsed().as_secs_f64(), factor.lu_nnz());
        }

        let lower = sf.lower.clone();
        let upper = sf.upper.clone();
        let mut core = Core {
            sf,
            opts,
            a,
            n_total: n,
            phase1_cost: vec![0.0; n],
            lower,
            upper,
            status,
            x_val,
            basis,
            factor,
            iterations: 0,
            refactor_count: 1,
            n_artificial: 0,
            sparse,
            csr: None,
        };

        // x_B = B^-1 (b - N x_N); in Primal mode, reject the snapshot
        // if the old vertex is no longer inside the new polytope
        core.recompute_basic_values();
        if mode == RestoreMode::Primal {
            for &col in &core.basis {
                let v = core.x_val[col];
                if v < core.lower[col] - WARM_FEASIBILITY_TOL
                    || v > core.upper[col] + WARM_FEASIBILITY_TOL
                {
                    return Err(core.sf);
                }
            }
        }
        Ok(core)
    }

    /// Hand the standard form back after a failed dual attempt so the
    /// primal fallback does not rebuild it.
    fn into_standard_form(self) -> StandardForm {
        self.sf
    }

    /// Rebuild a core from carried parametric state: the cached scaled
    /// standard form gets its `b`/`l`/`u` refreshed from the new
    /// problem, the cached LU+eta factorization is reused as-is (the
    /// matrix is unchanged — the caller verified that), and only one
    /// FTRAN recomputes the basic values. `Err` means a parked bound
    /// vanished and the slow path must take over.
    #[allow(clippy::result_unit_err, clippy::type_complexity)]
    fn from_cache(
        state: CacheState,
        opts: SimplexOptions,
        problem: &Problem,
    ) -> Result<(Core, ScaleFactors, CacheChecks), ()> {
        let CacheState { checks, factors, mut sf, factor, basis, status } = state;
        sf.update_parametric(problem, &factors);
        let (m, n) = (sf.m, sf.n);
        debug_assert_eq!(status.len(), n);
        debug_assert_eq!(basis.len(), m);

        // nonbasic values re-park on the (possibly moved) bounds; the
        // same rejection rules as a snapshot restore apply
        let mut x_val = vec![0.0; n];
        for (j, st) in status.iter().enumerate() {
            match st {
                VarStatus::Basic(_) => {}
                VarStatus::AtLower if sf.lower[j].is_finite() => x_val[j] = sf.lower[j],
                VarStatus::AtUpper if sf.upper[j].is_finite() => x_val[j] = sf.upper[j],
                VarStatus::Free if sf.lower[j] <= 0.0 && 0.0 <= sf.upper[j] => {}
                _ => return Err(()),
            }
        }

        let a = sf.a.clone();
        let lower = sf.lower.clone();
        let upper = sf.upper.clone();
        let sparse = opts.sparse.unwrap_or(m >= SPARSE_MIN_ROWS);
        let mut core = Core {
            sf,
            opts,
            a,
            n_total: n,
            phase1_cost: vec![0.0; n],
            lower,
            upper,
            status,
            x_val,
            basis,
            factor,
            iterations: 0,
            refactor_count: 0,
            n_artificial: 0,
            sparse,
            csr: None,
        };

        // x_B = B^-1 (b - N x_N) through the carried factorization
        core.recompute_basic_values();
        Ok((core, factors, checks))
    }

    /// Package a finished core into carry-over state for the next
    /// parametric solve. `None` when an artificial column is still
    /// basic (the factorization would not be representable over the
    /// standard form alone).
    fn into_cache_state(self, factors: ScaleFactors, checks: CacheChecks) -> Option<CacheState> {
        let n = self.sf.n;
        if self.basis.iter().any(|&col| col >= n) {
            return None;
        }
        let mut status = self.status;
        status.truncate(n);
        Some(CacheState {
            checks,
            factors,
            sf: self.sf,
            factor: self.factor,
            basis: self.basis,
            status,
        })
    }

    /// Snapshot the current basis for reuse by a later warm start.
    /// `None` when an artificial column is still basic (rare degenerate
    /// endings), which a snapshot cannot represent.
    fn snapshot(&self) -> Option<Basis> {
        if self.basis.iter().any(|&col| col >= self.sf.n) {
            return None;
        }
        let statuses = self.status[..self.sf.n]
            .iter()
            .map(|s| match s {
                VarStatus::Basic(_) => SnapStatus::Basic,
                VarStatus::AtLower => SnapStatus::AtLower,
                VarStatus::AtUpper => SnapStatus::AtUpper,
                VarStatus::Free => SnapStatus::Free,
            })
            .collect();
        Some(Basis {
            m: self.sf.m,
            n: self.sf.n,
            n_structural: self.sf.n_structural,
            statuses,
            rows: self.basis.clone(),
        })
    }

    fn run(&mut self) -> Result<SolveStatus, LpError> {
        if self.n_artificial > 0 {
            let cost = self.phase1_cost.clone();
            match self.optimize(&cost)? {
                PhaseOutcome::IterationLimit => return Ok(SolveStatus::IterationLimit),
                PhaseOutcome::Unbounded => {
                    unreachable!("phase-1 objective is bounded below by zero")
                }
                PhaseOutcome::Optimal => {}
            }
            let infeas: f64 = (self.sf.n..self.n_total).map(|j| self.x_val[j].max(0.0)).sum();
            if infeas > self.opts.tol_primal.max(1e-7) {
                return Ok(SolveStatus::Infeasible);
            }
            // fix artificials at zero for phase 2
            for j in self.sf.n..self.n_total {
                self.upper[j] = 0.0;
                self.x_val[j] = self.x_val[j].max(0.0).min(self.upper[j]).max(0.0);
                if !matches!(self.status[j], VarStatus::Basic(_)) {
                    self.status[j] = VarStatus::AtLower;
                    self.x_val[j] = 0.0;
                }
            }
        }

        let mut cost = vec![0.0; self.n_total];
        cost[..self.sf.n].copy_from_slice(&self.sf.c);
        match self.optimize(&cost)? {
            PhaseOutcome::Optimal => Ok(SolveStatus::Optimal),
            PhaseOutcome::Unbounded => Ok(SolveStatus::Unbounded),
            PhaseOutcome::IterationLimit => Ok(SolveStatus::IterationLimit),
        }
    }

    /// Primal simplex inner loop on the given (minimization) cost.
    /// Routes to the dense or sparse kernel loop; both implement the
    /// same algorithm (devex pricing, Harris ratio test, Bland after a
    /// stall) over different vector representations.
    fn optimize(&mut self, cost: &[f64]) -> Result<PhaseOutcome, LpError> {
        if self.sparse {
            self.optimize_sparse(cost)
        } else {
            self.optimize_dense(cost)
        }
    }

    /// Dense-vector primal loop: full FTRAN/BTRAN vectors, full devex
    /// scans, per-iteration dual recomputation. Fastest on small
    /// instances and the behavioral reference for the sparse route.
    fn optimize_dense(&mut self, cost: &[f64]) -> Result<PhaseOutcome, LpError> {
        let m = self.sf.m;
        let mut stall = 0usize;
        let mut bland = false;
        let mut best_obj = f64::INFINITY;
        let mut devex = Devex::new(self.n_total);

        loop {
            if self.iterations >= self.opts.max_iter {
                return Ok(PhaseOutcome::IterationLimit);
            }
            if self.factor.n_updates() >= self.opts.refactor_every {
                self.refactorize()?;
            }

            // duals: y = B^-T c_B
            let y = self.compute_duals(cost);

            // pricing
            let pick =
                if bland { price_bland(self, cost, &y) } else { devex.price(self, cost, &y) };
            let Some((q, dir)) = pick else {
                return Ok(PhaseOutcome::Optimal);
            };

            // direction: w = B^-1 A_q
            let mut w = vec![0.0; m];
            {
                let (rows, vals) = self.a.col(q);
                for (&r, &v) in rows.iter().zip(vals) {
                    w[r] += v;
                }
            }
            self.factor.ftran(&mut w);

            match ratio_test(self, q, dir, &w) {
                RatioOutcome::Unbounded => return Ok(PhaseOutcome::Unbounded),
                RatioOutcome::BoundFlip { t } => {
                    self.apply_step(q, dir, t, &w);
                    self.status[q] = match self.status[q] {
                        VarStatus::AtLower => VarStatus::AtUpper,
                        VarStatus::AtUpper => VarStatus::AtLower,
                        other => other,
                    };
                }
                RatioOutcome::Pivot { t, leaving_pos, to_upper } => {
                    self.apply_step(q, dir, t, &w);
                    // devex reference weights need the pivot row of the
                    // *outgoing* basis; compute it before the basis and
                    // factorization change underneath
                    if !bland {
                        let mut rho = vec![0.0; m];
                        rho[leaving_pos] = 1.0;
                        self.factor.btran(&mut rho);
                        devex.update(self, q, leaving_pos, &w, &rho);
                    }
                    let leaving = self.basis[leaving_pos];
                    // snap the leaving variable exactly onto its bound
                    self.x_val[leaving] =
                        if to_upper { self.upper[leaving] } else { self.lower[leaving] };
                    self.status[leaving] =
                        if to_upper { VarStatus::AtUpper } else { VarStatus::AtLower };
                    self.basis[leaving_pos] = q;
                    self.status[q] = VarStatus::Basic(leaving_pos);
                    if self.factor.update(leaving_pos, &w).is_err() {
                        // pivot too small for the eta update: refactor with
                        // the new basis instead
                        self.refactorize()?;
                    }
                }
            }

            self.iterations += 1;

            // stall detection for the Bland switch
            let obj = self.objective_of(cost);
            if obj < best_obj - 1e-10 {
                best_obj = obj;
                stall = 0;
            } else {
                stall += 1;
                if stall >= self.opts.stall_limit {
                    bland = true;
                }
            }
        }
    }

    /// Sparse-route primal loop. Same algorithm as the dense loop with
    /// three representation changes that turn per-iteration cost from
    /// `O(m + n·nnz_col)` into (amortized) pattern-sized work:
    ///
    /// * FTRAN/BTRAN run pattern-driven on [`SparseVec`]s;
    /// * duals are updated incrementally (`y += (d_q/α_q)·ρ` after each
    ///   pivot) and recomputed from scratch only at refactorizations —
    ///   optimality is therefore *confirmed* with freshly recomputed
    ///   duals before being declared;
    /// * pricing scans rotating column sectors (see
    ///   [`Devex::price_sparse`]) instead of the whole column range,
    ///   and the objective used for stall detection is tracked
    ///   incrementally from the reduced cost of each step.
    fn optimize_sparse(&mut self, cost: &[f64]) -> Result<PhaseOutcome, LpError> {
        let m = self.sf.m;
        self.ensure_csr();
        let mut stall = 0usize;
        let mut bland = false;
        let mut best_obj = f64::INFINITY;
        let mut devex = Devex::new(self.n_total);
        let refactor_every = self.opts.refactor_every.max(SPARSE_REFACTOR_MIN);

        // per-solve workspaces (no per-iteration allocation)
        let mut w = SparseVec::new(m);
        let mut rho = SparseVec::new(m);
        let mut alpha_acc = SparseVec::new(self.n_total);
        let mut ws = LuScratch::new(m);
        // When the basis couples enough rows that FTRAN results stop
        // being hypersparse, the pattern-driven solve's graph traversal
        // costs more than a flat dense sweep over the same factors (the
        // arithmetic — and hence the result — is identical either way).
        // Latch on the previous result's density.
        let mut w_densish = false;

        let mut y = self.compute_duals(cost);
        let mut y_fresh = true;
        let mut obj = self.objective_of(cost);

        loop {
            if self.iterations >= self.opts.max_iter {
                return Ok(PhaseOutcome::IterationLimit);
            }
            if self.sparse_refactor_due(refactor_every) {
                self.refactorize()?;
                y = self.compute_duals(cost);
                y_fresh = true;
                obj = self.objective_of(cost);
            }

            let pick = if bland {
                // Bland's rule needs exact reduced costs: keep y fresh
                if !y_fresh {
                    y = self.compute_duals(cost);
                    y_fresh = true;
                }
                price_bland(self, cost, &y)
                    .map(|(q, dir)| (q, dir, cost[q] - self.a.col_dot(q, &y)))
            } else {
                devex.price_sparse(self, cost, &y)
            };
            let Some((q, dir, d_q)) = pick else {
                if y_fresh {
                    return Ok(PhaseOutcome::Optimal);
                }
                // the incremental duals say optimal; confirm against
                // exactly recomputed duals before declaring it
                y = self.compute_duals(cost);
                y_fresh = true;
                continue;
            };

            // direction: w = B^-1 A_q, pattern-driven
            w.clear();
            {
                let (rows, vals) = self.a.col(q);
                for (&r, &v) in rows.iter().zip(vals) {
                    w.add(r, v);
                }
            }
            if w_densish {
                self.factor.ftran(&mut w.values);
                w.rescan_pattern();
            } else {
                self.factor.ftran_sparse(&mut w, &mut ws);
                w.sort_pattern();
            }
            w_densish = w.pattern.len() * 4 > m;

            match ratio_test_sparse(self, q, dir, &w) {
                RatioOutcome::Unbounded => return Ok(PhaseOutcome::Unbounded),
                RatioOutcome::BoundFlip { t } => {
                    self.apply_step_sparse(q, dir, t, &w);
                    self.status[q] = match self.status[q] {
                        VarStatus::AtLower => VarStatus::AtUpper,
                        VarStatus::AtUpper => VarStatus::AtLower,
                        other => other,
                    };
                    // a flip changes neither basis nor duals
                    obj += d_q * dir.sign() * t;
                }
                RatioOutcome::Pivot { t, leaving_pos, to_upper } => {
                    self.apply_step_sparse(q, dir, t, &w);
                    obj += d_q * dir.sign() * t;
                    // pivot row of the outgoing basis: needed for the
                    // devex update and the incremental dual update
                    rho.clear();
                    rho.set(leaving_pos, 1.0);
                    self.factor.btran_sparse(&mut rho, &mut ws);
                    rho.sort_pattern();
                    let alpha_q = w.values[leaving_pos];
                    if !bland {
                        devex.update_sparse(self, q, leaving_pos, alpha_q, &rho, &mut alpha_acc);
                    }
                    let leaving = self.basis[leaving_pos];
                    self.x_val[leaving] =
                        if to_upper { self.upper[leaving] } else { self.lower[leaving] };
                    self.status[leaving] =
                        if to_upper { VarStatus::AtUpper } else { VarStatus::AtLower };
                    self.basis[leaving_pos] = q;
                    self.status[q] = VarStatus::Basic(leaving_pos);
                    let mut refactored = false;
                    if self.factor.update_sparse(leaving_pos, &mut w).is_err() {
                        self.refactorize()?;
                        refactored = true;
                    }
                    if refactored || alpha_q.abs() <= 1e-12 {
                        y = self.compute_duals(cost);
                        y_fresh = true;
                        if refactored {
                            obj = self.objective_of(cost);
                        }
                    } else {
                        // y += (d_q/α_q)·ρ zeroes the entering column's
                        // reduced cost against the new basis
                        let theta = d_q / alpha_q;
                        for &i in &rho.pattern {
                            y[i] += theta * rho.values[i];
                        }
                        y_fresh = false;
                    }
                }
            }

            self.iterations += 1;

            // stall detection on the incrementally tracked objective
            // (refreshed exactly at every refactorization)
            if obj < best_obj - 1e-10 {
                best_obj = obj;
                stall = 0;
            } else {
                stall += 1;
                if stall >= self.opts.stall_limit {
                    bland = true;
                }
            }
        }
    }

    /// Whether the sparse route should refactorize now: either the
    /// update cadence is spent, or the accumulated eta fill has outgrown
    /// the LU factors. The second trigger is what keeps per-iteration
    /// cost bounded at scale — each BTRAN gathers over every stored eta
    /// nonzero, and on instances whose basis couples many rows the
    /// spikes densify long before the cadence would fire.
    /// The fill trigger is gated on the sparse route so the dense
    /// route's pivot sequence stays byte-identical to its pre-sparse
    /// behavior (golden-fixture safety).
    fn sparse_refactor_due(&self, refactor_every: usize) -> bool {
        self.factor.n_updates() >= refactor_every
            || (self.sparse && self.factor.eta_nnz() > 2 * (self.factor.lu_nnz() + self.sf.m))
    }

    /// Build the CSR mirror of the working matrix if not yet present.
    fn ensure_csr(&mut self) {
        if self.csr.is_none() {
            self.csr = Some(CsrMatrix::from_csc(&self.a));
        }
    }

    /// Duals `y = B⁻ᵀ c_B` through the current factorization.
    fn compute_duals(&self, cost: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.sf.m];
        for (i, &bcol) in self.basis.iter().enumerate() {
            y[i] = cost[bcol];
        }
        self.factor.btran(&mut y);
        y
    }

    /// Move entering variable `q` by `t` in direction `dir` and update
    /// all basic values accordingly.
    fn apply_step(&mut self, q: usize, dir: Direction, t: f64, w: &[f64]) {
        if t == 0.0 {
            return;
        }
        let step = dir.sign() * t;
        self.x_val[q] += step;
        for (i, &wi) in w.iter().enumerate() {
            if wi != 0.0 {
                let col = self.basis[i];
                self.x_val[col] -= step * wi;
            }
        }
    }

    /// [`Core::apply_step`] over a sparse direction: only the rows in
    /// `w`'s pattern hold basic variables that move.
    fn apply_step_sparse(&mut self, q: usize, dir: Direction, t: f64, w: &SparseVec) {
        if t == 0.0 {
            return;
        }
        let step = dir.sign() * t;
        self.x_val[q] += step;
        for &i in &w.pattern {
            let wi = w.values[i];
            if wi != 0.0 {
                let col = self.basis[i];
                self.x_val[col] -= step * wi;
            }
        }
    }

    fn objective_of(&self, cost: &[f64]) -> f64 {
        cost.iter().zip(&self.x_val).map(|(&c, &x)| c * x).sum()
    }

    /// Rebuild the LU factorization from the current basis and recompute
    /// basic values from scratch (numerical hygiene).
    fn refactorize(&mut self) -> Result<(), LpError> {
        let t0 = std::time::Instant::now();
        self.factor = BasisFactor::factor(&self.a, &self.basis)?;
        if self.sparse {
            crate::obs::record_factorization(t0.elapsed().as_secs_f64(), self.factor.lu_nnz());
        }
        self.refactor_count += 1;
        self.recompute_basic_values();
        Ok(())
    }

    /// Recompute `x_B = B^-1 (b - N x_N)` from the current statuses and
    /// nonbasic values through the current factorization (shared by
    /// snapshot restore, cache restore, and refactorization).
    fn recompute_basic_values(&mut self) {
        let mut rhs = self.sf.b.clone();
        for j in 0..self.n_total {
            if matches!(self.status[j], VarStatus::Basic(_)) {
                continue;
            }
            if self.x_val[j] != 0.0 {
                self.a.col_axpy(j, -self.x_val[j], &mut rhs);
            }
        }
        self.factor.ftran(&mut rhs);
        for (i, &col) in self.basis.iter().enumerate() {
            self.x_val[col] = rhs[i];
        }
    }

    /// Structural part of the current point.
    fn structural_x(&self) -> Vec<f64> {
        self.x_val[..self.sf.n_structural].to_vec()
    }

    /// Whether the finished (optimal) basis admits alternate optimal
    /// vertices: a nonbasic structural or slack column with room to
    /// move whose reduced cost is (near-)zero marks an objective-flat
    /// edge out of this vertex — *provided the edge has positive
    /// length*. A zero-reduced-cost column whose ratio test allows no
    /// step at all (every blocking basic variable is already at its
    /// bound) does not lead to a different optimal vertex, so it is
    /// de-flagged; this keeps warm reoptimization on degenerate bases
    /// from discarding answers it could legally keep. Free flagged
    /// columns are flagged outright (conservative: either direction
    /// may open an edge). The tolerance is deliberately looser than
    /// `tol_dual` so reduced costs the solve itself treated as zero
    /// are candidates.
    fn objective_degenerate(&self) -> bool {
        let y = self.row_duals();
        let tol = (self.opts.tol_dual * 100.0).max(1e-7);
        let mut w = SparseVec::new(self.sf.m);
        let mut ws = LuScratch::new(self.sf.m);
        // artificials (j ≥ sf.n) are excluded: they are not columns of
        // the caller's problem, merely phase-1 scaffolding
        for j in 0..self.sf.n {
            if matches!(self.status[j], VarStatus::Basic(_)) || self.upper[j] - self.lower[j] <= 0.0
            {
                continue;
            }
            let d = self.sf.c[j] - self.a.col_dot(j, &y);
            if d.abs() > tol {
                continue;
            }
            let dir = match self.status[j] {
                VarStatus::AtLower => Direction::Up,
                VarStatus::AtUpper => Direction::Down,
                _ => return true,
            };
            w.clear();
            let (rows, vals) = self.a.col(j);
            for (&r, &v) in rows.iter().zip(vals) {
                w.add(r, v);
            }
            self.factor.ftran_sparse(&mut w, &mut ws);
            w.sort_pattern();
            match ratio_test_sparse(self, j, dir, &w) {
                RatioOutcome::Unbounded => return true,
                RatioOutcome::BoundFlip { t } | RatioOutcome::Pivot { t, .. } => {
                    if t > self.opts.tol_primal {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Row duals for the phase-2 objective (internal minimization sense).
    fn row_duals(&self) -> Vec<f64> {
        let m = self.sf.m;
        let mut cost = vec![0.0; self.n_total];
        cost[..self.sf.n].copy_from_slice(&self.sf.c);
        let mut y = vec![0.0; m];
        for (i, &bcol) in self.basis.iter().enumerate() {
            y[i] = cost[bcol];
        }
        self.factor.btran(&mut y);
        // note: these are duals of the *internal minimization*; the
        // driver flips signs for maximization problems.
        y
    }

    // accessors used by pricing/ratio submodules
    pub(crate) fn n_total(&self) -> usize {
        self.n_total
    }
    pub(crate) fn n_rows_m(&self) -> usize {
        self.sf.m
    }
    pub(crate) fn status_of(&self, j: usize) -> VarStatus {
        self.status[j]
    }
    pub(crate) fn bounds_of(&self, j: usize) -> (f64, f64) {
        (self.lower[j], self.upper[j])
    }
    pub(crate) fn value_of(&self, j: usize) -> f64 {
        self.x_val[j]
    }
    pub(crate) fn basis_col(&self, pos: usize) -> usize {
        self.basis[pos]
    }
    pub(crate) fn matrix(&self) -> &CscMatrix {
        &self.a
    }
    /// Row-major mirror of the matrix; present only after the sparse
    /// route has called [`Core::ensure_csr`].
    pub(crate) fn csr(&self) -> Option<&CsrMatrix> {
        self.csr.as_ref()
    }
    pub(crate) fn tol_dual(&self) -> f64 {
        self.opts.tol_dual
    }
    pub(crate) fn tol_pivot(&self) -> f64 {
        self.opts.tol_pivot
    }
}

#[cfg(test)]
mod tests;
