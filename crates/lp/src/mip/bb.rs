//! Branch & bound for (mixed) integer programs.
//!
//! Depth-first with best-LP-bound child ordering, LP relaxations solved
//! by the revised simplex, most-fractional branching, and optional
//! packing-rounding incumbents. Node and iteration limits make it
//! behave like production MIP solvers: when a limit is hit the best
//! incumbent so far is returned with [`MipStatus::Feasible`].

use crate::problem::{Problem, Sense, VarBounds};
use crate::simplex::{solve, SimplexOptions, SolveStatus};

use super::rounding::{greedy_raise, is_packing, round_down};

/// Branch & bound options.
#[derive(Debug, Clone)]
pub struct BbOptions {
    /// Maximum number of explored nodes.
    pub max_nodes: usize,
    /// Integrality tolerance.
    pub tol_int: f64,
    /// LP options for node relaxations.
    pub lp: SimplexOptions,
    /// Use packing round-down incumbents at every node when applicable.
    pub packing_heuristics: bool,
}

impl Default for BbOptions {
    fn default() -> Self {
        BbOptions {
            max_nodes: 50_000,
            tol_int: 1e-6,
            lp: SimplexOptions::default(),
            packing_heuristics: true,
        }
    }
}

/// Terminal status of a MIP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MipStatus {
    /// Proven optimal.
    Optimal,
    /// A feasible incumbent exists but limits stopped the proof.
    Feasible,
    /// Proven infeasible.
    Infeasible,
    /// Limits hit before any feasible point was found.
    Unknown,
}

/// Result of a MIP solve.
#[derive(Debug, Clone)]
pub struct MipSolution {
    /// Terminal status.
    pub status: MipStatus,
    /// Incumbent objective (user sense), when one exists.
    pub objective: f64,
    /// Incumbent point, when one exists.
    pub x: Vec<f64>,
    /// Number of explored branch-and-bound nodes.
    pub nodes: usize,
}

struct Incumbent {
    objective: f64,
    x: Vec<f64>,
}

/// Solve a MIP by branch & bound.
pub fn solve_mip(problem: &Problem, opts: &BbOptions) -> MipSolution {
    let maximize = problem.sense() == Sense::Maximize;
    let better = |a: f64, b: f64| if maximize { a > b + 1e-9 } else { a < b - 1e-9 };
    let packing = opts.packing_heuristics && is_packing(problem);

    // node = set of bound overrides
    let mut stack: Vec<Vec<(usize, VarBounds)>> = vec![Vec::new()];
    let mut incumbent: Option<Incumbent> = None;
    let mut nodes = 0usize;
    let mut exhausted = true;

    while let Some(overrides) = stack.pop() {
        if nodes >= opts.max_nodes {
            exhausted = false;
            break;
        }
        nodes += 1;

        let mut node = problem.clone();
        for &(col, b) in &overrides {
            if node.set_bounds(col, b).is_err() {
                // crossed bounds: infeasible child
                continue;
            }
        }
        // crossed bounds check (set_bounds errors leave old bounds)
        if overrides.iter().any(|&(_, b)| b.lower > b.upper) {
            continue;
        }

        let relax = match solve(&node, &opts.lp) {
            Ok(s) => s,
            Err(_) => continue,
        };
        match relax.status {
            SolveStatus::Infeasible => continue,
            SolveStatus::Optimal => {}
            // unbounded relaxation of a bounded-variable IP cannot be
            // pruned safely; treat as node failure
            _ => continue,
        }

        // bound pruning
        if let Some(inc) = &incumbent {
            if !better(relax.objective, inc.objective) {
                continue;
            }
        }

        // find most fractional integer variable
        let mut branch_col = None;
        let mut branch_frac = 0.0f64;
        for (j, &is_int) in problem.integers().iter().enumerate() {
            if !is_int {
                continue;
            }
            let f = relax.x[j] - relax.x[j].floor();
            let dist = f.min(1.0 - f);
            if dist > opts.tol_int && dist > branch_frac {
                branch_frac = dist;
                branch_col = Some(j);
            }
        }

        match branch_col {
            None => {
                // integral: new incumbent
                let obj = relax.objective;
                if incumbent.as_ref().is_none_or(|inc| better(obj, inc.objective)) {
                    incumbent = Some(Incumbent { objective: obj, x: relax.x.clone() });
                }
            }
            Some(j) => {
                // packing heuristic: round the relaxation down + raise
                if packing {
                    let mut hx = round_down(problem, &relax.x);
                    let order: Vec<usize> =
                        (0..problem.n_cols()).filter(|&c| problem.integers()[c]).collect();
                    greedy_raise(problem, &mut hx, &order);
                    if problem.max_violation(&hx) <= 1e-9 && problem.is_integral(&hx, opts.tol_int)
                    {
                        let obj = problem.objective_value(&hx);
                        if incumbent.as_ref().is_none_or(|inc| better(obj, inc.objective)) {
                            incumbent = Some(Incumbent { objective: obj, x: hx });
                        }
                    }
                }

                let v = relax.x[j];
                let cur = node.col_bounds()[j];
                let down = VarBounds { lower: cur.lower, upper: v.floor() };
                let up = VarBounds { lower: v.floor() + 1.0, upper: cur.upper };
                let mut child_down = overrides.clone();
                child_down.push((j, down));
                let mut child_up = overrides;
                child_up.push((j, up));
                // explore the child nearest the LP value first (pushed last)
                if v - v.floor() > 0.5 {
                    stack.push(child_down);
                    stack.push(child_up);
                } else {
                    stack.push(child_up);
                    stack.push(child_down);
                }
            }
        }
    }

    match incumbent {
        Some(inc) => MipSolution {
            status: if exhausted { MipStatus::Optimal } else { MipStatus::Feasible },
            objective: inc.objective,
            x: inc.x,
            nodes,
        },
        None => MipSolution {
            status: if exhausted { MipStatus::Infeasible } else { MipStatus::Unknown },
            objective: f64::NAN,
            x: vec![],
            nodes,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::RowBounds;

    fn knapsack() -> Problem {
        // max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6, binary
        let mut p = Problem::new(Sense::Maximize);
        for (obj, _w) in [(10.0, 3.0), (13.0, 4.0), (7.0, 2.0)] {
            let j = p.add_col(obj, VarBounds::unit()).unwrap();
            p.set_integer(j).unwrap();
        }
        p.add_row(RowBounds::at_most(6.0), &[(0, 3.0), (1, 4.0), (2, 2.0)]).unwrap();
        p
    }

    #[test]
    fn knapsack_optimum() {
        let s = solve_mip(&knapsack(), &BbOptions::default());
        assert_eq!(s.status, MipStatus::Optimal);
        // b + c = 13 + 7 = 20 beats a + c = 17
        assert_eq!(s.objective, 20.0);
        assert_eq!(s.x, vec![0.0, 1.0, 1.0]);
    }

    #[test]
    fn integral_relaxation_short_circuits() {
        // LP optimum already integral -> single node
        let mut p = Problem::new(Sense::Maximize);
        let j = p.add_col(1.0, VarBounds::unit()).unwrap();
        p.set_integer(j).unwrap();
        p.add_row(RowBounds::at_most(1.0), &[(j, 1.0)]).unwrap();
        let s = solve_mip(&p, &BbOptions::default());
        assert_eq!(s.status, MipStatus::Optimal);
        assert_eq!(s.nodes, 1);
        assert_eq!(s.objective, 1.0);
    }

    #[test]
    fn infeasible_ip() {
        let mut p = Problem::new(Sense::Maximize);
        let j = p.add_col(1.0, VarBounds::unit()).unwrap();
        p.set_integer(j).unwrap();
        p.add_row(RowBounds::at_least(2.0), &[(j, 1.0)]).unwrap();
        let s = solve_mip(&p, &BbOptions::default());
        assert_eq!(s.status, MipStatus::Infeasible);
    }

    #[test]
    fn node_limit_returns_feasible() {
        // a chain of fractional LPs; with node limit 2 we should still
        // carry a packing incumbent
        let mut p = Problem::new(Sense::Maximize);
        for _ in 0..8 {
            let j = p.add_col(1.0, VarBounds::unit()).unwrap();
            p.set_integer(j).unwrap();
        }
        for i in 0..7 {
            p.add_row(RowBounds::at_most(1.0), &[(i, 0.7), (i + 1, 0.7)]).unwrap();
        }
        let o = BbOptions { max_nodes: 2, ..Default::default() };
        let s = solve_mip(&p, &o);
        assert_eq!(s.status, MipStatus::Feasible);
        assert!(s.objective >= 1.0, "incumbent from packing heuristic");
    }

    #[test]
    fn mixed_integer_keeps_continuous_fractional() {
        // max y + z, y binary, z continuous <= 0.5 via row
        let mut p = Problem::new(Sense::Maximize);
        let y = p.add_col(1.0, VarBounds::unit()).unwrap();
        p.set_integer(y).unwrap();
        let z = p.add_col(1.0, VarBounds::unit()).unwrap();
        p.add_row(RowBounds::at_most(0.5), &[(z, 1.0)]).unwrap();
        p.add_row(RowBounds::at_most(1.4), &[(y, 1.0), (z, 1.0)]).unwrap();
        let s = solve_mip(&p, &BbOptions::default());
        assert_eq!(s.status, MipStatus::Optimal);
        assert!((s.objective - 1.4).abs() < 1e-6);
        assert_eq!(s.x[0], 1.0);
        assert!((s.x[1] - 0.4).abs() < 1e-6);
    }

    #[test]
    fn minimization_mip() {
        // min a + b s.t. a + b >= 1.5, binary -> 2
        let mut p = Problem::new(Sense::Minimize);
        for _ in 0..2 {
            let j = p.add_col(1.0, VarBounds::unit()).unwrap();
            p.set_integer(j).unwrap();
        }
        p.add_row(RowBounds::at_least(1.5), &[(0, 1.0), (1, 1.0)]).unwrap();
        let s = solve_mip(&p, &BbOptions::default());
        assert_eq!(s.status, MipStatus::Optimal);
        assert_eq!(s.objective, 2.0);
    }
}
