//! Packing-aware rounding utilities.
//!
//! For a packing model (`≤` rows, non-negative coefficients, variables
//! bounded below at 0) any point can be rounded *down* without losing
//! feasibility; utility can then be recovered by greedily raising
//! variables while slack remains.

use crate::problem::Problem;
use crate::simplex::{solve, SimplexOptions, SolveStatus};

/// Whether the model is a packing program: every row is `a'x ≤ u` with
/// `a ≥ 0`, `u ≥ 0`, and every column has lower bound 0.
pub fn is_packing(p: &Problem) -> bool {
    p.row_bounds().iter().all(|rb| rb.lower == f64::NEG_INFINITY && rb.upper >= 0.0)
        && p.triplets().iter().all(|&(_, _, v)| v >= 0.0)
        && p.col_bounds().iter().all(|b| b.lower == 0.0)
}

/// Round integer-marked variables down to the nearest integer
/// (feasible for packing models by construction).
pub fn round_down(p: &Problem, x: &[f64]) -> Vec<f64> {
    x.iter()
        .zip(p.integers())
        .map(|(&v, &is_int)| if is_int { (v + 1e-9).floor() } else { v })
        .collect()
}

/// Greedily raise integer variables by +1 steps while all rows stay
/// feasible. Candidates are visited in the given order (e.g. by LP
/// fractional value); returns the improved point.
pub fn greedy_raise(p: &Problem, x: &mut [f64], order: &[usize]) {
    debug_assert!(is_packing(p), "greedy_raise requires a packing model");
    let a = p.matrix();
    let mut activity = a.matvec(x);
    for &j in order {
        if !p.integers()[j] {
            continue;
        }
        loop {
            if x[j] + 1.0 > p.col_bounds()[j].upper + 1e-9 {
                break;
            }
            // feasible to add one unit of column j?
            let (rows, vals) = a.col(j);
            let ok = rows
                .iter()
                .zip(vals)
                .all(|(&r, &v)| activity[r] + v <= p.row_bounds()[r].upper + 1e-9);
            if !ok {
                break;
            }
            x[j] += 1.0;
            for (&r, &v) in rows.iter().zip(vals) {
                activity[r] += v;
            }
        }
    }
}

/// LP-relaxation rounding for packing models: solve the relaxation,
/// round down, then greedily raise in descending order of the LP
/// fractional values. Returns `None` when the relaxation does not reach
/// optimality.
pub fn lp_round_packing(p: &Problem, opts: &SimplexOptions) -> Option<Vec<f64>> {
    let relax = solve(p, opts).ok()?;
    if relax.status != SolveStatus::Optimal {
        return None;
    }
    Some(lp_round_packing_from(p, &relax.x))
}

/// The rounding half of [`lp_round_packing`], starting from an already
/// computed optimal relaxation point (lets callers solve the relaxation
/// through a warm-started session).
pub fn lp_round_packing_from(p: &Problem, relax_x: &[f64]) -> Vec<f64> {
    let mut x = round_down(p, relax_x);
    let mut order: Vec<usize> = (0..p.n_cols()).filter(|&j| p.integers()[j]).collect();
    order.sort_by(|&a, &b| {
        let fa = relax_x[a] - relax_x[a].floor();
        let fb = relax_x[b] - relax_x[b].floor();
        fb.partial_cmp(&fa).expect("fractional parts are finite")
    });
    greedy_raise(p, &mut x, &order);
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{RowBounds, Sense, VarBounds};

    fn packing_bip() -> Problem {
        // max y0 + y1 + y2 s.t. 0.6 y0 + 0.6 y1 <= 1, 0.6 y1 + 0.6 y2 <= 1
        let mut p = Problem::new(Sense::Maximize);
        for _ in 0..3 {
            let j = p.add_col(1.0, VarBounds::unit()).unwrap();
            p.set_integer(j).unwrap();
        }
        p.add_row(RowBounds::at_most(1.0), &[(0, 0.6), (1, 0.6)]).unwrap();
        p.add_row(RowBounds::at_most(1.0), &[(1, 0.6), (2, 0.6)]).unwrap();
        p
    }

    #[test]
    fn packing_detection() {
        assert!(is_packing(&packing_bip()));
        let mut p = packing_bip();
        p.add_row(RowBounds::at_least(0.5), &[(0, 1.0)]).unwrap();
        assert!(!is_packing(&p));
    }

    #[test]
    fn round_down_is_feasible() {
        let p = packing_bip();
        let x = round_down(&p, &[0.9, 0.9, 0.9]);
        assert_eq!(x, vec![0.0, 0.0, 0.0]);
        assert!(p.max_violation(&x) <= 0.0);
    }

    #[test]
    fn greedy_raise_fills_slack() {
        let p = packing_bip();
        let mut x = vec![0.0, 0.0, 0.0];
        greedy_raise(&p, &mut x, &[0, 1, 2]);
        // raising order 0,1,2: y0=1 ok; y1 would overflow row0; y2=1 ok
        assert_eq!(x, vec![1.0, 0.0, 1.0]);
        assert!(p.max_violation(&x) <= 1e-9);
    }

    #[test]
    fn lp_round_reaches_optimum_here() {
        let p = packing_bip();
        let x = lp_round_packing(&p, &SimplexOptions::default()).unwrap();
        let obj = p.objective_value(&x);
        // optimum of this BIP is 2 (y0 = y2 = 1)
        assert_eq!(obj, 2.0);
    }

    #[test]
    fn greedy_respects_upper_bounds() {
        let mut p = Problem::new(Sense::Maximize);
        let j = p.add_col(1.0, VarBounds { lower: 0.0, upper: 2.0 }).unwrap();
        p.set_integer(j).unwrap();
        p.add_row(RowBounds::at_most(10.0), &[(j, 1.0)]).unwrap();
        let mut x = vec![0.0];
        greedy_raise(&p, &mut x, &[0]);
        assert_eq!(x, vec![2.0], "stops at the column upper bound");
    }

    #[test]
    fn continuous_columns_left_alone() {
        let mut p = Problem::new(Sense::Maximize);
        let _c = p.add_col(1.0, VarBounds::unit()).unwrap(); // continuous
        p.add_row(RowBounds::at_most(1.0), &[(0, 1.0)]).unwrap();
        let x = round_down(&p, &[0.7]);
        assert_eq!(x, vec![0.7]);
        let mut x2 = x.clone();
        greedy_raise(&p, &mut x2, &[0]);
        assert_eq!(x2, vec![0.7]);
    }
}
