//! Integer-programming layer: branch & bound and packing heuristics.
//!
//! The D-UMP of the paper is a *packing* binary program (`max Σ y`,
//! non-negative constraint matrix, `≤` rows): rounding any fractional
//! point down is always feasible, which both the heuristics and the
//! branch-and-bound incumbent logic exploit.

pub mod bb;
pub mod pump;
pub mod rounding;

pub use bb::{solve_mip, BbOptions, MipSolution, MipStatus};
pub use pump::{pump_packing, PumpOptions};
pub use rounding::{greedy_raise, is_packing, lp_round_packing, lp_round_packing_from, round_down};
