//! Feasibility-pump-style heuristic for packing binary programs.
//!
//! Plays the role of NEOS `feaspump` in the paper's Table 7 solver
//! comparison. Packing structure makes pure feasibility trivial (all
//! zeros), so the pump here hunts for *good* feasible points: randomized
//! threshold rounding of the LP relaxation, SPE-style repair of violated
//! rows, then greedy improvement — repeated over several restarts.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::problem::Problem;
use crate::simplex::{solve, SimplexOptions, SolveStatus};

use super::rounding::{greedy_raise, is_packing};

/// Pump options.
#[derive(Debug, Clone)]
pub struct PumpOptions {
    /// Number of randomized rounding restarts.
    pub restarts: usize,
    /// RNG seed (the heuristic is deterministic given the seed).
    pub seed: u64,
    /// LP options for the one relaxation solve.
    pub lp: SimplexOptions,
}

impl Default for PumpOptions {
    fn default() -> Self {
        PumpOptions { restarts: 12, seed: 0x5eed, lp: SimplexOptions::default() }
    }
}

/// Run the pump on a packing binary program; returns the best feasible
/// 0/1 point found, or `None` if the relaxation fails.
pub fn pump_packing(problem: &Problem, opts: &PumpOptions) -> Option<Vec<f64>> {
    assert!(is_packing(problem), "pump_packing requires a packing model");
    let relax = solve(problem, &opts.lp).ok()?;
    if relax.status != SolveStatus::Optimal {
        return None;
    }
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let a = problem.matrix();
    let n = problem.n_cols();

    let mut best: Option<(f64, Vec<f64>)> = None;
    for restart in 0..opts.restarts.max(1) {
        // randomized threshold rounding: keep deterministic round on the
        // first restart, then perturb
        let mut x: Vec<f64> = (0..n)
            .map(|j| {
                if !problem.integers()[j] {
                    return relax.x[j];
                }
                let threshold = if restart == 0 { 0.5 } else { rng.random::<f64>() };
                if relax.x[j] >= threshold {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();

        // repair: while a row is violated, zero out the set variable
        // with the largest coefficient in the most-violated row
        let mut activity = a.matvec(&x);
        loop {
            let mut worst_row = None;
            let mut worst_excess = 1e-9;
            for (i, rb) in problem.row_bounds().iter().enumerate() {
                let excess = activity[i] - rb.upper;
                if excess > worst_excess {
                    worst_excess = excess;
                    worst_row = Some(i);
                }
            }
            let Some(_row) = worst_row else { break };
            // find max-coefficient set variable in any violated row
            let mut victim: Option<(usize, f64)> = None;
            for &(r, c, v) in problem.triplets() {
                if x[c] >= 1.0
                    && problem.integers()[c]
                    && activity[r] > problem.row_bounds()[r].upper + 1e-9
                    && victim.is_none_or(|(_, bv)| v > bv)
                {
                    victim = Some((c, v));
                }
            }
            let Some((c, _)) = victim else { break };
            x[c] = 0.0;
            let (rows, vals) = a.col(c);
            for (&r, &v) in rows.iter().zip(vals) {
                activity[r] -= v;
            }
        }

        // improve: greedy raise in random order
        let mut order: Vec<usize> = (0..n).filter(|&j| problem.integers()[j]).collect();
        // Fisher–Yates
        for i in (1..order.len()).rev() {
            let j = rng.random_range(0..=i);
            order.swap(i, j);
        }
        greedy_raise(problem, &mut x, &order);

        if problem.max_violation(&x) <= 1e-9 {
            let obj = problem.objective_value(&x);
            if best.as_ref().is_none_or(|(b, _)| obj > *b) {
                best = Some((obj, x));
            }
        }
    }
    best.map(|(_, x)| x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{RowBounds, Sense, VarBounds};

    fn chain_bip(n: usize) -> Problem {
        let mut p = Problem::new(Sense::Maximize);
        for _ in 0..n {
            let j = p.add_col(1.0, VarBounds::unit()).unwrap();
            p.set_integer(j).unwrap();
        }
        for i in 0..n - 1 {
            p.add_row(RowBounds::at_most(1.0), &[(i, 0.7), (i + 1, 0.7)]).unwrap();
        }
        p
    }

    #[test]
    fn finds_feasible_good_point() {
        let p = chain_bip(9);
        let x = pump_packing(&p, &PumpOptions::default()).unwrap();
        assert!(p.max_violation(&x) <= 1e-9);
        // optimum is alternating = 5; pump should reach at least 4
        assert!(p.objective_value(&x) >= 4.0, "objective {}", p.objective_value(&x));
    }

    #[test]
    fn deterministic_given_seed() {
        let p = chain_bip(7);
        let a = pump_packing(&p, &PumpOptions::default()).unwrap();
        let b = pump_packing(&p, &PumpOptions::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn single_restart_still_works() {
        let p = chain_bip(5);
        let o = PumpOptions { restarts: 1, ..Default::default() };
        let x = pump_packing(&p, &o).unwrap();
        assert!(p.max_violation(&x) <= 1e-9);
    }

    #[test]
    #[should_panic(expected = "packing model")]
    fn non_packing_rejected() {
        let mut p = Problem::new(Sense::Maximize);
        let j = p.add_col(1.0, VarBounds::unit()).unwrap();
        p.set_integer(j).unwrap();
        p.add_row(RowBounds::at_least(1.0), &[(j, 1.0)]).unwrap();
        let _ = pump_packing(&p, &PumpOptions::default());
    }
}
