//! Geometric-mean equilibration.
//!
//! The privacy constraints have coefficients `ln t_ijk` spanning several
//! orders of magnitude (a user holding 1 of 1000 clicks contributes
//! `ln(1000/999) ≈ 1e-3`; one holding 99 of 100 contributes
//! `ln 100 ≈ 4.6`). Scaling rows and columns toward unit geometric mean
//! keeps the simplex pivots well-conditioned. Factors are rounded to
//! powers of two so scaling introduces no rounding error.

use crate::problem::{Problem, RowBounds, Sense, VarBounds};

/// Row/column scale factors (`a~ = R a C`).
#[derive(Debug, Clone)]
pub struct ScaleFactors {
    /// Row multipliers, length `n_rows`.
    pub row: Vec<f64>,
    /// Column multipliers, length `n_cols`.
    pub col: Vec<f64>,
}

impl ScaleFactors {
    /// Identity scaling.
    pub fn identity(n_rows: usize, n_cols: usize) -> Self {
        ScaleFactors { row: vec![1.0; n_rows], col: vec![1.0; n_cols] }
    }

    /// Recover original variable values from scaled ones
    /// (`x_j = c_j · x~_j`).
    pub fn unscale_x(&self, x_scaled: &[f64]) -> Vec<f64> {
        x_scaled.iter().zip(&self.col).map(|(&x, &c)| x * c).collect()
    }

    /// Recover original duals from scaled ones (`y_i = r_i · y~_i`).
    pub fn unscale_duals(&self, y_scaled: &[f64]) -> Vec<f64> {
        y_scaled.iter().zip(&self.row).map(|(&y, &r)| y * r).collect()
    }
}

fn pow2_round(v: f64) -> f64 {
    if !v.is_finite() || v <= 0.0 {
        return 1.0;
    }
    // nearest power of two to v in log space
    let e = v.log2().round();
    2.0f64.powi(e.clamp(-60.0, 60.0) as i32)
}

/// Compute geometric-mean scale factors with the given number of
/// row/column sweeps (2 is plenty in practice).
pub fn geometric_scaling(p: &Problem, passes: usize) -> ScaleFactors {
    let m = p.n_rows();
    let n = p.n_cols();
    let mut f = ScaleFactors::identity(m, n);
    if m == 0 || n == 0 || p.triplets().is_empty() {
        return f;
    }

    for _ in 0..passes {
        // rows: geometric mean of |r a c| per row
        let mut lo = vec![f64::INFINITY; m];
        let mut hi = vec![0.0f64; m];
        for &(r, c, v) in p.triplets() {
            let av = (v * f.row[r] * f.col[c]).abs();
            if av > 0.0 {
                lo[r] = lo[r].min(av);
                hi[r] = hi[r].max(av);
            }
        }
        for i in 0..m {
            if hi[i] > 0.0 {
                f.row[i] *= pow2_round(1.0 / (lo[i] * hi[i]).sqrt());
            }
        }
        // cols
        let mut lo = vec![f64::INFINITY; n];
        let mut hi = vec![0.0f64; n];
        for &(r, c, v) in p.triplets() {
            let av = (v * f.row[r] * f.col[c]).abs();
            if av > 0.0 {
                lo[c] = lo[c].min(av);
                hi[c] = hi[c].max(av);
            }
        }
        for j in 0..n {
            if hi[j] > 0.0 {
                f.col[j] *= pow2_round(1.0 / (lo[j] * hi[j]).sqrt());
            }
        }
    }
    f
}

/// Apply scale factors, producing the scaled problem
/// (`a~ = R a C`, row bounds `× R`, column bounds `÷ C`, objective
/// `× C`). The scaled problem has the same optimal objective value, with
/// variables `x~_j = x_j / c_j`.
pub fn apply(p: &Problem, f: &ScaleFactors) -> Problem {
    assert_eq!(f.row.len(), p.n_rows(), "row factor length");
    assert_eq!(f.col.len(), p.n_cols(), "col factor length");
    let mut scaled = Problem::new(p.sense());
    for j in 0..p.n_cols() {
        let b = p.col_bounds()[j];
        scaled
            .add_col(
                p.objective()[j] * f.col[j],
                VarBounds { lower: b.lower / f.col[j], upper: b.upper / f.col[j] },
            )
            .expect("scaled column is valid");
        if p.integers()[j] {
            scaled.set_integer(j).expect("column exists");
        }
    }
    // group triplets by row
    let mut per_row: Vec<Vec<(usize, f64)>> = vec![Vec::new(); p.n_rows()];
    for &(r, c, v) in p.triplets() {
        per_row[r].push((c, v * f.row[r] * f.col[c]));
    }
    for (i, entries) in per_row.iter().enumerate() {
        let rb = p.row_bounds()[i];
        scaled
            .add_row(RowBounds { lower: rb.lower * f.row[i], upper: rb.upper * f.row[i] }, entries)
            .expect("scaled row is valid");
    }
    debug_assert_eq!(
        scaled.sense(),
        if p.sense() == Sense::Maximize { Sense::Maximize } else { Sense::Minimize }
    );
    scaled
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{RowBounds, Sense, VarBounds};

    fn badly_scaled() -> Problem {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_col(1.0, VarBounds::non_negative()).unwrap();
        let y = p.add_col(1e-4, VarBounds::non_negative()).unwrap();
        p.add_row(RowBounds::at_most(1e6), &[(x, 1e5), (y, 2e-3)]).unwrap();
        p.add_row(RowBounds::at_most(1.0), &[(x, 1e-4), (y, 5.0)]).unwrap();
        p
    }

    fn spread(p: &Problem, f: &ScaleFactors) -> f64 {
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for &(r, c, v) in p.triplets() {
            let av = (v * f.row[r] * f.col[c]).abs();
            lo = lo.min(av);
            hi = hi.max(av);
        }
        hi / lo
    }

    #[test]
    fn scaling_reduces_coefficient_spread() {
        let p = badly_scaled();
        let before = spread(&p, &ScaleFactors::identity(p.n_rows(), p.n_cols()));
        let f = geometric_scaling(&p, 2);
        let after = spread(&p, &f);
        assert!(after < before / 100.0, "spread {before} -> {after}");
    }

    #[test]
    fn factors_are_powers_of_two() {
        let p = badly_scaled();
        let f = geometric_scaling(&p, 2);
        for v in f.row.iter().chain(&f.col) {
            assert_eq!(v.log2().fract(), 0.0, "{v} not a power of two");
        }
    }

    #[test]
    fn scaled_problem_preserves_feasibility_and_objective() {
        let p = badly_scaled();
        let f = geometric_scaling(&p, 2);
        let sp = apply(&p, &f);
        // x feasible in p <-> x~ = x / c feasible in sp, same objective
        let x = vec![3.0, 100.0];
        let x_scaled: Vec<f64> = x.iter().zip(&f.col).map(|(&v, &c)| v / c).collect();
        assert!((p.objective_value(&x) - sp.objective_value(&x_scaled)).abs() < 1e-9);
        assert!((p.max_violation(&x) <= 0.0) == (sp.max_violation(&x_scaled) <= 1e-9));
        assert_eq!(f.unscale_x(&x_scaled), x);
    }

    #[test]
    fn identity_scaling_for_empty_problem() {
        let p = Problem::new(Sense::Minimize);
        let f = geometric_scaling(&p, 2);
        assert!(f.row.is_empty() && f.col.is_empty());
    }

    #[test]
    fn integer_marks_survive_scaling() {
        let mut p = badly_scaled();
        p.set_integer(0).unwrap();
        let f = geometric_scaling(&p, 1);
        let sp = apply(&p, &f);
        assert_eq!(sp.integers(), p.integers());
    }

    #[test]
    fn pow2_round_basics() {
        assert_eq!(pow2_round(1.0), 1.0);
        assert_eq!(pow2_round(3.0), 4.0);
        assert_eq!(pow2_round(0.3), 0.25);
        assert_eq!(pow2_round(0.0), 1.0);
        assert_eq!(pow2_round(f64::INFINITY), 1.0);
    }
}
