//! Dense Big-M tableau simplex — the *reference* implementation.
//!
//! An independent, deliberately simple solver used to cross-check the
//! revised simplex in tests (the two share no code beyond the model
//! type). It densifies everything and handles bounds by adding explicit
//! rows, so keep it to small problems.

use crate::problem::{Problem, Sense};
use crate::simplex::SolveStatus;

/// Result of the reference solver.
#[derive(Debug, Clone)]
pub struct DenseSolution {
    /// Terminal status.
    pub status: SolveStatus,
    /// Objective in the user's sense.
    pub objective: f64,
    /// Structural variable values.
    pub x: Vec<f64>,
}

const BIG_M: f64 = 1e8;
const TOL: f64 = 1e-9;

/// Solve a small LP with the dense Big-M tableau method.
///
/// Variables with negative lower bounds are shifted; free variables are
/// split into positive and negative parts. Upper bounds become explicit
/// rows. Intended for cross-checking on models with at most a few dozen
/// rows and columns.
pub fn solve_dense(problem: &Problem) -> DenseSolution {
    // -- translate to: min c'z, A z (<=,=,>=) b, z >= 0 -------------------
    // column mapping: each structural column -> (pos_index, neg_index or none, shift)
    struct ColMap {
        pos: usize,
        neg: Option<usize>,
        shift: f64,
    }
    let maximize = problem.sense() == Sense::Maximize;
    let mut nz = 0usize;
    let mut map = Vec::with_capacity(problem.n_cols());
    for b in problem.col_bounds() {
        if b.lower.is_finite() {
            map.push(ColMap { pos: nz, neg: None, shift: b.lower });
            nz += 1;
        } else {
            // free below: split x = x+ - x-
            map.push(ColMap { pos: nz, neg: Some(nz + 1), shift: 0.0 });
            nz += 2;
        }
    }

    #[derive(Clone, Copy, PartialEq)]
    enum RowKind {
        Le,
        Ge,
        Eq,
    }
    let mut rows: Vec<(Vec<f64>, RowKind, f64)> = Vec::new();

    // constraint rows (range rows become two)
    let dense_a = {
        let m = problem.matrix();
        m.to_dense()
    };
    for (i, rb) in problem.row_bounds().iter().enumerate() {
        let mut coef = vec![0.0; nz];
        let mut shift_sum = 0.0;
        for (j, cm) in map.iter().enumerate() {
            let a = dense_a[i][j];
            if a == 0.0 {
                continue;
            }
            coef[cm.pos] += a;
            if let Some(neg) = cm.neg {
                coef[neg] -= a;
            }
            shift_sum += a * cm.shift;
        }
        if rb.lower == rb.upper {
            rows.push((coef, RowKind::Eq, rb.upper - shift_sum));
        } else {
            if rb.upper.is_finite() {
                rows.push((coef.clone(), RowKind::Le, rb.upper - shift_sum));
            }
            if rb.lower.is_finite() {
                rows.push((coef, RowKind::Ge, rb.lower - shift_sum));
            }
        }
    }
    // upper bounds as rows
    for (j, (cm, b)) in map.iter().zip(problem.col_bounds()).enumerate() {
        let _ = j;
        if b.upper.is_finite() {
            let mut coef = vec![0.0; nz];
            coef[cm.pos] = 1.0;
            if let Some(neg) = cm.neg {
                coef[neg] = -1.0;
            }
            rows.push((coef, RowKind::Le, b.upper - cm.shift));
        }
    }

    // objective over z
    let mut c = vec![0.0; nz];
    let mut obj_shift = 0.0;
    for (j, cm) in map.iter().enumerate() {
        let cj = problem.objective()[j] * if maximize { -1.0 } else { 1.0 };
        c[cm.pos] += cj;
        if let Some(neg) = cm.neg {
            c[neg] -= cj;
        }
        obj_shift += cj * cm.shift;
    }

    // -- build Big-M tableau ----------------------------------------------
    let m = rows.len();
    // ensure b >= 0
    for (coef, kind, b) in &mut rows {
        if *b < 0.0 {
            for v in coef.iter_mut() {
                *v = -*v;
            }
            *b = -*b;
            *kind = match *kind {
                RowKind::Le => RowKind::Ge,
                RowKind::Ge => RowKind::Le,
                RowKind::Eq => RowKind::Eq,
            };
        }
    }
    let n_slack: usize = rows.iter().filter(|(_, k, _)| *k != RowKind::Eq).count();
    let n_art: usize = rows.iter().filter(|(_, k, _)| *k != RowKind::Le).count();
    let width = nz + n_slack + n_art + 1; // + rhs
    let mut t = vec![vec![0.0; width]; m + 1];
    let mut basis = vec![usize::MAX; m];

    let mut s_at = nz;
    let mut a_at = nz + n_slack;
    for (i, (coef, kind, b)) in rows.iter().enumerate() {
        t[i][..nz].copy_from_slice(coef);
        t[i][width - 1] = *b;
        match kind {
            RowKind::Le => {
                t[i][s_at] = 1.0;
                basis[i] = s_at;
                s_at += 1;
            }
            RowKind::Ge => {
                t[i][s_at] = -1.0;
                s_at += 1;
                t[i][a_at] = 1.0;
                basis[i] = a_at;
                a_at += 1;
            }
            RowKind::Eq => {
                t[i][a_at] = 1.0;
                basis[i] = a_at;
                a_at += 1;
            }
        }
    }
    // objective row: c + M on artificials, then eliminate basic artificials
    t[m][..nz].copy_from_slice(&c);
    t[m][nz + n_slack..nz + n_slack + n_art].fill(BIG_M);
    {
        let (rows, obj) = t.split_at_mut(m);
        let obj = &mut obj[0];
        for (i, row) in rows.iter().enumerate() {
            if basis[i] >= nz + n_slack {
                // subtract M * row from objective to zero out the basic artificial
                for (dst, &src) in obj.iter_mut().zip(row) {
                    *dst -= BIG_M * src;
                }
            }
        }
    }

    // -- simplex iterations -------------------------------------------------
    for _ in 0..50_000 {
        // entering: most negative reduced cost
        let mut q = usize::MAX;
        let mut best = -TOL;
        for (j, &red) in t[m][..width - 1].iter().enumerate() {
            if red < best {
                best = red;
                q = j;
            }
        }
        if q == usize::MAX {
            break; // optimal
        }
        // leaving: min ratio
        let mut r = usize::MAX;
        let mut best_ratio = f64::INFINITY;
        for (i, row) in t.iter().enumerate().take(m) {
            if row[q] > TOL {
                let ratio = row[width - 1] / row[q];
                if ratio < best_ratio - 1e-12 {
                    best_ratio = ratio;
                    r = i;
                }
            }
        }
        if r == usize::MAX {
            return DenseSolution {
                status: SolveStatus::Unbounded,
                objective: if maximize { f64::INFINITY } else { f64::NEG_INFINITY },
                x: vec![],
            };
        }
        // pivot
        let piv = t[r][q];
        for v in &mut t[r] {
            *v /= piv;
        }
        let pivot_row = std::mem::take(&mut t[r]);
        for (i, row) in t.iter_mut().enumerate() {
            if i != r && row[q].abs() > 0.0 {
                let f = row[q];
                for (dst, &src) in row.iter_mut().zip(&pivot_row) {
                    *dst -= f * src;
                }
            }
        }
        t[r] = pivot_row;
        basis[r] = q;
    }

    // infeasible if an artificial is basic at positive level
    for i in 0..m {
        if basis[i] >= nz + n_slack && t[i][width - 1] > 1e-6 {
            return DenseSolution {
                status: SolveStatus::Infeasible,
                objective: f64::NAN,
                x: vec![],
            };
        }
    }

    // extract z then x
    let mut z = vec![0.0; nz];
    for i in 0..m {
        if basis[i] < nz {
            z[basis[i]] = t[i][width - 1];
        }
    }
    let x: Vec<f64> = map
        .iter()
        .map(|cm| {
            let pos = z[cm.pos];
            let neg = cm.neg.map_or(0.0, |j| z[j]);
            pos - neg + cm.shift
        })
        .collect();
    let internal = c.iter().zip(&z).map(|(&cj, &zj)| cj * zj).sum::<f64>() + obj_shift;
    let objective = if maximize { -internal } else { internal };
    DenseSolution { status: SolveStatus::Optimal, objective, x }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{RowBounds, VarBounds};

    #[test]
    fn textbook_max() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_col(3.0, VarBounds::non_negative()).unwrap();
        let y = p.add_col(5.0, VarBounds::non_negative()).unwrap();
        p.add_row(RowBounds::at_most(4.0), &[(x, 1.0)]).unwrap();
        p.add_row(RowBounds::at_most(12.0), &[(y, 2.0)]).unwrap();
        p.add_row(RowBounds::at_most(18.0), &[(x, 3.0), (y, 2.0)]).unwrap();
        let s = solve_dense(&p);
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!((s.objective - 36.0).abs() < 1e-6);
    }

    #[test]
    fn equality_and_geq() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_col(1.0, VarBounds::non_negative()).unwrap();
        let y = p.add_col(2.0, VarBounds::non_negative()).unwrap();
        p.add_row(RowBounds::equal(10.0), &[(x, 1.0), (y, 1.0)]).unwrap();
        p.add_row(RowBounds::at_most(6.0), &[(x, 1.0)]).unwrap();
        let s = solve_dense(&p);
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!((s.objective - 14.0).abs() < 1e-6);
    }

    #[test]
    fn free_variable_split() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_col(1.0, VarBounds::free()).unwrap();
        p.add_row(RowBounds::at_least(-5.0), &[(x, 1.0)]).unwrap();
        let s = solve_dense(&p);
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!((s.objective + 5.0).abs() < 1e-6, "min x = -5, got {}", s.objective);
    }

    #[test]
    fn infeasible() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_col(1.0, VarBounds::non_negative()).unwrap();
        p.add_row(RowBounds::at_most(1.0), &[(x, 1.0)]).unwrap();
        p.add_row(RowBounds::at_least(3.0), &[(x, 1.0)]).unwrap();
        assert_eq!(solve_dense(&p).status, SolveStatus::Infeasible);
    }

    #[test]
    fn unbounded() {
        let mut p = Problem::new(Sense::Maximize);
        p.add_col(1.0, VarBounds::non_negative()).unwrap();
        let s = solve_dense(&p);
        assert_eq!(s.status, SolveStatus::Unbounded);
    }

    #[test]
    fn upper_bounds_as_rows() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_col(1.0, VarBounds::unit()).unwrap();
        let y = p.add_col(1.0, VarBounds::unit()).unwrap();
        p.add_row(RowBounds::at_most(1.5), &[(x, 1.0), (y, 1.0)]).unwrap();
        let s = solve_dense(&p);
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!((s.objective - 1.5).abs() < 1e-6);
    }

    #[test]
    fn shifted_lower_bounds() {
        // x in [2, 10], min x -> 2
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_col(1.0, VarBounds { lower: 2.0, upper: 10.0 }).unwrap();
        p.add_row(RowBounds::at_most(100.0), &[(x, 1.0)]).unwrap();
        let s = solve_dense(&p);
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!((s.objective - 2.0).abs() < 1e-6);
    }
}
