//! Sparse LU factorization with partial pivoting.
//!
//! A simplified Gilbert–Peierls scheme: columns are factored in order
//! with a dense working vector, eliminating against previously chosen
//! pivots and picking the largest remaining entry as the next pivot
//! (`P B = L U`, row permutation only). Simplex bases are dominated by
//! slack (identity) columns and structural columns with a handful of
//! nonzeros, so `L` stays extremely sparse and both the factorization
//! and the triangular solves run in near-linear time.

/// Sparse LU factors of a square matrix.
#[derive(Debug, Clone)]
pub struct SparseLu {
    n: usize,
    /// Column k of `L` (strictly below the pivot, unit diagonal
    /// implicit), stored by *original row index*.
    l_cols: Vec<Vec<(usize, f64)>>,
    /// Column j of `U` strictly above the diagonal: entries `(k, v)`
    /// meaning pivot position `k` (`k < j`).
    u_cols: Vec<Vec<(usize, f64)>>,
    /// Diagonal of `U` per pivot position.
    u_diag: Vec<f64>,
    /// `p[k]` = original row chosen as pivot of position `k`.
    p: Vec<usize>,
    /// Inverse permutation: `pinv[row] = pivot position`.
    pinv: Vec<usize>,
}

impl SparseLu {
    /// Factor a square matrix given as `n` sparse columns
    /// (`(row_indices, values)` per column). Returns `None` when the
    /// matrix is numerically singular.
    pub fn factor(n: usize, cols: &[(&[usize], &[f64])]) -> Option<SparseLu> {
        assert_eq!(cols.len(), n, "need exactly n columns");
        const PIVOT_TOL: f64 = 1e-11;

        let mut l_cols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n);
        let mut u_cols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n);
        let mut u_diag = Vec::with_capacity(n);
        let mut p = Vec::with_capacity(n);
        let mut pinv: Vec<Option<usize>> = vec![None; n];

        // dense working vector + occupancy list
        let mut work = vec![0.0f64; n];
        let mut touched: Vec<usize> = Vec::with_capacity(64);

        for (j, &(rows, vals)) in cols.iter().enumerate() {
            // scatter column j
            for (&r, &v) in rows.iter().zip(vals) {
                debug_assert!(r < n);
                if work[r] == 0.0 && v != 0.0 {
                    touched.push(r);
                }
                work[r] += v;
            }

            // eliminate against pivots 0..j in order
            let mut u_col = Vec::new();
            for k in 0..j {
                let pivot_row = p[k];
                let xk = work[pivot_row];
                if xk == 0.0 {
                    continue;
                }
                u_col.push((k, xk));
                work[pivot_row] = 0.0;
                for &(r, l) in &l_cols[k] {
                    if work[r] == 0.0 {
                        touched.push(r);
                    }
                    work[r] -= l * xk;
                }
            }

            // pivot: max |value| among rows not yet pivotal
            let mut pivot_row = usize::MAX;
            let mut pivot_val = 0.0f64;
            for &r in &touched {
                if pinv[r].is_none() && work[r].abs() > pivot_val.abs() {
                    pivot_row = r;
                    pivot_val = work[r];
                }
            }
            if pivot_row == usize::MAX || pivot_val.abs() < PIVOT_TOL {
                return None;
            }

            // gather L column (normalized) and reset workspace
            let mut l_col = Vec::new();
            for &r in &touched {
                let v = work[r];
                work[r] = 0.0;
                if v != 0.0 && r != pivot_row && pinv[r].is_none() {
                    l_col.push((r, v / pivot_val));
                }
            }
            touched.clear();

            pinv[pivot_row] = Some(j);
            p.push(pivot_row);
            u_diag.push(pivot_val);
            u_cols.push(u_col);
            l_cols.push(l_col);
        }

        let pinv: Vec<usize> = pinv.into_iter().map(|x| x.expect("all rows pivoted")).collect();
        Some(SparseLu { n, l_cols, u_cols, u_diag, p, pinv })
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Solve `B z = rhs` in place; `rhs` is indexed by original row on
    /// entry and by basis position on exit.
    pub fn ftran(&self, rhs: &mut [f64]) {
        assert_eq!(rhs.len(), self.n, "dimension mismatch");
        // L y = P rhs: process pivots in order, values live at original rows.
        for k in 0..self.n {
            let yk = rhs[self.p[k]];
            if yk != 0.0 {
                for &(r, l) in &self.l_cols[k] {
                    rhs[r] -= l * yk;
                }
            }
        }
        // U z = y (backward by columns); z indexed by position.
        let mut z = vec![0.0f64; self.n];
        for j in (0..self.n).rev() {
            let zj = rhs[self.p[j]] / self.u_diag[j];
            z[j] = zj;
            if zj != 0.0 {
                for &(k, u) in &self.u_cols[j] {
                    rhs[self.p[k]] -= u * zj;
                }
            }
        }
        rhs.copy_from_slice(&z);
    }

    /// Solve `B' z = rhs` in place; `rhs` is indexed by basis position on
    /// entry and by original row on exit.
    pub fn btran(&self, rhs: &mut [f64]) {
        assert_eq!(rhs.len(), self.n, "dimension mismatch");
        // U' w = rhs (forward): w_j = (rhs_j - sum_{k<j} U[k][j] w_k) / diag_j
        let mut w = vec![0.0f64; self.n];
        for j in 0..self.n {
            let mut v = rhs[j];
            for &(k, u) in &self.u_cols[j] {
                v -= u * w[k];
            }
            w[j] = v / self.u_diag[j];
        }
        // L' v = w (backward): v_k = w_k - sum_{(r, l) in Lcol_k} l * v[pinv[r]]
        for k in (0..self.n).rev() {
            let mut v = w[k];
            for &(r, l) in &self.l_cols[k] {
                v -= l * w[self.pinv[r]];
            }
            w[k] = v;
        }
        // z[p[k]] = v_k
        for k in 0..self.n {
            rhs[self.p[k]] = w[k];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::{matvec, DenseLu};
    use crate::sparse::CscMatrix;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn lu_of(m: &CscMatrix) -> Option<SparseLu> {
        let cols: Vec<(&[usize], &[f64])> = (0..m.ncols()).map(|j| m.col(j)).collect();
        SparseLu::factor(m.nrows(), &cols)
    }

    fn random_sparse_nonsingular(n: usize, rng: &mut StdRng) -> CscMatrix {
        // diagonally dominant: guaranteed nonsingular
        let mut trips = Vec::new();
        for i in 0..n {
            trips.push((i, i, 4.0 + rng.random::<f64>()));
            for _ in 0..2 {
                let j = rng.random_range(0..n);
                if j != i {
                    trips.push((i, j, rng.random::<f64>() - 0.5));
                }
            }
        }
        CscMatrix::from_triplets(n, n, &trips)
    }

    #[test]
    fn ftran_matches_dense_lu() {
        let mut rng = StdRng::seed_from_u64(42);
        for n in [1usize, 2, 5, 20, 60] {
            let m = random_sparse_nonsingular(n, &mut rng);
            let lu = lu_of(&m).expect("nonsingular");
            let dense = DenseLu::factor(&m.to_dense()).expect("nonsingular");
            let b: Vec<f64> = (0..n).map(|i| (i as f64).sin() + 1.0).collect();
            let mut z = b.clone();
            lu.ftran(&mut z);
            let z_ref = dense.solve(&b);
            for (a, b) in z.iter().zip(&z_ref) {
                assert!((a - b).abs() < 1e-9, "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn btran_matches_dense_lu() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [1usize, 3, 10, 40] {
            let m = random_sparse_nonsingular(n, &mut rng);
            let lu = lu_of(&m).expect("nonsingular");
            let dense = DenseLu::factor(&m.to_dense()).expect("nonsingular");
            let b: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
            let mut z = b.clone();
            lu.btran(&mut z);
            let z_ref = dense.solve_transpose(&b);
            for (a, b) in z.iter().zip(&z_ref) {
                assert!((a - b).abs() < 1e-9, "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn solves_verify_via_residual() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = random_sparse_nonsingular(30, &mut rng);
        let lu = lu_of(&m).unwrap();
        let b: Vec<f64> = (0..30).map(|i| i as f64 * 0.1 - 1.0).collect();
        let mut z = b.clone();
        lu.ftran(&mut z);
        let dense = m.to_dense();
        let res: f64 =
            matvec(&dense, &z).iter().zip(&b).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
        assert!(res < 1e-9, "residual {res}");
    }

    #[test]
    fn permuted_identity_factors() {
        // columns of a permutation matrix
        let m = CscMatrix::from_triplets(3, 3, &[(2, 0, 1.0), (0, 1, 1.0), (1, 2, 1.0)]);
        let lu = lu_of(&m).unwrap();
        let mut z = vec![5.0, 7.0, 9.0];
        lu.ftran(&mut z);
        // B z = b with B = P -> z = P' b
        let dense = m.to_dense();
        let res: f64 = matvec(&dense, &z)
            .iter()
            .zip(&[5.0, 7.0, 9.0])
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(res < 1e-12);
    }

    #[test]
    fn singular_returns_none() {
        let m = CscMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 1, 1.0)]);
        assert!(lu_of(&m).is_none());
    }

    #[test]
    fn zero_column_returns_none() {
        let m = CscMatrix::from_triplets(2, 2, &[(0, 0, 1.0)]);
        assert!(lu_of(&m).is_none());
    }
}
