//! Sparse LU factorization with Markowitz-style threshold pivoting.
//!
//! A Gilbert–Peierls left-looking scheme: for each column the set of
//! pivots to eliminate against is computed as a graph reach over the
//! already-built `L` pattern (instead of scanning all prior pivots),
//! so factoring a column costs time proportional to the fill it
//! produces. Pivots are chosen by a threshold Markowitz rule: among
//! candidate rows whose magnitude is within a factor of the column
//! maximum, prefer the sparsest row (fewest entries in the basis
//! matrix), which keeps fill-in low on the near-block-diagonal bases
//! the UMP LPs produce (`P B = L U`, row permutation only).
//!
//! Solves come in two flavors: dense in-place [`SparseLu::ftran`] /
//! [`SparseLu::btran`] over full working vectors, and pattern-driven
//! [`SparseLu::ftran_sparse`] / [`SparseLu::btran_sparse`] that first
//! compute the structural nonzero set of the result (another reach
//! over the factor graphs) and then touch only those entries. Both
//! flavors process pivots in the same order, so they agree exactly —
//! not just to rounding — on any input.

use crate::sparse::SparseVec;

/// Relative magnitude threshold for Markowitz pivot admissibility: a
/// row is a pivot candidate when `|v| >= 0.1 * max|v|` in the column.
const MARKOWITZ_THRESHOLD: f64 = 0.1;

/// Absolute floor under which a pivot is considered numerically zero.
const PIVOT_TOL: f64 = 1e-11;

/// Reusable workspace for the pattern-driven solves: reach/stack
/// buffers for the structural traversals plus an auxiliary sparse
/// vector for the two-stage FTRAN.
#[derive(Debug, Clone)]
pub struct LuScratch {
    visited: Vec<bool>,
    stack: Vec<usize>,
    reach: Vec<usize>,
    aux: SparseVec,
}

impl LuScratch {
    /// Workspace for dimension-`n` solves.
    pub fn new(n: usize) -> Self {
        LuScratch {
            visited: vec![false; n],
            stack: Vec::new(),
            reach: Vec::new(),
            aux: SparseVec::new(n),
        }
    }

    /// Resize for dimension-`n` solves, clearing all state.
    pub fn resize(&mut self, n: usize) {
        self.visited.clear();
        self.visited.resize(n, false);
        self.stack.clear();
        self.reach.clear();
        self.aux.resize(n);
    }
}

/// Which factor graph a structural reach traverses.
#[derive(Clone, Copy)]
enum Edges {
    /// `k -> pinv[r]` for `(r, _)` in `l_cols[k]` (FTRAN L-solve).
    LCols,
    /// `j -> k` for `(k, _)` in `u_cols[j]` (FTRAN U back-substitution).
    UCols,
    /// `k -> j` for `j` in `u_rows[k]` (BTRAN U'-solve).
    URows,
    /// `q -> k` for `k` in `l_rows[p[q]]` (BTRAN L'-solve).
    LRows,
}

/// Sparse LU factors of a square matrix.
#[derive(Debug, Clone)]
pub struct SparseLu {
    n: usize,
    /// Column k of `L` (strictly below the pivot, unit diagonal
    /// implicit), stored by *original row index*, ascending.
    l_cols: Vec<Vec<(usize, f64)>>,
    /// Column j of `U` strictly above the diagonal: entries `(k, v)`
    /// meaning pivot position `k` (`k < j`), ascending in `k`.
    u_cols: Vec<Vec<(usize, f64)>>,
    /// Row k of `U` strictly right of the diagonal: the columns `j > k`
    /// with `U[k][j] != 0`, ascending. Structure only — values are
    /// gathered through `u_cols` so solve order matches the dense path.
    u_rows: Vec<Vec<usize>>,
    /// Transpose structure of `L` by original row: `l_rows[r]` lists the
    /// pivot positions `k` whose `l_cols[k]` contains row `r`.
    l_rows: Vec<Vec<usize>>,
    /// Diagonal of `U` per pivot position.
    u_diag: Vec<f64>,
    /// `p[k]` = original row chosen as pivot of position `k`.
    p: Vec<usize>,
    /// Inverse permutation: `pinv[row] = pivot position`.
    pinv: Vec<usize>,
}

impl SparseLu {
    /// Factor a square matrix given as `n` sparse columns
    /// (`(row_indices, values)` per column). Returns `None` when the
    /// matrix is numerically singular.
    pub fn factor(n: usize, cols: &[(&[usize], &[f64])]) -> Option<SparseLu> {
        assert_eq!(cols.len(), n, "need exactly n columns");

        // static Markowitz row counts: entries per row of the input
        // matrix (cheap proxy for the active-submatrix count)
        let mut row_count = vec![0usize; n];
        for &(rows, _) in cols {
            for &r in rows {
                debug_assert!(r < n);
                row_count[r] += 1;
            }
        }

        let mut l_cols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n);
        let mut u_cols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n);
        let mut u_diag = Vec::with_capacity(n);
        let mut p: Vec<usize> = Vec::with_capacity(n);
        let mut pinv: Vec<Option<usize>> = vec![None; n];

        // dense working vector + occupancy tracking
        let mut work = vec![0.0f64; n];
        let mut in_work = vec![false; n];
        let mut touched: Vec<usize> = Vec::with_capacity(64);
        // reach traversal buffers over pivot positions
        let mut visited = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut reach: Vec<usize> = Vec::new();

        for (j, &(rows, vals)) in cols.iter().enumerate() {
            // scatter column j
            for (&r, &v) in rows.iter().zip(vals) {
                debug_assert!(r < n);
                if v != 0.0 && !in_work[r] {
                    in_work[r] = true;
                    touched.push(r);
                }
                work[r] += v;
            }

            // structural reach: every pivot position whose row can be
            // hit, including via fill, found by closing over L edges
            reach.clear();
            for &r in &touched {
                if let Some(k) = pinv[r] {
                    if !visited[k] {
                        visited[k] = true;
                        stack.push(k);
                    }
                }
            }
            while let Some(k) = stack.pop() {
                reach.push(k);
                for &(r, _) in &l_cols[k] {
                    if let Some(k2) = pinv[r] {
                        if !visited[k2] {
                            visited[k2] = true;
                            stack.push(k2);
                        }
                    }
                }
            }
            // ascending pivot order is a valid topological order: every
            // L edge k -> pinv[r] points to a later pivot (row r was
            // non-pivotal when column k was built)
            reach.sort_unstable();
            for &k in &reach {
                visited[k] = false;
            }

            // eliminate against reachable pivots in order
            let mut u_col = Vec::new();
            for &k in &reach {
                let pivot_row = p[k];
                let xk = work[pivot_row];
                if xk == 0.0 {
                    continue;
                }
                u_col.push((k, xk));
                work[pivot_row] = 0.0;
                for &(r, l) in &l_cols[k] {
                    if !in_work[r] {
                        in_work[r] = true;
                        touched.push(r);
                    }
                    work[r] -= l * xk;
                }
            }

            // threshold Markowitz pivot: among rows within
            // MARKOWITZ_THRESHOLD of the column max, take the fewest
            // static row entries; break ties by larger magnitude, then
            // smaller row index (determinism)
            touched.sort_unstable();
            let mut vmax = 0.0f64;
            for &r in &touched {
                if pinv[r].is_none() {
                    vmax = vmax.max(work[r].abs());
                }
            }
            if vmax < PIVOT_TOL {
                return None;
            }
            let admissible = (MARKOWITZ_THRESHOLD * vmax).max(PIVOT_TOL);
            let mut pivot_row = usize::MAX;
            let mut pivot_abs = 0.0f64;
            let mut pivot_cnt = usize::MAX;
            for &r in &touched {
                if pinv[r].is_some() {
                    continue;
                }
                let a = work[r].abs();
                if a < admissible {
                    continue;
                }
                let c = row_count[r];
                if c < pivot_cnt || (c == pivot_cnt && a > pivot_abs) {
                    pivot_row = r;
                    pivot_abs = a;
                    pivot_cnt = c;
                }
            }
            debug_assert!(pivot_row != usize::MAX);
            let pivot_val = work[pivot_row];

            // gather the normalized L column (ascending row order) and
            // reset the workspace
            let mut l_col = Vec::new();
            for &r in &touched {
                let v = work[r];
                work[r] = 0.0;
                in_work[r] = false;
                if v != 0.0 && r != pivot_row && pinv[r].is_none() {
                    l_col.push((r, v / pivot_val));
                }
            }
            touched.clear();

            pinv[pivot_row] = Some(j);
            p.push(pivot_row);
            u_diag.push(pivot_val);
            u_cols.push(u_col);
            l_cols.push(l_col);
        }

        let pinv: Vec<usize> = pinv.into_iter().map(|x| x.expect("all rows pivoted")).collect();

        // transpose structures for the BTRAN reach traversals
        let mut u_rows: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (j, col) in u_cols.iter().enumerate() {
            for &(k, _) in col {
                u_rows[k].push(j);
            }
        }
        let mut l_rows: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (k, col) in l_cols.iter().enumerate() {
            for &(r, _) in col {
                l_rows[r].push(k);
            }
        }

        Some(SparseLu { n, l_cols, u_cols, u_rows, l_rows, u_diag, p, pinv })
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Total stored nonzeros in `L` and `U` (including the unit and
    /// `U` diagonals).
    pub fn nnz(&self) -> usize {
        let l: usize = self.l_cols.iter().map(Vec::len).sum();
        let u: usize = self.u_cols.iter().map(Vec::len).sum();
        l + u + 2 * self.n
    }

    /// Solve `B z = rhs` in place; `rhs` is indexed by original row on
    /// entry and by basis position on exit.
    pub fn ftran(&self, rhs: &mut [f64]) {
        assert_eq!(rhs.len(), self.n, "dimension mismatch");
        // L y = P rhs: process pivots in order, values live at original rows.
        for k in 0..self.n {
            let yk = rhs[self.p[k]];
            if yk != 0.0 {
                for &(r, l) in &self.l_cols[k] {
                    rhs[r] -= l * yk;
                }
            }
        }
        // U z = y (backward by columns); z indexed by position.
        let mut z = vec![0.0f64; self.n];
        for j in (0..self.n).rev() {
            let zj = rhs[self.p[j]] / self.u_diag[j];
            z[j] = zj;
            if zj != 0.0 {
                for &(k, u) in &self.u_cols[j] {
                    rhs[self.p[k]] -= u * zj;
                }
            }
        }
        rhs.copy_from_slice(&z);
    }

    /// Solve `B' z = rhs` in place; `rhs` is indexed by basis position on
    /// entry and by original row on exit.
    pub fn btran(&self, rhs: &mut [f64]) {
        assert_eq!(rhs.len(), self.n, "dimension mismatch");
        // U' w = rhs (forward): w_j = (rhs_j - sum_{k<j} U[k][j] w_k) / diag_j
        let mut w = vec![0.0f64; self.n];
        for j in 0..self.n {
            let mut v = rhs[j];
            for &(k, u) in &self.u_cols[j] {
                v -= u * w[k];
            }
            w[j] = v / self.u_diag[j];
        }
        // L' v = w (backward): v_k = w_k - sum_{(r, l) in Lcol_k} l * v[pinv[r]]
        for k in (0..self.n).rev() {
            let mut v = w[k];
            for &(r, l) in &self.l_cols[k] {
                v -= l * w[self.pinv[r]];
            }
            w[k] = v;
        }
        // z[p[k]] = v_k
        for k in 0..self.n {
            rhs[self.p[k]] = w[k];
        }
    }

    /// Close `ws.reach` over the given factor graph starting from the
    /// seeds already pushed onto `ws.stack` (with `ws.visited` set).
    /// Leaves `ws.reach` sorted ascending and `ws.visited` cleared.
    fn close_reach(&self, ws: &mut LuScratch, edges: Edges) {
        ws.reach.clear();
        while let Some(q) = ws.stack.pop() {
            ws.reach.push(q);
            match edges {
                Edges::LCols => {
                    for &(r, _) in &self.l_cols[q] {
                        let k2 = self.pinv[r];
                        if !ws.visited[k2] {
                            ws.visited[k2] = true;
                            ws.stack.push(k2);
                        }
                    }
                }
                Edges::UCols => {
                    for &(k, _) in &self.u_cols[q] {
                        if !ws.visited[k] {
                            ws.visited[k] = true;
                            ws.stack.push(k);
                        }
                    }
                }
                Edges::URows => {
                    for &j in &self.u_rows[q] {
                        if !ws.visited[j] {
                            ws.visited[j] = true;
                            ws.stack.push(j);
                        }
                    }
                }
                Edges::LRows => {
                    for &k in &self.l_rows[self.p[q]] {
                        if !ws.visited[k] {
                            ws.visited[k] = true;
                            ws.stack.push(k);
                        }
                    }
                }
            }
        }
        ws.reach.sort_unstable();
        for &q in &ws.reach {
            ws.visited[q] = false;
        }
    }

    /// Seed the reach traversal from a set of pivot positions.
    fn seed(ws: &mut LuScratch, positions: impl IntoIterator<Item = usize>) {
        debug_assert!(ws.stack.is_empty());
        for q in positions {
            if !ws.visited[q] {
                ws.visited[q] = true;
                ws.stack.push(q);
            }
        }
    }

    /// Pattern-driven FTRAN: solve `B z = x` touching only the
    /// structural nonzeros of the result. `x` is indexed by original
    /// row on entry and by basis position on exit (same convention as
    /// [`SparseLu::ftran`]); values agree exactly with the dense solve.
    pub fn ftran_sparse(&self, x: &mut SparseVec, ws: &mut LuScratch) {
        debug_assert_eq!(x.len(), self.n);
        // L-solve: reach over L edges from the rhs pattern, ascending.
        let pinv = &self.pinv;
        Self::seed(ws, x.pattern.iter().map(|&r| pinv[r]));
        self.close_reach(ws, Edges::LCols);
        for idx in 0..ws.reach.len() {
            let k = ws.reach[idx];
            let yk = x.values[self.p[k]];
            if yk != 0.0 {
                for &(r, l) in &self.l_cols[k] {
                    x.add(r, -l * yk);
                }
            }
        }
        // U back-substitution: reach over U edges, processed descending;
        // result gathers into ws.aux indexed by position.
        Self::seed(ws, x.pattern.iter().map(|&r| pinv[r]));
        self.close_reach(ws, Edges::UCols);
        debug_assert!(ws.aux.is_empty());
        for idx in (0..ws.reach.len()).rev() {
            let j = ws.reach[idx];
            let zj = x.values[self.p[j]] / self.u_diag[j];
            if zj != 0.0 {
                ws.aux.set(j, zj);
                for &(k, u) in &self.u_cols[j] {
                    x.add(self.p[k], -u * zj);
                }
            }
        }
        x.clear();
        std::mem::swap(x, &mut ws.aux);
    }

    /// Pattern-driven BTRAN: solve `B' z = x` touching only the
    /// structural nonzeros of the result. `x` is indexed by basis
    /// position on entry and by original row on exit (same convention
    /// as [`SparseLu::btran`]); values agree exactly with the dense
    /// solve.
    pub fn btran_sparse(&self, x: &mut SparseVec, ws: &mut LuScratch) {
        debug_assert_eq!(x.len(), self.n);
        // U'-solve: reach over U-row edges, processed ascending; the
        // per-position gather runs over u_cols so the accumulation
        // order matches the dense solve term for term.
        Self::seed(ws, x.pattern.iter().copied());
        self.close_reach(ws, Edges::URows);
        debug_assert!(ws.aux.is_empty());
        for idx in 0..ws.reach.len() {
            let j = ws.reach[idx];
            let mut v = x.values[j];
            for &(k, u) in &self.u_cols[j] {
                v -= u * ws.aux.values[k];
            }
            if v != 0.0 {
                ws.aux.set(j, v / self.u_diag[j]);
            }
        }
        // L'-solve: reach over L-row edges, processed descending,
        // in place on ws.aux (reads only later positions).
        let seeds = std::mem::take(&mut ws.aux.pattern);
        Self::seed(ws, seeds.iter().copied());
        ws.aux.pattern = seeds;
        self.close_reach(ws, Edges::LRows);
        for idx in (0..ws.reach.len()).rev() {
            let k = ws.reach[idx];
            let mut v = ws.aux.values[k];
            for &(r, l) in &self.l_cols[k] {
                v -= l * ws.aux.values[self.pinv[r]];
            }
            ws.aux.set(k, v);
        }
        // scatter back to original-row indexing
        x.clear();
        for idx in 0..ws.reach.len() {
            let k = ws.reach[idx];
            let v = ws.aux.values[k];
            if v != 0.0 {
                x.set(self.p[k], v);
            }
        }
        ws.aux.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::{matvec, DenseLu};
    use crate::sparse::CscMatrix;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn lu_of(m: &CscMatrix) -> Option<SparseLu> {
        let cols: Vec<(&[usize], &[f64])> = (0..m.ncols()).map(|j| m.col(j)).collect();
        SparseLu::factor(m.nrows(), &cols)
    }

    fn random_sparse_nonsingular(n: usize, rng: &mut StdRng) -> CscMatrix {
        // diagonally dominant: guaranteed nonsingular
        let mut trips = Vec::new();
        for i in 0..n {
            trips.push((i, i, 4.0 + rng.random::<f64>()));
            for _ in 0..2 {
                let j = rng.random_range(0..n);
                if j != i {
                    trips.push((i, j, rng.random::<f64>() - 0.5));
                }
            }
        }
        CscMatrix::from_triplets(n, n, &trips)
    }

    #[test]
    fn ftran_matches_dense_lu() {
        let mut rng = StdRng::seed_from_u64(42);
        for n in [1usize, 2, 5, 20, 60] {
            let m = random_sparse_nonsingular(n, &mut rng);
            let lu = lu_of(&m).expect("nonsingular");
            let dense = DenseLu::factor(&m.to_dense()).expect("nonsingular");
            let b: Vec<f64> = (0..n).map(|i| (i as f64).sin() + 1.0).collect();
            let mut z = b.clone();
            lu.ftran(&mut z);
            let z_ref = dense.solve(&b);
            for (a, b) in z.iter().zip(&z_ref) {
                assert!((a - b).abs() < 1e-9, "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn btran_matches_dense_lu() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [1usize, 3, 10, 40] {
            let m = random_sparse_nonsingular(n, &mut rng);
            let lu = lu_of(&m).expect("nonsingular");
            let dense = DenseLu::factor(&m.to_dense()).expect("nonsingular");
            let b: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
            let mut z = b.clone();
            lu.btran(&mut z);
            let z_ref = dense.solve_transpose(&b);
            for (a, b) in z.iter().zip(&z_ref) {
                assert!((a - b).abs() < 1e-9, "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn sparse_solves_match_dense_solves_exactly() {
        // the pattern-driven path must agree with the dense path
        // bit-for-bit: same pivot processing order, same gather order
        let mut rng = StdRng::seed_from_u64(11);
        for n in [1usize, 4, 17, 50, 120] {
            let m = random_sparse_nonsingular(n, &mut rng);
            let lu = lu_of(&m).expect("nonsingular");
            let mut ws = LuScratch::new(n);
            for trial in 0..4u64 {
                // sparse rhs with a handful of entries
                let k = 1 + (trial as usize % 3);
                let mut dense = vec![0.0f64; n];
                let mut sv = SparseVec::new(n);
                for _ in 0..k {
                    let i = rng.random_range(0..n);
                    let v = rng.random::<f64>() * 2.0 - 1.0;
                    dense[i] = v;
                    sv.clear();
                    sv.assign_dense(&dense);
                }
                let mut d_f = dense.clone();
                lu.ftran(&mut d_f);
                let mut s_f = sv.clone();
                lu.ftran_sparse(&mut s_f, &mut ws);
                for (i, (&d, &s)) in d_f.iter().zip(&s_f.values).enumerate() {
                    assert!(d == s, "ftran n={n} i={i}: {d} vs {s}");
                }
                let mut d_b = dense.clone();
                lu.btran(&mut d_b);
                let mut s_b = sv.clone();
                lu.btran_sparse(&mut s_b, &mut ws);
                for (i, (&d, &s)) in d_b.iter().zip(&s_b.values).enumerate() {
                    assert!(d == s, "btran n={n} i={i}: {d} vs {s}");
                }
            }
        }
    }

    #[test]
    fn sparse_solve_unit_rhs_is_sparse() {
        // an identity-dominated basis: solving e_i should touch few rows
        let n = 200;
        let mut trips = Vec::new();
        for i in 0..n {
            trips.push((i, i, 1.0));
        }
        trips.push((0, 199, 0.5));
        let m = CscMatrix::from_triplets(n, n, &trips);
        let lu = lu_of(&m).unwrap();
        let mut ws = LuScratch::new(n);
        let mut x = SparseVec::new(n);
        x.set(3, 1.0);
        lu.ftran_sparse(&mut x, &mut ws);
        assert!(x.nnz() <= 2, "unit solve stayed sparse, nnz={}", x.nnz());
    }

    #[test]
    fn nnz_counts_factors() {
        let m = CscMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (1, 1, 3.0), (1, 0, 1.0)]);
        let lu = lu_of(&m).unwrap();
        // L has one off-diagonal entry or U does, plus both diagonals
        assert!(lu.nnz() >= 4);
    }

    #[test]
    fn solves_verify_via_residual() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = random_sparse_nonsingular(30, &mut rng);
        let lu = lu_of(&m).unwrap();
        let b: Vec<f64> = (0..30).map(|i| i as f64 * 0.1 - 1.0).collect();
        let mut z = b.clone();
        lu.ftran(&mut z);
        let dense = m.to_dense();
        let res: f64 =
            matvec(&dense, &z).iter().zip(&b).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
        assert!(res < 1e-9, "residual {res}");
    }

    #[test]
    fn permuted_identity_factors() {
        // columns of a permutation matrix
        let m = CscMatrix::from_triplets(3, 3, &[(2, 0, 1.0), (0, 1, 1.0), (1, 2, 1.0)]);
        let lu = lu_of(&m).unwrap();
        let mut z = vec![5.0, 7.0, 9.0];
        lu.ftran(&mut z);
        // B z = b with B = P -> z = P' b
        let dense = m.to_dense();
        let res: f64 = matvec(&dense, &z)
            .iter()
            .zip(&[5.0, 7.0, 9.0])
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(res < 1e-12);
    }

    #[test]
    fn singular_returns_none() {
        let m = CscMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 1, 1.0)]);
        assert!(lu_of(&m).is_none());
    }

    #[test]
    fn zero_column_returns_none() {
        let m = CscMatrix::from_triplets(2, 2, &[(0, 0, 1.0)]);
        assert!(lu_of(&m).is_none());
    }
}
