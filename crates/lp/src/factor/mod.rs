//! Basis factorization for the revised simplex.
//!
//! [`lu::SparseLu`] factors the basis matrix once; [`eta::EtaFile`]
//! absorbs subsequent pivots in product form. [`BasisFactor`] bundles the
//! two and exposes the FTRAN/BTRAN solves the simplex needs.

pub mod eta;
pub mod lu;

use crate::error::LpError;
use crate::sparse::{CscMatrix, SparseVec};
use eta::EtaFile;
use lu::{LuScratch, SparseLu};

/// LU factorization of the current basis plus the eta updates applied
/// since the last refactorization.
#[derive(Debug)]
pub struct BasisFactor {
    lu: SparseLu,
    etas: EtaFile,
}

impl BasisFactor {
    /// Factor the basis given by `basis[i]` = column of `a` that is
    /// basic in row position `i`.
    pub fn factor(a: &CscMatrix, basis: &[usize]) -> Result<BasisFactor, LpError> {
        let cols: Vec<(&[usize], &[f64])> = basis.iter().map(|&j| a.col(j)).collect();
        let lu = SparseLu::factor(a.nrows(), &cols).ok_or(LpError::SingularBasis)?;
        Ok(BasisFactor { lu, etas: EtaFile::new() })
    }

    /// Solve `B z = rhs` in place (FTRAN). On return, `rhs[i]` is the
    /// coefficient of the basis column in row position `i`.
    pub fn ftran(&self, rhs: &mut [f64]) {
        self.lu.ftran(rhs);
        self.etas.ftran(rhs);
    }

    /// Solve `B' z = rhs` in place (BTRAN).
    pub fn btran(&self, rhs: &mut [f64]) {
        self.etas.btran(rhs);
        self.lu.btran(rhs);
    }

    /// Record a pivot: basis row position `r` is replaced by a column
    /// whose FTRAN image is `w` (dense). Fails when the pivot element is
    /// numerically zero.
    pub fn update(&mut self, r: usize, w: &[f64]) -> Result<(), LpError> {
        self.etas.push(r, w)
    }

    /// Number of eta updates accumulated since the last refactorization
    /// (drives the refactorization cadence).
    pub fn n_updates(&self) -> usize {
        self.etas.len()
    }

    /// Stored nonzeros in the LU factors (excluding eta updates); feeds
    /// the `dpsan_lp_factor_nnz` gauge.
    pub fn lu_nnz(&self) -> usize {
        self.lu.nnz()
    }

    /// Total nonzeros across the accumulated etas. Every BTRAN pays a
    /// gather over all of them, so the sparse routes refactor when this
    /// outgrows the LU fill rather than waiting out the update cadence.
    pub fn eta_nnz(&self) -> usize {
        self.etas.nnz()
    }

    /// Pattern-driven FTRAN: like [`BasisFactor::ftran`] but touching
    /// only the structural nonzeros of `rhs` and its fill. `scratch`
    /// must match the basis dimension.
    pub fn ftran_sparse(&self, rhs: &mut SparseVec, scratch: &mut LuScratch) {
        self.lu.ftran_sparse(rhs, scratch);
        self.etas.ftran_sparse(rhs);
    }

    /// Pattern-driven BTRAN: like [`BasisFactor::btran`] but touching
    /// only the structural nonzeros of `rhs` and its fill.
    pub fn btran_sparse(&self, rhs: &mut SparseVec, scratch: &mut LuScratch) {
        self.etas.btran_sparse(rhs);
        self.lu.btran_sparse(rhs, scratch);
    }

    /// Record a pivot from a sparse spike (see [`BasisFactor::update`]).
    /// The spike's pattern is sorted in place.
    pub fn update_sparse(&mut self, r: usize, w: &mut SparseVec) -> Result<(), LpError> {
        self.etas.push_sparse(r, w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_solves_and_updates() {
        // A = [1 2 0; 0 1 0; 1 0 1], basis = all three columns
        let a = CscMatrix::from_triplets(
            3,
            3,
            &[(0, 0, 1.0), (2, 0, 1.0), (0, 1, 2.0), (1, 1, 1.0), (2, 2, 1.0)],
        );
        let basis = vec![0, 1, 2];
        let mut f = BasisFactor::factor(&a, &basis).unwrap();

        // FTRAN: solve B z = [1, 0, 0]
        let mut z = vec![1.0, 0.0, 0.0];
        f.ftran(&mut z);
        // B z = e0 -> z = [1, 0, -1]
        assert!((z[0] - 1.0).abs() < 1e-12 && z[1].abs() < 1e-12 && (z[2] + 1.0).abs() < 1e-12);

        // BTRAN: solve B' y = [0, 1, 0], i.e. y·col_j = e1_j:
        // y0 + y2 = 0, 2 y0 + y1 = 1, y2 = 0 -> y = [0, 1, 0]
        let mut y = vec![0.0, 1.0, 0.0];
        f.btran(&mut y);
        assert!(y[0].abs() < 1e-12 && (y[1] - 1.0).abs() < 1e-12 && y[2].abs() < 1e-12, "{y:?}");

        // Update: replace position 0 with a column whose ftran image is w.
        let w = vec![2.0, 0.0, 1.0];
        f.update(0, &w).unwrap();
        assert_eq!(f.n_updates(), 1);
        // New basis column at position 0 is B_old * w = a0*2 + a2*1 = [2,0,3].
        // Check: ftran of [2,0,3] must give e0.
        let mut rhs = vec![2.0, 0.0, 3.0];
        f.ftran(&mut rhs);
        assert!((rhs[0] - 1.0).abs() < 1e-12 && rhs[1].abs() < 1e-12 && rhs[2].abs() < 1e-12);
    }

    #[test]
    fn sparse_solves_match_dense_through_etas() {
        let a = CscMatrix::from_triplets(
            3,
            3,
            &[(0, 0, 1.0), (2, 0, 1.0), (0, 1, 2.0), (1, 1, 1.0), (2, 2, 1.0)],
        );
        let mut f = BasisFactor::factor(&a, &[0, 1, 2]).unwrap();
        let mut spike = SparseVec::new(3);
        spike.set(0, 2.0);
        spike.set(2, 1.0);
        f.update_sparse(0, &mut spike).unwrap();

        let mut ws = LuScratch::new(3);
        for rhs in [[1.0, 0.0, 0.0], [0.5, -1.0, 2.0]] {
            let mut dense = rhs.to_vec();
            f.ftran(&mut dense);
            let mut sv = SparseVec::new(3);
            sv.assign_dense(&rhs);
            f.ftran_sparse(&mut sv, &mut ws);
            for (i, (&d, &s)) in dense.iter().zip(&sv.values).enumerate() {
                assert!(d == s, "ftran {i}: {d} vs {s}");
            }

            let mut dense = rhs.to_vec();
            f.btran(&mut dense);
            let mut sv = SparseVec::new(3);
            sv.assign_dense(&rhs);
            f.btran_sparse(&mut sv, &mut ws);
            for (i, (&d, &s)) in dense.iter().zip(&sv.values).enumerate() {
                assert!(d == s, "btran {i}: {d} vs {s}");
            }
        }
    }

    #[test]
    fn singular_basis_detected() {
        let a = CscMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 1, 2.0)]);
        assert!(matches!(BasisFactor::factor(&a, &[0, 1]), Err(LpError::SingularBasis)));
    }
}
