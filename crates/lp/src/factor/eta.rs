//! Product-form-of-the-inverse eta updates.
//!
//! After a pivot that makes column `q` basic in row position `r`, the new
//! basis is `B_new = B_old · E`, where `E` is the identity with column
//! `r` replaced by `w = B_old⁻¹ A_q`. Solves against `B_new` compose the
//! old solve with a cheap rank-one style elimination per eta.

use crate::error::LpError;
use crate::sparse::SparseVec;

#[derive(Debug, Clone)]
struct Eta {
    /// Pivot position `r`.
    r: usize,
    /// Pivot element `w_r`.
    pivot: f64,
    /// Off-pivot nonzeros `(i, w_i)`, `i ≠ r`.
    entries: Vec<(usize, f64)>,
}

/// A chronological list of eta updates since the last refactorization.
#[derive(Debug, Default)]
pub struct EtaFile {
    etas: Vec<Eta>,
    nnz: usize,
}

impl EtaFile {
    /// Empty file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded etas.
    pub fn len(&self) -> usize {
        self.etas.len()
    }

    /// Whether no etas are recorded.
    pub fn is_empty(&self) -> bool {
        self.etas.is_empty()
    }

    /// Total stored nonzeros across all etas (pivots included). Every
    /// BTRAN gathers over every stored entry, so this — not the eta
    /// count — is the per-solve cost the refactorization cadence must
    /// bound.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Record an eta with pivot position `r` and dense spike `w`.
    pub fn push(&mut self, r: usize, w: &[f64]) -> Result<(), LpError> {
        let pivot = w[r];
        if pivot.abs() < 1e-11 {
            return Err(LpError::SingularBasis);
        }
        let entries: Vec<(usize, f64)> = w
            .iter()
            .enumerate()
            .filter(|&(i, &v)| i != r && v != 0.0)
            .map(|(i, &v)| (i, v))
            .collect();
        self.nnz += entries.len() + 1;
        self.etas.push(Eta { r, pivot, entries });
        Ok(())
    }

    /// Continue an FTRAN: given `z` with `B_base z' = rhs` already
    /// applied, apply `E_1 … E_k` so that `z` solves the updated basis.
    pub fn ftran(&self, z: &mut [f64]) {
        for eta in &self.etas {
            // Solve E y = z:  y_r = z_r / w_r,  y_i = z_i − w_i y_r.
            let yr = z[eta.r] / eta.pivot;
            if yr != 0.0 {
                for &(i, w) in &eta.entries {
                    z[i] -= w * yr;
                }
            }
            z[eta.r] = yr;
        }
    }

    /// Start a BTRAN: apply the transposed etas in reverse order, after
    /// which the base factorization's BTRAN completes the solve.
    pub fn btran(&self, z: &mut [f64]) {
        for eta in self.etas.iter().rev() {
            // Solve E' u = z:  u_i = z_i (i ≠ r),
            //                  u_r = (z_r − Σ_{i≠r} w_i z_i) / w_r.
            let mut v = z[eta.r];
            for &(i, w) in &eta.entries {
                v -= w * z[i];
            }
            z[eta.r] = v / eta.pivot;
        }
    }

    /// Record an eta from a sparse spike `w` with pivot position `r`.
    /// The pattern is sorted so the stored entries come out in the same
    /// ascending-index order [`EtaFile::push`] produces from a dense
    /// spike — the two entry points yield identical eta files.
    pub fn push_sparse(&mut self, r: usize, w: &mut SparseVec) -> Result<(), LpError> {
        let pivot = w.values[r];
        if pivot.abs() < 1e-11 {
            return Err(LpError::SingularBasis);
        }
        w.sort_pattern();
        let entries: Vec<(usize, f64)> = w
            .pattern
            .iter()
            .map(|&i| (i, w.values[i]))
            .filter(|&(i, v)| i != r && v != 0.0)
            .collect();
        self.nnz += entries.len() + 1;
        self.etas.push(Eta { r, pivot, entries });
        Ok(())
    }

    /// Pattern-aware [`EtaFile::ftran`]: identical arithmetic, but new
    /// fill positions are tracked in `z`'s pattern.
    pub fn ftran_sparse(&self, z: &mut SparseVec) {
        for eta in &self.etas {
            let yr = z.values[eta.r] / eta.pivot;
            if yr != 0.0 {
                for &(i, w) in &eta.entries {
                    z.add(i, -w * yr);
                }
                z.set(eta.r, yr);
            } else if z.values[eta.r] != 0.0 {
                // exact-zero quotient of a tracked value: store it
                z.set(eta.r, yr);
            }
        }
    }

    /// Pattern-aware [`EtaFile::btran`]: identical arithmetic, but the
    /// pivot position is tracked in `z`'s pattern when it fills in.
    pub fn btran_sparse(&self, z: &mut SparseVec) {
        for eta in self.etas.iter().rev() {
            let mut v = z.values[eta.r];
            for &(i, w) in &eta.entries {
                v -= w * z.values[i];
            }
            if v != 0.0 || z.values[eta.r] != 0.0 {
                z.set(eta.r, v / eta.pivot);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_eta_ftran_btran_are_inverses_of_e() {
        let mut file = EtaFile::new();
        let w = vec![0.5, 2.0, -1.0];
        file.push(1, &w).unwrap();

        // E = I with column 1 = w. Pick y, compute z = E y, check
        // ftran(z) == y (with base = identity).
        let y = vec![3.0, -2.0, 1.0];
        let z = vec![y[0] + w[0] * y[1], w[1] * y[1], y[2] + w[2] * y[1]];
        let mut out = z.clone();
        file.ftran(&mut out);
        for (a, b) in out.iter().zip(&y) {
            assert!((a - b).abs() < 1e-12, "{out:?}");
        }

        // E' u = c: pick u, compute c = E' u, check btran(c) == u.
        let u = vec![1.0, 4.0, -3.0];
        let c = vec![u[0], w[0] * u[0] + w[1] * u[1] + w[2] * u[2], u[2]];
        let mut out = c.clone();
        file.btran(&mut out);
        for (a, b) in out.iter().zip(&u) {
            assert!((a - b).abs() < 1e-12, "{out:?}");
        }
    }

    #[test]
    fn etas_compose_in_order() {
        let mut file = EtaFile::new();
        file.push(0, &[2.0, 0.0]).unwrap();
        file.push(1, &[1.0, 4.0]).unwrap();
        // B = E1 E2 with E1 = diag(2,1), E2 = [[1,1],[0,4]]
        // B = [[2,2],[0,4]]
        // Solve B z = [2, 4] -> z = [−0? ]: 2z0+2z1=2, 4z1=4 -> z1=1, z0=0.
        let mut z = vec![2.0, 4.0];
        file.ftran(&mut z);
        assert!((z[0] - 0.0).abs() < 1e-12 && (z[1] - 1.0).abs() < 1e-12, "{z:?}");
        // Solve B' y = [2, 6]: B' = [[2,0],[2,4]] -> y0 = 1, 2*1 + 4 y1 = 6 -> y1 = 1.
        let mut y = vec![2.0, 6.0];
        file.btran(&mut y);
        assert!((y[0] - 1.0).abs() < 1e-12 && (y[1] - 1.0).abs() < 1e-12, "{y:?}");
    }

    #[test]
    fn zero_pivot_rejected() {
        let mut file = EtaFile::new();
        assert!(matches!(file.push(0, &[0.0, 1.0]), Err(LpError::SingularBasis)));
        assert!(file.is_empty());
    }

    #[test]
    fn len_counts_updates() {
        let mut file = EtaFile::new();
        assert_eq!(file.len(), 0);
        file.push(0, &[1.0]).unwrap();
        file.push(0, &[2.0]).unwrap();
        assert_eq!(file.len(), 2);
    }
}
