//! Light presolve.
//!
//! Applies cheap, always-safe reductions before the simplex: removal of
//! fixed columns, empty rows, singleton rows (folded into column
//! bounds), and empty columns (moved to their objective-best bound).
//! [`Presolved::postsolve`] maps a reduced solution back to the original
//! column space.

use crate::problem::{Problem, RowBounds, VarBounds};
use crate::simplex::SolveStatus;

/// Result of presolving.
#[derive(Debug)]
pub struct Presolved {
    /// The reduced problem (may have fewer rows/columns).
    pub reduced: Problem,
    /// `col_map[j]` = column of `reduced` corresponding to original `j`,
    /// or `None` when the column was eliminated.
    pub col_map: Vec<Option<usize>>,
    /// Values assigned to eliminated columns.
    pub eliminated: Vec<(usize, f64)>,
    /// Early verdict when presolve alone decides the problem.
    pub verdict: Option<SolveStatus>,
}

impl Presolved {
    /// Lift a solution of the reduced problem back to the original
    /// column space.
    pub fn postsolve(&self, x_reduced: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; self.col_map.len()];
        for (j, m) in self.col_map.iter().enumerate() {
            if let Some(rj) = m {
                x[j] = x_reduced[*rj];
            }
        }
        for &(j, v) in &self.eliminated {
            x[j] = v;
        }
        x
    }
}

/// Run the presolve passes (bounded number of sweeps).
pub fn presolve(p: &Problem) -> Presolved {
    let n = p.n_cols();
    let mut lower: Vec<f64> = p.col_bounds().iter().map(|b| b.lower).collect();
    let mut upper: Vec<f64> = p.col_bounds().iter().map(|b| b.upper).collect();
    let mut col_alive = vec![true; n];
    let mut col_value = vec![0.0f64; n];
    let mut row_alive = vec![true; p.n_rows()];
    let mut row_lower: Vec<f64> = p.row_bounds().iter().map(|b| b.lower).collect();
    let mut row_upper: Vec<f64> = p.row_bounds().iter().map(|b| b.upper).collect();
    let mut verdict = None;

    // row -> entries
    let mut row_entries: Vec<Vec<(usize, f64)>> = vec![Vec::new(); p.n_rows()];
    for &(r, c, v) in p.triplets() {
        if v != 0.0 {
            row_entries[r].push((c, v));
        }
    }
    let mut col_in_rows: Vec<usize> = vec![0; n];
    for entries in &row_entries {
        for &(c, _) in entries {
            col_in_rows[c] += 1;
        }
    }

    'outer: for _pass in 0..8 {
        let mut changed = false;

        // fixed columns -> substitute into rows
        for j in 0..n {
            if col_alive[j] && lower[j].is_finite() && lower[j] == upper[j] {
                col_alive[j] = false;
                col_value[j] = lower[j];
                changed = true;
                for (r, entries) in row_entries.iter_mut().enumerate() {
                    if !row_alive[r] {
                        continue;
                    }
                    if let Some(pos) = entries.iter().position(|&(c, _)| c == j) {
                        let (_, a) = entries.remove(pos);
                        let shift = a * col_value[j];
                        if row_lower[r].is_finite() {
                            row_lower[r] -= shift;
                        }
                        if row_upper[r].is_finite() {
                            row_upper[r] -= shift;
                        }
                    }
                }
            }
        }

        // empty and singleton rows
        for r in 0..p.n_rows() {
            if !row_alive[r] {
                continue;
            }
            let live: Vec<(usize, f64)> =
                row_entries[r].iter().filter(|&&(c, _)| col_alive[c]).copied().collect();
            match live.len() {
                0 => {
                    if row_lower[r] > 1e-12 || row_upper[r] < -1e-12 {
                        verdict = Some(SolveStatus::Infeasible);
                        break 'outer;
                    }
                    row_alive[r] = false;
                    changed = true;
                }
                1 => {
                    let (c, a) = live[0];
                    // a * x_c in [row_lower, row_upper]
                    let (mut lo, mut hi) = (row_lower[r] / a, row_upper[r] / a);
                    if a < 0.0 {
                        std::mem::swap(&mut lo, &mut hi);
                    }
                    if lo > lower[c] {
                        lower[c] = lo;
                        changed = true;
                    }
                    if hi < upper[c] {
                        upper[c] = hi;
                        changed = true;
                    }
                    if lower[c] > upper[c] + 1e-12 {
                        verdict = Some(SolveStatus::Infeasible);
                        break 'outer;
                    }
                    row_alive[r] = false;
                }
                _ => {}
            }
        }

        // empty columns -> objective-best bound
        for j in 0..n {
            if !col_alive[j] {
                continue;
            }
            let appears = row_entries
                .iter()
                .enumerate()
                .any(|(r, entries)| row_alive[r] && entries.iter().any(|&(c, _)| c == j));
            if appears {
                continue;
            }
            let c = p.objective()[j]
                * if p.sense() == crate::problem::Sense::Maximize { -1.0 } else { 1.0 };
            let v = if c > 0.0 {
                lower[j]
            } else if c < 0.0 {
                upper[j]
            } else if lower[j].is_finite() {
                lower[j]
            } else if upper[j].is_finite() {
                upper[j]
            } else {
                0.0
            };
            if !v.is_finite() {
                verdict = Some(SolveStatus::Unbounded);
                break 'outer;
            }
            col_alive[j] = false;
            col_value[j] = v;
            changed = true;
        }

        if !changed {
            break;
        }
    }

    // rebuild the reduced problem
    let mut reduced = Problem::new(p.sense());
    let mut col_map = vec![None; n];
    if verdict.is_none() {
        for j in 0..n {
            if col_alive[j] {
                let rj = reduced
                    .add_col(p.objective()[j], VarBounds { lower: lower[j], upper: upper[j] })
                    .expect("presolved bounds are valid");
                if p.integers()[j] {
                    reduced.set_integer(rj).expect("column exists");
                }
                col_map[j] = Some(rj);
            }
        }
        for r in 0..p.n_rows() {
            if !row_alive[r] {
                continue;
            }
            let entries: Vec<(usize, f64)> =
                row_entries[r].iter().filter_map(|&(c, v)| col_map[c].map(|rc| (rc, v))).collect();
            reduced
                .add_row(RowBounds { lower: row_lower[r], upper: row_upper[r] }, &entries)
                .expect("presolved row is valid");
        }
    }

    let eliminated: Vec<(usize, f64)> =
        (0..n).filter(|&j| !col_alive[j]).map(|j| (j, col_value[j])).collect();

    Presolved { reduced, col_map, eliminated, verdict }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Sense;
    use crate::simplex::{solve, SimplexOptions};

    #[test]
    fn fixed_column_substituted_and_cascade_solves_fully() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_col(1.0, VarBounds::fixed(3.0)).unwrap();
        let y = p.add_col(1.0, VarBounds::non_negative()).unwrap();
        p.add_row(RowBounds::at_most(10.0), &[(x, 1.0), (y, 1.0)]).unwrap();
        let pre = presolve(&p);
        assert!(pre.verdict.is_none());
        // cascade: x fixed -> row becomes singleton y <= 7 -> y empty
        // column -> fixed at its best bound 7: nothing is left to solve
        assert_eq!(pre.reduced.n_cols(), 0);
        assert_eq!(pre.reduced.n_rows(), 0);
        let x_full = pre.postsolve(&[]);
        assert_eq!(x_full, vec![3.0, 7.0]);
        let _ = (x, y);
    }

    #[test]
    fn singleton_row_tightens_bounds() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_col(1.0, VarBounds::non_negative()).unwrap();
        let y = p.add_col(1.0, VarBounds::non_negative()).unwrap();
        p.add_row(RowBounds::at_most(4.0), &[(x, 2.0)]).unwrap(); // x <= 2
        p.add_row(RowBounds::at_most(10.0), &[(x, 1.0), (y, 1.0)]).unwrap();
        let pre = presolve(&p);
        assert_eq!(pre.reduced.n_rows(), 1);
        let jx = pre.col_map[0].unwrap();
        assert_eq!(pre.reduced.col_bounds()[jx].upper, 2.0);
    }

    #[test]
    fn empty_row_infeasible_detected() {
        let mut p = Problem::new(Sense::Minimize);
        let _ = p.add_col(1.0, VarBounds::non_negative()).unwrap();
        p.add_row(RowBounds::at_least(1.0), &[]).unwrap();
        let pre = presolve(&p);
        assert_eq!(pre.verdict, Some(SolveStatus::Infeasible));
    }

    #[test]
    fn empty_column_moved_to_best_bound() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_col(5.0, VarBounds::unit()).unwrap();
        let y = p.add_col(1.0, VarBounds::non_negative()).unwrap();
        p.add_row(RowBounds::at_most(2.0), &[(y, 1.0)]).unwrap();
        let pre = presolve(&p);
        assert!(pre.col_map[x].is_none());
        // x goes to its best bound; the singleton row then frees y to
        // its best bound too
        assert!(pre.eliminated.contains(&(x, 1.0)), "{:?}", pre.eliminated);
        assert!(pre.eliminated.contains(&(y, 2.0)), "{:?}", pre.eliminated);
    }

    #[test]
    fn unbounded_empty_column_detected() {
        let mut p = Problem::new(Sense::Maximize);
        let _x = p.add_col(5.0, VarBounds::non_negative()).unwrap();
        let y = p.add_col(1.0, VarBounds::non_negative()).unwrap();
        p.add_row(RowBounds::at_most(2.0), &[(y, 1.0)]).unwrap();
        let pre = presolve(&p);
        assert_eq!(pre.verdict, Some(SolveStatus::Unbounded));
    }

    #[test]
    fn presolved_solution_matches_full_solve() {
        let mut p = Problem::new(Sense::Maximize);
        let f = p.add_col(2.0, VarBounds::fixed(1.0)).unwrap();
        let x = p.add_col(3.0, VarBounds::non_negative()).unwrap();
        let y = p.add_col(5.0, VarBounds::non_negative()).unwrap();
        p.add_row(RowBounds::at_most(5.0), &[(f, 1.0), (x, 1.0)]).unwrap();
        p.add_row(RowBounds::at_most(12.0), &[(y, 2.0)]).unwrap();
        p.add_row(RowBounds::at_most(18.0), &[(x, 3.0), (y, 2.0)]).unwrap();
        let direct = solve(&p, &SimplexOptions::default()).unwrap();
        let pre = presolve(&p);
        let sub = solve(&pre.reduced, &SimplexOptions::default()).unwrap();
        let lifted = pre.postsolve(&sub.x);
        assert!((p.objective_value(&lifted) - direct.objective).abs() < 1e-6);
        assert!(p.max_violation(&lifted) < 1e-7);
    }

    #[test]
    fn cascading_fixes_through_singletons() {
        // row1: x = 2 (singleton eq); then x fixed, row2 becomes y <= 1
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_col(0.0, VarBounds::non_negative()).unwrap();
        let y = p.add_col(1.0, VarBounds::non_negative()).unwrap();
        p.add_row(RowBounds::equal(2.0), &[(x, 1.0)]).unwrap();
        p.add_row(RowBounds::at_most(3.0), &[(x, 1.0), (y, 1.0)]).unwrap();
        let pre = presolve(&p);
        assert!(pre.verdict.is_none());
        // cascade fixes everything: x = 2 by the singleton equality,
        // then y <= 1 by the second row, then y -> 1 (best bound)
        assert!(pre.col_map[x].is_none());
        assert!(pre.col_map[y].is_none());
        let lifted = pre.postsolve(&[]);
        assert_eq!(lifted, vec![2.0, 1.0]);
        assert!(p.max_violation(&lifted) <= 1e-12);
    }
}
