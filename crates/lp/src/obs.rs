//! Sparse-kernel telemetry handles.
//!
//! | series | type | meaning |
//! |---|---|---|
//! | `dpsan_lp_factor_nnz` | gauge | nonzeros stored by the most recent sparse LU factorization (L + U, diagonals included) |
//! | `dpsan_lp_factor_seconds` | histogram | wall-clock latency of sparse LU basis factorizations |
//! | `dpsan_lp_sparse_factorizations_total` | counter | basis factorizations performed on the sparse simplex route |
//!
//! Per the telemetry convention these handles are observational only:
//! the solver never reads a metric to make a decision, and recording is
//! cheap enough to leave on unconditionally (one gauge store and one
//! histogram record per *refactorization*, not per iteration). The
//! dense route records nothing here — it predates the sparse kernels
//! and its per-solve cost is already visible through
//! `dpsan_solve_refactorizations_total`.

use dpsan_obs::histogram::Histogram;
use dpsan_obs::{default_latency_bounds, global, Counter, Gauge};
use std::sync::{Arc, OnceLock};

/// Nonzeros in the most recent sparse LU factors. A gauge, not a
/// counter: fill-in level is a point-in-time property of the current
/// basis, and watching it drift up signals the eta file should be
/// folded in sooner.
pub fn factor_nnz() -> &'static Gauge {
    static G: OnceLock<Gauge> = OnceLock::new();
    G.get_or_init(|| global().gauge("dpsan_lp_factor_nnz"))
}

/// Latency of sparse LU basis factorizations, in seconds.
pub fn factor_seconds() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| global().histogram("dpsan_lp_factor_seconds", default_latency_bounds()))
}

/// Count of basis factorizations taken on the sparse route.
pub fn sparse_factorizations_total() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| global().counter("dpsan_lp_sparse_factorizations_total"))
}

/// Record one sparse-route factorization: its latency and the fill of
/// the produced factors.
pub fn record_factorization(seconds: f64, nnz: usize) {
    sparse_factorizations_total().inc();
    factor_seconds().record(seconds);
    factor_nnz().set(nnz as f64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_register_and_record() {
        record_factorization(0.0005, 123);
        let snap = global().snapshot();
        assert!(snap.counter("dpsan_lp_sparse_factorizations_total") >= 1);
        assert_eq!(snap.gauge("dpsan_lp_factor_nnz"), 123.0);
        assert!(snap.histogram("dpsan_lp_factor_seconds").is_some());
    }
}
