//! Conversion to computational standard form.
//!
//! The simplex works on `min c'x` s.t. `A x = b`, `l ≤ x ≤ u`, where one
//! slack column is appended per row:
//!
//! * `a'x ≤ ru`            →  `a'x + s = ru`, `s ∈ [0, ∞)`
//! * `a'x ≥ rl`            →  `a'x + s = rl`, `s ∈ (−∞, 0]`
//! * `a'x = b`             →  `a'x + s = b`,  `s ∈ [0, 0]`
//! * `rl ≤ a'x ≤ ru`       →  `a'x + s = ru`, `s ∈ [0, ru − rl]`
//!
//! Maximization is converted to minimization by negating the objective;
//! [`StandardForm::user_objective`] converts back.

use crate::problem::{Problem, Sense};
use crate::sparse::CscMatrix;

/// The standard-form data consumed by the simplex.
#[derive(Debug, Clone)]
pub struct StandardForm {
    /// Row count `m`.
    pub m: usize,
    /// Total column count (structural + slack).
    pub n: usize,
    /// Structural (original) column count.
    pub n_structural: usize,
    /// `m × n` matrix including the slack identity block.
    pub a: CscMatrix,
    /// Equality right-hand side.
    pub b: Vec<f64>,
    /// Minimization objective over all `n` columns (slacks are 0).
    pub c: Vec<f64>,
    /// Column lower bounds.
    pub lower: Vec<f64>,
    /// Column upper bounds.
    pub upper: Vec<f64>,
    /// Whether the user problem was a maximization (objective sign flip).
    pub maximize: bool,
}

impl StandardForm {
    /// Build the standard form of a problem.
    pub fn from_problem(p: &Problem) -> StandardForm {
        let m = p.n_rows();
        let n_structural = p.n_cols();
        let maximize = p.sense() == Sense::Maximize;

        let mut c: Vec<f64> =
            p.objective().iter().map(|&v| if maximize { -v } else { v }).collect();
        let mut lower: Vec<f64> = p.col_bounds().iter().map(|b| b.lower).collect();
        let mut upper: Vec<f64> = p.col_bounds().iter().map(|b| b.upper).collect();

        let mut b = Vec::with_capacity(m);
        let mut slack_cols = Vec::with_capacity(m);
        for (i, rb) in p.row_bounds().iter().enumerate() {
            let (rhs, s_lo, s_hi) = if rb.upper.is_finite() {
                // a'x + s = ru with s in [0, ru - rl]
                let hi = if rb.lower.is_finite() { rb.upper - rb.lower } else { f64::INFINITY };
                (rb.upper, 0.0, hi)
            } else if rb.lower.is_finite() {
                // pure >= row
                (rb.lower, f64::NEG_INFINITY, 0.0)
            } else {
                // row with no finite side: vacuous, freely satisfied
                (0.0, f64::NEG_INFINITY, f64::INFINITY)
            };
            b.push(rhs);
            slack_cols.push(vec![(i, 1.0)]);
            c.push(0.0);
            lower.push(s_lo);
            upper.push(s_hi);
        }

        let a = p.matrix().with_extra_cols(&slack_cols);
        StandardForm { m, n: n_structural + m, n_structural, a, b, c, lower, upper, maximize }
    }

    /// Re-derive the parametric parts — `b` and the column bounds,
    /// structural and slack — from a problem whose matrix, objective,
    /// and sense are unchanged, applying the given scale factors.
    ///
    /// This is the rhs/bounds-only slice of [`StandardForm::from_problem`]
    /// composed with [`crate::scaling::apply`]: row bounds scale by the
    /// row factor, column bounds divide by the column factor (factors
    /// are powers of two, so no rounding error), and the slack-bound
    /// encoding of the row types is reproduced exactly. Everything else
    /// (`a`, `c`, shape) is left untouched, which is what makes a
    /// cached standard form reusable across a budget sweep.
    pub fn update_parametric(&mut self, p: &Problem, f: &crate::scaling::ScaleFactors) {
        assert_eq!(self.m, p.n_rows(), "parametric update must keep the row count");
        assert_eq!(self.n_structural, p.n_cols(), "parametric update must keep the column count");
        for (j, vb) in p.col_bounds().iter().enumerate() {
            self.lower[j] = vb.lower / f.col[j];
            self.upper[j] = vb.upper / f.col[j];
        }
        for (i, rb) in p.row_bounds().iter().enumerate() {
            let (rl, ru) = (rb.lower * f.row[i], rb.upper * f.row[i]);
            let (rhs, s_lo, s_hi) = if ru.is_finite() {
                let hi = if rl.is_finite() { ru - rl } else { f64::INFINITY };
                (ru, 0.0, hi)
            } else if rl.is_finite() {
                (rl, f64::NEG_INFINITY, 0.0)
            } else {
                (0.0, f64::NEG_INFINITY, f64::INFINITY)
            };
            self.b[i] = rhs;
            self.lower[self.n_structural + i] = s_lo;
            self.upper[self.n_structural + i] = s_hi;
        }
    }

    /// Convert an internal (minimization) objective value back to the
    /// user's sense.
    pub fn user_objective(&self, internal: f64) -> f64 {
        if self.maximize {
            -internal
        } else {
            internal
        }
    }

    /// A starting value for a nonbasic column: its finite lower bound if
    /// any, else its finite upper bound, else 0 (free).
    pub fn nonbasic_start(&self, j: usize) -> f64 {
        if self.lower[j].is_finite() {
            self.lower[j]
        } else if self.upper[j].is_finite() {
            self.upper[j]
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{RowBounds, VarBounds};

    fn model() -> Problem {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_col(3.0, VarBounds::non_negative()).unwrap();
        let y = p.add_col(1.0, VarBounds::free()).unwrap();
        p.add_row(RowBounds::at_most(10.0), &[(x, 1.0), (y, 2.0)]).unwrap();
        p.add_row(RowBounds::at_least(-5.0), &[(y, 1.0)]).unwrap();
        p.add_row(RowBounds::equal(4.0), &[(x, 1.0), (y, 1.0)]).unwrap();
        p.add_row(RowBounds { lower: 1.0, upper: 3.0 }, &[(x, 1.0)]).unwrap();
        p
    }

    #[test]
    fn dimensions_and_slack_block() {
        let sf = StandardForm::from_problem(&model());
        assert_eq!(sf.m, 4);
        assert_eq!(sf.n_structural, 2);
        assert_eq!(sf.n, 6);
        let d = sf.a.to_dense();
        for i in 0..4 {
            assert_eq!(d[i][2 + i], 1.0, "slack identity at row {i}");
        }
    }

    #[test]
    fn slack_bounds_encode_row_types() {
        let sf = StandardForm::from_problem(&model());
        // <= row: s in [0, inf)
        assert_eq!((sf.lower[2], sf.upper[2]), (0.0, f64::INFINITY));
        // >= row: s in (-inf, 0], rhs = rl
        assert_eq!((sf.lower[3], sf.upper[3]), (f64::NEG_INFINITY, 0.0));
        assert_eq!(sf.b[1], -5.0);
        // = row: s fixed at 0
        assert_eq!((sf.lower[4], sf.upper[4]), (0.0, 0.0));
        // range row: s in [0, ru - rl], rhs = ru
        assert_eq!((sf.lower[5], sf.upper[5]), (0.0, 2.0));
        assert_eq!(sf.b[3], 3.0);
    }

    #[test]
    fn maximization_flips_objective() {
        let sf = StandardForm::from_problem(&model());
        assert!(sf.maximize);
        assert_eq!(sf.c[0], -3.0);
        assert_eq!(sf.user_objective(-7.0), 7.0);
    }

    #[test]
    fn nonbasic_start_prefers_finite_lower() {
        let sf = StandardForm::from_problem(&model());
        assert_eq!(sf.nonbasic_start(0), 0.0); // [0, inf)
        assert_eq!(sf.nonbasic_start(1), 0.0); // free
        assert_eq!(sf.nonbasic_start(3), 0.0); // (-inf, 0] -> upper
    }

    #[test]
    fn update_parametric_matches_rebuild() {
        use crate::scaling;
        let p0 = model();
        let f = scaling::geometric_scaling(&p0, 2);
        let mut sf = StandardForm::from_problem(&scaling::apply(&p0, &f));

        // move every rhs and one column bound, keep the matrix
        let mut p1 = Problem::new(Sense::Maximize);
        p1.add_col(3.0, VarBounds { lower: 0.0, upper: 7.5 }).unwrap();
        p1.add_col(1.0, VarBounds::free()).unwrap();
        p1.add_row(RowBounds::at_most(20.0), &[(0, 1.0), (1, 2.0)]).unwrap();
        p1.add_row(RowBounds::at_least(-2.0), &[(1, 1.0)]).unwrap();
        p1.add_row(RowBounds::equal(6.0), &[(0, 1.0), (1, 1.0)]).unwrap();
        p1.add_row(RowBounds { lower: 0.5, upper: 4.0 }, &[(0, 1.0)]).unwrap();

        sf.update_parametric(&p1, &f);
        let rebuilt = StandardForm::from_problem(&scaling::apply(&p1, &f));
        assert_eq!(sf.b, rebuilt.b);
        assert_eq!(sf.lower, rebuilt.lower);
        assert_eq!(sf.upper, rebuilt.upper);
        assert_eq!(sf.c, rebuilt.c, "objective untouched by a parametric update");
    }

    #[test]
    fn minimize_keeps_sign() {
        let mut p = Problem::new(Sense::Minimize);
        p.add_col(5.0, VarBounds::non_negative()).unwrap();
        let sf = StandardForm::from_problem(&p);
        assert_eq!(sf.c[0], 5.0);
        assert_eq!(sf.user_objective(5.0), 5.0);
    }
}
