//! # dpsan-lp
//!
//! Optimization substrate for the `dpsan` workspace.
//!
//! The paper's utility-maximizing problems are an LP (O-UMP), an LP
//! after a standard absolute-value split (F-UMP), and a binary integer
//! program (D-UMP). The original evaluation leaned on Matlab
//! `linprog`/`bintprog` and the NEOS solvers; the Rust ecosystem has no
//! mature equivalent, so this crate implements the needed solvers from
//! scratch:
//!
//! * [`problem`] — an LP/MIP model builder with range rows and variable
//!   bounds,
//! * [`sparse`]/[`dense`] — compressed sparse column matrices and the
//!   dense kernels used by tests,
//! * [`standard`] — conversion to the computational standard form
//!   `min c'x, Ax = b, l ≤ x ≤ u` with one slack per row,
//! * [`scaling`] — geometric-mean equilibration,
//! * [`factor`] — sparse LU (Gilbert–Peierls with Markowitz-style
//!   threshold pivoting, pattern-driven FTRAN/BTRAN) and product-form
//!   eta updates of the simplex basis,
//! * [`simplex`] — a two-phase, bounded-variable revised simplex with a
//!   dense route for small instances and a sparse route (sparse solves,
//!   partial pricing, incremental duals) for large ones,
//! * [`obs`] — telemetry handles for the sparse kernels,
//! * [`dense_simplex`] — an independent dense tableau simplex used to
//!   cross-check the revised implementation in tests,
//! * [`presolve`] — light presolve (fixed columns, singleton rows,
//!   empty rows/columns),
//! * [`mip`] — branch & bound plus packing-aware rounding and a
//!   feasibility-pump-style heuristic for binary programs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dense;
pub mod dense_simplex;
pub mod error;
pub mod factor;
pub mod mip;
pub mod obs;
pub mod presolve;
pub mod problem;
pub mod scaling;
pub mod simplex;
pub mod sparse;
pub mod standard;

pub use error::LpError;
pub use problem::{Problem, RowBounds, Sense, VarBounds};
pub use simplex::{
    solve, solve_parametric, solve_parametric_cached, solve_with_basis, Algorithm, Basis,
    ReoptCache, SimplexOptions, Solution, SolveStats, SolveStatus, StepHint, WarmOutcome,
};
