//! LP/MIP model builder.
//!
//! A [`Problem`] is `optimize c'x` subject to range rows
//! `rl ≤ a'x ≤ ru` and column bounds `l ≤ x ≤ u`, with optional
//! integrality marks consumed by the [`crate::mip`] layer. The builder
//! validates eagerly so solvers can assume a well-formed model.

use crate::error::LpError;
use crate::sparse::CscMatrix;

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Sense {
    /// Minimize the objective.
    #[default]
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// Bounds of one variable (either may be infinite).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VarBounds {
    /// Lower bound (`-inf` allowed).
    pub lower: f64,
    /// Upper bound (`+inf` allowed).
    pub upper: f64,
}

impl VarBounds {
    /// `[0, +inf)` — the default for UMP count variables.
    pub fn non_negative() -> Self {
        VarBounds { lower: 0.0, upper: f64::INFINITY }
    }

    /// `[0, 1]` — binary relaxation bounds.
    pub fn unit() -> Self {
        VarBounds { lower: 0.0, upper: 1.0 }
    }

    /// `(-inf, +inf)`.
    pub fn free() -> Self {
        VarBounds { lower: f64::NEG_INFINITY, upper: f64::INFINITY }
    }

    /// `[v, v]`.
    pub fn fixed(v: f64) -> Self {
        VarBounds { lower: v, upper: v }
    }
}

/// Bounds of one row (range row; either side may be infinite).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RowBounds {
    /// Lower bound on the row activity.
    pub lower: f64,
    /// Upper bound on the row activity.
    pub upper: f64,
}

impl RowBounds {
    /// `a'x ≤ b`.
    pub fn at_most(b: f64) -> Self {
        RowBounds { lower: f64::NEG_INFINITY, upper: b }
    }

    /// `a'x ≥ b`.
    pub fn at_least(b: f64) -> Self {
        RowBounds { lower: b, upper: f64::INFINITY }
    }

    /// `a'x = b`.
    pub fn equal(b: f64) -> Self {
        RowBounds { lower: b, upper: b }
    }
}

/// An LP/MIP model.
#[derive(Debug, Clone, Default)]
pub struct Problem {
    sense: Sense,
    obj: Vec<f64>,
    bounds: Vec<VarBounds>,
    integer: Vec<bool>,
    rows: Vec<RowBounds>,
    triplets: Vec<(usize, usize, f64)>,
}

impl Problem {
    /// New empty model (default sense: minimize).
    pub fn new(sense: Sense) -> Self {
        Problem { sense, ..Default::default() }
    }

    /// Add a column with objective coefficient and bounds; returns its
    /// index.
    pub fn add_col(&mut self, obj: f64, bounds: VarBounds) -> Result<usize, LpError> {
        if obj.is_nan() {
            return Err(LpError::BadNumber { what: "objective coefficient" });
        }
        if bounds.lower.is_nan() || bounds.upper.is_nan() {
            return Err(LpError::BadNumber { what: "column bound" });
        }
        if bounds.lower > bounds.upper {
            return Err(LpError::EmptyInterval { what: "column bounds" });
        }
        self.obj.push(obj);
        self.bounds.push(bounds);
        self.integer.push(false);
        Ok(self.obj.len() - 1)
    }

    /// Add a row `rl ≤ Σ coef_j x_j ≤ ru`; returns its index. Duplicate
    /// column references within one row are summed.
    pub fn add_row(
        &mut self,
        bounds: RowBounds,
        entries: &[(usize, f64)],
    ) -> Result<usize, LpError> {
        if bounds.lower.is_nan() || bounds.upper.is_nan() {
            return Err(LpError::BadNumber { what: "row bound" });
        }
        if bounds.lower > bounds.upper {
            return Err(LpError::EmptyInterval { what: "row bounds" });
        }
        let r = self.rows.len();
        for &(c, v) in entries {
            if c >= self.obj.len() {
                return Err(LpError::BadColumn { col: c, ncols: self.obj.len() });
            }
            if v.is_nan() || v.is_infinite() {
                return Err(LpError::BadNumber { what: "row coefficient" });
            }
            self.triplets.push((r, c, v));
        }
        self.rows.push(bounds);
        Ok(r)
    }

    /// Mark a column as integer-constrained (used by branch & bound;
    /// the LP relaxation ignores it).
    pub fn set_integer(&mut self, col: usize) -> Result<(), LpError> {
        if col >= self.obj.len() {
            return Err(LpError::BadColumn { col, ncols: self.obj.len() });
        }
        self.integer[col] = true;
        Ok(())
    }

    /// Replace the bounds of a column (used by branch & bound).
    pub fn set_bounds(&mut self, col: usize, bounds: VarBounds) -> Result<(), LpError> {
        if col >= self.obj.len() {
            return Err(LpError::BadColumn { col, ncols: self.obj.len() });
        }
        if bounds.lower.is_nan() || bounds.upper.is_nan() {
            return Err(LpError::BadNumber { what: "column bound" });
        }
        if bounds.lower > bounds.upper {
            return Err(LpError::EmptyInterval { what: "column bounds" });
        }
        self.bounds[col] = bounds;
        Ok(())
    }

    /// Optimization sense.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.obj.len()
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Objective coefficients.
    pub fn objective(&self) -> &[f64] {
        &self.obj
    }

    /// Column bounds.
    pub fn col_bounds(&self) -> &[VarBounds] {
        &self.bounds
    }

    /// Row bounds.
    pub fn row_bounds(&self) -> &[RowBounds] {
        &self.rows
    }

    /// Integrality marks.
    pub fn integers(&self) -> &[bool] {
        &self.integer
    }

    /// Raw `(row, col, value)` triplets in insertion order.
    pub fn triplets(&self) -> &[(usize, usize, f64)] {
        &self.triplets
    }

    /// Materialize the constraint matrix.
    pub fn matrix(&self) -> CscMatrix {
        CscMatrix::from_triplets(self.n_rows(), self.n_cols(), &self.triplets)
    }

    /// Objective value of a point under the model's sense.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.n_cols(), "dimension mismatch");
        self.obj.iter().zip(x).map(|(&c, &v)| c * v).sum()
    }

    /// Maximum violation of rows and bounds at a point (0 means
    /// feasible; small positives are rounding noise).
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.n_cols(), "dimension mismatch");
        let mut worst = 0.0f64;
        for (j, b) in self.bounds.iter().enumerate() {
            worst = worst.max(b.lower - x[j]).max(x[j] - b.upper);
        }
        let act = self.matrix().matvec(x);
        for (i, rb) in self.rows.iter().enumerate() {
            worst = worst.max(rb.lower - act[i]).max(act[i] - rb.upper);
        }
        worst
    }

    /// Whether every integer-marked column is integral at `x` within
    /// `tol`.
    pub fn is_integral(&self, x: &[f64], tol: f64) -> bool {
        self.integer.iter().zip(x).all(|(&is_int, &v)| !is_int || (v - v.round()).abs() <= tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_small_model() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_col(1.0, VarBounds::non_negative()).unwrap();
        let y = p.add_col(2.0, VarBounds::unit()).unwrap();
        p.add_row(RowBounds::at_most(4.0), &[(x, 1.0), (y, 3.0)]).unwrap();
        assert_eq!(p.n_cols(), 2);
        assert_eq!(p.n_rows(), 1);
        assert_eq!(p.objective_value(&[1.0, 1.0]), 3.0);
    }

    #[test]
    fn violation_detects_row_and_bound() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_col(1.0, VarBounds::non_negative()).unwrap();
        p.add_row(RowBounds::at_most(1.0), &[(x, 1.0)]).unwrap();
        assert_eq!(p.max_violation(&[0.5]), 0.0);
        assert!((p.max_violation(&[2.0]) - 1.0).abs() < 1e-12); // row
        assert!((p.max_violation(&[-3.0]) - 3.0).abs() < 1e-12); // bound
    }

    #[test]
    fn bad_column_in_row_rejected() {
        let mut p = Problem::new(Sense::Minimize);
        let err = p.add_row(RowBounds::equal(1.0), &[(0, 1.0)]).unwrap_err();
        assert!(matches!(err, LpError::BadColumn { col: 0, ncols: 0 }));
    }

    #[test]
    fn nan_rejected_everywhere() {
        let mut p = Problem::new(Sense::Minimize);
        assert!(p.add_col(f64::NAN, VarBounds::free()).is_err());
        let x = p.add_col(0.0, VarBounds::free()).unwrap();
        assert!(p.add_row(RowBounds { lower: f64::NAN, upper: 0.0 }, &[(x, 1.0)]).is_err());
        assert!(p.add_row(RowBounds::equal(0.0), &[(x, f64::NAN)]).is_err());
        assert!(p.set_bounds(x, VarBounds { lower: f64::NAN, upper: 1.0 }).is_err());
    }

    #[test]
    fn crossed_bounds_rejected() {
        let mut p = Problem::new(Sense::Minimize);
        assert!(matches!(
            p.add_col(0.0, VarBounds { lower: 1.0, upper: 0.0 }),
            Err(LpError::EmptyInterval { .. })
        ));
    }

    #[test]
    fn integrality_marks_and_check() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_col(1.0, VarBounds::unit()).unwrap();
        let y = p.add_col(1.0, VarBounds::unit()).unwrap();
        p.set_integer(x).unwrap();
        assert_eq!(p.integers(), &[true, false]);
        assert!(p.is_integral(&[1.0, 0.5], 1e-9));
        assert!(!p.is_integral(&[0.5, 0.5], 1e-9));
        assert!(p.set_integer(y + 5).is_err());
    }

    #[test]
    fn matrix_materializes_triplets() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_col(0.0, VarBounds::non_negative()).unwrap();
        let y = p.add_col(0.0, VarBounds::non_negative()).unwrap();
        p.add_row(RowBounds::at_most(1.0), &[(x, 2.0), (y, 3.0), (x, 0.5)]).unwrap();
        let m = p.matrix();
        let d = m.to_dense();
        assert_eq!(d[0][0], 2.5, "duplicates summed");
        assert_eq!(d[0][1], 3.0);
    }

    #[test]
    fn row_coefficient_infinite_rejected() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_col(0.0, VarBounds::free()).unwrap();
        assert!(p.add_row(RowBounds::equal(0.0), &[(x, f64::INFINITY)]).is_err());
    }
}
