//! Compressed sparse column matrices.
//!
//! The revised simplex is column-oriented: it repeatedly fetches single
//! columns (`A_q` for FTRAN, basis columns for refactorization) and
//! computes sparse dot products against a dense dual vector. CSC is the
//! natural layout for both.

/// An immutable CSC matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    nrows: usize,
    ncols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Build from triplets `(row, col, value)`. Duplicate entries are
    /// summed; explicit zeros (and duplicate sums that cancel to zero)
    /// are dropped.
    ///
    /// # Panics
    /// Panics on out-of-range indices or non-finite values.
    pub fn from_triplets(nrows: usize, ncols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        let mut sorted: Vec<(usize, usize, f64)> = triplets
            .iter()
            .map(|&(r, c, v)| {
                assert!(r < nrows, "row index {r} out of range ({nrows} rows)");
                assert!(c < ncols, "col index {c} out of range ({ncols} cols)");
                assert!(v.is_finite(), "matrix entries must be finite");
                (c, r, v)
            })
            .collect();
        sorted.sort_unstable_by_key(|&(c, r, _)| (c, r));

        let mut col_ptr = vec![0usize; ncols + 1];
        let mut row_idx = Vec::with_capacity(sorted.len());
        let mut values: Vec<f64> = Vec::with_capacity(sorted.len());
        let mut last: Option<(usize, usize)> = None;
        for &(c, r, v) in &sorted {
            // entries are sorted by (c, r), so duplicates are adjacent
            if last == Some((c, r)) {
                *values.last_mut().expect("duplicate implies a previous entry") += v;
                continue;
            }
            row_idx.push(r);
            values.push(v);
            col_ptr[c + 1] += 1;
            last = Some((c, r));
        }
        for c in 0..ncols {
            col_ptr[c + 1] += col_ptr[c];
        }

        let mut m = CscMatrix { nrows, ncols, col_ptr, row_idx, values };
        m.drop_zeros();
        m
    }

    fn drop_zeros(&mut self) {
        if self.values.iter().all(|&v| v != 0.0) {
            return;
        }
        let mut col_ptr = vec![0usize; self.ncols + 1];
        let mut row_idx = Vec::with_capacity(self.row_idx.len());
        let mut values = Vec::with_capacity(self.values.len());
        for c in 0..self.ncols {
            for k in self.col_ptr[c]..self.col_ptr[c + 1] {
                if self.values[k] != 0.0 {
                    row_idx.push(self.row_idx[k]);
                    values.push(self.values[k]);
                    col_ptr[c + 1] += 1;
                }
            }
        }
        for c in 0..self.ncols {
            col_ptr[c + 1] += col_ptr[c];
        }
        self.col_ptr = col_ptr;
        self.row_idx = row_idx;
        self.values = values;
    }

    /// An `nrows x ncols` zero matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        CscMatrix { nrows, ncols, col_ptr: vec![0; ncols + 1], row_idx: vec![], values: vec![] }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored (structural) nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The `(row_indices, values)` slices of column `j`.
    #[inline]
    pub fn col(&self, j: usize) -> (&[usize], &[f64]) {
        let lo = self.col_ptr[j];
        let hi = self.col_ptr[j + 1];
        (&self.row_idx[lo..hi], &self.values[lo..hi])
    }

    /// Sparse dot product of column `j` with a dense vector.
    #[inline]
    pub fn col_dot(&self, j: usize, dense: &[f64]) -> f64 {
        let (rows, vals) = self.col(j);
        rows.iter().zip(vals).map(|(&r, &v)| v * dense[r]).sum()
    }

    /// `y += alpha * A_j` scatter of column `j` into a dense vector.
    #[inline]
    pub fn col_axpy(&self, j: usize, alpha: f64, dense: &mut [f64]) {
        let (rows, vals) = self.col(j);
        for (&r, &v) in rows.iter().zip(vals) {
            dense[r] += alpha * v;
        }
    }

    /// Dense matrix–vector product `A x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "dimension mismatch");
        let mut y = vec![0.0; self.nrows];
        for (j, &xj) in x.iter().enumerate() {
            if xj != 0.0 {
                self.col_axpy(j, xj, &mut y);
            }
        }
        y
    }

    /// Dense product with the transpose, `A' y`.
    pub fn matvec_t(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.nrows, "dimension mismatch");
        (0..self.ncols).map(|j| self.col_dot(j, y)).collect()
    }

    /// Materialize as a dense row-major matrix (tests and the dense LU).
    #[allow(clippy::needless_range_loop)] // j scatters a CSC column into row-major rows
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut d = vec![vec![0.0; self.ncols]; self.nrows];
        for j in 0..self.ncols {
            let (rows, vals) = self.col(j);
            for (&r, &v) in rows.iter().zip(vals) {
                d[r][j] = v;
            }
        }
        d
    }

    /// Append extra columns given as `(rows, values)` sparse vectors,
    /// returning a new matrix. Used to add slack/artificial columns.
    pub fn with_extra_cols(&self, cols: &[Vec<(usize, f64)>]) -> CscMatrix {
        let ncols = self.ncols + cols.len();
        let extra_nnz: usize = cols.iter().map(|c| c.len()).sum();
        let mut col_ptr = Vec::with_capacity(ncols + 1);
        col_ptr.extend_from_slice(&self.col_ptr);
        let mut row_idx = Vec::with_capacity(self.nnz() + extra_nnz);
        row_idx.extend_from_slice(&self.row_idx);
        let mut values = Vec::with_capacity(self.nnz() + extra_nnz);
        values.extend_from_slice(&self.values);
        for col in cols {
            for &(r, v) in col {
                assert!(r < self.nrows, "extra column row index out of range");
                row_idx.push(r);
                values.push(v);
            }
            col_ptr.push(row_idx.len());
        }
        CscMatrix { nrows: self.nrows, ncols, col_ptr, row_idx, values }
    }
}

/// A CSR mirror of a [`CscMatrix`], for the row-oriented passes of the
/// revised simplex (devex reference-weight updates and the dual ratio
/// test both need `rho' A` restricted to the rows where `rho` is
/// nonzero — that is a union of matrix *rows*, not columns).
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Build the CSR mirror of a CSC matrix. Entries within each row
    /// come out sorted by column index (the CSC column sweep visits
    /// columns in ascending order).
    pub fn from_csc(a: &CscMatrix) -> Self {
        let nrows = a.nrows();
        let ncols = a.ncols();
        let nnz = a.nnz();
        let mut row_ptr = vec![0usize; nrows + 1];
        for &r in &a.row_idx {
            row_ptr[r + 1] += 1;
        }
        for r in 0..nrows {
            row_ptr[r + 1] += row_ptr[r];
        }
        let mut next = row_ptr.clone();
        let mut col_idx = vec![0usize; nnz];
        let mut values = vec![0.0f64; nnz];
        for j in 0..ncols {
            let (rows, vals) = a.col(j);
            for (&r, &v) in rows.iter().zip(vals) {
                let slot = next[r];
                col_idx[slot] = j;
                values[slot] = v;
                next[r] += 1;
            }
        }
        CsrMatrix { nrows, ncols, row_ptr, col_idx, values }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// The `(col_indices, values)` slices of row `i`, sorted by column.
    #[inline]
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }
}

/// A sparse working vector with explicit nonzero tracking: a dense
/// value array plus the list of positions that may be nonzero.
///
/// This is the workhorse of the sparse FTRAN/BTRAN path. Kernels
/// scatter into `values` and record each newly touched index in
/// `pattern` (guarded by the `marked` bitmap so an index is recorded
/// once); [`SparseVec::clear`] then resets only the touched entries,
/// so a solve whose result has `k` nonzeros costs `O(k)` to clean up
/// instead of `O(n)`.
///
/// Entries listed in `pattern` may still hold an exact `0.0` (numeric
/// cancellation); consumers that care filter on the value.
#[derive(Debug, Clone)]
pub struct SparseVec {
    /// Dense value array, indexable by position.
    pub values: Vec<f64>,
    /// Indices with (structurally) nonzero values, in scatter order
    /// unless [`SparseVec::sort_pattern`] has been called.
    pub pattern: Vec<usize>,
    marked: Vec<bool>,
}

impl SparseVec {
    /// An all-zero vector of dimension `n`.
    pub fn new(n: usize) -> Self {
        SparseVec { values: vec![0.0; n], pattern: Vec::new(), marked: vec![false; n] }
    }

    /// Dimension of the vector.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the pattern is empty (the vector may still be
    /// numerically zero with a non-empty pattern after cancellation).
    pub fn is_empty(&self) -> bool {
        self.pattern.is_empty()
    }

    /// Number of tracked (structural) nonzeros.
    pub fn nnz(&self) -> usize {
        self.pattern.len()
    }

    /// Reset to the zero vector in `O(nnz)` time.
    pub fn clear(&mut self) {
        for &i in &self.pattern {
            self.values[i] = 0.0;
            self.marked[i] = false;
        }
        self.pattern.clear();
    }

    /// Resize to dimension `n`, clearing all entries.
    pub fn resize(&mut self, n: usize) {
        self.clear();
        self.values.resize(n, 0.0);
        self.marked.resize(n, false);
    }

    /// Add `i` to the tracked pattern (idempotent). Does not touch the
    /// value.
    #[inline]
    pub fn mark(&mut self, i: usize) {
        if !self.marked[i] {
            self.marked[i] = true;
            self.pattern.push(i);
        }
    }

    /// `values[i] += v`, tracking `i` in the pattern.
    #[inline]
    pub fn add(&mut self, i: usize, v: f64) {
        self.mark(i);
        self.values[i] += v;
    }

    /// `values[i] = v`, tracking `i` in the pattern.
    #[inline]
    pub fn set(&mut self, i: usize, v: f64) {
        self.mark(i);
        self.values[i] = v;
    }

    /// Sort the pattern into ascending index order. Pattern-driven
    /// consumers that must match a dense left-to-right sweep (the
    /// Harris ratio test's tie-breaking, ascending-row dot products)
    /// call this first.
    pub fn sort_pattern(&mut self) {
        self.pattern.sort_unstable();
    }

    /// Re-derive the pattern by scanning the dense values — for use
    /// after a dense kernel has written `values` directly. The pattern
    /// comes out sorted ascending, as after
    /// [`SparseVec::sort_pattern`].
    pub fn rescan_pattern(&mut self) {
        for &i in &self.pattern {
            self.marked[i] = false;
        }
        self.pattern.clear();
        for i in 0..self.values.len() {
            if self.values[i] != 0.0 {
                self.marked[i] = true;
                self.pattern.push(i);
            }
        }
    }

    /// Load from a dense slice, tracking every nonzero.
    pub fn assign_dense(&mut self, dense: &[f64]) {
        self.clear();
        debug_assert_eq!(dense.len(), self.values.len());
        for (i, &v) in dense.iter().enumerate() {
            if v != 0.0 {
                self.set(i, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CscMatrix {
        // [ 1 0 2 ]
        // [ 0 3 0 ]
        CscMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (1, 1, 3.0), (0, 2, 2.0)])
    }

    #[test]
    fn dims_and_nnz() {
        let m = sample();
        assert_eq!((m.nrows(), m.ncols(), m.nnz()), (2, 3, 3));
    }

    #[test]
    fn duplicates_sum() {
        let m = CscMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.5), (1, 1, 1.0)]);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.to_dense()[0][0], 3.5);
    }

    #[test]
    fn explicit_zeros_dropped() {
        let m = CscMatrix::from_triplets(2, 2, &[(0, 0, 0.0), (1, 0, 1.0)]);
        assert_eq!(m.nnz(), 1);
        let m = CscMatrix::from_triplets(1, 1, &[(0, 0, 1.0), (0, 0, -1.0)]);
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn col_access() {
        let m = sample();
        let (rows, vals) = m.col(2);
        assert_eq!(rows, &[0]);
        assert_eq!(vals, &[2.0]);
        let (rows, _) = m.col(1);
        assert_eq!(rows, &[1]);
    }

    #[test]
    fn matvec_matches_dense() {
        let m = sample();
        let y = m.matvec(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![1.0 + 6.0, 6.0]);
    }

    #[test]
    fn matvec_t_matches_dense() {
        let m = sample();
        let y = m.matvec_t(&[2.0, 5.0]);
        assert_eq!(y, vec![2.0, 15.0, 4.0]);
    }

    #[test]
    fn col_dot_and_axpy() {
        let m = sample();
        assert_eq!(m.col_dot(0, &[4.0, 7.0]), 4.0);
        let mut dense = vec![1.0, 1.0];
        m.col_axpy(1, 2.0, &mut dense);
        assert_eq!(dense, vec![1.0, 7.0]);
    }

    #[test]
    fn with_extra_cols_appends_identity() {
        let m = sample();
        let ext = m.with_extra_cols(&[vec![(0, 1.0)], vec![(1, -1.0)]]);
        assert_eq!(ext.ncols(), 5);
        let d = ext.to_dense();
        assert_eq!(d[0][3], 1.0);
        assert_eq!(d[1][4], -1.0);
        assert_eq!(d[0][0], 1.0, "original columns preserved");
    }

    #[test]
    fn zeros_matrix() {
        let m = CscMatrix::zeros(3, 4);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.matvec(&[1.0; 4]), vec![0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "row index")]
    fn bad_row_panics() {
        let _ = CscMatrix::from_triplets(1, 1, &[(5, 0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn nan_panics() {
        let _ = CscMatrix::from_triplets(1, 1, &[(0, 0, f64::NAN)]);
    }

    #[test]
    fn csr_mirrors_csc() {
        let m = CscMatrix::from_triplets(
            3,
            4,
            &[(0, 0, 1.0), (2, 0, -2.0), (0, 2, 3.0), (1, 3, 4.0), (2, 2, 5.0)],
        );
        let r = CsrMatrix::from_csc(&m);
        assert_eq!((r.nrows(), r.ncols()), (3, 4));
        let (cols, vals) = r.row(0);
        assert_eq!(cols, &[0, 2]);
        assert_eq!(vals, &[1.0, 3.0]);
        let (cols, vals) = r.row(1);
        assert_eq!(cols, &[3]);
        assert_eq!(vals, &[4.0]);
        let (cols, vals) = r.row(2);
        assert_eq!(cols, &[0, 2]);
        assert_eq!(vals, &[-2.0, 5.0]);
    }

    #[test]
    fn csr_rows_sorted_by_column() {
        let m = CscMatrix::from_triplets(2, 3, &[(0, 2, 7.0), (0, 0, 1.0), (0, 1, 2.0)]);
        let r = CsrMatrix::from_csc(&m);
        let (cols, _) = r.row(0);
        assert!(cols.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn sparse_vec_tracks_and_clears() {
        let mut v = SparseVec::new(5);
        assert!(v.is_empty());
        v.add(3, 2.0);
        v.add(1, -1.0);
        v.add(3, 0.5);
        assert_eq!(v.nnz(), 2, "duplicate index tracked once");
        assert_eq!(v.values[3], 2.5);
        v.sort_pattern();
        assert_eq!(v.pattern, vec![1, 3]);
        v.clear();
        assert_eq!(v.nnz(), 0);
        assert_eq!(v.values, vec![0.0; 5]);
        // marked bitmap was reset too: re-adding works
        v.set(3, 9.0);
        assert_eq!(v.pattern, vec![3]);
    }

    #[test]
    fn sparse_vec_assign_dense() {
        let mut v = SparseVec::new(4);
        v.add(0, 5.0);
        v.assign_dense(&[0.0, 1.0, 0.0, -2.0]);
        let mut p = v.pattern.clone();
        p.sort_unstable();
        assert_eq!(p, vec![1, 3]);
        assert_eq!(v.values, vec![0.0, 1.0, 0.0, -2.0]);
    }
}
