//! Compressed sparse column matrices.
//!
//! The revised simplex is column-oriented: it repeatedly fetches single
//! columns (`A_q` for FTRAN, basis columns for refactorization) and
//! computes sparse dot products against a dense dual vector. CSC is the
//! natural layout for both.

/// An immutable CSC matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    nrows: usize,
    ncols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Build from triplets `(row, col, value)`. Duplicate entries are
    /// summed; explicit zeros (and duplicate sums that cancel to zero)
    /// are dropped.
    ///
    /// # Panics
    /// Panics on out-of-range indices or non-finite values.
    pub fn from_triplets(nrows: usize, ncols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        let mut sorted: Vec<(usize, usize, f64)> = triplets
            .iter()
            .map(|&(r, c, v)| {
                assert!(r < nrows, "row index {r} out of range ({nrows} rows)");
                assert!(c < ncols, "col index {c} out of range ({ncols} cols)");
                assert!(v.is_finite(), "matrix entries must be finite");
                (c, r, v)
            })
            .collect();
        sorted.sort_unstable_by_key(|&(c, r, _)| (c, r));

        let mut col_ptr = vec![0usize; ncols + 1];
        let mut row_idx = Vec::with_capacity(sorted.len());
        let mut values: Vec<f64> = Vec::with_capacity(sorted.len());
        let mut last: Option<(usize, usize)> = None;
        for &(c, r, v) in &sorted {
            // entries are sorted by (c, r), so duplicates are adjacent
            if last == Some((c, r)) {
                *values.last_mut().expect("duplicate implies a previous entry") += v;
                continue;
            }
            row_idx.push(r);
            values.push(v);
            col_ptr[c + 1] += 1;
            last = Some((c, r));
        }
        for c in 0..ncols {
            col_ptr[c + 1] += col_ptr[c];
        }

        let mut m = CscMatrix { nrows, ncols, col_ptr, row_idx, values };
        m.drop_zeros();
        m
    }

    fn drop_zeros(&mut self) {
        if self.values.iter().all(|&v| v != 0.0) {
            return;
        }
        let mut col_ptr = vec![0usize; self.ncols + 1];
        let mut row_idx = Vec::with_capacity(self.row_idx.len());
        let mut values = Vec::with_capacity(self.values.len());
        for c in 0..self.ncols {
            for k in self.col_ptr[c]..self.col_ptr[c + 1] {
                if self.values[k] != 0.0 {
                    row_idx.push(self.row_idx[k]);
                    values.push(self.values[k]);
                    col_ptr[c + 1] += 1;
                }
            }
        }
        for c in 0..self.ncols {
            col_ptr[c + 1] += col_ptr[c];
        }
        self.col_ptr = col_ptr;
        self.row_idx = row_idx;
        self.values = values;
    }

    /// An `nrows x ncols` zero matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        CscMatrix { nrows, ncols, col_ptr: vec![0; ncols + 1], row_idx: vec![], values: vec![] }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored (structural) nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The `(row_indices, values)` slices of column `j`.
    #[inline]
    pub fn col(&self, j: usize) -> (&[usize], &[f64]) {
        let lo = self.col_ptr[j];
        let hi = self.col_ptr[j + 1];
        (&self.row_idx[lo..hi], &self.values[lo..hi])
    }

    /// Sparse dot product of column `j` with a dense vector.
    #[inline]
    pub fn col_dot(&self, j: usize, dense: &[f64]) -> f64 {
        let (rows, vals) = self.col(j);
        rows.iter().zip(vals).map(|(&r, &v)| v * dense[r]).sum()
    }

    /// `y += alpha * A_j` scatter of column `j` into a dense vector.
    #[inline]
    pub fn col_axpy(&self, j: usize, alpha: f64, dense: &mut [f64]) {
        let (rows, vals) = self.col(j);
        for (&r, &v) in rows.iter().zip(vals) {
            dense[r] += alpha * v;
        }
    }

    /// Dense matrix–vector product `A x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "dimension mismatch");
        let mut y = vec![0.0; self.nrows];
        for (j, &xj) in x.iter().enumerate() {
            if xj != 0.0 {
                self.col_axpy(j, xj, &mut y);
            }
        }
        y
    }

    /// Dense product with the transpose, `A' y`.
    pub fn matvec_t(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.nrows, "dimension mismatch");
        (0..self.ncols).map(|j| self.col_dot(j, y)).collect()
    }

    /// Materialize as a dense row-major matrix (tests and the dense LU).
    #[allow(clippy::needless_range_loop)] // j scatters a CSC column into row-major rows
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut d = vec![vec![0.0; self.ncols]; self.nrows];
        for j in 0..self.ncols {
            let (rows, vals) = self.col(j);
            for (&r, &v) in rows.iter().zip(vals) {
                d[r][j] = v;
            }
        }
        d
    }

    /// Append extra columns given as `(rows, values)` sparse vectors,
    /// returning a new matrix. Used to add slack/artificial columns.
    pub fn with_extra_cols(&self, cols: &[Vec<(usize, f64)>]) -> CscMatrix {
        let ncols = self.ncols + cols.len();
        let extra_nnz: usize = cols.iter().map(|c| c.len()).sum();
        let mut col_ptr = Vec::with_capacity(ncols + 1);
        col_ptr.extend_from_slice(&self.col_ptr);
        let mut row_idx = Vec::with_capacity(self.nnz() + extra_nnz);
        row_idx.extend_from_slice(&self.row_idx);
        let mut values = Vec::with_capacity(self.nnz() + extra_nnz);
        values.extend_from_slice(&self.values);
        for col in cols {
            for &(r, v) in col {
                assert!(r < self.nrows, "extra column row index out of range");
                row_idx.push(r);
                values.push(v);
            }
            col_ptr.push(row_idx.len());
        }
        CscMatrix { nrows: self.nrows, ncols, col_ptr, row_idx, values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CscMatrix {
        // [ 1 0 2 ]
        // [ 0 3 0 ]
        CscMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (1, 1, 3.0), (0, 2, 2.0)])
    }

    #[test]
    fn dims_and_nnz() {
        let m = sample();
        assert_eq!((m.nrows(), m.ncols(), m.nnz()), (2, 3, 3));
    }

    #[test]
    fn duplicates_sum() {
        let m = CscMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.5), (1, 1, 1.0)]);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.to_dense()[0][0], 3.5);
    }

    #[test]
    fn explicit_zeros_dropped() {
        let m = CscMatrix::from_triplets(2, 2, &[(0, 0, 0.0), (1, 0, 1.0)]);
        assert_eq!(m.nnz(), 1);
        let m = CscMatrix::from_triplets(1, 1, &[(0, 0, 1.0), (0, 0, -1.0)]);
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn col_access() {
        let m = sample();
        let (rows, vals) = m.col(2);
        assert_eq!(rows, &[0]);
        assert_eq!(vals, &[2.0]);
        let (rows, _) = m.col(1);
        assert_eq!(rows, &[1]);
    }

    #[test]
    fn matvec_matches_dense() {
        let m = sample();
        let y = m.matvec(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![1.0 + 6.0, 6.0]);
    }

    #[test]
    fn matvec_t_matches_dense() {
        let m = sample();
        let y = m.matvec_t(&[2.0, 5.0]);
        assert_eq!(y, vec![2.0, 15.0, 4.0]);
    }

    #[test]
    fn col_dot_and_axpy() {
        let m = sample();
        assert_eq!(m.col_dot(0, &[4.0, 7.0]), 4.0);
        let mut dense = vec![1.0, 1.0];
        m.col_axpy(1, 2.0, &mut dense);
        assert_eq!(dense, vec![1.0, 7.0]);
    }

    #[test]
    fn with_extra_cols_appends_identity() {
        let m = sample();
        let ext = m.with_extra_cols(&[vec![(0, 1.0)], vec![(1, -1.0)]]);
        assert_eq!(ext.ncols(), 5);
        let d = ext.to_dense();
        assert_eq!(d[0][3], 1.0);
        assert_eq!(d[1][4], -1.0);
        assert_eq!(d[0][0], 1.0, "original columns preserved");
    }

    #[test]
    fn zeros_matrix() {
        let m = CscMatrix::zeros(3, 4);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.matvec(&[1.0; 4]), vec![0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "row index")]
    fn bad_row_panics() {
        let _ = CscMatrix::from_triplets(1, 1, &[(5, 0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn nan_panics() {
        let _ = CscMatrix::from_triplets(1, 1, &[(0, 0, f64::NAN)]);
    }
}
