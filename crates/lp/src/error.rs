//! Error type for model construction and solving.

use std::fmt;

/// Errors surfaced by the LP/MIP layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// Model refers to a column index that does not exist.
    BadColumn {
        /// The offending index.
        col: usize,
        /// Number of columns in the model.
        ncols: usize,
    },
    /// A bound/coefficient was NaN or otherwise unusable.
    BadNumber {
        /// What was being set.
        what: &'static str,
    },
    /// Lower bound exceeds upper bound on a column or row.
    EmptyInterval {
        /// What was being set.
        what: &'static str,
    },
    /// The basis matrix became singular even after refactorization.
    SingularBasis,
    /// Iteration limit exhausted before reaching a terminal status.
    IterationLimit,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::BadColumn { col, ncols } => {
                write!(f, "column index {col} out of range (model has {ncols} columns)")
            }
            LpError::BadNumber { what } => write!(f, "{what} must be a non-NaN number"),
            LpError::EmptyInterval { what } => write!(f, "{what}: lower bound exceeds upper bound"),
            LpError::SingularBasis => write!(f, "basis matrix is singular"),
            LpError::IterationLimit => write!(f, "simplex iteration limit reached"),
        }
    }
}

impl std::error::Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_descriptive() {
        assert!(LpError::BadColumn { col: 9, ncols: 3 }.to_string().contains("9"));
        assert!(LpError::SingularBasis.to_string().contains("singular"));
        assert!(LpError::IterationLimit.to_string().contains("iteration"));
        assert!(LpError::BadNumber { what: "objective" }.to_string().contains("objective"));
        assert!(LpError::EmptyInterval { what: "row" }.to_string().contains("row"));
    }
}
