//! One-shot scale probe behind the tracked 10⁵-user benches.
//!
//! Prints (a) dense-vs-sparse basis factorization times across sizes —
//! the crossover evidence recorded in ROADMAP.md — and (b) wall-clock
//! for each stage of the 10⁵-user O-UMP pipeline (generate → preprocess
//! → constraints → solve), so bench budgets and the CI scale-smoke
//! timeout are set from measurements instead of guesses.
//!
//! ```text
//! cargo run --release -p dpsan-bench --example scale_probe [users] [tiny|small]
//! ```

use std::time::Instant;

use dpsan_core::constraints::PrivacyConstraints;
use dpsan_core::ump::output_size::{solve_oump_with, OumpOptions};
use dpsan_datagen::{generate, presets, AolLikeConfig};
use dpsan_dp::params::PrivacyParams;
use dpsan_lp::dense::DenseLu;
use dpsan_lp::factor::BasisFactor;
use dpsan_lp::problem::{Problem, Sense, VarBounds};
use dpsan_lp::sparse::CscMatrix;
use dpsan_searchlog::preprocess;

/// An O-UMP-shaped constraint matrix in CSC form plus a nonsingular
/// mixed structural/slack basis (each structural column is assigned to
/// its first row, so the basis is triangular under the natural order).
fn oump_like_basis(m: usize) -> (CscMatrix, Vec<usize>) {
    // block-angular: each "user" row constrains a handful of pair
    // columns; neighbouring rows share columns like shared pairs do
    let mut trips: Vec<(usize, usize, f64)> = Vec::new();
    let n_cols = m * 2;
    for j in 0..n_cols {
        let first = (j / 2) % m;
        trips.push((first, j, 1.0 + (j % 7) as f64 * 0.3));
        if j % 3 != 0 {
            trips.push(((first + 1 + j % 5) % m, j, 0.5 + (j % 4) as f64 * 0.2));
        }
    }
    // slack block
    for i in 0..m {
        trips.push((i, n_cols + i, 1.0));
    }
    let a = CscMatrix::from_triplets(m, n_cols + m, &trips);
    // basis: structural column j = 2i owns row i when i is even (its
    // first row); slack otherwise
    let basis: Vec<usize> = (0..m).map(|i| if i % 2 == 0 { 2 * i } else { n_cols + i }).collect();
    (a, basis)
}

fn main() {
    let users: usize = std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(100_000);

    println!("== dense vs sparse basis factorization (same basis) ==");
    for m in [256usize, 512, 1024, 2048] {
        let (a, basis) = oump_like_basis(m);
        let t0 = Instant::now();
        let f = BasisFactor::factor(&a, &basis).expect("nonsingular");
        let sparse_t = t0.elapsed();
        // dense LU over the explicit basis matrix
        let mut dense_b = vec![vec![0.0f64; m]; m];
        for (pos, &j) in basis.iter().enumerate() {
            let (rows, vals) = a.col(j);
            for (&r, &v) in rows.iter().zip(vals) {
                dense_b[r][pos] = v;
            }
        }
        let t0 = Instant::now();
        let _lu = DenseLu::factor(&dense_b).expect("nonsingular");
        let dense_t = t0.elapsed();
        println!(
            "m={m:5}  sparse {sparse_t:>12?}  dense {dense_t:>12?}  ratio {:6.1}x  lu_nnz {}",
            dense_t.as_secs_f64() / sparse_t.as_secs_f64().max(1e-12),
            f.lu_nnz(),
        );
    }

    println!("== {users}-user O-UMP pipeline ==");
    let base = match std::env::args().nth(2).as_deref() {
        Some("tiny") => presets::aol_tiny(),
        _ => presets::aol_small(),
    };
    let ratio = users as f64 / base.n_users as f64;
    let cfg = AolLikeConfig {
        n_users: users,
        n_queries: ((base.n_queries as f64 * ratio).ceil() as usize).max(1),
        ..base
    };
    let t0 = Instant::now();
    let log = generate(&cfg);
    println!("generate          {:>12?}  ({} tuples)", t0.elapsed(), log.size());
    let t0 = Instant::now();
    let (pre, _) = preprocess(&log);
    println!(
        "preprocess        {:>12?}  ({} pairs, {} user logs)",
        t0.elapsed(),
        pre.n_pairs(),
        pre.n_user_logs()
    );
    let t0 = Instant::now();
    let cons =
        PrivacyConstraints::build(&pre, PrivacyParams::from_e_epsilon(2.0, 0.5)).expect("build");
    println!("constraints       {:>12?}  ({} rows)", t0.elapsed(), cons.n_rows());

    let t0 = Instant::now();
    let sol = solve_oump_with(&cons, &OumpOptions::default()).expect("solve");
    println!(
        "oump solve        {:>12?}  (lambda {}, {} iterations)",
        t0.elapsed(),
        sol.lambda,
        sol.iterations
    );

    // the raw factorization the sparse_factor_100k bench tracks: the
    // standard-form basis of this LP's shape
    let mut p = Problem::new(Sense::Maximize);
    let cols: Vec<usize> = (0..cons.n_pairs())
        .map(|pi| {
            p.add_col(1.0, VarBounds { lower: 0.0, upper: cons.pair_totals()[pi] as f64 })
                .expect("col")
        })
        .collect();
    cons.add_to_problem(&mut p, &cols);
    println!("problem           {} rows x {} cols", p.n_rows(), p.n_cols());
}
