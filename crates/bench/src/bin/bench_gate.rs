//! `bench_gate` — fail CI when a tracked bench regresses.
//!
//! ```text
//! bench_gate <baseline.json> <current.json> [max_ratio]
//! ```
//!
//! Both files are flat `{"bench id": median_ns}` objects; the baseline
//! is committed (`BENCH_pipeline.json`), the current file is written by
//! `DPSAN_BENCH_JSON=... cargo bench --bench pipeline`. Exits non-zero
//! when any baseline bench is missing from the current run, its median
//! grew beyond `max_ratio` (default 2.0), or it *improved* beyond
//! `1/max_ratio` without a baseline refresh (a stale baseline would
//! silently absorb later regressions of the same size).

use std::process::ExitCode;

use dpsan_bench::{gate, passes, GateFinding, DEFAULT_MAX_RATIO};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (baseline_path, current_path) = match (args.first(), args.get(1)) {
        (Some(b), Some(c)) => (b, c),
        _ => {
            eprintln!("usage: bench_gate <baseline.json> <current.json> [max_ratio]");
            return ExitCode::FAILURE;
        }
    };
    let max_ratio = match args.get(2) {
        None => DEFAULT_MAX_RATIO,
        Some(r) => match r.parse::<f64>() {
            Ok(v) if v > 0.0 => v,
            _ => {
                eprintln!("max_ratio must be a positive number, got {r:?}");
                return ExitCode::FAILURE;
            }
        },
    };

    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            None
        }
    };
    let (Some(baseline), Some(current)) = (read(baseline_path), read(current_path)) else {
        return ExitCode::FAILURE;
    };

    let findings = gate(&baseline, &current, max_ratio);
    if findings.is_empty() {
        eprintln!("bench_gate: baseline {baseline_path} tracks no benches");
        return ExitCode::FAILURE;
    }
    for f in &findings {
        match f {
            GateFinding::Ok { name, ratio, .. } => println!("OK        {name:<44} x{ratio:.2}"),
            GateFinding::Regressed { name, ratio, .. } => {
                println!("REGRESSED {name:<44} x{ratio:.2} (limit x{max_ratio:.2})");
            }
            GateFinding::StaleBaseline { name, ratio, .. } => {
                println!(
                    "STALE     {name:<44} x{ratio:.2} (>{:.0}% faster than baseline — refresh \
                     BENCH_pipeline.json in this PR and say why)",
                    (max_ratio - 1.0) * 100.0
                );
            }
            GateFinding::Missing { name, .. } => println!("MISSING   {name}"),
        }
    }
    if passes(&findings) {
        println!("bench_gate: {} benches within x{max_ratio:.2}", findings.len());
        ExitCode::SUCCESS
    } else {
        // Full evidence table: on a shared runner the *other* entries
        // are the context that tells a real regression (one bench out,
        // rest steady) from a noisy machine (everything shifted), so a
        // failing gate prints baseline/measured/ratio for every entry.
        println!("bench_gate: FAILED — full baseline vs measured table:");
        println!("{:<54} {:>14} {:>14} {:>8}", "bench", "baseline_ns", "measured_ns", "ratio");
        for f in &findings {
            match f {
                GateFinding::Ok { name, ratio, baseline_ns, current_ns }
                | GateFinding::Regressed { name, ratio, baseline_ns, current_ns }
                | GateFinding::StaleBaseline { name, ratio, baseline_ns, current_ns } => {
                    println!("{name:<54} {baseline_ns:>14.1} {current_ns:>14.1} {ratio:>7.2}x");
                }
                GateFinding::Missing { name, baseline_ns } => {
                    println!("{name:<54} {baseline_ns:>14.1} {:>14} {:>8}", "absent", "-");
                }
            }
        }
        ExitCode::FAILURE
    }
}
