//! Bench-only crate: see `benches/` for the criterion targets, one per
//! paper table/figure family plus the ablations of DESIGN.md §5, and
//! `benches/pipeline.rs` for the *tracked* set CI gates.
//!
//! The library half holds the regression-gate logic consumed by the
//! `bench_gate` binary: compare a freshly measured `BENCH_pipeline.json`
//! (written by the vendored criterion shim via `DPSAN_BENCH_JSON`)
//! against the committed baseline and fail on large median regressions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use criterion::json::parse_flat_object;

/// Maximum tolerated `current / baseline` median ratio before the gate
/// fails. 2× absorbs shared-runner noise and hardware drift between the
/// baseline machine and CI while still catching real hot-path
/// regressions (the warm-start win alone is >3×).
pub const DEFAULT_MAX_RATIO: f64 = 2.0;

/// Outcome of gating one tracked bench.
#[derive(Debug, Clone, PartialEq)]
pub enum GateFinding {
    /// Bench present in both files; ratio within the gate.
    Ok {
        /// Bench id.
        name: String,
        /// `current / baseline` median ratio.
        ratio: f64,
    },
    /// Bench regressed beyond the allowed ratio.
    Regressed {
        /// Bench id.
        name: String,
        /// `current / baseline` median ratio.
        ratio: f64,
    },
    /// Bench tracked in the baseline but absent from the current run.
    Missing {
        /// Bench id.
        name: String,
    },
}

/// Compare two flat `{"bench": median_ns}` JSON files. Every baseline
/// entry must appear in `current` and stay within `max_ratio`; entries
/// only in `current` (newly added benches) are ignored until the
/// baseline is refreshed.
pub fn gate(baseline: &str, current: &str, max_ratio: f64) -> Vec<GateFinding> {
    let base = parse_flat_object(baseline);
    let cur = parse_flat_object(current);
    base.into_iter()
        .map(|(name, base_ns)| match cur.iter().find(|(k, _)| *k == name) {
            None => GateFinding::Missing { name },
            Some(&(_, cur_ns)) => {
                let ratio = if base_ns > 0.0 { cur_ns / base_ns } else { f64::INFINITY };
                // fail closed: a NaN ratio (corrupt measurement) is not
                // `> max_ratio` but must not pass the gate either
                if ratio <= max_ratio {
                    GateFinding::Ok { name, ratio }
                } else {
                    GateFinding::Regressed { name, ratio }
                }
            }
        })
        .collect()
}

/// Whether a finding set passes (no regressions, nothing missing).
pub fn passes(findings: &[GateFinding]) -> bool {
    findings.iter().all(|f| matches!(f, GateFinding::Ok { .. }))
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"{ "pipeline/a": 100.0, "pipeline/b": 1000.0 }"#;

    #[test]
    fn within_ratio_passes() {
        let cur = r#"{ "pipeline/a": 150.0, "pipeline/b": 900.0, "pipeline/new": 5.0 }"#;
        let f = gate(BASE, cur, 2.0);
        assert!(passes(&f), "{f:?}");
        assert_eq!(f.len(), 2, "new benches are not gated yet");
    }

    #[test]
    fn regression_fails() {
        let cur = r#"{ "pipeline/a": 250.0, "pipeline/b": 900.0 }"#;
        let f = gate(BASE, cur, 2.0);
        assert!(!passes(&f));
        assert!(f.iter().any(
            |x| matches!(x, GateFinding::Regressed { name, ratio } if name == "pipeline/a" && *ratio > 2.4)
        ));
    }

    #[test]
    fn missing_bench_fails() {
        let cur = r#"{ "pipeline/a": 100.0 }"#;
        let f = gate(BASE, cur, 2.0);
        assert!(!passes(&f));
        assert!(f
            .iter()
            .any(|x| matches!(x, GateFinding::Missing { name } if name == "pipeline/b")));
    }

    #[test]
    fn zero_baseline_counts_as_regression() {
        let f = gate(r#"{ "x": 0.0 }"#, r#"{ "x": 1.0 }"#, 2.0);
        assert!(!passes(&f));
    }

    #[test]
    fn nan_measurement_fails_closed() {
        let f = gate(r#"{ "x": 100.0 }"#, r#"{ "x": NaN }"#, 2.0);
        assert!(!passes(&f), "a corrupt (NaN) measurement must not pass the gate");
    }
}
