//! Bench-only crate: see `benches/` for the criterion targets, one per
//! paper table/figure family plus the ablations of DESIGN.md §5, and
//! `benches/pipeline.rs` for the *tracked* set CI gates.
//!
//! The library half holds the regression-gate logic consumed by the
//! `bench_gate` binary: compare a freshly measured `BENCH_pipeline.json`
//! (written by the vendored criterion shim via `DPSAN_BENCH_JSON`)
//! against the committed baseline and fail on large median regressions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use criterion::json::parse_flat_object;

/// Maximum tolerated `current / baseline` median ratio before the gate
/// fails. 2× absorbs shared-runner noise and hardware drift between the
/// baseline machine and CI while still catching real hot-path
/// regressions (the warm-start win alone is >3×).
pub const DEFAULT_MAX_RATIO: f64 = 2.0;

/// Outcome of gating one tracked bench. Every variant carries the raw
/// baseline (and, where measured, current) medians so a failing gate
/// can print the full per-entry evidence, not just the one bad ratio.
#[derive(Debug, Clone, PartialEq)]
pub enum GateFinding {
    /// Bench present in both files; ratio within the gate.
    Ok {
        /// Bench id.
        name: String,
        /// `current / baseline` median ratio.
        ratio: f64,
        /// Committed baseline median, nanoseconds.
        baseline_ns: f64,
        /// Freshly measured median, nanoseconds.
        current_ns: f64,
    },
    /// Bench regressed beyond the allowed ratio.
    Regressed {
        /// Bench id.
        name: String,
        /// `current / baseline` median ratio.
        ratio: f64,
        /// Committed baseline median, nanoseconds.
        baseline_ns: f64,
        /// Freshly measured median, nanoseconds.
        current_ns: f64,
    },
    /// Bench *improved* beyond `1/max_ratio` without the baseline being
    /// refreshed. This also fails the gate: a baseline that lags the
    /// real performance by 2× leaves a silent 2× regression budget —
    /// the very thing the gate exists to catch. Refresh the committed
    /// baseline (and say why) in the PR that made the hot path faster.
    StaleBaseline {
        /// Bench id.
        name: String,
        /// `current / baseline` median ratio (here `< 1/max_ratio`).
        ratio: f64,
        /// Committed baseline median, nanoseconds.
        baseline_ns: f64,
        /// Freshly measured median, nanoseconds.
        current_ns: f64,
    },
    /// Bench tracked in the baseline but absent from the current run.
    Missing {
        /// Bench id.
        name: String,
        /// Committed baseline median, nanoseconds.
        baseline_ns: f64,
    },
}

/// Compare two flat `{"bench": median_ns}` JSON files. Every baseline
/// entry must appear in `current` and stay within `[1/max_ratio,
/// max_ratio]` of it — above is a regression, below a stale baseline
/// masking future regressions; entries only in `current` (newly added
/// benches) are ignored until the baseline is refreshed.
pub fn gate(baseline: &str, current: &str, max_ratio: f64) -> Vec<GateFinding> {
    let base = parse_flat_object(baseline);
    let cur = parse_flat_object(current);
    base.into_iter()
        .map(|(name, base_ns)| match cur.iter().find(|(k, _)| *k == name) {
            None => GateFinding::Missing { name, baseline_ns: base_ns },
            Some(&(_, cur_ns)) => {
                let ratio = if base_ns > 0.0 { cur_ns / base_ns } else { f64::INFINITY };
                // fail closed as a regression: a NaN ratio (corrupt
                // measurement) must neither pass nor be misreported as
                // an improvement awaiting a baseline refresh
                if !ratio.is_finite() || ratio > max_ratio {
                    GateFinding::Regressed { name, ratio, baseline_ns: base_ns, current_ns: cur_ns }
                } else if ratio >= 1.0 / max_ratio {
                    GateFinding::Ok { name, ratio, baseline_ns: base_ns, current_ns: cur_ns }
                } else {
                    GateFinding::StaleBaseline {
                        name,
                        ratio,
                        baseline_ns: base_ns,
                        current_ns: cur_ns,
                    }
                }
            }
        })
        .collect()
}

/// Whether a finding set passes (no regressions, nothing missing).
pub fn passes(findings: &[GateFinding]) -> bool {
    findings.iter().all(|f| matches!(f, GateFinding::Ok { .. }))
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"{ "pipeline/a": 100.0, "pipeline/b": 1000.0 }"#;

    #[test]
    fn within_ratio_passes() {
        let cur = r#"{ "pipeline/a": 150.0, "pipeline/b": 900.0, "pipeline/new": 5.0 }"#;
        let f = gate(BASE, cur, 2.0);
        assert!(passes(&f), "{f:?}");
        assert_eq!(f.len(), 2, "new benches are not gated yet");
    }

    #[test]
    fn unrefreshed_improvement_fails_as_stale_baseline() {
        // pipeline/a got 4x faster but the baseline was not refreshed:
        // the stale entry would hide a later 2-3x regression, so the
        // gate must flag it
        let cur = r#"{ "pipeline/a": 25.0, "pipeline/b": 900.0 }"#;
        let f = gate(BASE, cur, 2.0);
        assert!(!passes(&f), "{f:?}");
        assert!(f.iter().any(
            |x| matches!(x, GateFinding::StaleBaseline { name, ratio, .. } if name == "pipeline/a" && *ratio < 0.5)
        ));
    }

    #[test]
    fn improvement_within_ratio_still_passes() {
        // a 1.6x improvement is inside the symmetric band: no refresh
        // required (shared-runner noise can explain it)
        let cur = r#"{ "pipeline/a": 62.5, "pipeline/b": 1000.0 }"#;
        assert!(passes(&gate(BASE, cur, 2.0)));
    }

    #[test]
    fn regression_fails() {
        let cur = r#"{ "pipeline/a": 250.0, "pipeline/b": 900.0 }"#;
        let f = gate(BASE, cur, 2.0);
        assert!(!passes(&f));
        assert!(f.iter().any(
            |x| matches!(x, GateFinding::Regressed { name, ratio, .. } if name == "pipeline/a" && *ratio > 2.4)
        ));
    }

    #[test]
    fn missing_bench_fails() {
        let cur = r#"{ "pipeline/a": 100.0 }"#;
        let f = gate(BASE, cur, 2.0);
        assert!(!passes(&f));
        assert!(f
            .iter()
            .any(|x| matches!(x, GateFinding::Missing { name, .. } if name == "pipeline/b")));
    }

    #[test]
    fn zero_baseline_counts_as_regression() {
        let f = gate(r#"{ "x": 0.0 }"#, r#"{ "x": 1.0 }"#, 2.0);
        assert!(!passes(&f));
    }

    #[test]
    fn nan_measurement_fails_closed() {
        let f = gate(r#"{ "x": 100.0 }"#, r#"{ "x": NaN }"#, 2.0);
        assert!(!passes(&f), "a corrupt (NaN) measurement must not pass the gate");
        assert!(
            f.iter().all(|x| !matches!(x, GateFinding::StaleBaseline { .. })),
            "a corrupt measurement must not masquerade as an improvement: {f:?}"
        );
    }
}
