//! Bench-only crate: see `benches/` for the criterion targets, one per
//! paper table/figure family plus the ablations of DESIGN.md §5.
