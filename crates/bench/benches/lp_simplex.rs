//! Microbenches of the LP substrate: simplex on packing LPs of
//! increasing size, sparse LU factorization, and scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpsan_lp::problem::{Problem, RowBounds, Sense, VarBounds};
use dpsan_lp::simplex::{solve, SimplexOptions};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn packing(n: usize, m: usize, seed: u64) -> Problem {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = Problem::new(Sense::Maximize);
    for _ in 0..n {
        p.add_col(1.0, VarBounds { lower: 0.0, upper: 50.0 }).unwrap();
    }
    for _ in 0..m {
        let k = rng.random_range(3..10);
        let entries: Vec<(usize, f64)> =
            (0..k).map(|_| (rng.random_range(0..n), rng.random::<f64>() * 0.4 + 0.01)).collect();
        p.add_row(RowBounds::at_most(0.7), &entries).unwrap();
    }
    p
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("lp_simplex");
    for (n, m) in [(100usize, 40usize), (400, 160), (1000, 400)] {
        let p = packing(n, m, 42);
        g.bench_with_input(BenchmarkId::from_parameter(format!("{n}x{m}")), &p, |b, p| {
            b.iter(|| solve(p, &SimplexOptions::default()).unwrap())
        });
    }
    // scaling ablation
    let p = packing(400, 160, 7);
    g.bench_function("noscale_400x160", |b| {
        b.iter(|| solve(&p, &SimplexOptions { scaling: false, ..Default::default() }).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
