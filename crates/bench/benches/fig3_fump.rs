//! Bench for Figure 3 / Tables 5-6: the F-UMP solve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpsan_core::constraints::PrivacyConstraints;
use dpsan_core::ump::frequent::{solve_fump_with, FumpOptions};
use dpsan_core::ump::output_size::{solve_oump_with, OumpOptions};
use dpsan_datagen::{generate, presets};
use dpsan_dp::params::PrivacyParams;
use dpsan_searchlog::preprocess;

fn bench(c: &mut Criterion) {
    let (pre, _) = preprocess(&generate(&presets::aol_tiny()));
    let params = PrivacyParams::from_e_epsilon(2.0, 0.5);
    let constraints = PrivacyConstraints::build(&pre, params).unwrap();
    let lambda = solve_oump_with(&constraints, &OumpOptions::default()).unwrap().lambda.max(2);

    let mut g = c.benchmark_group("fig3_fump");
    for frac in [4u64, 2] {
        let output_size = (lambda / frac).max(1);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("O=lambda/{frac}")),
            &output_size,
            |b, &o| {
                b.iter(|| solve_fump_with(&pre, &constraints, &FumpOptions::new(0.02, o)).unwrap())
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
