//! Bench for Figure 6: multinomial output sampling and the DiffRatio
//! histogram, plus the alias-vs-CDF ablation of the sampler.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpsan_core::metrics::diff_ratio_histogram;
use dpsan_core::sampling::sample_output;
use dpsan_core::ump::output_size::{solve_oump, OumpOptions};
use dpsan_datagen::{generate, presets};
use dpsan_dp::multinomial::MultinomialStrategy;
use dpsan_dp::params::PrivacyParams;
use dpsan_searchlog::preprocess;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let (pre, _) = preprocess(&generate(&presets::aol_tiny()));
    let params = PrivacyParams::from_e_epsilon(2.0, 0.8);
    let counts = solve_oump(&pre, params, &OumpOptions::default()).unwrap().counts;

    let mut g = c.benchmark_group("fig6_sampling");
    for (name, strategy) in [
        ("auto", MultinomialStrategy::Auto),
        ("alias", MultinomialStrategy::Alias),
        ("cdf_scan", MultinomialStrategy::CdfScan),
    ] {
        g.bench_with_input(BenchmarkId::new("sample", name), &strategy, |b, &s| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                sample_output(&mut rng, &pre, &counts, s)
            })
        });
    }
    let mut rng = StdRng::seed_from_u64(1);
    let output = sample_output(&mut rng, &pre, &counts, MultinomialStrategy::Auto);
    g.bench_function("diff_ratio_histogram", |b| {
        b.iter(|| diff_ratio_histogram(&pre, &output, 0.1, 10))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
