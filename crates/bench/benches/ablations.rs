//! Ablation benches for the design choices called out in DESIGN.md:
//! SPE victim selection, simplex refactorization cadence, and
//! constraint-building cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpsan_core::constraints::PrivacyConstraints;
use dpsan_core::ump::diversity::{solve_dump_with, DumpOptions, DumpSolver};
use dpsan_core::ump::output_size::{solve_oump_with, OumpOptions};
use dpsan_datagen::{generate, presets};
use dpsan_dp::params::PrivacyParams;
use dpsan_lp::simplex::SimplexOptions;
use dpsan_searchlog::preprocess;

fn bench(c: &mut Criterion) {
    let (pre, _) = preprocess(&generate(&presets::aol_tiny()));
    let params = PrivacyParams::from_e_epsilon(1.7, 0.2);
    let constraints = PrivacyConstraints::build(&pre, params).unwrap();

    let mut g = c.benchmark_group("ablations");
    // SPE variant ablation
    for (name, solver) in
        [("spe_global", DumpSolver::Spe), ("spe_violated", DumpSolver::SpeViolated)]
    {
        g.bench_with_input(BenchmarkId::new("spe", name), &solver, |b, s| {
            b.iter(|| {
                solve_dump_with(
                    &constraints,
                    &DumpOptions { solver: s.clone(), ..Default::default() },
                )
                .unwrap()
            })
        });
    }
    // refactorization cadence ablation
    for every in [16usize, 64, 256] {
        let lp = SimplexOptions { refactor_every: every, ..Default::default() };
        g.bench_with_input(BenchmarkId::new("refactor_every", every), &lp, |b, lp| {
            b.iter(|| {
                solve_oump_with(&constraints, &OumpOptions { lp: lp.clone(), ..Default::default() })
                    .unwrap()
            })
        });
    }
    // constraint building
    g.bench_function("build_constraints", |b| {
        b.iter(|| PrivacyConstraints::build(&pre, params).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
