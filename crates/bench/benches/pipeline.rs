//! The tracked perf set: the solve hot path end to end.
//!
//! This bench is the one CI's `bench-smoke` job runs with
//! `DPSAN_BENCH_JSON=BENCH_pipeline.json`; every entry here is gated
//! against the committed baseline by `bench_gate` (>2× median
//! regression fails the build). Keep it quick — the grid sweeps use the
//! tiny dataset — and keep entry names stable: they are the JSON keys
//! the gate matches on.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use dpsan_core::constraints::PrivacyConstraints;
use dpsan_core::mechanism::{
    LdpSanitizer, Sanitizer, TriggerPolicy, UmpSanitizer, UtilityObjective, ZealousSanitizer,
};
use dpsan_core::session::{SolveSession, Strategy};
use dpsan_core::ump::frequent::{solve_fump_with, FumpOptions};
use dpsan_core::ump::output_size::{solve_oump_with, OumpOptions};
use dpsan_datagen::{generate, presets, write_log_tsv};
use dpsan_dp::params::PrivacyParams;
use dpsan_eval::{run_experiment, Ctx, Scale};
use dpsan_lp::factor::BasisFactor;
use dpsan_lp::problem::{Problem, Sense, VarBounds};
use dpsan_lp::simplex::SimplexOptions;
use dpsan_lp::sparse::CscMatrix;
use dpsan_searchlog::{preprocess, SearchLog};
use dpsan_serve::ServeSession;
use dpsan_store::wal::{append_record, WalRecord};
use dpsan_store::{DiskIo, DurableStore, StoreConfig};
use dpsan_stream::{ingest_tsv, IngestSession, PairSketch, StreamConfig};

/// The budget sweep used by the cold/warm/dual sweep benches: twelve
/// `(e^ε, δ)` cells with distinct, ascending collapsed budgets —
/// the length of a real Table-4 prefetch chain (13 distinct budgets on
/// the 7×7 grid), so per-step reoptimization cost is weighted the way
/// the actual workload weighs it rather than drowned by the one cold
/// first solve. (Grew from 6 cells alongside the dual-reopt work; the
/// committed baseline was refreshed with the bench change.)
const SWEEP: [(f64, f64); 12] = [
    (1.1, 1e-2),
    (1.2, 0.05),
    (1.4, 0.1),
    (1.5, 0.15),
    (1.7, 0.2),
    (1.8, 0.25),
    (1.9, 0.3),
    (2.0, 0.35),
    (2.1, 0.4),
    (2.2, 0.45),
    (2.0, 0.5),
    (2.3, 0.8),
];

fn tiny_log() -> SearchLog {
    let (pre, _) = preprocess(&generate(&presets::aol_tiny()));
    pre
}

/// One full replay of the serve trace: ingest the whole trace, take
/// the cold first release, then append three rounds of recurring
/// traffic (lines resampled from the same trace, spread evenly so no
/// user's counts move violently) and re-release after each. Returns
/// the re-release latencies — the cold first release is excluded, and
/// every re-release is asserted onto the dual-reopt fast path, so the
/// p50/p99 below track the steady-state serving cost, not start-up.
fn serve_replay_latencies(trace: &str) -> Vec<Duration> {
    let lines: Vec<&str> = trace.lines().collect();
    let stream = StreamConfig { shards: 4, chunk_rows: 256, sketch_capacity: 0, jobs: 1 };
    let mut session = ServeSession::new(
        Box::new(UmpSanitizer::new(UtilityObjective::OutputSize)),
        stream,
        PrivacyParams::from_e_epsilon(2.0, 0.5),
        0xd95a_11ce,
        TriggerPolicy::manual(),
        None,
    );
    session.feed(trace.as_bytes()).expect("feed trace");
    session.release_now().expect("cold release");
    for round in 0..3usize {
        let chunk: String =
            lines.iter().skip(round).step_by(13).map(|l| format!("{l}\n")).collect();
        session.feed(chunk.as_bytes()).expect("feed append");
        session.release_now().expect("re-release");
    }
    let records = session.records();
    for r in &records[1..] {
        // a re-release either rides the dual path or is vetoed by the
        // determinism guard (a degenerate optimum forces a cold
        // re-solve so the release stays byte-identical to one-shot);
        // an *unexplained* cold start is a shape change and a bug here
        assert_eq!(
            r.solver.cold_starts, r.solver.degenerate_fallbacks,
            "re-release {} fell off the fast path: {:?}",
            r.index, r.solver
        );
        assert!(
            r.solver.dual_reopts + r.solver.degenerate_fallbacks >= 1,
            "re-release {} did neither dual-reopt nor guard-veto: {:?}",
            r.index,
            r.solver
        );
    }
    records[1..].iter().map(|r| r.latency).collect()
}

fn sweep_constraints(pre: &SearchLog) -> Vec<PrivacyConstraints> {
    SWEEP
        .iter()
        .map(|&(e, d)| PrivacyConstraints::build(pre, PrivacyParams::from_e_epsilon(e, d)).unwrap())
        .collect()
}

fn bench(c: &mut Criterion) {
    let pre = tiny_log();
    let constraints = sweep_constraints(&pre);
    let opts = OumpOptions::default();

    let mut g = c.benchmark_group("pipeline");

    g.bench_function("oump_cold_solve", |b| {
        b.iter(|| solve_oump_with(&constraints[3], &opts).unwrap())
    });

    g.bench_function("oump_cold_sweep", |b| {
        b.iter(|| {
            constraints.iter().map(|cons| solve_oump_with(cons, &opts).unwrap().lambda).sum::<u64>()
        })
    });

    g.bench_function("oump_warm_sweep", |b| {
        // pinned to the warm-*primal* path (the PR 2 behaviour) so this
        // entry keeps measuring what its baseline history measured and
        // stays an honest comparison point for the dual sweep below
        b.iter(|| {
            let mut session =
                SolveSession::new(SimplexOptions::default()).with_strategy(Strategy::PrimalOnly);
            constraints
                .iter()
                .map(|cons| session.solve_oump(cons, &opts).unwrap().lambda)
                .sum::<u64>()
        })
    });

    g.bench_function("oump_dual_sweep", |b| {
        // the same sweep through the default strategy: every step after
        // the first is a declared rhs-only move, so the dual simplex
        // reoptimizes from the previous basis
        b.iter(|| {
            let mut session = SolveSession::new(SimplexOptions::default());
            constraints
                .iter()
                .map(|cons| session.solve_oump(cons, &opts).unwrap().lambda)
                .sum::<u64>()
        })
    });

    g.bench_function("fump_dual_sweep", |b| {
        // F-UMP budget sweep at fixed |O| and support: the session's
        // fingerprint detection routes the budget-only steps through
        // the dual path (an |O| move would rewrite matrix coefficients
        // and fall back to warm primal). Only cells whose λ can host a
        // common |O| participate — the tightest budgets of SWEEP have
        // λ < 2 at tiny scale.
        let lambdas: Vec<u64> =
            constraints.iter().map(|c| solve_oump_with(c, &opts).unwrap().lambda).collect();
        let feasible: Vec<&PrivacyConstraints> =
            constraints.iter().zip(&lambdas).filter(|&(_, &l)| l >= 2).map(|(c, _)| c).collect();
        let lambda_min = lambdas.iter().copied().filter(|&l| l >= 2).min().unwrap_or(2);
        let fopts = FumpOptions::new(0.02, (lambda_min / 2).max(1));
        b.iter(|| {
            let mut session = SolveSession::new(SimplexOptions::default());
            feasible
                .iter()
                .map(|cons| session.solve_fump(&pre, cons, &fopts).unwrap().lp_objective)
                .sum::<f64>()
        })
    });

    g.bench_function("fump_cell", |b| {
        let params = PrivacyParams::from_e_epsilon(2.0, 0.5);
        let cons = PrivacyConstraints::build(&pre, params).unwrap();
        let lambda = solve_oump_with(&cons, &opts).unwrap().lambda.max(2);
        let fopts = FumpOptions::new(0.02, lambda / 2);
        b.iter(|| solve_fump_with(&pre, &cons, &fopts).unwrap())
    });

    g.bench_function("zealous_release", |b| {
        // the full non-LP mechanism path: contribution capping, one
        // Laplace draw per surviving candidate, threshold filter,
        // pseudonymized rebuild
        let params = PrivacyParams::from_e_epsilon(2.0, 0.5);
        let mech = ZealousSanitizer::new();
        b.iter(|| mech.sanitize(&pre, params, 7).unwrap().output.size())
    });

    g.bench_function("ldp_rr_release", |b| {
        // the local-model path: one randomized-response draw per
        // (user, pair) bit — the O(users × pairs) report matrix
        let params = PrivacyParams::from_e_epsilon(2.0, 0.5);
        let mech = LdpSanitizer::new();
        b.iter(|| mech.sanitize(&pre, params, 7).unwrap().output.size())
    });

    g.bench_function("ingest_stream", |b| {
        // the sharded bounded-memory intake on a spooled tiny log:
        // chunked parse → user-hash shards → drain → deterministic
        // merge (single worker so the entry tracks work, not threads)
        let mut tsv = Vec::new();
        write_log_tsv(&presets::aol_tiny(), &mut tsv).expect("spool tiny log");
        let cfg = StreamConfig { shards: 8, jobs: 1, ..Default::default() };
        b.iter(|| {
            let r = ingest_tsv(std::io::Cursor::new(&tsv[..]), &cfg).unwrap();
            r.log.size()
        })
    });

    g.bench_function("sketch_merge", |b| {
        // merging 8 shard sketches at a capacity that forces real
        // evictions and subtraction rounds (the drain's merge step)
        let shard_sketches: Vec<PairSketch> = (0..8)
            .map(|s| {
                let mut sk = PairSketch::new(256);
                for i in 0..2_000u64 {
                    let q = (i * 7 + s * 13) % 600; // zipf-free but overlapping keys
                    sk.offer(&format!("q{q}"), &format!("l{}", q % 40), 1 + i % 3);
                }
                sk
            })
            .collect();
        b.iter(|| {
            let mut merged = shard_sketches[0].clone();
            for sk in &shard_sketches[1..] {
                merged.merge(sk);
            }
            merged.len()
        })
    });

    g.bench_function("wal_append", |b| {
        // the durable-ingest hot path: one CRC-framed WAL record
        // (~1 KiB chunk) appended + fsynced through the production
        // DiskIo — the per-chunk latency every followed byte pays
        // before it may be ingested
        let dir = std::env::temp_dir().join(format!("dpsan-bench-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("bench wal dir");
        let path = dir.join("wal-00000000.log");
        let chunk: Vec<u8> = (0..16)
            .flat_map(|i| {
                format!("user{i:02}\tquery{}\tsite{}.net\t2\n", i % 5, i % 3).into_bytes()
            })
            .collect();
        let mut offset = 0u64;
        b.iter(|| {
            offset += chunk.len() as u64;
            append_record(
                &DiskIo,
                &path,
                &WalRecord { offset_after: offset, chunk: chunk.clone() },
            )
            .expect("wal append");
            offset
        });
        std::fs::remove_dir_all(&dir).expect("bench wal cleanup");
    });

    g.bench_function("store_resume", |b| {
        // crash-recovery latency: open a store holding one checkpoint
        // plus a WAL span and rebuild the exact ingest session
        // (checksum-verify the shard snapshots, scan + replay the WAL)
        // — the restart cost a durable daemon pays before serving
        let dir = std::env::temp_dir().join(format!("dpsan-bench-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let stream = StreamConfig { shards: 4, chunk_rows: 64, sketch_capacity: 0, jobs: 1 };
        {
            let (mut store, recovered) = DurableStore::open(
                std::sync::Arc::new(DiskIo),
                StoreConfig { dir: dir.clone(), checkpoint_rows: 0 },
            )
            .expect("bench store open");
            let mut session = recovered.resume_session(stream.clone()).expect("fresh session");
            let mut tsv = Vec::new();
            write_log_tsv(&presets::aol_tiny(), &mut tsv).expect("spool tiny log");
            let text = String::from_utf8(tsv).expect("utf8");
            let lines: Vec<&str> = text.lines().collect();
            let mut offset = 0u64;
            for (i, chunk_lines) in lines.chunks(lines.len().div_ceil(8)).enumerate() {
                let chunk = chunk_lines.join("\n") + "\n";
                offset += chunk.len() as u64;
                store.log_chunk(offset, chunk.as_bytes()).expect("log chunk");
                session.ingest(std::io::Cursor::new(chunk.as_bytes())).expect("ingest");
                if i == 3 {
                    store.checkpoint(&session.export_state(), offset).expect("checkpoint");
                }
            }
        }
        b.iter(|| {
            let (_, recovered) = DurableStore::open(
                std::sync::Arc::new(DiskIo),
                StoreConfig { dir: dir.clone(), checkpoint_rows: 0 },
            )
            .expect("bench store reopen");
            let session: IngestSession = recovered.resume_session(stream.clone()).expect("resume");
            session.rows()
        });
        std::fs::remove_dir_all(&dir).expect("bench resume cleanup");
    });

    g.bench_function("metrics_hot_path", |b| {
        // the telemetry cost a single solve pays: one labeled-counter
        // increment plus one histogram record (the exact pair
        // SolveSession and the WAL/release paths emit). Gated so the
        // "observational only" contract stays cheap enough to be true —
        // if this entry regresses, every instrumented hot loop does.
        let solves = dpsan_obs::global().counter_with("dpsan_bench_solves_total", "path", "warm");
        let lat = dpsan_obs::global()
            .histogram("dpsan_bench_solve_seconds", dpsan_obs::default_latency_bounds());
        let mut v = 1.0e-6f64;
        b.iter(|| {
            solves.inc();
            v = v.mul_add(1.0000001, 1.0e-9); // vary the sample a little
            lat.record(v);
            v
        })
    });

    g.bench_function("table4_tiny_end_to_end", |b| {
        // the full experiment (prefetch + render) on a prebuilt context;
        // fresh context per iteration so the caches start cold
        b.iter(|| {
            let ctx = Ctx::new(Scale::Tiny).with_jobs(1);
            let mut buf = Vec::new();
            run_experiment("table4", &ctx, &mut buf).unwrap();
            buf.len()
        })
    });

    // ---- the 10^5-user sparse-route entries ----
    // Shared setup, built once and untimed: the tiny preset scaled to
    // 100k users exactly the way `genlog --scale tiny --users 100000`
    // scales it (vocabulary grows with the population so pair sharing
    // keeps its shape), preprocessed and compiled to the real O-UMP
    // constraint system. Everything below 512 rows takes the dense
    // route; these two entries are the only tracked coverage of the
    // sparse kernels at the scale they exist for.
    let (big_cons, big_matrix, big_basis) = {
        let mut cfg = dpsan_eval::Scale::Tiny.config();
        let users = 100_000usize;
        let ratio = users as f64 / cfg.n_users as f64;
        cfg.n_queries = ((cfg.n_queries as f64 * ratio).ceil() as usize).max(1);
        cfg.n_users = users;
        let (pre, _) = preprocess(&generate(&cfg));
        let cons =
            PrivacyConstraints::build(&pre, PrivacyParams::from_e_epsilon(2.0, 0.5)).unwrap();
        // the standard-form matrix of the O-UMP LP: structural pair
        // columns plus one slack per user row
        let mut p = Problem::new(Sense::Maximize);
        let cols: Vec<usize> = (0..cons.n_pairs())
            .map(|pi| {
                p.add_col(1.0, VarBounds { lower: 0.0, upper: cons.pair_totals()[pi] as f64 })
                    .expect("valid column")
            })
            .collect();
        cons.add_to_problem(&mut p, &cols);
        let (m, n) = (p.n_rows(), p.n_cols());
        let mut trips = p.triplets().to_vec();
        for i in 0..m {
            trips.push((i, n + i, 1.0));
        }
        let a = CscMatrix::from_triplets(m, n + m, &trips);
        // a mixed structural/slack basis: each column claims its lowest
        // unclaimed row (CSC columns are row-sorted), leftover rows
        // keep their slack — nonsingular by construction and far
        // denser than the all-slack identity, so the factorization
        // entry measures real Markowitz work on the real matrix
        let mut owner = vec![usize::MAX; m];
        for j in 0..n {
            let (rows, vals) = a.col(j);
            if let (Some(&r), Some(&v)) = (rows.first(), vals.first()) {
                if owner[r] == usize::MAX && v.abs() > 1e-9 {
                    owner[r] = j;
                }
            }
        }
        let basis: Vec<usize> = owner
            .iter()
            .enumerate()
            .map(|(i, &j)| if j == usize::MAX { n + i } else { j })
            .collect();
        (cons, a, basis)
    };

    g.bench_function("sparse_factor_100k", |b| {
        // sparse LU (Markowitz) of a ~10^5-row basis of the real
        // 10^5-user constraint matrix; the dense kernel cannot appear
        // here at all — the explicit basis matrix alone is ~80 GB
        b.iter(|| BasisFactor::factor(&big_matrix, &big_basis).expect("nonsingular").lu_nnz())
    });

    g.bench_function("oump_sparse_solve_100k", |b| {
        // pivot throughput at scale: a cold sparse-route solve capped
        // at 1000 iterations in anytime mode. Proving optimality at
        // this density takes hours regardless of kernel (hypersparsity
        // collapses — see ROADMAP), so the tracked number is what the
        // serving path's --lp-budget actually pays: initial
        // factorization plus 1000 sparse pivots on the real LP.
        let opts = OumpOptions {
            lp: SimplexOptions { max_iter: 1_000, ..SimplexOptions::default() },
            anytime: true,
            ..Default::default()
        };
        b.iter(|| {
            let s = solve_oump_with(&big_cons, &opts).unwrap();
            (s.lambda, s.capped)
        })
    });

    // serve re-release latency, reported as percentiles over a
    // replayed trace rather than an iter median: replays repeat until
    // the bench budget is spent, every re-release latency across all
    // replays pools into one sample set, and the p50/p99 of that set
    // are the tracked entries (the service's own --stats quotes the
    // same per-release latencies).
    {
        // the same recurring-traffic trace shape the serve equivalence
        // suite pins to the fast path: one population, no new users or
        // pairs after the first window, so appends move counts only
        let cfg = dpsan_datagen::AolLikeConfig {
            n_users: 60,
            n_queries: 60,
            mean_events_per_user: 12.0,
            ..Default::default()
        };
        let mut tsv = Vec::new();
        write_log_tsv(&cfg, &mut tsv).expect("spool serve trace");
        let trace = String::from_utf8(tsv).expect("utf8 trace");
        let budget = Duration::from_millis(
            std::env::var("BENCH_BUDGET_MS").ok().and_then(|v| v.parse().ok()).unwrap_or(200),
        );
        let started = std::time::Instant::now();
        let mut samples: Vec<Duration> = serve_replay_latencies(&trace);
        while started.elapsed() < budget && samples.len() < 10_000 {
            samples.extend(serve_replay_latencies(&trace));
        }
        samples.sort_unstable();
        let p50 = samples[samples.len() / 2];
        let p99 = samples[(samples.len() - 1).min(samples.len() * 99 / 100)];
        g.report_ns("serve_rerelease_p50", p50.as_nanos() as f64);
        g.report_ns("serve_rerelease_p99", p99.as_nanos() as f64);
    }

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
