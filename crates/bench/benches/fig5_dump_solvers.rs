//! Bench for Figure 5 / Table 7: the D-UMP solver suite on one instance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpsan_core::constraints::PrivacyConstraints;
use dpsan_core::ump::diversity::{solve_dump_with, DumpOptions, DumpSolver};
use dpsan_datagen::{generate, presets};
use dpsan_dp::params::PrivacyParams;
use dpsan_searchlog::preprocess;

fn bench(c: &mut Criterion) {
    let (pre, _) = preprocess(&generate(&presets::aol_tiny()));
    let params = PrivacyParams::from_e_epsilon(1.7, 1e-3);
    let constraints = PrivacyConstraints::build(&pre, params).unwrap();

    let solvers: Vec<(&str, DumpSolver)> = vec![
        ("spe", DumpSolver::Spe),
        ("spe_violated", DumpSolver::SpeViolated),
        ("lp_round", DumpSolver::LpRound),
        ("pump", DumpSolver::Pump { restarts: 6, seed: 7 }),
        ("branch_bound", DumpSolver::BranchBound { max_nodes: 500 }),
    ];
    let mut g = c.benchmark_group("fig5_dump_solvers");
    for (name, solver) in solvers {
        g.bench_with_input(BenchmarkId::from_parameter(name), &solver, |b, s| {
            b.iter(|| {
                solve_dump_with(
                    &constraints,
                    &DumpOptions { solver: s.clone(), ..Default::default() },
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
