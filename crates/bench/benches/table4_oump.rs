//! Bench for Table 4: the O-UMP λ solve across privacy budgets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpsan_core::constraints::PrivacyConstraints;
use dpsan_core::ump::output_size::{solve_oump_with, OumpOptions};
use dpsan_datagen::{generate, presets};
use dpsan_dp::params::PrivacyParams;
use dpsan_searchlog::preprocess;

fn bench(c: &mut Criterion) {
    let (pre, _) = preprocess(&generate(&presets::aol_tiny()));
    let mut g = c.benchmark_group("table4_oump");
    for (label, e_eps, delta) in [("tight", 1.01, 1e-2), ("mid", 1.7, 0.2), ("loose", 2.3, 0.8)] {
        let params = PrivacyParams::from_e_epsilon(e_eps, delta);
        let constraints = PrivacyConstraints::build(&pre, params).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(label), &constraints, |b, cons| {
            b.iter(|| solve_oump_with(cons, &OumpOptions::default()).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
