//! Property tests of the search-log data model.

use dpsan_searchlog::{preprocess, LogRecord, PairId, SearchLog, SearchLogBuilder};
use proptest::prelude::*;

/// Random raw tuples over small id spaces (duplicates intended).
fn arb_tuples() -> impl Strategy<Value = Vec<(u8, u8, u8, u8)>> {
    prop::collection::vec((0u8..6, 0u8..5, 0u8..3, 1u8..5), 1..40)
}

fn build(tuples: &[(u8, u8, u8, u8)]) -> SearchLog {
    let mut b = SearchLogBuilder::new();
    for &(u, q, l, c) in tuples {
        b.add(&format!("u{u}"), &format!("q{q}"), &format!("l{l}"), c as u64).unwrap();
    }
    b.build()
}

proptest! {
    #[test]
    fn size_equals_sum_of_raw_counts(tuples in arb_tuples()) {
        let log = build(&tuples);
        let expect: u64 = tuples.iter().map(|&(_, _, _, c)| c as u64).sum();
        prop_assert_eq!(log.size(), expect);
    }

    #[test]
    fn pair_totals_equal_holder_sums(tuples in arb_tuples()) {
        let log = build(&tuples);
        for pe in log.pairs() {
            let holder_sum: u64 = log.holders(pe.pair).map(|t| t.count).sum();
            prop_assert_eq!(pe.total, holder_sum);
        }
    }

    #[test]
    fn user_and_pair_views_agree(tuples in arb_tuples()) {
        let log = build(&tuples);
        let mut via_users: u64 = 0;
        for k in log.users_with_logs() {
            via_users += log.user_log(k).map(|e| e.count).sum::<u64>();
        }
        prop_assert_eq!(via_users, log.size());
    }

    #[test]
    fn builder_roundtrip_preserves_records(tuples in arb_tuples()) {
        let log = build(&tuples);
        let mut b = SearchLogBuilder::with_vocabulary_of(&log);
        for r in log.records() {
            b.add_record(r).unwrap();
        }
        let log2 = b.build();
        let key = |r: &LogRecord| (r.query.0, r.url.0, r.user.0, r.count);
        let mut r1: Vec<_> = log.records().collect();
        let mut r2: Vec<_> = log2.records().collect();
        r1.sort_unstable_by_key(key);
        r2.sort_unstable_by_key(key);
        prop_assert_eq!(r1, r2);
    }

    #[test]
    fn preprocess_removes_exactly_single_holder_pairs(tuples in arb_tuples()) {
        let log = build(&tuples);
        let singles = (0..log.n_pairs())
            .filter(|&i| log.n_holders(PairId::from_index(i)) == 1)
            .count();
        let (pre, report) = preprocess(&log);
        prop_assert_eq!(report.removed_pairs, singles);
        prop_assert_eq!(pre.n_pairs(), log.n_pairs() - singles);
        // idempotence
        let (pre2, report2) = preprocess(&pre);
        prop_assert_eq!(report2.removed_pairs, 0);
        prop_assert_eq!(pre2.size(), pre.size());
    }

    #[test]
    fn tsv_roundtrip_is_lossless(tuples in arb_tuples()) {
        let log = build(&tuples);
        let mut buf = Vec::new();
        dpsan_searchlog::io::write_tsv(&log, &mut buf).unwrap();
        let back = dpsan_searchlog::io::read_tsv(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(back.size(), log.size());
        prop_assert_eq!(back.n_pairs(), log.n_pairs());
        prop_assert_eq!(back.n_user_logs(), log.n_user_logs());
        prop_assert_eq!(back.n_triplets(), log.n_triplets());
    }
}
