//! Dataset characteristics (the rows of the paper's Table 3).

use std::collections::HashSet;
use std::fmt;

use crate::ids::PairId;
use crate::log::SearchLog;

/// One row of Table 3: the characteristics of a search log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogStats {
    /// `# of total tuples (size)` — the click volume `|D| = Σ c_ij`.
    pub total_tuples: u64,
    /// `# of user logs` — users with at least one pair.
    pub user_logs: usize,
    /// `# of distinct queries` appearing in some stored pair.
    pub distinct_queries: usize,
    /// `# of distinct urls` appearing in some stored pair.
    pub distinct_urls: usize,
    /// `# of query-url pairs` — distinct pairs.
    pub pairs: usize,
}

impl LogStats {
    /// Compute the statistics of a log.
    pub fn of(log: &SearchLog) -> Self {
        let mut queries = HashSet::new();
        let mut urls = HashSet::new();
        for i in 0..log.n_pairs() {
            let (q, u) = log.pair_key(PairId::from_index(i));
            queries.insert(q);
            urls.insert(u);
        }
        LogStats {
            total_tuples: log.size(),
            user_logs: log.n_user_logs(),
            distinct_queries: queries.len(),
            distinct_urls: urls.len(),
            pairs: log.n_pairs(),
        }
    }
}

impl fmt::Display for LogStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "size={} user_logs={} queries={} urls={} pairs={}",
            self.total_tuples,
            self.user_logs,
            self.distinct_queries,
            self.distinct_urls,
            self.pairs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::SearchLogBuilder;
    use crate::preprocess::preprocess;

    #[test]
    fn stats_on_small_log() {
        let mut b = SearchLogBuilder::new();
        b.add("u1", "google", "google.com", 5).unwrap();
        b.add("u2", "google", "google.com", 3).unwrap();
        b.add("u2", "google", "images.google.com", 1).unwrap();
        b.add("u3", "cars", "kbb.com", 2).unwrap();
        let log = b.build();
        let s = LogStats::of(&log);
        assert_eq!(s.total_tuples, 11);
        assert_eq!(s.user_logs, 3);
        assert_eq!(s.distinct_queries, 2);
        assert_eq!(s.distinct_urls, 3);
        assert_eq!(s.pairs, 3);
    }

    #[test]
    fn stats_shrink_after_preprocess() {
        let mut b = SearchLogBuilder::new();
        b.add("u1", "google", "google.com", 5).unwrap();
        b.add("u2", "google", "google.com", 3).unwrap();
        b.add("u3", "cars", "kbb.com", 2).unwrap();
        let log = b.build();
        let (pre, _) = preprocess(&log);
        let s = LogStats::of(&pre);
        assert_eq!(s.pairs, 1);
        assert_eq!(s.distinct_queries, 1);
        assert_eq!(s.distinct_urls, 1);
        assert_eq!(s.user_logs, 2);
        assert_eq!(s.total_tuples, 8);
    }

    #[test]
    fn display_is_compact() {
        let s = LogStats {
            total_tuples: 1,
            user_logs: 2,
            distinct_queries: 3,
            distinct_urls: 4,
            pairs: 5,
        };
        assert_eq!(s.to_string(), "size=1 user_logs=2 queries=3 urls=4 pairs=5");
    }
}
