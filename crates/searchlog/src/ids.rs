//! Typed, interned identifiers.
//!
//! Users, queries, urls and query–url pairs are referenced everywhere by
//! dense `u32` indices. Newtypes keep the four id spaces from being mixed
//! up at compile time while staying `Copy` and 4 bytes wide.

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Dense index into the corresponding table.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Construct from a dense index (panics if it overflows `u32`).
            #[inline]
            pub fn from_index(i: usize) -> Self {
                $name(u32::try_from(i).expect("id overflow"))
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

define_id!(
    /// A pseudonymous user (`s_k` in the paper).
    UserId
);
define_id!(
    /// A search query (`q_i`).
    QueryId
);
define_id!(
    /// A clicked url (`u_j`).
    UrlId
);
define_id!(
    /// A distinct click-through query–url pair (`(q_i, u_j)`).
    PairId
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let u = UserId::from_index(42);
        assert_eq!(u.index(), 42);
        assert_eq!(u, UserId(42));
    }

    #[test]
    fn ordering_follows_index() {
        assert!(PairId(1) < PairId(2));
    }

    #[test]
    fn display_is_numeric() {
        assert_eq!(QueryId(7).to_string(), "7");
    }

    #[test]
    #[should_panic(expected = "id overflow")]
    fn from_index_overflow_panics() {
        let _ = UrlId::from_index(usize::MAX);
    }
}
