//! Error type for search-log construction and io.

use std::fmt;

/// Errors produced while building or parsing search logs.
#[derive(Debug)]
pub enum LogError {
    /// A record carried a zero count; counts must be strictly positive.
    ZeroCount {
        /// Line number (1-based) when parsing, 0 when built in memory.
        line: usize,
    },
    /// A malformed input line (wrong number of fields, bad integer, ...).
    Parse {
        /// Line number (1-based).
        line: usize,
        /// Human-readable description of what went wrong.
        message: String,
    },
    /// Underlying io failure.
    Io(std::io::Error),
}

impl fmt::Display for LogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogError::ZeroCount { line } if *line == 0 => {
                write!(f, "record has zero count (counts must be >= 1)")
            }
            LogError::ZeroCount { line } => {
                write!(f, "line {line}: record has zero count (counts must be >= 1)")
            }
            LogError::Parse { line, message } => write!(f, "line {line}: {message}"),
            LogError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for LogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LogError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for LogError {
    fn from(e: std::io::Error) -> Self {
        LogError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_zero_count_in_memory() {
        let e = LogError::ZeroCount { line: 0 };
        assert!(e.to_string().contains("zero count"));
        assert!(!e.to_string().contains("line"));
    }

    #[test]
    fn display_zero_count_with_line() {
        let e = LogError::ZeroCount { line: 7 };
        assert!(e.to_string().starts_with("line 7"));
    }

    #[test]
    fn display_parse() {
        let e = LogError::Parse { line: 3, message: "bad field".into() };
        assert_eq!(e.to_string(), "line 3: bad field");
    }

    #[test]
    fn io_error_has_source() {
        use std::error::Error;
        let e = LogError::from(std::io::Error::other("x"));
        assert!(e.source().is_some());
    }
}
