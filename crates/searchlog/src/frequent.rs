//! Frequent query–url pairs by minimum support (Section 5.2).
//!
//! A pair is *frequent* at minimum support `s` when its input support
//! `c_ij / |D| >= s`. The F-UMP objective preserves the supports of
//! exactly these pairs.

use crate::ids::PairId;
use crate::log::SearchLog;

/// A frequent pair together with its input support.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrequentPair {
    /// The pair.
    pub pair: PairId,
    /// Its total input count `c_ij`.
    pub count: u64,
    /// Its input support `c_ij / |D|`.
    pub support: f64,
}

/// Extract the pairs with support at least `min_support`, sorted by
/// descending count (ties by pair id).
///
/// `min_support` must be in `(0, 1]`; an empty log yields no pairs.
pub fn frequent_pairs(log: &SearchLog, min_support: f64) -> Vec<FrequentPair> {
    assert!(min_support > 0.0 && min_support <= 1.0, "support must be in (0, 1]");
    if log.size() == 0 {
        return Vec::new();
    }
    let size = log.size() as f64;
    let mut out: Vec<FrequentPair> = log
        .pairs()
        .filter_map(|pe| {
            let support = pe.total as f64 / size;
            (support >= min_support).then_some(FrequentPair {
                pair: pe.pair,
                count: pe.total,
                support,
            })
        })
        .collect();
    out.sort_unstable_by(|a, b| b.count.cmp(&a.count).then(a.pair.cmp(&b.pair)));
    out
}

/// The support of one pair in a log of size `size` (helper shared with
/// output-side support computations where `size = |O|`).
#[inline]
pub fn support(count: u64, size: u64) -> f64 {
    if size == 0 {
        0.0
    } else {
        count as f64 / size as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::SearchLogBuilder;

    fn log_with_counts(counts: &[u64]) -> SearchLog {
        let mut b = SearchLogBuilder::new();
        for (i, &c) in counts.iter().enumerate() {
            // two holders so pairs survive preprocessing notions
            let half = c / 2;
            if half > 0 {
                b.add("u1", &format!("q{i}"), &format!("url{i}"), half).unwrap();
            }
            b.add("u2", &format!("q{i}"), &format!("url{i}"), c - half).unwrap();
        }
        b.build()
    }

    #[test]
    fn threshold_is_inclusive() {
        // counts 8, 2 -> size 10; supports 0.8, 0.2
        let log = log_with_counts(&[8, 2]);
        let f = frequent_pairs(&log, 0.2);
        assert_eq!(f.len(), 2);
        let f = frequent_pairs(&log, 0.21);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].count, 8);
    }

    #[test]
    fn sorted_by_descending_count() {
        let log = log_with_counts(&[3, 9, 6]);
        let f = frequent_pairs(&log, 0.01);
        let counts: Vec<_> = f.iter().map(|p| p.count).collect();
        assert_eq!(counts, vec![9, 6, 3]);
    }

    #[test]
    fn supports_sum_to_one_at_zero_threshold() {
        let log = log_with_counts(&[5, 5, 10]);
        let f = frequent_pairs(&log, 1e-12);
        let total: f64 = f.iter().map(|p| p.support).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_log_yields_nothing() {
        let log = SearchLogBuilder::new().build();
        assert!(frequent_pairs(&log, 0.5).is_empty());
    }

    #[test]
    #[should_panic(expected = "support must be in")]
    fn zero_support_rejected() {
        let log = log_with_counts(&[1]);
        let _ = frequent_pairs(&log, 0.0);
    }

    #[test]
    fn support_helper_handles_zero_size() {
        assert_eq!(support(5, 0), 0.0);
        assert!((support(5, 10) - 0.5).abs() < 1e-15);
    }
}
