//! A single aggregated search-log tuple.

use crate::ids::{PairId, QueryId, UrlId, UserId};

/// One tuple `[s_k, q_i, u_j, c_ijk]` of a search log (Definition 1).
///
/// `count` is the click-through count of the pair `(query, url)` for
/// `user`, i.e. `c_ijk`; it is always `>= 1` in a valid log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LogRecord {
    /// Pseudonymous user id `s_k`.
    pub user: UserId,
    /// Query id `q_i`.
    pub query: QueryId,
    /// Url id `u_j`.
    pub url: UrlId,
    /// Click-through count `c_ijk` (strictly positive).
    pub count: u64,
}

/// A resolved output tuple paired with its pair id, used when iterating
/// a log in pair-major order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairRecord {
    /// Which distinct pair this belongs to.
    pub pair: PairId,
    /// Holder of the pair.
    pub user: UserId,
    /// Count `c_ijk`.
    pub count: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_is_small_and_copy() {
        // The record is in the hot path of builders and samplers; keep it
        // within two machine words of payload + count.
        assert!(std::mem::size_of::<LogRecord>() <= 24);
        let r = LogRecord { user: UserId(1), query: QueryId(2), url: UrlId(3), count: 4 };
        let r2 = r; // Copy
        assert_eq!(r, r2);
    }
}
