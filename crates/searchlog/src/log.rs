//! The aggregated, immutable search log.
//!
//! [`SearchLog`] stores the triplet histogram `c_ijk` twice, in CSR form:
//! once grouped by *pair* (needed by the multinomial sampler and the
//! pair histogram `c_ij`) and once grouped by *user* (the user logs
//! `A_k` of Definition 1, needed by the privacy-constraint builder).
//! Both views are built once by [`SearchLogBuilder`] and never mutated;
//! preprocessing produces a fresh log.

use std::collections::HashMap;

use crate::error::LogError;
use crate::ids::{PairId, QueryId, UrlId, UserId};
use crate::intern::Interner;
use crate::record::LogRecord;

/// An immutable aggregated search log `D`.
#[derive(Debug, Clone)]
pub struct SearchLog {
    users: Interner,
    queries: Interner,
    urls: Interner,

    pair_keys: Vec<(QueryId, UrlId)>,
    pair_index: HashMap<(QueryId, UrlId), PairId>,
    pair_total: Vec<u64>,

    // triplets grouped by pair (users sorted within each pair)
    pair_off: Vec<usize>,
    pair_holder_user: Vec<UserId>,
    pair_holder_count: Vec<u64>,

    // triplets grouped by user (pairs sorted within each user)
    user_off: Vec<usize>,
    user_pair: Vec<PairId>,
    user_count: Vec<u64>,

    size: u64,
}

/// One triplet `(s_k, c_ijk)` seen from a pair's holder list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TripletRef {
    /// The holder `s_k`.
    pub user: UserId,
    /// The count `c_ijk`.
    pub count: u64,
}

/// One entry `(pair, c_ijk)` of a user log `A_k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UserLogRef {
    /// The pair held by the user.
    pub pair: PairId,
    /// The count `c_ijk`.
    pub count: u64,
}

/// A pair together with its total count, convenient for iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairEntry {
    /// The pair id.
    pub pair: PairId,
    /// The total count `c_ij`.
    pub total: u64,
}

impl SearchLog {
    /// Number of distinct query–url pairs.
    pub fn n_pairs(&self) -> usize {
        self.pair_keys.len()
    }

    /// Number of interned users (including users whose log is empty,
    /// e.g. after preprocessing removed all their pairs).
    pub fn n_users(&self) -> usize {
        self.users.len()
    }

    /// Number of *non-empty* user logs (rows that generate privacy
    /// constraints).
    pub fn n_user_logs(&self) -> usize {
        (0..self.users.len()).filter(|&k| self.user_off[k] < self.user_off[k + 1]).count()
    }

    /// `|D|`: the size of the log, `Σ_ij c_ij` (total click volume).
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Total number of stored triplets `(s_k, q_i, u_j)`.
    pub fn n_triplets(&self) -> usize {
        self.pair_holder_user.len()
    }

    /// The `(query, url)` key of a pair.
    pub fn pair_key(&self, p: PairId) -> (QueryId, UrlId) {
        self.pair_keys[p.index()]
    }

    /// Total count `c_ij` of a pair.
    pub fn pair_total(&self, p: PairId) -> u64 {
        self.pair_total[p.index()]
    }

    /// Look up a pair id by its `(query, url)` key.
    pub fn pair_id(&self, q: QueryId, u: UrlId) -> Option<PairId> {
        self.pair_index.get(&(q, u)).copied()
    }

    /// Iterate all pairs with their totals.
    pub fn pairs(&self) -> impl Iterator<Item = PairEntry> + '_ {
        self.pair_total
            .iter()
            .enumerate()
            .map(|(i, &total)| PairEntry { pair: PairId::from_index(i), total })
    }

    /// The holders of a pair: every `(s_k, c_ijk)` with `c_ijk > 0`,
    /// sorted by user id.
    pub fn holders(&self, p: PairId) -> impl Iterator<Item = TripletRef> + '_ {
        let lo = self.pair_off[p.index()];
        let hi = self.pair_off[p.index() + 1];
        self.pair_holder_user[lo..hi]
            .iter()
            .zip(&self.pair_holder_count[lo..hi])
            .map(|(&user, &count)| TripletRef { user, count })
    }

    /// Number of distinct holders of a pair.
    pub fn n_holders(&self, p: PairId) -> usize {
        self.pair_off[p.index() + 1] - self.pair_off[p.index()]
    }

    /// The user log `A_k`: every `(pair, c_ijk)` of user `k`, sorted by
    /// pair id. Empty for users with no surviving pairs.
    pub fn user_log(&self, k: UserId) -> impl Iterator<Item = UserLogRef> + '_ {
        let lo = self.user_off[k.index()];
        let hi = self.user_off[k.index() + 1];
        self.user_pair[lo..hi]
            .iter()
            .zip(&self.user_count[lo..hi])
            .map(|(&pair, &count)| UserLogRef { pair, count })
    }

    /// Length of user `k`'s log (number of distinct pairs they hold).
    pub fn user_log_len(&self, k: UserId) -> usize {
        self.user_off[k.index() + 1] - self.user_off[k.index()]
    }

    /// Ids of users with non-empty logs, ascending.
    pub fn users_with_logs(&self) -> impl Iterator<Item = UserId> + '_ {
        (0..self.users.len())
            .filter(|&k| self.user_off[k] < self.user_off[k + 1])
            .map(UserId::from_index)
    }

    /// All triplets as [`LogRecord`]s, pair-major.
    pub fn records(&self) -> impl Iterator<Item = LogRecord> + '_ {
        (0..self.n_pairs()).flat_map(move |pi| {
            let p = PairId::from_index(pi);
            let (q, u) = self.pair_key(p);
            self.holders(p).map(move |t| LogRecord {
                user: t.user,
                query: q,
                url: u,
                count: t.count,
            })
        })
    }

    /// The count `c_ijk` of a specific triplet, 0 if absent.
    pub fn triplet_count(&self, p: PairId, k: UserId) -> u64 {
        let lo = self.pair_off[p.index()];
        let hi = self.pair_off[p.index() + 1];
        let slice = &self.pair_holder_user[lo..hi];
        match slice.binary_search(&k) {
            Ok(i) => self.pair_holder_count[lo + i],
            Err(_) => 0,
        }
    }

    /// User interner (ids ↔ pseudonymous strings).
    pub fn users(&self) -> &Interner {
        &self.users
    }

    /// Query interner.
    pub fn queries(&self) -> &Interner {
        &self.queries
    }

    /// Url interner.
    pub fn urls(&self) -> &Interner {
        &self.urls
    }

    /// Keep only the pairs for which `keep` is true, producing a new log
    /// with densely re-numbered pair ids. Returns the new log and the
    /// mapping `old PairId -> new PairId` (`None` when dropped).
    ///
    /// Interners are preserved, so user/query/url ids remain stable.
    pub fn retain_pairs(&self, keep: &[bool]) -> (SearchLog, Vec<Option<PairId>>) {
        assert_eq!(keep.len(), self.n_pairs(), "keep mask must cover every pair");
        let mut mapping: Vec<Option<PairId>> = vec![None; self.n_pairs()];
        let mut next = 0u32;
        for (i, &k) in keep.iter().enumerate() {
            if k {
                mapping[i] = Some(PairId(next));
                next += 1;
            }
        }
        let mut builder = SearchLogBuilder::with_vocabulary_of(self);
        for (i, m) in mapping.iter().enumerate() {
            if m.is_none() {
                continue;
            }
            let p = PairId::from_index(i);
            let (q, u) = self.pair_key(p);
            for t in self.holders(p) {
                builder
                    .add_record(LogRecord { user: t.user, query: q, url: u, count: t.count })
                    .expect("counts already validated");
            }
        }
        (builder.build(), mapping)
    }
}

/// Incremental builder aggregating duplicate `(user, query, url)` tuples.
#[derive(Debug, Default)]
pub struct SearchLogBuilder {
    users: Interner,
    queries: Interner,
    urls: Interner,
    pair_index: HashMap<(QueryId, UrlId), PairId>,
    pair_keys: Vec<(QueryId, UrlId)>,
    // (pair, user) -> count
    triplets: HashMap<(PairId, UserId), u64>,
}

impl SearchLogBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder that shares the vocabulary (interners) of an existing log,
    /// for constructing outputs over the same id space.
    pub fn with_vocabulary_of(log: &SearchLog) -> Self {
        SearchLogBuilder {
            users: log.users.clone(),
            queries: log.queries.clone(),
            urls: log.urls.clone(),
            ..Default::default()
        }
    }

    /// Builder over explicitly supplied interners.
    ///
    /// This is the merge entrypoint of the streaming ingestion engine:
    /// shards intern independently, the merger reconstructs the global
    /// first-occurrence interners, and then replays the aggregated
    /// records through [`SearchLogBuilder::add_record`]. Pair ids are
    /// assigned in record-insertion order (first occurrence of each
    /// `(query, url)` key), exactly as with [`SearchLogBuilder::add`].
    pub fn with_vocabulary(users: Interner, queries: Interner, urls: Interner) -> Self {
        SearchLogBuilder { users, queries, urls, ..Default::default() }
    }

    /// Add one tuple by strings, interning as needed. Duplicate tuples
    /// accumulate their counts.
    pub fn add(&mut self, user: &str, query: &str, url: &str, count: u64) -> Result<(), LogError> {
        if count == 0 {
            return Err(LogError::ZeroCount { line: 0 });
        }
        let user = UserId(self.users.intern(user));
        let query = QueryId(self.queries.intern(query));
        let url = UrlId(self.urls.intern(url));
        self.push(user, query, url, count);
        Ok(())
    }

    /// Add one tuple by pre-interned ids. Ids must come from this
    /// builder's vocabulary (e.g. via [`SearchLogBuilder::with_vocabulary_of`]).
    pub fn add_record(&mut self, r: LogRecord) -> Result<(), LogError> {
        if r.count == 0 {
            return Err(LogError::ZeroCount { line: 0 });
        }
        assert!(r.user.index() < self.users.len(), "user id outside vocabulary");
        assert!(r.query.index() < self.queries.len(), "query id outside vocabulary");
        assert!(r.url.index() < self.urls.len(), "url id outside vocabulary");
        self.push(r.user, r.query, r.url, r.count);
        Ok(())
    }

    fn push(&mut self, user: UserId, query: QueryId, url: UrlId, count: u64) {
        let next = PairId::from_index(self.pair_keys.len());
        let pair = *self.pair_index.entry((query, url)).or_insert_with(|| {
            self.pair_keys.push((query, url));
            next
        });
        *self.triplets.entry((pair, user)).or_insert(0) += count;
    }

    /// Number of tuples (distinct `(pair, user)` triplets) staged so far.
    pub fn n_triplets(&self) -> usize {
        self.triplets.len()
    }

    /// Finalize into an immutable [`SearchLog`].
    pub fn build(self) -> SearchLog {
        let n_pairs = self.pair_keys.len();
        let n_users = self.users.len();

        let mut triplets: Vec<(PairId, UserId, u64)> =
            self.triplets.into_iter().map(|((p, u), c)| (p, u, c)).collect();
        triplets.sort_unstable_by_key(|&(p, u, _)| (p, u));

        let mut pair_total = vec![0u64; n_pairs];
        let mut pair_off = vec![0usize; n_pairs + 1];
        let mut pair_holder_user = Vec::with_capacity(triplets.len());
        let mut pair_holder_count = Vec::with_capacity(triplets.len());
        for &(p, u, c) in &triplets {
            pair_total[p.index()] += c;
            pair_off[p.index() + 1] += 1;
            pair_holder_user.push(u);
            pair_holder_count.push(c);
        }
        for i in 0..n_pairs {
            pair_off[i + 1] += pair_off[i];
        }

        // user-major view
        let mut user_off = vec![0usize; n_users + 1];
        for &(_, u, _) in &triplets {
            user_off[u.index() + 1] += 1;
        }
        for i in 0..n_users {
            user_off[i + 1] += user_off[i];
        }
        let mut cursor = user_off.clone();
        let mut user_pair = vec![PairId(0); triplets.len()];
        let mut user_count = vec![0u64; triplets.len()];
        for &(p, u, c) in &triplets {
            let at = cursor[u.index()];
            user_pair[at] = p;
            user_count[at] = c;
            cursor[u.index()] += 1;
        }
        // pairs are already visited in ascending pair order, so each user
        // row comes out sorted by pair id.

        let size = pair_total.iter().sum();

        SearchLog {
            users: self.users,
            queries: self.queries,
            urls: self.urls,
            pair_keys: self.pair_keys,
            pair_index: self.pair_index,
            pair_total,
            pair_off,
            pair_holder_user,
            pair_holder_count,
            user_off,
            user_pair,
            user_count,
            size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The example log from Table 1 / Figure 1 of the paper.
    pub(crate) fn figure1_log() -> SearchLog {
        let mut b = SearchLogBuilder::new();
        b.add("081", "pregnancy test nyc", "medicinenet.com", 2).unwrap();
        b.add("081", "book", "amazon.com", 3).unwrap();
        b.add("081", "google", "google.com", 15).unwrap();
        b.add("082", "google", "google.com", 7).unwrap();
        b.add("082", "diabetes medecine", "walmart.com", 1).unwrap();
        b.add("082", "car price", "kbb.com", 2).unwrap();
        b.add("083", "car price", "kbb.com", 5).unwrap();
        b.add("083", "google", "google.com", 17).unwrap();
        b.add("083", "book", "amazon.com", 1).unwrap();
        b.build()
    }

    #[test]
    fn figure1_totals() {
        let log = figure1_log();
        assert_eq!(log.n_pairs(), 5);
        assert_eq!(log.n_users(), 3);
        assert_eq!(log.n_user_logs(), 3);
        assert_eq!(log.size(), 2 + 3 + 15 + 7 + 1 + 2 + 5 + 17 + 1); // 53
        let google = log
            .pair_id(
                QueryId(log.queries().get("google").unwrap()),
                UrlId(log.urls().get("google.com").unwrap()),
            )
            .unwrap();
        assert_eq!(log.pair_total(google), 39);
        assert_eq!(log.n_holders(google), 3);
    }

    #[test]
    fn duplicate_tuples_aggregate() {
        let mut b = SearchLogBuilder::new();
        b.add("u1", "q", "url", 2).unwrap();
        b.add("u1", "q", "url", 3).unwrap();
        let log = b.build();
        assert_eq!(log.n_pairs(), 1);
        assert_eq!(log.pair_total(PairId(0)), 5);
        assert_eq!(log.triplet_count(PairId(0), UserId(0)), 5);
    }

    #[test]
    fn zero_count_rejected() {
        let mut b = SearchLogBuilder::new();
        assert!(b.add("u", "q", "l", 0).is_err());
    }

    #[test]
    fn user_log_matches_pair_view() {
        let log = figure1_log();
        // Reconstruct triplets from both views; they must agree.
        let mut from_pairs: Vec<(PairId, UserId, u64)> = vec![];
        for pe in log.pairs() {
            for t in log.holders(pe.pair) {
                from_pairs.push((pe.pair, t.user, t.count));
            }
        }
        let mut from_users: Vec<(PairId, UserId, u64)> = vec![];
        for k in log.users_with_logs() {
            for e in log.user_log(k) {
                from_users.push((e.pair, k, e.count));
            }
        }
        from_pairs.sort_unstable();
        from_users.sort_unstable();
        assert_eq!(from_pairs, from_users);
    }

    #[test]
    fn holders_sorted_by_user() {
        let log = figure1_log();
        for pe in log.pairs() {
            let users: Vec<_> = log.holders(pe.pair).map(|t| t.user).collect();
            let mut sorted = users.clone();
            sorted.sort_unstable();
            assert_eq!(users, sorted);
        }
    }

    #[test]
    fn triplet_count_absent_is_zero() {
        let log = figure1_log();
        let preg = PairId(0); // first inserted
                              // user 083 never searched the first pair of user 081's log
        let u083 = UserId(log.users().get("083").unwrap());
        assert_eq!(log.triplet_count(preg, u083), 0);
    }

    #[test]
    fn retain_pairs_renumbers_densely() {
        let log = figure1_log();
        let mut keep = vec![true; log.n_pairs()];
        keep[0] = false;
        keep[3] = false;
        let (sub, mapping) = log.retain_pairs(&keep);
        assert_eq!(sub.n_pairs(), 3);
        assert_eq!(mapping.iter().filter(|m| m.is_some()).count(), 3);
        // sizes shrink by the dropped totals
        let dropped: u64 = [0usize, 3].iter().map(|&i| log.pair_total(PairId::from_index(i))).sum();
        assert_eq!(sub.size(), log.size() - dropped);
        // vocabulary is preserved
        assert_eq!(sub.n_users(), log.n_users());
        assert_eq!(sub.queries().len(), log.queries().len());
    }

    #[test]
    fn records_roundtrip_through_builder() {
        let log = figure1_log();
        let mut b = SearchLogBuilder::with_vocabulary_of(&log);
        for r in log.records() {
            b.add_record(r).unwrap();
        }
        let log2 = b.build();
        let mut r1: Vec<_> = log.records().collect();
        let mut r2: Vec<_> = log2.records().collect();
        let key = |r: &LogRecord| (r.query.0, r.url.0, r.user.0, r.count);
        r1.sort_unstable_by_key(key);
        r2.sort_unstable_by_key(key);
        assert_eq!(r1, r2);
    }

    #[test]
    #[should_panic(expected = "user id outside vocabulary")]
    fn add_record_requires_vocabulary() {
        let mut b = SearchLogBuilder::new();
        let _ =
            b.add_record(LogRecord { user: UserId(0), query: QueryId(0), url: UrlId(0), count: 1 });
    }
}
