//! Condition-1 preprocessing: removal of *unique* query–url pairs.
//!
//! Theorem 1 / Condition 1 of the paper: if some user holds a pair's
//! entire count (`∃k: c_ijk = c_ij`), its output count must be 0 —
//! otherwise the probability of sampling that user (Eq. 2) cannot be
//! bounded. Since stored counts are strictly positive, a pair satisfies
//! the condition exactly when it has a *single holder*, so preprocessing
//! removes every pair held by one user only.

use crate::ids::PairId;
use crate::log::SearchLog;

/// Outcome of [`preprocess`].
#[derive(Debug, Clone)]
pub struct PreprocessReport {
    /// Number of pairs removed (held entirely by a single user).
    pub removed_pairs: usize,
    /// Click volume removed, `Σ c_ij` over removed pairs.
    pub removed_count: u64,
    /// Users whose log became empty (they no longer generate privacy
    /// constraints).
    pub emptied_users: usize,
    /// Mapping `old PairId -> new PairId` (`None` when removed).
    pub pair_mapping: Vec<Option<PairId>>,
}

/// Remove all unique pairs from `log`, returning the reduced log and a
/// report. Idempotent: preprocessing a preprocessed log is the identity
/// whenever no pair became single-holder (holder sets are untouched, so
/// that is always the case).
pub fn preprocess(log: &SearchLog) -> (SearchLog, PreprocessReport) {
    let keep: Vec<bool> =
        (0..log.n_pairs()).map(|i| log.n_holders(PairId::from_index(i)) > 1).collect();

    let removed_pairs = keep.iter().filter(|&&k| !k).count();
    let removed_count: u64 = keep
        .iter()
        .enumerate()
        .filter(|(_, &k)| !k)
        .map(|(i, _)| log.pair_total(PairId::from_index(i)))
        .sum();

    let before_users = log.n_user_logs();
    let (reduced, pair_mapping) = log.retain_pairs(&keep);
    let emptied_users = before_users - reduced.n_user_logs();

    (reduced, PreprocessReport { removed_pairs, removed_count, emptied_users, pair_mapping })
}

/// Check whether a log is already preprocessed (no single-holder pairs).
pub fn is_preprocessed(log: &SearchLog) -> bool {
    (0..log.n_pairs()).all(|i| log.n_holders(PairId::from_index(i)) > 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::SearchLogBuilder;

    fn sample_log() -> SearchLog {
        let mut b = SearchLogBuilder::new();
        // shared pair: held by u1, u2
        b.add("u1", "google", "google.com", 5).unwrap();
        b.add("u2", "google", "google.com", 3).unwrap();
        // unique pair of u1
        b.add("u1", "1 washington ave", "maps.google.com", 4).unwrap();
        // unique pair of u3 (their only pair -> u3 becomes empty)
        b.add("u3", "rare disease", "medicinenet.com", 1).unwrap();
        b.build()
    }

    #[test]
    fn removes_single_holder_pairs() {
        let log = sample_log();
        let (pre, rep) = preprocess(&log);
        assert_eq!(rep.removed_pairs, 2);
        assert_eq!(rep.removed_count, 5);
        assert_eq!(pre.n_pairs(), 1);
        assert_eq!(pre.size(), 8);
        assert!(is_preprocessed(&pre));
    }

    #[test]
    fn reports_emptied_users() {
        let log = sample_log();
        let (pre, rep) = preprocess(&log);
        assert_eq!(rep.emptied_users, 1);
        assert_eq!(pre.n_user_logs(), 2);
        // interner still knows u3
        assert_eq!(pre.n_users(), 3);
    }

    #[test]
    fn idempotent() {
        let log = sample_log();
        let (pre, _) = preprocess(&log);
        let (pre2, rep2) = preprocess(&pre);
        assert_eq!(rep2.removed_pairs, 0);
        assert_eq!(rep2.removed_count, 0);
        assert_eq!(pre2.size(), pre.size());
        assert_eq!(pre2.n_pairs(), pre.n_pairs());
    }

    #[test]
    fn mapping_covers_all_pairs() {
        let log = sample_log();
        let (_, rep) = preprocess(&log);
        assert_eq!(rep.pair_mapping.len(), log.n_pairs());
        assert_eq!(rep.pair_mapping.iter().filter(|m| m.is_some()).count(), 1);
    }

    #[test]
    fn empty_log_preprocesses_to_empty() {
        let log = SearchLogBuilder::new().build();
        let (pre, rep) = preprocess(&log);
        assert_eq!(pre.n_pairs(), 0);
        assert_eq!(rep.removed_pairs, 0);
        assert!(is_preprocessed(&pre));
    }
}
