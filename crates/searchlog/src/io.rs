//! Reading and writing search logs.
//!
//! Two formats are supported:
//!
//! * **Native TSV** — `user \t query \t url \t count`, one aggregated
//!   tuple per line. This is the sanitized-output format: it has the
//!   identical schema as the input (the paper's headline property).
//! * **AOL format** — `AnonID \t Query \t QueryTime \t ItemRank \t
//!   ClickURL` as released in 2006. Only rows with a click (non-empty
//!   `ClickURL`) are kept, matching the paper's "only collect the tuples
//!   with clicks"; each click row contributes count 1 and duplicates
//!   aggregate.

use std::io::{BufRead, Write};

use crate::error::LogError;
use crate::ids::PairId;
use crate::log::{SearchLog, SearchLogBuilder};

/// Parse the native 4-column TSV format.
pub fn read_tsv<R: BufRead>(reader: R) -> Result<SearchLog, LogError> {
    let mut b = SearchLogBuilder::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut f = line.split('\t');
        let (user, query, url, count) = match (f.next(), f.next(), f.next(), f.next(), f.next()) {
            (Some(u), Some(q), Some(l), Some(c), None) => (u, q, l, c),
            _ => {
                return Err(LogError::Parse {
                    line: lineno + 1,
                    message: "expected 4 tab-separated fields: user, query, url, count".into(),
                })
            }
        };
        let count: u64 = count.parse().map_err(|e| LogError::Parse {
            line: lineno + 1,
            message: format!("bad count {count:?}: {e}"),
        })?;
        if count == 0 {
            return Err(LogError::ZeroCount { line: lineno + 1 });
        }
        b.add(user, query, url, count)?;
    }
    Ok(b.build())
}

/// Serialize a log in the native 4-column TSV format, pair-major, users
/// ascending within each pair.
pub fn write_tsv<W: Write>(log: &SearchLog, mut w: W) -> Result<(), LogError> {
    for i in 0..log.n_pairs() {
        let p = PairId::from_index(i);
        let (q, u) = log.pair_key(p);
        let query = log.queries().resolve(q.0);
        let url = log.urls().resolve(u.0);
        for t in log.holders(p) {
            let user = log.users().resolve(t.user.0);
            writeln!(w, "{user}\t{query}\t{url}\t{}", t.count)?;
        }
    }
    Ok(())
}

/// Parse the 2006 AOL research-collection format.
///
/// Columns: `AnonID, Query, QueryTime, ItemRank, ClickURL`. A header
/// line starting with `AnonID` is skipped. Rows without a `ClickURL`
/// (pure queries, no click) are ignored; query time and item rank are
/// dropped, as in the paper ("we ignore query time and item rank").
pub fn read_aol<R: BufRead>(reader: R) -> Result<SearchLog, LogError> {
    let mut b = SearchLogBuilder::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            continue;
        }
        if lineno == 0 && line.starts_with("AnonID") {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() < 2 {
            return Err(LogError::Parse {
                line: lineno + 1,
                message: "expected at least AnonID and Query fields".into(),
            });
        }
        // Click rows have 5 fields with a non-empty url; query-only rows
        // have 3 (or trailing empties).
        let url = fields.get(4).copied().unwrap_or("");
        if url.is_empty() {
            continue;
        }
        let user = fields[0];
        let query = fields[1].trim();
        if query.is_empty() {
            continue;
        }
        b.add(user, query, url, 1)?;
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn tsv_roundtrip() {
        let text = "u1\tgoogle\tgoogle.com\t5\nu2\tgoogle\tgoogle.com\t3\nu2\tcars\tkbb.com\t1\n";
        let log = read_tsv(Cursor::new(text)).unwrap();
        assert_eq!(log.size(), 9);
        assert_eq!(log.n_pairs(), 2);
        let mut out = Vec::new();
        write_tsv(&log, &mut out).unwrap();
        let log2 = read_tsv(Cursor::new(out)).unwrap();
        assert_eq!(log2.size(), log.size());
        assert_eq!(log2.n_pairs(), log.n_pairs());
        assert_eq!(log2.n_user_logs(), log.n_user_logs());
    }

    #[test]
    fn tsv_skips_comments_and_blanks() {
        let text = "# header\n\nu1\tq\tl\t2\n";
        let log = read_tsv(Cursor::new(text)).unwrap();
        assert_eq!(log.size(), 2);
    }

    #[test]
    fn tsv_rejects_bad_field_count() {
        let err = read_tsv(Cursor::new("u1\tq\tl\n")).unwrap_err();
        assert!(err.to_string().contains("4 tab-separated"));
    }

    #[test]
    fn tsv_rejects_bad_count() {
        let err = read_tsv(Cursor::new("u1\tq\tl\tNaN\n")).unwrap_err();
        assert!(err.to_string().contains("bad count"));
    }

    #[test]
    fn tsv_rejects_zero_count() {
        let err = read_tsv(Cursor::new("u1\tq\tl\t0\n")).unwrap_err();
        assert!(matches!(err, LogError::ZeroCount { line: 1 }));
    }

    #[test]
    fn aol_keeps_only_clicks_and_aggregates() {
        let text = "AnonID\tQuery\tQueryTime\tItemRank\tClickURL\n\
                    142\tpizza\t2006-03-01 10:00:00\t\t\n\
                    142\tpizza\t2006-03-01 10:01:00\t1\thttp://www.pizzahut.com\n\
                    142\tpizza\t2006-03-02 11:00:00\t1\thttp://www.pizzahut.com\n\
                    217\tpizza\t2006-03-04 09:00:00\t2\thttp://www.pizzahut.com\n";
        let log = read_aol(Cursor::new(text)).unwrap();
        assert_eq!(log.n_pairs(), 1);
        assert_eq!(log.size(), 3);
        assert_eq!(log.n_user_logs(), 2);
    }

    #[test]
    fn aol_rejects_truncated_line() {
        let err = read_aol(Cursor::new("只\n".replace('只', "onefield"))).unwrap_err();
        assert!(err.to_string().contains("AnonID"));
    }

    #[test]
    fn aol_skips_empty_queries() {
        let text = "9\t \t2006-03-01 10:01:00\t1\thttp://x.com\n";
        let log = read_aol(Cursor::new(text)).unwrap();
        assert_eq!(log.n_pairs(), 0);
    }
}
