//! Reading and writing search logs.
//!
//! Two formats are supported:
//!
//! * **Native TSV** — `user \t query \t url \t count`, one aggregated
//!   tuple per line. This is the sanitized-output format: it has the
//!   identical schema as the input (the paper's headline property).
//! * **AOL format** — `AnonID \t Query \t QueryTime \t ItemRank \t
//!   ClickURL` as released in 2006. Only rows with a click (non-empty
//!   `ClickURL`) are kept, matching the paper's "only collect the tuples
//!   with clicks"; each click row contributes count 1 and duplicates
//!   aggregate.
//!
//! TSV parsing is exposed at two altitudes: [`read_tsv`] materializes a
//! whole [`SearchLog`] in one shot, and [`TsvStream`] yields parsed
//! [`RawRecord`]s one line (or one bounded chunk) at a time so callers
//! like `dpsan-stream` can ingest logs far larger than memory. Both run
//! the identical parser, so a streamed-then-merged log can be proven
//! equal to the one-shot build.

use std::io::{BufRead, Write};

use crate::error::LogError;
use crate::ids::PairId;
use crate::log::{SearchLog, SearchLogBuilder};

/// One parsed-but-uninterned line of the native TSV format: owned
/// strings, exactly as they appeared in the file.
///
/// This is the unit the streaming reader hands out; interning happens
/// downstream (per shard, in `dpsan-stream`) so the reader itself holds
/// no vocabulary state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawRecord {
    /// Pseudonymous user id string.
    pub user: String,
    /// Query string.
    pub query: String,
    /// Clicked url string.
    pub url: String,
    /// Click-through count (strictly positive).
    pub count: u64,
}

/// An incremental reader of the native 4-column TSV format.
///
/// Yields one [`RawRecord`] per data line (comments and blank lines are
/// skipped), in file order, without buffering more than the current
/// line. [`TsvStream::read_chunk`] bounds the resident row count for
/// chunked intake.
#[derive(Debug)]
pub struct TsvStream<R> {
    reader: R,
    lineno: usize,
    // reusable line buffer: one allocation for the whole stream, not
    // one per physical line (this is the ingestion hot loop)
    line: String,
}

impl<R: BufRead> TsvStream<R> {
    /// Wrap a buffered reader.
    pub fn new(reader: R) -> Self {
        TsvStream { reader, lineno: 0, line: String::new() }
    }

    /// The number of physical lines consumed so far (including skipped
    /// comments/blanks).
    pub fn lines_read(&self) -> usize {
        self.lineno
    }

    /// Read up to `max` records into `buf` (which is cleared first).
    /// Returns the number of records read; `0` means end of input.
    ///
    /// This is the bounded-memory intake primitive: a caller that
    /// re-uses one buffer never holds more than `max` raw rows at once.
    pub fn read_chunk(&mut self, buf: &mut Vec<RawRecord>, max: usize) -> Result<usize, LogError> {
        buf.clear();
        while buf.len() < max {
            match self.next() {
                Some(rec) => buf.push(rec?),
                None => break,
            }
        }
        Ok(buf.len())
    }

    fn parse_line(&self, line: &str) -> Result<Option<RawRecord>, LogError> {
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() || line.starts_with('#') {
            return Ok(None);
        }
        let mut f = line.split('\t');
        let (user, query, url, count) = match (f.next(), f.next(), f.next(), f.next(), f.next()) {
            (Some(u), Some(q), Some(l), Some(c), None) => (u, q, l, c),
            _ => {
                return Err(LogError::Parse {
                    line: self.lineno,
                    message: "expected 4 tab-separated fields: user, query, url, count".into(),
                })
            }
        };
        let count: u64 = count.parse().map_err(|e| LogError::Parse {
            line: self.lineno,
            message: format!("bad count {count:?}: {e}"),
        })?;
        if count == 0 {
            return Err(LogError::ZeroCount { line: self.lineno });
        }
        Ok(Some(RawRecord {
            user: user.to_string(),
            query: query.to_string(),
            url: url.to_string(),
            count,
        }))
    }
}

impl<R: BufRead> Iterator for TsvStream<R> {
    type Item = Result<RawRecord, LogError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            self.line.clear();
            match self.reader.read_line(&mut self.line) {
                Ok(0) => return None,
                Ok(_) => {}
                Err(e) => return Some(Err(e.into())),
            }
            self.lineno += 1;
            match self.parse_line(&self.line) {
                Ok(Some(rec)) => return Some(Ok(rec)),
                Ok(None) => continue,
                Err(e) => return Some(Err(e)),
            }
        }
    }
}

/// Parse the native 4-column TSV format into a whole [`SearchLog`].
///
/// Built on [`TsvStream`], so the one-shot and streaming paths share
/// one parser; interning order is file order (first occurrence).
pub fn read_tsv<R: BufRead>(reader: R) -> Result<SearchLog, LogError> {
    let mut b = SearchLogBuilder::new();
    for rec in TsvStream::new(reader) {
        let r = rec?;
        b.add(&r.user, &r.query, &r.url, r.count)?;
    }
    Ok(b.build())
}

/// Serialize a log in the native 4-column TSV format, pair-major, users
/// ascending within each pair.
pub fn write_tsv<W: Write>(log: &SearchLog, mut w: W) -> Result<(), LogError> {
    for i in 0..log.n_pairs() {
        let p = PairId::from_index(i);
        let (q, u) = log.pair_key(p);
        let query = log.queries().resolve(q.0);
        let url = log.urls().resolve(u.0);
        for t in log.holders(p) {
            let user = log.users().resolve(t.user.0);
            writeln!(w, "{user}\t{query}\t{url}\t{}", t.count)?;
        }
    }
    Ok(())
}

/// Parse the 2006 AOL research-collection format.
///
/// Columns: `AnonID, Query, QueryTime, ItemRank, ClickURL`. A header
/// line starting with `AnonID` is skipped. Rows without a `ClickURL`
/// (pure queries, no click) are ignored; query time and item rank are
/// dropped, as in the paper ("we ignore query time and item rank").
pub fn read_aol<R: BufRead>(reader: R) -> Result<SearchLog, LogError> {
    let mut b = SearchLogBuilder::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            continue;
        }
        if lineno == 0 && line.starts_with("AnonID") {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() < 2 {
            return Err(LogError::Parse {
                line: lineno + 1,
                message: "expected at least AnonID and Query fields".into(),
            });
        }
        // Click rows have 5 fields with a non-empty url; query-only rows
        // have 3 (or trailing empties).
        let url = fields.get(4).copied().unwrap_or("");
        if url.is_empty() {
            continue;
        }
        let user = fields[0];
        let query = fields[1].trim();
        if query.is_empty() {
            continue;
        }
        b.add(user, query, url, 1)?;
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn tsv_roundtrip() {
        let text = "u1\tgoogle\tgoogle.com\t5\nu2\tgoogle\tgoogle.com\t3\nu2\tcars\tkbb.com\t1\n";
        let log = read_tsv(Cursor::new(text)).unwrap();
        assert_eq!(log.size(), 9);
        assert_eq!(log.n_pairs(), 2);
        let mut out = Vec::new();
        write_tsv(&log, &mut out).unwrap();
        let log2 = read_tsv(Cursor::new(out)).unwrap();
        assert_eq!(log2.size(), log.size());
        assert_eq!(log2.n_pairs(), log.n_pairs());
        assert_eq!(log2.n_user_logs(), log.n_user_logs());
    }

    #[test]
    fn tsv_skips_comments_and_blanks() {
        let text = "# header\n\nu1\tq\tl\t2\n";
        let log = read_tsv(Cursor::new(text)).unwrap();
        assert_eq!(log.size(), 2);
    }

    #[test]
    fn tsv_rejects_bad_field_count() {
        let err = read_tsv(Cursor::new("u1\tq\tl\n")).unwrap_err();
        assert!(err.to_string().contains("4 tab-separated"));
    }

    #[test]
    fn tsv_rejects_bad_count() {
        let err = read_tsv(Cursor::new("u1\tq\tl\tNaN\n")).unwrap_err();
        assert!(err.to_string().contains("bad count"));
    }

    #[test]
    fn tsv_rejects_zero_count() {
        let err = read_tsv(Cursor::new("u1\tq\tl\t0\n")).unwrap_err();
        assert!(matches!(err, LogError::ZeroCount { line: 1 }));
    }

    #[test]
    fn aol_keeps_only_clicks_and_aggregates() {
        let text = "AnonID\tQuery\tQueryTime\tItemRank\tClickURL\n\
                    142\tpizza\t2006-03-01 10:00:00\t\t\n\
                    142\tpizza\t2006-03-01 10:01:00\t1\thttp://www.pizzahut.com\n\
                    142\tpizza\t2006-03-02 11:00:00\t1\thttp://www.pizzahut.com\n\
                    217\tpizza\t2006-03-04 09:00:00\t2\thttp://www.pizzahut.com\n";
        let log = read_aol(Cursor::new(text)).unwrap();
        assert_eq!(log.n_pairs(), 1);
        assert_eq!(log.size(), 3);
        assert_eq!(log.n_user_logs(), 2);
    }

    #[test]
    fn aol_rejects_truncated_line() {
        let err = read_aol(Cursor::new("只\n".replace('只', "onefield"))).unwrap_err();
        assert!(err.to_string().contains("AnonID"));
    }

    #[test]
    fn aol_skips_empty_queries() {
        let text = "9\t \t2006-03-01 10:01:00\t1\thttp://x.com\n";
        let log = read_aol(Cursor::new(text)).unwrap();
        assert_eq!(log.n_pairs(), 0);
    }

    #[test]
    fn stream_yields_records_in_file_order() {
        let text = "# header\nu1\tq1\tl1\t5\n\nu2\tq2\tl2\t3\n";
        let recs: Result<Vec<_>, _> = TsvStream::new(Cursor::new(text)).collect();
        let recs = recs.unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].user, "u1");
        assert_eq!(recs[0].count, 5);
        assert_eq!(recs[1].query, "q2");
    }

    #[test]
    fn stream_chunking_bounds_resident_rows() {
        let text: String = (0..10).map(|i| format!("u{i}\tq\tl\t1\n")).collect();
        let mut stream = TsvStream::new(Cursor::new(text));
        let mut buf = Vec::new();
        let mut total = 0;
        let mut chunks = 0;
        loop {
            let n = stream.read_chunk(&mut buf, 4).unwrap();
            if n == 0 {
                break;
            }
            assert!(n <= 4, "chunk never exceeds the requested bound");
            total += n;
            chunks += 1;
        }
        assert_eq!(total, 10);
        assert_eq!(chunks, 3);
        assert_eq!(stream.lines_read(), 10);
    }

    #[test]
    fn stream_errors_carry_line_numbers() {
        let text = "u1\tq\tl\t2\nu2\tq\tl\t0\n";
        let err = TsvStream::new(Cursor::new(text)).collect::<Result<Vec<_>, _>>().unwrap_err();
        assert!(matches!(err, LogError::ZeroCount { line: 2 }));
    }

    #[test]
    fn stream_and_one_shot_agree() {
        let text = "u1\tgoogle\tgoogle.com\t5\nu2\tgoogle\tgoogle.com\t3\nu2\tcars\tkbb.com\t1\n";
        let via_stream = {
            let mut b = SearchLogBuilder::new();
            for rec in TsvStream::new(Cursor::new(text)) {
                let r = rec.unwrap();
                b.add(&r.user, &r.query, &r.url, r.count).unwrap();
            }
            b.build()
        };
        let one_shot = read_tsv(Cursor::new(text)).unwrap();
        assert_eq!(via_stream.size(), one_shot.size());
        assert_eq!(via_stream.n_pairs(), one_shot.n_pairs());
        let r1: Vec<_> = via_stream.records().collect();
        let r2: Vec<_> = one_shot.records().collect();
        assert_eq!(r1, r2, "identical interning order, ids and counts");
    }
}
