//! A small string interner.
//!
//! Maps strings to dense `u32` ids and back. Used for user-IDs, query
//! strings and urls so the hot histogram code only touches integers.

use std::collections::HashMap;

/// String interner with dense ids.
///
/// Ids are handed out in insertion order starting from 0, so they can be
/// used directly as indices into side tables.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    map: HashMap<Box<str>, u32>,
    strings: Vec<Box<str>>,
}

impl Interner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an interner with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Interner { map: HashMap::with_capacity(cap), strings: Vec::with_capacity(cap) }
    }

    /// Intern `s`, returning its dense id (existing or freshly assigned).
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.map.get(s) {
            return id;
        }
        let id = u32::try_from(self.strings.len()).expect("interner overflow");
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.map.insert(boxed, id);
        id
    }

    /// Look up an already-interned string without inserting.
    pub fn get(&self, s: &str) -> Option<u32> {
        self.map.get(s).copied()
    }

    /// Resolve an id back to its string. Panics on out-of-range ids.
    pub fn resolve(&self, id: u32) -> &str {
        &self.strings[id as usize]
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterate over `(id, string)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.strings.iter().enumerate().map(|(i, s)| (i as u32, s.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("pizza");
        let b = i.intern("pizza");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn ids_are_dense_in_insertion_order() {
        let mut i = Interner::new();
        assert_eq!(i.intern("a"), 0);
        assert_eq!(i.intern("b"), 1);
        assert_eq!(i.intern("a"), 0);
        assert_eq!(i.intern("c"), 2);
    }

    #[test]
    fn resolve_roundtrips() {
        let mut i = Interner::new();
        let id = i.intern("www.honda.com");
        assert_eq!(i.resolve(id), "www.honda.com");
    }

    #[test]
    fn get_does_not_insert() {
        let mut i = Interner::new();
        assert_eq!(i.get("x"), None);
        i.intern("x");
        assert_eq!(i.get("x"), Some(0));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn iter_yields_in_order() {
        let mut i = Interner::new();
        i.intern("a");
        i.intern("b");
        let v: Vec<_> = i.iter().map(|(id, s)| (id, s.to_string())).collect();
        assert_eq!(v, vec![(0, "a".to_string()), (1, "b".to_string())]);
    }

    #[test]
    fn empty_reports_empty() {
        assert!(Interner::new().is_empty());
    }
}
