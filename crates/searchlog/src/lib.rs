//! # dpsan-searchlog
//!
//! Search-log substrate for the `dpsan` workspace: the data model of
//! *Differentially Private Search Log Sanitization with Optimal Output
//! Utility* (Hong, Vaidya, Lu, Wu — EDBT 2012).
//!
//! A search log `D` is a multiset of tuples `(s_k, q_i, u_j, c_ijk)`:
//! pseudonymous user-ID, query, clicked url, and the click-through count
//! of the query–url *pair* `(q_i, u_j)` for that user. This crate
//! provides:
//!
//! * interned, typed identifiers ([`ids`], [`intern`]),
//! * an immutable aggregated [`SearchLog`] with both the pair histogram
//!   `c_ij` and the triplet histogram `c_ijk` in CSR form, indexed by
//!   pair *and* by user (the user log `A_k` of Definition 1),
//! * Condition-1 preprocessing (removal of pairs held entirely by one
//!   user) in [`preprocess`](preprocess()),
//! * Table-3 style dataset statistics in [`stats`],
//! * frequent-pair (support) extraction in [`frequent`],
//! * AOL-format and native TSV io in [`io`], including the chunked
//!   [`TsvStream`] reader that feeds the `dpsan-stream` bounded-memory
//!   ingestion engine.
//!
//! Everything downstream (privacy constraints, utility-maximizing
//! problems, multinomial sampling) is a pure function of the histograms
//! stored here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod frequent;
pub mod ids;
pub mod intern;
pub mod io;
pub mod log;
pub mod preprocess;
pub mod record;
pub mod stats;

pub use error::LogError;
pub use frequent::{frequent_pairs, FrequentPair};
pub use ids::{PairId, QueryId, UrlId, UserId};
pub use intern::Interner;
pub use io::{RawRecord, TsvStream};
pub use log::{PairEntry, SearchLog, SearchLogBuilder, TripletRef, UserLogRef};
pub use preprocess::{preprocess, PreprocessReport};
pub use record::LogRecord;
pub use stats::LogStats;
