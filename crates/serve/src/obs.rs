//! Serve-loop telemetry handles.
//!
//! | series | type | meaning |
//! |---|---|---|
//! | `dpsan_releases_total` | counter | successful re-releases |
//! | `dpsan_release_seconds` | histogram | full re-release latency (merge + preprocess + solve + sample) |
//! | `dpsan_release_rows` | gauge | input rows covered by the most recent release |
//! | `dpsan_release_refusals_total` | counter | releases refused by the lifetime budget |
//! | `dpsan_follow_lag_bytes` | gauge | bytes appended to the followed file but not yet consumed |
//! | `dpsan_serve_heartbeats_total` | counter | idle poll-loop ticks (the serve loop is alive but has nothing to do) |
//!
//! The serve loop also emits trace events: an `Info` span per release
//! and a `Debug` `heartbeat` event per idle tick (set
//! `DPSAN_TRACE=serve=debug` to see the loop breathing).

use dpsan_obs::histogram::Histogram;
use dpsan_obs::{default_latency_bounds, global, Counter, Gauge};
use std::sync::{Arc, OnceLock};

/// Successful re-releases.
pub fn releases_total() -> &'static Counter {
    static H: OnceLock<Counter> = OnceLock::new();
    H.get_or_init(|| global().counter("dpsan_releases_total"))
}

/// Full re-release latency.
pub fn release_seconds() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| global().histogram("dpsan_release_seconds", default_latency_bounds()))
}

/// Input rows covered by the most recent release.
pub fn release_rows() -> &'static Gauge {
    static H: OnceLock<Gauge> = OnceLock::new();
    H.get_or_init(|| global().gauge("dpsan_release_rows"))
}

/// Releases refused by the lifetime budget.
pub fn release_refusals_total() -> &'static Counter {
    static H: OnceLock<Counter> = OnceLock::new();
    H.get_or_init(|| global().counter("dpsan_release_refusals_total"))
}

/// Bytes appended to the followed file but not yet consumed.
pub fn follow_lag_bytes() -> &'static Gauge {
    static H: OnceLock<Gauge> = OnceLock::new();
    H.get_or_init(|| global().gauge("dpsan_follow_lag_bytes"))
}

/// Idle poll-loop ticks.
pub fn heartbeats_total() -> &'static Counter {
    static H: OnceLock<Counter> = OnceLock::new();
    H.get_or_init(|| global().counter("dpsan_serve_heartbeats_total"))
}
