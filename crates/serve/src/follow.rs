//! Tailing a growing TSV file without ever splitting a line.
//!
//! A writer appending to the log may be mid-line when we poll, and a
//! partial trailing line would misparse (`"user42\tqu"` looks like a
//! malformed record, or worse, a well-formed prefix of one). The
//! reader therefore only ever *consumes* through the last newline it
//! has seen: bytes after it stay in the file, unconsumed, and are
//! re-read on the next poll once the writer finishes the line. The
//! consumed offset only moves forward over complete lines, so every
//! byte is parsed exactly once and a crash loses at most the
//! not-yet-released suffix — never corrupts what was already ingested.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// Incremental reader over an append-only file, line-atomic.
#[derive(Debug)]
pub struct FollowReader {
    path: PathBuf,
    file: File,
    /// Bytes consumed so far — always at a line boundary.
    offset: u64,
}

impl FollowReader {
    /// Open `path` for following, starting at the beginning (existing
    /// content counts as the first appended chunk).
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::open(&path)?;
        Ok(FollowReader { path, file, offset: 0 })
    }

    /// The file being followed.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes consumed so far (always ends on a newline).
    pub fn consumed(&self) -> u64 {
        self.offset
    }

    /// Read everything appended since the last poll, truncated to the
    /// last complete line. Returns `None` when no complete new line is
    /// available. The returned buffer always ends with `\n`.
    pub fn poll(&mut self) -> std::io::Result<Option<Vec<u8>>> {
        self.file.seek(SeekFrom::Start(self.offset))?;
        let mut buf = Vec::new();
        self.file.read_to_end(&mut buf)?;
        // consume only through the last newline; the partial tail (a
        // line the writer has not finished) is re-read next poll
        match buf.iter().rposition(|&b| b == b'\n') {
            Some(last_nl) => {
                buf.truncate(last_nl + 1);
                self.offset += buf.len() as u64;
                Ok(Some(buf))
            }
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmpfile(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("dpsan-serve-follow-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    #[test]
    fn partial_lines_are_never_consumed() {
        let path = tmpfile("partial");
        let mut w = File::create(&path).unwrap();
        w.write_all(b"u1\tq\tl\t1\nu2\tq\tl").unwrap(); // writer mid-line
        w.flush().unwrap();

        let mut r = FollowReader::open(&path).unwrap();
        let chunk = r.poll().unwrap().expect("one complete line available");
        assert_eq!(chunk, b"u1\tq\tl\t1\n");
        assert_eq!(r.consumed(), chunk.len() as u64);
        // nothing new and the partial tail stays invisible
        assert!(r.poll().unwrap().is_none());

        // the writer finishes the line and appends another
        w.write_all(b"\t2\nu3\tq\tl\t3\n").unwrap();
        w.flush().unwrap();
        let chunk = r.poll().unwrap().expect("two more complete lines");
        assert_eq!(chunk, b"u2\tq\tl\t2\nu3\tq\tl\t3\n");
        assert!(r.poll().unwrap().is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_polls_none() {
        let path = tmpfile("empty");
        File::create(&path).unwrap();
        let mut r = FollowReader::open(&path).unwrap();
        assert!(r.poll().unwrap().is_none());
        assert_eq!(r.consumed(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn consumes_across_many_appends_exactly_once() {
        let path = tmpfile("appends");
        let mut w = File::create(&path).unwrap();
        let mut r = FollowReader::open(&path).unwrap();
        let mut seen = Vec::new();
        for i in 0..10 {
            w.write_all(format!("u{i}\tq\tl\t{}\n", i + 1).as_bytes()).unwrap();
            w.flush().unwrap();
            if let Some(chunk) = r.poll().unwrap() {
                seen.extend_from_slice(&chunk);
            }
        }
        let expected: String = (0..10).map(|i| format!("u{i}\tq\tl\t{}\n", i + 1)).collect();
        assert_eq!(seen, expected.as_bytes());
        std::fs::remove_file(&path).ok();
    }
}
