//! Tailing a growing TSV file without ever splitting a line.
//!
//! A writer appending to the log may be mid-line when we poll, and a
//! partial trailing line would misparse (`"user42\tqu"` looks like a
//! malformed record, or worse, a well-formed prefix of one). The
//! reader therefore only ever *consumes* through the last newline it
//! has seen: bytes after it stay in the file, unconsumed, and are
//! re-read on the next poll once the writer finishes the line. The
//! consumed offset only moves forward over complete lines, so every
//! byte is parsed exactly once and a crash loses at most the
//! not-yet-released suffix — never corrupts what was already ingested.
//!
//! ## Truncation and rotation
//!
//! An append-only contract can be broken behind our back: a log
//! rotation replaces the file at the path with a fresh (usually
//! shorter) one, and an accidental truncation shrinks the file in
//! place. Both are fatal for offset-based tailing — byte `offset` of
//! the *new* content is unrelated to byte `offset` of what was
//! ingested, so silently reading on would splice two histories
//! together (or re-ingest data, double-counting users). [`poll`]
//! therefore checks for both before every read and fails with a
//! [`FollowError`]-wrapped [`std::io::Error`] naming the file, the
//! offsets involved, and what to do about it. The operator decides:
//! restart over the rotated file ([`reopen`]) or resume the original
//! history elsewhere. Nothing is consumed on the error path.
//!
//! [`poll`]: FollowReader::poll
//! [`reopen`]: FollowReader::reopen

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// Why a followed file can no longer be tailed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FollowError {
    /// The file shrank below the consumed offset (in-place truncation).
    Truncated {
        /// Bytes consumed so far.
        consumed: u64,
        /// Current file length (smaller than `consumed`).
        len: u64,
    },
    /// The path now names a different file (log rotation).
    Rotated,
}

impl std::fmt::Display for FollowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FollowError::Truncated { consumed, len } => write!(
                f,
                "followed file truncated: {consumed} bytes were consumed but the file now holds \
                 {len} — the ingested history no longer exists on disk; reopen to restart from \
                 the new content, or restore the original file to resume"
            ),
            FollowError::Rotated => write!(
                f,
                "followed file was rotated: the path now names a different file, so the \
                 consumed offset is meaningless there; reopen to follow the new file from the \
                 start, or point the service at the rotated-out file to resume"
            ),
        }
    }
}

impl std::error::Error for FollowError {}

impl FollowError {
    fn into_io(self) -> std::io::Error {
        std::io::Error::new(std::io::ErrorKind::InvalidData, self)
    }
}

/// Incremental reader over an append-only file, line-atomic.
#[derive(Debug)]
pub struct FollowReader {
    path: PathBuf,
    file: File,
    /// Bytes consumed so far — always at a line boundary.
    offset: u64,
    /// Identity of the opened file, for rotation detection.
    identity: FileIdentity,
}

/// What pins "the same file": the inode on unix, and nothing portable
/// elsewhere (rotation then reduces to the shrink check).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FileIdentity {
    #[cfg(unix)]
    ino: u64,
    #[cfg(unix)]
    dev: u64,
}

impl FileIdentity {
    fn of(file: &File) -> std::io::Result<Self> {
        #[cfg(unix)]
        {
            use std::os::unix::fs::MetadataExt;
            let meta = file.metadata()?;
            Ok(FileIdentity { ino: meta.ino(), dev: meta.dev() })
        }
        #[cfg(not(unix))]
        {
            let _ = file;
            Ok(FileIdentity {})
        }
    }

    fn of_path(path: &Path) -> std::io::Result<Self> {
        #[cfg(unix)]
        {
            use std::os::unix::fs::MetadataExt;
            let meta = std::fs::metadata(path)?;
            Ok(FileIdentity { ino: meta.ino(), dev: meta.dev() })
        }
        #[cfg(not(unix))]
        {
            let _ = path;
            Ok(FileIdentity {})
        }
    }
}

impl FollowReader {
    /// Open `path` for following, starting at the beginning (existing
    /// content counts as the first appended chunk).
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Self::open_at(path, 0)
    }

    /// Open `path` with the first `offset` bytes already consumed —
    /// the resume path after a crash, where a durable store remembers
    /// how far ingestion got. `offset` must lie on a line boundary of
    /// the original history (the store only records such offsets); a
    /// file now shorter than `offset` fails immediately as truncated.
    pub fn open_at(path: impl AsRef<Path>, offset: u64) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::open(&path)?;
        let identity = FileIdentity::of(&file)?;
        let len = file.metadata()?.len();
        if len < offset {
            return Err(FollowError::Truncated { consumed: offset, len }.into_io());
        }
        Ok(FollowReader { path, file, offset, identity })
    }

    /// The file being followed.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes consumed so far (always ends on a newline).
    pub fn consumed(&self) -> u64 {
        self.offset
    }

    /// Deliberately restart on whatever file the path names now, from
    /// offset 0 — the recovery a caller chooses after a
    /// [`FollowError::Rotated`] means "the new file is a new stream".
    pub fn reopen(&mut self) -> std::io::Result<()> {
        let file = File::open(&self.path)?;
        self.identity = FileIdentity::of(&file)?;
        self.file = file;
        self.offset = 0;
        Ok(())
    }

    /// Check that the path still names the file we opened and that it
    /// has not shrunk below the consumed offset.
    fn check_integrity(&self) -> std::io::Result<()> {
        match FileIdentity::of_path(&self.path) {
            Ok(current) if current != self.identity => {
                return Err(FollowError::Rotated.into_io());
            }
            // A vanished path is rotation mid-swap: the old file is
            // gone and the new one is not in place yet.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(FollowError::Rotated.into_io());
            }
            Err(e) => return Err(e),
            Ok(_) => {}
        }
        let len = self.file.metadata()?.len();
        if len < self.offset {
            return Err(FollowError::Truncated { consumed: self.offset, len }.into_io());
        }
        Ok(())
    }

    /// Read everything appended since the last poll, truncated to the
    /// last complete line. Returns `None` when no complete new line is
    /// available. The returned buffer always ends with `\n`.
    ///
    /// Fails without consuming anything when the file was truncated
    /// below the consumed offset or rotated out from under the path
    /// (see the module docs); the error downcasts to [`FollowError`].
    pub fn poll(&mut self) -> std::io::Result<Option<Vec<u8>>> {
        self.check_integrity()?;
        self.file.seek(SeekFrom::Start(self.offset))?;
        let mut buf = Vec::new();
        self.file.read_to_end(&mut buf)?;
        // consume only through the last newline; the partial tail (a
        // line the writer has not finished) is re-read next poll
        match buf.iter().rposition(|&b| b == b'\n') {
            Some(last_nl) => {
                buf.truncate(last_nl + 1);
                self.offset += buf.len() as u64;
                Ok(Some(buf))
            }
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmpfile(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("dpsan-serve-follow-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    #[test]
    fn partial_lines_are_never_consumed() {
        let path = tmpfile("partial");
        let mut w = File::create(&path).unwrap();
        w.write_all(b"u1\tq\tl\t1\nu2\tq\tl").unwrap(); // writer mid-line
        w.flush().unwrap();

        let mut r = FollowReader::open(&path).unwrap();
        let chunk = r.poll().unwrap().expect("one complete line available");
        assert_eq!(chunk, b"u1\tq\tl\t1\n");
        assert_eq!(r.consumed(), chunk.len() as u64);
        // nothing new and the partial tail stays invisible
        assert!(r.poll().unwrap().is_none());

        // the writer finishes the line and appends another
        w.write_all(b"\t2\nu3\tq\tl\t3\n").unwrap();
        w.flush().unwrap();
        let chunk = r.poll().unwrap().expect("two more complete lines");
        assert_eq!(chunk, b"u2\tq\tl\t2\nu3\tq\tl\t3\n");
        assert!(r.poll().unwrap().is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_polls_none() {
        let path = tmpfile("empty");
        File::create(&path).unwrap();
        let mut r = FollowReader::open(&path).unwrap();
        assert!(r.poll().unwrap().is_none());
        assert_eq!(r.consumed(), 0);
        std::fs::remove_file(&path).ok();
    }

    fn follow_error(e: std::io::Error) -> FollowError {
        e.into_inner()
            .expect("carries a FollowError")
            .downcast::<FollowError>()
            .map(|b| *b)
            .expect("is a FollowError")
    }

    #[test]
    fn open_at_resumes_past_consumed_bytes() {
        let path = tmpfile("open-at");
        let mut w = File::create(&path).unwrap();
        w.write_all(b"u1\tq\tl\t1\nu2\tq\tl\t2\n").unwrap();
        w.flush().unwrap();
        let first = b"u1\tq\tl\t1\n".len() as u64;
        let mut r = FollowReader::open_at(&path, first).unwrap();
        assert_eq!(r.consumed(), first);
        let chunk = r.poll().unwrap().expect("the unconsumed second line");
        assert_eq!(chunk, b"u2\tq\tl\t2\n");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_at_past_eof_is_truncation() {
        let path = tmpfile("open-at-short");
        std::fs::write(&path, b"short\n").unwrap();
        let err = FollowReader::open_at(&path, 100).unwrap_err();
        assert!(matches!(follow_error(err), FollowError::Truncated { consumed: 100, len: 6 }));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn in_place_truncation_is_detected_not_reread() {
        let path = tmpfile("shrink");
        std::fs::write(&path, b"u1\tq\tl\t1\nu2\tq\tl\t2\n").unwrap();
        let mut r = FollowReader::open(&path).unwrap();
        r.poll().unwrap().expect("both lines");
        let consumed = r.consumed();

        // The file shrinks under us (same inode — not a rotation).
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(5).unwrap();
        drop(f);

        let err = r.poll().unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        match follow_error(err) {
            FollowError::Truncated { consumed: c, len } => {
                assert_eq!(c, consumed);
                assert_eq!(len, 5);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
        assert_eq!(r.consumed(), consumed, "nothing consumed on the error path");
        std::fs::remove_file(&path).ok();
    }

    #[cfg(unix)]
    #[test]
    fn rotation_is_detected_and_reopen_restarts_cleanly() {
        let path = tmpfile("rotate");
        std::fs::write(&path, b"u1\tq\tl\t1\n").unwrap();
        let mut r = FollowReader::open(&path).unwrap();
        r.poll().unwrap().expect("first line");

        // Classic rotation: move the file aside, create a fresh one at
        // the path. The new file is even LONGER than the consumed
        // offset, so a length check alone would read garbage.
        let rotated = path.with_extension("1");
        std::fs::rename(&path, &rotated).unwrap();
        std::fs::write(&path, b"uA\tq\tl\t9\nuB\tq\tl\t8\n").unwrap();

        let err = r.poll().unwrap_err();
        assert!(matches!(follow_error(err), FollowError::Rotated));
        let err2 = r.poll().unwrap_err();
        assert!(matches!(follow_error(err2), FollowError::Rotated), "error persists, no loop");

        // Deliberate restart on the new file reads it from the top.
        r.reopen().unwrap();
        let chunk = r.poll().unwrap().expect("new file content");
        assert_eq!(chunk, b"uA\tq\tl\t9\nuB\tq\tl\t8\n");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&rotated).ok();
    }

    #[cfg(unix)]
    #[test]
    fn vanished_path_reads_as_rotation() {
        let path = tmpfile("vanish");
        std::fs::write(&path, b"u1\tq\tl\t1\n").unwrap();
        let mut r = FollowReader::open(&path).unwrap();
        r.poll().unwrap().expect("first line");
        std::fs::remove_file(&path).unwrap();
        let err = r.poll().unwrap_err();
        assert!(matches!(follow_error(err), FollowError::Rotated));
    }

    #[test]
    fn consumes_across_many_appends_exactly_once() {
        let path = tmpfile("appends");
        let mut w = File::create(&path).unwrap();
        let mut r = FollowReader::open(&path).unwrap();
        let mut seen = Vec::new();
        for i in 0..10 {
            w.write_all(format!("u{i}\tq\tl\t{}\n", i + 1).as_bytes()).unwrap();
            w.flush().unwrap();
            if let Some(chunk) = r.poll().unwrap() {
                seen.extend_from_slice(&chunk);
            }
        }
        let expected: String = (0..10).map(|i| format!("u{i}\tq\tl\t{}\n", i + 1)).collect();
        assert_eq!(seen, expected.as_bytes());
        std::fs::remove_file(&path).ok();
    }
}
