//! # dpsan-serve
//!
//! The always-on sanitization service: tail an append-only TSV search
//! log, keep the sharded ingestion state live, and re-release on a
//! window or event-count trigger — every release debiting one enforced
//! cross-release privacy ledger.
//!
//! ```text
//! appended TSV ──FollowReader (line-atomic)──▶ IngestSession (live
//!   shards + sketches) ──trigger──▶ ReleasePlanner (budget ledger)
//!   ──▶ persistent SolveSession (dual reopt) ──▶ release-NNNN.tsv
//! ```
//!
//! Three properties carry the design:
//!
//! 1. **Re-releases are windowed one-shots.** Every release covers the
//!    full stream ingested so far, and because the incremental merge
//!    reconstructs the exact sequential interning order, a windowed
//!    re-release is byte-identical to a one-shot `sanitize` over the
//!    same prefix with the same seed — for any shard count or drain
//!    parallelism (CI diffs this).
//! 2. **Re-solves ride the parametric fast path.** The mechanism
//!    object (and so the `SolveSession` inside a `UmpSanitizer`)
//!    persists across releases: appended events move the per-user
//!    counts, the re-solve starts from the previous optimal basis, and
//!    the dual simplex reoptimizes in a few pivots. Cold solves recur
//!    only when the LP shape changes (new pairs surviving
//!    preprocessing).
//! 3. **Composition is enforced, not just recorded.** The lifetime
//!    `(ε, δ)` ledger refuses a release it cannot afford
//!    ([`dpsan_dp::BudgetError`]); the service treats that refusal as
//!    a clean stop with all state intact — repeated publication never
//!    silently exceeds the configured guarantee (Götz et al.).
//!
//! **Crash behavior:** releases are written to a temp file and
//! renamed into place, so `release-NNNN.tsv` files are always
//! complete; the follow reader consumes only through the last
//! newline, so every consumed byte sits on a line boundary. Without a
//! store, a restarted service re-ingests from the start of the file
//! and the budget ledger resets — acceptable for experiments, a
//! privacy bug for production. With [`ServeOptions::store`] set, the
//! service runs durably: every consumed chunk is WAL-logged (fsynced)
//! *before* ingestion, checkpoints bound replay, each release's
//! `(ε, δ)` spend is recorded in a chained manifest *before* the
//! output is published, and a restart recovers the exact session —
//! same interners, same ledger, same refusal behavior — then resumes
//! reading the input where it left off (see `dpsan-store`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod follow;
pub mod obs;
pub mod session;

pub use follow::{FollowError, FollowReader};
pub use session::{ReleaseRecord, ServeError, ServeSession};

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dpsan_core::mechanism::{Sanitizer, TriggerPolicy};
use dpsan_dp::composition::BudgetLedger;
use dpsan_dp::params::PrivacyParams;
use dpsan_store::{DiskIo, DurableStore, RecoveryReport, StoreConfig};
use dpsan_stream::{IngestReport, StreamConfig};

/// Configuration of the follow/serve loop.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Sharded-ingestion knobs (shards, chunk rows, sketch, jobs).
    pub stream: StreamConfig,
    /// Privacy parameters of every release.
    pub params: PrivacyParams,
    /// Base RNG seed, reused by every release (what makes the final
    /// re-release byte-identical to a one-shot run).
    pub seed: u64,
    /// Event-count trigger: re-release after this many new rows
    /// (`0` = only the final flush releases).
    pub trigger_rows: u64,
    /// How often to poll the followed file for appended bytes.
    pub poll: Duration,
    /// Exit after this long without new data (the window trigger for
    /// quiet streams). `None` = follow forever (until `max_releases`).
    pub idle_exit: Option<Duration>,
    /// Stop after this many successful releases.
    pub max_releases: Option<u64>,
    /// Enforced lifetime `(ε, δ)` across all releases; `None` records
    /// composition without refusing.
    pub lifetime: Option<(f64, f64)>,
    /// Directory for `release-NNNN.tsv` outputs (created if missing).
    pub out_dir: PathBuf,
    /// Durable crash-safe persistence; `None` keeps all state in
    /// memory (the pre-store behavior).
    pub store: Option<StoreOptions>,
    /// Write a Prometheus-text metrics snapshot here (atomically,
    /// temp + rename) — once at exit, and periodically while following
    /// when [`ServeOptions::metrics_interval`] is also set. Telemetry
    /// is observational only: releases are byte-identical with this on
    /// or off (CI diffs it).
    pub metrics_file: Option<PathBuf>,
    /// How often to re-export the snapshot while the follow loop runs
    /// (`None` = only the final flush).
    pub metrics_interval: Option<Duration>,
}

/// Durability knobs for the serve loop.
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Root directory of the durable store (created if missing).
    pub dir: PathBuf,
    /// Checkpoint every time this many rows have been ingested since
    /// the last checkpoint (`0` = checkpoint only on clean exit).
    pub checkpoint_rows: u64,
}

/// What one serve run did, for reporting and benchmarking.
#[derive(Debug)]
pub struct ServeReport {
    /// Per-release records (latency, solver deltas, composed totals).
    pub releases: Vec<ReleaseRecord>,
    /// Paths written, aligned with `releases`.
    pub paths: Vec<PathBuf>,
    /// Final ingest counters.
    pub ingest: IngestReport,
    /// The cross-release ledger at exit.
    pub ledger: BudgetLedger,
    /// `Some(message)` when the service stopped because the lifetime
    /// budget refused the next release (state intact, not a failure).
    pub budget_refusal: Option<String>,
    /// What store recovery found on startup (`None` when running
    /// without a store).
    pub recovery: Option<RecoveryReport>,
}

/// Follow `input` and serve releases until a stop condition: the
/// release quota is reached, the stream goes idle past `idle_exit`, or
/// the lifetime budget refuses the next release.
///
/// Malformed input aborts with the global line number; filesystem
/// errors abort; a budget refusal is reported as a clean stop.
pub fn serve(
    mechanism: Box<dyn Sanitizer>,
    input: &Path,
    opts: &ServeOptions,
) -> Result<ServeReport, ServeError> {
    std::fs::create_dir_all(&opts.out_dir)?;
    let trigger = TriggerPolicy::every_rows(opts.trigger_rows);

    // With a store: recover (checkpoint + WAL replay + manifest-chain
    // ledger), then resume the input where the WAL left off. Without:
    // fresh session from the top of the file.
    let (mut store, mut session, mut follow, recovery) = match &opts.store {
        Some(sopts) => {
            let (store, recovered) = DurableStore::open(
                Arc::new(DiskIo),
                StoreConfig { dir: sopts.dir.clone(), checkpoint_rows: sopts.checkpoint_rows },
            )?;
            let ingest = recovered.resume_session(opts.stream.clone())?;
            let ledger = dpsan_store::rebuild_ledger(&recovered.manifests, opts.lifetime);
            let released_rows = recovered.manifests.last().map_or(0, |m| m.rows);
            let session = ServeSession::restore(
                mechanism,
                ingest,
                opts.params,
                opts.seed,
                trigger,
                ledger,
                recovered.manifests.len() as u64,
                released_rows,
            );
            let follow = FollowReader::open_at(input, recovered.input_offset)?;
            (Some(store), session, follow, Some(recovered.report))
        }
        None => {
            let session = ServeSession::new(
                mechanism,
                opts.stream.clone(),
                opts.params,
                opts.seed,
                trigger,
                opts.lifetime,
            );
            (None, session, FollowReader::open(input)?, None)
        }
    };
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut budget_refusal = None;
    let mut last_data = Instant::now();
    let mut last_flush = Instant::now();

    'serve: loop {
        let polled = follow.poll()?;
        // lag = bytes the writer appended that we have not consumed
        // yet; after a successful poll this is the partial trailing
        // line (if any), between polls it is the backlog
        if let Ok(meta) = std::fs::metadata(input) {
            obs::follow_lag_bytes().set(meta.len().saturating_sub(follow.consumed()) as f64);
        }
        if let Some(chunk) = polled {
            // WAL first: the chunk is durable before the session sees
            // it, so a crash at any later point can replay it.
            if let Some(store) = store.as_mut() {
                store.log_chunk(follow.consumed(), &chunk)?;
            }
            let added = session.feed(chunk.as_slice())?;
            if let Some(store) = store.as_mut() {
                if store.note_rows(added) {
                    store.checkpoint(&session.ingest_state(), follow.consumed())?;
                }
            }
            last_data = Instant::now();
        }

        if session.due() {
            match write_release(&mut session, store.as_mut(), &opts.out_dir) {
                Ok(path) => paths.push(path),
                Err(e) if e.is_budget_refusal() => {
                    budget_refusal = Some(e.to_string());
                    break 'serve;
                }
                Err(e) => return Err(e),
            }
            if let Some(max) = opts.max_releases {
                if session.releases() >= max {
                    break 'serve;
                }
            }
            continue; // drain the backlog before sleeping
        }

        if let Some(idle) = opts.idle_exit {
            if last_data.elapsed() >= idle {
                // final flush: release whatever is pending, then stop
                if session.pending_rows() > 0 && session.rows() > 0 {
                    match write_release(&mut session, store.as_mut(), &opts.out_dir) {
                        Ok(path) => paths.push(path),
                        Err(e) if e.is_budget_refusal() => budget_refusal = Some(e.to_string()),
                        Err(e) => return Err(e),
                    }
                }
                break 'serve;
            }
        }
        // idle tick: nothing polled, nothing due — the heartbeat makes
        // "alive but quiet" observable (DPSAN_TRACE=serve=debug)
        obs::heartbeats_total().inc();
        dpsan_obs::trace::event(
            dpsan_obs::trace::Level::Debug,
            "serve",
            "heartbeat",
            &[("pending_rows", session.pending_rows().to_string())],
        );
        if let (Some(path), Some(interval)) = (&opts.metrics_file, opts.metrics_interval) {
            if last_flush.elapsed() >= interval {
                dpsan_obs::export::write_prometheus(path, &dpsan_obs::global().snapshot())?;
                last_flush = Instant::now();
            }
        }
        std::thread::sleep(opts.poll);
    }

    // A clean exit checkpoints so the next start replays nothing.
    if let Some(store) = store.as_mut() {
        if session.rows() > 0 {
            store.checkpoint(&session.ingest_state(), follow.consumed())?;
        }
    }

    // Final metrics flush, after the exit checkpoint so its fsync
    // latency is in the snapshot.
    if let Some(path) = &opts.metrics_file {
        dpsan_obs::export::write_prometheus(path, &dpsan_obs::global().snapshot())?;
    }

    Ok(ServeReport {
        releases: session.records().to_vec(),
        paths,
        ingest: session.ingest_report(),
        ledger: session.ledger().clone(),
        budget_refusal,
        recovery,
    })
}

/// Run one re-release and write it atomically (temp file + rename) as
/// `release-NNNN.tsv` in `out_dir`.
///
/// With a store, the durable ordering is: render the output, write
/// the manifest recording this release's exact `(ε, δ)` spend, *then*
/// publish — store artifact first, `out_dir` copy second. A crash
/// anywhere in that sequence can waste budget but can never publish
/// output the reconstructed ledger doesn't account for.
fn write_release(
    session: &mut ServeSession,
    store: Option<&mut DurableStore>,
    out_dir: &Path,
) -> Result<PathBuf, ServeError> {
    let entries_before = session.ledger().entries().len();
    let release = session.release_now()?;
    let mut bytes = Vec::new();
    dpsan_searchlog::io::write_tsv(&release.output, &mut bytes)?;
    if let Some(store) = store {
        let spent = session.ledger().entries()[entries_before..].to_vec();
        store.record_release(&spent, session.rows(), &bytes)?;
    }
    let index = session.releases();
    let path = out_dir.join(format!("release-{index:04}.tsv"));
    let tmp = out_dir.join(format!(".release-{index:04}.tsv.tmp"));
    std::fs::write(&tmp, &bytes)?;
    std::fs::rename(&tmp, &path)?;
    Ok(path)
}
