//! # dpsan-serve
//!
//! The always-on sanitization service: tail an append-only TSV search
//! log, keep the sharded ingestion state live, and re-release on a
//! window or event-count trigger — every release debiting one enforced
//! cross-release privacy ledger.
//!
//! ```text
//! appended TSV ──FollowReader (line-atomic)──▶ IngestSession (live
//!   shards + sketches) ──trigger──▶ ReleasePlanner (budget ledger)
//!   ──▶ persistent SolveSession (dual reopt) ──▶ release-NNNN.tsv
//! ```
//!
//! Three properties carry the design:
//!
//! 1. **Re-releases are windowed one-shots.** Every release covers the
//!    full stream ingested so far, and because the incremental merge
//!    reconstructs the exact sequential interning order, a windowed
//!    re-release is byte-identical to a one-shot `sanitize` over the
//!    same prefix with the same seed — for any shard count or drain
//!    parallelism (CI diffs this).
//! 2. **Re-solves ride the parametric fast path.** The mechanism
//!    object (and so the `SolveSession` inside a `UmpSanitizer`)
//!    persists across releases: appended events move the per-user
//!    counts, the re-solve starts from the previous optimal basis, and
//!    the dual simplex reoptimizes in a few pivots. Cold solves recur
//!    only when the LP shape changes (new pairs surviving
//!    preprocessing).
//! 3. **Composition is enforced, not just recorded.** The lifetime
//!    `(ε, δ)` ledger refuses a release it cannot afford
//!    ([`dpsan_dp::BudgetError`]); the service treats that refusal as
//!    a clean stop with all state intact — repeated publication never
//!    silently exceeds the configured guarantee (Götz et al.).
//!
//! **Crash behavior:** releases are written to a temp file and
//! renamed into place, so `release-NNNN.tsv` files are always
//! complete; the follow reader consumes only through the last
//! newline, so a crashed-and-restarted service re-ingests from the
//! start of the file and loses nothing (the budget ledger, however,
//! lives in memory — restarting resets composition accounting, which
//! is why the report prints the composed totals on every exit).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod follow;
pub mod session;

pub use follow::FollowReader;
pub use session::{ReleaseRecord, ServeError, ServeSession};

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use dpsan_core::mechanism::{Sanitizer, TriggerPolicy};
use dpsan_dp::composition::BudgetLedger;
use dpsan_dp::params::PrivacyParams;
use dpsan_stream::{IngestReport, StreamConfig};

/// Configuration of the follow/serve loop.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Sharded-ingestion knobs (shards, chunk rows, sketch, jobs).
    pub stream: StreamConfig,
    /// Privacy parameters of every release.
    pub params: PrivacyParams,
    /// Base RNG seed, reused by every release (what makes the final
    /// re-release byte-identical to a one-shot run).
    pub seed: u64,
    /// Event-count trigger: re-release after this many new rows
    /// (`0` = only the final flush releases).
    pub trigger_rows: u64,
    /// How often to poll the followed file for appended bytes.
    pub poll: Duration,
    /// Exit after this long without new data (the window trigger for
    /// quiet streams). `None` = follow forever (until `max_releases`).
    pub idle_exit: Option<Duration>,
    /// Stop after this many successful releases.
    pub max_releases: Option<u64>,
    /// Enforced lifetime `(ε, δ)` across all releases; `None` records
    /// composition without refusing.
    pub lifetime: Option<(f64, f64)>,
    /// Directory for `release-NNNN.tsv` outputs (created if missing).
    pub out_dir: PathBuf,
}

/// What one serve run did, for reporting and benchmarking.
#[derive(Debug)]
pub struct ServeReport {
    /// Per-release records (latency, solver deltas, composed totals).
    pub releases: Vec<ReleaseRecord>,
    /// Paths written, aligned with `releases`.
    pub paths: Vec<PathBuf>,
    /// Final ingest counters.
    pub ingest: IngestReport,
    /// The cross-release ledger at exit.
    pub ledger: BudgetLedger,
    /// `Some(message)` when the service stopped because the lifetime
    /// budget refused the next release (state intact, not a failure).
    pub budget_refusal: Option<String>,
}

/// Follow `input` and serve releases until a stop condition: the
/// release quota is reached, the stream goes idle past `idle_exit`, or
/// the lifetime budget refuses the next release.
///
/// Malformed input aborts with the global line number; filesystem
/// errors abort; a budget refusal is reported as a clean stop.
pub fn serve(
    mechanism: Box<dyn Sanitizer>,
    input: &Path,
    opts: &ServeOptions,
) -> Result<ServeReport, ServeError> {
    std::fs::create_dir_all(&opts.out_dir)?;
    let mut follow = FollowReader::open(input)?;
    let mut session = ServeSession::new(
        mechanism,
        opts.stream.clone(),
        opts.params,
        opts.seed,
        TriggerPolicy::every_rows(opts.trigger_rows),
        opts.lifetime,
    );
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut budget_refusal = None;
    let mut last_data = Instant::now();

    'serve: loop {
        if let Some(chunk) = follow.poll()? {
            session.feed(chunk.as_slice())?;
            last_data = Instant::now();
        }

        if session.due() {
            match write_release(&mut session, &opts.out_dir) {
                Ok(path) => paths.push(path),
                Err(e) if e.is_budget_refusal() => {
                    budget_refusal = Some(e.to_string());
                    break 'serve;
                }
                Err(e) => return Err(e),
            }
            if let Some(max) = opts.max_releases {
                if session.releases() >= max {
                    break 'serve;
                }
            }
            continue; // drain the backlog before sleeping
        }

        if let Some(idle) = opts.idle_exit {
            if last_data.elapsed() >= idle {
                // final flush: release whatever is pending, then stop
                if session.pending_rows() > 0 && session.rows() > 0 {
                    match write_release(&mut session, &opts.out_dir) {
                        Ok(path) => paths.push(path),
                        Err(e) if e.is_budget_refusal() => budget_refusal = Some(e.to_string()),
                        Err(e) => return Err(e),
                    }
                }
                break 'serve;
            }
        }
        std::thread::sleep(opts.poll);
    }

    Ok(ServeReport {
        releases: session.records().to_vec(),
        paths,
        ingest: session.ingest_report(),
        ledger: session.ledger().clone(),
        budget_refusal,
    })
}

/// Run one re-release and write it atomically (temp file + rename) as
/// `release-NNNN.tsv` in `out_dir`.
fn write_release(session: &mut ServeSession, out_dir: &Path) -> Result<PathBuf, ServeError> {
    let release = session.release_now()?;
    let index = session.releases();
    let path = out_dir.join(format!("release-{index:04}.tsv"));
    let tmp = out_dir.join(format!(".release-{index:04}.tsv.tmp"));
    {
        let file = std::fs::File::create(&tmp)?;
        let mut w = std::io::BufWriter::new(file);
        dpsan_searchlog::io::write_tsv(&release.output, &mut w)?;
        use std::io::Write as _;
        w.flush()?;
    }
    std::fs::rename(&tmp, &path)?;
    Ok(path)
}
