//! The clock-free core of the service: incremental ingest + planned
//! re-release, one struct.
//!
//! [`ServeSession`] glues a [`dpsan_stream::IngestSession`] (live
//! per-shard interners and sketches) to a
//! [`dpsan_core::mechanism::ReleasePlanner`] (mechanism + trigger +
//! enforced cross-release budget ledger). The file-tailing loop in
//! [`crate::serve`] drives it against a wall clock; benches and tests
//! drive it directly, deterministically.
//!
//! Because the mechanism object is persistent, a `UmpSanitizer`'s
//! internal [`SolveSession`](dpsan_core::session::SolveSession)
//! survives across re-releases: each re-solve starts from the
//! previous release's optimal basis, so an appended-counts re-release
//! is a dual reoptimization, not a cold start (cold solves reappear
//! only when the LP *shape* changes — new pairs entering the
//! preprocessed support). The per-release [`ReleaseRecord::solver`]
//! deltas make that visible.

use std::io::BufRead;
use std::time::{Duration, Instant};

use dpsan_core::error::CoreError;
use dpsan_core::mechanism::{Release, ReleasePlanner, Sanitizer, TriggerPolicy};
use dpsan_core::session::SessionStats;
use dpsan_dp::composition::BudgetLedger;
use dpsan_dp::params::PrivacyParams;
use dpsan_searchlog::LogError;
use dpsan_stream::{IngestReport, IngestSession, SessionState, StreamConfig};

/// Everything that can go wrong while serving.
#[derive(Debug)]
pub enum ServeError {
    /// Malformed input in an appended chunk (line numbers are global
    /// across the whole followed stream).
    Ingest(LogError),
    /// The mechanism failed — including [`CoreError::Budget`], the
    /// lifetime-ledger refusal that stops the service.
    Mechanism(CoreError),
    /// Filesystem trouble (tailing the input, writing a release).
    Io(std::io::Error),
    /// The durable store failed (WAL, checkpoint, manifest, or
    /// recovery).
    Store(dpsan_store::StoreError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Ingest(e) => write!(f, "ingest: {e}"),
            ServeError::Mechanism(e) => write!(f, "release: {e}"),
            ServeError::Io(e) => write!(f, "io: {e}"),
            ServeError::Store(e) => write!(f, "store: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Ingest(e) => Some(e),
            ServeError::Mechanism(e) => Some(e),
            ServeError::Io(e) => Some(e),
            ServeError::Store(e) => Some(e),
        }
    }
}

impl From<LogError> for ServeError {
    fn from(e: LogError) -> Self {
        ServeError::Ingest(e)
    }
}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Mechanism(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<dpsan_store::StoreError> for ServeError {
    fn from(e: dpsan_store::StoreError) -> Self {
        ServeError::Store(e)
    }
}

impl ServeError {
    /// Whether this is the budget-exhausted refusal (the one error the
    /// service treats as a clean stop, not a failure).
    pub fn is_budget_refusal(&self) -> bool {
        matches!(self, ServeError::Mechanism(CoreError::Budget(_)))
    }
}

/// One successful re-release, as observed by the service.
#[derive(Debug, Clone)]
pub struct ReleaseRecord {
    /// 1-based release number.
    pub index: u64,
    /// Total rows ingested when this release ran.
    pub rows: u64,
    /// Wall-clock latency of the full re-release: snapshot merge +
    /// preprocess + solve + sample.
    pub latency: Duration,
    /// LP-solver counters of this release alone (all-zero for non-LP
    /// mechanisms).
    pub solver: SessionStats,
    /// Composed ledger totals *after* this release.
    pub epsilon_total: f64,
    /// Composed δ total after this release.
    pub delta_total: f64,
}

/// Incremental ingest + planned re-release, clock-free.
pub struct ServeSession {
    ingest: IngestSession,
    planner: ReleasePlanner<Box<dyn Sanitizer>>,
    params: PrivacyParams,
    seed: u64,
    records: Vec<ReleaseRecord>,
}

impl ServeSession {
    /// A session over `mechanism` with an event-count trigger and an
    /// optional enforced lifetime budget.
    ///
    /// `seed` is the *base* release seed: every re-release uses it
    /// as-is, which is what makes the final windowed re-release
    /// byte-identical to a one-shot `sanitize --seed <seed>` over the
    /// same window.
    pub fn new(
        mechanism: Box<dyn Sanitizer>,
        stream: StreamConfig,
        params: PrivacyParams,
        seed: u64,
        trigger: TriggerPolicy,
        lifetime: Option<(f64, f64)>,
    ) -> Self {
        let planner = match lifetime {
            Some((e, d)) => ReleasePlanner::with_lifetime_budget(mechanism, trigger, e, d),
            None => ReleasePlanner::new(mechanism, trigger),
        };
        ServeSession {
            ingest: IngestSession::new(stream),
            planner,
            params,
            seed,
            records: Vec::new(),
        }
    }

    /// A session resuming from durable state: `ingest` is the
    /// recovered ingest session (checkpoint + WAL replay), `ledger`
    /// carries the spends replayed from the release-manifest chain,
    /// `releases` counts the manifests, and `released_rows` is how
    /// many rows the last release covered (so the trigger resumes with
    /// the correct pending count instead of re-observing history).
    #[allow(clippy::too_many_arguments)]
    pub fn restore(
        mechanism: Box<dyn Sanitizer>,
        ingest: IngestSession,
        params: PrivacyParams,
        seed: u64,
        trigger: TriggerPolicy,
        ledger: BudgetLedger,
        releases: u64,
        released_rows: u64,
    ) -> Self {
        let pending = ingest.rows().saturating_sub(released_rows);
        let planner = ReleasePlanner::restore(mechanism, trigger, ledger, releases, pending);
        ServeSession { ingest, planner, params, seed, records: Vec::new() }
    }

    /// Ingest one appended chunk of complete TSV lines; feeds the
    /// trigger. Returns the rows added.
    pub fn feed<R: BufRead>(&mut self, reader: R) -> Result<u64, ServeError> {
        let added = self.ingest.ingest(reader)?;
        self.planner.observe_rows(added);
        Ok(added)
    }

    /// Whether the trigger policy calls for a re-release.
    pub fn due(&self) -> bool {
        self.planner.due()
    }

    /// Rows ingested since the last successful release.
    pub fn pending_rows(&self) -> u64 {
        self.planner.pending_rows()
    }

    /// Total rows ingested so far.
    pub fn rows(&self) -> u64 {
        self.ingest.rows()
    }

    /// Number of successful releases so far.
    pub fn releases(&self) -> u64 {
        self.planner.releases()
    }

    /// Re-release the full window ingested so far: snapshot-merge the
    /// live shards (intake continues afterwards), run the mechanism
    /// through the planner, record latency and solver deltas.
    ///
    /// A budget refusal ([`ServeError::is_budget_refusal`]) leaves the
    /// ingest state, the ledger, and the trigger state untouched.
    pub fn release_now(&mut self) -> Result<Release, ServeError> {
        let span = dpsan_obs::trace::span(dpsan_obs::trace::Level::Info, "serve", "release");
        let start = Instant::now();
        let snapshot = self.ingest.snapshot();
        let release = match self.planner.release(&snapshot.log, self.params, self.seed) {
            Ok(r) => r,
            Err(e) => {
                if matches!(e, CoreError::Budget(_)) {
                    crate::obs::release_refusals_total().inc();
                }
                return Err(e.into());
            }
        };
        let latency = start.elapsed();
        drop(span);
        crate::obs::releases_total().inc();
        crate::obs::release_seconds().record_duration(latency);
        crate::obs::release_rows().set(self.ingest.rows() as f64);
        self.records.push(ReleaseRecord {
            index: self.planner.releases(),
            rows: self.ingest.rows(),
            latency,
            solver: release.solver,
            epsilon_total: self.planner.ledger().total_epsilon(),
            delta_total: self.planner.ledger().total_delta(),
        });
        Ok(release)
    }

    /// The cross-release budget ledger.
    pub fn ledger(&self) -> &BudgetLedger {
        self.planner.ledger()
    }

    /// Per-release records so far.
    pub fn records(&self) -> &[ReleaseRecord] {
        &self.records
    }

    /// Current ingest counters.
    pub fn ingest_report(&self) -> IngestReport {
        self.ingest.report()
    }

    /// Export the full ingest state (the unit a durable store
    /// checkpoints).
    pub fn ingest_state(&self) -> SessionState {
        self.ingest.export_state()
    }

    /// The privacy parameters each release runs at.
    pub fn params(&self) -> PrivacyParams {
        self.params
    }
}
