//! The service's headline guarantees, end to end:
//!
//! 1. every windowed re-release is byte-identical to a one-shot
//!    sanitize over the same window, across shard counts and drain
//!    parallelism;
//! 2. re-releases after appends ride the dual-reopt fast path (cold
//!    solves only on LP shape changes);
//! 3. the cross-release ledger composes and refuses exactly as
//!    configured, leaving ingest state intact on refusal.

use dpsan_core::mechanism::{
    Sanitizer, TriggerPolicy, UmpSanitizer, UtilityObjective, ZealousSanitizer,
};
use dpsan_datagen::{write_log_tsv, AolLikeConfig};
use dpsan_dp::params::PrivacyParams;
use dpsan_searchlog::io::read_tsv;
use dpsan_serve::ServeSession;
use dpsan_stream::StreamConfig;

const SEED: u64 = 0xd95a_11ce;

fn params() -> PrivacyParams {
    PrivacyParams::from_e_epsilon(2.0, 0.5)
}

/// A deterministic trace, split into `n` appended chunks of whole
/// lines.
fn trace_chunks(n_users: usize, n: usize) -> Vec<String> {
    let cfg =
        AolLikeConfig { n_users, n_queries: 60, mean_events_per_user: 12.0, ..Default::default() };
    let mut tsv = Vec::new();
    write_log_tsv(&cfg, &mut tsv).unwrap();
    let text = String::from_utf8(tsv).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    let per = lines.len().div_ceil(n);
    lines.chunks(per).map(|c| c.join("\n") + "\n").collect()
}

fn tsv_bytes(log: &dpsan_searchlog::SearchLog) -> Vec<u8> {
    let mut buf = Vec::new();
    dpsan_searchlog::io::write_tsv(log, &mut buf).unwrap();
    buf
}

/// One-shot reference: read the concatenated prefix in memory,
/// sanitize with a fresh mechanism — the exact CLI one-shot path.
fn one_shot(prefix: &str, mechanism: &dyn Sanitizer) -> Vec<u8> {
    let log = read_tsv(std::io::Cursor::new(prefix)).unwrap();
    let release = mechanism.sanitize(&log, params(), SEED).unwrap();
    tsv_bytes(&release.output)
}

#[test]
fn windowed_rereleases_match_one_shot_for_any_sharding() {
    let chunks = trace_chunks(40, 3);
    for shards in [1usize, 4] {
        for jobs in [1usize, 3] {
            let stream = StreamConfig { shards, chunk_rows: 64, sketch_capacity: 0, jobs };
            let mut session = ServeSession::new(
                Box::new(UmpSanitizer::new(UtilityObjective::OutputSize)),
                stream,
                params(),
                SEED,
                TriggerPolicy::manual(),
                None,
            );
            let mut prefix = String::new();
            for chunk in &chunks {
                session.feed(chunk.as_bytes()).unwrap();
                prefix.push_str(chunk);
                let rerelease = tsv_bytes(&session.release_now().unwrap().output);
                let reference = one_shot(&prefix, &UmpSanitizer::new(UtilityObjective::OutputSize));
                assert_eq!(rerelease, reference, "window mismatch at shards={shards} jobs={jobs}");
            }
        }
    }
}

#[test]
fn zealous_rereleases_match_one_shot() {
    let chunks = trace_chunks(40, 3);
    let mut session = ServeSession::new(
        Box::new(ZealousSanitizer::new()),
        StreamConfig { shards: 4, sketch_capacity: 0, ..Default::default() },
        params(),
        SEED,
        TriggerPolicy::manual(),
        None,
    );
    let mut prefix = String::new();
    for chunk in &chunks {
        session.feed(chunk.as_bytes()).unwrap();
        prefix.push_str(chunk);
        let rerelease = tsv_bytes(&session.release_now().unwrap().output);
        assert_eq!(rerelease, one_shot(&prefix, &ZealousSanitizer::new()));
    }
}

#[test]
fn rereleases_ride_the_dual_reopt_fast_path() {
    // Recurring traffic: after the population and its pairs are seen,
    // appended events revisit existing (user, query, url) triplets —
    // counts move but the LP shape (users × pairs after
    // preprocessing) is fixed. The persistent session then re-solves
    // by dual reoptimization from the previous optimal basis instead
    // of cold-starting — unless the instance's optimum is not unique,
    // in which case the determinism guard discards the warm vertex and
    // re-solves cold so the release stays byte-identical to one-shot
    // (counted in `degenerate_fallbacks`). Either way there must be
    // exactly one solve per round and no *unexplained* cold start
    // (a shape-change degrade would show as cold_starts without a
    // matching degenerate_fallback).
    let chunks = trace_chunks(60, 1);
    let full = &chunks[0];
    let mut session = ServeSession::new(
        Box::new(UmpSanitizer::new(UtilityObjective::OutputSize)),
        StreamConfig { shards: 2, sketch_capacity: 0, ..Default::default() },
        params(),
        SEED,
        TriggerPolicy::manual(),
        None,
    );
    session.feed(full.as_bytes()).unwrap();
    let first = session.release_now().unwrap();
    assert_eq!(first.solver.cold_starts, 1, "first release solves cold");

    // three append → re-release rounds of recurring traffic, spread
    // evenly over the population (every 13th event repeats) so no
    // single user's counts move violently between releases
    let lines: Vec<&str> = full.lines().collect();
    for round in 0..3 {
        let append: String =
            lines.iter().skip(round).step_by(13).map(|l| format!("{l}\n")).collect();
        session.feed(append.as_bytes()).unwrap();
        let re = session.release_now().unwrap();
        assert_eq!(re.solver.solves, 1);
        assert!(
            re.solver.dual_reopts == 1
                || (re.solver.degenerate_fallbacks == 1 && re.solver.cold_starts == 1),
            "round {round}: neither the dual path nor a guard veto: {:?}",
            re.solver
        );
        assert_eq!(
            re.solver.cold_starts, re.solver.degenerate_fallbacks,
            "round {round}: cold start not explained by the determinism guard: {:?}",
            re.solver
        );
    }
    let recs = session.records();
    assert_eq!(recs.len(), 4);
    assert!(recs[3].epsilon_total > recs[0].epsilon_total, "ledger composes");
}

#[test]
fn lifetime_budget_refusal_preserves_ingest_state() {
    let chunks = trace_chunks(30, 3);
    let p = PrivacyParams::from_e_epsilon(2.0, 0.2);
    // lifetime admits exactly two releases (in ε and in δ)
    let mut session = ServeSession::new(
        Box::new(ZealousSanitizer::new()),
        StreamConfig { shards: 2, sketch_capacity: 0, ..Default::default() },
        p,
        SEED,
        TriggerPolicy::every_rows(1),
        Some((2.0 * p.epsilon(), 2.0 * p.delta())),
    );
    session.feed(chunks[0].as_bytes()).unwrap();
    session.release_now().unwrap();
    session.feed(chunks[1].as_bytes()).unwrap();
    session.release_now().unwrap();
    session.feed(chunks[2].as_bytes()).unwrap();

    let rows_before = session.rows();
    let pending_before = session.pending_rows();
    let entries_before = session.ledger().entries().len();
    let err = session.release_now().unwrap_err();
    assert!(err.is_budget_refusal(), "got {err}");
    assert_eq!(session.rows(), rows_before, "ingest state untouched");
    assert_eq!(session.pending_rows(), pending_before, "trigger state untouched");
    assert_eq!(session.ledger().entries().len(), entries_before, "ledger untouched");
    assert_eq!(session.releases(), 2);
    assert_eq!(session.records().len(), 2, "no record for the refused release");
}

#[test]
fn ingest_errors_surface_global_line_numbers() {
    let mut session = ServeSession::new(
        Box::new(ZealousSanitizer::new()),
        StreamConfig::default(),
        params(),
        SEED,
        TriggerPolicy::manual(),
        None,
    );
    session.feed(&b"u1\tq\tl\t1\nu2\tq\tl\t2\n"[..]).unwrap();
    let err = session.feed(&b"u3\tq\tl\tbogus\n"[..]).unwrap_err();
    assert!(err.to_string().contains("line 3"), "global line number, got: {err}");
}
