//! Property tests of the cross-release budget ledger, driven through
//! the full service stack: N successful re-releases debit the ledger
//! exactly N times and the composed totals are sequential composition
//! (Σ εᵢ, Σ δᵢ); an over-budget re-release is refused atomically,
//! mutating neither the ingest state nor the ledger nor the trigger.

use dpsan_core::mechanism::{Sanitizer, TriggerPolicy, ZealousSanitizer};
use dpsan_datagen::{write_log_tsv, AolLikeConfig};
use dpsan_dp::params::PrivacyParams;
use dpsan_serve::ServeSession;
use dpsan_stream::StreamConfig;
use proptest::prelude::*;

const SEED: u64 = 0xd95a_11ce;

/// A deterministic trace split into `n` appended chunks.
fn trace_chunks(n_users: usize, n: usize) -> Vec<String> {
    let cfg =
        AolLikeConfig { n_users, n_queries: 40, mean_events_per_user: 8.0, ..Default::default() };
    let mut tsv = Vec::new();
    write_log_tsv(&cfg, &mut tsv).unwrap();
    let text = String::from_utf8(tsv).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    let per = lines.len().div_ceil(n);
    lines.chunks(per).map(|c| c.join("\n") + "\n").collect()
}

fn session(params: PrivacyParams, lifetime: Option<(f64, f64)>, shards: usize) -> ServeSession {
    let mechanism: Box<dyn Sanitizer> = Box::new(ZealousSanitizer::new());
    let stream = StreamConfig { shards, chunk_rows: 32, sketch_capacity: 0, jobs: 1 };
    ServeSession::new(mechanism, stream, params, SEED, TriggerPolicy::manual(), lifetime)
}

proptest! {
    /// N re-releases ⇒ exactly N ledger entries, composed by summation.
    #[test]
    fn n_rereleases_debit_ledger_n_times(
        n_users in 12usize..40,
        n_chunks in 1usize..6,
        e_eps in 2.0f64..6.0,
        delta in 0.05f64..0.4,
        shards in 1usize..5,
    ) {
        let params = PrivacyParams::from_e_epsilon(e_eps, delta);
        let mut s = session(params, None, shards);
        let chunks = trace_chunks(n_users, n_chunks);
        let n = chunks.len();
        for chunk in &chunks {
            s.feed(chunk.as_bytes()).unwrap();
            s.release_now().unwrap();
        }
        let ledger = s.ledger();
        prop_assert_eq!(ledger.entries().len(), n);
        let (per_eps, per_delta) = (params.epsilon(), params.delta());
        for entry in ledger.entries() {
            prop_assert!((entry.epsilon - per_eps).abs() < 1e-12);
            prop_assert!((entry.delta - per_delta).abs() < 1e-12);
        }
        // sequential composition: totals are the plain sums
        prop_assert!((ledger.total_epsilon() - per_eps * n as f64).abs() < 1e-9);
        prop_assert!((ledger.total_delta() - per_delta * n as f64).abs() < 1e-9);
        prop_assert_eq!(s.releases(), n as u64);
        prop_assert_eq!(s.records().len(), n);
    }

    /// A lifetime budget sized for exactly K releases admits K and
    /// refuses the (K+1)-th without touching ingest, ledger, or
    /// trigger state.
    #[test]
    fn over_budget_refusal_is_atomic(
        n_users in 12usize..40,
        e_eps in 2.0f64..6.0,
        delta in 0.02f64..0.2,
        admit in 1usize..4,
        shards in 1usize..5,
    ) {
        let params = PrivacyParams::from_e_epsilon(e_eps, delta);
        // budget for exactly `admit` releases (half-release headroom so
        // float accumulation can't flip the comparison either way)
        let lifetime = (
            params.epsilon() * (admit as f64 + 0.5),
            (params.delta() * (admit as f64 + 0.5)).min(0.999),
        );
        prop_assume!(params.delta() * (admit as f64 + 1.0) < 0.999);
        let mut s = session(params, Some(lifetime), shards);
        let chunks = trace_chunks(n_users, admit + 1);
        for (i, chunk) in chunks.iter().enumerate() {
            s.feed(chunk.as_bytes()).unwrap();
            if i < admit {
                s.release_now().unwrap();
            }
        }
        // trim to however many chunks the trace actually split into
        let admitted = s.releases();
        prop_assume!(admitted == admit as u64);

        let rows_before = s.rows();
        let pending_before = s.pending_rows();
        let eps_before = s.ledger().total_epsilon();
        let delta_before = s.ledger().total_delta();
        let entries_before = s.ledger().entries().len();

        let err = s.release_now().expect_err("over-budget release must refuse");
        prop_assert!(err.is_budget_refusal(), "unexpected error: {}", err);

        // atomic refusal: nothing moved
        prop_assert_eq!(s.rows(), rows_before);
        prop_assert_eq!(s.pending_rows(), pending_before);
        prop_assert_eq!(s.releases(), admit as u64);
        prop_assert_eq!(s.ledger().entries().len(), entries_before);
        prop_assert!((s.ledger().total_epsilon() - eps_before).abs() == 0.0);
        prop_assert!((s.ledger().total_delta() - delta_before).abs() == 0.0);

        // and the session still ingests after the refusal
        s.feed("uX\textra query\texample.org\t2\n".as_bytes()).unwrap();
        prop_assert_eq!(s.rows(), rows_before + 1);
    }
}
