//! Restart reconstruction of the budget ledger, end to end: a daemon
//! that dies and recovers from its store must resume with *exactly*
//! the ledger it had — bit-identical `(Σ ε, Σ δ)` totals rebuilt from
//! the manifest chain — and must make the same admit/refuse decision
//! on the next release a never-killed daemon would. A restart can
//! never stretch the lifetime `(ε, δ)`.
//!
//! The driver wires `ServeSession` to a `DurableStore` exactly the way
//! the production serve loop does: WAL-log every chunk before feeding
//! it, record each release's spent entries in a manifest before
//! treating it as published, and on restart rebuild the session from
//! checkpoint + WAL replay + `rebuild_ledger` over the verified chain.

use dpsan_core::mechanism::{Sanitizer, TriggerPolicy, ZealousSanitizer};
use dpsan_datagen::{write_log_tsv, AolLikeConfig};
use dpsan_dp::params::PrivacyParams;
use dpsan_serve::ServeSession;
use dpsan_store::{DiskIo, DurableStore, StoreConfig};
use dpsan_stream::StreamConfig;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::{fs, process};

const SEED: u64 = 0xd95a_11ce;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dpsan-durable-ledger-{tag}-{}", process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A deterministic trace split into `n` appended chunks.
fn trace_chunks(n_users: usize, n: usize) -> Vec<String> {
    let cfg =
        AolLikeConfig { n_users, n_queries: 40, mean_events_per_user: 8.0, ..Default::default() };
    let mut tsv = Vec::new();
    write_log_tsv(&cfg, &mut tsv).unwrap();
    let text = String::from_utf8(tsv).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    let per = lines.len().div_ceil(n);
    lines.chunks(per).map(|c| c.join("\n") + "\n").collect()
}

fn stream_cfg(shards: usize) -> StreamConfig {
    StreamConfig { shards, chunk_rows: 32, sketch_capacity: 0, jobs: 1 }
}

/// A serve session backed by a durable store, restored from whatever
/// the store holds — the production serve loop's startup wiring.
struct DurableDaemon {
    store: DurableStore,
    session: ServeSession,
    offset: u64,
}

impl DurableDaemon {
    fn start(
        dir: &Path,
        params: PrivacyParams,
        lifetime: Option<(f64, f64)>,
        shards: usize,
    ) -> Self {
        let (store, recovered) = DurableStore::open(
            Arc::new(DiskIo),
            StoreConfig { dir: dir.to_path_buf(), checkpoint_rows: 0 },
        )
        .unwrap();
        let ingest = recovered.resume_session(stream_cfg(shards)).unwrap();
        let ledger = dpsan_store::rebuild_ledger(&recovered.manifests, lifetime);
        let released_rows = recovered.manifests.last().map_or(0, |m| m.rows);
        let mechanism: Box<dyn Sanitizer> = Box::new(ZealousSanitizer::new());
        let session = ServeSession::restore(
            mechanism,
            ingest,
            params,
            SEED,
            TriggerPolicy::manual(),
            ledger,
            recovered.manifests.len() as u64,
            released_rows,
        );
        DurableDaemon { store, session, offset: recovered.input_offset }
    }

    /// WAL-first feed, exactly like the serve loop.
    fn feed(&mut self, chunk: &str) {
        self.offset += chunk.len() as u64;
        self.store.log_chunk(self.offset, chunk.as_bytes()).unwrap();
        self.session.feed(chunk.as_bytes()).unwrap();
    }

    /// Release with the production durable ordering: ledger spend and
    /// manifest first, artifact second. Returns whether the release
    /// was admitted.
    fn release(&mut self) -> bool {
        let before = self.session.ledger().entries().len();
        match self.session.release_now() {
            Ok(release) => {
                let mut bytes = Vec::new();
                dpsan_searchlog::io::write_tsv(&release.output, &mut bytes).unwrap();
                let spent = self.session.ledger().entries()[before..].to_vec();
                self.store.record_release(&spent, self.session.rows(), &bytes).unwrap();
                true
            }
            Err(e) => {
                assert!(e.is_budget_refusal(), "unexpected release failure: {e}");
                false
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Run N releases, kill the daemon, restart from the store: the
    /// rebuilt ledger's totals and entries are bit-identical to the
    /// never-killed daemon's, and both make the same decision on the
    /// next (over-budget) release — with identical post-decision
    /// ledgers.
    #[test]
    fn restart_rebuilds_identical_totals_and_refusal(
        n_users in 12usize..40,
        e_eps in 2.0f64..6.0,
        delta in 0.02f64..0.2,
        admit in 1usize..4,
        shards in 1usize..5,
        case in 0u32..u32::MAX,
    ) {
        let params = PrivacyParams::from_e_epsilon(e_eps, delta);
        // budget for exactly `admit` releases (half-release headroom so
        // float accumulation can't flip the comparison either way)
        let lifetime = (
            params.epsilon() * (admit as f64 + 0.5),
            (params.delta() * (admit as f64 + 0.5)).min(0.999),
        );
        prop_assume!(params.delta() * (admit as f64 + 1.0) < 0.999);
        let chunks = trace_chunks(n_users, admit + 1);
        prop_assume!(chunks.len() == admit + 1);

        // The never-killed daemon and the killed-and-restarted daemon
        // consume the same trace; the restarted one is rebuilt from
        // disk between every release.
        let live_dir = tmpdir(&format!("live-{case}"));
        let killed_dir = tmpdir(&format!("killed-{case}"));
        let mut live = DurableDaemon::start(&live_dir, params, Some(lifetime), shards);
        for (i, chunk) in chunks.iter().enumerate().take(admit) {
            live.feed(chunk);
            prop_assert!(live.release(), "release {i} must fit the lifetime budget");

            // kill + restart: a fresh daemon over the same store dir
            let mut revived = DurableDaemon::start(&killed_dir, params, Some(lifetime), shards);
            revived.feed(chunk);
            prop_assert!(revived.release(), "restarted release {i} must fit too");
            drop(revived);

            let reopened = DurableDaemon::start(&killed_dir, params, Some(lifetime), shards);
            let (a, b) = (live.session.ledger(), reopened.session.ledger());
            prop_assert_eq!(a.entries(), b.entries(), "release {}: entries diverge", i);
            prop_assert_eq!(
                a.total_epsilon().to_bits(),
                b.total_epsilon().to_bits(),
                "release {}: Σε not bit-identical after restart", i
            );
            prop_assert_eq!(
                a.total_delta().to_bits(),
                b.total_delta().to_bits(),
                "release {}: Σδ not bit-identical after restart", i
            );
        }

        // the (admit+1)-th release: both daemons must refuse, and the
        // refusal must leave both ledgers exactly where they were
        live.feed(&chunks[admit]);
        let mut revived = DurableDaemon::start(&killed_dir, params, Some(lifetime), shards);
        revived.feed(&chunks[admit]);
        let eps_before = revived.session.ledger().total_epsilon().to_bits();
        prop_assert!(!live.release(), "over-budget release must refuse (live)");
        prop_assert!(!revived.release(), "over-budget release must refuse (restarted)");
        prop_assert_eq!(revived.session.ledger().total_epsilon().to_bits(), eps_before);
        prop_assert_eq!(
            revived.session.ledger().entries(),
            live.session.ledger().entries(),
            "post-refusal ledgers diverge"
        );

        fs::remove_dir_all(&live_dir).unwrap();
        fs::remove_dir_all(&killed_dir).unwrap();
    }
}

#[test]
fn restart_cannot_stretch_the_lifetime() {
    // Lifetime sized for exactly two releases: spend both, then prove
    // that no number of restarts re-opens the budget — while a
    // store-less daemon (the pre-durability behavior) would happily
    // overspend after every restart.
    let params = PrivacyParams::from_e_epsilon(3.0, 0.1);
    let lifetime = (params.epsilon() * 2.5, (params.delta() * 2.5).min(0.999));
    let chunks = trace_chunks(24, 3);
    let dir = tmpdir("stretch");

    let mut daemon = DurableDaemon::start(&dir, params, Some(lifetime), 2);
    daemon.feed(&chunks[0]);
    assert!(daemon.release());
    daemon.feed(&chunks[1]);
    assert!(daemon.release());
    drop(daemon);

    for restart in 0..3 {
        let mut revived = DurableDaemon::start(&dir, params, Some(lifetime), 2);
        assert!(
            (revived.session.ledger().total_epsilon() - 2.0 * params.epsilon()).abs() < 1e-12,
            "restart {restart}: spent ε forgotten"
        );
        revived.feed(&chunks[2 % chunks.len()]);
        assert!(!revived.release(), "restart {restart}: budget stretched past the lifetime");
    }

    // Contrast: a fresh session with no store state admits the same
    // release — the refusal above is the durable ledger at work, not
    // an artifact of the data.
    let fresh_dir = tmpdir("stretch-fresh");
    let mut fresh = DurableDaemon::start(&fresh_dir, params, Some(lifetime), 2);
    for chunk in &chunks {
        fresh.feed(chunk);
    }
    assert!(fresh.release(), "a fresh ledger admits what the durable one refuses");

    fs::remove_dir_all(&dir).unwrap();
    fs::remove_dir_all(&fresh_dir).unwrap();
}
