//! Fixed-bucket latency histograms with exact quantile extraction.
//!
//! A [`Histogram`] serves two consumers at once. Exporters want
//! Prometheus-style cumulative bucket counts over a *fixed* boundary
//! set, so dashboards can aggregate across processes. Humans (and the
//! unified stderr lines) want an exact p50/p99, which bucket counts
//! cannot give. The histogram therefore keeps both: per-bucket atomic
//! counters for export, and the raw samples — up to
//! [`SAMPLE_CAP`] of them — for exact nearest-rank quantiles. Below
//! the cap, [`HistogramSnapshot::quantile`] is *exact* (it equals the
//! value a sorted copy of every recorded sample would give); past the
//! cap it degrades to the deterministic bucket upper bound, which is
//! still monotone and still honest about its resolution
//! ([`HistogramSnapshot::is_exact`] says which regime applies).
//!
//! Snapshots are plain data. [`HistogramSnapshot::merge`] adds bucket
//! counts and concatenates retained samples, which makes merging
//! associative — `(a ∪ b) ∪ c == a ∪ (b ∪ c)` in every discrete field
//! (the f64 `sum` is associative up to rounding) — as long as the
//! merged sample count stays under the cap; quantiles sort internally,
//! so the concatenation order never matters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Retained-sample budget per histogram. 64 Ki samples at 8 bytes each
/// bounds the exact-quantile memory to 512 KiB per histogram; beyond
/// this, quantiles fall back to bucket resolution.
pub const SAMPLE_CAP: usize = 1 << 16;

/// The default latency boundary set, in seconds: a 1-2.5-5 ladder from
/// 1 µs to 10 s. Shared by every latency histogram in the workspace so
/// series stay aggregatable.
pub fn default_latency_bounds() -> Vec<f64> {
    let mut bounds = Vec::with_capacity(22);
    for exp in -6i32..=0 {
        let base = 10f64.powi(exp);
        bounds.push(base);
        if exp < 0 {
            bounds.push(2.5 * base);
            bounds.push(5.0 * base);
        }
    }
    bounds.push(2.5);
    bounds.push(5.0);
    bounds.push(10.0);
    bounds
}

/// A concurrent fixed-bucket histogram. Created through the registry
/// ([`crate::Registry::histogram`]); shared by cloning the registry
/// handle.
#[derive(Debug)]
pub struct Histogram {
    /// Upper bounds of the finite buckets, strictly increasing. A
    /// value `v` lands in the first bucket with `v <= bound`; values
    /// above the last bound land in the implicit `+Inf` bucket.
    bounds: Vec<f64>,
    /// One counter per finite bucket plus the `+Inf` bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of all recorded values, stored as `f64` bits and updated by
    /// compare-exchange (records are rare enough that contention on the
    /// sum is not a concern; the buckets take the hot-path traffic).
    sum_bits: AtomicU64,
    /// The exact samples, retained up to [`SAMPLE_CAP`].
    samples: Mutex<Vec<f64>>,
}

impl Histogram {
    /// A standalone histogram over `bounds` (strictly increasing
    /// finite bucket upper bounds). Most callers go through
    /// [`crate::Registry::histogram`] instead.
    ///
    /// # Panics
    /// If `bounds` is empty or not strictly increasing.
    pub fn new(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            samples: Mutex::new(Vec::new()),
        }
    }

    /// Record one observation. NaN observations are dropped (a NaN
    /// latency is always a caller bug, and poisoning every quantile
    /// with it helps nobody).
    pub fn record(&self, value: f64) {
        if value.is_nan() {
            return;
        }
        let idx = self.bounds.partition_point(|&b| b < value);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + value).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        let mut samples = self.samples.lock().expect("histogram sample lock");
        if samples.len() < SAMPLE_CAP {
            samples.push(value);
        }
    }

    /// Record a [`std::time::Duration`] in seconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_secs_f64());
    }

    /// A point-in-time copy of the histogram's state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        // Lock the samples first so the bucket counters cannot run
        // ahead of the retained samples mid-snapshot.
        let samples = self.samples.lock().expect("histogram sample lock").clone();
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            samples,
        }
    }
}

/// Plain-data copy of a [`Histogram`] at one instant.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Finite bucket upper bounds, strictly increasing.
    pub bounds: Vec<f64>,
    /// Per-bucket counts; one entry per bound plus the final `+Inf`
    /// bucket.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Retained exact samples (all observations while under
    /// [`SAMPLE_CAP`]).
    pub samples: Vec<f64>,
}

impl HistogramSnapshot {
    /// An empty snapshot over `bounds`.
    pub fn empty(bounds: Vec<f64>) -> Self {
        let buckets = vec![0; bounds.len() + 1];
        HistogramSnapshot { bounds, buckets, count: 0, sum: 0.0, samples: Vec::new() }
    }

    /// Whether quantiles are exact (every observation is retained).
    pub fn is_exact(&self) -> bool {
        self.samples.len() as u64 == self.count
    }

    /// Nearest-rank quantile of the recorded values, `q` in `[0, 1]`.
    ///
    /// While [`is_exact`](Self::is_exact) holds this returns exactly
    /// the element a sorted copy of the samples holds at rank
    /// `ceil(q·n)` (rank 1 for `q = 0`). Past the sample cap it
    /// returns the upper bound of the bucket containing that rank
    /// (`+Inf` bucket ranks return the largest finite bound), which is
    /// deterministic and monotone in `q`. Returns `None` when the
    /// histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if self.is_exact() {
            let mut sorted = self.samples.clone();
            sorted.sort_by(f64::total_cmp);
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            return Some(sorted[rank - 1]);
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    *self.bounds.last().expect("bounds are non-empty")
                });
            }
        }
        None
    }

    /// Median (p50) of the recorded values.
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// 99th percentile of the recorded values.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Mean of the recorded values.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }

    /// Merge `other` into `self` (multiset union of the observations).
    ///
    /// Bucket counts add and retained samples concatenate (truncated at
    /// [`SAMPLE_CAP`]), so under the cap merging is associative and the
    /// merged quantiles equal those of recording every observation into
    /// one histogram. Panics if the boundary sets differ — merging
    /// histograms of different shapes is always a wiring bug.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert_eq!(self.bounds, other.bounds, "cannot merge histograms with different buckets");
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        let room = SAMPLE_CAP.saturating_sub(self.samples.len());
        self.samples.extend(other.samples.iter().take(room).copied());
    }

    /// The observations in `self` that are not in `earlier` — the
    /// counter-style delta used by per-release and per-experiment
    /// reporting. `earlier` must be an older snapshot of the same
    /// histogram; retained samples diff positionally (exact while both
    /// snapshots were under the sample cap).
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        assert_eq!(self.bounds, earlier.bounds, "cannot diff histograms with different buckets");
        let buckets =
            self.buckets.iter().zip(&earlier.buckets).map(|(a, b)| a.saturating_sub(*b)).collect();
        let samples = if self.samples.len() >= earlier.samples.len() {
            self.samples[earlier.samples.len()..].to_vec()
        } else {
            Vec::new()
        };
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets,
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum - earlier.sum,
            samples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_bounds_are_strictly_increasing() {
        let b = default_latency_bounds();
        assert!(b.windows(2).all(|w| w[0] < w[1]), "{b:?}");
        assert_eq!(b.first().copied(), Some(1e-6));
        assert_eq!(b.last().copied(), Some(10.0));
    }

    #[test]
    fn values_land_in_le_buckets() {
        let h = Histogram::new(vec![1.0, 2.0, 4.0]);
        h.record(0.5); // <= 1.0
        h.record(1.0); // <= 1.0 (boundary is inclusive, Prometheus `le`)
        h.record(1.5); // <= 2.0
        h.record(4.0); // <= 4.0
        h.record(9.0); // +Inf
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![2, 1, 1, 1]);
        assert_eq!(s.count, 5);
        assert!((s.sum - 16.0).abs() < 1e-12);
    }

    #[test]
    fn exact_quantiles_match_sorted_reference() {
        let h = Histogram::new(default_latency_bounds());
        let values = [0.004, 0.001, 0.100, 0.002, 0.050, 0.003, 0.0005];
        for v in values {
            h.record(v);
        }
        let s = h.snapshot();
        assert!(s.is_exact());
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        // nearest rank: p50 of 7 values is rank ceil(3.5)=4
        assert_eq!(s.p50(), Some(sorted[3]));
        assert_eq!(s.quantile(0.0), Some(sorted[0]));
        assert_eq!(s.quantile(1.0), Some(sorted[6]));
        assert_eq!(s.p99(), Some(sorted[6]));
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let s = Histogram::new(vec![1.0]).snapshot();
        assert_eq!(s.p50(), None);
        assert_eq!(s.mean(), None);
        assert_eq!(s.count, 0);
    }

    #[test]
    fn nan_records_are_dropped() {
        let h = Histogram::new(vec![1.0]);
        h.record(f64::NAN);
        h.record(0.5);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.p50(), Some(0.5));
    }

    #[test]
    fn merge_is_multiset_union() {
        let a = Histogram::new(vec![1.0, 2.0]);
        let b = Histogram::new(vec![1.0, 2.0]);
        a.record(0.5);
        a.record(1.5);
        b.record(3.0);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 3);
        assert_eq!(m.buckets, vec![1, 1, 1]);
        assert_eq!(m.p50(), Some(1.5));
    }

    #[test]
    fn delta_recovers_the_new_observations() {
        let h = Histogram::new(vec![1.0, 2.0]);
        h.record(0.5);
        let before = h.snapshot();
        h.record(1.5);
        h.record(3.0);
        let d = h.snapshot().delta(&before);
        assert_eq!(d.count, 2);
        assert_eq!(d.samples, vec![1.5, 3.0]);
        assert_eq!(d.buckets, vec![0, 1, 1]);
    }

    #[test]
    fn past_the_cap_quantiles_fall_back_to_bucket_bounds() {
        let mut s = HistogramSnapshot::empty(vec![1.0, 2.0, 4.0]);
        // Simulate an over-cap snapshot: counts without samples.
        s.buckets = vec![10, 10, 0, 1];
        s.count = 21;
        s.sum = 30.0;
        assert!(!s.is_exact());
        assert_eq!(s.p50(), Some(2.0), "rank 11 falls in the `le=2` bucket");
        assert_eq!(s.quantile(1.0), Some(4.0), "+Inf bucket reports the largest finite bound");
    }
}
