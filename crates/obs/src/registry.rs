//! The process-wide metric registry: named counters, gauges, and
//! histograms behind cheap cloneable handles.
//!
//! Registration is idempotent — asking for `dpsan_ingest_rows_total`
//! twice returns handles to the *same* atomic — so every layer can
//! lazily cache its handles in a `OnceLock` without coordinating
//! initialization order. Handle operations are lock-free atomic
//! updates; the registry lock is only taken at registration and
//! snapshot time, never on the hot path.
//!
//! Series names follow Prometheus conventions
//! (`[a-zA-Z_:][a-zA-Z0-9_:]*`), optionally with a single
//! `{key="value"}` label pair appended by [`Registry::counter_with`] —
//! enough to model e.g. the solver-path family
//! `dpsan_solves_total{path="dual_reopt"}` without a full label
//! engine. Snapshots iterate in sorted name order, so two snapshots of
//! identical state render byte-identically.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::histogram::{Histogram, HistogramSnapshot};

/// A monotone event counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A float-valued gauge (settable, also additively updatable).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the gauge to `v`.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Add `v` to the gauge (compare-exchange loop; gauges are not on
    /// hot paths).
    pub fn add(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.0.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Raise the gauge to `v` if `v` is larger (running-maximum gauges,
    /// e.g. peak shard size).
    pub fn max(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match self.0.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<Histogram>),
}

/// A named collection of metrics. Most code uses the process-wide
/// [`global`] registry; tests construct their own with
/// [`Registry::new`] for isolation.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

fn assert_valid_name(name: &str) {
    let (base, label) = match name.find('{') {
        Some(i) => (&name[..i], &name[i..]),
        None => (name, ""),
    };
    let mut chars = base.chars();
    let head_ok = chars.next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':');
    let tail_ok = chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':');
    assert!(head_ok && tail_ok, "invalid metric name {name:?}");
    if !label.is_empty() {
        assert!(
            label.starts_with('{') && label.ends_with("\"}") && label.contains("=\""),
            "invalid label suffix in metric name {name:?}"
        );
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get or register the counter `name`.
    ///
    /// # Panics
    /// If `name` is not a valid series name, or is already registered
    /// as a different metric type.
    pub fn counter(&self, name: &str) -> Counter {
        assert_valid_name(name);
        let mut metrics = self.metrics.lock().expect("registry lock");
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(AtomicU64::new(0))));
        match metric {
            Metric::Counter(c) => Counter(Arc::clone(c)),
            _ => panic!("metric {name:?} is already registered with a different type"),
        }
    }

    /// Get or register the counter `name{key="value"}` — one series of
    /// a labeled family.
    pub fn counter_with(&self, name: &str, key: &str, value: &str) -> Counter {
        self.counter(&format!("{name}{{{key}=\"{value}\"}}"))
    }

    /// Get or register the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        assert_valid_name(name);
        let mut metrics = self.metrics.lock().expect("registry lock");
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))));
        match metric {
            Metric::Gauge(g) => Gauge(Arc::clone(g)),
            _ => panic!("metric {name:?} is already registered with a different type"),
        }
    }

    /// Get or register the histogram `name` over `bounds` (see
    /// [`crate::histogram::default_latency_bounds`]). Re-registration
    /// must use the same bounds.
    pub fn histogram(&self, name: &str, bounds: Vec<f64>) -> Arc<Histogram> {
        assert_valid_name(name);
        let mut metrics = self.metrics.lock().expect("registry lock");
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new(bounds))));
        match metric {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name:?} is already registered with a different type"),
        }
    }

    /// A deterministic point-in-time copy of every registered series,
    /// in sorted name order.
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.metrics.lock().expect("registry lock");
        let values = metrics
            .iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(c) => SnapValue::Counter(c.load(Ordering::Relaxed)),
                    Metric::Gauge(g) => SnapValue::Gauge(f64::from_bits(g.load(Ordering::Relaxed))),
                    Metric::Histogram(h) => SnapValue::Histogram(h.snapshot()),
                };
                (name.clone(), value)
            })
            .collect();
        Snapshot { values }
    }
}

/// The process-wide registry every production code path reports into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// One series' value inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum SnapValue {
    /// A counter's value.
    Counter(u64),
    /// A gauge's value.
    Gauge(f64),
    /// A histogram's state.
    Histogram(HistogramSnapshot),
}

/// A point-in-time copy of a registry: plain data, ordered by series
/// name, safe to diff, render, and ship across threads.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Series name → value, sorted by name.
    pub values: BTreeMap<String, SnapValue>,
}

impl Snapshot {
    /// The counter `name`, or 0 if the series does not exist (metrics
    /// register lazily, so "never incremented" and "absent" coincide).
    pub fn counter(&self, name: &str) -> u64 {
        match self.values.get(name) {
            Some(SnapValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// The gauge `name`, or 0.0 if absent.
    pub fn gauge(&self, name: &str) -> f64 {
        match self.values.get(name) {
            Some(SnapValue::Gauge(v)) => *v,
            _ => 0.0,
        }
    }

    /// The histogram `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.values.get(name) {
            Some(SnapValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// The activity between `earlier` and `self`: counters and
    /// histograms subtract (what happened in between), gauges keep
    /// their later value (their "delta" is their current reading).
    /// Series absent from `earlier` pass through unchanged.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let values = self
            .values
            .iter()
            .map(|(name, value)| {
                let dv = match (value, earlier.values.get(name)) {
                    (SnapValue::Counter(now), Some(SnapValue::Counter(then))) => {
                        SnapValue::Counter(now.saturating_sub(*then))
                    }
                    (SnapValue::Histogram(now), Some(SnapValue::Histogram(then))) => {
                        SnapValue::Histogram(now.delta(then))
                    }
                    (v, _) => v.clone(),
                };
                (name.clone(), dv)
            })
            .collect();
        Snapshot { values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_shared_by_name() {
        let r = Registry::new();
        let a = r.counter("dpsan_test_total");
        let b = r.counter("dpsan_test_total");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(r.snapshot().counter("dpsan_test_total"), 3);
    }

    #[test]
    fn labeled_counters_are_distinct_series() {
        let r = Registry::new();
        r.counter_with("dpsan_solves_total", "path", "dual_reopt").inc();
        r.counter_with("dpsan_solves_total", "path", "cold_primal").add(2);
        let s = r.snapshot();
        assert_eq!(s.counter("dpsan_solves_total{path=\"dual_reopt\"}"), 1);
        assert_eq!(s.counter("dpsan_solves_total{path=\"cold_primal\"}"), 2);
    }

    #[test]
    fn gauges_set_add_and_max() {
        let r = Registry::new();
        let g = r.gauge("dpsan_test_gauge");
        g.set(1.5);
        g.add(0.5);
        assert!((g.get() - 2.0).abs() < 1e-12);
        g.max(1.0);
        assert!((g.get() - 2.0).abs() < 1e-12, "max() never lowers");
        g.max(3.0);
        assert!((g.get() - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_confusion_panics() {
        let r = Registry::new();
        r.counter("dpsan_test_total");
        r.gauge("dpsan_test_total");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_names_panic() {
        Registry::new().counter("0bad name");
    }

    #[test]
    fn snapshot_without_activity_is_identical() {
        let r = Registry::new();
        r.counter("dpsan_a_total").inc();
        r.gauge("dpsan_b").set(4.25);
        r.histogram("dpsan_c_seconds", vec![0.1, 1.0]).record(0.05);
        let s1 = r.snapshot();
        let s2 = r.snapshot();
        assert_eq!(s1, s2);
    }

    #[test]
    fn delta_subtracts_counters_and_keeps_gauges() {
        let r = Registry::new();
        let c = r.counter("dpsan_a_total");
        let g = r.gauge("dpsan_b");
        c.add(5);
        g.set(1.0);
        let before = r.snapshot();
        c.add(3);
        g.set(9.0);
        let d = r.snapshot().delta(&before);
        assert_eq!(d.counter("dpsan_a_total"), 3);
        assert!((d.gauge("dpsan_b") - 9.0).abs() < 1e-12);
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let c = global().counter("dpsan_global_singleton_test_total");
        c.inc();
        assert_eq!(global().snapshot().counter("dpsan_global_singleton_test_total"), 1);
    }
}
