//! Snapshot exporters: Prometheus text exposition and a JSON dump,
//! both rendered deterministically and written atomically.
//!
//! Rendering is a pure function of the [`Snapshot`] — series iterate
//! in sorted name order and floats format through Rust's shortest
//! round-trip `Display` — so identical snapshots produce byte-identical
//! files and the snapshot-determinism tests can compare raw bytes.
//! Files land via the same temp+rename discipline release files use:
//! a scraper (or a crash) sees the previous complete snapshot or the
//! new one, never a torn mix.

use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

use crate::histogram::HistogramSnapshot;
use crate::registry::{SnapValue, Snapshot};

/// Format a float the way both exporters do: Rust's shortest
/// round-trip representation, with non-finite values spelled the
/// Prometheus way (`NaN`, `+Inf`, `-Inf`).
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 {
            "+Inf".to_string()
        } else {
            "-Inf".to_string()
        }
    } else {
        format!("{v}")
    }
}

/// The family name of a series (the part before any label suffix).
fn family(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

/// Render a snapshot in the Prometheus text exposition format, with
/// one `# TYPE` line per family and histograms expanded into
/// cumulative `_bucket{le=...}` / `_sum` / `_count` series.
pub fn prometheus_text(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    let mut last_family = String::new();
    for (name, value) in &snapshot.values {
        let fam = family(name);
        let type_name = match value {
            SnapValue::Counter(_) => "counter",
            SnapValue::Gauge(_) => "gauge",
            SnapValue::Histogram(_) => "histogram",
        };
        if fam != last_family {
            out.push_str(&format!("# TYPE {fam} {type_name}\n"));
            last_family = fam.to_string();
        }
        match value {
            SnapValue::Counter(v) => out.push_str(&format!("{name} {v}\n")),
            SnapValue::Gauge(v) => out.push_str(&format!("{name} {}\n", fmt_f64(*v))),
            SnapValue::Histogram(h) => {
                let mut cumulative = 0u64;
                for (bound, count) in h.bounds.iter().zip(&h.buckets) {
                    cumulative += count;
                    out.push_str(&format!(
                        "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                        fmt_f64(*bound)
                    ));
                }
                out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
                out.push_str(&format!("{name}_sum {}\n", fmt_f64(h.sum)));
                out.push_str(&format!("{name}_count {}\n", h.count));
            }
        }
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_f64(v: f64) -> String {
    // JSON has no NaN/Inf literals; null keeps the document valid.
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_opt(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_string(), json_f64)
}

fn json_histogram(h: &HistogramSnapshot) -> String {
    let buckets: Vec<String> = h
        .bounds
        .iter()
        .zip(&h.buckets)
        .map(|(b, c)| format!("{{\"le\":{},\"count\":{c}}}", json_f64(*b)))
        .chain(std::iter::once(format!(
            "{{\"le\":null,\"count\":{}}}",
            h.buckets.last().copied().unwrap_or(0)
        )))
        .collect();
    format!(
        "{{\"count\":{},\"sum\":{},\"p50\":{},\"p99\":{},\"exact\":{},\"buckets\":[{}]}}",
        h.count,
        json_f64(h.sum),
        json_opt(h.p50()),
        json_opt(h.p99()),
        h.is_exact(),
        buckets.join(",")
    )
}

/// Render a snapshot as a JSON document:
/// `{"counters": {...}, "gauges": {...}, "histograms": {...}}` with
/// series in sorted name order and per-histogram exact p50/p99.
pub fn json_text(snapshot: &Snapshot) -> String {
    let mut counters = Vec::new();
    let mut gauges = Vec::new();
    let mut histograms = Vec::new();
    for (name, value) in &snapshot.values {
        let key = json_escape(name);
        match value {
            SnapValue::Counter(v) => counters.push(format!("\"{key}\":{v}")),
            SnapValue::Gauge(v) => gauges.push(format!("\"{key}\":{}", json_f64(*v))),
            SnapValue::Histogram(h) => histograms.push(format!("\"{key}\":{}", json_histogram(h))),
        }
    }
    format!(
        "{{\"counters\":{{{}}},\"gauges\":{{{}}},\"histograms\":{{{}}}}}\n",
        counters.join(","),
        gauges.join(","),
        histograms.join(",")
    )
}

/// Write `contents` to `path` atomically: temp file in the same
/// directory, flush to stable storage, then rename over the target. A
/// reader polling the file never observes a partial snapshot.
pub fn write_atomic(path: &Path, contents: &[u8]) -> io::Result<()> {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    let tmp = path.with_file_name(name);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(contents)?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp, path)
}

/// Snapshot → Prometheus text → atomic write, in one call.
pub fn write_prometheus(path: &Path, snapshot: &Snapshot) -> io::Result<()> {
    write_atomic(path, prometheus_text(snapshot).as_bytes())
}

/// Snapshot → JSON dump → atomic write, in one call.
pub fn write_json(path: &Path, snapshot: &Snapshot) -> io::Result<()> {
    write_atomic(path, json_text(snapshot).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("dpsan_releases_total").add(3);
        r.counter_with("dpsan_solves_total", "path", "dual_reopt").add(2);
        r.counter_with("dpsan_solves_total", "path", "warm_primal").inc();
        r.gauge("dpsan_budget_epsilon_spent").set(1.5);
        let h = r.histogram("dpsan_wal_fsync_seconds", vec![0.001, 0.01]);
        h.record(0.0005);
        h.record(0.0005);
        h.record(0.02);
        r
    }

    #[test]
    fn prometheus_text_renders_all_types() {
        let text = prometheus_text(&sample_registry().snapshot());
        let expected = "\
# TYPE dpsan_budget_epsilon_spent gauge
dpsan_budget_epsilon_spent 1.5
# TYPE dpsan_releases_total counter
dpsan_releases_total 3
# TYPE dpsan_solves_total counter
dpsan_solves_total{path=\"dual_reopt\"} 2
dpsan_solves_total{path=\"warm_primal\"} 1
# TYPE dpsan_wal_fsync_seconds histogram
dpsan_wal_fsync_seconds_bucket{le=\"0.001\"} 2
dpsan_wal_fsync_seconds_bucket{le=\"0.01\"} 2
dpsan_wal_fsync_seconds_bucket{le=\"+Inf\"} 3
dpsan_wal_fsync_seconds_sum 0.021
dpsan_wal_fsync_seconds_count 3
";
        assert_eq!(text, expected);
    }

    #[test]
    fn type_line_appears_once_per_family() {
        let text = prometheus_text(&sample_registry().snapshot());
        assert_eq!(text.matches("# TYPE dpsan_solves_total").count(), 1);
    }

    #[test]
    fn json_dump_is_valid_enough_and_deterministic() {
        let r = sample_registry();
        let a = json_text(&r.snapshot());
        let b = json_text(&r.snapshot());
        assert_eq!(a, b, "no activity between snapshots — identical dumps");
        assert!(a.starts_with('{') && a.ends_with("}\n"));
        assert!(a.contains("\"dpsan_releases_total\":3"));
        assert!(a.contains("\"dpsan_solves_total{path=\\\"dual_reopt\\\"}\":2"));
        assert!(a.contains("\"p50\":0.0005"));
        assert!(a.contains("\"exact\":true"));
        // Balanced braces/quotes as a cheap well-formedness check.
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        assert_eq!(a.matches('"').count() % 2, 0);
    }

    #[test]
    fn atomic_write_replaces_and_cleans_up() {
        let dir = std::env::temp_dir().join(format!("dpsan-obs-export-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("metrics.prom");
        write_atomic(&p, b"one").unwrap();
        write_atomic(&p, b"two").unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"two");
        assert!(!p.with_file_name("metrics.prom.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn non_finite_floats_render_the_prometheus_way() {
        assert_eq!(fmt_f64(f64::NAN), "NaN");
        assert_eq!(fmt_f64(f64::INFINITY), "+Inf");
        assert_eq!(fmt_f64(f64::NEG_INFINITY), "-Inf");
        assert_eq!(json_f64(f64::NAN), "null");
    }
}
