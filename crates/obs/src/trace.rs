//! Lightweight span tracing: scoped RAII timers and one-off events,
//! emitted as JSONL and filtered by a `tracing`-style env filter.
//!
//! Tracing is **off by default** and costs one atomic load plus a
//! couple of string compares per call site when disabled — cheap
//! enough to leave in hot-ish paths. Set `DPSAN_TRACE` to enable:
//!
//! ```text
//! DPSAN_TRACE=info                 # everything at info or coarser
//! DPSAN_TRACE=debug                # everything at debug or coarser
//! DPSAN_TRACE=serve=debug,store=info   # per-target levels
//! DPSAN_TRACE=off                  # explicit silence (the default)
//! ```
//!
//! Events go to stderr as one JSON object per line, or to the file
//! named by `DPSAN_TRACE_FILE` (appended, line-buffered). Telemetry is
//! observational only: nothing in the release pipeline reads a span,
//! and with the filter off no byte is written anywhere.

use std::fmt;
use std::fs::OpenOptions;
use std::io::Write;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Event severity, coarsest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or data-affecting problems.
    Error,
    /// Suspicious but survivable conditions.
    Warn,
    /// Lifecycle landmarks (release written, recovery completed).
    Info,
    /// Per-operation detail (solve path chosen, chunk ingested).
    Debug,
    /// Everything, including per-record noise.
    Trace,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    fn parse(s: &str) -> Option<Level> {
        match s.trim() {
            "error" => Some(Level::Error),
            "warn" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A parsed `DPSAN_TRACE` filter: an optional default level plus
/// per-target overrides (`target=level` clauses).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Filter {
    /// The level applied to targets with no specific clause; `None`
    /// means those targets are silent.
    pub default: Option<Level>,
    /// Per-target maximum levels, most specific match wins by prefix.
    pub targets: Vec<(String, Level)>,
}

impl Filter {
    /// Parse a filter spec. Unknown clauses are ignored rather than
    /// fatal — a typo in an env var must never take the service down.
    pub fn parse(spec: &str) -> Filter {
        let mut filter = Filter::default();
        for clause in spec.split(',') {
            let clause = clause.trim();
            if clause.is_empty() || clause == "off" {
                continue;
            }
            match clause.split_once('=') {
                Some((target, level)) => {
                    if let Some(level) = Level::parse(level) {
                        filter.targets.push((target.trim().to_string(), level));
                    }
                }
                None => {
                    if let Some(level) = Level::parse(clause) {
                        filter.default = Some(match filter.default {
                            Some(cur) => cur.max(level),
                            None => level,
                        });
                    }
                }
            }
        }
        // Longest prefix first so the most specific clause wins.
        filter.targets.sort_by(|a, b| b.0.len().cmp(&a.0.len()).then_with(|| a.0.cmp(&b.0)));
        filter
    }

    /// Whether an event at `level` for `target` passes this filter.
    pub fn enabled(&self, level: Level, target: &str) -> bool {
        for (prefix, max) in &self.targets {
            if target.starts_with(prefix.as_str()) {
                return level <= *max;
            }
        }
        match self.default {
            Some(max) => level <= max,
            None => false,
        }
    }
}

enum Sink {
    Stderr,
    File(Mutex<std::fs::File>),
}

struct TraceConfig {
    filter: Filter,
    sink: Sink,
}

fn config() -> &'static TraceConfig {
    static CONFIG: OnceLock<TraceConfig> = OnceLock::new();
    CONFIG.get_or_init(|| {
        let filter = std::env::var("DPSAN_TRACE").map(|s| Filter::parse(&s)).unwrap_or_default();
        let sink = match std::env::var("DPSAN_TRACE_FILE") {
            Ok(path) if !path.is_empty() => {
                match OpenOptions::new().create(true).append(true).open(&path) {
                    Ok(f) => Sink::File(Mutex::new(f)),
                    // An unwritable trace file degrades to stderr
                    // rather than killing the process.
                    Err(_) => Sink::Stderr,
                }
            }
            _ => Sink::Stderr,
        };
        TraceConfig { filter, sink }
    })
}

/// Whether an event at `level` for `target` would be emitted.
pub fn enabled(level: Level, target: &str) -> bool {
    config().filter.enabled(level, target)
}

/// Render one JSONL event. `dur_us` is present for span-close events,
/// absent for instantaneous ones.
fn format_event(
    kind: &str,
    level: Level,
    target: &str,
    name: &str,
    dur_us: Option<u128>,
    fields: &[(&str, String)],
) -> String {
    let mut line = format!(
        "{{\"ev\":\"{kind}\",\"level\":\"{level}\",\"target\":\"{target}\",\"name\":\"{}\"",
        escape(name)
    );
    if let Some(us) = dur_us {
        line.push_str(&format!(",\"dur_us\":{us}"));
    }
    for (k, v) in fields {
        line.push_str(&format!(",\"{}\":\"{}\"", escape(k), escape(v)));
    }
    line.push_str("}\n");
    line
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn emit(line: &str) {
    match &config().sink {
        Sink::Stderr => {
            let _ = std::io::stderr().write_all(line.as_bytes());
        }
        Sink::File(f) => {
            if let Ok(mut f) = f.lock() {
                let _ = f.write_all(line.as_bytes());
            }
        }
    }
}

/// Emit an instantaneous event (e.g. a serve heartbeat) if the filter
/// allows it.
pub fn event(level: Level, target: &str, name: &str, fields: &[(&str, String)]) {
    if enabled(level, target) {
        emit(&format_event("event", level, target, name, None, fields));
    }
}

/// A scoped RAII timer: created by [`span`], emits a JSONL close event
/// carrying its wall-clock duration when dropped. When the filter
/// rejects the span at creation, the guard is inert — no clock read,
/// no allocation beyond the struct itself, nothing emitted.
#[must_use = "a span measures the scope it is bound to; dropping it immediately measures nothing"]
#[derive(Debug)]
pub struct Span {
    active: Option<SpanInner>,
}

#[derive(Debug)]
struct SpanInner {
    level: Level,
    target: &'static str,
    name: String,
    start: Instant,
}

/// Open a scoped span; its duration is emitted when the guard drops.
pub fn span(level: Level, target: &'static str, name: impl Into<String>) -> Span {
    if enabled(level, target) {
        Span { active: Some(SpanInner { level, target, name: name.into(), start: Instant::now() }) }
    } else {
        Span { active: None }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.active.take() {
            emit(&format_event(
                "span",
                inner.level,
                inner.target,
                &inner.name,
                Some(inner.start.elapsed().as_micros()),
                &[],
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_filter_is_silent() {
        let f = Filter::default();
        assert!(!f.enabled(Level::Error, "serve"));
    }

    #[test]
    fn bare_level_applies_to_every_target() {
        let f = Filter::parse("info");
        assert!(f.enabled(Level::Info, "serve"));
        assert!(f.enabled(Level::Warn, "store"));
        assert!(!f.enabled(Level::Debug, "store"));
    }

    #[test]
    fn per_target_clauses_override_the_default() {
        let f = Filter::parse("info,store=trace,serve=warn");
        assert!(f.enabled(Level::Trace, "store"));
        assert!(!f.enabled(Level::Info, "serve"));
        assert!(f.enabled(Level::Warn, "serve"));
        assert!(f.enabled(Level::Info, "stream"), "unlisted targets use the default");
        assert!(!f.enabled(Level::Debug, "stream"));
    }

    #[test]
    fn longest_prefix_wins() {
        let f = Filter::parse("store=warn,store::wal=debug");
        assert!(f.enabled(Level::Debug, "store::wal"));
        assert!(!f.enabled(Level::Debug, "store::checkpoint"));
    }

    #[test]
    fn junk_clauses_are_ignored_not_fatal() {
        let f = Filter::parse("bogus,=,store=notalevel,info");
        assert_eq!(f.targets, Vec::new());
        assert_eq!(f.default, Some(Level::Info));
        assert_eq!(Filter::parse("off"), Filter::default());
    }

    #[test]
    fn event_lines_are_jsonl_shaped() {
        let line = format_event(
            "span",
            Level::Info,
            "serve",
            "release \"tiny\"",
            Some(1234),
            &[("outcome", "ok".to_string())],
        );
        assert_eq!(
            line,
            "{\"ev\":\"span\",\"level\":\"info\",\"target\":\"serve\",\
             \"name\":\"release \\\"tiny\\\"\",\"dur_us\":1234,\"outcome\":\"ok\"}\n"
        );
    }

    #[test]
    fn disabled_span_is_inert() {
        // The test environment does not set DPSAN_TRACE, so this span
        // must carry no timer.
        let s = span(Level::Trace, "test", "noop");
        assert!(s.active.is_none());
    }
}
