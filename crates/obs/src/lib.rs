//! # dpsan-obs — first-class telemetry for the dpsan pipeline
//!
//! One process-wide [`Registry`] of named metrics — lock-free
//! [`Counter`]s, float [`Gauge`]s, and fixed-bucket
//! [`Histogram`](histogram::Histogram)s with exact p50/p99 extraction
//! — plus lightweight [`trace`] spans (scoped RAII timers emitting
//! JSONL, filtered by the `DPSAN_TRACE` env var), and two atomic
//! exporters: the Prometheus text format and a JSON dump.
//!
//! ## The contract: observational only
//!
//! Nothing in the sanitization pipeline may *read* a metric to make a
//! decision. Telemetry records what happened; it never changes what
//! happens. CI enforces the observable consequence — release output is
//! byte-identical with metrics exported or not — and the tracked
//! `metrics_hot_path` bench keeps the recording cost honest.
//!
//! ## Usage
//!
//! ```
//! use dpsan_obs::{global, histogram::default_latency_bounds};
//!
//! // Handles register lazily and are cheap to cache in a OnceLock.
//! let releases = global().counter("dpsan_doc_releases_total");
//! let fsync = global().histogram("dpsan_doc_fsync_seconds", default_latency_bounds());
//!
//! releases.inc();
//! fsync.record(0.0004);
//!
//! let snap = global().snapshot();
//! assert_eq!(snap.counter("dpsan_doc_releases_total"), 1);
//! let text = dpsan_obs::export::prometheus_text(&snap);
//! assert!(text.contains("dpsan_doc_releases_total 1"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod histogram;
pub mod registry;
pub mod trace;

pub use histogram::{default_latency_bounds, HistogramSnapshot, SAMPLE_CAP};
pub use registry::{global, Counter, Gauge, Registry, SnapValue, Snapshot};
