//! Property tests for the obs histogram: exact quantiles against a
//! sorted reference, merge associativity, and bucket-boundary edges.

use dpsan_obs::histogram::{default_latency_bounds, Histogram, HistogramSnapshot};
use proptest::prelude::*;

/// The independent nearest-rank reference the histogram's exact path
/// must reproduce: sort everything, take rank `ceil(q·n)` (1-based).
fn sorted_reference(values: &[f64], q: f64) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #[test]
    fn exact_quantiles_match_the_sorted_reference(
        values in prop::collection::vec(0.0f64..20.0, 1..200),
        q in 0.0f64..=1.0,
    ) {
        let h = Histogram::new(default_latency_bounds());
        for &v in &values {
            h.record(v);
        }
        let s = h.snapshot();
        prop_assert!(s.is_exact());
        prop_assert_eq!(s.quantile(q), Some(sorted_reference(&values, q)));
        prop_assert_eq!(s.p50(), Some(sorted_reference(&values, 0.50)));
        prop_assert_eq!(s.p99(), Some(sorted_reference(&values, 0.99)));
    }

    #[test]
    fn merge_is_associative_and_order_blind_on_quantiles(
        a in prop::collection::vec(0.0f64..10.0, 0..60),
        b in prop::collection::vec(0.0f64..10.0, 0..60),
        c in prop::collection::vec(0.0f64..10.0, 0..60),
    ) {
        let snap = |values: &[f64]| {
            let h = Histogram::new(default_latency_bounds());
            for &v in values {
                h.record(v);
            }
            h.snapshot()
        };
        // (a ∪ b) ∪ c
        let mut left = snap(&a);
        left.merge(&snap(&b));
        left.merge(&snap(&c));
        // a ∪ (b ∪ c)
        let mut bc = snap(&b);
        bc.merge(&snap(&c));
        let mut right = snap(&a);
        right.merge(&bc);
        // Everything discrete is exactly associative; the f64 sum is
        // associative only up to rounding (addition order differs).
        prop_assert_eq!(&left.buckets, &right.buckets);
        prop_assert_eq!(left.count, right.count);
        prop_assert_eq!(&left.samples, &right.samples);
        prop_assert!((left.sum - right.sum).abs() <= 1e-9 * left.sum.abs().max(1.0));

        // And the merged quantiles equal those of one histogram that
        // saw every observation.
        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        if !all.is_empty() {
            prop_assert_eq!(left.p50(), Some(sorted_reference(&all, 0.50)));
            prop_assert_eq!(left.p99(), Some(sorted_reference(&all, 0.99)));
        } else {
            prop_assert_eq!(left.p50(), None);
        }
    }

    #[test]
    fn bucket_counts_respect_le_semantics(
        values in prop::collection::vec(0.0f64..15.0, 1..100),
    ) {
        let bounds = vec![0.5, 1.0, 5.0, 10.0];
        let h = Histogram::new(bounds.clone());
        for &v in &values {
            h.record(v);
        }
        let s = h.snapshot();
        // Cumulative bucket counts must match a direct `v <= bound`
        // count, and the +Inf bucket must absorb the rest.
        let mut cumulative = 0u64;
        for (i, &bound) in bounds.iter().enumerate() {
            cumulative += s.buckets[i];
            let reference = values.iter().filter(|&&v| v <= bound).count() as u64;
            prop_assert_eq!(cumulative, reference, "le={}", bound);
        }
        prop_assert_eq!(cumulative + s.buckets[bounds.len()], values.len() as u64);
    }
}

#[test]
fn values_exactly_on_bucket_boundaries_land_low() {
    // `le` buckets are inclusive: a value equal to a bound belongs to
    // that bound's bucket, matching Prometheus semantics.
    let h = Histogram::new(vec![1.0, 2.0, 4.0]);
    for v in [1.0, 2.0, 4.0] {
        h.record(v);
    }
    let s = h.snapshot();
    assert_eq!(s.buckets, vec![1, 1, 1, 0]);
}

#[test]
fn snapshot_equality_is_byte_stable_across_idle_snapshots() {
    let h = Histogram::new(default_latency_bounds());
    for v in [0.001, 0.01, 0.1] {
        h.record(v);
    }
    let a = h.snapshot();
    let b = h.snapshot();
    assert_eq!(a, b);
}

#[test]
fn empty_merge_is_identity() {
    let h = Histogram::new(vec![1.0]);
    h.record(0.5);
    let mut s = h.snapshot();
    let before = s.clone();
    s.merge(&HistogramSnapshot::empty(vec![1.0]));
    assert_eq!(s, before);
}
