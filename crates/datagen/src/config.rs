//! Generator configuration.

/// Knobs of the AOL-like generator.
///
/// Defaults give a small but structurally faithful log; see
/// [`crate::presets`] for calibrated sizes.
#[derive(Debug, Clone, PartialEq)]
pub struct AolLikeConfig {
    /// Number of users.
    pub n_users: usize,
    /// Query vocabulary size (Zipf ranks).
    pub n_queries: usize,
    /// Zipf exponent of query popularity (AOL-like: ≈ 1).
    pub query_zipf: f64,
    /// Maximum distinct clicked urls per query.
    pub urls_per_query: usize,
    /// Zipf exponent of the url choice within a query (large values
    /// concentrate click-throughs on the top result).
    pub url_zipf: f64,
    /// Mean click events per user (events on the same pair accumulate
    /// into the count `c_ijk`).
    pub mean_events_per_user: f64,
    /// Log-normal shape parameter of user activity (0 = everyone equal;
    /// AOL-like: ≈ 1).
    pub activity_sigma: f64,
    /// Probability that a click event revisits one of the user's own
    /// earlier pairs instead of drawing a fresh query (navigational
    /// re-clicks). Drives the AOL property that most click *volume*
    /// sits in single-user pairs and is removed by preprocessing.
    pub revisit_p: f64,
    /// RNG seed: generation is fully deterministic given the config.
    pub seed: u64,
}

impl Default for AolLikeConfig {
    fn default() -> Self {
        AolLikeConfig {
            n_users: 100,
            n_queries: 2_000,
            query_zipf: 1.0,
            urls_per_query: 4,
            url_zipf: 1.5,
            mean_events_per_user: 40.0,
            activity_sigma: 0.8,
            revisit_p: 0.6,
            seed: 0xa01,
        }
    }
}

impl AolLikeConfig {
    /// Validate the configuration (panics on nonsense values; the
    /// config is programmer input).
    pub fn validate(&self) {
        assert!(self.n_users >= 1, "need at least one user");
        assert!(self.n_queries >= 1, "need at least one query");
        assert!(self.urls_per_query >= 1, "need at least one url per query");
        assert!(
            self.mean_events_per_user >= 1.0 && self.mean_events_per_user.is_finite(),
            "mean events must be >= 1"
        );
        assert!(self.activity_sigma >= 0.0 && self.activity_sigma.is_finite());
        assert!(self.query_zipf >= 0.0 && self.url_zipf >= 0.0);
        assert!((0.0..1.0).contains(&self.revisit_p), "revisit probability must be in [0, 1)");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        AolLikeConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "at least one user")]
    fn zero_users_rejected() {
        AolLikeConfig { n_users: 0, ..Default::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "mean events must be >= 1")]
    fn tiny_activity_rejected() {
        AolLikeConfig { mean_events_per_user: 0.2, ..Default::default() }.validate();
    }
}
