//! Zipf-distributed rank sampling.
//!
//! Query popularity in search logs follows a Zipf law: the k-th most
//! popular query is drawn with probability proportional to `1/k^α`.
//! The sampler precomputes an alias table over all `n` ranks, giving
//! O(n) setup and O(1) draws — the generator samples hundreds of
//! thousands of events from vocabularies of up to ~100k queries.

use dpsan_dp::alias::AliasTable;
use rand::Rng;

/// A Zipf(α) distribution over ranks `0..n` (rank 0 is the most
/// popular).
#[derive(Debug, Clone)]
pub struct Zipf {
    table: AliasTable,
}

impl Zipf {
    /// Create a sampler over `n ≥ 1` ranks with exponent `alpha ≥ 0`
    /// (`alpha = 0` is uniform).
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n >= 1, "need at least one rank");
        assert!(alpha >= 0.0 && alpha.is_finite(), "exponent must be finite and >= 0");
        let weights: Vec<f64> = (1..=n).map(|k| (k as f64).powf(-alpha)).collect();
        Zipf { table: AliasTable::new(&weights) }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.table.len()
    }

    /// Draw one rank in `0..n`.
    #[inline]
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        self.table.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn empirical(n: usize, alpha: f64, draws: usize) -> Vec<f64> {
        let z = Zipf::new(n, alpha);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = vec![0usize; n];
        for _ in 0..draws {
            counts[z.sample(&mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn frequencies_match_zipf_law() {
        let freqs = empirical(50, 1.0, 400_000);
        let h: f64 = (1..=50).map(|k| 1.0 / k as f64).sum();
        for (k, f) in freqs.iter().enumerate().take(5) {
            let expect = 1.0 / ((k + 1) as f64 * h);
            assert!((f - expect).abs() < 0.01, "rank {k}: {f} vs {expect}");
        }
    }

    #[test]
    fn rank_probabilities_are_monotone() {
        let freqs = empirical(20, 1.2, 300_000);
        for w in freqs.windows(2).take(6) {
            assert!(w[0] >= w[1] - 0.01, "head ranks must dominate: {w:?}");
        }
    }

    #[test]
    fn alpha_zero_is_uniform() {
        let freqs = empirical(10, 0.0, 200_000);
        for f in freqs {
            assert!((f - 0.1).abs() < 0.01, "{f}");
        }
    }

    #[test]
    fn single_rank_always_zero() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite and >= 0")]
    fn negative_alpha_rejected() {
        let _ = Zipf::new(5, -1.0);
    }
}
