//! Streaming log file writer: generated logs spooled to disk in the
//! native TSV line format, without materializing a
//! [`SearchLog`](dpsan_searchlog::SearchLog).
//!
//! The writer replays the exact event stream of
//! [`generate`](crate::generate) (same RNG sequence, via
//! [`crate::generator::for_each_event`]) but holds
//! only **one user's aggregation** in memory at a time: events
//! accumulate per `(query, url)` in first-occurrence order and flush
//! as a block of TSV rows when the user completes. Reading the file
//! back with [`read_tsv`](dpsan_searchlog::io::read_tsv) — or
//! streaming it through `dpsan-stream` — reconstructs a log identical
//! to the in-memory `generate` build: per-user blocks in user order
//! with rows in per-user first-occurrence order preserve every
//! category's global first-occurrence order, which is all the
//! interners observe.

use std::collections::HashMap;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use crate::config::AolLikeConfig;
use crate::generator::for_each_event;

/// Write the configured log to any sink in native TSV
/// (`user \t query \t url \t count`).
///
/// Deterministic given the config; peak memory is one user's distinct
/// pair set, not the whole log.
pub fn write_log_tsv<W: Write>(cfg: &AolLikeConfig, mut w: W) -> io::Result<()> {
    // per-user aggregation in first-occurrence order
    let mut current_user = String::new();
    let mut order: Vec<(String, String, u64)> = Vec::new();
    let mut index: HashMap<(String, String), usize> = HashMap::new();
    let mut result: io::Result<()> = Ok(());

    let flush_user = |user: &str,
                      order: &mut Vec<(String, String, u64)>,
                      index: &mut HashMap<(String, String), usize>,
                      w: &mut W|
     -> io::Result<()> {
        for (query, url, count) in order.drain(..) {
            writeln!(w, "{user}\t{query}\t{url}\t{count}")?;
        }
        index.clear();
        Ok(())
    };

    for_each_event(cfg, |user, query, url| {
        if result.is_err() {
            return;
        }
        if user != current_user {
            if !current_user.is_empty() {
                result = flush_user(&current_user, &mut order, &mut index, &mut w);
            }
            current_user = user.to_string();
        }
        let key = (query.to_string(), url.to_string());
        match index.get(&key) {
            Some(&i) => order[i].2 += 1,
            None => {
                index.insert(key, order.len());
                order.push((query.to_string(), url.to_string(), 1));
            }
        }
    });
    result?;
    if !current_user.is_empty() {
        flush_user(&current_user, &mut order, &mut index, &mut w)?;
    }
    w.flush()
}

/// Write the configured log to a file at `path` (buffered).
pub fn write_log_file(cfg: &AolLikeConfig, path: impl AsRef<Path>) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_log_tsv(cfg, BufWriter::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;
    use dpsan_searchlog::io::read_tsv;
    use dpsan_searchlog::Interner;
    use std::io::Cursor;

    fn small_cfg() -> AolLikeConfig {
        AolLikeConfig {
            n_users: 50,
            n_queries: 400,
            mean_events_per_user: 20.0,
            ..Default::default()
        }
    }

    #[test]
    fn file_roundtrip_reproduces_the_in_memory_log() {
        let cfg = small_cfg();
        let reference = generate(&cfg);
        let mut buf = Vec::new();
        write_log_tsv(&cfg, &mut buf).unwrap();
        let reread = read_tsv(Cursor::new(buf)).unwrap();
        // identical interning order (the property the sanitize CLI's
        // byte-identity rests on), not just equal multisets
        let vocab = |i: &Interner| i.iter().map(|(_, s)| s.to_string()).collect::<Vec<_>>();
        assert_eq!(vocab(reread.users()), vocab(reference.users()));
        assert_eq!(vocab(reread.queries()), vocab(reference.queries()));
        assert_eq!(vocab(reread.urls()), vocab(reference.urls()));
        let recs = |l: &dpsan_searchlog::SearchLog| l.records().collect::<Vec<_>>();
        assert_eq!(recs(&reread), recs(&reference));
    }

    #[test]
    fn writer_is_deterministic() {
        let cfg = small_cfg();
        let mut a = Vec::new();
        let mut b = Vec::new();
        write_log_tsv(&cfg, &mut a).unwrap();
        write_log_tsv(&cfg, &mut b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rows_are_valid_tsv() {
        let cfg = AolLikeConfig { n_users: 3, mean_events_per_user: 5.0, ..small_cfg() };
        let mut buf = Vec::new();
        write_log_tsv(&cfg, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        for line in text.lines() {
            assert_eq!(line.split('\t').count(), 4, "line {line:?}");
        }
    }

    #[test]
    fn write_log_file_creates_readable_file() {
        let cfg = AolLikeConfig { n_users: 4, mean_events_per_user: 3.0, ..small_cfg() };
        let path = std::env::temp_dir().join("dpsan_datagen_writer_test.tsv");
        write_log_file(&cfg, &path).unwrap();
        let log = read_tsv(std::io::BufReader::new(std::fs::File::open(&path).unwrap())).unwrap();
        assert_eq!(log.size(), generate(&cfg).size());
        std::fs::remove_file(&path).ok();
    }
}
