//! Calibrated generator presets.
//!
//! `aol_paper` targets the proportions of the paper's Table 3
//! experiment dataset (2,500 users, ≈95 click events per user; most
//! pairs unique and removed by preprocessing, a minority of the click
//! volume surviving; nearly all users keeping at least one shared
//! pair). The smaller presets keep the same shape at sizes suitable
//! for unit tests and CI experiments. Calibration residuals vs the real
//! AOL subset are recorded in `EXPERIMENTS.md`.

use crate::config::AolLikeConfig;

/// Tens of users — for unit tests that need milliseconds.
pub fn aol_tiny() -> AolLikeConfig {
    AolLikeConfig {
        n_users: 60,
        n_queries: 2_500,
        query_zipf: 0.8,
        urls_per_query: 8,
        url_zipf: 0.9,
        mean_events_per_user: 30.0,
        activity_sigma: 0.8,
        revisit_p: 0.3,
        seed: 0xa01_001,
    }
}

/// Hundreds of users — the default scale of the `repro` CLI.
pub fn aol_small() -> AolLikeConfig {
    AolLikeConfig {
        n_users: 400,
        n_queries: 25_000,
        query_zipf: 0.8,
        urls_per_query: 16,
        url_zipf: 0.8,
        mean_events_per_user: 60.0,
        activity_sigma: 0.9,
        revisit_p: 0.3,
        seed: 0xa01_002,
    }
}

/// A thousand users — a mid-scale sanity point.
pub fn aol_medium() -> AolLikeConfig {
    AolLikeConfig {
        n_users: 1_000,
        n_queries: 70_000,
        query_zipf: 0.8,
        urls_per_query: 16,
        url_zipf: 0.8,
        mean_events_per_user: 80.0,
        activity_sigma: 1.0,
        revisit_p: 0.3,
        seed: 0xa01_003,
    }
}

/// The paper-scale preset: 2,500 users as in the Table 3 experiment
/// dataset.
pub fn aol_paper() -> AolLikeConfig {
    AolLikeConfig {
        n_users: 2_500,
        n_queries: 200_000,
        query_zipf: 0.8,
        urls_per_query: 16,
        url_zipf: 0.8,
        mean_events_per_user: 95.0,
        activity_sigma: 1.0,
        revisit_p: 0.3,
        seed: 0xa01_2500,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;
    use dpsan_searchlog::{preprocess, LogStats};

    #[test]
    fn presets_validate() {
        aol_tiny().validate();
        aol_small().validate();
        aol_medium().validate();
        aol_paper().validate();
    }

    #[test]
    fn small_preset_has_aol_like_shape() {
        let log = generate(&aol_small());
        let raw = LogStats::of(&log);
        let (pre, _) = preprocess(&log);
        let kept = LogStats::of(&pre);
        // Table 3 shape: most pairs unique; a minority of the volume
        // survives; most users still own at least one constraint row
        assert!(
            (kept.pairs as f64) < 0.25 * raw.pairs as f64,
            "most pairs must be unique ({}/{})",
            kept.pairs,
            raw.pairs
        );
        let volume_share = kept.total_tuples as f64 / raw.total_tuples as f64;
        assert!(
            (0.05..0.55).contains(&volume_share),
            "survivor volume share {volume_share} out of the AOL-like range"
        );
        assert!(
            kept.user_logs as f64 > 0.6 * raw.user_logs as f64,
            "most users keep a shared pair ({} of {})",
            kept.user_logs,
            raw.user_logs
        );
    }

    #[test]
    fn tiny_preset_usable_for_unit_tests() {
        let log = generate(&aol_tiny());
        let (pre, _) = preprocess(&log);
        assert!(pre.n_pairs() >= 20, "enough shared pairs for UMP tests ({})", pre.n_pairs());
        assert!(pre.n_user_logs() >= 20, "enough constraint rows ({})", pre.n_user_logs());
    }

    #[test]
    fn presets_scale_monotonically() {
        let tiny = generate(&aol_tiny());
        let small = generate(&aol_small());
        assert!(small.size() > tiny.size());
        assert!(small.n_pairs() > tiny.n_pairs());
    }
}
