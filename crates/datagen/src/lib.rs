//! # dpsan-datagen
//!
//! Synthetic AOL-like search-log generation.
//!
//! The paper evaluates on a 2,500-user subset of the 2006 AOL research
//! collection, which cannot be redistributed. Every quantity the
//! evaluation measures is a function of the pair histogram `c_ij` and
//! the triplet histogram `c_ijk` only, so a generator that reproduces
//! the *sparsity regime* of AOL click data — Zipfian query popularity,
//! heavy-tailed user activity, click-throughs concentrated on one url
//! per query — exercises exactly the same code paths and trend
//! structure (λ scaling, recall-vs-budget, diversity retention).
//!
//! * [`zipf`] — a Zipf(α) sampler built on an alias table,
//! * [`config`] — generator knobs,
//! * [`generator`] — the click-event generator,
//! * [`presets`] — `aol_tiny`/`aol_small`/`aol_medium`/`aol_paper`,
//!   the latter calibrated to the proportions of the paper's Table 3,
//! * [`stream_writer`] — the same event stream spooled to a TSV file
//!   with bounded memory, for exercising the out-of-core ingestion
//!   path (`dpsan-stream`, the `sanitize` CLI).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod generator;
pub mod presets;
pub mod stream_writer;
pub mod zipf;

pub use config::AolLikeConfig;
pub use generator::{for_each_event, generate};
pub use stream_writer::{write_log_file, write_log_tsv};
pub use zipf::Zipf;
